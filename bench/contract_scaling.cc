// Experiment B3 - contract scaling beyond the paper: materialization cost
// as the session grows in events and window length. Shows how the engine's
// work scales with the trading activity (facts derived ~ accounts x ticks)
// and that event-driven fixpoint rounds stay proportional to events.
//
// Each point runs twice: sequentially (num_threads = 1) and with the
// thread pool sized to the hardware (num_threads = 0), recording the
// speedup per point into BENCH_contract_scaling.json. On a single-core
// host num_threads = 0 resolves to 1 and both columns coincide.

#include <chrono>
#include <cstdio>
#include <memory>

#include "src/common/thread_pool.h"
#include "bench/bench_util.h"

int main() {
  using namespace dmtl;
  const size_t hw_threads = ThreadPool::ResolveThreads(0);
  std::printf("=== contract scaling: events x window sweep ===\n");
  std::printf("%8s %8s %10s %10s %10s %8s %14s %10s\n", "events", "trades",
              "window(s)", "seq(s)", "par(s)", "speedup", "derived facts",
              "rounds");
  struct Point {
    int events;
    int trades;
    int window;
  };
  const Point points[] = {
      {30, 6, 900},    {60, 12, 1800},  {120, 26, 3600},
      {267, 59, 7200}, {400, 90, 7200}, {267, 59, 14400},
  };
  bench::JsonBuilder json;
  json.BeginObject();
  json.Field("bench", "contract_scaling");
  json.Field("hardware_threads", hw_threads);
  bench::WriteContext(&json);
  json.BeginArray("points");
  for (const Point& pt : points) {
    WorkloadConfig config;
    config.name = "scale";
    config.num_events = pt.events;
    config.num_trades = pt.trades;
    config.duration_s = pt.window;
    config.initial_skew = -1000.0;
    config.seed = 99;
    bench::ExecutedSession seq = bench::Execute(config);

    EngineOptions parallel_options = SessionEngineOptions(seq.session);
    parallel_options.num_threads = 0;  // hardware concurrency
    bench::ExecutedSession par =
        bench::Execute(config, {}, &parallel_options);
    // A speedup is only meaningful when "hardware concurrency" actually
    // resolved to more than one thread; on a single-core host both lanes
    // ran the same configuration and the ratio is pure noise.
    const bool parallel_resolved = par.stats.threads > 1;
    double speedup = par.stats.wall_seconds > 0
                         ? seq.stats.wall_seconds / par.stats.wall_seconds
                         : 0.0;
    if (parallel_resolved) {
      std::printf("%8d %8d %10d %10.3f %10.3f %8.2f %14zu %10zu\n", pt.events,
                  pt.trades, pt.window, seq.stats.wall_seconds,
                  par.stats.wall_seconds, speedup,
                  seq.stats.derived_intervals, seq.stats.rounds);
    } else {
      std::printf("%8d %8d %10d %10.3f %10.3f %8s %14zu %10zu\n", pt.events,
                  pt.trades, pt.window, seq.stats.wall_seconds,
                  par.stats.wall_seconds, "n/a", seq.stats.derived_intervals,
                  seq.stats.rounds);
    }
    json.BeginObject()
        .Field("events", pt.events)
        .Field("trades", pt.trades)
        .Field("window_s", pt.window)
        .Field("sequential_s", seq.stats.wall_seconds)
        .Field("parallel_s", par.stats.wall_seconds)
        // 0 = "hardware concurrency" as requested; parallel_threads is the
        // pool width that request actually resolved to on this host.
        .Field("requested_threads", static_cast<size_t>(0))
        .Field("parallel_threads", par.stats.threads);
    if (parallel_resolved) {
      json.Field("speedup", speedup);
    } else {
      json.NullField("speedup");
    }
    json.Field("derived", seq.stats.derived_intervals)
        .Field("parallel_derived", par.stats.derived_intervals)
        .Field("rounds", seq.stats.rounds)
        .EndObject();
  }
  json.EndArray();

  // Guard-overhead row: the paper-scale 267-event/7200s point timed with
  // the execution guard disarmed vs armed (far-future deadline plus a live
  // cancellation token - the full check path, never tripping). The guard is
  // polled at round barriers, every ~256 emissions, and every ~4096 join
  // candidates, so its cost must stay in the noise: the gate is < 2%
  // overhead (best of kReps runs each, to keep scheduler noise out of the
  // ratio).
  {
    WorkloadConfig config;
    config.name = "scale";
    config.num_events = 267;
    config.num_trades = 59;
    config.duration_s = 7200;
    config.initial_skew = -1000.0;
    config.seed = 99;
    constexpr int kReps = 3;
    double off_s = 0.0;
    double on_s = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      bench::ExecutedSession off = bench::Execute(config);
      if (rep == 0 || off.stats.wall_seconds < off_s) {
        off_s = off.stats.wall_seconds;
      }
      EngineOptions guarded = SessionEngineOptions(off.session);
      guarded.deadline = std::chrono::hours(24);
      guarded.cancel_token = std::make_shared<CancellationToken>();
      bench::ExecutedSession on = bench::Execute(config, {}, &guarded);
      if (rep == 0 || on.stats.wall_seconds < on_s) {
        on_s = on.stats.wall_seconds;
      }
    }
    double overhead = off_s > 0 ? on_s / off_s - 1.0 : 0.0;
    std::printf("guard overhead @267x7200s: off=%.3fs on=%.3fs (%+.2f%%)\n",
                off_s, on_s, overhead * 100.0);
    json.BeginObject("guard_overhead")
        .Field("events", 267)
        .Field("window_s", 7200)
        .Field("guards_off_s", off_s)
        .Field("guards_on_s", on_s)
        .Field("overhead_frac", overhead)
        .EndObject();
  }

  json.EndObject();
  bench::WriteJson("BENCH_contract_scaling.json", json.TakeString());
  return 0;
}
