// Experiment B3 - contract scaling beyond the paper: materialization cost
// as the session grows in events and window length. Shows how the engine's
// work scales with the trading activity (facts derived ~ accounts x ticks)
// and that event-driven fixpoint rounds stay proportional to events.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace dmtl;
  std::printf("=== contract scaling: events x window sweep ===\n");
  std::printf("%8s %8s %10s %12s %14s %10s\n", "events", "trades",
              "window(s)", "runtime(s)", "derived facts", "rounds");
  struct Point {
    int events;
    int trades;
    int window;
  };
  const Point points[] = {
      {30, 6, 900},    {60, 12, 1800},  {120, 26, 3600},
      {267, 59, 7200}, {400, 90, 7200}, {267, 59, 14400},
  };
  for (const Point& pt : points) {
    WorkloadConfig config;
    config.name = "scale";
    config.num_events = pt.events;
    config.num_trades = pt.trades;
    config.duration_s = pt.window;
    config.initial_skew = -1000.0;
    config.seed = 99;
    bench::ExecutedSession run = bench::Execute(config);
    std::printf("%8d %8d %10d %12.3f %14zu %10zu\n", pt.events, pt.trades,
                pt.window, run.stats.wall_seconds,
                run.stats.derived_intervals, run.stats.rounds);
  }
  return 0;
}
