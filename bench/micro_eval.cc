// Experiment B2 - microbenchmarks of rule evaluation: joins, negation,
// temporal self-propagation, aggregation, full small-program
// materialization, and sequential-vs-parallel fixpoint rounds. A custom
// main mirrors the results into BENCH_micro_eval.json (google-benchmark's
// JSON format) unless the caller already passed --benchmark_out.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/reasoner.h"

namespace dmtl {
namespace {

Database EdgeFacts(int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.Insert("edge",
              {Value::Int(i), Value::Int((i * 7 + 1) % n)},
              Interval::Closed(Rational(i % 50), Rational(i % 50 + 20)));
  }
  return db;
}

void BM_NonRecursiveJoin(benchmark::State& state) {
  Database db = EdgeFacts(static_cast<int>(state.range(0)));
  auto program = Parser::ParseProgram(
      "two(X, Z) :- edge(X, Y), edge(Y, Z) .");
  for (auto _ : state) {
    Database out = db;
    benchmark::DoNotOptimize(Materialize(*program, &out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NonRecursiveJoin)->Arg(64)->Arg(256);

void BM_TransitiveClosure(benchmark::State& state) {
  Database db = EdgeFacts(static_cast<int>(state.range(0)));
  auto program = Parser::ParseProgram(
      "reach(X, Y) :- edge(X, Y) .\n"
      "reach(X, Z) :- reach(X, Y), edge(Y, Z) .");
  for (auto _ : state) {
    Database out = db;
    benchmark::DoNotOptimize(Materialize(*program, &out));
  }
}
BENCHMARK(BM_TransitiveClosure)->Arg(32)->Arg(128);

void BM_NegationFilter(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  for (int i = 0; i < n; ++i) {
    db.Insert("p", {Value::Int(i)},
              Interval::Closed(Rational(0), Rational(100)));
    if (i % 3 == 0) {
      db.Insert("blocked", {Value::Int(i)},
                Interval::Closed(Rational(20), Rational(40)));
    }
  }
  auto program = Parser::ParseProgram("ok(X) :- p(X), not blocked(X) .");
  for (auto _ : state) {
    Database out = db;
    benchmark::DoNotOptimize(Materialize(*program, &out));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NegationFilter)->Arg(256)->Arg(1024);

void BM_ChainPropagationAccelerated(benchmark::State& state) {
  int ticks = static_cast<int>(state.range(0));
  auto program = Parser::ParseProgram(
      "open(A) :- deposit(A) .\n"
      "open(A) :- boxminus open(A), not close(A) .");
  Database db;
  for (int a = 0; a < 8; ++a) {
    db.Insert("deposit", {Value::Int(a)}, Interval::Point(Rational(a)));
  }
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(ticks);
  for (auto _ : state) {
    Database out = db;
    benchmark::DoNotOptimize(Materialize(*program, &out, options));
  }
  state.SetItemsProcessed(state.iterations() * ticks * 8);
}
BENCHMARK(BM_ChainPropagationAccelerated)->Arg(1024)->Arg(8192);

void BM_ChainPropagationTickByTick(benchmark::State& state) {
  int ticks = static_cast<int>(state.range(0));
  auto program = Parser::ParseProgram(
      "open(A) :- deposit(A) .\n"
      "open(A) :- boxminus open(A), not close(A) .");
  Database db;
  for (int a = 0; a < 8; ++a) {
    db.Insert("deposit", {Value::Int(a)}, Interval::Point(Rational(a)));
  }
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(ticks);
  options.enable_chain_acceleration = false;
  for (auto _ : state) {
    Database out = db;
    benchmark::DoNotOptimize(Materialize(*program, &out, options));
  }
  state.SetItemsProcessed(state.iterations() * ticks * 8);
}
BENCHMARK(BM_ChainPropagationTickByTick)->Arg(1024);

void BM_TemporalAggregation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  for (int i = 0; i < n; ++i) {
    db.Insert("c", {Value::Int(i), Value::Double(i * 0.5)},
              Interval::Point(Rational(i % 64)));
  }
  auto program = Parser::ParseProgram("total(msum(S)) :- c(A, S) .");
  for (auto _ : state) {
    Database out = db;
    benchmark::DoNotOptimize(Materialize(*program, &out));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TemporalAggregation)->Arg(256)->Arg(2048);

void BM_ParseEthPerpProgram(benchmark::State& state) {
  for (auto _ : state) {
    auto program = Parser::ParseProgram(
        "isOpen(A) :- tranM(A, M) .\n"
        "isOpen(A) :- boxminus isOpen(A), not withdraw(A) .\n"
        "margin(A, M) :- tranM(A, M), not boxminus isOpen(A) .\n"
        "event(msum(S)) :- eventContrib(A, S) .\n");
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_ParseEthPerpProgram);

// Interval-delta propagation on the memo's home turf: a long recursive
// propagation joined against wide guard extents, so every fixpoint round
// re-reads the guards' operator-path outputs. Arg is
// enable_interval_deltas; the ratio of the two rows is the memoization win.
void BM_OperatorDelta(benchmark::State& state) {
  auto program = Parser::ParseProgram(
      "tick(A) :- diamondminus[1,1] tick(A), diamondminus[0,30] open(A), "
      "boxminus[1,1] sane(A) .\n"
      "alarm(A) :- diamondminus[0,2] tick(A), diamondminus[0,10] open(A) .");
  Database db;
  for (int a = 0; a < 8; ++a) {
    db.Insert("tick", {Value::Int(a)}, Interval::Point(Rational(a % 3)));
    db.Insert("open", {Value::Int(a)},
              Interval::Closed(Rational(0), Rational(2000)));
    db.Insert("sane", {Value::Int(a)},
              Interval::Closed(Rational(0), Rational(2000)));
  }
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(1500);
  options.enable_chain_acceleration = false;
  options.enable_interval_deltas = state.range(0) != 0;
  for (auto _ : state) {
    Database out = db;
    benchmark::DoNotOptimize(Materialize(*program, &out, options));
  }
}
BENCHMARK(BM_OperatorDelta)->Arg(0)->Arg(1);

// The rule compiler's dispatch loop against the AST walker on the same
// recursive join workload. Arg is enable_rule_compile; Arg(0) is the
// staged interpreter, so the ratio of the two rows is the VM win on
// join-heavy evaluation (chain acceleration is off to keep every round
// in the per-rule executor under test).
void BM_VmDispatch(benchmark::State& state) {
  Database db = EdgeFacts(96);
  auto program = Parser::ParseProgram(
      "reach(X, Y) :- edge(X, Y) .\n"
      "reach(X, Z) :- reach(X, Y), edge(Y, Z) .\n"
      "near(X, Z) :- diamondminus[0,5] reach(X, Z), not edge(X, Z) .");
  EngineOptions options;
  options.enable_chain_acceleration = false;
  options.enable_rule_compile = state.range(0) != 0;
  for (auto _ : state) {
    Database out = db;
    benchmark::DoNotOptimize(Materialize(*program, &out, options));
  }
}
BENCHMARK(BM_VmDispatch)->Arg(0)->Arg(1);

// Same recursive program and data, materialized with a fixed pool width.
// Arg is num_threads; Arg(1) is the sequential baseline, so the ratio of
// the two rows is the intra-round parallel speedup on this machine.
void BM_TransitiveClosureThreads(benchmark::State& state) {
  Database db = EdgeFacts(96);
  auto program = Parser::ParseProgram(
      "reach(X, Y) :- edge(X, Y) .\n"
      "reach(X, Z) :- reach(X, Y), edge(Y, Z) .\n"
      "back(X, Y) :- reach(X, Y), not edge(X, Y) .");
  EngineOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Database out = db;
    benchmark::DoNotOptimize(Materialize(*program, &out, options));
  }
}
BENCHMARK(BM_TransitiveClosureThreads)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace dmtl

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_eval.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int num_args = static_cast<int>(args.size());
  // Provenance for the JSON artifact's context block; strings are ignored
  // by tools/bench_diff.py.
  ::benchmark::AddCustomContext("git_sha", dmtl::bench::GitSha());
  ::benchmark::AddCustomContext("build_type", dmtl::bench::BuildType());
  ::benchmark::Initialize(&num_args, args.data());
  if (::benchmark::ReportUnrecognizedArguments(num_args, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
