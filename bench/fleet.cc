// Fleet-mode benchmark (ISSUE 9 acceptance artifact).
//
// Hosts 1k / 4k / 10k tiny account-sharded ETH-PERP sessions on the
// FleetServer and drains them across the work-stealing scheduler, recording
// sessions/sec, aggregate derived-intervals/sec, and the fleet-wide
// per-advance latency distribution (p50 / p99). Every session is
// shared-nothing - its own window, its own order flow, its own snapshots -
// so this measures exactly the "millions of users" multiplexing shape:
// thousands of cheap independent materializations per scheduler pass.
//
// Per-session work is deliberately tiny (a 5-minute window, a handful of
// orders): the axis under test is session count, not window size -
// contract_scaling.cc already prices the big-window shape.
//
// The 1k point runs best-of-kReps; the 4k and 10k points run once (their
// wall time is the measurement, and one drain is already thousands of
// materialization slices - scheduler noise amortizes out).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/chain/workload.h"
#include "src/common/thread_pool.h"
#include "src/contracts/eth_perp_program.h"
#include "src/fleet/server.h"
#include "src/fleet/workload.h"
#include "src/validation/parallel_sessions.h"
#include "bench/bench_util.h"

namespace {

// Nearest-rank percentile (p in [0, 100]) over a copy of `samples`.
double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double rank = std::ceil(p / 100.0 * static_cast<double>(samples.size()));
  size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

}  // namespace

int main() {
  using namespace dmtl;
  const size_t hw_threads = ThreadPool::ResolveThreads(0);

  std::printf("=== fleet: shared-nothing session server scaling ===\n");
  std::printf("%10s %8s | %10s %14s | %12s %12s\n", "sessions", "workers",
              "wall", "sessions/s", "adv p50", "adv p99");

  Program program = bench::Check(EthPerpProgram(), "parse ETH-PERP program");

  // Tiny per-session windows (10 min - the generator's minimum - with 4
  // orders, 1 trade, 4 oracle ticks): ~8 advances per session, so the 10k
  // point is ~80k scheduler slices.
  WorkloadConfig base;
  base.name = "fleet";
  base.duration_s = 600;
  base.num_events = 4;
  base.num_trades = 1;
  base.price.update_interval_s = 150;

  struct Point {
    int sessions;
    int reps;
  };
  const Point points[] = {{1000, 3}, {4000, 1}, {10000, 1}};

  bench::JsonBuilder json;
  json.BeginObject();
  json.Field("bench", "fleet");
  json.Field("hardware_threads", hw_threads);
  bench::WriteContext(&json);
  json.BeginArray("runs");

  for (const Point& pt : points) {
    // Workload generation is setup, not measurement: generate (and compile
    // to ops) once per point, outside the timed region.
    std::vector<WorkloadConfig> configs = ShardConfigs(base, pt.sessions);
    std::vector<Session> sessions;
    std::vector<std::vector<FleetOp>> ops;
    sessions.reserve(configs.size());
    ops.reserve(configs.size());
    for (const WorkloadConfig& config : configs) {
      sessions.push_back(
          bench::Check(GenerateSession(config), "generate session"));
      ops.push_back(SessionToOps(sessions.back()));
    }

    double wall_s = 0.0;
    double p50_s = 0.0, p99_s = 0.0;
    size_t total_ops = 0, advances = 0, derived = 0, snapshots = 0;
    size_t workers = 0;
    for (int rep = 0; rep < pt.reps; ++rep) {
      FleetOptions fopts;  // num_threads = 0: hardware-width scheduler
      // Throughput mode: a slice quantum that covers a whole tiny session
      // plus passivation, so resident engine state tracks the workers, not
      // the 10k open sessions. (The fairness-quantum shape - small slices,
      // every session live - is what the fleet tests exercise; holding 10k
      // live materializations at once just measures the allocator.)
      fopts.ops_per_slice = 64;
      fopts.passivate_drained = true;
      auto created = FleetServer::Create(fopts);
      bench::Check(created.status(), "create server");
      FleetServer& server = **created;
      bench::Check(server.RegisterProgram("eth-perp", program),
                   "register program");
      for (size_t i = 0; i < configs.size(); ++i) {
        SessionKey key{"eth-perp", 0, configs[i].name};
        bench::Check(server.Open(key, Rational(sessions[i].start_time)),
                     "open");
        bench::Check(server.Enqueue(key, ops[i]), "enqueue");
      }

      auto t0 = std::chrono::steady_clock::now();
      std::vector<SessionReport> reports =
          bench::Check(server.Drain(), "drain fleet");
      double rep_wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

      total_ops = 0;
      advances = 0;
      derived = 0;
      snapshots = 0;
      std::vector<double> latencies_us;
      for (const SessionReport& report : reports) {
        bench::Check(report.status, "fleet session");
        total_ops += report.ops_executed;
        advances += report.advances;
        derived += report.derived_intervals;
        snapshots += report.snapshots_taken;
        latencies_us.insert(latencies_us.end(),
                            report.advance_latencies_us.begin(),
                            report.advance_latencies_us.end());
      }
      double p50 = Percentile(latencies_us, 50.0) * 1e-6;
      double p99 = Percentile(latencies_us, 99.0) * 1e-6;
      if (rep == 0 || rep_wall < wall_s) wall_s = rep_wall;
      if (rep == 0 || p50 < p50_s) p50_s = p50;
      if (rep == 0 || p99 < p99_s) p99_s = p99;
      workers = ThreadPool::ResolveThreads(fopts.num_threads);
    }

    double sessions_per_sec =
        wall_s > 0 ? static_cast<double>(pt.sessions) / wall_s : 0.0;
    double intervals_per_sec =
        wall_s > 0 ? static_cast<double>(derived) / wall_s : 0.0;
    std::printf("%10d %8zu | %9.3fs %13.0f/s | %10.1fus %10.1fus\n",
                pt.sessions, workers, wall_s, sessions_per_sec, p50_s * 1e6,
                p99_s * 1e6);

    json.BeginObject()
        .Field("sessions", pt.sessions)
        .Field("workers", workers)
        .Field("ops", total_ops)
        .Field("advances", advances)
        .Field("derived", derived)
        .Field("snapshots", snapshots)
        .Field("wall_s", wall_s)
        .Field("advance_p50_s", p50_s)
        .Field("advance_p99_s", p99_s)
        .Field("sessions_per_sec", sessions_per_sec)
        .Field("derived_intervals_per_sec", intervals_per_sec)
        .EndObject();
  }
  json.EndArray();
  json.EndObject();
  bench::WriteJson("BENCH_fleet.json", json.TakeString());

  std::printf("done\n");
  return 0;
}
