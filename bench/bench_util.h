#ifndef DMTL_BENCH_BENCH_UTIL_H_
#define DMTL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>

#include "src/chain/replayer.h"
#include "src/chain/subgraph.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/contracts/trade_extractor.h"
#include "src/engine/reasoner.h"
#include "src/validation/compare.h"

namespace dmtl {
namespace bench {

// Aborts the harness with a message when a Status is not OK.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
const T& Check(const Result<T>& result, const char* what) {
  Check(result.status(), what);
  return result.value();
}

// One fully-executed session: both the DatalogMTL materialization and the
// reference run, with the extracted comparison artifacts.
struct ExecutedSession {
  Session session;
  EngineStats stats;
  std::vector<FrsPoint> frs_datalog;
  std::vector<FrsPoint> frs_reference;
  std::vector<TradeSettlement> trades_datalog;
  std::vector<TradeSettlement> trades_reference;
};

inline ExecutedSession Execute(const WorkloadConfig& config,
                               const MarketParams& params = {},
                               const EngineOptions* engine_options = nullptr) {
  ExecutedSession out;
  out.session = Check(GenerateSession(config), "generate session");
  Program program = Check(EthPerpProgram(params), "parse ETH-PERP program");
  Database db = SessionToDatabase(out.session);
  EngineOptions options = engine_options != nullptr
                              ? *engine_options
                              : SessionEngineOptions(out.session);
  Check(Materialize(program, &db, options, &out.stats), "materialize");
  Subgraph subgraph =
      Check(Subgraph::Index(out.session, params), "reference run");
  out.frs_reference = subgraph.FundingRateUpdates();
  out.trades_reference = subgraph.FuturesTrades();
  out.frs_datalog =
      Check(ExtractFrsAt(db, out.session.EventTimes()), "extract frs");
  out.trades_datalog = Check(ExtractTrades(db), "extract trades");
  return out;
}

}  // namespace bench
}  // namespace dmtl

#endif  // DMTL_BENCH_BENCH_UTIL_H_
