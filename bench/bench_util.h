#ifndef DMTL_BENCH_BENCH_UTIL_H_
#define DMTL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/chain/replayer.h"
#include "src/chain/subgraph.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/contracts/trade_extractor.h"
#include "src/engine/reasoner.h"
#include "src/validation/compare.h"

namespace dmtl {
namespace bench {

// Aborts the harness with a message when a Status is not OK.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
const T& Check(const Result<T>& result, const char* what) {
  Check(result.status(), what);
  return result.value();
}

// One fully-executed session: both the DatalogMTL materialization and the
// reference run, with the extracted comparison artifacts.
struct ExecutedSession {
  Session session;
  EngineStats stats;
  std::vector<FrsPoint> frs_datalog;
  std::vector<FrsPoint> frs_reference;
  std::vector<TradeSettlement> trades_datalog;
  std::vector<TradeSettlement> trades_reference;
};

inline ExecutedSession Execute(const WorkloadConfig& config,
                               const MarketParams& params = {},
                               const EngineOptions* engine_options = nullptr) {
  ExecutedSession out;
  out.session = Check(GenerateSession(config), "generate session");
  Program program = Check(EthPerpProgram(params), "parse ETH-PERP program");
  Database db = SessionToDatabase(out.session);
  EngineOptions options = engine_options != nullptr
                              ? *engine_options
                              : SessionEngineOptions(out.session);
  Check(Materialize(program, &db, options, &out.stats), "materialize");
  Subgraph subgraph =
      Check(Subgraph::Index(out.session, params), "reference run");
  out.frs_reference = subgraph.FundingRateUpdates();
  out.trades_reference = subgraph.FuturesTrades();
  out.frs_datalog =
      Check(ExtractFrsAt(db, out.session.EventTimes()), "extract frs");
  out.trades_datalog = Check(ExtractTrades(db), "extract trades");
  return out;
}

// Minimal JSON emission for machine-readable benchmark artifacts
// (BENCH_<name>.json). Handles objects, arrays, and scalar fields with
// correct comma placement; callers are responsible for balanced
// Begin/End pairs.
class JsonBuilder {
 public:
  JsonBuilder& BeginObject(std::string_view key = "") {
    Prefix(key);
    out_ << "{";
    stack_.push_back(false);
    return *this;
  }
  JsonBuilder& EndObject() { return End('}'); }

  JsonBuilder& BeginArray(std::string_view key = "") {
    Prefix(key);
    out_ << "[";
    stack_.push_back(false);
    return *this;
  }
  JsonBuilder& EndArray() { return End(']'); }

  JsonBuilder& Field(std::string_view key, std::string_view value) {
    Prefix(key);
    Quote(value);
    return *this;
  }
  JsonBuilder& Field(std::string_view key, const char* value) {
    return Field(key, std::string_view(value));
  }
  JsonBuilder& Field(std::string_view key, double value) {
    Prefix(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out_ << buf;
    return *this;
  }
  JsonBuilder& Field(std::string_view key, size_t value) {
    Prefix(key);
    out_ << value;
    return *this;
  }
  JsonBuilder& Field(std::string_view key, int value) {
    Prefix(key);
    out_ << value;
    return *this;
  }
  JsonBuilder& Field(std::string_view key, bool value) {
    Prefix(key);
    out_ << (value ? "true" : "false");
    return *this;
  }
  // Emits a JSON null - for metrics that are undefined for the run rather
  // than zero (e.g. a parallel speedup when the pool resolved to one
  // thread), so diffs skip them instead of comparing fabricated numbers.
  JsonBuilder& NullField(std::string_view key) {
    Prefix(key);
    out_ << "null";
    return *this;
  }

  std::string TakeString() { return out_.str(); }

 private:
  void Prefix(std::string_view key) {
    if (!stack_.empty()) {
      if (stack_.back()) out_ << ",";
      stack_.back() = true;
    }
    if (!key.empty()) {
      Quote(key);
      out_ << ":";
    }
  }
  void Quote(std::string_view s) {
    out_ << '"';
    for (char c : s) {
      if (c == '"' || c == '\\') out_ << '\\';
      out_ << c;
    }
    out_ << '"';
  }
  JsonBuilder& End(char close) {
    stack_.pop_back();
    out_ << close;
    return *this;
  }

  std::ostringstream out_;
  std::vector<bool> stack_;  // per open scope: "has emitted an element"
};

// Best-effort git revision of the working tree; "unknown" outside a
// checkout (benchmarks run from the repository root, see bench targets).
inline std::string GitSha() {
  std::string sha = "unknown";
  if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[80] = {0};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) sha = line;
    }
    ::pclose(pipe);
  }
  return sha;
}

// The CMake build type the binary was compiled under (DMTL_BUILD_TYPE is
// injected by bench/CMakeLists.txt; the NDEBUG fallback covers builds that
// bypass it).
inline const char* BuildType() {
#ifdef DMTL_BUILD_TYPE
  return DMTL_BUILD_TYPE;
#elif defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

// Emits the provenance context block every BENCH_*.json artifact carries:
// which revision and build type produced the numbers, whether the runs
// were timed with an armed ExecutionGuard (deadline/cancel token), and
// the resolved engine feature set (EngineOptions::WithEnvOverrides - the
// single point folding the DMTL_DISABLE_* CI lanes into the options), so
// bench_diff.py can refuse like-for-unlike comparisons. bench_diff.py
// ignores string fields, so these never trip the regression gate.
inline void WriteContext(JsonBuilder* json, bool guards_enabled = false,
                         const EngineOptions& resolved =
                             EngineOptions::FromEnv()) {
  json->BeginObject("context");
  json->Field("git_sha", GitSha());
  json->Field("build_type", BuildType());
  json->Field("guards_enabled", guards_enabled);
  json->Field("enable_rule_compile", resolved.enable_rule_compile);
  json->Field("enable_dense_timeline", resolved.enable_dense_timeline);
  json->Field("enable_arena_alloc", resolved.enable_arena_alloc);
  json->Field("enable_streaming", resolved.enable_streaming);
  json->EndObject();
}

// Writes a benchmark artifact and echoes the path so harness logs record
// where the machine-readable results went.
inline void WriteJson(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "FATAL cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << json << "\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace bench
}  // namespace dmtl

#endif  // DMTL_BENCH_BENCH_UTIL_H_
