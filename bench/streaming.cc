// Streaming materialization benchmark (ISSUE 8 acceptance artifact).
//
// Replays paper-scale ETH-PERP sessions through a live streaming EngineSession -
// one chain event at a time - and records the per-event latency
// distribution (p50 / p99 / max) against the amortized cost of the batch
// replay the repo ran before streaming existed (batch wall / events). The
// acceptance bar: at the 267-event / 14400 s point the steady-state p50 is
// at least 100x cheaper than the amortized batch cost.
//
// A second lane per point re-runs the stream with a sliding window
// (horizon = window / 4), so every advance past the horizon also retracts
// expired coverage through the provenance-scoped delete-and-rederive path;
// its percentiles price retraction, not just insertion.
//
// Each lane is best-of-kReps to keep scheduler noise out of the committed
// baseline; per-event percentiles take the minimum across reps.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/chain/replayer.h"
#include "src/common/thread_pool.h"
#include "src/engine/session.h"
#include "bench/bench_util.h"

namespace {

// Nearest-rank percentile (p in [0, 100]) over a copy of `samples`.
double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double rank = std::ceil(p / 100.0 * static_cast<double>(samples.size()));
  size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

}  // namespace

int main() {
  using namespace dmtl;
  const size_t hw_threads = ThreadPool::ResolveThreads(0);
  constexpr int kReps = 3;

  std::printf("=== streaming: per-event latency vs amortized batch ===\n");
  std::printf("%16s %8s %10s | %14s | %12s %12s %10s\n", "point", "events",
              "window(s)", "batch/event", "p50", "p99", "speedup");

  struct Point {
    const char* name;
    int events;
    int trades;
    int window;
  };
  // The paper-scale point (267ev/14400s - the 2.34 s batch run quoted in
  // ROADMAP item 1) plus a mid-size point so the diff has a second identity.
  const Point points[] = {
      {"eth_perp_120", 120, 26, 3600},
      {"eth_perp_267", 267, 59, 14400},
  };

  bench::JsonBuilder json;
  json.BeginObject();
  json.Field("bench", "streaming");
  json.Field("hardware_threads", hw_threads);
  bench::WriteContext(&json);
  json.BeginArray("runs");

  for (const Point& pt : points) {
    WorkloadConfig config;
    config.name = "stream";
    config.num_events = pt.events;
    config.num_trades = pt.trades;
    config.duration_s = pt.window;
    config.initial_skew = -1000.0;
    config.seed = 99;
    Session chain = bench::Check(GenerateSession(config), "generate session");
    Program program = bench::Check(EthPerpProgram(), "parse ETH-PERP program");

    // Batch lane: the cold replay the streaming session replaces. Engine
    // wall time only (no reference run), best of kReps.
    double batch_s = 0.0;
    size_t batch_derived = 0;
    size_t batch_rounds = 0;
    size_t batch_memo_isect = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      Database db = SessionToDatabase(chain);
      EngineStats stats;
      bench::Check(
          Materialize(program, &db, SessionEngineOptions(chain), &stats),
          "batch materialize");
      if (rep == 0 || stats.wall_seconds < batch_s) {
        batch_s = stats.wall_seconds;
      }
      batch_derived = stats.derived_intervals;
      batch_rounds = stats.rounds;
      batch_memo_isect = stats.memo_intersections;
    }
    double batch_event_s = batch_s / static_cast<double>(pt.events);

    // Streaming lane (growing window): one advance per distinct event time.
    double p50_s = 0.0, p99_s = 0.0, max_s = 0.0, total_s = 0.0;
    size_t advances = 0;
    size_t stream_intervals = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      SessionOptions options;
      options.start_time = Rational(chain.start_time);
      auto session = EngineSession::Create(program, options);
      bench::Check(session.status(), "create streaming session");
      std::vector<double> latencies_us;
      bench::Check(ReplaySessionStream(chain, session->get(), &latencies_us),
                   "stream replay");
      double p50 = Percentile(latencies_us, 50.0) * 1e-6;
      double p99 = Percentile(latencies_us, 99.0) * 1e-6;
      double max = Percentile(latencies_us, 100.0) * 1e-6;
      double total = 0.0;
      for (double us : latencies_us) total += us * 1e-6;
      if (rep == 0 || p50 < p50_s) p50_s = p50;
      if (rep == 0 || p99 < p99_s) p99_s = p99;
      if (rep == 0 || max < max_s) max_s = max;
      if (rep == 0 || total < total_s) total_s = total;
      advances = latencies_us.size();
      stream_intervals = (*session)->db().NumIntervals();
    }
    double speedup = p50_s > 0 ? batch_event_s / p50_s : 0.0;

    // Sliding lane: same stream with horizon = window / 4, so steady-state
    // advances retract expired coverage out the back as they derive the new
    // band at the front.
    double slide_p50_s = 0.0, slide_p99_s = 0.0;
    size_t slide_intervals = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      SessionOptions options;
      options.start_time = Rational(chain.start_time);
      options.horizon = Rational(pt.window / 4);
      auto session = EngineSession::Create(program, options);
      bench::Check(session.status(), "create sliding session");
      std::vector<double> latencies_us;
      bench::Check(ReplaySessionStream(chain, session->get(), &latencies_us),
                   "sliding replay");
      double p50 = Percentile(latencies_us, 50.0) * 1e-6;
      double p99 = Percentile(latencies_us, 99.0) * 1e-6;
      if (rep == 0 || p50 < slide_p50_s) slide_p50_s = p50;
      if (rep == 0 || p99 < slide_p99_s) slide_p99_s = p99;
      slide_intervals = (*session)->db().NumIntervals();
    }

    std::printf("%16s %8d %10d | %12.1fus | %10.1fus %10.1fus %9.1fx\n",
                pt.name, pt.events, pt.window, batch_event_s * 1e6,
                p50_s * 1e6, p99_s * 1e6, speedup);
    std::printf("%16s sliding(h=%ds)          | %10.1fus %10.1fus\n", "",
                pt.window / 4, slide_p50_s * 1e6, slide_p99_s * 1e6);

    json.BeginObject()
        .Field("name", pt.name)
        .Field("events", pt.events)
        .Field("trades", pt.trades)
        .Field("window_s", pt.window)
        .Field("batch_wall_s", batch_s)
        .Field("batch_amortized_event_s", batch_event_s)
        .Field("p50_event_s", p50_s)
        .Field("p99_event_s", p99_s)
        .Field("max_event_s", max_s)
        .Field("stream_total_s", total_s)
        .Field("slide_p50_event_s", slide_p50_s)
        .Field("slide_p99_event_s", slide_p99_s)
        .Field("advances", advances)
        .Field("speedup_vs_amortized_batch", speedup)
        .Field("derived", batch_derived)
        .Field("rounds", batch_rounds)
        .Field("batch_memo_intersections", batch_memo_isect)
        .Field("stream_intervals", stream_intervals)
        .Field("slide_intervals", slide_intervals)
        .EndObject();
  }
  json.EndArray();
  json.EndObject();
  bench::WriteJson("BENCH_streaming.json", json.TakeString());

  std::printf("done\n");
  return 0;
}
