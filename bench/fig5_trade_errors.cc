// Experiment E5 - the paper's Figure 5: mean and standard deviation of the
// errors between the metrics computed by the DatalogMTL program and the
// reference values, per trade (Returns / Fee / Funding), pooled across the
// three sessions exactly like the paper's table.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace dmtl;
  std::printf("=== Figure 5: per-trade error statistics ===\n");
  std::vector<TradeSettlement> all_ref;
  std::vector<TradeSettlement> all_dmtl;
  for (const WorkloadConfig& config : PaperSessions()) {
    bench::ExecutedSession run = bench::Execute(config);
    TradeErrorReport per_session = bench::Check(
        CompareTrades(run.trades_reference, run.trades_datalog), "compare");
    std::printf("\nsession %s (%zu trades):\n%s\n",
                run.session.name.c_str(), run.trades_reference.size(),
                per_session.ToString().c_str());
    all_ref.insert(all_ref.end(), run.trades_reference.begin(),
                   run.trades_reference.end());
    all_dmtl.insert(all_dmtl.end(), run.trades_datalog.begin(),
                    run.trades_datalog.end());
  }
  TradeErrorReport pooled =
      bench::Check(CompareTrades(all_ref, all_dmtl), "pooled compare");
  std::printf("\n--- pooled over all sessions (paper's Figure 5 layout) ---\n");
  std::printf("%-10s %14s %14s %14s\n", "", "Returns", "Fee", "Funding");
  std::printf("%-10s %14.6e %14.6e %14.6e\n", "Mean", pooled.returns.mean,
              pooled.fee.mean, pooled.funding.mean);
  std::printf("%-10s %14.6e %14.6e %14.6e\n", "Std. Dev.",
              pooled.returns.stddev, pooled.fee.stddev,
              pooled.funding.stddev);
  std::printf("\npaper reference:\n");
  std::printf("%-10s %14s %14s %14s\n", "", "Returns", "Fee", "Funding");
  std::printf("%-10s %14s %14s %14s\n", "Mean", "3.55e-15", "-9.09e-17",
              "-4.79e-15");
  std::printf("%-10s %14s %14s %14s\n", "Std. Dev.", "5.57e-14", "3.77e-16",
              "1.20e-13");
  std::printf("\npaper-shape check (all |mean| and stddev < 1e-9): %s\n",
              (std::abs(pooled.returns.mean) < 1e-9 &&
               std::abs(pooled.fee.mean) < 1e-9 &&
               std::abs(pooled.funding.mean) < 1e-9 &&
               pooled.returns.stddev < 1e-9 && pooled.fee.stddev < 1e-9 &&
               pooled.funding.stddev < 1e-9)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
