// Experiment E4 - the paper's Figure 4: the funding rate sequence computed
// by the DatalogMTL program vs the reference (Subgraph stand-in), per
// session: head/tail of both series plus the difference statistics. The
// paper reports differences in the order of 1e-12; two independent IEEE
// double implementations are expected in the same regime.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace dmtl;
  std::printf("=== Figure 4: FRS comparison (DatalogMTL vs reference) ===\n");
  for (const WorkloadConfig& config : PaperSessions()) {
    bench::ExecutedSession run = bench::Execute(config);
    std::printf("\n--- session %s (%zu FRS updates) ---\n",
                run.session.name.c_str(), run.frs_reference.size());
    std::printf("%12s %22s %22s %14s\n", "t (rel s)", "Subgraph FRS",
                "DatalogMTL FRS", "difference");
    size_t n = run.frs_reference.size();
    for (size_t i = 0; i < n; ++i) {
      if (i >= 5 && i + 5 < n) {
        if (i == 5) std::printf("%12s\n", "...");
        continue;
      }
      const FrsPoint& ref = run.frs_reference[i];
      const FrsPoint& dmtl_point = run.frs_datalog[i];
      std::printf("%12lld %22.15e %22.15e %14.3e\n",
                  static_cast<long long>(ref.time - run.session.start_time),
                  ref.f, dmtl_point.f, dmtl_point.f - ref.f);
    }
    SeriesComparison cmp = bench::Check(
        CompareFrsSeries(run.frs_reference, run.frs_datalog), "compare");
    std::printf("summary: %s\n", cmp.ToString().c_str());
    std::printf("paper-shape check (diff ~1e-12 or below): %s\n",
                cmp.max_abs_diff < 1e-9 ? "PASS" : "FAIL");
  }
  return 0;
}
