// Experiment E2 - the paper's Figure 2: the market metrics table, evaluated
// on representative market states so the formulas are inspectable.

#include <cstdio>

#include "src/contracts/market_params.h"

int main() {
  using namespace dmtl;
  MarketParams p;
  std::printf("=== Figure 2: market metrics ===\n");
  std::printf("Max Funding Rate        i_max = %.3f\n", p.max_funding_rate);
  std::printf("Max Proportional Skew   W_max = %.0f / p_t\n",
              p.skew_scale_usd);
  std::printf("Epochs per day                  %.0f\n", p.seconds_per_day);
  std::printf("Instantaneous rate      i_t = clamp(-K/W_max, -1, 1) "
              "* i_max / %.0f\n\n",
              p.seconds_per_day);

  std::printf("%12s %10s %14s %16s\n", "skew K", "price p", "W_max",
              "i_t (per sec)");
  const double prices[] = {1200.0, 1300.0};
  const double skews[] = {-2445.98, 0.0, 1302.88, 2502.85, 260000.0,
                          -400000.0};
  for (double price : prices) {
    for (double skew : skews) {
      std::printf("%12.2f %10.2f %14.2f %16.6e\n", skew, price,
                  p.skew_scale_usd / price,
                  p.InstantaneousRate(skew, price));
    }
  }
  std::printf("\nFee rates: maker phi_m = %.4f, taker phi_t = %.4f "
              "(convention: %s)\n",
              p.maker_fee, p.taker_fee,
              p.fee_convention == FeeConvention::kSection37Table
                  ? "Section 3.7 table"
                  : "printed rules");
  return 0;
}
