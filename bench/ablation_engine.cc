// Experiment B7 - engine ablations for the design choices DESIGN.md calls
// out: (a) chain acceleration on/off, (b) semi-naive vs naive evaluation,
// (c) cost-based join planning on/off. All variants must produce identical
// materializations; the ablation quantifies the cost of turning each
// optimization off.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace dmtl;

double RunWith(const WorkloadConfig& config, bool accel, bool naive,
               bool planning, EngineStats* stats) {
  Session session = bench::Check(GenerateSession(config), "generate");
  Program program = bench::Check(EthPerpProgram(), "program");
  Database db = SessionToDatabase(session);
  EngineOptions options = SessionEngineOptions(session);
  options.enable_chain_acceleration = accel;
  options.naive_evaluation = naive;
  options.enable_join_planning = planning;
  bench::Check(Materialize(program, &db, options, stats), "materialize");
  return stats->wall_seconds;
}

}  // namespace

int main() {
  std::printf("=== engine ablations (identical results, different cost) "
              "===\n");
  // Ablations run on a reduced session: the un-accelerated engine pays one
  // fixpoint round per tick, which is exactly the point being measured.
  WorkloadConfig config;
  config.name = "ablation";
  config.num_events = 40;
  config.num_trades = 8;
  config.duration_s = 600;
  config.initial_skew = -500.0;
  config.seed = 5;

  EngineStats accel_stats;
  double accel = RunWith(config, /*accel=*/true, /*naive=*/false,
                         /*planning=*/true, &accel_stats);
  EngineStats noplan_stats;
  double noplan = RunWith(config, /*accel=*/true, /*naive=*/false,
                          /*planning=*/false, &noplan_stats);
  EngineStats plain_stats;
  double plain = RunWith(config, /*accel=*/false, /*naive=*/false,
                         /*planning=*/true, &plain_stats);
  EngineStats naive_stats;
  double naive = RunWith(config, /*accel=*/false, /*naive=*/true,
                         /*planning=*/true, &naive_stats);

  std::printf("%-32s %12s %10s %12s\n", "configuration", "runtime(s)",
              "rounds", "rule evals");
  std::printf("%-32s %12.3f %10zu %12zu\n", "semi-naive + accel + planner",
              accel, accel_stats.rounds, accel_stats.rule_evaluations);
  std::printf("%-32s %12.3f %10zu %12zu\n", "semi-naive + accel, no planner",
              noplan, noplan_stats.rounds, noplan_stats.rule_evaluations);
  std::printf("%-32s %12.3f %10zu %12zu\n", "semi-naive, no acceleration",
              plain, plain_stats.rounds, plain_stats.rule_evaluations);
  std::printf("%-32s %12.3f %10zu %12zu\n", "naive re-evaluation",
              naive, naive_stats.rounds, naive_stats.rule_evaluations);
  std::printf("\nspeedup from chain acceleration: %.1fx\n", plain / accel);
  std::printf("speedup of semi-naive over naive: %.1fx\n", naive / plain);
  std::printf("speedup from join planning:       %.2fx\n", noplan / accel);
  std::printf("planner: %zu indexes, %zu probes (%zu hits), %zu tuples "
              "pruned\n",
              accel_stats.planner_indexes_built,
              accel_stats.planner_index_probes, accel_stats.planner_probe_hits,
              accel_stats.planner_pruned_tuples);
  return 0;
}
