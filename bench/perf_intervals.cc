// Experiment E6 - the paper's Section 4.2 performance paragraph: the
// materialization wall-clock for the three 2-hour sessions. The paper's
// claim is a *shape* claim - the runtime must be much smaller than the
// simulated interval, confirming a contract could realistically live in a
// reasoner. (Absolute numbers differ: the paper ran Vadalog on a JVM
// laptop; this is a purpose-built C++ engine.)

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace dmtl;
  std::printf("=== Section 4.2: runtime per 2-hour session ===\n");
  std::printf("%-26s %10s %12s %14s %12s\n", "session", "events",
              "runtime (s)", "interval (s)", "runtime/ivl");
  const double paper_runtimes[] = {1140.0, 540.0, 420.0};
  size_t i = 0;
  bool all_faster_than_real_time = true;
  for (const WorkloadConfig& config : PaperSessions()) {
    bench::ExecutedSession run = bench::Execute(config);
    double runtime = run.stats.wall_seconds;
    double interval = static_cast<double>(run.session.duration());
    std::printf("%-26s %10zu %12.3f %14.0f %12.5f\n",
                run.session.name.c_str(), run.session.events.size(), runtime,
                interval, runtime / interval);
    std::printf("    engine: %s\n", run.stats.ToString().c_str());
    std::printf("    paper (Vadalog): %.0f s -> ratio %.3f\n",
                paper_runtimes[i], paper_runtimes[i] / interval);
    all_faster_than_real_time &= runtime < interval;
    ++i;
  }
  std::printf("\npaper-shape check (runtime << interval for all sessions): "
              "%s\n",
              all_faster_than_real_time ? "PASS" : "FAIL");
  return 0;
}
