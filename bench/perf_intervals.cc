// Experiment E6 - the paper's Section 4.2 performance paragraph: the
// materialization wall-clock for the three 2-hour sessions. The paper's
// claim is a *shape* claim - the runtime must be much smaller than the
// simulated interval, confirming a contract could realistically live in a
// reasoner. (Absolute numbers differ: the paper ran Vadalog on a JVM
// laptop; this is a purpose-built C++ engine.)
//
// Also hosts the memory-architecture microbenches (docs/ENGINE.md): the
// dense integer-timeline kernels against the Rational sweeps, and round
// arenas against plain heap allocation for per-round transient churn.
// Run with --benchmark_filter=BM_ to get only the micro section.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/arena.h"
#include "src/temporal/dense.h"

namespace dmtl {
namespace {

// Dense vs rational kernels over interleaved integral chains (arg0: 0 =
// rational sweep, 1 = dense keys; arg1: kernel; arg2: components per side).
enum DenseKernel { kUnion = 0, kIntersect, kSubtract, kDiamondMinus, kBoxMinus };

void BM_DenseIntervalKernels(benchmark::State& state) {
  const bool dense_on = state.range(0) != 0;
  const DenseKernel kernel = static_cast<DenseKernel>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  IntervalSet a;
  IntervalSet b;
  for (int i = 0; i < n; ++i) {
    a.Add(Interval::Closed(Rational(4 * i), Rational(4 * i + 1)));
    b.Add(Interval::Closed(Rational(4 * i + 1), Rational(4 * i + 3)));
  }
  const Interval rho = Interval::Closed(Rational(0), Rational(2));
  dense::DenseScope scope(dense_on);
  for (auto _ : state) {
    switch (kernel) {
      case kUnion: {
        IntervalSet u = a;
        u.UnionWith(b);
        benchmark::DoNotOptimize(u);
        break;
      }
      case kIntersect:
        benchmark::DoNotOptimize(a.Intersect(b));
        break;
      case kSubtract:
        benchmark::DoNotOptimize(a.Subtract(b));
        break;
      case kDiamondMinus:
        benchmark::DoNotOptimize(a.DiamondMinus(rho));
        break;
      case kBoxMinus:
        benchmark::DoNotOptimize(a.BoxMinus(rho));
        break;
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
  static const char* const kKernelNames[] = {"union", "intersect", "subtract",
                                             "diamondminus", "boxminus"};
  state.SetLabel(std::string(kKernelNames[kernel]) +
                 (dense_on ? " timeline=dense" : " timeline=rational"));
}
BENCHMARK(BM_DenseIntervalKernels)
    ->Args({0, kUnion, 4096})
    ->Args({1, kUnion, 4096})
    ->Args({0, kIntersect, 4096})
    ->Args({1, kIntersect, 4096})
    ->Args({0, kSubtract, 4096})
    ->Args({1, kSubtract, 4096})
    ->Args({0, kDiamondMinus, 4096})
    ->Args({1, kDiamondMinus, 4096})
    ->Args({0, kBoxMinus, 4096})
    ->Args({1, kBoxMinus, 4096});

// Round-shaped transient churn: many short-lived spilled sets per round,
// then a barrier. With the arena armed (arg0=1) the spills bump-allocate
// and the barrier is a pointer rewind; without it every spill is an
// operator new/delete pair.
void BM_ArenaRoundAlloc(benchmark::State& state) {
  const bool arena_on = state.range(0) != 0;
  constexpr int kSetsPerRound = 64;
  constexpr int kComponents = 16;  // spills well past the inline capacity
  RoundArena arena;
  for (auto _ : state) {
    ArenaScope scope(arena_on ? &arena : nullptr);
    for (int r = 0; r < kSetsPerRound; ++r) {
      IntervalSet s;
      for (int i = 0; i < kComponents; ++i) {
        s.Add(Interval::Closed(Rational(3 * i), Rational(3 * i + 1)));
      }
      benchmark::DoNotOptimize(s);
    }
    arena.Reset();
  }
  state.SetItemsProcessed(state.iterations() * kSetsPerRound);
  state.SetLabel(arena_on ? "arena" : "heap");
}
BENCHMARK(BM_ArenaRoundAlloc)->Arg(0)->Arg(1);

}  // namespace
}  // namespace dmtl

int main(int argc, char** argv) {
  using namespace dmtl;
  std::printf("=== Section 4.2: runtime per 2-hour session ===\n");
  std::printf("%-26s %10s %12s %14s %12s\n", "session", "events",
              "runtime (s)", "interval (s)", "runtime/ivl");
  const double paper_runtimes[] = {1140.0, 540.0, 420.0};
  size_t i = 0;
  bool all_faster_than_real_time = true;
  for (const WorkloadConfig& config : PaperSessions()) {
    bench::ExecutedSession run = bench::Execute(config);
    double runtime = run.stats.wall_seconds;
    double interval = static_cast<double>(run.session.duration());
    std::printf("%-26s %10zu %12.3f %14.0f %12.5f\n",
                run.session.name.c_str(), run.session.events.size(), runtime,
                interval, runtime / interval);
    std::printf("    engine: %s\n", run.stats.ToString().c_str());
    std::printf("    paper (Vadalog): %.0f s -> ratio %.3f\n",
                paper_runtimes[i], paper_runtimes[i] / interval);
    all_faster_than_real_time &= runtime < interval;
    ++i;
  }
  std::printf("\npaper-shape check (runtime << interval for all sessions): "
              "%s\n",
              all_faster_than_real_time ? "PASS" : "FAIL");

  std::printf("\n=== Memory-architecture microbenches ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
