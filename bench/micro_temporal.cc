// Experiment B1 - microbenchmarks of the temporal substrate: interval set
// insertion/coalescing, intersections (including the asymmetric fast path
// that rule evaluation leans on), and the MTL operator transforms.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/temporal/interval_set.h"

namespace dmtl {
namespace {

IntervalSet TickChain(int n) {
  IntervalSet set;
  for (int i = 0; i < n; ++i) {
    set.Insert(Interval::Point(Rational(i)));
  }
  return set;
}

void BM_InsertAppendChain(benchmark::State& state) {
  for (auto _ : state) {
    IntervalSet set = TickChain(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InsertAppendChain)->Arg(128)->Arg(1024)->Arg(8192);

void BM_InsertCoalescing(benchmark::State& state) {
  for (auto _ : state) {
    IntervalSet set;
    int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      // Touching closed intervals coalesce into one.
      set.Insert(Interval::Closed(Rational(i), Rational(i + 1)));
    }
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InsertCoalescing)->Arg(128)->Arg(1024)->Arg(8192);

void BM_IntersectSmallLarge(benchmark::State& state) {
  IntervalSet large = TickChain(static_cast<int>(state.range(0)));
  IntervalSet small(Interval::Point(Rational(state.range(0) / 2)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(large.Intersect(small));
  }
}
BENCHMARK(BM_IntersectSmallLarge)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_IntersectSweep(benchmark::State& state) {
  IntervalSet a = TickChain(static_cast<int>(state.range(0)));
  IntervalSet b = a.Shift(Rational(1, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersect(b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntersectSweep)->Arg(1024)->Arg(8192);

void BM_Complement(benchmark::State& state) {
  IntervalSet set = TickChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Complement());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Complement)->Arg(1024)->Arg(8192);

void BM_DiamondMinusTransform(benchmark::State& state) {
  IntervalSet set = TickChain(static_cast<int>(state.range(0)));
  Interval rho = Interval::Point(Rational(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.DiamondMinus(rho));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiamondMinusTransform)->Arg(1024)->Arg(8192);

void BM_BoxMinusTransform(benchmark::State& state) {
  // Wide components erode; per-tick chains mostly vanish.
  IntervalSet set;
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    set.Insert(
        Interval::Closed(Rational(10 * i), Rational(10 * i + 6)));
  }
  Interval rho = Interval::Closed(Rational(0), Rational(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.BoxMinus(rho));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BoxMinusTransform)->Arg(1024)->Arg(8192);

void BM_SinceOperator(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  IntervalSet m1;
  IntervalSet m2;
  for (int i = 0; i < n; ++i) {
    m1.Insert(Interval::Closed(Rational(10 * i), Rational(10 * i + 8)));
    m2.Insert(Interval::Point(Rational(10 * i + 1)));
  }
  Interval rho = Interval::Closed(Rational(0), Rational(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m1.Since(m2, rho));
  }
}
BENCHMARK(BM_SinceOperator)->Arg(64)->Arg(256);

// Batched construction: one sort + one coalescing sweep (FromIntervals)
// versus the per-interval Insert loop over the same stream. The stream is
// emitted out of order so the bulk path cannot ride the append fast path.
void BM_IntervalSetBulkInsert(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Interval> stream;
  stream.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Stride through residue classes: maximally unsorted, partially
    // coalescing input.
    int t = (i * 7919) % n;
    stream.push_back(Interval::Closed(Rational(2 * t), Rational(2 * t + 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalSet::FromIntervals(stream));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IntervalSetBulkInsert)->Arg(128)->Arg(1024)->Arg(8192);

// The per-interval reference for the bulk row above (same stream).
void BM_IntervalSetBulkInsertReference(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Interval> stream;
  stream.reserve(n);
  for (int i = 0; i < n; ++i) {
    int t = (i * 7919) % n;
    stream.push_back(Interval::Closed(Rational(2 * t), Rational(2 * t + 1)));
  }
  for (auto _ : state) {
    IntervalSet set;
    for (const Interval& iv : stream) set.Insert(iv);
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IntervalSetBulkInsertReference)->Arg(128)->Arg(1024)->Arg(8192);

// Bulk merge-union of two offset tick chains: the single two-pointer sweep
// UnionWith runs versus inserting the other set's components one by one.
void BM_IntervalSetUnionWith(benchmark::State& state) {
  IntervalSet a = TickChain(static_cast<int>(state.range(0)));
  IntervalSet b = a.Shift(Rational(1, 2));
  for (auto _ : state) {
    IntervalSet merged = a;
    merged.UnionWith(b);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalSetUnionWith)->Arg(1024)->Arg(8192);

void BM_ContainsBinarySearch(benchmark::State& state) {
  IntervalSet set = TickChain(static_cast<int>(state.range(0)));
  Rational probe(state.range(0) / 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Contains(probe));
  }
}
BENCHMARK(BM_ContainsBinarySearch)->Arg(1024)->Arg(65536);

}  // namespace
}  // namespace dmtl
