// Experiment B8 - engine stress on canonical DatalogMTL recursion patterns
// (iTemporal-style synthetic programs): materialization cost per pattern as
// depth and data volume grow. Complements the contract-specific benches
// with engine-general coverage.
//
// A second section drives account-sharded contract sessions through
// ParallelSessions sequentially and with the full thread pool, reporting
// the speedup. Results land in BENCH_engine_stress.json.

#include <chrono>
#include <cstdio>

#include "src/common/thread_pool.h"
#include "src/engine/reasoner.h"
#include "src/synth/temporal_bench.h"
#include "src/validation/parallel_sessions.h"
#include "bench/bench_util.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace dmtl;
  bench::JsonBuilder json;
  json.BeginObject();
  json.Field("bench", "engine_stress");
  json.Field("hardware_threads", ThreadPool::ResolveThreads(0));
  bench::WriteContext(&json);

  std::printf("=== engine stress: synthetic DatalogMTL patterns ===\n");
  std::printf("%-20s %6s %7s %9s %12s %14s %8s\n", "pattern", "depth",
              "facts", "timeline", "runtime(s)", "derived", "out");

  const SynthPattern patterns[] = {
      SynthPattern::kLinearChain, SynthPattern::kStarJoin,
      SynthPattern::kTransitiveClosure, SynthPattern::kWindowCascade,
      SynthPattern::kSelfChain,
  };
  struct Size {
    int depth;
    int facts;
    int64_t timeline;
  };
  const Size sizes[] = {{4, 200, 500}, {8, 800, 2000}, {12, 2000, 5000}};

  json.BeginArray("patterns");
  for (SynthPattern pattern : patterns) {
    for (const Size& size : sizes) {
      SynthConfig config;
      config.pattern = pattern;
      config.depth = size.depth;
      config.num_facts = size.facts;
      config.timeline = size.timeline;
      config.num_constants = 20;
      config.window = 3;
      config.seed = 42;
      SynthBenchmark synth =
          bench::Check(GenerateTemporalBenchmark(config), "generate");
      auto unit = Parser::Parse(synth.text);
      bench::Check(unit.status(), "parse");
      EngineOptions options;
      options.min_time = Rational(0);
      options.max_time = Rational(synth.horizon);
      Database db = unit->database;
      EngineStats stats;
      bench::Check(Materialize(unit->program, &db, options, &stats),
                   "materialize");
      const Relation* out_rel = db.Find(synth.output_predicate);
      size_t out_count = out_rel == nullptr ? 0 : out_rel->NumIntervals();
      std::printf("%-20s %6d %7d %9lld %12.4f %14zu %8zu\n",
                  SynthPatternToString(pattern), size.depth, size.facts,
                  static_cast<long long>(size.timeline), stats.wall_seconds,
                  stats.derived_intervals, out_count);
      json.BeginObject()
          .Field("pattern", SynthPatternToString(pattern))
          .Field("depth", size.depth)
          .Field("facts", size.facts)
          .Field("timeline", static_cast<size_t>(size.timeline))
          .Field("runtime_s", stats.wall_seconds)
          .Field("derived", stats.derived_intervals)
          .Field("out", out_count)
          .EndObject();
    }
  }
  json.EndArray();

  // --- sharded contract sessions: sequential vs. thread pool -------------
  // Each shard is an independent account population, so this axis scales
  // with cores without any cross-thread synchronization inside a round.
  std::printf("\n=== sharded contract sessions: sequential vs parallel ===\n");
  WorkloadConfig base;
  base.name = "stress";
  base.num_events = 40;
  base.num_trades = 8;
  base.duration_s = 1200;
  base.initial_skew = -500.0;
  base.seed = 77;
  const int kShards = 4;
  std::vector<WorkloadConfig> shards = ShardConfigs(base, kShards);

  ParallelSessionsOptions sequential;
  sequential.num_threads = 1;
  auto seq_start = std::chrono::steady_clock::now();
  auto seq = RunParallelSessions(shards, sequential);
  double seq_s = Seconds(seq_start);
  bench::Check(seq.status(), "sequential shards");

  ParallelSessionsOptions parallel;
  parallel.num_threads = 0;  // hardware concurrency
  const size_t par_threads = parallel.ResolvedThreads();
  auto par_start = std::chrono::steady_clock::now();
  auto par = RunParallelSessions(shards, parallel);
  double par_s = Seconds(par_start);
  bench::Check(par.status(), "parallel shards");

  size_t seq_derived = 0;
  size_t par_derived = 0;
  for (const auto& shard : *seq) seq_derived += shard.stats.derived_intervals;
  for (const auto& shard : *par) par_derived += shard.stats.derived_intervals;
  double speedup = par_s > 0 ? seq_s / par_s : 0.0;
  std::printf("%8s %10s %12s %14s\n", "mode", "threads", "runtime(s)",
              "derived");
  std::printf("%8s %10d %12.3f %14zu\n", "seq", 1, seq_s, seq_derived);
  std::printf("%8s %10zu %12.3f %14zu\n", "par", par_threads, par_s,
              par_derived);
  std::printf("speedup: %.2fx over %d shards\n", speedup, kShards);

  json.BeginObject("sharded_sessions")
      .Field("shards", kShards)
      .Field("events_per_shard", base.num_events)
      .Field("sequential_s", seq_s)
      .Field("parallel_s", par_s)
      // 0 = "hardware concurrency" as requested; parallel_threads is the
      // shard-pool width the request resolved to (see
      // ParallelSessionsOptions::ResolvedThreads), not a re-derivation.
      .Field("requested_threads", static_cast<size_t>(0))
      .Field("parallel_threads", par_threads)
      .Field("speedup", speedup)
      .Field("sequential_derived", seq_derived)
      .Field("parallel_derived", par_derived)
      .EndObject();
  json.EndObject();
  bench::WriteJson("BENCH_engine_stress.json", json.TakeString());
  return 0;
}
