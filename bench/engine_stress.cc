// Experiment B8 - engine stress on canonical DatalogMTL recursion patterns
// (iTemporal-style synthetic programs): materialization cost per pattern as
// depth and data volume grow. Complements the contract-specific benches
// with engine-general coverage.

#include <cstdio>

#include "src/engine/reasoner.h"
#include "src/synth/temporal_bench.h"
#include "bench/bench_util.h"

int main() {
  using namespace dmtl;
  std::printf("=== engine stress: synthetic DatalogMTL patterns ===\n");
  std::printf("%-20s %6s %7s %9s %12s %14s %8s\n", "pattern", "depth",
              "facts", "timeline", "runtime(s)", "derived", "out");

  const SynthPattern patterns[] = {
      SynthPattern::kLinearChain, SynthPattern::kStarJoin,
      SynthPattern::kTransitiveClosure, SynthPattern::kWindowCascade,
      SynthPattern::kSelfChain,
  };
  struct Size {
    int depth;
    int facts;
    int64_t timeline;
  };
  const Size sizes[] = {{4, 200, 500}, {8, 800, 2000}, {12, 2000, 5000}};

  for (SynthPattern pattern : patterns) {
    for (const Size& size : sizes) {
      SynthConfig config;
      config.pattern = pattern;
      config.depth = size.depth;
      config.num_facts = size.facts;
      config.timeline = size.timeline;
      config.num_constants = 20;
      config.window = 3;
      config.seed = 42;
      SynthBenchmark synth =
          bench::Check(GenerateTemporalBenchmark(config), "generate");
      auto unit = Parser::Parse(synth.text);
      bench::Check(unit.status(), "parse");
      EngineOptions options;
      options.min_time = Rational(0);
      options.max_time = Rational(synth.horizon);
      Database db = unit->database;
      EngineStats stats;
      bench::Check(Materialize(unit->program, &db, options, &stats),
                   "materialize");
      const Relation* out_rel = db.Find(synth.output_predicate);
      size_t out_count = out_rel == nullptr ? 0 : out_rel->NumIntervals();
      std::printf("%-20s %6d %7d %9lld %12.4f %14zu %8zu\n",
                  SynthPatternToString(pattern), size.depth, size.facts,
                  static_cast<long long>(size.timeline), stats.wall_seconds,
                  stats.derived_intervals, out_count);
    }
  }
  return 0;
}
