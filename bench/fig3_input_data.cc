// Experiment E3 - the paper's Figure 3: the input data table for the three
// 2-hour evaluation windows. The real Optimism transaction stream is not
// available offline; the generator reproduces the observable columns
// exactly (# events, # trades, initial skew, window) with synthetic orders.

#include <cstdio>

#include "src/chain/workload.h"
#include "bench/bench_util.h"

int main() {
  using namespace dmtl;
  std::printf("=== Figure 3: input data (paper columns vs generated) ===\n");
  std::printf("%-24s %-15s %9s %9s %11s\n", "Date", "Interval (GMT)",
              "# events", "# trades", "Skew");
  struct Row {
    const char* date;
    const char* interval;
  };
  const Row rows[] = {{"2022-09-27", "10.30 - 12.30"},
                      {"2022-10-07", "18.00 - 20.00"},
                      {"2022-10-12", "14.00 - 16.00"}};
  auto configs = PaperSessions();
  for (size_t i = 0; i < configs.size(); ++i) {
    Session session =
        bench::Check(GenerateSession(configs[i]), "generate session");
    std::printf("%-24s %-15s %9zu %9zu %11.2f\n", rows[i].date,
                rows[i].interval, session.events.size(),
                session.NumTrades(), session.initial_skew);
  }
  std::printf("\npaper reference:\n");
  std::printf("%-24s %-15s %9d %9d %11.2f\n", "2022-09-27", "10.30 - 12.30",
              267, 59, -2445.98);
  std::printf("%-24s %-15s %9d %9d %11.2f\n", "2022-10-07", "18.00 - 20.00",
              108, 16, 1302.88);
  std::printf("%-24s %-15s %9d %9d %11.2f\n", "2022-10-12", "14.00 - 16.00",
              128, 29, 2502.85);

  // Method-call mix of the generated sessions (not reported by the paper,
  // shown for transparency of the substitution).
  std::printf("\ngenerated method mix per session:\n");
  for (const WorkloadConfig& config : PaperSessions()) {
    Session session = bench::Check(GenerateSession(config), "generate");
    int counts[4] = {0, 0, 0, 0};
    for (const MarketEvent& e : session.events) {
      ++counts[static_cast<int>(e.kind)];
    }
    std::printf("  %-26s tranM=%-4d withdraw=%-4d modPos=%-4d "
                "closePos=%-4d\n",
                session.name.c_str(), counts[0], counts[1], counts[2],
                counts[3]);
  }
  return 0;
}
