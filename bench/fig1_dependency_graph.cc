// Experiment E1 - the paper's Figure 1: the simplified dependency graph of
// the ETH-PERP DatalogMTL program. Prints the predicate inventory, the
// stratification, the rule-induced edges, and a Graphviz rendering.

#include <cstdio>
#include <map>
#include <vector>

#include "src/analysis/dot_export.h"
#include "src/analysis/stratifier.h"
#include "src/contracts/eth_perp_program.h"
#include "bench/bench_util.h"

int main() {
  using namespace dmtl;
  Program program = bench::Check(EthPerpProgram(), "parse program");
  std::printf("=== Figure 1: ETH-PERP dependency graph ===\n");
  std::printf("rules: %zu\n", program.size());

  Stratification strat = bench::Check(Stratify(program), "stratify");
  std::printf("strata: %d (stratification exists; Section 3.8 argument "
              "holds)\n\n",
              strat.num_strata);
  std::map<int, std::vector<std::string>> by_stratum;
  for (const auto& [pred, s] : strat.predicate_stratum) {
    by_stratum[s].push_back(PredicateName(pred));
  }
  for (auto& [s, names] : by_stratum) {
    std::sort(names.begin(), names.end());
    std::printf("stratum %d:", s);
    for (const std::string& name : names) std::printf(" %s", name.c_str());
    std::printf("\n");
  }

  DependencyGraph graph = DependencyGraph::Build(program);
  std::printf("\nedges (%zu; -> positive, -!> negated, -agg> aggregated):\n%s",
              graph.edges().size(), graph.ToString().c_str());
  std::printf("\nGraphviz DOT:\n%s", ToDot(graph, "eth_perp").c_str());
  return 0;
}
