#include "src/temporal/interval_set.h"

#include <gtest/gtest.h>

#include <random>

namespace dmtl {
namespace {

Interval C(int lo, int hi) { return Interval::Closed(Rational(lo), Rational(hi)); }
Interval P(int t) { return Interval::Point(Rational(t)); }

TEST(IntervalSetTest, InsertCoalescesTouching) {
  IntervalSet set;
  set.Insert(Interval::ClosedOpen(Rational(1), Rational(3)));
  set.Insert(C(3, 5));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], C(1, 5));
}

TEST(IntervalSetTest, InsertKeepsDenseGaps) {
  IntervalSet set;
  set.Insert(P(5));
  set.Insert(P(6));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.Contains(Rational(11, 2)));
}

TEST(IntervalSetTest, InsertReturnsNewlyCoveredPortion) {
  IntervalSet set;
  IntervalSet d1 = set.Insert(C(0, 10));
  EXPECT_EQ(d1, IntervalSet(C(0, 10)));
  // Fully contained: no delta.
  IntervalSet d2 = set.Insert(C(2, 5));
  EXPECT_TRUE(d2.IsEmpty());
  // Overlap: only the new part comes back.
  IntervalSet d3 = set.Insert(C(8, 15));
  EXPECT_EQ(d3, IntervalSet(Interval::OpenClosed(Rational(10), Rational(15))));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], C(0, 15));
}

TEST(IntervalSetTest, InsertBridgesMultipleComponents) {
  IntervalSet set;
  set.Insert(C(0, 2));
  set.Insert(C(4, 6));
  set.Insert(C(8, 10));
  IntervalSet delta = set.Insert(C(1, 9));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], C(0, 10));
  // Delta: (2,4) and (6,8).
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_TRUE(delta.Contains(Rational(3)));
  EXPECT_TRUE(delta.Contains(Rational(7)));
  EXPECT_FALSE(delta.Contains(Rational(5)));
}

TEST(IntervalSetTest, InsertDeltaAtTouchingEndpoints) {
  // Closed meets closed at one point: the shared endpoint is already
  // covered, so the delta opens there.
  IntervalSet set;
  set.Insert(C(0, 5));
  IntervalSet d1 = set.Insert(C(5, 10));
  EXPECT_EQ(d1, IntervalSet(Interval::OpenClosed(Rational(5), Rational(10))));
  EXPECT_EQ(set.size(), 1u);

  // Half-open meets closed: nothing at 5 was covered, the delta keeps its
  // closed lower bound.
  IntervalSet half;
  half.Insert(Interval::ClosedOpen(Rational(0), Rational(5)));
  IntervalSet d2 = half.Insert(C(5, 10));
  EXPECT_EQ(d2, IntervalSet(C(5, 10)));
  EXPECT_EQ(half.size(), 1u);
  EXPECT_EQ(half.intervals()[0], C(0, 10));

  // Open meets open across a shared endpoint: the point between them is
  // genuinely new and shows up as a punctual delta component.
  IntervalSet open;
  open.Insert(Interval::Open(Rational(0), Rational(5)));
  open.Insert(Interval::Open(Rational(5), Rational(10)));
  EXPECT_EQ(open.size(), 2u);
  IntervalSet d3 = open.Insert(P(5));
  EXPECT_EQ(d3, IntervalSet(P(5)));
  EXPECT_EQ(open.size(), 1u);
  EXPECT_EQ(open.intervals()[0], Interval::Open(Rational(0), Rational(10)));
}

TEST(IntervalSetTest, InsertDeltaWithPointIntervals) {
  IntervalSet set;
  set.Insert(C(0, 5));
  // Point already covered (endpoint of a closed interval): empty delta.
  EXPECT_TRUE(set.Insert(P(5)).IsEmpty());
  EXPECT_TRUE(set.Insert(P(3)).IsEmpty());
  // Point outside: comes back verbatim, and stays a separate component
  // across a dense gap.
  IntervalSet d = set.Insert(P(7));
  EXPECT_EQ(d, IntervalSet(P(7)));
  EXPECT_EQ(set.size(), 2u);
  // Filling the open gap (5,7) bridges everything into one interval.
  IntervalSet gap = set.Insert(Interval::Open(Rational(5), Rational(7)));
  EXPECT_EQ(gap, IntervalSet(Interval::Open(Rational(5), Rational(7))));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], C(0, 7));
}

TEST(IntervalSetTest, InsertDeltaOpenVersusClosedOverlap) {
  // Overlapping an open interval with a closed superset: the delta is
  // exactly the two endpoints the open interval was missing.
  IntervalSet set;
  set.Insert(Interval::Open(Rational(2), Rational(4)));
  IntervalSet d = set.Insert(C(2, 4));
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.Contains(Rational(2)));
  EXPECT_TRUE(d.Contains(Rational(4)));
  EXPECT_FALSE(d.Contains(Rational(3)));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], C(2, 4));
}

TEST(IntervalSetTest, HullSpansFirstToLast) {
  IntervalSet set = IntervalSet::FromIntervals({C(0, 2), P(5), C(8, 10)});
  EXPECT_EQ(set.Hull(), C(0, 10));
  EXPECT_EQ(IntervalSet(P(3)).Hull(), P(3));
  // Unbounded components stretch the hull to infinity.
  IntervalSet unbounded;
  unbounded.Insert(C(0, 1));
  unbounded.Insert(Interval::AtLeast(Rational(9)));
  EXPECT_TRUE(unbounded.Hull().hi().infinite);
  EXPECT_FALSE(unbounded.Hull().lo().infinite);
}

TEST(IntervalSetTest, ContainsPointAndInterval) {
  IntervalSet set = IntervalSet::FromIntervals({C(0, 2), C(5, 9)});
  EXPECT_TRUE(set.Contains(Rational(1)));
  EXPECT_FALSE(set.Contains(Rational(3)));
  EXPECT_TRUE(set.Contains(C(6, 8)));
  // Spans a gap: not contained even though both ends are.
  EXPECT_FALSE(set.Contains(C(1, 6)));
}

TEST(IntervalSetTest, IntersectSets) {
  IntervalSet a = IntervalSet::FromIntervals({C(0, 4), C(8, 12)});
  IntervalSet b = IntervalSet::FromIntervals({C(2, 9), C(11, 20)});
  IntervalSet x = a.Intersect(b);
  EXPECT_EQ(x, IntervalSet::FromIntervals({C(2, 4), C(8, 9), C(11, 12)}));
}

TEST(IntervalSetTest, IntersectAsymmetricFastPathMatchesSweep) {
  // Build a large per-tick chain extent and probe with a punctual set; the
  // binary-search fast path must agree with the naive result.
  IntervalSet large;
  for (int t = 0; t < 500; ++t) large.Insert(P(2 * t));
  IntervalSet small = IntervalSet::FromIntervals({P(40), P(41), P(800)});
  IntervalSet x = large.Intersect(small);
  EXPECT_EQ(x, IntervalSet::FromIntervals({P(40), P(800)}));
  EXPECT_EQ(x, small.Intersect(large));
}

TEST(IntervalSetTest, Complement) {
  IntervalSet set = IntervalSet::FromIntervals(
      {Interval::ClosedOpen(Rational(0), Rational(2)), C(5, 7)});
  IntervalSet comp = set.Complement();
  EXPECT_TRUE(comp.Contains(Rational(-1)));
  EXPECT_TRUE(comp.Contains(Rational(2)));  // open end of [0,2)
  EXPECT_TRUE(comp.Contains(Rational(3)));
  EXPECT_FALSE(comp.Contains(Rational(5)));
  EXPECT_FALSE(comp.Contains(Rational(1)));
  EXPECT_TRUE(comp.Contains(Rational(100)));
  // Complement of empty is everything; double complement restores.
  EXPECT_EQ(IntervalSet().Complement(), IntervalSet(Interval::All()));
  EXPECT_EQ(set.Complement().Complement(), set);
}

TEST(IntervalSetTest, Subtract) {
  IntervalSet a(C(0, 10));
  IntervalSet b = IntervalSet::FromIntervals({C(2, 3), P(7)});
  IntervalSet d = a.Subtract(b);
  EXPECT_TRUE(d.Contains(Rational(1)));
  EXPECT_FALSE(d.Contains(Rational(2)));
  EXPECT_FALSE(d.Contains(Rational(5, 2)));
  EXPECT_TRUE(d.Contains(Rational(4)));
  EXPECT_FALSE(d.Contains(Rational(7)));
  EXPECT_TRUE(d.Contains(Rational(8)));
}

TEST(IntervalSetTest, ShiftAndTransforms) {
  IntervalSet set = IntervalSet::FromIntervals({P(1), C(5, 6)});
  EXPECT_EQ(set.Shift(Rational(2)),
            IntervalSet::FromIntervals({P(3), C(7, 8)}));
  Interval rho = C(0, 2);
  IntervalSet dil = set.DiamondMinus(rho);
  EXPECT_EQ(dil, IntervalSet::FromIntervals({C(1, 3), C(5, 8)}));
  // Box over a union must treat components separately: a window can never
  // span a true gap.
  IntervalSet box = IntervalSet::FromIntervals({C(0, 4), C(6, 20)})
                        .BoxMinus(C(0, 3));
  EXPECT_EQ(box, IntervalSet::FromIntervals({C(3, 4), C(9, 20)}));
}

TEST(IntervalSetTest, DiamondTransformCoalescesOverlaps) {
  IntervalSet set = IntervalSet::FromIntervals({P(0), P(1), P(2)});
  IntervalSet dil = set.DiamondMinus(C(0, 1));
  EXPECT_EQ(dil, IntervalSet(C(0, 3)));
}

TEST(IntervalSetTest, IsPunctualOnly) {
  IntervalSet set = IntervalSet::FromIntervals({P(3), P(9)});
  std::vector<Rational> points;
  EXPECT_TRUE(set.IsPunctualOnly(&points));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], Rational(3));
  EXPECT_EQ(points[1], Rational(9));
  set.Insert(C(4, 5));
  EXPECT_FALSE(set.IsPunctualOnly());
}

TEST(IntervalSetTest, UnionWith) {
  IntervalSet a = IntervalSet::FromIntervals({C(0, 2)});
  IntervalSet b = IntervalSet::FromIntervals({C(1, 5), P(9)});
  a.UnionWith(b);
  EXPECT_EQ(a, IntervalSet::FromIntervals({C(0, 5), P(9)}));
}

// Randomized consistency: set algebra against a dense sample oracle.
TEST(IntervalSetTest, RandomizedAlgebraAgainstSampledOracle) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> coord(0, 40);
  std::uniform_int_distribution<int> kind(0, 2);
  for (int round = 0; round < 50; ++round) {
    auto random_set = [&] {
      IntervalSet s;
      for (int i = 0; i < 6; ++i) {
        int a = coord(rng);
        int b = coord(rng);
        if (a > b) std::swap(a, b);
        switch (kind(rng)) {
          case 0:
            s.Insert(C(a, b));
            break;
          case 1:
            s.Insert(P(a));
            break;
          default:
            if (a < b) {
              s.Insert(Interval::ClosedOpen(Rational(a), Rational(b)));
            } else {
              s.Insert(P(a));
            }
        }
      }
      return s;
    };
    IntervalSet a = random_set();
    IntervalSet b = random_set();
    IntervalSet inter = a.Intersect(b);
    IntervalSet sub = a.Subtract(b);
    IntervalSet uni = a;
    uni.UnionWith(b);
    for (Rational t(0); t <= Rational(41); t += Rational(1, 2)) {
      bool in_a = a.Contains(t);
      bool in_b = b.Contains(t);
      EXPECT_EQ(inter.Contains(t), in_a && in_b) << "t=" << t.ToString();
      EXPECT_EQ(sub.Contains(t), in_a && !in_b) << "t=" << t.ToString();
      EXPECT_EQ(uni.Contains(t), in_a || in_b) << "t=" << t.ToString();
      EXPECT_EQ(a.Complement().Contains(t), !in_a) << "t=" << t.ToString();
    }
    // Normal form: no two stored intervals are unionable.
    for (size_t i = 0; i + 1 < uni.size(); ++i) {
      EXPECT_FALSE(uni.intervals()[i].Unionable(uni.intervals()[i + 1]));
      EXPECT_TRUE(uni.intervals()[i].StartsBefore(uni.intervals()[i + 1]));
    }
  }
}

}  // namespace
}  // namespace dmtl
