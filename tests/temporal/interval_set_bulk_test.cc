// Property/fuzz coverage for the batched IntervalSet kernels and the
// small-buffer storage: over randomized rational interval streams, the bulk
// construction and merge paths (FromIntervals, Add, UnionWith,
// UnionWithDelta) must produce exactly the coalesced set the per-interval
// Insert reference builds, and the deltas they report must equal the union
// of the per-interval Insert deltas. The streams deliberately straddle the
// inline capacity of SmallIntervalVec (2 intervals) so both the inline
// representation and the heap spill are exercised, including copies, moves,
// and equality across representations.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/temporal/interval_set.h"

namespace dmtl {
namespace {

// A randomized interval over a small rational grid: finite open/closed
// endpoints (halves included so openness matters), occasionally infinite.
class IntervalFuzzer {
 public:
  explicit IntervalFuzzer(uint64_t seed) : rng_(seed) {}

  Interval Next() {
    if (Pick(20) == 0) {
      // Unbounded on one side.
      Rational t = Point();
      return Pick(2) == 0 ? Interval::AtLeast(t) : Interval::AtMost(t);
    }
    Rational lo = Point();
    Rational hi = lo + Rational(Pick(7), 2);
    Bound blo = Pick(2) == 0 ? Bound::Closed(lo) : Bound::Open(lo);
    Bound bhi = Pick(2) == 0 ? Bound::Closed(hi) : Bound::Open(hi);
    auto made = Interval::Make(blo, bhi);
    // Empty combination (e.g. [t,t) ): fall back to the point.
    return made.value_or(Interval::Point(lo));
  }

  std::vector<Interval> Stream(size_t n) {
    std::vector<Interval> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(Next());
    return out;
  }

  size_t PickSize(size_t max) { return Pick(static_cast<int>(max) + 1); }

 private:
  int Pick(int n) { return static_cast<int>(rng_() % n); }
  Rational Point() { return Rational(Pick(41) - 20, 2); }

  std::mt19937_64 rng_;
};

// The reference semantics every batched path must match.
IntervalSet InsertReference(const std::vector<Interval>& stream) {
  IntervalSet out;
  for (const Interval& iv : stream) out.Insert(iv);
  return out;
}

class BulkKernelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BulkKernelFuzzTest, FromIntervalsMatchesInsertReference) {
  IntervalFuzzer fuzz(GetParam());
  for (int round = 0; round < 40; ++round) {
    std::vector<Interval> stream = fuzz.Stream(fuzz.PickSize(12));
    IntervalSet reference = InsertReference(stream);
    IntervalSet bulk = IntervalSet::FromIntervals(stream);
    EXPECT_EQ(bulk, reference)
        << "bulk=" << bulk.ToString() << " ref=" << reference.ToString();
    EXPECT_EQ(bulk.ToString(), reference.ToString());
  }
}

TEST_P(BulkKernelFuzzTest, AddMatchesInsertReference) {
  IntervalFuzzer fuzz(GetParam());
  for (int round = 0; round < 40; ++round) {
    std::vector<Interval> stream = fuzz.Stream(fuzz.PickSize(12));
    IntervalSet reference;
    IntervalSet incremental;
    for (const Interval& iv : stream) {
      reference.Insert(iv);
      incremental.Add(iv);
      EXPECT_EQ(incremental, reference);
    }
  }
}

TEST_P(BulkKernelFuzzTest, UnionWithMatchesPerIntervalInserts) {
  IntervalFuzzer fuzz(GetParam());
  for (int round = 0; round < 40; ++round) {
    IntervalSet a = InsertReference(fuzz.Stream(fuzz.PickSize(10)));
    IntervalSet b = InsertReference(fuzz.Stream(fuzz.PickSize(10)));

    IntervalSet reference = a;
    for (const Interval& iv : b) reference.Insert(iv);

    IntervalSet bulk = a;
    bulk.UnionWith(b);
    EXPECT_EQ(bulk, reference)
        << "a=" << a.ToString() << " b=" << b.ToString();
  }
}

// The delta of a bulk merge must be exactly the union of the per-interval
// Insert deltas: the newly covered portion, nothing of what was already
// covered.
TEST_P(BulkKernelFuzzTest, UnionWithDeltaEqualsInsertDeltas) {
  IntervalFuzzer fuzz(GetParam());
  for (int round = 0; round < 40; ++round) {
    IntervalSet a = InsertReference(fuzz.Stream(fuzz.PickSize(10)));
    IntervalSet b = InsertReference(fuzz.Stream(fuzz.PickSize(10)));

    IntervalSet reference = a;
    IntervalSet reference_delta;
    for (const Interval& iv : b) {
      reference_delta.UnionWith(reference.Insert(iv));
    }

    IntervalSet bulk = a;
    IntervalSet bulk_delta = bulk.UnionWithDelta(b);
    EXPECT_EQ(bulk, reference);
    EXPECT_EQ(bulk_delta, reference_delta)
        << "a=" << a.ToString() << " b=" << b.ToString()
        << " bulk_delta=" << bulk_delta.ToString()
        << " ref_delta=" << reference_delta.ToString();
    // The delta is exactly what `a` was missing.
    EXPECT_EQ(bulk_delta, b.Subtract(a));
  }
}

TEST_P(BulkKernelFuzzTest, IntersectIntervalMatchesSetIntersect) {
  IntervalFuzzer fuzz(GetParam());
  for (int round = 0; round < 40; ++round) {
    IntervalSet a = InsertReference(fuzz.Stream(fuzz.PickSize(10)));
    Interval clip = fuzz.Next();
    EXPECT_EQ(a.Intersect(clip), a.Intersect(IntervalSet(clip)))
        << "a=" << a.ToString() << " clip=" << clip.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BulkKernelFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

// --- Small-buffer representation ------------------------------------------
// Sets of up to two intervals live inline; the third insertion spills to the
// heap. Behavior must be identical on both sides of the boundary and across
// copies/moves that change representation.

TEST(SmallBufferTest, InlineToHeapSpillPreservesContents) {
  IntervalSet set;
  std::vector<Interval> pieces;
  for (int i = 0; i < 8; ++i) {
    Interval iv = Interval::Closed(Rational(3 * i), Rational(3 * i + 1));
    pieces.push_back(iv);
    set.Add(iv);
    ASSERT_EQ(set.size(), static_cast<size_t>(i + 1));
    for (size_t j = 0; j < pieces.size(); ++j) {
      EXPECT_EQ(set.intervals()[j], pieces[j]) << "after insert " << i;
    }
  }
}

TEST(SmallBufferTest, CopyAndMoveAcrossRepresentations) {
  IntervalSet inline_set;
  inline_set.Add(Interval::Closed(Rational(0), Rational(1)));
  inline_set.Add(Interval::Closed(Rational(5), Rational(6)));

  IntervalSet heap_set;
  for (int i = 0; i < 6; ++i) {
    heap_set.Add(Interval::Point(Rational(2 * i)));
  }

  // Copies compare equal whatever the source representation.
  IntervalSet inline_copy = inline_set;
  IntervalSet heap_copy = heap_set;
  EXPECT_EQ(inline_copy, inline_set);
  EXPECT_EQ(heap_copy, heap_set);

  // Cross-representation assignment in both directions.
  IntervalSet target = heap_set;
  target = inline_set;
  EXPECT_EQ(target, inline_set);
  target = heap_copy;
  EXPECT_EQ(target, heap_set);

  // Moved-from heap storage is stolen, not copied: the moved-to set holds
  // the full contents.
  IntervalSet moved = std::move(heap_copy);
  EXPECT_EQ(moved, heap_set);

  // Mutating the copy leaves the original alone (no shared storage).
  inline_copy.Add(Interval::Point(Rational(100)));
  EXPECT_NE(inline_copy, inline_set);
  EXPECT_EQ(inline_set.size(), 2u);
}

TEST(SmallBufferTest, InsertDeltaIdenticalAcrossSpillBoundary) {
  // Insert a covering interval into a set sitting exactly at the inline
  // capacity and just past it; the reported uncovered delta must agree
  // with Subtract in both representations.
  for (int preload : {1, 2, 3, 5}) {
    IntervalSet set;
    for (int i = 0; i < preload; ++i) {
      set.Add(Interval::Closed(Rational(4 * i), Rational(4 * i + 1)));
    }
    Interval wide = Interval::Closed(Rational(-1), Rational(30));
    IntervalSet before = set;
    IntervalSet delta = set.Insert(wide);
    EXPECT_EQ(delta, IntervalSet(wide).Subtract(before))
        << "preload=" << preload;
    EXPECT_EQ(set.size(), 1u);
  }
}

}  // namespace
}  // namespace dmtl
