#include "src/temporal/rational.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.numerator(), 0);
  EXPECT_EQ(r.denominator(), 1);
}

TEST(RationalTest, NormalizesSign) {
  Rational r(3, -6);
  EXPECT_EQ(r.numerator(), -1);
  EXPECT_EQ(r.denominator(), 2);
}

TEST(RationalTest, NormalizesGcd) {
  Rational r(42, 56);
  EXPECT_EQ(r.numerator(), 3);
  EXPECT_EQ(r.denominator(), 4);
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(RationalTest, ArithmeticKeepsNormalForm) {
  Rational a(2, 4);
  Rational b(2, 4);
  Rational sum = a + b;
  EXPECT_EQ(sum.numerator(), 1);
  EXPECT_EQ(sum.denominator(), 1);
  EXPECT_TRUE(sum.is_integer());
}

TEST(RationalTest, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1), Rational(0));
  EXPECT_LE(Rational(7), Rational(7));
  EXPECT_GT(Rational(22, 7), Rational(3));
  EXPECT_GE(Rational(3), Rational(6, 2));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(RationalTest, LargeTimestampsDoNotOverflow) {
  // Unix-timestamp scale arithmetic stays exact.
  Rational t(1'664'274'600);
  Rational dt = t + Rational(7200) - t;
  EXPECT_EQ(dt, Rational(7200));
  Rational product = Rational(1'000'000'007) * Rational(3);
  EXPECT_EQ(product, Rational(3'000'000'021));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).Floor(), 3);
  EXPECT_EQ(Rational(7, 2).Ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).Floor(), -4);
  EXPECT_EQ(Rational(-7, 2).Ceil(), -3);
  EXPECT_EQ(Rational(5).Floor(), 5);
  EXPECT_EQ(Rational(5).Ceil(), 5);
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).ToDouble(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3).ToDouble(), -3.0);
}

TEST(RationalTest, ToString) {
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(-7, 2).ToString(), "-7/2");
}

TEST(RationalTest, FromStringInteger) {
  auto r = Rational::FromString("42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Rational(42));
}

TEST(RationalTest, FromStringFraction) {
  auto r = Rational::FromString("-6/4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Rational(-3, 2));
}

TEST(RationalTest, FromStringDecimal) {
  auto r = Rational::FromString("2.5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Rational(5, 2));
}

TEST(RationalTest, FromStringErrors) {
  EXPECT_FALSE(Rational::FromString("").ok());
  EXPECT_FALSE(Rational::FromString("abc").ok());
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("1/x").ok());
}

TEST(RationalTest, MinMaxAbs) {
  EXPECT_EQ(Min(Rational(1), Rational(2)), Rational(1));
  EXPECT_EQ(Max(Rational(1), Rational(2)), Rational(2));
  EXPECT_EQ(Abs(Rational(-5, 3)), Rational(5, 3));
  EXPECT_EQ(Abs(Rational(5, 3)), Rational(5, 3));
}

TEST(RationalTest, HashConsistentWithEquality) {
  EXPECT_EQ(Rational(2, 4).Hash(), Rational(1, 2).Hash());
}

// Property sweep: field axioms on a grid of small rationals.
class RationalPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RationalPropertyTest, AdditionCommutesAndAssociates) {
  auto [n, d] = GetParam();
  Rational a(n, d);
  Rational b(d, 7);
  Rational c(n - d, 5);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, Rational(0));
  if (!a.is_zero()) {
    EXPECT_EQ(a / a, Rational(1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RationalPropertyTest,
    ::testing::Combine(::testing::Values(-9, -4, -1, 0, 1, 3, 8, 27),
                       ::testing::Values(1, 2, 3, 5, 12)));

}  // namespace
}  // namespace dmtl
