// Exhaustive property sweep over endpoint-kind combinations: for every pair
// of intervals built from all open/closed/infinite bound combinations on a
// small coordinate grid, the set operations must agree with a dense
// point-sampling oracle.

#include <gtest/gtest.h>

#include "src/temporal/interval_set.h"

namespace dmtl {
namespace {

// All interval shapes over coordinates {0, 2, 4} plus infinite sides.
std::vector<Interval> AllShapes() {
  std::vector<Interval> out;
  std::vector<Rational> coords = {Rational(0), Rational(2), Rational(4)};
  for (const Rational& lo : coords) {
    for (const Rational& hi : coords) {
      for (bool lo_open : {false, true}) {
        for (bool hi_open : {false, true}) {
          Bound l = lo_open ? Bound::Open(lo) : Bound::Closed(lo);
          Bound h = hi_open ? Bound::Open(hi) : Bound::Closed(hi);
          auto iv = Interval::Make(l, h);
          if (iv.has_value()) out.push_back(*iv);
        }
      }
      for (bool hi_open : {false, true}) {
        Bound h = hi_open ? Bound::Open(hi) : Bound::Closed(hi);
        auto iv = Interval::Make(Bound::Infinite(), h);
        if (iv.has_value()) out.push_back(*iv);
      }
      for (bool lo_open : {false, true}) {
        Bound l = lo_open ? Bound::Open(lo) : Bound::Closed(lo);
        auto iv = Interval::Make(l, Bound::Infinite());
        if (iv.has_value()) out.push_back(*iv);
      }
    }
  }
  out.push_back(Interval::All());
  return out;
}

// Sample points: the grid coordinates, midpoints between them, and points
// outside the hull - enough to distinguish any two shapes above.
std::vector<Rational> SamplePoints() {
  std::vector<Rational> pts;
  for (Rational t(-2); t <= Rational(6); t += Rational(1, 2)) {
    pts.push_back(t);
  }
  return pts;
}

TEST(IntervalBoundsPropertyTest, IntersectAgreesWithPointwiseAnd) {
  auto shapes = AllShapes();
  auto points = SamplePoints();
  for (const Interval& a : shapes) {
    for (const Interval& b : shapes) {
      auto x = a.Intersect(b);
      for (const Rational& t : points) {
        bool expected = a.Contains(t) && b.Contains(t);
        bool actual = x.has_value() && x->Contains(t);
        ASSERT_EQ(actual, expected)
            << a.ToString() << " ^ " << b.ToString() << " at "
            << t.ToString();
      }
      // Symmetry.
      auto y = b.Intersect(a);
      ASSERT_EQ(x.has_value(), y.has_value());
      if (x.has_value()) ASSERT_EQ(*x, *y);
    }
  }
}

TEST(IntervalBoundsPropertyTest, UnionableMeansNoGap) {
  auto shapes = AllShapes();
  auto points = SamplePoints();
  for (const Interval& a : shapes) {
    for (const Interval& b : shapes) {
      bool unionable = a.Unionable(b);
      ASSERT_EQ(unionable, b.Unionable(a))
          << a.ToString() << " " << b.ToString();
      if (!unionable) continue;
      Interval u = a.UnionWith(b);
      for (const Rational& t : points) {
        ASSERT_EQ(u.Contains(t), a.Contains(t) || b.Contains(t))
            << a.ToString() << " u " << b.ToString() << " at "
            << t.ToString();
      }
    }
  }
}

TEST(IntervalBoundsPropertyTest, ContainsIntervalMatchesPointwise) {
  auto shapes = AllShapes();
  auto points = SamplePoints();
  for (const Interval& a : shapes) {
    for (const Interval& b : shapes) {
      // On this grid (all endpoints and midpoints sampled, plus points
      // outside the hull) pointwise subset is equivalent to containment.
      bool contains = a.Contains(b);
      bool pointwise = true;
      for (const Rational& t : points) {
        if (b.Contains(t) && !a.Contains(t)) pointwise = false;
      }
      ASSERT_EQ(contains, pointwise)
          << a.ToString() << " >= " << b.ToString();
    }
  }
}

TEST(IntervalBoundsPropertyTest, SetSubtractComplementDuality) {
  auto shapes = AllShapes();
  auto points = SamplePoints();
  for (size_t i = 0; i < shapes.size(); i += 3) {
    for (size_t j = 0; j < shapes.size(); j += 3) {
      IntervalSet a(shapes[i]);
      IntervalSet b(shapes[j]);
      IntervalSet diff = a.Subtract(b);
      IntervalSet alt = a.Intersect(b.Complement());
      ASSERT_EQ(diff, alt) << shapes[i].ToString() << " - "
                           << shapes[j].ToString();
      for (const Rational& t : points) {
        ASSERT_EQ(diff.Contains(t),
                  shapes[i].Contains(t) && !shapes[j].Contains(t))
            << shapes[i].ToString() << " - " << shapes[j].ToString()
            << " at " << t.ToString();
      }
    }
  }
}

TEST(IntervalBoundsPropertyTest, StartsBeforeIsStrictWeakOrder) {
  auto shapes = AllShapes();
  for (const Interval& a : shapes) {
    EXPECT_FALSE(a.StartsBefore(a)) << a.ToString();
    for (const Interval& b : shapes) {
      if (a.StartsBefore(b)) {
        EXPECT_FALSE(b.StartsBefore(a))
            << a.ToString() << " " << b.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace dmtl
