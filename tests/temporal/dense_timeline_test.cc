// Dense integer-timeline specialization: the packed int64 key codec must
// round-trip every encodable bound and reject every non-integral one, and
// every IntervalSet kernel with a dense fast path must produce *identical*
// results (operator== over the component list, so endpoint-by-endpoint)
// with the specialization enabled and disabled - over randomized integral
// streams, mixed integral/rational streams (which force the per-element
// bail-out), and the metric-window transforms with finite, half-infinite,
// and punctual windows.

#include "src/temporal/dense.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/temporal/interval_set.h"

namespace dmtl {
namespace {

void ExpectBoundEq(const Bound& got, const Bound& want) {
  EXPECT_EQ(got.infinite, want.infinite);
  EXPECT_EQ(got.open, want.open);
  EXPECT_EQ(got.value, want.value);
}

TEST(DenseKeyTest, RoundTripsFiniteBounds) {
  for (int64_t v : {-1000, -1, 0, 1, 7, 1000}) {
    for (bool open : {false, true}) {
      Bound b = open ? Bound::Open(Rational(v)) : Bound::Closed(Rational(v));
      dense::DKey k = 0;
      ASSERT_TRUE(dense::EncodeLo(b, &k));
      ExpectBoundEq(dense::DecodeLo(k), b);
      ASSERT_TRUE(dense::EncodeHi(b, &k));
      ExpectBoundEq(dense::DecodeHi(k), b);
    }
  }
}

TEST(DenseKeyTest, RoundTripsInfiniteBounds) {
  dense::DKey k = 0;
  ASSERT_TRUE(dense::EncodeLo(Bound::Infinite(), &k));
  EXPECT_EQ(k, dense::kNegInf);
  ExpectBoundEq(dense::DecodeLo(k), Bound::Infinite());
  ASSERT_TRUE(dense::EncodeHi(Bound::Infinite(), &k));
  EXPECT_EQ(k, dense::kPosInf);
  ExpectBoundEq(dense::DecodeHi(k), Bound::Infinite());
}

TEST(DenseKeyTest, RejectsNonIntegralAndOutOfRange) {
  dense::DKey k = 0;
  EXPECT_FALSE(dense::EncodeLo(Bound::Closed(Rational(1, 2)), &k));
  EXPECT_FALSE(dense::EncodeHi(Bound::Open(Rational(-7, 3)), &k));
  EXPECT_FALSE(
      dense::EncodeLo(Bound::Closed(Rational(dense::kMaxMagnitude + 1)), &k));
  EXPECT_FALSE(
      dense::EncodeHi(Bound::Closed(Rational(-dense::kMaxMagnitude - 1)), &k));
}

TEST(DenseKeyTest, AdjacencyMakesTouchingIntervalsUnionable) {
  // [0,3] and (3,5]: hi key of "3]" is 6, lo key of "(3" is 7 - adjacent,
  // no gap. [0,3) and (3,5]: hi key of "3)" is 5 - gap of one, strictly
  // before.
  dense::DKey closed3_hi = 0, open3_lo = 0, open3_hi = 0;
  ASSERT_TRUE(dense::EncodeHi(Bound::Closed(Rational(3)), &closed3_hi));
  ASSERT_TRUE(dense::EncodeLo(Bound::Open(Rational(3)), &open3_lo));
  ASSERT_TRUE(dense::EncodeHi(Bound::Open(Rational(3)), &open3_hi));
  EXPECT_FALSE(dense::GapBefore(closed3_hi, open3_lo));
  EXPECT_TRUE(dense::GapBefore(open3_hi, open3_lo));
}

// Randomized integral intervals over a small grid so coalescing,
// adjacency, and openness interactions all occur.
class DenseFuzzer {
 public:
  explicit DenseFuzzer(uint64_t seed) : rng_(seed) {}

  int Pick(int n) { return static_cast<int>(rng_() % n); }

  Interval NextIntegral() {
    if (Pick(16) == 0) {
      Rational t(Pick(21) - 10);
      return Pick(2) == 0 ? Interval::AtLeast(t) : Interval::AtMost(t);
    }
    int64_t lo = Pick(21) - 10;
    int64_t hi = lo + Pick(6);
    Bound blo = Pick(2) == 0 ? Bound::Closed(Rational(lo))
                             : Bound::Open(Rational(lo));
    Bound bhi = Pick(2) == 0 ? Bound::Closed(Rational(hi))
                             : Bound::Open(Rational(hi));
    auto made = Interval::Make(blo, bhi);
    return made.value_or(Interval::Point(Rational(lo)));
  }

  // Halves included: exercises the per-element bail-out to the Rational
  // kernels mid-stream.
  Interval NextMixed() {
    Interval iv = NextIntegral();
    if (Pick(3) != 0) return iv;
    Rational lo(Pick(41) - 20, 2);
    Rational hi = lo + Rational(Pick(11), 2);
    auto made = Interval::Make(Bound::Closed(lo), Bound::Closed(hi));
    return made.value_or(Interval::Point(lo));
  }

  IntervalSet Set(int n, bool integral) {
    IntervalSet out;
    for (int i = 0; i < n; ++i) {
      out.Add(integral ? NextIntegral() : NextMixed());
    }
    return out;
  }

  Interval Window() {
    switch (Pick(5)) {
      case 0:
        return Interval::AtLeast(Rational(Pick(5)));
      case 1:
        return Interval::AtMost(Rational(Pick(5) + 1));
      case 2:
        return Interval::Point(Rational(Pick(4)));
      default: {
        int64_t lo = Pick(4);
        int64_t hi = lo + Pick(5);
        Bound blo = Pick(2) == 0 ? Bound::Closed(Rational(lo))
                                 : Bound::Open(Rational(lo));
        Bound bhi = Pick(2) == 0 ? Bound::Closed(Rational(hi))
                                 : Bound::Open(Rational(hi));
        return Interval::Make(blo, bhi).value_or(Interval::Point(Rational(lo)));
      }
    }
  }

 private:
  std::mt19937_64 rng_;
};

// Runs `op` with the dense path enabled and disabled; the results must be
// component-for-component identical (the byte-identical guarantee the
// engine advertises for enable_dense_timeline).
template <typename Op>
void ExpectDenseMatchesRational(const Op& op, const char* what,
                                uint64_t seed) {
  IntervalSet dense_out, rational_out;
  {
    dense::DenseScope on(true);
    dense_out = op();
  }
  {
    dense::DenseScope off(false);
    rational_out = op();
  }
  EXPECT_EQ(dense_out, rational_out)
      << what << " diverged (seed " << seed << "): dense="
      << dense_out.ToString() << " rational=" << rational_out.ToString();
}

TEST(DenseKernelEquivalenceTest, SetAlgebraOverFuzzedStreams) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    for (bool integral : {true, false}) {
      DenseFuzzer fuzz(seed * 2 + (integral ? 1 : 0));
      IntervalSet a = fuzz.Set(1 + fuzz.Pick(8), integral);
      IntervalSet b = fuzz.Set(1 + fuzz.Pick(8), integral);
      ExpectDenseMatchesRational(
          [&] {
            IntervalSet u = a;
            u.UnionWith(b);
            return u;
          },
          "UnionWith", seed);
      ExpectDenseMatchesRational([&] { return a.Intersect(b); }, "Intersect",
                                 seed);
      ExpectDenseMatchesRational([&] { return a.Subtract(b); }, "Subtract",
                                 seed);
      ExpectDenseMatchesRational(
          [&] {
            IntervalSet u = a;
            IntervalSet fresh = u.UnionWithDelta(b);
            fresh.UnionWith(u);  // fold both outputs into one comparison
            return fresh;
          },
          "UnionWithDelta", seed);
    }
  }
}

TEST(DenseKernelEquivalenceTest, MetricTransformsOverFuzzedWindows) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    for (bool integral : {true, false}) {
      DenseFuzzer fuzz(seed * 2 + (integral ? 1 : 0));
      IntervalSet a = fuzz.Set(1 + fuzz.Pick(8), integral);
      Interval rho = fuzz.Window();
      ExpectDenseMatchesRational([&] { return a.DiamondMinus(rho); },
                                 "DiamondMinus", seed);
      ExpectDenseMatchesRational([&] { return a.DiamondPlus(rho); },
                                 "DiamondPlus", seed);
      ExpectDenseMatchesRational([&] { return a.BoxMinus(rho); }, "BoxMinus",
                                 seed);
      ExpectDenseMatchesRational([&] { return a.BoxPlus(rho); }, "BoxPlus",
                                 seed);
    }
  }
}

TEST(DenseKernelEquivalenceTest, FromIntervalsOverFuzzedStreams) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    for (bool integral : {true, false}) {
      DenseFuzzer fuzz(seed * 2 + (integral ? 1 : 0));
      std::vector<Interval> stream;
      int n = 3 + fuzz.Pick(12);
      for (int i = 0; i < n; ++i) {
        stream.push_back(integral ? fuzz.NextIntegral() : fuzz.NextMixed());
      }
      ExpectDenseMatchesRational(
          [&] { return IntervalSet::FromIntervals(stream); }, "FromIntervals",
          seed);
    }
  }
}

}  // namespace
}  // namespace dmtl
