#include "src/temporal/interval.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

TEST(IntervalTest, MakeRejectsEmpty) {
  EXPECT_FALSE(Interval::Make(Bound::Closed(Rational(3)),
                              Bound::Closed(Rational(2)))
                   .has_value());
  // Same point needs both bounds closed.
  EXPECT_FALSE(Interval::Make(Bound::Open(Rational(3)),
                              Bound::Closed(Rational(3)))
                   .has_value());
  EXPECT_FALSE(Interval::Make(Bound::Closed(Rational(3)),
                              Bound::Open(Rational(3)))
                   .has_value());
  EXPECT_TRUE(Interval::Make(Bound::Closed(Rational(3)),
                             Bound::Closed(Rational(3)))
                  .has_value());
}

TEST(IntervalTest, Punctual) {
  EXPECT_TRUE(Interval::Point(Rational(5)).IsPunctual());
  EXPECT_FALSE(Interval::Closed(Rational(1), Rational(2)).IsPunctual());
  EXPECT_FALSE(Interval::AtLeast(Rational(1)).IsPunctual());
}

TEST(IntervalTest, Contains) {
  Interval iv = Interval::ClosedOpen(Rational(1), Rational(3));
  EXPECT_TRUE(iv.Contains(Rational(1)));
  EXPECT_TRUE(iv.Contains(Rational(2)));
  EXPECT_FALSE(iv.Contains(Rational(3)));
  EXPECT_FALSE(iv.Contains(Rational(0)));

  Interval open = Interval::Open(Rational(1), Rational(3));
  EXPECT_FALSE(open.Contains(Rational(1)));
  EXPECT_TRUE(open.Contains(Rational(3, 2)));

  EXPECT_TRUE(Interval::All().Contains(Rational(-1'000'000)));
  EXPECT_TRUE(Interval::AtLeast(Rational(5)).Contains(Rational(5)));
  EXPECT_FALSE(Interval::AtMost(Rational(5)).Contains(Rational(6)));
}

TEST(IntervalTest, ContainsInterval) {
  Interval big = Interval::Closed(Rational(0), Rational(10));
  EXPECT_TRUE(big.Contains(Interval::Open(Rational(0), Rational(10))));
  EXPECT_TRUE(big.Contains(Interval::Point(Rational(10))));
  EXPECT_FALSE(big.Contains(Interval::Closed(Rational(5), Rational(11))));
  EXPECT_FALSE(Interval::Open(Rational(0), Rational(10))
                   .Contains(Interval::Closed(Rational(0), Rational(5))));
  EXPECT_TRUE(Interval::All().Contains(big));
}

TEST(IntervalTest, Intersect) {
  Interval a = Interval::Closed(Rational(1), Rational(5));
  Interval b = Interval::ClosedOpen(Rational(3), Rational(8));
  auto x = a.Intersect(b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, Interval::Closed(Rational(3), Rational(5)));

  // Touching closed/open endpoints keep the single shared point.
  auto point = a.Intersect(Interval::Closed(Rational(5), Rational(9)));
  ASSERT_TRUE(point.has_value());
  EXPECT_EQ(*point, Interval::Point(Rational(5)));

  // Disjoint.
  EXPECT_FALSE(a.Intersect(Interval::Closed(Rational(6), Rational(7)))
                   .has_value());
  // Touching but open on both sides: empty.
  EXPECT_FALSE(Interval::ClosedOpen(Rational(1), Rational(5))
                   .Intersect(Interval::OpenClosed(Rational(5), Rational(9)))
                   .has_value());
}

TEST(IntervalTest, UnionableRespectsDenseGaps) {
  // [5,5] and [6,6] have the open gap (5,6): not unionable.
  EXPECT_FALSE(Interval::Point(Rational(5))
                   .Unionable(Interval::Point(Rational(6))));
  // [1,3) + [3,5] -> [1,5].
  Interval a = Interval::ClosedOpen(Rational(1), Rational(3));
  Interval b = Interval::Closed(Rational(3), Rational(5));
  ASSERT_TRUE(a.Unionable(b));
  EXPECT_EQ(a.UnionWith(b), Interval::Closed(Rational(1), Rational(5)));
  // (1,3) + (3,5): the point 3 is missing.
  EXPECT_FALSE(Interval::Open(Rational(1), Rational(3))
                   .Unionable(Interval::Open(Rational(3), Rational(5))));
  // Overlap is always unionable.
  EXPECT_TRUE(Interval::Closed(Rational(1), Rational(4))
                  .Unionable(Interval::Closed(Rational(2), Rational(9))));
}

TEST(IntervalTest, Shift) {
  Interval iv = Interval::ClosedOpen(Rational(1), Rational(3));
  EXPECT_EQ(iv.Shift(Rational(2)),
            Interval::ClosedOpen(Rational(3), Rational(5)));
  EXPECT_EQ(Interval::AtLeast(Rational(1)).Shift(Rational(-1)),
            Interval::AtLeast(Rational(0)));
}

TEST(IntervalTest, StrictlyBefore) {
  EXPECT_TRUE(Interval::Point(Rational(1))
                  .StrictlyBefore(Interval::Point(Rational(2))));
  // Touching [1,3] and [3,5]: no gap.
  EXPECT_FALSE(Interval::Closed(Rational(1), Rational(3))
                   .StrictlyBefore(Interval::Closed(Rational(3), Rational(5))));
  // (1,3) before (3,5): gap at 3.
  EXPECT_TRUE(Interval::Open(Rational(1), Rational(3))
                  .StrictlyBefore(Interval::Open(Rational(3), Rational(5))));
  EXPECT_FALSE(Interval::AtLeast(Rational(0))
                   .StrictlyBefore(Interval::Point(Rational(9))));
}

TEST(IntervalTest, Length) {
  EXPECT_EQ(*Interval::Closed(Rational(2), Rational(7)).Length(),
            Rational(5));
  EXPECT_EQ(*Interval::Point(Rational(2)).Length(), Rational(0));
  EXPECT_FALSE(Interval::AtLeast(Rational(0)).Length().has_value());
}

TEST(IntervalTest, Overlaps) {
  Interval a = Interval::Closed(Rational(0), Rational(5));
  EXPECT_TRUE(a.Overlaps(Interval::Closed(Rational(3), Rational(8))));
  EXPECT_TRUE(a.Overlaps(Interval::Point(Rational(5))));  // shared endpoint
  EXPECT_FALSE(a.Overlaps(Interval::Closed(Rational(6), Rational(9))));
  // Touching endpoints with an open bound on either side: disjoint.
  EXPECT_FALSE(a.Overlaps(Interval::Open(Rational(5), Rational(9))));
  EXPECT_FALSE(Interval::ClosedOpen(Rational(0), Rational(5))
                   .Overlaps(Interval::Point(Rational(5))));
  EXPECT_TRUE(a.Overlaps(Interval::All()));
  EXPECT_TRUE(Interval::AtMost(Rational(0)).Overlaps(
      Interval::AtLeast(Rational(0))));
  EXPECT_FALSE(Interval::AtMost(Rational(0)).Overlaps(
      Interval::AtLeast(Rational(1))));
}

TEST(IntervalTest, Hull) {
  Interval a = Interval::Closed(Rational(0), Rational(2));
  Interval b = Interval::Open(Rational(5), Rational(9));
  // Hull spans the gap and keeps the outermost bound kinds.
  EXPECT_EQ(a.Hull(b), *Interval::Make(Bound::Closed(Rational(0)),
                                       Bound::Open(Rational(9))));
  EXPECT_EQ(b.Hull(a), a.Hull(b));
  // A contained interval contributes nothing.
  EXPECT_EQ(a.Hull(Interval::Point(Rational(1))), a);
  EXPECT_EQ(a.Hull(Interval::All()), Interval::All());
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ(Interval::ClosedOpen(Rational(1), Rational(3)).ToString(),
            "[1,3)");
  EXPECT_EQ(Interval::All().ToString(), "(-inf,+inf)");
  EXPECT_EQ(Interval::Point(Rational(2)).ToString(), "[2,2]");
}

}  // namespace
}  // namespace dmtl
