// Semantics tests of the four unary MTL operator transforms on single
// intervals, checked against the paper's definitions:
//   M, t |= boxminus_rho M      iff M at all s with t - s in rho
//   M, t |= diamondminus_rho M  iff M at some s with t - s in rho
// plus the mirrored future operators. A brute-force model checker over a
// fine rational grid serves as the oracle for the property sweeps.

#include <gtest/gtest.h>

#include "src/ast/atom.h"
#include "src/temporal/interval.h"

namespace dmtl {
namespace {

// Oracle: does the compound atom hold at t, given the fact holds exactly on
// `fact`? Quantifies s over a grid fine enough for quarter-integer bounds.
bool OracleHolds(MtlOp op, const Interval& rho, const Interval& fact,
                 const Rational& t) {
  const Rational step(1, 8);
  const Rational span(12);
  bool exists = false;
  bool forall = true;
  bool any_s = false;
  for (Rational s = t - span; s <= t + span; s += step) {
    Rational d = (op == MtlOp::kDiamondMinus || op == MtlOp::kBoxMinus)
                     ? t - s
                     : s - t;
    if (!rho.Contains(d)) continue;
    any_s = true;
    if (fact.Contains(s)) {
      exists = true;
    } else {
      forall = false;
    }
  }
  switch (op) {
    case MtlOp::kDiamondMinus:
    case MtlOp::kDiamondPlus:
      return exists;
    case MtlOp::kBoxMinus:
    case MtlOp::kBoxPlus:
      return any_s && forall;
    default:
      return false;
  }
}

bool TransformHolds(MtlOp op, const Interval& rho, const Interval& fact,
                    const Rational& t) {
  std::optional<Interval> out;
  switch (op) {
    case MtlOp::kDiamondMinus:
      out = fact.DiamondMinus(rho);
      break;
    case MtlOp::kBoxMinus:
      out = fact.BoxMinus(rho);
      break;
    case MtlOp::kDiamondPlus:
      out = fact.DiamondPlus(rho);
      break;
    case MtlOp::kBoxPlus:
      out = fact.BoxPlus(rho);
      break;
    default:
      break;
  }
  return out.has_value() && out->Contains(t);
}

TEST(MtlOperatorTest, PunctualRangeIsShift) {
  Interval fact = Interval::Closed(Rational(5), Rational(8));
  Interval rho = Interval::Point(Rational(2));
  EXPECT_EQ(fact.DiamondMinus(rho),
            Interval::Closed(Rational(7), Rational(10)));
  auto box = fact.BoxMinus(rho);
  ASSERT_TRUE(box.has_value());
  // Punctual windows make box and diamond coincide (paper, Section 2.1).
  EXPECT_EQ(*box, fact.DiamondMinus(rho));
}

TEST(MtlOperatorTest, DiamondMinusDilates) {
  Interval fact = Interval::Closed(Rational(5), Rational(8));
  Interval rho = Interval::Closed(Rational(1), Rational(3));
  EXPECT_EQ(fact.DiamondMinus(rho),
            Interval::Closed(Rational(6), Rational(11)));
}

TEST(MtlOperatorTest, BoxMinusErodes) {
  Interval fact = Interval::Closed(Rational(5), Rational(8));
  Interval rho = Interval::Closed(Rational(1), Rational(3));
  auto box = fact.BoxMinus(rho);
  ASSERT_TRUE(box.has_value());
  EXPECT_EQ(*box, Interval::Closed(Rational(8), Rational(9)));
}

TEST(MtlOperatorTest, BoxMinusEmptyWhenFactShorterThanWindow) {
  Interval fact = Interval::Closed(Rational(5), Rational(6));
  Interval rho = Interval::Closed(Rational(0), Rational(3));
  EXPECT_FALSE(fact.BoxMinus(rho).has_value());
}

TEST(MtlOperatorTest, OpennessPropagation) {
  // diamondminus over a half-open fact keeps the open edge.
  Interval fact = Interval::ClosedOpen(Rational(5), Rational(8));
  Interval rho = Interval::Closed(Rational(1), Rational(2));
  Interval dil = fact.DiamondMinus(rho);
  EXPECT_EQ(dil, Interval::ClosedOpen(Rational(6), Rational(10)));
  // An open rho bound makes the result edge open too.
  Interval rho_open = Interval::OpenClosed(Rational(1), Rational(2));
  Interval dil2 = Interval::Closed(Rational(5), Rational(8))
                      .DiamondMinus(rho_open);
  EXPECT_EQ(dil2, Interval::OpenClosed(Rational(6), Rational(10)));
}

TEST(MtlOperatorTest, UnboundedWindowBoxRequiresInfinitePast) {
  Interval fact = Interval::Closed(Rational(0), Rational(100));
  auto rho = Interval::Make(Bound::Closed(Rational(0)), Bound::Infinite());
  ASSERT_TRUE(rho.has_value());
  EXPECT_FALSE(fact.BoxMinus(*rho).has_value());
  Interval eternal = Interval::AtMost(Rational(100));
  auto box = eternal.BoxMinus(*rho);
  ASSERT_TRUE(box.has_value());
  EXPECT_EQ(*box, Interval::AtMost(Rational(100)));
}

TEST(MtlOperatorTest, DiamondPlusMirrors) {
  Interval fact = Interval::Closed(Rational(5), Rational(8));
  Interval rho = Interval::Closed(Rational(1), Rational(3));
  EXPECT_EQ(fact.DiamondPlus(rho),
            Interval::Closed(Rational(2), Rational(7)));
  auto box = fact.BoxPlus(rho);
  ASSERT_TRUE(box.has_value());
  EXPECT_EQ(*box, Interval::Closed(Rational(4), Rational(5)));
}

// Property sweep: every operator agrees with the brute-force oracle on a
// grid of sample points, for assorted fact/rho shapes including open
// bounds and fractional endpoints.
struct OperatorCase {
  MtlOp op;
  Interval fact;
  Interval rho;
};

class MtlOperatorPropertyTest
    : public ::testing::TestWithParam<OperatorCase> {};

TEST_P(MtlOperatorPropertyTest, MatchesBruteForceOracle) {
  const OperatorCase& c = GetParam();
  for (Rational t(-4); t <= Rational(14); t += Rational(1, 4)) {
    EXPECT_EQ(TransformHolds(c.op, c.rho, c.fact, t),
              OracleHolds(c.op, c.rho, c.fact, t))
        << MtlOpToString(c.op) << " rho=" << c.rho.ToString()
        << " fact=" << c.fact.ToString() << " t=" << t.ToString();
  }
}

std::vector<OperatorCase> AllCases() {
  std::vector<Interval> facts = {
      Interval::Point(Rational(3)),
      Interval::Closed(Rational(1), Rational(5)),
      Interval::Open(Rational(1), Rational(5)),
      Interval::ClosedOpen(Rational(0), Rational(2)),
      Interval::OpenClosed(Rational(2), Rational(9)),
      Interval::Closed(Rational(-2), Rational(-1)),
  };
  std::vector<Interval> rhos = {
      Interval::Point(Rational(0)),
      Interval::Point(Rational(1)),
      Interval::Closed(Rational(0), Rational(2)),
      Interval::Closed(Rational(1), Rational(3)),
      Interval::Open(Rational(0), Rational(2)),
      Interval::OpenClosed(Rational(1, 2), Rational(5, 2)),
      Interval::ClosedOpen(Rational(0), Rational(1)),
  };
  std::vector<MtlOp> ops = {MtlOp::kDiamondMinus, MtlOp::kBoxMinus,
                            MtlOp::kDiamondPlus, MtlOp::kBoxPlus};
  std::vector<OperatorCase> cases;
  for (MtlOp op : ops) {
    for (const Interval& fact : facts) {
      for (const Interval& rho : rhos) {
        cases.push_back({op, fact, rho});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MtlOperatorPropertyTest,
                         ::testing::ValuesIn(AllCases()));

}  // namespace
}  // namespace dmtl
