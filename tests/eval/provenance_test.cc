// Derivation provenance: every newly derived fact piece records the rule
// that produced it - the executable form of the explainability the paper
// argues declarative contracts provide.

#include <gtest/gtest.h>

#include "src/engine/reasoner.h"

namespace dmtl {
namespace {

struct Traced {
  Database db;
  Program program;
  std::vector<DerivationRecord> log;
};

Traced RunTraced(const char* text, int64_t horizon = 20) {
  auto unit = Parser::Parse(text);
  EXPECT_TRUE(unit.ok()) << unit.status();
  Traced out;
  out.program = unit->program;
  out.db = unit->database;
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(horizon);
  options.provenance = &out.log;
  Status status = Materialize(out.program, &out.db, options);
  EXPECT_TRUE(status.ok()) << status;
  return out;
}

TEST(ProvenanceTest, RecordsRulePerDerivedPiece) {
  Traced t = RunTraced(
      "q(X) :- p(X) .\n"       // rule 0
      "r(X) :- q(X) .\n"       // rule 1
      "p(a)@[1,3] .");
  ASSERT_EQ(t.log.size(), 2u);
  auto q = Reasoner::Explain(t.log, "q", {Value::Symbol("a")}, Rational(2));
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].rule_index, 0u);
  EXPECT_EQ(q[0].piece, Interval::Closed(Rational(1), Rational(3)));
  auto r = Reasoner::Explain(t.log, "r", {Value::Symbol("a")}, Rational(2));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].rule_index, 1u);
  // Rendering names the rule.
  EXPECT_NE(r[0].ToString(t.program).find("r(X) :- q(X) ."),
            std::string::npos);
}

TEST(ProvenanceTest, InputFactsAreNotRecorded) {
  Traced t = RunTraced("q(X) :- p(X) .\n p(a)@[1,3] .");
  for (const DerivationRecord& record : t.log) {
    EXPECT_NE(PredicateName(record.predicate), "p");
  }
}

TEST(ProvenanceTest, ChainDerivationsCarryTheChainRule) {
  Traced t = RunTraced(
      "open(A) :- deposit(A) .\n"            // rule 0
      "open(A) :- boxminus open(A), not close(A) .\n"  // rule 1
      "deposit(x)@2 . close(x)@6 .",
      10);
  // open(x)@2 by rule 0; 3..5 by the chain rule.
  auto at2 = Reasoner::Explain(t.log, "open", {Value::Symbol("x")},
                               Rational(2));
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(at2[0].rule_index, 0u);
  for (int tick = 3; tick <= 5; ++tick) {
    auto at = Reasoner::Explain(t.log, "open", {Value::Symbol("x")},
                                Rational(tick));
    ASSERT_EQ(at.size(), 1u) << tick;
    EXPECT_EQ(at[0].rule_index, 1u) << tick;
  }
}

TEST(ProvenanceTest, MultipleDerivationsOfOnePointKeepFirstOnly) {
  // Both rules can derive q(a)@1, but only the first insertion is "new";
  // the second derives nothing (monotone chase), so one record exists.
  Traced t = RunTraced(
      "q(X) :- p1(X) .\n"
      "q(X) :- p2(X) .\n"
      "p1(a)@1 . p2(a)@1 .");
  auto q = Reasoner::Explain(t.log, "q", {Value::Symbol("a")}, Rational(1));
  EXPECT_EQ(q.size(), 1u);
}

TEST(ProvenanceTest, AggregateDerivationsAttributeTheAggregateRule) {
  Traced t = RunTraced(
      "c(A, S) :- raw(A, S) .\n"                 // rule 0
      "event(msum(S)) :- c(A, S) .\n"            // rule 1
      "raw(a, 2.0)@4 . raw(b, 3.0)@4 .");
  auto e = Reasoner::Explain(t.log, "event", {Value::Double(5.0)},
                             Rational(4));
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].rule_index, 1u);
}

TEST(ProvenanceTest, ContractSettlementExplained) {
  // The headline use: why does this margin value hold? The log points at
  // the settlement rule (paper rule 9).
  auto program_text = std::string() +
      "isOpen(A) :- tranM(A, M) .\n"
      "isOpen(A) :- boxminus isOpen(A), not withdraw(A) .\n"
      "margin(A, M) :- tranM(A, M), not boxminus isOpen(A) .\n"
      "changeM(A) :- tranM(A, M) .\n"
      "margin(A, M) :- diamondminus margin(A, M), not changeM(A) .\n"
      "margin(A, M) :- boxminus isOpen(A), diamondminus margin(A, X), "
      "tranM(A, Y), M = X + Y .\n"
      "tranM(abc, 97.0)@1 . tranM(abc, 3.0)@2 .";
  Traced t = RunTraced(program_text.c_str(), 6);
  auto why = Reasoner::Explain(t.log, "margin",
                               {Value::Symbol("abc"), Value::Double(100.0)},
                               Rational(2));
  ASSERT_EQ(why.size(), 1u);
  // Rule 5 (the deposit-update rule) produced it.
  EXPECT_EQ(why[0].rule_index, 5u);
  EXPECT_NE(why[0].ToString(t.program).find("M = (X + Y)"),
            std::string::npos);
}

TEST(ProvenanceTest, OffByDefaultCostsNothing) {
  auto unit = Parser::Parse("q(X) :- p(X) .\n p(a)@1 .");
  Database db = unit->database;
  EngineOptions options;  // provenance == nullptr
  EXPECT_TRUE(Materialize(unit->program, &db, options).ok());
}

}  // namespace
}  // namespace dmtl
