#include "src/eval/builtin_eval.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

Expr V(int i) { return Expr::Var(i); }
Expr K(double d) { return Expr::Const(Value::Double(d)); }
Expr KI(int64_t i) { return Expr::Const(Value::Int(i)); }

TEST(BuiltinEvalTest, ArithmeticPromotion) {
  Bindings b(0);
  auto int_sum = EvalExpr(Expr::Binary(Expr::Op::kAdd, KI(2), KI(3)), b);
  ASSERT_TRUE(int_sum.ok());
  EXPECT_TRUE(int_sum->is_int());
  EXPECT_EQ(int_sum->AsInt(), 5);

  auto mixed = EvalExpr(Expr::Binary(Expr::Op::kAdd, KI(2), K(0.5)), b);
  ASSERT_TRUE(mixed.ok());
  EXPECT_TRUE(mixed->is_double());
  EXPECT_DOUBLE_EQ(mixed->AsDouble(), 2.5);
}

TEST(BuiltinEvalTest, DivisionAlwaysDouble) {
  Bindings b(0);
  auto q = EvalExpr(Expr::Binary(Expr::Op::kDiv, KI(1), KI(86400)), b);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->is_double());
  EXPECT_DOUBLE_EQ(q->AsDouble(), 1.0 / 86400.0);
  auto zero = EvalExpr(Expr::Binary(Expr::Op::kDiv, KI(1), KI(0)), b);
  EXPECT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kEvalError);
}

TEST(BuiltinEvalTest, UnaryAndFunctions) {
  Bindings b(1);
  b.Set(0, Value::Double(-3.5));
  auto neg = EvalExpr(Expr::Unary(Expr::Op::kNeg, V(0)), b);
  EXPECT_DOUBLE_EQ(neg->AsDouble(), 3.5);
  auto abs = EvalExpr(Expr::Unary(Expr::Op::kAbs, V(0)), b);
  EXPECT_DOUBLE_EQ(abs->AsDouble(), 3.5);
  auto mn = EvalExpr(Expr::Binary(Expr::Op::kMin, V(0), K(1.0)), b);
  EXPECT_DOUBLE_EQ(mn->AsDouble(), -3.5);
  auto mx = EvalExpr(Expr::Binary(Expr::Op::kMax, V(0), K(1.0)), b);
  EXPECT_DOUBLE_EQ(mx->AsDouble(), 1.0);
  auto abs_int = EvalExpr(Expr::Unary(Expr::Op::kAbs, KI(-4)), b);
  EXPECT_TRUE(abs_int->is_int());
  EXPECT_EQ(abs_int->AsInt(), 4);
}

TEST(BuiltinEvalTest, ErrorsOnUnboundOrNonNumeric) {
  Bindings b(1);
  EXPECT_FALSE(EvalExpr(V(0), b).ok());
  b.Set(0, Value::Symbol("acc"));
  EXPECT_FALSE(
      EvalExpr(Expr::Binary(Expr::Op::kAdd, V(0), KI(1)), b).ok());
}

TEST(BuiltinEvalTest, ComparisonSemantics) {
  EXPECT_TRUE(*EvalComparison(CmpOp::kEq, Value::Int(1), Value::Double(1.0)));
  EXPECT_TRUE(*EvalComparison(CmpOp::kLt, Value::Int(1), Value::Double(1.5)));
  EXPECT_TRUE(*EvalComparison(CmpOp::kGe, Value::Double(2.0), Value::Int(2)));
  EXPECT_TRUE(*EvalComparison(CmpOp::kEq, Value::Symbol("a"),
                              Value::Symbol("a")));
  EXPECT_TRUE(*EvalComparison(CmpOp::kNe, Value::Symbol("a"),
                              Value::Symbol("b")));
  EXPECT_TRUE(*EvalComparison(CmpOp::kLt, Value::Symbol("a"),
                              Value::Symbol("b")));
  // Cross-kind equality is false, inequality true, ordering an error.
  EXPECT_FALSE(*EvalComparison(CmpOp::kEq, Value::Symbol("a"), Value::Int(1)));
  EXPECT_TRUE(*EvalComparison(CmpOp::kNe, Value::Symbol("a"), Value::Int(1)));
  EXPECT_FALSE(EvalComparison(CmpOp::kLt, Value::Symbol("a"),
                              Value::Int(1))
                   .ok());
}

TEST(BuiltinEvalTest, AssignBindsOrFilters) {
  BuiltinAtom assign;
  assign.kind = BuiltinAtom::Kind::kAssign;
  assign.var = 0;
  assign.expr = Expr::Binary(Expr::Op::kAdd, KI(2), KI(3));
  Bindings b(1);
  auto applied = ApplyBuiltin(assign, &b);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(*applied);
  EXPECT_EQ(b.Get(0).AsInt(), 5);
  // Re-assigning to a bound variable degrades to an equality check.
  auto again = ApplyBuiltin(assign, &b);
  EXPECT_TRUE(*again);
  Bindings mismatch(1);
  mismatch.Set(0, Value::Int(7));
  auto filtered = ApplyBuiltin(assign, &mismatch);
  EXPECT_FALSE(*filtered);
}

TEST(BuiltinEvalTest, CompareBuiltinFilters) {
  BuiltinAtom cmp;
  cmp.kind = BuiltinAtom::Kind::kCompare;
  cmp.cmp = CmpOp::kGt;
  cmp.lhs = V(0);
  cmp.rhs = K(0.0);
  Bindings pos(1);
  pos.Set(0, Value::Double(2.0));
  EXPECT_TRUE(*ApplyBuiltin(cmp, &pos));
  Bindings neg(1);
  neg.Set(0, Value::Double(-2.0));
  EXPECT_FALSE(*ApplyBuiltin(cmp, &neg));
}

}  // namespace
}  // namespace dmtl
