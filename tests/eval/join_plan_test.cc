// Join-planner equivalence and soundness: materializing with
// enable_join_planning on and off must produce identical database contents
// and cover the same derived intervals in provenance, at every pool width.
// The planner reorders literals and changes the order rows are enumerated
// in, so provenance *text* (insertion order of pieces) may differ between
// on and off; coverage - the union of derived pieces per (predicate,
// tuple) - is the invariant, exactly as in parallel_eval_test.
//
// Also covers the soundness corner the pruning design calls out (an atom
// under the LEFT operand of since/until must not be envelope-pruned: an
// empty LHS holds vacuously when 0 is in rho), the planner counters, and
// ExplainPlan.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <sstream>

#include "src/chain/replayer.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/eval/rule_eval.h"
#include "src/eval/seminaive.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

struct RunResult {
  std::string db_text;
  std::string provenance_coverage;
  size_t derived_intervals = 0;
};

std::string ProvenanceCoverage(const std::vector<DerivationRecord>& records) {
  std::map<std::pair<PredicateId, std::string>, IntervalSet> coverage;
  for (const DerivationRecord& record : records) {
    coverage[{record.predicate, TupleToString(record.tuple)}].Insert(
        record.piece);
  }
  std::ostringstream out;
  for (const auto& [key, set] : coverage) {
    out << key.first << " " << key.second << " @ " << set.ToString() << "\n";
  }
  return out.str();
}

RunResult MaterializeWithPlanning(const Program& program,
                                  const Database& input, EngineOptions options,
                                  bool planning, int num_threads) {
  std::vector<DerivationRecord> provenance;
  options.enable_join_planning = planning;
  options.num_threads = num_threads;
  options.provenance = &provenance;
  Database db = input;
  EngineStats stats;
  Status status = Materialize(program, &db, options, &stats);
  EXPECT_TRUE(status.ok()) << status << " (planning=" << planning
                           << ", num_threads=" << num_threads << ")";
  RunResult out;
  out.db_text = db.ToString();
  out.provenance_coverage = ProvenanceCoverage(provenance);
  out.derived_intervals = stats.derived_intervals;
  return out;
}

// Planner on must equal planner off - same database, same provenance
// coverage, same derived-interval count - at pool widths 1, 2, and 8.
void ExpectPlannerEquivalence(const Program& program, const Database& input,
                              const EngineOptions& options,
                              const std::string& label) {
  for (int threads : {1, 2, 8}) {
    RunResult on =
        MaterializeWithPlanning(program, input, options, true, threads);
    RunResult off =
        MaterializeWithPlanning(program, input, options, false, threads);
    EXPECT_EQ(on.db_text, off.db_text)
        << label << ": database diverged at num_threads=" << threads;
    EXPECT_EQ(on.provenance_coverage, off.provenance_coverage)
        << label << ": provenance coverage diverged at num_threads="
        << threads;
    EXPECT_EQ(on.derived_intervals, off.derived_intervals)
        << label << ": derived counts diverged at num_threads=" << threads;
  }
}

// Same safe fragment parallel_eval_test fuzzes: stratified negation,
// boxminus/diamondminus recursion, multi-literal joins.
class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    std::ostringstream out;
    int num_edb = 2 + Pick(2);
    int num_derived = 2 + Pick(3);
    for (int d = 0; d < num_derived; ++d) {
      out << "d" << d << "(X) :- " << LowerAtom(d, num_edb) << Guard(num_edb)
          << " .\n";
      int step = 1 + Pick(2);
      const char* op = Pick(2) == 0 ? "boxminus" : "diamondminus";
      out << "d" << d << "(X) :- " << op << "[" << step << "," << step
          << "] d" << d << "(X), not p0(X) .\n";
      if (Pick(2) == 0) {
        out << "d" << d << "(X) :- diamondminus[0," << (1 + Pick(3)) << "] "
            << LowerAtom(d, num_edb) << " .\n";
      }
    }
    for (int p = 0; p < num_edb; ++p) {
      int facts = 1 + Pick(4);
      for (int f = 0; f < facts; ++f) {
        int lo = Pick(12);
        int hi = lo + Pick(4);
        out << "p" << p << "(c" << Pick(3) << ")@[" << lo << "," << hi
            << "] .\n";
      }
    }
    return out.str();
  }

 private:
  int Pick(int n) { return static_cast<int>(rng_() % n); }

  std::string LowerAtom(int d, int num_edb) {
    if (d > 0 && Pick(2) == 0) {
      return "d" + std::to_string(Pick(d)) + "(X)";
    }
    return "p" + std::to_string(Pick(num_edb)) + "(X)";
  }

  std::string Guard(int num_edb) {
    switch (Pick(3)) {
      case 0:
        return "";
      case 1:
        return ", not p" + std::to_string(Pick(num_edb)) + "(X)";
      default:
        return ", diamondminus[0,2] p" + std::to_string(Pick(num_edb)) +
               "(X)";
    }
  }

  std::mt19937_64 rng_;
};

class PlannerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerFuzzTest, PlannerOnOffAgree) {
  ProgramFuzzer fuzzer(GetParam());
  std::string text = fuzzer.Generate();
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\nprogram:\n" << text;
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(40);
  ExpectPlannerEquivalence(unit->program, unit->database, options,
                           "fuzz program:\n" + text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(JoinPlanTest, RecursiveTransitiveClosureAgrees) {
  const char* text =
      "reach(X, Y) :- edge(X, Y) .\n"
      "reach(X, Z) :- reach(X, Y), edge(Y, Z) .\n"
      "back(X, Y) :- reach(X, Y), not edge(X, Y) .\n"
      "edge(a, b)@[0,10] . edge(b, c)@[2,8] . edge(c, d)@[3,6] .\n"
      "edge(d, a)@[4,5] . edge(c, a)@[0,4] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(20);
  ExpectPlannerEquivalence(unit->program, unit->database, options,
                           "transitive closure");
}

TEST(JoinPlanTest, EthPerpSessionAgrees) {
  WorkloadConfig config;
  config.name = "planner-eq";
  config.num_events = 24;
  config.num_trades = 5;
  config.duration_s = 600;
  config.initial_skew = -500.0;
  config.seed = 123;
  auto session = GenerateSession(config);
  ASSERT_TRUE(session.ok()) << session.status();
  auto program = EthPerpProgram({});
  ASSERT_TRUE(program.ok()) << program.status();
  Database input = SessionToDatabase(*session);
  EngineOptions options = SessionEngineOptions(*session);
  ExpectPlannerEquivalence(*program, input, options, "ETH-PERP session");
}

// The pruning-soundness corner: p(X) since[0,2] q(X) holds wherever q
// holds even if p never does (0 in rho makes the empty LHS vacuous). p's
// only fact lies at [100,200], temporally disjoint from everything else -
// an unsound planner would envelope-prune it and lose r(a)@[3,5].
TEST(JoinPlanTest, SinceLeftOperandIsNotPruned) {
  const char* text =
      "r(X) :- s(X), p(X) since[0,2] q(X) .\n"
      "s(a)@[0,10] .\n"
      "q(a)@[3,5] .\n"
      "p(a)@[100,200] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(300);
  ExpectPlannerEquivalence(unit->program, unit->database, options,
                           "since-LHS vacuity");
  Database db = unit->database;
  ASSERT_TRUE(Materialize(unit->program, &db, options).ok());
  const Relation* r = db.Find("r");
  ASSERT_NE(r, nullptr);
  const IntervalSet* extent = r->Find(Tuple{Value::Symbol("a")});
  ASSERT_NE(extent, nullptr);
  EXPECT_TRUE(extent->Contains(Rational(3)));
  EXPECT_TRUE(extent->Contains(Rational(5)));
}

// A join wide enough to cross the indexing threshold: the planner must
// report indexes built, probes issued, and tuples pruned, plus one plan
// cost per rule; with planning off every counter stays zero.
TEST(JoinPlanTest, PlannerCountersAreReported) {
  std::ostringstream text;
  text << "r(X, Z) :- p(X, Y), q(Y, Z) .\n";
  for (int i = 0; i < 12; ++i) {
    text << "p(a" << i << ", b" << i << ")@[" << i << "," << (i + 1)
         << "] .\n";
    text << "q(b" << i << ", c" << i << ")@[" << i << "," << (i + 1)
         << "] .\n";
    // Same join key, far-away extent: index hits that the temporal
    // envelope precheck should discard.
    text << "q(b" << i << ", far)@[1000,1001] .\n";
  }
  auto unit = Parser::Parse(text.str());
  ASSERT_TRUE(unit.ok()) << unit.status();

  Database db = unit->database;
  EngineStats stats;
  ASSERT_TRUE(Materialize(unit->program, &db, {}, &stats).ok());
  EXPECT_GE(stats.planner_indexes_built, 1u);
  EXPECT_GE(stats.planner_index_probes, 1u);
  EXPECT_GE(stats.planner_probe_hits, 1u);
  EXPECT_GE(stats.planner_pruned_tuples, 1u);
  ASSERT_EQ(stats.rule_plan_cost.size(), unit->program.size());
  EXPECT_GT(stats.rule_plan_cost[0], 0.0);
  EXPECT_NE(stats.ToString().find("planner_probes="), std::string::npos);

  Database db_off = unit->database;
  EngineStats off;
  EngineOptions options;
  options.enable_join_planning = false;
  ASSERT_TRUE(Materialize(unit->program, &db_off, options, &off).ok());
  EXPECT_EQ(off.planner_indexes_built, 0u);
  EXPECT_EQ(off.planner_index_probes, 0u);
  EXPECT_EQ(off.planner_pruned_tuples, 0u);
  EXPECT_TRUE(off.rule_plan_cost.empty());
  EXPECT_EQ(off.ToString().find("planner_probes="), std::string::npos);
  EXPECT_EQ(db.ToString(), db_off.ToString());
}

TEST(JoinPlanTest, ExplainPlanDescribesOrderIndexesAndPruning) {
  std::ostringstream text;
  text << "r(X, Z) :- p(X, Y), q(Y, Z) .\n";
  for (int i = 0; i < 12; ++i) {
    text << "p(a" << i << ", b" << i << ")@[" << i << "," << (i + 1)
         << "] .\n"
         << "q(b" << i << ", c" << i << ")@[" << i << "," << (i + 1)
         << "] .\n";
  }
  auto unit = Parser::Parse(text.str());
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto eval = RuleEvaluator::Create(unit->program.rules()[0]);
  ASSERT_TRUE(eval.ok()) << eval.status();

  std::string plan = eval->ExplainPlan(unit->database);
  EXPECT_NE(plan.find("1. "), std::string::npos) << plan;
  EXPECT_NE(plan.find("2. "), std::string::npos) << plan;
  // The second literal joins on its now-bound variable: an index probe on
  // that position, envelope-pruned, with a per-step and total cost.
  EXPECT_NE(plan.find("index(0)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("envelope-pruned"), std::string::npos) << plan;
  EXPECT_NE(plan.find("est_cost="), std::string::npos) << plan;
  EXPECT_NE(plan.find("total est_cost="), std::string::npos) << plan;

  auto off = RuleEvaluator::Create(unit->program.rules()[0],
                                   /*enable_join_planning=*/false);
  ASSERT_TRUE(off.ok());
  EXPECT_NE(off->ExplainPlan(unit->database).find("disabled"),
            std::string::npos);
}

// The delta literal is pinned first in semi-naive passes, whatever the
// cost model says: recursion converges to the same fixpoint.
TEST(JoinPlanTest, DeltaPinnedRecursionAgrees) {
  const char* text =
      "hop(X, Y) :- edge(X, Y) .\n"
      "hop(X, Z) :- diamondminus[0,2] hop(X, Y), edge(Y, Z), not stop(X) .\n"
      "edge(a, b)@[0,6] . edge(b, c)@[1,5] . edge(c, d)@[2,4] .\n"
      "edge(d, e)@[2,3] . stop(d)@[0,10] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(20);
  ExpectPlannerEquivalence(unit->program, unit->database, options,
                           "delta-pinned recursion");
}

}  // namespace
}  // namespace dmtl
