// Edge cases of rule evaluation beyond the happy paths: empty relations,
// constants in heads, duplicate literals, negated binary operators,
// multiple timestamp splits, and assignment/filter interplay.

#include <gtest/gtest.h>

#include "src/eval/rule_eval.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

std::string Derive(const char* rule_text, const char* facts_text) {
  auto rule = Parser::ParseRule(rule_text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  auto db = Parser::ParseDatabase(facts_text);
  EXPECT_TRUE(db.ok()) << db.status();
  auto eval = RuleEvaluator::Create(*rule);
  EXPECT_TRUE(eval.ok()) << eval.status();
  Database derived;
  Status status = eval->Evaluate(
      *db, nullptr, -1,
      [&](const Tuple& tuple, const IntervalSet& extent) -> Status {
        derived.InsertSet(rule->head.predicate, tuple, extent);
        return Status::Ok();
      });
  EXPECT_TRUE(status.ok()) << status;
  return derived.ToString();
}

TEST(RuleEvalEdgeTest, MissingRelationYieldsNothing) {
  EXPECT_EQ(Derive("q(X) :- p(X), absent(X) .", "p(a)@1 ."), "");
  EXPECT_EQ(Derive("q(X) :- absent(X) .", "p(a)@1 ."), "");
}

TEST(RuleEvalEdgeTest, NegationOfMissingRelationIsVacuous) {
  EXPECT_EQ(Derive("q(X) :- p(X), not absent(X) .", "p(a)@1 ."),
            "q(a)@{[1,1]}\n");
}

TEST(RuleEvalEdgeTest, ConstantsInHead) {
  EXPECT_EQ(Derive("tagged(X, marker, 7) :- p(X) .", "p(a)@1 ."),
            "tagged(a, marker, 7)@{[1,1]}\n");
}

TEST(RuleEvalEdgeTest, DuplicateBodyLiteralsAreHarmless) {
  EXPECT_EQ(Derive("q(X) :- p(X), p(X), p(X) .", "p(a)@[1,5] ."),
            "q(a)@{[1,5]}\n");
}

TEST(RuleEvalEdgeTest, SelfJoinOnDifferentVariables) {
  EXPECT_EQ(Derive("pair(X, Y) :- p(X), p(Y), X != Y .",
                   "p(a)@[1,3] . p(b)@[2,6] ."),
            "pair(a, b)@{[2,3]}\npair(b, a)@{[2,3]}\n");
}

TEST(RuleEvalEdgeTest, NegatedBinaryOperator) {
  // not (ok since reset): the whole binary extent subtracts.
  EXPECT_EQ(Derive("bad(X) :- p(X), not (ok(X) since[0,3] reset(X)) .",
                   "p(x)@[0,10] . ok(x)@[2,10] . reset(x)@2 ."),
            "bad(x)@{[0,2) (5,10]}\n");
}

TEST(RuleEvalEdgeTest, MultipleTimestampVariablesAgree) {
  // Two timestamp builtins bind the same point; a filter can compare them.
  EXPECT_EQ(Derive("at(A, T, U) :- p(A), timestamp(T), timestamp(U), "
                   "T == U .",
                   "p(x)@4 ."),
            "at(x, 4, 4)@{[4,4]}\n");
}

TEST(RuleEvalEdgeTest, TimestampWithFractionalPoint) {
  EXPECT_EQ(Derive("at(T) :- p(), timestamp(T) .", "p()@[1/2, 1/2] ."),
            "at(0.5)@{[1/2,1/2]}\n");
}

TEST(RuleEvalEdgeTest, AssignmentChainsOutOfOrder) {
  EXPECT_EQ(Derive("q(A, C) :- p(A, X), C = B * 2, B = X + 1 .",
                   "p(a, 3)@1 ."),
            "q(a, 8)@{[1,1]}\n");
}

TEST(RuleEvalEdgeTest, AssignmentAsEqualityFilterOnAtomVariable) {
  // M is bound by the second atom; `M = X + Y` filters instead of binding.
  EXPECT_EQ(Derive("ok(A) :- p(A, X, Y), q(A, M), M = X + Y .",
                   "p(a, 1.0, 2.0)@1 . q(a, 3.0)@1 . "
                   "p(b, 1.0, 2.0)@1 . q(b, 4.0)@1 ."),
            "ok(a)@{[1,1]}\n");
}

TEST(RuleEvalEdgeTest, EvaluationErrorsPropagate) {
  auto rule = Parser::ParseRule("q(A, C) :- p(A, X), C = X / 0.0 .");
  auto db = Parser::ParseDatabase("p(a, 1.0)@1 .");
  auto eval = RuleEvaluator::Create(*rule);
  Status status = eval->Evaluate(
      *db, nullptr, -1,
      [](const Tuple&, const IntervalSet&) { return Status::Ok(); });
  EXPECT_EQ(status.code(), StatusCode::kEvalError);
}

TEST(RuleEvalEdgeTest, EmitErrorsPropagate) {
  auto rule = Parser::ParseRule("q(X) :- p(X) .");
  auto db = Parser::ParseDatabase("p(a)@1 .");
  auto eval = RuleEvaluator::Create(*rule);
  Status status = eval->Evaluate(
      *db, nullptr, -1, [](const Tuple&, const IntervalSet&) {
        return Status::ResourceExhausted("budget");
      });
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(RuleEvalEdgeTest, ArityMismatchedTuplesAreSkipped) {
  // The same predicate name with a different arity in the database (legal
  // at the storage level) never unifies.
  Database db;
  db.Insert("p", {Value::Symbol("a")}, Interval::Point(Rational(1)));
  db.Insert("p", {Value::Symbol("a"), Value::Symbol("b")},
            Interval::Point(Rational(1)));
  auto rule = Parser::ParseRule("q(X) :- p(X) .");
  auto eval = RuleEvaluator::Create(*rule);
  Database derived;
  ASSERT_TRUE(eval->Evaluate(db, nullptr, -1,
                             [&](const Tuple& tuple,
                                 const IntervalSet& extent) -> Status {
                               derived.InsertSet(rule->head.predicate,
                                                 tuple, extent);
                               return Status::Ok();
                             })
                  .ok());
  EXPECT_EQ(derived.ToString(), "q(a)@{[1,1]}\n");
}

TEST(RuleEvalEdgeTest, IntervalFactsThroughPunctualOperators) {
  // A [1,1] shift of an interval fact moves the whole interval.
  EXPECT_EQ(Derive("q(X) :- boxminus p(X) .", "p(a)@[3,7) ."),
            "q(a)@{[4,8)}\n");
  EXPECT_EQ(Derive("q(X) :- diamondminus p(X) .", "p(a)@(0,2] ."),
            "q(a)@{(1,3]}\n");
}

TEST(RuleEvalEdgeTest, WindowOperatorsAcrossGaps) {
  // diamondminus[0,2] bridges a gap of width <= 2, boxminus[0,2] does not.
  EXPECT_EQ(Derive("q(X) :- diamondminus[0,2] p(X) .",
                   "p(a)@[0,1] . p(a)@[3,4] ."),
            "q(a)@{[0,6]}\n");
  EXPECT_EQ(Derive("q(X) :- boxminus[0,2] p(X) .",
                   "p(a)@[0,1] . p(a)@[3,4] ."),
            "");
}

}  // namespace
}  // namespace dmtl
