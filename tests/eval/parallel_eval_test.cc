// Parallel-vs-sequential equivalence: materializing with num_threads of
// 1, 2, and 8 must produce identical database contents and Series()
// output, and cover the same derived intervals in provenance. Covers the
// ETH-PERP contract program, randomized synthetic programs (the same safe
// fragment the differential test fuzzes), and directed recursive cases.
//
// Provenance *attribution* (which rule / which round first derived a
// piece) can legitimately differ between sequential and parallel runs:
// sequential evaluation has program-order visibility within a round,
// while parallel tasks evaluate against the round-start snapshot (see the
// EngineOptions::num_threads doc in seminaive.h). So seq-vs-par we
// compare provenance *coverage* - the union of derived pieces per
// (predicate, tuple) - which is invariant. Across parallel widths
// (2 vs 8 threads) the schedule is width-independent, so there the full
// provenance text must match byte for byte.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <sstream>

#include "src/chain/replayer.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/engine/reasoner.h"
#include "src/eval/seminaive.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

struct RunResult {
  std::string db_text;
  std::string series_text;
  std::string provenance_text;
  std::string provenance_coverage;
  size_t derived_intervals = 0;
};

// Union of provenance pieces per (predicate, tuple), rendered sorted.
// Attribution-independent: equal whenever two runs derived the same facts.
std::string ProvenanceCoverage(const std::vector<DerivationRecord>& records) {
  std::map<std::pair<PredicateId, std::string>, IntervalSet> coverage;
  for (const DerivationRecord& record : records) {
    coverage[{record.predicate, TupleToString(record.tuple)}].Insert(
        record.piece);
  }
  std::ostringstream out;
  for (const auto& [key, set] : coverage) {
    out << key.first << " " << key.second << " @ " << set.ToString() << "\n";
  }
  return out.str();
}

std::string SeriesText(const Database& db, std::string_view pred) {
  std::ostringstream out;
  for (const auto& [t, tuple] : Reasoner::Series(db, pred)) {
    out << t << " " << TupleToString(tuple) << "\n";
  }
  return out.str();
}

RunResult MaterializeWithThreads(const Program& program, const Database& input,
                                 EngineOptions options, int num_threads,
                                 std::string_view series_pred) {
  std::vector<DerivationRecord> provenance;
  options.num_threads = num_threads;
  options.provenance = &provenance;
  Database db = input;
  EngineStats stats;
  Status status = Materialize(program, &db, options, &stats);
  EXPECT_TRUE(status.ok()) << status << " (num_threads=" << num_threads << ")";
  RunResult out;
  out.db_text = db.ToString();
  out.series_text = SeriesText(db, series_pred);
  std::ostringstream prov;
  for (const DerivationRecord& record : provenance) {
    prov << record.ToString(program) << "\n";
  }
  out.provenance_text = prov.str();
  out.provenance_coverage = ProvenanceCoverage(provenance);
  out.derived_intervals = stats.derived_intervals;
  return out;
}

void ExpectEquivalentAcrossThreadCounts(const Program& program,
                                        const Database& input,
                                        const EngineOptions& options,
                                        std::string_view series_pred,
                                        const std::string& label) {
  RunResult seq = MaterializeWithThreads(program, input, options, 1,
                                         series_pred);
  std::vector<RunResult> parallel;
  for (int threads : {2, 8}) {
    RunResult par = MaterializeWithThreads(program, input, options, threads,
                                           series_pred);
    EXPECT_EQ(seq.db_text, par.db_text)
        << label << ": database diverged at num_threads=" << threads;
    EXPECT_EQ(seq.series_text, par.series_text)
        << label << ": Series() diverged at num_threads=" << threads;
    EXPECT_EQ(seq.provenance_coverage, par.provenance_coverage)
        << label << ": provenance coverage diverged at num_threads="
        << threads;
    parallel.push_back(std::move(par));
  }
  // Pool width must not change anything: the parallel schedule is
  // deterministic, so 2 and 8 threads agree byte for byte - including
  // provenance attribution and the stats counters.
  ASSERT_EQ(parallel.size(), 2u);
  EXPECT_EQ(parallel[0].db_text, parallel[1].db_text) << label;
  EXPECT_EQ(parallel[0].series_text, parallel[1].series_text) << label;
  EXPECT_EQ(parallel[0].provenance_text, parallel[1].provenance_text)
      << label << ": parallel provenance is not width-independent";
  EXPECT_EQ(parallel[0].derived_intervals, parallel[1].derived_intervals)
      << label;
}

// --- randomized synthetic programs (mirrors differential_test's fragment) --

class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    std::ostringstream out;
    int num_edb = 2 + Pick(2);
    int num_derived = 2 + Pick(3);
    for (int d = 0; d < num_derived; ++d) {
      out << "d" << d << "(X) :- " << LowerAtom(d, num_edb) << Guard(num_edb)
          << " .\n";
      int step = 1 + Pick(2);
      const char* op = Pick(2) == 0 ? "boxminus" : "diamondminus";
      out << "d" << d << "(X) :- " << op << "[" << step << "," << step
          << "] d" << d << "(X), not p0(X) .\n";
      if (Pick(2) == 0) {
        out << "d" << d << "(X) :- diamondminus[0," << (1 + Pick(3)) << "] "
            << LowerAtom(d, num_edb) << " .\n";
      }
    }
    for (int p = 0; p < num_edb; ++p) {
      int facts = 1 + Pick(4);
      for (int f = 0; f < facts; ++f) {
        int lo = Pick(12);
        int hi = lo + Pick(4);
        out << "p" << p << "(c" << Pick(3) << ")@[" << lo << "," << hi
            << "] .\n";
      }
    }
    return out.str();
  }

 private:
  int Pick(int n) { return static_cast<int>(rng_() % n); }

  std::string LowerAtom(int d, int num_edb) {
    if (d > 0 && Pick(2) == 0) {
      return "d" + std::to_string(Pick(d)) + "(X)";
    }
    return "p" + std::to_string(Pick(num_edb)) + "(X)";
  }

  std::string Guard(int num_edb) {
    switch (Pick(3)) {
      case 0:
        return "";
      case 1:
        return ", not p" + std::to_string(Pick(num_edb)) + "(X)";
      default:
        return ", diamondminus[0,2] p" + std::to_string(Pick(num_edb)) +
               "(X)";
    }
  }

  std::mt19937_64 rng_;
};

class ParallelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelFuzzTest, ThreadCountsAgree) {
  ProgramFuzzer fuzzer(GetParam());
  std::string text = fuzzer.Generate();
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\nprogram:\n" << text;
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(40);
  ExpectEquivalentAcrossThreadCounts(unit->program, unit->database, options,
                                     "d0", "fuzz program:\n" + text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelFuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

// Without the chain accelerator the fixpoint takes one round per tick -
// many more rounds and barrier merges to keep consistent.
TEST(ParallelEvalTest, ThreadCountsAgreeWithoutChainAcceleration) {
  ProgramFuzzer fuzzer(7);
  auto unit = Parser::Parse(fuzzer.Generate());
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(40);
  options.enable_chain_acceleration = false;
  ExpectEquivalentAcrossThreadCounts(unit->program, unit->database, options,
                                     "d0", "no-accel fuzz program");
}

TEST(ParallelEvalTest, ThreadCountsAgreeUnderNaiveEvaluation) {
  ProgramFuzzer fuzzer(11);
  auto unit = Parser::Parse(fuzzer.Generate());
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(40);
  options.naive_evaluation = true;
  ExpectEquivalentAcrossThreadCounts(unit->program, unit->database, options,
                                     "d0", "naive fuzz program");
}

// Mutually recursive rules in one stratum: the shape where sequential
// evaluation can see an earlier rule's same-round output.
TEST(ParallelEvalTest, RecursiveTransitiveClosure) {
  const char* text =
      "reach(X, Y) :- edge(X, Y) .\n"
      "reach(X, Z) :- reach(X, Y), edge(Y, Z) .\n"
      "back(X, Y) :- reach(X, Y), not edge(X, Y) .\n"
      "edge(a, b)@[0,10] . edge(b, c)@[2,8] . edge(c, d)@[3,6] .\n"
      "edge(d, a)@[4,5] . edge(c, a)@[0,4] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(20);
  ExpectEquivalentAcrossThreadCounts(unit->program, unit->database, options,
                                     "reach", "transitive closure");
}

TEST(ParallelEvalTest, AutoThreadsMatchesSequential) {
  const char* text =
      "q(X) :- p(X) .\n"
      "q(X) :- boxminus[1,1] q(X), not stop(X) .\n"
      "p(a)@0 . p(b)@2 . stop(a)@6 .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok());
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(30);

  RunResult seq = MaterializeWithThreads(unit->program, unit->database,
                                         options, 1, "q");
  // num_threads = 0 resolves to hardware concurrency (>= 1).
  RunResult autop = MaterializeWithThreads(unit->program, unit->database,
                                           options, 0, "q");
  EXPECT_EQ(seq.db_text, autop.db_text);
  EXPECT_EQ(seq.series_text, autop.series_text);
  EXPECT_EQ(seq.provenance_coverage, autop.provenance_coverage);
}

// The full contract program on a synthetic trading session - the paper's
// workload, including aggregates, negation, and the accelerated chains.
TEST(ParallelEvalTest, EthPerpSessionEquivalence) {
  WorkloadConfig config;
  config.name = "parallel-eq";
  config.num_events = 24;
  config.num_trades = 5;
  config.duration_s = 600;
  config.initial_skew = -500.0;
  config.seed = 123;
  auto session = GenerateSession(config);
  ASSERT_TRUE(session.ok()) << session.status();

  auto program = EthPerpProgram({});
  ASSERT_TRUE(program.ok()) << program.status();
  Database input = SessionToDatabase(*session);
  EngineOptions options = SessionEngineOptions(*session);
  ExpectEquivalentAcrossThreadCounts(*program, input, options, "frs",
                                     "ETH-PERP session");
}

TEST(ParallelEvalTest, ParallelStatsAreReported) {
  const char* text =
      "a(X) :- p(X) .\n"
      "b(X) :- p(X) .\n"
      "c(X) :- a(X), b(X) .\n"
      "p(x)@[0,5] . p(y)@[2,9] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok());
  EngineOptions options;
  options.num_threads = 4;
  Database db = unit->database;
  EngineStats stats;
  ASSERT_TRUE(Materialize(unit->program, &db, options, &stats).ok());
  EXPECT_EQ(stats.threads, 4u);
  EXPECT_GE(stats.parallel_rounds, 1u);
  EXPECT_GE(stats.parallel_tasks, 3u);
  EXPECT_GE(stats.parallel_merges, 3u);
  EXPECT_EQ(stats.stratum_wall_seconds.size(),
            static_cast<size_t>(stats.num_strata));
  EXPECT_NE(stats.ToString().find("threads=4"), std::string::npos);
}

TEST(ParallelEvalTest, SequentialStatsOmitParallelCounters) {
  const char* text = "a(X) :- p(X) .\np(x)@[0,5] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok());
  Database db = unit->database;
  EngineStats stats;
  ASSERT_TRUE(Materialize(unit->program, &db, {}, &stats).ok());
  EXPECT_EQ(stats.threads, 1u);
  EXPECT_EQ(stats.parallel_rounds, 0u);
  EXPECT_EQ(stats.ToString().find("parallel_rounds"), std::string::npos);
}

}  // namespace
}  // namespace dmtl
