// Interval-delta propagation equivalence and soundness: materializing with
// enable_interval_deltas on and off must produce identical database
// contents, identical query Series, and cover the same derived intervals in
// provenance, at every pool width. Memoized operator reads have
// round-boundary snapshot semantics, so provenance round/rule attribution -
// and the rounds/derived counters - may legitimately shift on programs with
// intra-round feeding; coverage (the union of derived pieces per
// (predicate, tuple)) is the invariant, exactly as in join_plan_test and
// parallel_eval_test.
//
// Also covers the memo-specific corners: punctual-box paths refresh in
// place while non-punctual boxes invalidate, since/until bodies never
// memoize (their LHS vacuity must survive), and the memo counters surface
// through EngineStats.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <sstream>

#include "src/chain/replayer.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/engine/reasoner.h"
#include "src/eval/seminaive.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

struct RunResult {
  std::string db_text;
  std::string provenance_coverage;
};

std::string ProvenanceCoverage(const std::vector<DerivationRecord>& records) {
  std::map<std::pair<PredicateId, std::string>, IntervalSet> coverage;
  for (const DerivationRecord& record : records) {
    coverage[{record.predicate, TupleToString(record.tuple)}].Insert(
        record.piece);
  }
  std::ostringstream out;
  for (const auto& [key, set] : coverage) {
    out << key.first << " " << key.second << " @ " << set.ToString() << "\n";
  }
  return out.str();
}

RunResult MaterializeWithDeltas(const Program& program, const Database& input,
                                EngineOptions options, bool deltas,
                                int num_threads) {
  std::vector<DerivationRecord> provenance;
  options.enable_interval_deltas = deltas;
  options.num_threads = num_threads;
  options.provenance = &provenance;
  Database db = input;
  EngineStats stats;
  Status status = Materialize(program, &db, options, &stats);
  EXPECT_TRUE(status.ok()) << status << " (deltas=" << deltas
                           << ", num_threads=" << num_threads << ")";
  RunResult out;
  out.db_text = db.ToString();
  out.provenance_coverage = ProvenanceCoverage(provenance);
  return out;
}

// Deltas on must equal deltas off - same database, same provenance
// coverage - at pool widths 1, 2, and 8.
void ExpectDeltaEquivalence(const Program& program, const Database& input,
                            const EngineOptions& options,
                            const std::string& label) {
  for (int threads : {1, 2, 8}) {
    RunResult on =
        MaterializeWithDeltas(program, input, options, true, threads);
    RunResult off =
        MaterializeWithDeltas(program, input, options, false, threads);
    EXPECT_EQ(on.db_text, off.db_text)
        << label << ": database diverged at num_threads=" << threads;
    EXPECT_EQ(on.provenance_coverage, off.provenance_coverage)
        << label << ": provenance coverage diverged at num_threads="
        << threads;
  }
}

// The same safe fragment join_plan_test and parallel_eval_test fuzz
// (stratified negation, boxminus/diamondminus recursion, multi-literal
// joins), with deeper unary chains so refreshable and non-refreshable memo
// paths both occur.
class DeltaProgramFuzzer {
 public:
  explicit DeltaProgramFuzzer(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    std::ostringstream out;
    int num_edb = 2 + Pick(2);
    int num_derived = 2 + Pick(3);
    for (int d = 0; d < num_derived; ++d) {
      out << "d" << d << "(X) :- " << LowerAtom(d, num_edb) << Guard(num_edb)
          << " .\n";
      int step = 1 + Pick(2);
      const char* op = Pick(2) == 0 ? "boxminus" : "diamondminus";
      out << "d" << d << "(X) :- " << op << "[" << step << "," << step
          << "] d" << d << "(X)" << Guard(num_edb) << " .\n";
      if (Pick(2) == 0) {
        // A two-operator chain over a lower atom: exercises path
        // memoization (punctual boxes refresh, ranged ones invalidate).
        const char* inner = Pick(2) == 0 ? "boxminus[1,1]" : "diamondminus";
        out << "d" << d << "(X) :- diamondminus[0," << (1 + Pick(3)) << "] "
            << inner << " " << LowerAtom(d, num_edb) << " .\n";
      }
    }
    for (int p = 0; p < num_edb; ++p) {
      int facts = 1 + Pick(4);
      for (int f = 0; f < facts; ++f) {
        int lo = Pick(12);
        int hi = lo + Pick(4);
        out << "p" << p << "(c" << Pick(3) << ")@[" << lo << "," << hi
            << "] .\n";
      }
    }
    return out.str();
  }

 private:
  int Pick(int n) { return static_cast<int>(rng_() % n); }

  std::string LowerAtom(int d, int num_edb) {
    if (d > 0 && Pick(2) == 0) {
      return "d" + std::to_string(Pick(d)) + "(X)";
    }
    return "p" + std::to_string(Pick(num_edb)) + "(X)";
  }

  std::string Guard(int num_edb) {
    switch (Pick(3)) {
      case 0:
        return "";
      case 1:
        return ", not p" + std::to_string(Pick(num_edb)) + "(X)";
      default:
        return ", diamondminus[0,2] p" + std::to_string(Pick(num_edb)) +
               "(X)";
    }
  }

  std::mt19937_64 rng_;
};

class DeltaFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaFuzzTest, DeltasOnOffAgree) {
  DeltaProgramFuzzer fuzzer(GetParam());
  std::string text = fuzzer.Generate();
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\nprogram:\n" << text;
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(40);
  ExpectDeltaEquivalence(unit->program, unit->database, options,
                         "fuzz program:\n" + text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(IntervalDeltaTest, RecursiveTransitiveClosureAgrees) {
  const char* text =
      "reach(X, Y) :- edge(X, Y) .\n"
      "reach(X, Z) :- diamondminus[0,2] reach(X, Y), edge(Y, Z) .\n"
      "back(X, Y) :- reach(X, Y), not edge(X, Y) .\n"
      "edge(a, b)@[0,10] . edge(b, c)@[2,8] . edge(c, d)@[3,6] .\n"
      "edge(d, a)@[4,5] . edge(c, a)@[0,4] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(20);
  ExpectDeltaEquivalence(unit->program, unit->database, options,
                         "transitive closure");
}

TEST(IntervalDeltaTest, EthPerpSessionAgreesIncludingSeries) {
  WorkloadConfig config;
  config.name = "delta-eq";
  config.num_events = 24;
  config.num_trades = 5;
  config.duration_s = 600;
  config.initial_skew = -500.0;
  config.seed = 123;
  auto session = GenerateSession(config);
  ASSERT_TRUE(session.ok()) << session.status();
  auto program = EthPerpProgram({});
  ASSERT_TRUE(program.ok()) << program.status();
  Database input = SessionToDatabase(*session);
  EngineOptions options = SessionEngineOptions(*session);
  ExpectDeltaEquivalence(*program, input, options, "ETH-PERP session");

  // The contract-statement query surface must agree too: the value-change
  // series of the funding-rate and margin predicates.
  auto run = [&](bool deltas) {
    EngineOptions o = options;
    o.enable_interval_deltas = deltas;
    Database db = input;
    EXPECT_TRUE(Materialize(*program, &db, o).ok());
    return db;
  };
  Database with = run(true);
  Database without = run(false);
  for (const char* pred : {"frs", "margin", "fundingRate"}) {
    EXPECT_EQ(Reasoner::Series(with, pred), Reasoner::Series(without, pred))
        << "Series diverged for " << pred;
  }
}

// The memo must never be consulted under since/until: their left operand
// holds vacuously where the right does when 0 is in rho, even if the LHS
// atom never holds there. Same corner join planning guards against.
TEST(IntervalDeltaTest, SinceBodyAgrees) {
  const char* text =
      "r(X) :- s(X), p(X) since[0,2] q(X) .\n"
      "r(X) :- diamondminus[1,1] r(X), s(X) .\n"
      "s(a)@[0,10] .\n"
      "q(a)@[3,5] .\n"
      "p(a)@[100,200] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(300);
  ExpectDeltaEquivalence(unit->program, unit->database, options,
                         "since-LHS vacuity");
}

// Punctual boxes refresh in place; ranged boxes are erased and recomputed.
// Both paths must converge to the same fixpoint as the recomputing engine.
TEST(IntervalDeltaTest, BoxRefreshAndInvalidationAgree) {
  const char* text =
      "grow(X) :- diamondminus[1,1] grow(X), lim(X) .\n"
      "punct(X) :- boxminus[1,1] grow(X), lim(X) .\n"
      "ranged(X) :- boxminus[0,2] grow(X), lim(X) .\n"
      "grow(a)@[0,1] . lim(a)@[0,30] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(30);
  ExpectDeltaEquivalence(unit->program, unit->database, options,
                         "box refresh/invalidation");
}

// Memo counters must surface through EngineStats (and its ToString, which
// the CLI's --stats prints); with deltas disabled every counter stays zero.
TEST(IntervalDeltaTest, MemoCountersAreReported) {
  const char* text =
      "reach(X) :- diamondminus[1,1] reach(X), diamondminus[0,5] open(X) .\n"
      "slow(X) :- diamondminus[1,1] reach(X), boxminus[0,2] open(X) .\n"
      "open(a)@[0,100] . reach(a)@[0,0] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(30);
  options.enable_chain_acceleration = false;

  Database db = unit->database;
  EngineStats stats;
  ASSERT_TRUE(Materialize(unit->program, &db, options, &stats).ok());
  EXPECT_GE(stats.memo_hits, 1u);
  EXPECT_GE(stats.memo_misses, 1u);
  EXPECT_GE(stats.memo_refreshes, 1u);
  EXPECT_GE(stats.delta_intervals, 1u);
  EXPECT_NE(stats.ToString().find("memo_hits="), std::string::npos);
  EXPECT_NE(stats.ToString().find("delta_intervals="), std::string::npos);

  Database db_off = unit->database;
  EngineStats off;
  options.enable_interval_deltas = false;
  ASSERT_TRUE(Materialize(unit->program, &db_off, options, &off).ok());
  EXPECT_EQ(off.memo_hits, 0u);
  EXPECT_EQ(off.memo_misses, 0u);
  EXPECT_EQ(off.memo_refreshes, 0u);
  EXPECT_EQ(off.memo_invalidations, 0u);
  EXPECT_EQ(off.ToString().find("memo_hits="), std::string::npos);
  EXPECT_EQ(db.ToString(), db_off.ToString());
}

// The parallel work-size heuristic: small fixpoint rounds run inline even
// with a pool. The result must match the all-parallel run, and the forced
// rounds must be counted.
TEST(IntervalDeltaTest, SmallRoundHeuristicAgreesAndCounts) {
  const char* text =
      "tick(X) :- diamondminus[1,1] tick(X), lim(X) .\n"
      "echo(X) :- diamondminus[0,1] tick(X), lim(X) .\n"
      "tick(a)@[0,0] . lim(a)@[0,40] .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(40);
  options.enable_chain_acceleration = false;
  options.num_threads = 4;

  auto run = [&](size_t min_intervals, EngineStats* stats) {
    EngineOptions o = options;
    o.parallel_min_round_intervals = min_intervals;
    Database db = unit->database;
    EXPECT_TRUE(Materialize(unit->program, &db, o, stats).ok());
    return db.ToString();
  };

  EngineStats forced, all_parallel;
  std::string with_heuristic = run(2048, &forced);
  std::string without_heuristic = run(0, &all_parallel);
  EXPECT_EQ(with_heuristic, without_heuristic);
  // Every fixpoint round here carries a handful of intervals: all forced
  // inline (only the initial full rounds still go through the pool).
  EXPECT_GE(forced.sequential_rounds_forced, 1u);
  EXPECT_EQ(all_parallel.sequential_rounds_forced, 0u);
  EXPECT_GT(all_parallel.parallel_rounds, forced.parallel_rounds);
  EXPECT_NE(forced.ToString().find("seq_rounds_forced="), std::string::npos);
}

}  // namespace
}  // namespace dmtl
