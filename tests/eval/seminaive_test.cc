#include "src/eval/seminaive.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/parser/parser.h"

namespace dmtl {
namespace {

// Materializes a combined rules+facts text under the given options and
// returns the resulting database rendering.
std::string RunText(const char* text, EngineOptions options = {},
                EngineStats* stats = nullptr) {
  auto unit = Parser::Parse(text);
  EXPECT_TRUE(unit.ok()) << unit.status();
  Database db = unit->database;
  Status status = Materialize(unit->program, &db, options, stats);
  EXPECT_TRUE(status.ok()) << status;
  return db.ToString();
}

EngineOptions Window(int64_t lo, int64_t hi) {
  EngineOptions options;
  options.min_time = Rational(lo);
  options.max_time = Rational(hi);
  return options;
}

TEST(SemiNaiveTest, NonRecursiveProgram) {
  EXPECT_EQ(RunText("q(X) :- p(X) .\n p(a)@[1,3] ."),
            "p(a)@{[1,3]}\nq(a)@{[1,3]}\n");
}

TEST(SemiNaiveTest, TransitiveClosure) {
  std::string out = RunText(
      "reach(X, Y) :- edge(X, Y) .\n"
      "reach(X, Z) :- reach(X, Y), edge(Y, Z) .\n"
      "edge(a, b)@[0,10] . edge(b, c)@[5,10] . edge(c, d)@[0,4] .");
  // reach(a,c) only while both edges hold; reach(a,d) never (disjoint).
  EXPECT_NE(out.find("reach(a, b)@{[0,10]}"), std::string::npos);
  EXPECT_NE(out.find("reach(a, c)@{[5,10]}"), std::string::npos);
  EXPECT_EQ(out.find("reach(a, d)"), std::string::npos);
}

TEST(SemiNaiveTest, TemporalSelfPropagation) {
  std::string out = RunText(
      "open(A) :- deposit(A) .\n"
      "open(A) :- boxminus open(A), not close(A) .\n"
      "deposit(x)@2 . close(x)@6 .",
      Window(0, 10));
  EXPECT_NE(out.find("open(x)@{[2,2] [3,3] [4,4] [5,5]}"), std::string::npos);
}

TEST(SemiNaiveTest, HorizonClampsUnboundedPropagation) {
  // Without a close event the chain would run forever; the horizon stops it.
  std::string out = RunText(
      "open(A) :- deposit(A) .\n"
      "open(A) :- boxminus open(A) .\n"
      "deposit(x)@2 .",
      Window(0, 5));
  EXPECT_NE(out.find("open(x)@{[2,2] [3,3] [4,4] [5,5]}"), std::string::npos);
}

TEST(SemiNaiveTest, StratifiedNegationAcrossStrata) {
  std::string out = RunText(
      "a(X) :- base(X) .\n"
      "b(X) :- base(X), not a(X) .\n"
      "c(X) :- base2(X), not a(X) .\n"
      "base(x)@[0,5] . base2(x)@[3,8] .");
  EXPECT_EQ(out.find("b(x)"), std::string::npos);
  EXPECT_NE(out.find("c(x)@{(5,8]}"), std::string::npos);
}

TEST(SemiNaiveTest, AggregationFeedsRecursion) {
  // The contract's event->skew shape: aggregate once, then chain.
  std::string out = RunText(
      "event(msum(S)) :- c(A, S) .\n"
      "skew(K) :- diamondminus skew(K), not event(_) .\n"
      "skew(K) :- diamondminus skew(X), event(S), K = X + S .\n"
      "skew(10.0)@0 . c(a, 2.0)@3 . c(b, 3.0)@3 . c(a, -1.0)@5 .",
      Window(0, 6));
  EXPECT_NE(out.find("skew(10)@{[0,0] [1,1] [2,2]}"), std::string::npos);
  EXPECT_NE(out.find("skew(15)@{[3,3] [4,4]}"), std::string::npos);
  EXPECT_NE(out.find("skew(14)@{[5,5] [6,6]}"), std::string::npos);
}

TEST(SemiNaiveTest, NaiveAndSemiNaiveAgree) {
  const char* text =
      "reach(X, Y) :- edge(X, Y) .\n"
      "reach(X, Z) :- reach(X, Y), edge(Y, Z) .\n"
      "open(A) :- deposit(A) .\n"
      "open(A) :- boxminus open(A), not close(A) .\n"
      "edge(a, b)@[0,10] . edge(b, c)@[2,8] . edge(c, a)@[4,6] .\n"
      "deposit(x)@1 . close(x)@9 .";
  EngineOptions seminaive = Window(0, 12);
  EngineOptions naive = Window(0, 12);
  naive.naive_evaluation = true;
  naive.enable_chain_acceleration = false;
  EXPECT_EQ(RunText(text, seminaive), RunText(text, naive));
}

TEST(SemiNaiveTest, AccelerationOnAndOffAgree) {
  const char* text =
      "open(A) :- deposit(A) .\n"
      "open(A) :- boxminus open(A), not close(A) .\n"
      "margin(A, M) :- deposit2(A, M) .\n"
      "margin(A, M) :- diamondminus margin(A, M), not change(A), open(A) .\n"
      "deposit(x)@1 . deposit2(x, 5.0)@1 . change(x)@4 . close(x)@7 .\n"
      "deposit(y)@2 . deposit2(y, 9.0)@2 . close(y)@11 .";
  EngineOptions on = Window(0, 12);
  EngineOptions off = Window(0, 12);
  off.enable_chain_acceleration = false;
  EngineStats stats_on;
  EngineStats stats_off;
  EXPECT_EQ(RunText(text, on, &stats_on), RunText(text, off, &stats_off));
  EXPECT_GT(stats_on.chain_extensions, 0u);
  EXPECT_EQ(stats_off.chain_extensions, 0u);
}

TEST(SemiNaiveTest, MaxIntervalsBudget) {
  auto unit = Parser::Parse(
      "open(A) :- deposit(A) .\n"
      "open(A) :- boxminus open(A) .\n"
      "deposit(x)@0 .");
  EngineOptions options = Window(0, 1'000'000);
  options.max_intervals = 1000;
  Database db = unit->database;
  Status status = Materialize(unit->program, &db, options);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(SemiNaiveTest, InvalidProgramsRejectedUpfront) {
  auto unsafe = Parser::Parse("p(X, Y) :- q(X) .\n q(a)@1 .");
  Database db1 = unsafe->database;
  EXPECT_EQ(Materialize(unsafe->program, &db1).code(),
            StatusCode::kUnsafeRule);

  auto unstrat = Parser::Parse(
      "p(X) :- b(X), not q(X) .\n"
      "q(X) :- b(X), not p(X) .\n b(a)@1 .");
  Database db2 = unstrat->database;
  EXPECT_EQ(Materialize(unstrat->program, &db2).code(),
            StatusCode::kNotStratifiable);

  auto bad_window = Parser::Parse("p(X) :- q(X) .\n q(a)@1 .");
  EngineOptions options = Window(10, 5);
  Database db3 = bad_window->database;
  EXPECT_EQ(Materialize(bad_window->program, &db3, options).code(),
            StatusCode::kInvalidArgument);
}

TEST(SemiNaiveTest, StatsPopulated) {
  EngineStats stats;
  RunText("q(X) :- p(X) .\n p(a)@[1,3] .", EngineOptions{}, &stats);
  EXPECT_GE(stats.num_strata, 1);
  EXPECT_GE(stats.rule_evaluations, 1u);
  EXPECT_EQ(stats.derived_intervals, 1u);
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_NE(stats.ToString().find("derived_intervals=1"), std::string::npos);
}

TEST(SemiNaiveTest, RuleCompileStatsAndOptOut) {
  if (std::getenv("DMTL_DISABLE_RULE_COMPILE") != nullptr) {
    GTEST_SKIP() << "rule compilation disabled by environment";
  }
  const char* text =
      "q(X) :- p(X) .\n"
      "q(X) :- boxminus[1,1] q(X), not s(X) .\n"
      "p(a)@1 . s(a)@6 .";
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(10);

  EngineStats compiled;
  std::string with_vm = RunText(text, options, &compiled);
  EXPECT_GE(compiled.compiled_rules, 2u);
  EXPECT_GE(compiled.vm_dispatches, 1u);
  EXPECT_GE(compiled.vm_recompiles, 1u);
  EXPECT_EQ(compiled.vm_fallbacks, 0u);
  EXPECT_NE(compiled.ToString().find("compiled_rules="), std::string::npos);

  EngineOptions off = options;
  off.enable_rule_compile = false;
  EngineStats interpreted;
  std::string without_vm = RunText(text, off, &interpreted);
  EXPECT_EQ(interpreted.compiled_rules, 0u);
  EXPECT_EQ(interpreted.vm_dispatches, 0u);
  EXPECT_EQ(with_vm, without_vm);
}

TEST(SemiNaiveTest, MonotoneInsertOnlySemantics) {
  // Re-running materialization on an already-materialized database is a
  // no-op (the chase is monotone and idempotent).
  auto unit = Parser::Parse(
      "q(X) :- p(X) .\n r(X) :- q(X), not s(X) .\n p(a)@[1,3] . s(a)@2 .");
  Database db = unit->database;
  ASSERT_TRUE(Materialize(unit->program, &db).ok());
  std::string first = db.ToString();
  ASSERT_TRUE(Materialize(unit->program, &db).ok());
  EXPECT_EQ(db.ToString(), first);
}

}  // namespace
}  // namespace dmtl
