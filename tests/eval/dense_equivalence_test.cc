// The memory-architecture features must be invisible in outputs: with
// enable_dense_timeline / enable_arena_alloc on versus off, the same
// program at the same thread count must produce byte-identical database
// text, Series() output, and full provenance (attribution included - the
// features never change the schedule). Covered over randomized synthetic
// programs, the shipped ETH-PERP contract, and directed cases proving the
// rational fallback: non-integral rule bounds or facts must select
// timeline=rational and still agree byte for byte.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/contracts/eth_perp_program.h"
#include "src/engine/reasoner.h"
#include "src/eval/seminaive.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

struct RunResult {
  std::string db_text;
  std::string series_text;
  std::string provenance_text;
  bool timeline_dense = false;
  size_t arena_allocs = 0;
};

RunResult RunOnce(const Program& program, const Database& input,
              EngineOptions options, int num_threads, bool dense, bool arena,
              std::string_view series_pred) {
  std::vector<DerivationRecord> provenance;
  options.num_threads = num_threads;
  options.provenance = &provenance;
  options.enable_dense_timeline = dense;
  options.enable_arena_alloc = arena;
  Database db = input;
  EngineStats stats;
  Status status = Materialize(program, &db, options, &stats);
  EXPECT_TRUE(status.ok()) << status << " (threads=" << num_threads
                           << " dense=" << dense << " arena=" << arena << ")";
  RunResult out;
  out.db_text = db.ToString();
  std::ostringstream series;
  for (const auto& [t, tuple] : Reasoner::Series(db, series_pred)) {
    series << t << " " << TupleToString(tuple) << "\n";
  }
  out.series_text = series.str();
  std::ostringstream prov;
  for (const DerivationRecord& record : provenance) {
    prov << record.ToString(program) << "\n";
  }
  out.provenance_text = prov.str();
  out.timeline_dense = stats.timeline_dense;
  out.arena_allocs = stats.arena_allocs;
  return out;
}

// On-vs-off at every thread width. `expect_dense` asserts which timeline
// the eligibility check must select when the option is on.
void ExpectFeaturesInvisible(const Program& program, const Database& input,
                             const EngineOptions& options,
                             std::string_view series_pred, bool expect_dense,
                             const std::string& label) {
  if (std::getenv("DMTL_DISABLE_DENSE_TIMELINE") != nullptr) {
    // The environment kill-switch outranks the option, so eligibility must
    // land on the generic timeline; the on/off equivalence checks still run.
    expect_dense = false;
  }
  for (int threads : {1, 2, 8}) {
    RunResult off = RunOnce(program, input, options, threads, /*dense=*/false,
                        /*arena=*/false, series_pred);
    EXPECT_FALSE(off.timeline_dense) << label;
    for (bool dense : {false, true}) {
      for (bool arena : {false, true}) {
        if (!dense && !arena) continue;
        RunResult on =
            RunOnce(program, input, options, threads, dense, arena, series_pred);
        std::string what = label + " (threads=" + std::to_string(threads) +
                           " dense=" + std::to_string(dense) +
                           " arena=" + std::to_string(arena) + ")";
        EXPECT_EQ(off.db_text, on.db_text) << what << ": database diverged";
        EXPECT_EQ(off.series_text, on.series_text)
            << what << ": Series() diverged";
        EXPECT_EQ(off.provenance_text, on.provenance_text)
            << what << ": provenance diverged";
        if (dense) {
          EXPECT_EQ(on.timeline_dense, expect_dense)
              << what << ": eligibility selected the wrong timeline";
        }
      }
    }
  }
}

// Same safe fragment the parallel and differential tests fuzz: stratified
// recursion through boxminus/diamondminus with negated guards, over
// integral facts and bounds.
class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    std::ostringstream out;
    int num_edb = 2 + Pick(2);
    int num_derived = 2 + Pick(3);
    for (int d = 0; d < num_derived; ++d) {
      out << "d" << d << "(X) :- " << LowerAtom(d, num_edb) << Guard(num_edb)
          << " .\n";
      int step = 1 + Pick(2);
      const char* op = Pick(2) == 0 ? "boxminus" : "diamondminus";
      out << "d" << d << "(X) :- " << op << "[" << step << "," << step
          << "] d" << d << "(X), not p0(X) .\n";
      if (Pick(2) == 0) {
        out << "d" << d << "(X) :- diamondminus[0," << (1 + Pick(3)) << "] "
            << LowerAtom(d, num_edb) << " .\n";
      }
    }
    for (int p = 0; p < num_edb; ++p) {
      int facts = 1 + Pick(4);
      for (int f = 0; f < facts; ++f) {
        int lo = Pick(12);
        int hi = lo + Pick(4);
        out << "p" << p << "(c" << Pick(3) << ")@[" << lo << "," << hi
            << "] .\n";
      }
    }
    return out.str();
  }

 private:
  int Pick(int n) { return static_cast<int>(rng_() % n); }

  std::string LowerAtom(int d, int num_edb) {
    if (d > 0 && Pick(2) == 0) {
      return "d" + std::to_string(Pick(d)) + "(X)";
    }
    return "p" + std::to_string(Pick(num_edb)) + "(X)";
  }

  std::string Guard(int num_edb) {
    switch (Pick(3)) {
      case 0:
        return "";
      case 1:
        return ", not p" + std::to_string(Pick(num_edb)) + "(X)";
      default:
        return ", diamondminus[0,2] p" + std::to_string(Pick(num_edb)) +
               "(X)";
    }
  }

  std::mt19937_64 rng_;
};

class DenseFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DenseFuzzTest, FeaturesAreInvisible) {
  ProgramFuzzer fuzzer(GetParam());
  std::string text = fuzzer.Generate();
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\nprogram:\n" << text;
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(40);
  ExpectFeaturesInvisible(unit->program, unit->database, options, "d0",
                          /*expect_dense=*/true, "fuzz program:\n" + text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(DenseEquivalenceTest, ShippedContractProgram) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  auto db = Parser::ParseDatabase(
      "start()@0 . skew(1000.0)@0 . frs(0.0)@0 .\n"
      "price(3000.0)@[0, 12] .\n"
      "tranM(acc, 1000.0)@1 .\n"
      "modPos(acc, 0.5)@3 .\n"
      "tranM(acc, 250.0)@5 .\n"
      "closePos(acc)@9 .\n"
      "withdraw(acc)@11 .\n");
  ASSERT_TRUE(db.ok()) << db.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(12);
  ExpectFeaturesInvisible(*program, *db, options, "margin",
                          /*expect_dense=*/true, "eth_perp contract");
}

TEST(DenseEquivalenceTest, RationalRuleBoundFallsBack) {
  auto unit = Parser::Parse(
      "q(X) :- diamondminus[0,3/2] p(X) .\n"
      "r(X) :- boxminus[1,1] q(X), not p(X) .\n"
      "p(a)@[0,4] .\n"
      "p(b)@[2,6] .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(10);
  ExpectFeaturesInvisible(unit->program, unit->database, options, "q",
                          /*expect_dense=*/false, "rational rule bound");
}

TEST(DenseEquivalenceTest, RationalFactEndpointFallsBack) {
  auto unit = Parser::Parse(
      "q(X) :- diamondminus[1,2] p(X) .\n"
      "p(a)@[0,7/2] .\n"
      "p(b)@[2,6] .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(10);
  ExpectFeaturesInvisible(unit->program, unit->database, options, "q",
                          /*expect_dense=*/false, "rational fact endpoint");
}

TEST(DenseEquivalenceTest, RationalHorizonFallsBack) {
  auto unit = Parser::Parse(
      "q(X) :- diamondminus[1,2] p(X) .\n"
      "p(a)@[0,4] .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(19, 2);
  ExpectFeaturesInvisible(unit->program, unit->database, options, "q",
                          /*expect_dense=*/false, "rational horizon");
}

TEST(DenseEquivalenceTest, ArenaStatsAreReportedWhenArmed) {
  if (std::getenv("DMTL_DISABLE_ARENA_ALLOC") != nullptr) {
    GTEST_SKIP() << "arena allocation disabled by environment";
  }
  ProgramFuzzer fuzzer(3);
  auto unit = Parser::Parse(fuzzer.Generate());
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(40);
  RunResult on = RunOnce(unit->program, unit->database, options, 1,
                     /*dense=*/true, /*arena=*/true, "d0");
  RunResult off = RunOnce(unit->program, unit->database, options, 1,
                      /*dense=*/true, /*arena=*/false, "d0");
  EXPECT_EQ(off.arena_allocs, 0u);
  // The fuzz programs derive enough transient sets to spill at least once.
  EXPECT_GT(on.arena_allocs, 0u);
}

}  // namespace
}  // namespace dmtl
