#include "src/eval/aggregate_eval.h"

#include <gtest/gtest.h>

#include "src/parser/parser.h"

namespace dmtl {
namespace {

std::string Derive(const char* rule_text, const char* facts_text) {
  auto rule = Parser::ParseRule(rule_text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  auto db = Parser::ParseDatabase(facts_text);
  EXPECT_TRUE(db.ok()) << db.status();
  auto eval = AggregateEvaluator::Create(*rule);
  EXPECT_TRUE(eval.ok()) << eval.status();
  Database derived;
  Status status = eval->Evaluate(
      *db, [&](const Tuple& tuple, const IntervalSet& extent) -> Status {
        derived.InsertSet(rule->head.predicate, tuple, extent);
        return Status::Ok();
      });
  EXPECT_TRUE(status.ok()) << status;
  return derived.ToString();
}

TEST(AggregateEvalTest, SumGroupsByTimePoint) {
  // Two accounts act at t=5, one at t=9.
  EXPECT_EQ(Derive("event(msum(S)) :- contrib(A, S) .",
                   "contrib(a, 2.0)@5 . contrib(b, 3.0)@5 . "
                   "contrib(a, -1.0)@9 ."),
            "event(-1)@{[9,9]}\nevent(5)@{[5,5]}\n");
}

TEST(AggregateEvalTest, IntSumStaysInt) {
  EXPECT_EQ(Derive("total(msum(S)) :- c(A, S) .", "c(a, 2)@1 . c(b, 3)@1 ."),
            "total(5)@{[1,1]}\n");
}

TEST(AggregateEvalTest, WitnessesAreDistinctBindings) {
  // Same size from two different accounts: both count.
  EXPECT_EQ(Derive("event(msum(S)) :- c(A, S) .",
                   "c(a, 2.0)@1 . c(b, 2.0)@1 ."),
            "event(4)@{[1,1]}\n");
}

TEST(AggregateEvalTest, GroupByNonAggregatedArgs) {
  EXPECT_EQ(Derive("perAcc(A, msum(S)) :- c(A, S) .",
                   "c(a, 2.0)@1 . c(a, 3.0)@1 . c(b, 5.0)@1 ."),
            "perAcc(a, 5)@{[1,1]}\nperAcc(b, 5)@{[1,1]}\n");
}

TEST(AggregateEvalTest, IntervalContributionsSegmentTimeline) {
  // One contribution on [0,10], another on [4,6]: the sum steps 1,2,1.
  EXPECT_EQ(Derive("load(msum(S)) :- c(A, S) .",
                   "c(a, 1)@[0,10] . c(b, 1)@[4,6] ."),
            "load(1)@{[0,4) (6,10]}\nload(2)@{[4,6]}\n");
}

TEST(AggregateEvalTest, CountMinMaxAvg) {
  const char* facts = "c(a, 2.0)@1 . c(b, 8.0)@1 . c(d, 5.0)@1 .";
  EXPECT_EQ(Derive("n(mcount(S)) :- c(A, S) .", facts), "n(3)@{[1,1]}\n");
  EXPECT_EQ(Derive("lo(mmin(S)) :- c(A, S) .", facts), "lo(2)@{[1,1]}\n");
  EXPECT_EQ(Derive("hi(mmax(S)) :- c(A, S) .", facts), "hi(8)@{[1,1]}\n");
  EXPECT_EQ(Derive("mid(mavg(S)) :- c(A, S) .", facts), "mid(5)@{[1,1]}\n");
}

TEST(AggregateEvalTest, BodyJoinsAndBuiltinsApplyBeforeAggregation) {
  EXPECT_EQ(Derive("event(msum(S)) :- c(A, S0), ok(A), S = S0 * 2.0 .",
                   "c(a, 2.0)@1 . c(b, 3.0)@1 . ok(a)@[0,5] ."),
            "event(4)@{[1,1]}\n");
}

TEST(AggregateEvalTest, NoContributionsNoFacts) {
  EXPECT_EQ(Derive("event(msum(S)) :- c(A, S) .", "other(a, 1.0)@1 ."), "");
}

TEST(AggregateEvalTest, RejectsNonAggregateRule) {
  auto rule = Parser::ParseRule("p(X) :- q(X) .");
  EXPECT_FALSE(AggregateEvaluator::Create(*rule).ok());
}

TEST(AggregateEvalTest, OpenIntervalEdgesSegmentExactly) {
  EXPECT_EQ(Derive("load(msum(S)) :- c(A, S) .",
                   "c(a, 1)@[0,5) . c(b, 1)@[5,9] ."),
            "load(1)@{[0,9]}\n");
}

}  // namespace
}  // namespace dmtl
