#include "src/eval/chain_accel.h"

#include <gtest/gtest.h>

#include "src/analysis/stratifier.h"
#include "src/eval/seminaive.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

std::optional<ChainAccelerator::ChainInfo> DetectIn(const char* text,
                                                    size_t rule_index) {
  auto program = Parser::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  auto strat = Stratify(*program);
  EXPECT_TRUE(strat.ok()) << strat.status();
  return ChainAccelerator::Detect(program->rules()[rule_index],
                                  strat->predicate_stratum);
}

TEST(ChainAccelTest, DetectsPaperChainShapes) {
  // Rule 2: isOpen persistence.
  auto r2 = DetectIn(
      "isOpen(A) :- tranM(A, M) .\n"
      "isOpen(A) :- boxminus isOpen(A), not withdraw(A) .\n",
      1);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->step, Rational(1));
  EXPECT_EQ(r2->negated_guards.size(), 1u);
  EXPECT_TRUE(r2->positive_guards.empty());

  // Rule 13 shape: positive lower-stratum guard plus existential negation.
  auto r13 = DetectIn(
      "isOpen(A) :- tranM(A, M) .\n"
      "order(A, S) :- modPos(A, S) .\n"
      "position(A, S, N) :- init(A, S, N) .\n"
      "position(A, S, N) :- diamondminus position(A, S, N), "
      "not order(A, _), isOpen(A) .\n",
      3);
  ASSERT_TRUE(r13.has_value());
  EXPECT_EQ(r13->positive_guards.size(), 1u);
  EXPECT_EQ(r13->negated_guards.size(), 1u);
}

TEST(ChainAccelTest, DetectsFutureChains) {
  auto info = DetectIn(
      "p(A) :- seed(A) .\n"
      "p(A) :- boxplus[2,2] p(A), not stop(A) .\n",
      1);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->step, Rational(-2));
}

TEST(ChainAccelTest, RejectsNonChainShapes) {
  // Head/body argument mismatch.
  EXPECT_FALSE(DetectIn(
                   "p(A, B) :- seed(A, B) .\n"
                   "p(B, A) :- boxminus p(A, B) .\n",
                   1)
                   .has_value());
  // Non-punctual window.
  EXPECT_FALSE(DetectIn(
                   "p(A) :- seed(A) .\n"
                   "p(A) :- boxminus[0,2] p(A) .\n",
                   1)
                   .has_value());
  // Zero shift would not advance.
  EXPECT_FALSE(DetectIn(
                   "p(A) :- seed(A) .\n"
                   "p(A) :- boxminus[0,0] p(A) .\n",
                   1)
                   .has_value());
  // Builtins in the body.
  EXPECT_FALSE(DetectIn(
                   "p(A) :- seed(A) .\n"
                   "p(A) :- boxminus p(A), A > 0 .\n",
                   1)
                   .has_value());
  // Guard in the same stratum (mutual recursion).
  EXPECT_FALSE(DetectIn(
                   "p(A) :- seed(A) .\n"
                   "p(A) :- boxminus p(A), q(A) .\n"
                   "q(A) :- boxminus p(A) .\n",
                   1)
                   .has_value());
  // A positive guard with a free variable multiplies bindings.
  EXPECT_FALSE(DetectIn(
                   "p(A) :- seed(A) .\n"
                   "p(A) :- boxminus p(A), g(A, X) .\n",
                   1)
                   .has_value());
}

// Differential property: for a family of generated chain programs, the
// accelerated materialization equals the tick-by-tick one.
class ChainAccelDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainAccelDifferentialTest, AcceleratedEqualsNaiveChain) {
  int seed_time = GetParam();
  std::string text =
      "open(A) :- deposit(A) .\n"
      "open(A) :- boxminus open(A), not close(A) .\n"
      "deposit(x)@" + std::to_string(seed_time) + " .\n" +
      "deposit(x)@" + std::to_string(seed_time + 7) + " .\n" +
      "close(x)@" + std::to_string(seed_time + 4) + " .\n" +
      "close(x)@" + std::to_string(seed_time + 11) + " .";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions on;
  on.min_time = Rational(0);
  on.max_time = Rational(seed_time + 20);
  EngineOptions off = on;
  off.enable_chain_acceleration = false;
  Database db_on = unit->database;
  Database db_off = unit->database;
  ASSERT_TRUE(Materialize(unit->program, &db_on, on).ok());
  ASSERT_TRUE(Materialize(unit->program, &db_off, off).ok());
  EXPECT_EQ(db_on.ToString(), db_off.ToString());
  // The chain restarts after the second deposit and stops at each close.
  EXPECT_TRUE(db_on.Holds("open", {Value::Symbol("x")},
                          Rational(seed_time + 3)));
  EXPECT_FALSE(db_on.Holds("open", {Value::Symbol("x")},
                           Rational(seed_time + 4)));
  EXPECT_TRUE(db_on.Holds("open", {Value::Symbol("x")},
                          Rational(seed_time + 10)));
  EXPECT_FALSE(db_on.Holds("open", {Value::Symbol("x")},
                           Rational(seed_time + 12)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainAccelDifferentialTest,
                         ::testing::Values(1, 2, 5, 13));

TEST(ChainAccelTest, IntervalSeedsWalkByShifting) {
  // A seed holding over an interval propagates as a widening band.
  auto unit = Parser::Parse(
      "p(A) :- seed(A) .\n"
      "p(A) :- boxminus p(A), not stop(A) .\n"
      "seed(x)@[0,3] . stop(x)@[6,100] .");
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(20);
  Database db = unit->database;
  ASSERT_TRUE(Materialize(unit->program, &db, options).ok());
  // p holds on [0,3], then shifted copies merge: [0,4], [0,5]; blocked at 6.
  EXPECT_TRUE(db.Holds("p", {Value::Symbol("x")}, Rational(5)));
  EXPECT_FALSE(db.Holds("p", {Value::Symbol("x")}, Rational(6)));
}

}  // namespace
}  // namespace dmtl
