// Semantics of the binary MTL operators on interval sets, validated against
// a brute-force oracle over a fine rational grid:
//   M1 Since_rho M2 at t  iff  exists s with t-s in rho, M2 at s,
//                              and M1 throughout the open gap (s, t);
//   M1 Until_rho M2 mirrors into the future.

#include <gtest/gtest.h>

#include "src/temporal/interval_set.h"

namespace dmtl {
namespace {

Interval C(int lo, int hi) {
  return Interval::Closed(Rational(lo), Rational(hi));
}
Interval P(int t) { return Interval::Point(Rational(t)); }

// Oracle with s quantified over the 1/8 grid and the continuity check over
// a strictly finer 1/16 grid inside (s, t): all interval endpoints in the
// cases below live on the 1/4 grid, so any violation region inside a gap of
// width >= 1/8 contains a 1/16 grid point.
bool OracleSince(const IntervalSet& m1, const IntervalSet& m2,
                 const Interval& rho, const Rational& t, bool until) {
  const Rational step(1, 8);
  const Rational fine(1, 16);
  const Rational span(16);
  for (Rational s = t - span; s <= t + span; s += step) {
    Rational d = until ? s - t : t - s;
    if (!rho.Contains(d)) continue;
    if (!m2.Contains(s)) continue;
    Rational lo = until ? t : s;
    Rational hi = until ? s : t;
    bool gap_ok = true;
    for (Rational r = lo + fine; r < hi; r += fine) {
      if (!m1.Contains(r)) {
        gap_ok = false;
        break;
      }
    }
    if (gap_ok) return true;
  }
  return false;
}

struct BinaryCase {
  IntervalSet m1;
  IntervalSet m2;
  Interval rho;
};

class SinceUntilPropertyTest : public ::testing::TestWithParam<BinaryCase> {};

TEST_P(SinceUntilPropertyTest, SinceMatchesOracle) {
  const BinaryCase& c = GetParam();
  IntervalSet since = c.m1.Since(c.m2, c.rho);
  for (Rational t(-2); t <= Rational(16); t += Rational(1, 4)) {
    EXPECT_EQ(since.Contains(t),
              OracleSince(c.m1, c.m2, c.rho, t, /*until=*/false))
        << "since t=" << t.ToString() << " m1=" << c.m1.ToString()
        << " m2=" << c.m2.ToString() << " rho=" << c.rho.ToString();
  }
}

TEST_P(SinceUntilPropertyTest, UntilMatchesOracle) {
  const BinaryCase& c = GetParam();
  IntervalSet until = c.m1.Until(c.m2, c.rho);
  for (Rational t(-2); t <= Rational(16); t += Rational(1, 4)) {
    EXPECT_EQ(until.Contains(t),
              OracleSince(c.m1, c.m2, c.rho, t, /*until=*/true))
        << "until t=" << t.ToString() << " m1=" << c.m1.ToString()
        << " m2=" << c.m2.ToString() << " rho=" << c.rho.ToString();
  }
}

std::vector<BinaryCase> Cases() {
  std::vector<BinaryCase> cases;
  std::vector<IntervalSet> m1s = {
      IntervalSet(C(0, 10)),
      IntervalSet::FromIntervals({C(0, 4), C(6, 12)}),
      IntervalSet(Interval::Open(Rational(2), Rational(9))),
      IntervalSet::FromIntervals({P(3), P(4), P(5)}),
      IntervalSet(),
  };
  std::vector<IntervalSet> m2s = {
      IntervalSet(P(2)),
      IntervalSet::FromIntervals({P(1), P(7)}),
      IntervalSet(C(3, 5)),
      IntervalSet(Interval::ClosedOpen(Rational(0), Rational(1))),
  };
  std::vector<Interval> rhos = {
      Interval::Closed(Rational(0), Rational(3)),
      Interval::Closed(Rational(1), Rational(2)),
      Interval::Point(Rational(0)),
      Interval::Point(Rational(2)),
      Interval::OpenClosed(Rational(0), Rational(4)),
  };
  for (const auto& m1 : m1s) {
    for (const auto& m2 : m2s) {
      for (const auto& rho : rhos) {
        cases.push_back({m1, m2, rho});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SinceUntilPropertyTest,
                         ::testing::ValuesIn(Cases()));

TEST(SinceUntilTest, SinceBasicShape) {
  // M2 at 2, M1 on [2,10], rho [0,5]: Since holds on [2,7].
  IntervalSet m1(C(2, 10));
  IntervalSet m2(P(2));
  IntervalSet since = m1.Since(m2, C(0, 5));
  EXPECT_EQ(since, IntervalSet(C(2, 7)));
}

TEST(SinceUntilTest, SinceBlockedByGapInM1) {
  // M1 has a hole at 5: Since cannot reach past it.
  IntervalSet m1 = IntervalSet::FromIntervals({C(2, 4), C(6, 10)});
  IntervalSet m2(P(2));
  IntervalSet since = m1.Since(m2, C(0, 8));
  // Points t <= 4 are fine; anything past the hole would need M1 across it.
  EXPECT_TRUE(since.Contains(Rational(4)));
  EXPECT_FALSE(since.Contains(Rational(9, 2)));  // (2,4.5) spans the hole
  EXPECT_FALSE(since.Contains(Rational(6)));
}

TEST(SinceUntilTest, UntilBasicShape) {
  // M2 at 8, M1 on [0,8], rho [1,3]: Until holds on [5,7].
  IntervalSet m1(C(0, 8));
  IntervalSet m2(P(8));
  IntervalSet until = m1.Until(m2, C(1, 3));
  EXPECT_EQ(until, IntervalSet(C(5, 7)));
}

}  // namespace
}  // namespace dmtl
