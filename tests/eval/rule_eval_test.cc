#include "src/eval/rule_eval.h"

#include <gtest/gtest.h>

#include "src/parser/parser.h"

namespace dmtl {
namespace {

// Evaluates one rule fully against a fact database given as text and
// returns the derived facts as a rendered database.
std::string Derive(const char* rule_text, const char* facts_text) {
  auto rule = Parser::ParseRule(rule_text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  auto db = Parser::ParseDatabase(facts_text);
  EXPECT_TRUE(db.ok()) << db.status();
  auto eval = RuleEvaluator::Create(*rule);
  EXPECT_TRUE(eval.ok()) << eval.status();
  Database derived;
  Status status = eval->Evaluate(
      *db, nullptr, -1,
      [&](const Tuple& tuple, const IntervalSet& extent) -> Status {
        derived.InsertSet(rule->head.predicate, tuple, extent);
        return Status::Ok();
      });
  EXPECT_TRUE(status.ok()) << status;
  return derived.ToString();
}

TEST(RuleEvalTest, SimpleProjection) {
  EXPECT_EQ(Derive("isOpen(A) :- tranM(A, M) .",
                   "tranM(acc, 20.0)@5 . tranM(bob, 7.0)@[2,4] ."),
            "isOpen(acc)@{[5,5]}\nisOpen(bob)@{[2,4]}\n");
}

TEST(RuleEvalTest, JoinIntersectsExtents) {
  EXPECT_EQ(Derive("both(A) :- p(A), q(A) .",
                   "p(x)@[0,10] . q(x)@[5,20] . p(y)@[0,3] . q(y)@[7,9] ."),
            "both(x)@{[5,10]}\n");
}

TEST(RuleEvalTest, ConstantsInBodyFilter) {
  EXPECT_EQ(Derive("hit(A) :- p(A, 3) .", "p(x, 3)@1 . p(y, 4)@1 ."),
            "hit(x)@{[1,1]}\n");
}

TEST(RuleEvalTest, RepeatedVariableUnifies) {
  EXPECT_EQ(Derive("same(A) :- p(A, A) .", "p(x, x)@1 . p(x, y)@1 ."),
            "same(x)@{[1,1]}\n");
}

TEST(RuleEvalTest, MetricOperatorInBody) {
  EXPECT_EQ(Derive("q(A) :- boxminus[1,1] p(A) .", "p(x)@[3,5] ."),
            "q(x)@{[4,6]}\n");
  EXPECT_EQ(Derive("q(A) :- diamondminus[0,2] p(A) .", "p(x)@4 ."),
            "q(x)@{[4,6]}\n");
}

TEST(RuleEvalTest, NegationSubtracts) {
  EXPECT_EQ(Derive("calm(A) :- p(A), not alarm(A) .",
                   "p(x)@[0,10] . alarm(x)@[3,4] ."),
            "calm(x)@{[0,3) (4,10]}\n");
}

TEST(RuleEvalTest, ExistentialNegation) {
  // not order(A, _): any order by A blocks, regardless of size.
  EXPECT_EQ(Derive("idle(A) :- p(A), not order(A, _) .",
                   "p(x)@[0,6] . order(x, 1.0)@2 . order(x, -2.0)@5 ."),
            "idle(x)@{[0,2) (2,5) (5,6]}\n");
}

TEST(RuleEvalTest, NegationUnderOperator) {
  // not boxminus[1,1] isOpen(A): blocked where isOpen held one tick ago.
  EXPECT_EQ(Derive("fresh(A) :- tranM(A, M), not boxminus[1,1] isOpen(A) .",
                   "tranM(x, 5.0)@3 . tranM(x, 5.0)@7 . isOpen(x)@[3,8] ."),
            "fresh(x)@{[3,3]}\n");
}

TEST(RuleEvalTest, BuiltinsComputeAndFilter) {
  EXPECT_EQ(Derive("sum(A, M) :- p(A, X), q(A, Y), M = X + Y, M > 5.0 .",
                   "p(x, 4.0)@1 . q(x, 3.0)@1 . p(y, 1.0)@1 . q(y, 1.0)@1 ."),
            "sum(x, 7)@{[1,1]}\n");
}

TEST(RuleEvalTest, TimestampSplitsPunctualExtents) {
  EXPECT_EQ(Derive("at(A, T) :- p(A), timestamp(T) .", "p(x)@3 . p(x)@7 ."),
            "at(x, 3)@{[3,3]}\nat(x, 7)@{[7,7]}\n");
}

TEST(RuleEvalTest, TimestampOnIntervalExtentFails) {
  auto rule = Parser::ParseRule("at(A, T) :- p(A), timestamp(T) .");
  auto db = Parser::ParseDatabase("p(x)@[1,5] .");
  auto eval = RuleEvaluator::Create(*rule);
  Status status = eval->Evaluate(
      *db, nullptr, -1,
      [](const Tuple&, const IntervalSet&) { return Status::Ok(); });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kEvalError);
}

TEST(RuleEvalTest, LateBuiltinsAfterTimestamp) {
  EXPECT_EQ(Derive("delta(D) :- p(T0), timestamp(T), D = T - T0 .",
                   "p(10)@13 ."),
            "delta(3)@{[13,13]}\n");
}

TEST(RuleEvalTest, HeadBoxMinusDilatesIntoPast) {
  // If boxminus[0,2] p must hold throughout the derived extent, p itself
  // holds over the past-dilation.
  EXPECT_EQ(Derive("boxminus[0,2] p(A) :- q(A) .", "q(x)@5 ."),
            "p(x)@{[3,5]}\n");
  EXPECT_EQ(Derive("boxplus[1,2] p(A) :- q(A) .", "q(x)@5 ."),
            "p(x)@{[6,7]}\n");
}

TEST(RuleEvalTest, SinceInRuleBody) {
  EXPECT_EQ(Derive("a(X) :- (ok(X) since[0,3] reset(X)) .",
                   "ok(x)@[2,10] . reset(x)@2 ."),
            "a(x)@{[2,5]}\n");
}

TEST(RuleEvalTest, TruthAndFalsity) {
  EXPECT_EQ(Derive("always(A) :- p(A), top .", "p(x)@[1,2] ."),
            "always(x)@{[1,2]}\n");
  EXPECT_EQ(Derive("never(A) :- p(A), bottom .", "p(x)@[1,2] ."), "");
}

TEST(RuleEvalTest, DeltaRestrictionLimitsDerivations) {
  auto rule = Parser::ParseRule("q(A) :- p(A) .");
  auto db = Parser::ParseDatabase("p(x)@[0,10] . p(y)@[0,10] .");
  Database delta;
  delta.Insert("p", {Value::Symbol("x")},
               Interval::Closed(Rational(8), Rational(10)));
  auto eval = RuleEvaluator::Create(*rule);
  Database derived;
  Status status = eval->Evaluate(
      *db, &delta, 0,
      [&](const Tuple& tuple, const IntervalSet& extent) -> Status {
        derived.InsertSet(rule->head.predicate, tuple, extent);
        return Status::Ok();
      });
  ASSERT_TRUE(status.ok()) << status;
  // Only the delta portion of x is rederived.
  EXPECT_EQ(derived.ToString(), "q(x)@{[8,10]}\n");
}

TEST(RuleEvalTest, ZeroArityAtoms) {
  EXPECT_EQ(Derive("open() :- start() .", "start()@0 ."), "open()@{[0,0]}\n");
}

}  // namespace
}  // namespace dmtl
