#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "src/eval/seminaive.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

// A divergent program: without a horizon, `open` propagates forward
// forever (the paper's "market never closes" case). Every guard and budget
// test drives this so trips are guaranteed to have something to interrupt.
constexpr char kDivergent[] =
    "open(A) :- deposit(A) .\n"
    "open(A) :- boxminus open(A) .\n"
    "deposit(x)@2 .\n";

Parser::ParsedUnit ParseDivergent() {
  auto unit = Parser::Parse(kDivergent);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return *unit;
}

// Options used by the round-barrier consistency tests: chain acceleration
// off so the divergent rule advances one fixpoint round at a time, and the
// small-delta heuristic off so multi-thread configurations actually
// exercise the pool + barrier-merge path every round.
EngineOptions SteppedOptions(int threads) {
  EngineOptions options;
  options.num_threads = threads;
  options.enable_chain_acceleration = false;
  options.parallel_min_round_intervals = 0;
  return options;
}

// Re-runs the same configuration capped at the completed rounds of a
// tripped run and asserts the tripped database matches that barrier state
// exactly - the round-barrier consistency guarantee.
void ExpectAtRoundBarrier(const EngineOptions& tripped_options,
                          const EngineStats& tripped_stats,
                          const Database& tripped_db) {
  Parser::ParsedUnit unit = ParseDivergent();
  if (tripped_stats.stopped_round == 0) {
    // Tripped during the stratum's initial full round: nothing of this
    // stratum may have survived.
    EXPECT_EQ(tripped_db.ToString(), unit.database.ToString());
    return;
  }
  EngineOptions reference = tripped_options;
  reference.deadline.reset();
  reference.cancel_token = nullptr;
  reference.max_intervals = EngineOptions().max_intervals;
  reference.max_rounds = tripped_stats.stopped_round - 1;
  Database ref_db = unit.database;
  EngineStats ref_stats;
  Status ref_status = Materialize(unit.program, &ref_db, reference,
                                  &ref_stats);
  // The reference run trips on its round cap - with the database sitting at
  // exactly the same barrier.
  ASSERT_EQ(ref_status.code(), StatusCode::kResourceExhausted);
  ASSERT_EQ(ref_stats.stop_reason, StopReason::kMaxRounds);
  ASSERT_EQ(ref_stats.stopped_round, tripped_stats.stopped_round);
  EXPECT_EQ(tripped_db.ToString(), ref_db.ToString());
}

TEST(GuardTest, DeadlineTripsOnDivergentProgram) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Parser::ParsedUnit unit = ParseDivergent();
    Database db = unit.database;
    EngineOptions options;
    options.num_threads = threads;
    options.deadline = std::chrono::milliseconds(50);
    EngineStats stats;
    Status status = Materialize(unit.program, &db, options, &stats);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(stats.stop_reason, StopReason::kDeadline);
    EXPECT_GE(stats.stopped_stratum, 0);
    EXPECT_GT(stats.guard_checks, 0u);
    EXPECT_GT(stats.wall_seconds, 0.0);
    EXPECT_EQ(stats.intervals_at_stop, db.NumIntervals());
    EXPECT_NE(stats.StopDiagnostics().find("stop_reason=deadline"),
              std::string::npos);
  }
}

TEST(GuardTest, DeadlineLeavesDatabaseAtRoundBarrier) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Parser::ParsedUnit unit = ParseDivergent();
    Database db = unit.database;
    EngineOptions options = SteppedOptions(threads);
    options.deadline = std::chrono::milliseconds(50);
    EngineStats stats;
    Status status = Materialize(unit.program, &db, options, &stats);
    ASSERT_EQ(status.code(), StatusCode::kDeadlineExceeded);
    ExpectAtRoundBarrier(options, stats, db);
  }
}

TEST(GuardTest, CancellationFromAnotherThread) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Parser::ParsedUnit unit = ParseDivergent();
    Database db = unit.database;
    EngineOptions options;
    options.num_threads = threads;
    options.cancel_token = std::make_shared<CancellationToken>();
    std::thread canceller([token = options.cancel_token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      token->Cancel();
    });
    EngineStats stats;
    Status status = Materialize(unit.program, &db, options, &stats);
    canceller.join();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
    EXPECT_EQ(stats.stop_reason, StopReason::kCancelled);
    EXPECT_EQ(stats.intervals_at_stop, db.NumIntervals());
  }
}

TEST(GuardTest, PreCancelledRunLeavesDatabaseUntouched) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Parser::ParsedUnit unit = ParseDivergent();
    Database db = unit.database;
    std::string before = db.ToString();
    EngineOptions options;
    options.num_threads = threads;
    options.cancel_token = std::make_shared<CancellationToken>();
    options.cancel_token->Cancel();
    EngineStats stats;
    Status status = Materialize(unit.program, &db, options, &stats);
    ASSERT_EQ(status.code(), StatusCode::kCancelled);
    EXPECT_EQ(stats.stopped_round, 0u);
    EXPECT_EQ(db.ToString(), before);
  }
}

TEST(GuardTest, MaxRoundsTripThenHorizonRerunCompletes) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Parser::ParsedUnit unit = ParseDivergent();
    Database db = unit.database;
    EngineOptions options = SteppedOptions(threads);
    options.max_rounds = 5;
    EngineStats stats;
    Status status = Materialize(unit.program, &db, options, &stats);
    ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(stats.stop_reason, StopReason::kMaxRounds);
    // The cap refuses round max_rounds + 1, so the database holds rounds
    // [0, max_rounds].
    EXPECT_EQ(stats.stopped_round, options.max_rounds + 1);
    EXPECT_NE(stats.StopDiagnostics().find("stop_reason=max_rounds"),
              std::string::npos);

    // A follow-up run with a horizon completes from the partial database
    // and lands on the same result as a clean horizon run.
    EngineOptions horizon = SteppedOptions(threads);
    horizon.min_time = Rational(0);
    horizon.max_time = Rational(10);
    Status rerun = Materialize(unit.program, &db, horizon);
    ASSERT_TRUE(rerun.ok()) << rerun;

    Database fresh = ParseDivergent().database;
    ASSERT_TRUE(Materialize(unit.program, &fresh, horizon).ok());
    EXPECT_EQ(db.ToString(), fresh.ToString());
  }
}

TEST(GuardTest, MaxIntervalsTripIsRoundBarrierConsistent) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Parser::ParsedUnit unit = ParseDivergent();
    Database db = unit.database;
    EngineOptions options = SteppedOptions(threads);
    options.max_intervals = db.NumIntervals() + 3;
    EngineStats stats;
    Status status = Materialize(unit.program, &db, options, &stats);
    ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(stats.stop_reason, StopReason::kMaxIntervals);
    EXPECT_EQ(stats.intervals_at_stop, db.NumIntervals());
    // Partial work of the tripped round - including any half-merged
    // parallel sink buffers - must have been rolled back.
    ExpectAtRoundBarrier(options, stats, db);
  }
}

}  // namespace
}  // namespace dmtl
