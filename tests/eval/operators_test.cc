// Window-restricted metric-atom evaluation: EvalMetricExtent(atom, window)
// must equal the unrestricted evaluation intersected with the window - the
// optimization that keeps rule evaluation proportional to the row extent
// must never change results.

#include "src/eval/operators.h"

#include <gtest/gtest.h>

#include "src/parser/parser.h"

namespace dmtl {
namespace {

Database TestFacts() {
  auto db = Parser::ParseDatabase(
      "p(a)@[0,3] . p(a)@[6,9] . p(a)@20 .\n"
      "q(a)@[2,7] . q(a)@[15,25] .\n"
      "r(a, 1.0)@4 . r(a, 2.0)@8 . r(b, 3.0)@4 .\n");
  EXPECT_TRUE(db.ok()) << db.status();
  return *db;
}

// Builds a metric atom from rule text (the body's single literal).
MetricAtom AtomOf(const std::string& body) {
  auto rule = Parser::ParseRule("h(A) :- " + body + " .");
  EXPECT_TRUE(rule.ok()) << rule.status();
  return rule->body[0].metric;
}

class WindowRestrictionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WindowRestrictionTest, RestrictedEqualsUnrestrictedOnWindow) {
  Database db = TestFacts();
  MetricAtom atom = AtomOf(GetParam());
  Bindings binding(2);
  binding.Set(0, Value::Symbol("a"));  // A

  ExtentSource source;
  source.full = &db;
  IntervalSet everywhere =
      EvalMetricExtent(atom, binding, source, IntervalSet(Interval::All()));

  std::vector<Interval> windows = {
      Interval::Point(Rational(5)),
      Interval::Closed(Rational(0), Rational(10)),
      Interval::Open(Rational(3), Rational(8)),
      Interval::Closed(Rational(18), Rational(30)),
      Interval::AtMost(Rational(7)),
      Interval::AtLeast(Rational(12)),
  };
  for (const Interval& window : windows) {
    IntervalSet restricted =
        EvalMetricExtent(atom, binding, source, IntervalSet(window));
    IntervalSet expected = everywhere.Intersect(IntervalSet(window));
    EXPECT_EQ(restricted.Intersect(IntervalSet(window)), expected)
        << "atom: " << GetParam() << " window: " << window.ToString()
        << " restricted: " << restricted.ToString()
        << " expected: " << expected.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Atoms, WindowRestrictionTest,
    ::testing::Values(
        "p(A)",
        "boxminus[1,1] p(A)",
        "boxminus[0,2] p(A)",
        "diamondminus[0,3] p(A)",
        "diamondminus[2,5] q(A)",
        "boxplus[0,2] p(A)",
        "diamondplus[1,4] q(A)",
        "diamondminus[0,2] boxminus[0,1] p(A)",
        "boxminus[1,1] diamondplus[0,2] q(A)",
        "(p(A) since[0,4] q(A))",
        "(q(A) since[1,3] p(A))",
        "(p(A) until[0,4] q(A))",
        "(q(A) until[2,6] p(A))",
        "r(A, _)"));

TEST(OperatorsTest, DeltaOccurrenceSubstitution) {
  Database db = TestFacts();
  Database delta;
  delta.Insert("p", {Value::Symbol("a")},
               Interval::Closed(Rational(6), Rational(9)));
  MetricAtom atom = AtomOf("diamondminus[0,1] p(A)");
  Bindings binding(1);
  binding.Set(0, Value::Symbol("a"));
  ExtentSource source;
  source.full = &db;
  source.delta = &delta;
  source.delta_occurrence = 0;
  IntervalSet from_delta =
      EvalMetricExtent(atom, binding, source, IntervalSet(Interval::All()));
  // Only the delta portion [6,9] contributes: dilated to [6,10].
  EXPECT_EQ(from_delta,
            IntervalSet(Interval::Closed(Rational(6), Rational(10))));
}

TEST(OperatorsTest, TruthRestrictsToWindow) {
  Database db;
  ExtentSource source;
  source.full = &db;
  MetricAtom truth = MetricAtom::Truth();
  Bindings binding(0);
  IntervalSet window(Interval::Closed(Rational(1), Rational(3)));
  EXPECT_EQ(EvalMetricExtent(truth, binding, source, window), window);
  EXPECT_TRUE(EvalMetricExtent(MetricAtom::Falsity(), binding, source,
                               window)
                  .IsEmpty());
}

TEST(OperatorsTest, ChildWindowCoversOperatorReach) {
  IntervalSet window(Interval::Closed(Rational(10), Rational(20)));
  Interval rho = Interval::Closed(Rational(1), Rational(3));
  // Past operators reach back: child window must include [7, 19].
  IntervalSet past = ChildWindow(MtlOp::kDiamondMinus, rho, window);
  EXPECT_TRUE(past.Contains(Interval::Closed(Rational(7), Rational(19))));
  // Future operators reach forward.
  IntervalSet future = ChildWindow(MtlOp::kBoxPlus, rho, window);
  EXPECT_TRUE(future.Contains(Interval::Closed(Rational(11), Rational(23))));
  // Since spans [result - rho.hi, result].
  IntervalSet since = ChildWindow(MtlOp::kSince, rho, window);
  EXPECT_TRUE(since.Contains(Interval::Closed(Rational(7), Rational(20))));
}

}  // namespace
}  // namespace dmtl
