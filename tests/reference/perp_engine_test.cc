#include "src/reference/perp_engine.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

Session TinySession() {
  Session s;
  s.name = "tiny";
  s.start_time = 0;
  s.end_time = 100;
  s.initial_skew = 0;
  s.prices = {{0, 100.0}};
  return s;
}

MarketEvent Ev(int64_t t, EventKind kind, const char* acc, double amount = 0) {
  MarketEvent e;
  e.time = t;
  e.kind = kind;
  e.account = acc;
  e.amount = amount;
  return e;
}

TEST(ReferencePerpEngineTest, RejectsInvalidSession) {
  Session s = TinySession();
  s.events = {Ev(5, EventKind::kClosePosition, "a")};  // close w/o account
  ReferencePerpEngine engine;
  EXPECT_FALSE(engine.Run(s).ok());
}

TEST(ReferencePerpEngineTest, FlatRoundTripHasZeroPnl) {
  Session s = TinySession();
  s.events = {Ev(2, EventKind::kTransferMargin, "a", 1000.0),
              Ev(5, EventKind::kModifyPosition, "a", 2.0),
              Ev(9, EventKind::kClosePosition, "a")};
  ReferencePerpEngine engine;
  ASSERT_TRUE(engine.Run(s).ok());
  ASSERT_EQ(engine.trades().size(), 1u);
  EXPECT_DOUBLE_EQ(engine.trades()[0].pnl, 0.0);
  EXPECT_GT(engine.trades()[0].fee, 0.0);
}

TEST(ReferencePerpEngineTest, PnlTracksPriceMove) {
  Session s = TinySession();
  s.prices = {{0, 100.0}, {7, 130.0}};
  s.events = {Ev(2, EventKind::kTransferMargin, "a", 1000.0),
              Ev(5, EventKind::kModifyPosition, "a", 2.0),
              Ev(9, EventKind::kClosePosition, "a")};
  ReferencePerpEngine engine;
  ASSERT_TRUE(engine.Run(s).ok());
  EXPECT_DOUBLE_EQ(engine.trades()[0].pnl, 2.0 * 130.0 - 200.0);
}

TEST(ReferencePerpEngineTest, FrsUpdatesOncePerTick) {
  Session s = TinySession();
  s.initial_skew = 50000.0;
  s.events = {Ev(2, EventKind::kTransferMargin, "a", 1000.0),
              Ev(2, EventKind::kTransferMargin, "b", 1000.0),
              Ev(8, EventKind::kModifyPosition, "a", 1.0)};
  ReferencePerpEngine engine;
  ASSERT_TRUE(engine.Run(s).ok());
  // Two events share t=2: one FRS point there, one at t=8.
  ASSERT_EQ(engine.frs_series().size(), 2u);
  EXPECT_EQ(engine.frs_series()[0].time, 2);
  EXPECT_EQ(engine.frs_series()[1].time, 8);
  MarketParams params;
  double f2 = params.InstantaneousRate(50000.0, 100.0) * 100.0 * 2;
  EXPECT_NEAR(engine.frs_series()[0].f, f2, 1e-15);
}

TEST(ReferencePerpEngineTest, SkewFoldsAllContributions) {
  Session s = TinySession();
  s.events = {Ev(2, EventKind::kTransferMargin, "a", 1000.0),
              Ev(2, EventKind::kTransferMargin, "b", 1000.0),
              Ev(5, EventKind::kModifyPosition, "a", 2.0),
              Ev(5, EventKind::kModifyPosition, "b", -0.5),
              Ev(9, EventKind::kClosePosition, "a")};
  ReferencePerpEngine engine;
  ASSERT_TRUE(engine.Run(s).ok());
  EXPECT_DOUBLE_EQ(engine.final_skew(), -0.5);
}

TEST(ReferencePerpEngineTest, WithdrawalsRecordFinalMargin) {
  Session s = TinySession();
  s.events = {Ev(2, EventKind::kTransferMargin, "a", 1000.0),
              Ev(4, EventKind::kTransferMargin, "a", 500.0),
              Ev(9, EventKind::kWithdraw, "a")};
  ReferencePerpEngine engine;
  ASSERT_TRUE(engine.Run(s).ok());
  ASSERT_EQ(engine.withdrawals().count("a"), 1u);
  EXPECT_DOUBLE_EQ(engine.withdrawals().at("a"), 1500.0);
}

TEST(ReferencePerpEngineTest, FundingSettlesAgainstRecordedF) {
  Session s = TinySession();
  s.initial_skew = 40000.0;
  s.events = {Ev(2, EventKind::kTransferMargin, "a", 100000.0),
              Ev(10, EventKind::kModifyPosition, "a", 2.0),
              Ev(40, EventKind::kClosePosition, "a")};
  ReferencePerpEngine engine;
  ASSERT_TRUE(engine.Run(s).ok());
  const auto& frs = engine.frs_series();
  ASSERT_EQ(frs.size(), 3u);
  double expected = 2.0 * (frs[2].f - frs[1].f);
  EXPECT_NEAR(engine.trades()[0].funding, expected, 1e-15);
  EXPECT_LT(engine.trades()[0].funding, 0.0);  // long pays positive skew
}

}  // namespace
}  // namespace dmtl
