#include <gtest/gtest.h>

#include "src/ast/program.h"

namespace dmtl {
namespace {

RelationalAtom Atom(const char* pred, std::vector<Term> args) {
  RelationalAtom a;
  a.predicate = InternPredicate(pred);
  a.args = std::move(args);
  return a;
}

TEST(AstTest, TermToString) {
  std::vector<std::string> names = {"A", "M"};
  EXPECT_EQ(Term::Variable(1).ToString(names), "M");
  EXPECT_EQ(Term::Constant(Value::Int(3)).ToString(names), "3");
  EXPECT_EQ(Term::Constant(Value::Symbol("acc")).ToString(names), "acc");
}

TEST(AstTest, MetricAtomDeepCopy) {
  MetricAtom unary = MetricAtom::Unary(
      MtlOp::kBoxMinus, Interval::Point(Rational(1)),
      MetricAtom::Relational(Atom("p", {Term::Variable(0)})));
  MetricAtom copy = unary;  // deep copy
  EXPECT_EQ(copy.kind(), MetricAtom::Kind::kUnary);
  EXPECT_EQ(copy.left().atom().predicate, InternPredicate("p"));
  // Mutating the copy leaves the original intact.
  copy = MetricAtom::Truth();
  EXPECT_EQ(unary.kind(), MetricAtom::Kind::kUnary);
}

TEST(AstTest, CollectRelationalAtoms) {
  MetricAtom since = MetricAtom::Binary(
      MtlOp::kSince, Interval::Closed(Rational(0), Rational(5)),
      MetricAtom::Relational(Atom("p", {Term::Variable(0)})),
      MetricAtom::Unary(MtlOp::kDiamondMinus, Interval::Point(Rational(1)),
                        MetricAtom::Relational(Atom("q", {Term::Variable(1)}))));
  std::vector<const RelationalAtom*> atoms;
  since.CollectRelationalAtoms(&atoms);
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms[0]->predicate, InternPredicate("p"));
  EXPECT_EQ(atoms[1]->predicate, InternPredicate("q"));
  std::vector<int> vars;
  since.CollectVars(&vars);
  EXPECT_EQ(vars, (std::vector<int>{0, 1}));
}

TEST(AstTest, ExprCollectVarsAndToString) {
  // M = X + Y * 2
  Expr e = Expr::Binary(
      Expr::Op::kAdd, Expr::Var(0),
      Expr::Binary(Expr::Op::kMul, Expr::Var(1),
                   Expr::Const(Value::Int(2))));
  std::vector<int> vars;
  e.CollectVars(&vars);
  EXPECT_EQ(vars, (std::vector<int>{0, 1}));
  EXPECT_EQ(e.ToString({"X", "Y"}), "(X + (Y * 2))");
}

TEST(AstTest, ProgramPredicateSets) {
  Rule rule;
  rule.var_names = {"A", "M"};
  rule.head.predicate = InternPredicate("isOpen_t");
  rule.head.args = {Term::Variable(0)};
  rule.body.push_back(BodyLiteral::Metric(MetricAtom::Relational(
      Atom("tranM_t", {Term::Variable(0), Term::Variable(1)}))));
  Program program;
  program.AddRule(rule);
  EXPECT_EQ(program.HeadPredicates().count(InternPredicate("isOpen_t")), 1u);
  EXPECT_EQ(program.EdbPredicates().count(InternPredicate("tranM_t")), 1u);
  EXPECT_EQ(program.EdbPredicates().count(InternPredicate("isOpen_t")), 0u);
  EXPECT_TRUE(program.CheckArities().ok());
}

TEST(AstTest, CheckAritiesRejectsInconsistentUse) {
  Rule r1;
  r1.var_names = {"A"};
  r1.head.predicate = InternPredicate("q_t");
  r1.head.args = {Term::Variable(0)};
  r1.body.push_back(BodyLiteral::Metric(
      MetricAtom::Relational(Atom("p_t", {Term::Variable(0)}))));
  Rule r2 = r1;
  r2.body.clear();
  r2.body.push_back(BodyLiteral::Metric(MetricAtom::Relational(
      Atom("p_t", {Term::Variable(0), Term::Variable(0)}))));
  Program program;
  program.AddRule(r1);
  program.AddRule(r2);
  Status status = program.CheckArities();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(AstTest, RuleToStringRoundsTrip) {
  Rule rule;
  rule.var_names = {"A", "M"};
  rule.head.predicate = InternPredicate("margin_t");
  rule.head.args = {Term::Variable(0), Term::Variable(1)};
  rule.body.push_back(BodyLiteral::Metric(MetricAtom::Relational(
      Atom("tranM_t", {Term::Variable(0), Term::Variable(1)}))));
  rule.body.push_back(BodyLiteral::Metric(
      MetricAtom::Unary(MtlOp::kBoxMinus, Interval::Point(Rational(1)),
                        MetricAtom::Relational(Atom("isOpen_t",
                                                    {Term::Variable(0)}))),
      /*negated=*/true));
  EXPECT_EQ(rule.ToString(),
            "margin_t(A, M) :- tranM_t(A, M), "
            "not boxminus[1,1] isOpen_t(A) .");
}

}  // namespace
}  // namespace dmtl
