#include "src/ast/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dmtl {
namespace {

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).is_bool());
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Double(2.5).is_double());
  EXPECT_TRUE(Value::Symbol("abc").is_symbol());
  EXPECT_TRUE(Value::Int(3).is_numeric());
  EXPECT_TRUE(Value::Double(2.5).is_numeric());
  EXPECT_FALSE(Value::Symbol("abc").is_numeric());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(Value::Int(4).AsDouble(), 4.0);  // int promotes
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Symbol("acc1").AsSymbolName(), "acc1");
}

TEST(ValueTest, SymbolInterning) {
  Value a = Value::Symbol("hello");
  Value b = Value::Symbol("hello");
  Value c = Value::Symbol("world");
  EXPECT_EQ(a.symbol_id(), b.symbol_id());
  EXPECT_NE(a.symbol_id(), c.symbol_id());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ValueTest, StructuralEqualityDistinguishesKinds) {
  // Identity is structural: Int(1) != Double(1.0)...
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  // ...but numeric comparison promotes.
  EXPECT_EQ(Value::NumericCompare(Value::Int(1), Value::Double(1.0)), 0);
  EXPECT_LT(Value::NumericCompare(Value::Int(1), Value::Double(1.5)), 0);
  EXPECT_GT(Value::NumericCompare(Value::Double(2.0), Value::Int(1)), 0);
}

TEST(ValueTest, HashConsistency) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Symbol("x").Hash(), Value::Symbol("x").Hash());
  std::unordered_set<Value> set;
  set.insert(Value::Int(1));
  set.insert(Value::Int(1));
  set.insert(Value::Double(1.0));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Symbol("acc").ToString(), "acc");
}

TEST(ValueTest, TotalOrderForSorting) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Symbol("a"), Value::Symbol("b"));
  // Cross-kind ordering is by kind tag, stable either way.
  Value i = Value::Int(5);
  Value s = Value::Symbol("a");
  EXPECT_NE(i < s, s < i);
}

TEST(TupleTest, HashAndToString) {
  Tuple t1 = {Value::Symbol("acc"), Value::Double(20.0)};
  Tuple t2 = {Value::Symbol("acc"), Value::Double(20.0)};
  Tuple t3 = {Value::Symbol("acc"), Value::Double(21.0)};
  TupleHash h;
  EXPECT_EQ(h(t1), h(t2));
  EXPECT_NE(h(t1), h(t3));  // overwhelmingly likely
  EXPECT_EQ(TupleToString(t1), "(acc, 20)");
  EXPECT_EQ(TupleToString({}), "()");
}

}  // namespace
}  // namespace dmtl
