#include "src/parser/lexer.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

std::vector<TokenKind> Kinds(const std::string& text) {
  auto tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, BasicRule) {
  auto kinds = Kinds("isOpen(A) :- tranM(A, M) .");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kLParen,
                       TokenKind::kVariable, TokenKind::kRParen,
                       TokenKind::kArrow, TokenKind::kIdent,
                       TokenKind::kLParen, TokenKind::kVariable,
                       TokenKind::kComma, TokenKind::kVariable,
                       TokenKind::kRParen, TokenKind::kDot,
                       TokenKind::kEof}));
}

TEST(LexerTest, CaseConvention) {
  auto tokens = *Tokenize("abc Abc _ _x");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[2].kind, TokenKind::kAnon);
  EXPECT_EQ(tokens[3].kind, TokenKind::kVariable);  // named don't-care
}

TEST(LexerTest, NumbersAndTerminatingDot) {
  // The trailing '.' is the statement terminator, not a decimal point.
  auto tokens = *Tokenize("p(3). q(2.5). r(1e3).");
  EXPECT_EQ(tokens[2].text, "3");
  EXPECT_EQ(tokens[4].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[7].text, "2.5");
  EXPECT_EQ(tokens[12].text, "1e3");
}

TEST(LexerTest, ScientificNotation) {
  auto tokens = *Tokenize("300000000.0 1.5e-4 2E+6");
  EXPECT_EQ(tokens[0].text, "300000000.0");
  EXPECT_EQ(tokens[1].text, "1.5e-4");
  EXPECT_EQ(tokens[2].text, "2E+6");
}

TEST(LexerTest, Comments) {
  auto tokens = *Tokenize("p(a). % trailing comment\n/* block\ncomment */ q(b).");
  // Tokens: p ( a ) . q ( b ) . eof
  EXPECT_EQ(tokens.size(), 11u);
  EXPECT_EQ(tokens[5].text, "q");
  EXPECT_EQ(tokens[5].line, 3);
}

TEST(LexerTest, TwoCharOperators) {
  auto kinds = Kinds(":- == != <= >= < > =");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kArrow, TokenKind::kEqEq, TokenKind::kNe,
                       TokenKind::kLe, TokenKind::kGe, TokenKind::kLt,
                       TokenKind::kGt, TokenKind::kEq, TokenKind::kEof}));
}

TEST(LexerTest, Strings) {
  auto tokens = *Tokenize("p(\"hello world\").");
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "hello world");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = *Tokenize("p(a).\n  q(b).");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[5].line, 2);
  EXPECT_EQ(tokens[5].column, 3);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("p(a) # q").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("/* unterminated").ok());
}

}  // namespace
}  // namespace dmtl
