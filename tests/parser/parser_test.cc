#include "src/parser/parser.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

TEST(ParserTest, SimpleRule) {
  auto rule = Parser::ParseRule("isOpen(A) :- tranM(A, M) .");
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->head.predicate, InternPredicate("isOpen"));
  ASSERT_EQ(rule->body.size(), 1u);
  EXPECT_EQ(rule->body[0].metric.kind(), MetricAtom::Kind::kRelational);
  EXPECT_EQ(rule->var_names, (std::vector<std::string>{"A", "M"}));
}

TEST(ParserTest, OperatorsWithAndWithoutRanges) {
  auto rule = Parser::ParseRule(
      "p(A) :- boxminus[2,3] q(A), diamondminus r(A) .");
  ASSERT_TRUE(rule.ok()) << rule.status();
  const MetricAtom& box = rule->body[0].metric;
  EXPECT_EQ(box.kind(), MetricAtom::Kind::kUnary);
  EXPECT_EQ(box.op(), MtlOp::kBoxMinus);
  EXPECT_EQ(box.range(), Interval::Closed(Rational(2), Rational(3)));
  // Omitted range defaults to the paper's [1,1].
  const MetricAtom& dia = rule->body[1].metric;
  EXPECT_EQ(dia.range(), Interval::Point(Rational(1)));
}

TEST(ParserTest, NegationAndAnonymousVariables) {
  auto rule = Parser::ParseRule(
      "position(A, S, N) :- diamondminus position(A, S, N), "
      "not order(A, _), isOpen(A) .");
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_TRUE(rule->body[1].negated);
  // _ gets a fresh variable index distinct from A/S/N.
  std::vector<int> vars;
  rule->body[1].metric.CollectVars(&vars);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], 0);
  EXPECT_EQ(vars[1], 3);
}

TEST(ParserTest, BuiltinsAssignmentsAndComparisons) {
  auto rule = Parser::ParseRule(
      "margin(A, M) :- diamondminus margin(A, X), tranM(A, Y), "
      "M = X + Y, X > 0.0 .");
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_EQ(rule->body.size(), 4u);
  EXPECT_EQ(rule->body[2].builtin.kind, BuiltinAtom::Kind::kAssign);
  EXPECT_EQ(rule->body[3].builtin.kind, BuiltinAtom::Kind::kCompare);
  EXPECT_EQ(rule->body[3].builtin.cmp, CmpOp::kGt);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto rule = Parser::ParseRule("p(C) :- q(K, P, D), "
                                "C = -K * P / 300000000.0 + D .");
  ASSERT_TRUE(rule.ok()) << rule.status();
  const Expr& e = rule->body[1].builtin.expr;
  // (((-K) * P) / 3e8) + D
  EXPECT_EQ(e.op(), Expr::Op::kAdd);
  EXPECT_EQ(e.children()[0].op(), Expr::Op::kDiv);
  EXPECT_EQ(e.children()[0].children()[0].op(), Expr::Op::kMul);
  EXPECT_EQ(e.children()[0].children()[0].children()[0].op(), Expr::Op::kNeg);
}

TEST(ParserTest, AbsMinMaxFunctions) {
  auto rule = Parser::ParseRule(
      "fee(A, C) :- modPos(A, S), price(P), "
      "C = abs(S * P * 0.0035) + min(S, max(P, 1.0)) .");
  ASSERT_TRUE(rule.ok()) << rule.status();
}

TEST(ParserTest, TimestampBuiltin) {
  auto rule = Parser::ParseRule("tdiff(T, T) :- start(), timestamp(T) .");
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->body[1].builtin.kind, BuiltinAtom::Kind::kTimestamp);
}

TEST(ParserTest, Aggregation) {
  auto rule = Parser::ParseRule("event(msum(S)) :- eventContrib(A, S) .");
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_TRUE(rule->head.aggregate.has_value());
  EXPECT_EQ(rule->head.aggregate->kind, AggKind::kSum);
  EXPECT_EQ(rule->head.aggregate->arg_index, 0);
}

TEST(ParserTest, SinceUntilBinary) {
  auto rule = Parser::ParseRule(
      "alarm(X) :- (ok(X) since[0,5] reset(X)) .");
  ASSERT_TRUE(rule.ok()) << rule.status();
  const MetricAtom& m = rule->body[0].metric;
  EXPECT_EQ(m.kind(), MetricAtom::Kind::kBinary);
  EXPECT_EQ(m.op(), MtlOp::kSince);
  EXPECT_EQ(m.range(), Interval::Closed(Rational(0), Rational(5)));
}

TEST(ParserTest, HeadOperators) {
  auto rule = Parser::ParseRule("boxminus[0,2] p(X) :- q(X) .");
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_EQ(rule->head.ops.size(), 1u);
  EXPECT_EQ(rule->head.ops[0].op, MtlOp::kBoxMinus);
  // Diamond is not allowed in heads by the DatalogMTL grammar.
  EXPECT_FALSE(Parser::ParseRule("diamondminus p(X) :- q(X) .").ok());
}

TEST(ParserTest, FactsWithIntervals) {
  auto db = Parser::ParseDatabase(
      "price(1301.5)@[1664272800, 1664272860) .\n"
      "tranM(acc1, 20.0)@1664272805 .\n"
      "skew(-2445.98)@0 .\n"
      "frs(0.0)@[0, 0] .\n"
      "eternal(a) .\n");
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(db->Holds("price", {Value::Double(1301.5)},
                        Rational(1664272800)));
  EXPECT_FALSE(db->Holds("price", {Value::Double(1301.5)},
                         Rational(1664272860)));
  EXPECT_TRUE(db->Holds("tranM", {Value::Symbol("acc1"), Value::Double(20.0)},
                        Rational(1664272805)));
  EXPECT_TRUE(db->Holds("skew", {Value::Double(-2445.98)}, Rational(0)));
  EXPECT_TRUE(db->Holds("eternal", {Value::Symbol("a")},
                        Rational(-1'000'000)));
}

TEST(ParserTest, RationalAndInfiniteBounds) {
  auto db = Parser::ParseDatabase("p(a)@[1/2, 3/2] . q(b)@[0, inf) .");
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(db->Holds("p", {Value::Symbol("a")}, Rational(1, 2)));
  EXPECT_TRUE(db->Holds("p", {Value::Symbol("a")}, Rational(1)));
  EXPECT_TRUE(db->Holds("q", {Value::Symbol("b")}, Rational(1'000'000)));
}

TEST(ParserTest, MixedUnitSeparation) {
  auto unit = Parser::Parse("p(X) :- q(X) . q(a)@3 .");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->program.size(), 1u);
  EXPECT_EQ(unit->database.NumPredicates(), 1u);
  EXPECT_FALSE(Parser::ParseProgram("p(X) :- q(X) . q(a)@3 .").ok());
  EXPECT_FALSE(Parser::ParseDatabase("p(X) :- q(X) . q(a)@3 .").ok());
}

TEST(ParserTest, ErrorsCarryPositions) {
  auto r1 = Parser::ParseProgram("p(X) :- q(X)");  // missing dot
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("line"), std::string::npos);

  EXPECT_FALSE(Parser::ParseProgram("p(X) :- boxminus[-1,1] q(X) .").ok());
  EXPECT_FALSE(Parser::ParseProgram("p(X) :- boxminus[3,1] q(X) .").ok());
  EXPECT_FALSE(Parser::Parse("p(X)@5 .").ok());  // non-ground fact
  EXPECT_FALSE(Parser::Parse("event(msum(S))@5 .").ok());
}

TEST(ParserTest, GarbageNeverCrashes) {
  // Truncations and shuffles of valid input must come back as ParseError
  // statuses, never crashes or hangs.
  const std::string valid =
      "margin(A, M) :- boxminus isOpen(A), diamondminus margin(A, X), "
      "tranM(A, Y), M = X + Y . price(47.5)@[10, 20) .";
  for (size_t cut = 0; cut < valid.size(); cut += 3) {
    auto result = Parser::Parse(valid.substr(0, cut));
    // Some prefixes are valid programs; all others must fail cleanly.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
  const char* garbage[] = {
      ":- .",
      "p( .",
      "p(X) :- q(X), .",
      "p(X) :- not not q(X) .",
      "p(X) :- boxminus .",
      "p(X) :- since q(X) .",
      "p(X)@ .",
      "p(X) :- q(X) . . .",
      "@5 .",
      "p(X) :- q(X) r(X) .",
      "p(X) :- timestamp(3) .",
      "p(X,) :- q(X) .",
      "((((((((",
      "p(X) :- q(X) ]] .",
  };
  for (const char* text : garbage) {
    auto result = Parser::Parse(text);
    EXPECT_FALSE(result.ok()) << "accepted garbage: " << text;
  }
}

TEST(ParserTest, KeywordLiterals) {
  auto db = Parser::ParseDatabase("flag(true)@1 . flag(false)@2 . n(null)@3 .");
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(db->Holds("flag", {Value::Bool(true)}, Rational(1)));
  EXPECT_TRUE(db->Holds("flag", {Value::Bool(false)}, Rational(2)));
  EXPECT_TRUE(db->Holds("n", {Value::Null()}, Rational(3)));
}

TEST(ParserTest, EthPerpStyleRoundTrip) {
  // A representative slice of the contract program must parse and print.
  const char* text =
      "frs(F) :- diamondminus frs(X), unrFund(UF), F = X + UF .\n"
      "skew(K) :- diamondminus skew(K), not event(_), marketOpen() .\n";
  auto program = Parser::ParseProgram(text);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->size(), 2u);
  // Re-parse the printed form.
  auto round = Parser::ParseProgram(program->ToString());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->ToString(), program->ToString());
}

}  // namespace
}  // namespace dmtl
