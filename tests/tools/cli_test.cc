#include "src/tools/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace dmtl {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "dmtl_cli_test";
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteFile(const std::string& name, const std::string& text) {
    std::string path = (dir_ / name).string();
    std::ofstream f(path);
    f << text;
    return path;
  }

  // Returns (status, stdout).
  std::pair<Status, std::string> Run(std::vector<std::string> args) {
    std::ostringstream out;
    std::ostringstream err;
    Status status = RunCli(args, out, err);
    return {status, out.str()};
  }

  // Returns (status, stderr).
  std::pair<Status, std::string> RunErr(std::vector<std::string> args) {
    std::ostringstream out;
    std::ostringstream err;
    Status status = RunCli(args, out, err);
    return {status, err.str()};
  }

  std::filesystem::path dir_;
};

TEST_F(CliTest, RunMaterializesAndPrints) {
  std::string path = WriteFile("p.dmtl",
                               "q(X) :- p(X) .\n"
                               "p(a)@[1,3] .\n");
  auto [status, out] = Run({"run", path});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(out, "p(a)@[1, 3] .\nq(a)@[1, 3] .\n");
}

TEST_F(CliTest, RunWithHorizonAndQuery) {
  std::string path = WriteFile("chain.dmtl",
                               "open(A) :- deposit(A) .\n"
                               "open(A) :- boxminus open(A) .\n"
                               "deposit(x)@2 .\n");
  auto [status, out] =
      Run({"run", path, "--min", "0", "--max", "4", "--query", "open"});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(out,
            "open(x)@[2, 2] .\nopen(x)@[3, 3] .\nopen(x)@[4, 4] .\n");
}

TEST_F(CliTest, RunAtTimePoint) {
  std::string path = WriteFile("p.dmtl",
                               "q(X) :- p(X) .\n"
                               "p(a)@[1,3] . p(b)@[5,9] .\n");
  auto [status, out] = Run({"run", path, "--at", "2"});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(out, "p(a)\nq(a)\n");
  auto [status2, out2] = Run({"run", path, "--query", "q", "--at", "7"});
  ASSERT_TRUE(status2.ok());
  EXPECT_EQ(out2, "q(b)@7\n");
}

TEST_F(CliTest, RunWithThreads) {
  std::string path = WriteFile("chain.dmtl",
                               "open(A) :- deposit(A) .\n"
                               "open(A) :- boxminus open(A) .\n"
                               "held(A) :- open(A) .\n"
                               "deposit(x)@2 .\n");
  std::vector<std::string> base = {"run", path, "--min", "0", "--max", "6",
                                   "--query", "open"};
  auto [seq_status, seq_out] = Run(base);
  ASSERT_TRUE(seq_status.ok()) << seq_status;
  for (const char* threads : {"0", "2", "8"}) {
    std::vector<std::string> args = base;
    args.insert(args.end(), {"--threads", threads});
    auto [status, out] = Run(args);
    ASSERT_TRUE(status.ok()) << status << " --threads " << threads;
    EXPECT_EQ(out, seq_out) << "--threads " << threads;
  }
  auto [bad, bad_out] = Run({"run", path, "--threads", "lots"});
  EXPECT_FALSE(bad.ok());
  auto [neg, neg_out] = Run({"run", path, "--threads", "-2"});
  EXPECT_FALSE(neg.ok());
}

TEST_F(CliTest, RunStatsAndOutputFile) {
  std::string path = WriteFile("p.dmtl", "q(X) :- p(X) .\n p(a)@1 .\n");
  std::string out_path = (dir_ / "out.dmtl").string();
  auto [status, out] =
      Run({"run", path, "--stats", "--output", out_path});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.find("% strata="), std::string::npos);
  std::ifstream written(out_path);
  ASSERT_TRUE(written.good());
  std::stringstream buffer;
  buffer << written.rdbuf();
  EXPECT_NE(buffer.str().find("q(a)@[1, 1] ."), std::string::npos);
}

TEST_F(CliTest, MultipleInputFilesMerge) {
  std::string rules = WriteFile("rules.dmtl", "q(X) :- p(X) .\n");
  std::string facts = WriteFile("facts.dmtl", "p(a)@1 .\n");
  auto [status, out] = Run({"run", rules, facts, "--query", "q"});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(out, "q(a)@[1, 1] .\n");
}

TEST_F(CliTest, CheckReportsStrata) {
  std::string path = WriteFile("p.dmtl",
                               "a(X) :- base(X) .\n"
                               "b(X) :- base(X), not a(X) .\n");
  auto [status, out] = Run({"check", path});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.find("2 rules"), std::string::npos);
  EXPECT_NE(out.find("2 strata"), std::string::npos);
  EXPECT_NE(out.find("stratum 1: b"), std::string::npos);
}

TEST_F(CliTest, CheckRejectsBadPrograms) {
  std::string unsafe = WriteFile("bad.dmtl", "p(X, Y) :- q(X) .\n");
  auto [status, out] = Run({"check", unsafe});
  EXPECT_EQ(status.code(), StatusCode::kUnsafeRule);
}

TEST_F(CliTest, DotEmitsGraph) {
  std::string path = WriteFile("p.dmtl", "b(X) :- a(X), not c(X) .\n");
  auto [status, out] = Run({"dot", path});
  ASSERT_TRUE(status.ok());
  EXPECT_NE(out.find("digraph"), std::string::npos);
  EXPECT_NE(out.find("style=dashed"), std::string::npos);
}

TEST_F(CliTest, FmtPrettyPrints) {
  std::string path =
      WriteFile("p.dmtl", "q(X):-boxminus[1,1]p(X).\np(a)@1 .\n");
  auto [status, out] = Run({"fmt", path});
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(out, "q(X) :- boxminus[1,1] p(X) .\np(a)@[1, 1] .\n");
}

TEST_F(CliTest, ExplainNamesTheDerivingRule) {
  std::string path = WriteFile("p.dmtl",
                               "q(X) :- p(X) .\n"
                               "r(X) :- q(X), not s(X) .\n"
                               "p(a)@[1,4] . s(a)@3 .\n");
  auto [status, out] =
      Run({"run", path, "--explain", "r(a)@[1,2] ."});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.find("r(a)@[1,2]:"), std::string::npos);
  EXPECT_NE(out.find("r(X) :- q(X), not s(X) ."), std::string::npos);
  // Input facts have no derivation records.
  auto [status2, out2] = Run({"run", path, "--explain", "p(a)@2 ."});
  ASSERT_TRUE(status2.ok());
  EXPECT_NE(out2.find("no derivation"), std::string::npos);
}

TEST_F(CliTest, UsageErrors) {
  EXPECT_EQ(Run({}).first.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"explode", "x"}).first.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"run"}).first.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"run", "nope", "--min"}).first.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"run", "--bogus", "f"}).first.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"run", "/nonexistent/file.dmtl"}).first.code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CliTest, DeadlineFlagTripsOnDivergentProgram) {
  // No horizon: the chain rule propagates forever, so only the deadline
  // stops the run. The failure must carry the stop diagnostics on stderr.
  std::string path = WriteFile("divergent.dmtl",
                               "open(A) :- deposit(A) .\n"
                               "open(A) :- boxminus open(A) .\n"
                               "deposit(x)@2 .\n");
  auto [status, err] = RunErr({"run", path, "--deadline-ms", "50"});
  ASSERT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(err.find("stop_reason=deadline"), std::string::npos) << err;

  auto [bad, bad_err] = RunErr({"run", path, "--deadline-ms", "soon"});
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST_F(CliTest, DeadlineFlagIsHarmlessOnFastRuns) {
  std::string path = WriteFile("p.dmtl", "q(X) :- p(X) .\n p(a)@1 .\n");
  auto [status, out] = Run({"run", path, "--deadline-ms", "60000"});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.find("q(a)@[1, 1] ."), std::string::npos);
}

TEST_F(CliTest, ExitCodesDistinguishFailureClasses) {
  EXPECT_EQ(ExitCodeForStatus(Status::Ok()), 0);
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidArgument("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::ParseError("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::UnsafeRule("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::NotStratifiable("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::DeadlineExceeded("x")), 3);
  EXPECT_EQ(ExitCodeForStatus(Status::Cancelled("x")), 4);
  EXPECT_EQ(ExitCodeForStatus(Status::ResourceExhausted("x")), 5);
  EXPECT_EQ(ExitCodeForStatus(Status::EvalError("x")), 1);
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("x")), 1);
  EXPECT_EQ(ExitCodeForStatus(Status::NotFound("x")), 1);
}

TEST_F(CliTest, NoPlanMatchesDefaultRun) {
  std::string path = WriteFile("join.dmtl",
                               "r(X, Z) :- p(X, Y), q(Y, Z) .\n"
                               "p(a, b)@[0,4] . p(a, c)@[10,12] .\n"
                               "q(b, d)@[1,2] . q(c, e)@[50,60] .\n");
  auto [on_status, on_out] = Run({"run", path});
  ASSERT_TRUE(on_status.ok()) << on_status;
  auto [off_status, off_out] = Run({"run", path, "--no-plan"});
  ASSERT_TRUE(off_status.ok()) << off_status;
  EXPECT_EQ(on_out, off_out);
  EXPECT_NE(on_out.find("r(a, d)@[1, 2] ."), std::string::npos) << on_out;
}

TEST_F(CliTest, ExplainPlanPrintsJoinOrderAndCounters) {
  std::string path = WriteFile("join.dmtl",
                               "r(X, Z) :- p(X, Y), q(Y, Z) .\n"
                               "p(a, b)@[0,4] . p(a, c)@[10,12] .\n"
                               "q(b, d)@[1,2] . q(c, e)@[50,60] .\n");
  auto [status, out] = Run({"run", path, "--explain-plan"});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.find("% join plans"), std::string::npos) << out;
  EXPECT_NE(out.find("% rule 0:"), std::string::npos) << out;
  EXPECT_NE(out.find("est_cost"), std::string::npos) << out;
  EXPECT_NE(out.find("% planner:"), std::string::npos) << out;
  // The plan output is comment-prefixed: every line of the section starts
  // with '%', so the overall output stays loadable as a program.
  EXPECT_NE(out.find("p(a, b)@[0, 4] ."), std::string::npos) << out;
}

TEST_F(CliTest, EthPerpArtifactThroughCli) {
  if (!std::filesystem::exists("programs/eth_perp.dmtl")) {
    GTEST_SKIP() << "artifact not found (run from repo root)";
  }
  std::string facts = WriteFile("session.dmtl",
                                "start()@0 . skew(0.0)@0 . frs(0.0)@0 .\n"
                                "price(100.0)@[0, 20] .\n"
                                "tranM(abc, 1000.0)@2 .\n"
                                "modPos(abc, 2.0)@4 .\n"
                                "closePos(abc)@8 .\n");
  auto [status, out] = Run({"run", "programs/eth_perp.dmtl", facts, "--min",
                            "0", "--max", "12", "--query", "pnl"});
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(out, "pnl(abc, 0.0)@[8, 8] .\n");
}

TEST_F(CliTest, StreamModeEmitsNdjsonPerEvent) {
  std::string prog = WriteFile("s.dmtl",
                               "q(X) :- diamondminus[0,2] p(X) .\n"
                               "p(a)@[1,3] .\n");
  std::string stream = WriteFile("s.stream",
                                 "% comment lines are skipped\n"
                                 "@advance 4\n"
                                 "@checkpoint\n"
                                 "@step price(10.0)@5 .\n"
                                 "p(b)@6 .\n"
                                 "@advance 7\n"
                                 "@slide 3\n"
                                 "@checkpoint\n");
  auto [status, out] = Run({"run", prog, "--stream", stream, "--stats"});
  ASSERT_TRUE(status.ok()) << status << "\n" << out;
  std::istringstream lines(out);
  std::string line;
  std::vector<std::string> events;
  while (std::getline(lines, line)) events.push_back(line);
  ASSERT_EQ(events.size(), 7u) << out;
  EXPECT_NE(events[0].find("\"op\":\"advance\""), std::string::npos);
  EXPECT_NE(events[0].find("\"watermark\":\"4\""), std::string::npos);
  EXPECT_NE(events[0].find("\"latency_us\":"), std::string::npos);
  EXPECT_NE(events[0].find("\"delta_intervals\":"), std::string::npos);
  EXPECT_NE(events[0].find("\"rounds\":"), std::string::npos);
  EXPECT_NE(events[1].find("\"op\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(events[1].find("\"match\":true"), std::string::npos);
  EXPECT_NE(events[2].find("\"op\":\"step\""), std::string::npos);
  EXPECT_NE(events[3].find("\"op\":\"push\""), std::string::npos);
  EXPECT_NE(events[5].find("\"op\":\"slide\""), std::string::npos);
  EXPECT_NE(events[5].find("\"window_min\":\"3\""), std::string::npos);
  EXPECT_NE(events[6].find("\"match\":true"), std::string::npos);
}

TEST_F(CliTest, StreamModeRejectsBadInput) {
  std::string prog = WriteFile("s.dmtl", "q(X) :- p(X) .\n");
  // --max conflicts with the session-managed horizon.
  std::string stream = WriteFile("ok.stream", "@advance 1\n");
  auto [max_status, max_out] =
      Run({"run", prog, "--stream", stream, "--max", "9"});
  EXPECT_EQ(ExitCodeForStatus(max_status), 2);
  // Unknown directives name the offending line.
  std::string bad = WriteFile("bad.stream", "@advance 1\n@bogus 2\n");
  auto [status, out] = Run({"run", prog, "--stream", bad});
  EXPECT_EQ(ExitCodeForStatus(status), 2);
  EXPECT_NE(status.message().find(":2:"), std::string::npos) << status;
  // A fact at or below the watermark violates the flush discipline.
  std::string late = WriteFile("late.stream", "@advance 5\np(a)@2 .\n");
  auto [late_status, late_out] = Run({"run", prog, "--stream", late});
  EXPECT_FALSE(late_status.ok());
}

}  // namespace
}  // namespace dmtl
