#include "src/common/status.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::EvalError("x").code(), StatusCode::kEvalError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::UnsafeRule("x").code(), StatusCode::kUnsafeRule);
  EXPECT_EQ(Status::NotStratifiable("x").code(),
            StatusCode::kNotStratifiable);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> bad = Status::NotFound("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Result<int> DoubleIfSmall(int x) {
  if (x > 100) return Status::InvalidArgument("too big");
  return 2 * x;
}

Status UseMacros(int x, int* out) {
  DMTL_RETURN_IF_ERROR(FailIfNegative(x));
  DMTL_ASSIGN_OR_RETURN(int doubled, DoubleIfSmall(x));
  *out = doubled;
  return Status::Ok();
}

TEST(ResultTest, Macros) {
  int out = 0;
  EXPECT_TRUE(UseMacros(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(UseMacros(-1, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UseMacros(101, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dmtl
