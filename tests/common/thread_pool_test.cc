#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace dmtl {
namespace {

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  EXPECT_GE(ThreadPool::ResolveThreads(-3), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7u);
}

TEST(ThreadPoolTest, NumThreadsIncludesCaller) {
  ThreadPool one(1);
  EXPECT_EQ(one.num_threads(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4u);
}

TEST(ThreadPoolTest, ResultsLandAtTaskIndex) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 200;
  std::vector<size_t> out(kTasks, 0);
  Status status = pool.ParallelFor(kTasks, [&](size_t i) -> Status {
    out[i] = i * i;
    return Status::Ok();
  });
  ASSERT_TRUE(status.ok()) << status;
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(out[i], i * i) << "task " << i;
  }
}

TEST(ThreadPoolTest, SequentialPoolRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  Status status = pool.ParallelFor(8, [&](size_t i) -> Status {
    seen[i] = std::this_thread::get_id();
    return Status::Ok();
  });
  ASSERT_TRUE(status.ok());
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, FirstErrorByTaskIndexWins) {
  ThreadPool pool(4);
  // Task 7 usually *finishes* before task 3 on some interleavings; the
  // contract picks the error with the lowest index regardless.
  Status status = pool.ParallelFor(10, [&](size_t i) -> Status {
    if (i == 3) return Status::EvalError("task three");
    if (i == 7) return Status::Internal("task seven");
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kEvalError);
  EXPECT_EQ(status.message(), "task three");
}

TEST(ThreadPoolTest, AllTasksRunDespiteErrors) {
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  Status status = pool.ParallelFor(64, [&](size_t i) -> Status {
    ++executed;
    return i % 2 == 0 ? Status::EvalError("even") : Status::Ok();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(executed.load(), 64u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  auto run = [&] {
    (void)pool.ParallelFor(16, [&](size_t i) -> Status {
      ++executed;
      if (i == 2) throw std::runtime_error("task two blew up");
      if (i == 9) throw std::logic_error("task nine blew up");
      return Status::Ok();
    });
  };
  // The lowest-index exception is the one rethrown.
  EXPECT_THROW(run(), std::runtime_error);
  EXPECT_EQ(executed.load(), 16u);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<int> out(batch + 1, -1);
    Status status = pool.ParallelFor(out.size(), [&](size_t i) -> Status {
      out[i] = batch;
      return Status::Ok();
    });
    ASSERT_TRUE(status.ok());
    for (int v : out) EXPECT_EQ(v, batch);
  }
}

TEST(ThreadPoolTest, ReusableAfterThrowingBatch) {
  ThreadPool pool(3);
  EXPECT_THROW((void)pool.ParallelFor(8,
                                      [&](size_t i) -> Status {
                                        if (i == 5) {
                                          throw std::runtime_error("boom");
                                        }
                                        return Status::Ok();
                                      }),
               std::runtime_error);
  // The pool must come back healthy: full batch, every result lands.
  std::vector<int> out(16, -1);
  Status status = pool.ParallelFor(out.size(), [&](size_t i) -> Status {
    out[i] = static_cast<int>(i);
    return Status::Ok();
  });
  ASSERT_TRUE(status.ok()) << status;
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, ReusableAfterFailingBatch) {
  ThreadPool pool(3);
  Status failed = pool.ParallelFor(8, [&](size_t i) -> Status {
    return i == 2 ? Status::EvalError("bad task") : Status::Ok();
  });
  ASSERT_FALSE(failed.ok());
  std::atomic<size_t> executed{0};
  Status status = pool.ParallelFor(32, [&](size_t) -> Status {
    ++executed;
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(executed.load(), 32u);
}

TEST(ThreadPoolTest, AllStatusesRetrievable) {
  ThreadPool pool(4);
  std::vector<Status> statuses;
  Status first = pool.ParallelFor(
      10,
      [&](size_t i) -> Status {
        if (i % 3 == 0) {
          return Status::EvalError("task " + std::to_string(i));
        }
        return Status::Ok();
      },
      &statuses);
  // The returned status is still the lowest-index error...
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.message(), "task 0");
  // ...and every per-task verdict is visible, not just the first.
  ASSERT_EQ(statuses.size(), 10u);
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(statuses[i].code(), StatusCode::kEvalError) << "task " << i;
      EXPECT_EQ(statuses[i].message(), "task " + std::to_string(i));
    } else {
      EXPECT_TRUE(statuses[i].ok()) << "task " << i;
    }
  }
}

TEST(ThreadPoolTest, AllStatusesSuccessPath) {
  ThreadPool pool(2);
  std::vector<Status> statuses{Status::EvalError("stale")};  // must be reset
  Status status = pool.ParallelFor(
      5, [&](size_t) -> Status { return Status::Ok(); }, &statuses);
  EXPECT_TRUE(status.ok());
  ASSERT_EQ(statuses.size(), 5u);
  for (const Status& s : statuses) EXPECT_TRUE(s.ok());
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  // A four-way rendezvous: every task blocks until all four have started,
  // which can only resolve when four threads run tasks at the same time.
  ThreadPool pool(4);
  std::mutex mu;
  std::condition_variable cv;
  size_t arrived = 0;
  Status status = pool.ParallelFor(4, [&](size_t) -> Status {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == 4; });
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(arrived, 4u);
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  size_t calls = 0;
  Status status = pool.ParallelFor(0, [&](size_t) -> Status {
    ++calls;
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 0u);
}

}  // namespace
}  // namespace dmtl
