// RoundArena and the SmallIntervalVec arena hook: bump allocation,
// alignment, chunk retention across Reset, oversized-request fallback, the
// thread-local ArenaScope, and the pinning protocol that keeps stored
// extents off round-lifetime storage (MarkPersistent migrates to the heap;
// a move into a pinned destination deep-copies arena-backed sources).

#include "src/common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/temporal/interval_set.h"

namespace dmtl {
namespace {

TEST(RoundArenaTest, BumpAllocationIsAlignedAndCounted) {
  RoundArena arena;
  void* a = arena.Allocate(24);
  void* b = arena.Allocate(40);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % RoundArena::kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % RoundArena::kAlignment, 0u);
  EXPECT_EQ(arena.allocs(), 2u);
  // Both requests round up to the 16-byte alignment quantum.
  EXPECT_EQ(arena.bytes_allocated(), 32u + 48u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
  EXPECT_EQ(arena.heap_fallbacks(), 0u);
}

TEST(RoundArenaTest, ResetRetainsChunksAndRewindsCursor) {
  RoundArena arena;
  void* first = arena.Allocate(64);
  arena.Allocate(128);
  size_t reserved = arena.bytes_reserved();
  arena.Reset();
  // The cursor rewound: the next allocation reuses the first chunk's base.
  void* again = arena.Allocate(64);
  EXPECT_EQ(first, again);
  // Reset frees nothing; reserved bytes are monotone until destruction.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(RoundArenaTest, GrowsThroughDoublingChunks) {
  RoundArena arena;
  // Force several chunk spills; every allocation must still succeed.
  for (int i = 0; i < 64; ++i) {
    ASSERT_NE(arena.Allocate(8 * 1024), nullptr);
  }
  EXPECT_GE(arena.bytes_reserved(), 64u * 8u * 1024u);
  // Reset consolidates the walked chain into one right-sized chunk (with
  // power-of-two headroom); same-sized replays then run inside it without
  // growing the reservation.
  arena.Reset();
  size_t reserved = arena.bytes_reserved();
  for (int i = 0; i < 64; ++i) {
    ASSERT_NE(arena.Allocate(8 * 1024), nullptr);
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  arena.Reset();
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(RoundArenaTest, TryExtendGrowsTheTailAllocationInPlace) {
  RoundArena arena;
  void* a = arena.Allocate(64);
  ASSERT_NE(a, nullptr);
  // The newest allocation extends by bumping the cursor, no copy.
  EXPECT_TRUE(arena.TryExtend(a, 64, 256));
  EXPECT_EQ(arena.bytes_allocated(), 256u);
  // A buried allocation (no longer the tail) must be refused.
  void* b = arena.Allocate(64);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(arena.TryExtend(a, 256, 512));
  // The extension cannot outgrow the current chunk.
  EXPECT_FALSE(arena.TryExtend(b, 64, RoundArena::kMaxChunkBytes));
}

TEST(RoundArenaTest, TryReclaimRewindsOverTheTailAllocation) {
  RoundArena arena;
  void* a = arena.Allocate(64);
  void* b = arena.Allocate(128);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Not the tail: refused, cursor untouched.
  EXPECT_FALSE(arena.TryReclaim(a, 64));
  // The tail hands its bytes back; the next allocation reuses the address.
  EXPECT_TRUE(arena.TryReclaim(b, 128));
  EXPECT_EQ(arena.bytes_allocated(), 64u);
  EXPECT_EQ(arena.Allocate(128), b);
}

TEST(RoundArenaTest, OversizedRequestFallsBackToHeap) {
  RoundArena arena;
  EXPECT_EQ(arena.Allocate(RoundArena::kMaxChunkBytes), nullptr);
  EXPECT_EQ(arena.heap_fallbacks(), 1u);
}

TEST(ArenaScopeTest, InstallsAndRestoresThreadLocal) {
  EXPECT_EQ(CurrentArena(), nullptr);
  RoundArena outer_arena;
  {
    ArenaScope outer(&outer_arena);
    EXPECT_EQ(CurrentArena(), &outer_arena);
    RoundArena inner_arena;
    {
      ArenaScope inner(&inner_arena);
      EXPECT_EQ(CurrentArena(), &inner_arena);
    }
    EXPECT_EQ(CurrentArena(), &outer_arena);
    {
      ArenaScope off(nullptr);
      EXPECT_EQ(CurrentArena(), nullptr);
    }
    EXPECT_EQ(CurrentArena(), &outer_arena);
  }
  EXPECT_EQ(CurrentArena(), nullptr);
}

// Spills a set past the inline capacity (2 intervals) so its storage
// lives wherever the active arena policy puts it.
IntervalSet SpilledSet(int n) {
  IntervalSet s;
  for (int i = 0; i < n; ++i) {
    s.Add(*Interval::Make(Bound::Closed(Rational(3 * i)),
                          Bound::Closed(Rational(3 * i + 1))));
  }
  return s;
}

TEST(ArenaIntervalSetTest, UnpinnedSpillLandsInTheArena) {
  RoundArena arena;
  ArenaScope scope(&arena);
  IntervalSet s = SpilledSet(16);
  EXPECT_EQ(s.size(), 16u);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.heap_fallbacks(), 0u);
}

TEST(ArenaIntervalSetTest, DyingTransientHandsItsBufferBack) {
  RoundArena arena;
  ArenaScope scope(&arena);
  size_t before = arena.bytes_allocated();
  const void* first_buffer = nullptr;
  {
    IntervalSet s = SpilledSet(16);
    first_buffer = s.intervals().data();
  }
  // The temporary died as the arena tail, so its storage was rewound and
  // the next spill lands on the same bytes instead of streaming onward.
  EXPECT_EQ(arena.bytes_allocated(), before);
  IntervalSet again = SpilledSet(16);
  EXPECT_EQ(static_cast<const void*>(again.intervals().data()), first_buffer);
}

TEST(ArenaIntervalSetTest, MarkPersistentMigratesOffTheArena) {
  RoundArena arena;
  IntervalSet expected;
  IntervalSet pinned;
  {
    ArenaScope scope(&arena);
    pinned = SpilledSet(16);
    expected = SpilledSet(16);
    expected.MarkPersistent();
    pinned.MarkPersistent();  // copies arena storage to the heap
  }
  arena.Reset();
  // Scribble over the rewound arena; a set still referencing it would read
  // this garbage instead of its intervals.
  for (int i = 0; i < 256; ++i) arena.Allocate(64);
  EXPECT_EQ(pinned, expected);
  EXPECT_EQ(pinned.size(), 16u);
}

TEST(ArenaIntervalSetTest, PinnedSetsGrowOnTheHeapAndCountFallbacks) {
  RoundArena arena;
  ArenaScope scope(&arena);
  IntervalSet pinned;
  pinned.MarkPersistent();
  for (int i = 0; i < 16; ++i) {
    pinned.Add(*Interval::Make(Bound::Closed(Rational(3 * i)),
                               Bound::Closed(Rational(3 * i + 1))));
  }
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_GT(arena.heap_fallbacks(), 0u);
}

TEST(ArenaIntervalSetTest, MoveIntoPinnedDestinationDeepCopies) {
  RoundArena arena;
  IntervalSet dest;
  dest.MarkPersistent();
  IntervalSet expected = SpilledSet(16);
  {
    ArenaScope scope(&arena);
    IntervalSet transient = SpilledSet(16);  // arena-backed
    dest = std::move(transient);
  }
  arena.Reset();
  for (int i = 0; i < 256; ++i) arena.Allocate(64);
  EXPECT_EQ(dest, expected);
}

TEST(ArenaIntervalSetTest, ReleaseArenaStorageDropsWithoutCopy) {
  RoundArena arena;
  ArenaScope scope(&arena);
  IntervalSet s = SpilledSet(16);
  s.ReleaseArenaStorage();
  EXPECT_TRUE(s.IsEmpty());
  // The slot is reusable after the release.
  s.Add(Interval::Point(Rational(7)));
  EXPECT_EQ(s.size(), 1u);
}

}  // namespace
}  // namespace dmtl
