#include "src/common/execution_guard.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/fault_injector.h"

namespace dmtl {
namespace {

TEST(ExecutionGuardTest, DefaultGuardIsDisabledAndAlwaysOk) {
  ExecutionGuard guard;
  EXPECT_FALSE(guard.enabled());
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_FALSE(guard.Tripped());
  // Disabled guards do not count checks.
  EXPECT_EQ(guard.checks(), 0u);
}

TEST(ExecutionGuardTest, FarFutureDeadlineStaysOk) {
  ExecutionGuard guard(std::chrono::milliseconds(1000 * 60 * 60), nullptr);
  EXPECT_TRUE(guard.enabled());
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_GT(guard.checks(), 0u);
}

TEST(ExecutionGuardTest, ExpiredDeadlineTripsAndLatches) {
  ExecutionGuard guard(std::chrono::milliseconds(0), nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Status first = guard.Check();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kDeadlineExceeded);
  // Latching: same verdict on every later check.
  Status second = guard.Check();
  EXPECT_EQ(second.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(second.message(), first.message());
}

TEST(ExecutionGuardTest, CancellationTrips) {
  auto token = std::make_shared<CancellationToken>();
  ExecutionGuard guard(std::nullopt, token);
  EXPECT_TRUE(guard.enabled());
  EXPECT_TRUE(guard.Check().ok());
  token->Cancel();
  Status status = guard.Check();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(guard.Tripped());
}

TEST(ExecutionGuardTest, CancellationWinsWhenBothConditionsHold) {
  // Token checked before the deadline: with both tripped the latched reason
  // is deterministic (cancelled), whatever thread latches first here.
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  ExecutionGuard guard(std::chrono::milliseconds(0), token);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(guard.Check().code(), StatusCode::kCancelled);
}

TEST(ExecutionGuardTest, ConcurrentCheckersAgreeOnTheTrip) {
  auto token = std::make_shared<CancellationToken>();
  ExecutionGuard guard(std::nullopt, token);
  constexpr int kThreads = 8;
  std::vector<StatusCode> seen(kThreads, StatusCode::kOk);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&guard, &seen, t] {
      // Spin until the trip is observed.
      Status status;
      do {
        status = guard.Check();
      } while (status.ok());
      seen[t] = status.code();
    });
  }
  token->Cancel();
  for (std::thread& t : threads) t.join();
  for (StatusCode code : seen) EXPECT_EQ(code, StatusCode::kCancelled);
}

TEST(FaultInjectorTest, UnarmedSiteIsANoOp) {
  FaultInjector::Reset();
  EXPECT_TRUE(FaultInjector::Fire("seminaive.round").ok());
  EXPECT_NO_THROW(FaultInjector::MaybeThrow("database.insert_set"));
  EXPECT_EQ(FaultInjector::HitCount("seminaive.round"), 0u);
}

TEST(FaultInjectorTest, FiresExactlyOnKthHit) {
  FaultInjector::Reset();
  FaultInjector::Arm("test.site", 3, Status::EvalError("kaboom"));
  EXPECT_TRUE(FaultInjector::Fire("test.site").ok());
  EXPECT_TRUE(FaultInjector::Fire("test.site").ok());
  Status third = FaultInjector::Fire("test.site");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kEvalError);
  EXPECT_EQ(third.message(), "kaboom");
  // One-shot: the site passes again afterwards (retry paths rely on this).
  EXPECT_TRUE(FaultInjector::Fire("test.site").ok());
  EXPECT_EQ(FaultInjector::HitCount("test.site"), 4u);
  FaultInjector::Reset();
}

TEST(FaultInjectorTest, ThrowModeThrowsOnKthHit) {
  FaultInjector::Reset();
  FaultInjector::ArmThrow("test.throw", 2, "pop");
  EXPECT_NO_THROW(FaultInjector::MaybeThrow("test.throw"));
  EXPECT_THROW(FaultInjector::MaybeThrow("test.throw"), std::runtime_error);
  EXPECT_NO_THROW(FaultInjector::MaybeThrow("test.throw"));
  // Fire() on a throw-armed site also delivers by throwing.
  FaultInjector::ArmThrow("test.throw", 1, "pop again");
  EXPECT_THROW((void)FaultInjector::Fire("test.throw"), std::runtime_error);
  FaultInjector::Reset();
}

TEST(FaultInjectorTest, ResetDisarmsEverything) {
  FaultInjector::Arm("test.site", 1, Status::EvalError("armed"));
  FaultInjector::Reset();
  EXPECT_TRUE(FaultInjector::Fire("test.site").ok());
  EXPECT_EQ(FaultInjector::HitCount("test.site"), 0u);
  FaultInjector::Reset();
}

TEST(FaultInjectorTest, RearmingResetsTheCount) {
  FaultInjector::Reset();
  FaultInjector::Arm("test.site", 2, Status::EvalError("first arming"));
  EXPECT_TRUE(FaultInjector::Fire("test.site").ok());
  FaultInjector::Arm("test.site", 2, Status::EvalError("second arming"));
  EXPECT_TRUE(FaultInjector::Fire("test.site").ok());
  EXPECT_EQ(FaultInjector::Fire("test.site").message(), "second arming");
  FaultInjector::Reset();
}

}  // namespace
}  // namespace dmtl
