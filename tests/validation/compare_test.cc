#include "src/validation/compare.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

TEST(CompareTest, FrsSeriesStats) {
  std::vector<FrsPoint> a = {{1, 0.0}, {5, 1.0}, {9, 2.0}};
  std::vector<FrsPoint> b = {{1, 0.0}, {5, 1.0 + 1e-12}, {9, 2.0 - 3e-12}};
  auto cmp = CompareFrsSeries(a, b);
  ASSERT_TRUE(cmp.ok()) << cmp.status();
  EXPECT_EQ(cmp->n, 3u);
  EXPECT_NEAR(cmp->max_abs_diff, 3e-12, 1e-15);
  EXPECT_NEAR(cmp->mean_abs_diff, (1e-12 + 3e-12) / 3, 1e-15);
  EXPECT_NE(cmp->ToString().find("n=3"), std::string::npos);
}

TEST(CompareTest, FrsSeriesMismatchesRejected) {
  std::vector<FrsPoint> a = {{1, 0.0}};
  std::vector<FrsPoint> b = {{1, 0.0}, {2, 0.0}};
  EXPECT_FALSE(CompareFrsSeries(a, b).ok());
  std::vector<FrsPoint> c = {{2, 0.0}};
  EXPECT_FALSE(CompareFrsSeries(a, c).ok());
}

TradeSettlement Trade(const char* acc, int64_t t, double pnl, double fee,
                      double funding) {
  TradeSettlement s;
  s.account = acc;
  s.time = t;
  s.pnl = pnl;
  s.fee = fee;
  s.funding = funding;
  return s;
}

TEST(CompareTest, TradeErrorStats) {
  // Perturbations are exact powers of two so the subtraction loses nothing.
  const double dp = 0x1p-48;
  const double df = 0x1p-50;
  std::vector<TradeSettlement> ref = {Trade("a", 5, 1.0, 1.0, -0.5),
                                      Trade("b", 9, -3.0, 2.0, 0.25)};
  std::vector<TradeSettlement> datalog = {
      Trade("b", 9, -3.0, 2.0, 0.25 + df),
      Trade("a", 5, 1.0 + dp, 1.0, -0.5)};
  auto report = CompareTrades(ref, datalog);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->matched, 2u);
  EXPECT_DOUBLE_EQ(report->returns.mean, dp / 2);
  EXPECT_DOUBLE_EQ(report->returns.max_abs, dp);
  EXPECT_DOUBLE_EQ(report->fee.mean, 0.0);
  EXPECT_DOUBLE_EQ(report->funding.mean, df / 2);
  // Sample stddev over {0, dp} is nonzero.
  EXPECT_GT(report->returns.stddev, 0.0);
  EXPECT_NE(report->ToString().find("returns"), std::string::npos);
}

TEST(CompareTest, TradeSetMismatchRejected) {
  std::vector<TradeSettlement> ref = {Trade("a", 5, 1, 1, 1)};
  std::vector<TradeSettlement> missing = {};
  EXPECT_FALSE(CompareTrades(ref, missing).ok());
  std::vector<TradeSettlement> wrong_key = {Trade("a", 6, 1, 1, 1)};
  EXPECT_FALSE(CompareTrades(ref, wrong_key).ok());
}

TEST(CompareTest, EmptyTradeSetsCompareCleanly) {
  auto report = CompareTrades({}, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->matched, 0u);
  EXPECT_EQ(report->returns.n, 0u);
}

}  // namespace
}  // namespace dmtl
