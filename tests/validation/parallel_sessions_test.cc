#include "src/validation/parallel_sessions.h"

#include <gtest/gtest.h>

#include <set>

namespace dmtl {
namespace {

WorkloadConfig SmallBase() {
  WorkloadConfig base;
  base.name = "shardtest";
  base.num_events = 24;
  base.num_trades = 5;
  base.duration_s = 600;
  base.seed = 7;
  return base;
}

TEST(ShardConfigsTest, ProducesDistinctNamedShards) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 4);
  ASSERT_EQ(shards.size(), 4u);
  std::set<std::string> names;
  std::set<uint64_t> seeds;
  for (const WorkloadConfig& shard : shards) {
    names.insert(shard.name);
    seeds.insert(shard.seed);
    EXPECT_EQ(shard.num_events, 24);
    EXPECT_EQ(shard.num_trades, 5);
  }
  EXPECT_EQ(names.size(), 4u);
  EXPECT_EQ(seeds.size(), 4u);
  EXPECT_TRUE(ShardConfigs(SmallBase(), 0).empty());
}

TEST(ParallelSessionsTest, PoolWidthDoesNotChangeResults) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 3);

  ParallelSessionsOptions sequential;
  sequential.num_threads = 1;
  auto seq = RunParallelSessions(shards, sequential);
  ASSERT_TRUE(seq.ok()) << seq.status();

  ParallelSessionsOptions parallel;
  parallel.num_threads = 4;
  auto par = RunParallelSessions(shards, parallel);
  ASSERT_TRUE(par.ok()) << par.status();

  ASSERT_EQ(seq->size(), par->size());
  for (size_t i = 0; i < seq->size(); ++i) {
    EXPECT_EQ((*seq)[i].name, (*par)[i].name);
    EXPECT_EQ((*seq)[i].db.ToString(), (*par)[i].db.ToString())
        << "shard " << i << " diverged";
    EXPECT_EQ((*seq)[i].stats.derived_intervals,
              (*par)[i].stats.derived_intervals);
  }
}

TEST(ParallelSessionsTest, ResultsArriveInShardOrder) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 5);
  ParallelSessionsOptions options;
  options.num_threads = 4;
  auto results = RunParallelSessions(shards, options);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 5u);
  for (size_t i = 0; i < results->size(); ++i) {
    EXPECT_EQ((*results)[i].name, shards[i].name);
    EXPECT_GT((*results)[i].stats.derived_intervals, 0u);
    EXPECT_GT((*results)[i].db.NumIntervals(), 0u);
  }
}

TEST(ParallelSessionsTest, ShardErrorPropagates) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 3);
  // An infeasible shard: more trades than events can carry.
  shards[1].num_events = 2;
  shards[1].num_trades = 50;
  ParallelSessionsOptions options;
  options.num_threads = 4;
  auto results = RunParallelSessions(shards, options);
  EXPECT_FALSE(results.ok());
}

TEST(ParallelSessionsTest, EmptyShardListIsOk) {
  auto results = RunParallelSessions({}, {});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

}  // namespace
}  // namespace dmtl
