#include "src/validation/parallel_sessions.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>

#include "src/common/fault_injector.h"

namespace dmtl {
namespace {

WorkloadConfig SmallBase() {
  WorkloadConfig base;
  base.name = "shardtest";
  base.num_events = 24;
  base.num_trades = 5;
  base.duration_s = 600;
  base.seed = 7;
  return base;
}

TEST(ShardConfigsTest, ProducesDistinctNamedShards) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 4);
  ASSERT_EQ(shards.size(), 4u);
  std::set<std::string> names;
  std::set<uint64_t> seeds;
  for (const WorkloadConfig& shard : shards) {
    names.insert(shard.name);
    seeds.insert(shard.seed);
    EXPECT_EQ(shard.num_events, 24);
    EXPECT_EQ(shard.num_trades, 5);
  }
  EXPECT_EQ(names.size(), 4u);
  EXPECT_EQ(seeds.size(), 4u);
  EXPECT_TRUE(ShardConfigs(SmallBase(), 0).empty());
}

TEST(ParallelSessionsTest, PoolWidthDoesNotChangeResults) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 3);

  ParallelSessionsOptions sequential;
  sequential.num_threads = 1;
  auto seq = RunParallelSessions(shards, sequential);
  ASSERT_TRUE(seq.ok()) << seq.status();

  ParallelSessionsOptions parallel;
  parallel.num_threads = 4;
  auto par = RunParallelSessions(shards, parallel);
  ASSERT_TRUE(par.ok()) << par.status();

  ASSERT_EQ(seq->size(), par->size());
  for (size_t i = 0; i < seq->size(); ++i) {
    EXPECT_EQ((*seq)[i].name, (*par)[i].name);
    EXPECT_EQ((*seq)[i].db.ToString(), (*par)[i].db.ToString())
        << "shard " << i << " diverged";
    EXPECT_EQ((*seq)[i].stats.derived_intervals,
              (*par)[i].stats.derived_intervals);
  }
}

TEST(ParallelSessionsTest, ResultsArriveInShardOrder) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 5);
  ParallelSessionsOptions options;
  options.num_threads = 4;
  auto results = RunParallelSessions(shards, options);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 5u);
  for (size_t i = 0; i < results->size(); ++i) {
    EXPECT_EQ((*results)[i].name, shards[i].name);
    EXPECT_GT((*results)[i].stats.derived_intervals, 0u);
    EXPECT_GT((*results)[i].db.NumIntervals(), 0u);
  }
}

TEST(ParallelSessionsTest, ShardErrorIsIsolatedToItsShard) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 3);
  // An infeasible shard: more trades than events can carry.
  shards[1].num_events = 2;
  shards[1].num_trades = 50;
  ParallelSessionsOptions options;
  options.num_threads = 4;
  auto results = RunParallelSessions(shards, options);
  // The run itself succeeds; the failure lands in the shard's own report
  // and the sibling shards complete normally.
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 3u);
  EXPECT_FALSE((*results)[1].ok());
  EXPECT_FALSE((*results)[1].retried);
  for (size_t i : {size_t{0}, size_t{2}}) {
    EXPECT_TRUE((*results)[i].ok()) << (*results)[i].status;
    EXPECT_GT((*results)[i].db.NumIntervals(), 0u);
  }
}

TEST(ParallelSessionsTest, DeadlineTrippedShardReportsDiagnostics) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 3);
  ParallelSessionsOptions options;
  options.num_threads = 2;
  options.engine.deadline = std::chrono::milliseconds(0);
  auto results = RunParallelSessions(shards, options);
  ASSERT_TRUE(results.ok()) << results.status();
  for (const SessionShardResult& shard : *results) {
    EXPECT_FALSE(shard.ok());
    EXPECT_EQ(shard.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(shard.stats.stop_reason, StopReason::kDeadline);
  }
}

TEST(ParallelSessionsTest, RetryRecoversFaultedShard) {
  // One-shot fault on the first shard attempt; the degraded retry's own
  // attempt is a later hit and passes. Sequential pool so the hit order is
  // deterministic: shard 0 fails first, retries clean.
  FaultInjector::Reset();
  FaultInjector::Arm("parallel_sessions.shard", 1,
                     Status::Internal("injected shard fault"));
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 2);
  ParallelSessionsOptions options;
  options.num_threads = 1;
  options.retry_failed_sessions = true;
  auto results = RunParallelSessions(shards, options);
  FaultInjector::Reset();
  ASSERT_TRUE(results.ok()) << results.status();

  // Reference: the same shards with nothing armed.
  ParallelSessionsOptions clean = options;
  clean.retry_failed_sessions = false;
  auto reference = RunParallelSessions(shards, clean);
  ASSERT_TRUE(reference.ok()) << reference.status();

  const SessionShardResult& faulted = (*results)[0];
  EXPECT_TRUE(faulted.ok()) << faulted.status;
  EXPECT_TRUE(faulted.retried);
  EXPECT_EQ(faulted.first_attempt_status.code(), StatusCode::kInternal);
  EXPECT_EQ(faulted.db.ToString(), (*reference)[0].db.ToString());
  EXPECT_TRUE((*results)[1].ok());
  EXPECT_FALSE((*results)[1].retried);
  EXPECT_EQ((*results)[1].db.ToString(), (*reference)[1].db.ToString());
}

TEST(ParallelSessionsTest, CancelledShardsAreNeverRetried) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 2);
  ParallelSessionsOptions options;
  options.num_threads = 2;
  options.retry_failed_sessions = true;
  options.engine.cancel_token = std::make_shared<CancellationToken>();
  options.engine.cancel_token->Cancel();  // cancelled before the run starts
  auto results = RunParallelSessions(shards, options);
  ASSERT_TRUE(results.ok()) << results.status();
  for (const SessionShardResult& shard : *results) {
    EXPECT_FALSE(shard.ok());
    EXPECT_EQ(shard.status.code(), StatusCode::kCancelled);
    EXPECT_FALSE(shard.retried);
  }
}

TEST(ParallelSessionsTest, EmptyShardListIsOk) {
  auto results = RunParallelSessions({}, {});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

// Regression: these engine fields used to be silently overridden per shard
// (min/max from each shard's window, provenance nulled); now the conflict
// is an explicit error so callers learn their request cannot be honored.
TEST(ParallelSessionsTest, CallerWindowOverridesAreRejectedLoudly) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 1);

  ParallelSessionsOptions with_min;
  with_min.engine.min_time = Rational(0);
  auto min_result = RunParallelSessions(shards, with_min);
  ASSERT_FALSE(min_result.ok());
  EXPECT_EQ(min_result.status().code(), StatusCode::kInvalidArgument);

  ParallelSessionsOptions with_max;
  with_max.engine.max_time = Rational(100);
  auto max_result = RunParallelSessions(shards, with_max);
  ASSERT_FALSE(max_result.ok());
  EXPECT_EQ(max_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelSessionsTest, CallerProvenanceIsRejectedLoudly) {
  std::vector<WorkloadConfig> shards = ShardConfigs(SmallBase(), 1);
  std::vector<DerivationRecord> records;
  ParallelSessionsOptions options;
  options.engine.provenance = &records;
  auto results = RunParallelSessions(shards, options);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dmtl
