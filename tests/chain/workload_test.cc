#include "src/chain/workload.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

TEST(WorkloadTest, GeneratedSessionMatchesRequestedCounts) {
  WorkloadConfig cfg;
  cfg.num_events = 60;
  cfg.num_trades = 12;
  cfg.initial_skew = -500.0;
  auto session = GenerateSession(cfg);
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_EQ(session->events.size(), 60u);
  EXPECT_EQ(session->NumTrades(), 12u);
  EXPECT_DOUBLE_EQ(session->initial_skew, -500.0);
  EXPECT_EQ(session->duration(), cfg.duration_s);
  std::string error;
  EXPECT_TRUE(session->Validate(&error)) << error;
}

TEST(WorkloadTest, DeterministicUnderSeed) {
  WorkloadConfig cfg;
  cfg.num_events = 40;
  cfg.num_trades = 8;
  cfg.seed = 7;
  auto a = GenerateSession(cfg);
  auto b = GenerateSession(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->events.size(), b->events.size());
  for (size_t i = 0; i < a->events.size(); ++i) {
    EXPECT_EQ(a->events[i].ToString(), b->events[i].ToString());
  }
  cfg.seed = 8;
  auto c = GenerateSession(cfg);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (size_t i = 0; i < a->events.size() && i < c->events.size(); ++i) {
    if (a->events[i].ToString() != c->events[i].ToString()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, InfeasibleCountsRejected) {
  WorkloadConfig cfg;
  cfg.num_events = 10;
  cfg.num_trades = 8;  // needs >= 18 events
  EXPECT_FALSE(GenerateSession(cfg).ok());
  cfg.num_trades = -1;
  EXPECT_FALSE(GenerateSession(cfg).ok());
  cfg.num_trades = 2;
  cfg.duration_s = 60;
  EXPECT_FALSE(GenerateSession(cfg).ok());
}

TEST(WorkloadTest, PaperSessionsReproduceFigure3Rows) {
  auto configs = PaperSessions();
  ASSERT_EQ(configs.size(), 3u);
  const int expected_events[] = {267, 108, 128};
  const int expected_trades[] = {59, 16, 29};
  const double expected_skew[] = {-2445.98, 1302.88, 2502.85};
  for (size_t i = 0; i < configs.size(); ++i) {
    auto session = GenerateSession(configs[i]);
    ASSERT_TRUE(session.ok()) << session.status();
    EXPECT_EQ(session->events.size(),
              static_cast<size_t>(expected_events[i]));
    EXPECT_EQ(session->NumTrades(), static_cast<size_t>(expected_trades[i]));
    EXPECT_DOUBLE_EQ(session->initial_skew, expected_skew[i]);
    EXPECT_EQ(session->duration(), 7200);
    std::string error;
    EXPECT_TRUE(session->Validate(&error)) << error;
  }
}

TEST(WorkloadTest, PricePathCoversWindowAndStaysPositive) {
  WorkloadConfig cfg;
  cfg.num_events = 30;
  cfg.num_trades = 5;
  auto session = GenerateSession(cfg);
  ASSERT_TRUE(session.ok());
  ASSERT_FALSE(session->prices.empty());
  EXPECT_EQ(session->prices.front().time, session->start_time);
  for (const PricePoint& p : session->prices) {
    EXPECT_GT(p.price, 0.0);
    EXPECT_LT(p.time, session->end_time);
  }
  // The step lookup returns the last point at or before t.
  EXPECT_DOUBLE_EQ(session->PriceAt(session->start_time),
                   session->prices.front().price);
}

TEST(WorkloadTest, SessionValidateCatchesIllegalStreams) {
  WorkloadConfig cfg;
  cfg.num_events = 30;
  cfg.num_trades = 5;
  auto session = GenerateSession(cfg);
  ASSERT_TRUE(session.ok());
  Session bad = *session;
  // Duplicate same-account same-tick event.
  bad.events.push_back(bad.events.back());
  std::string error;
  EXPECT_FALSE(bad.Validate(&error));

  Session bad2 = *session;
  MarketEvent stray;
  stray.time = bad2.start_time;  // on the window boundary
  stray.kind = EventKind::kTransferMargin;
  stray.account = "zzz";
  stray.amount = 1.0;
  bad2.events.insert(bad2.events.begin(), stray);
  EXPECT_FALSE(bad2.Validate(&error));
}

// Parameterized sweep: the generator hits the requested counts exactly and
// produces valid sessions across a grid of shapes.
class WorkloadSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WorkloadSweepTest, CountsExactAndValid) {
  auto [events, trades, duration] = GetParam();
  WorkloadConfig cfg;
  cfg.num_events = events;
  cfg.num_trades = trades;
  cfg.duration_s = duration;
  cfg.seed = static_cast<uint64_t>(events * 31 + trades);
  auto session = GenerateSession(cfg);
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_EQ(session->events.size(), static_cast<size_t>(events));
  EXPECT_EQ(session->NumTrades(), static_cast<size_t>(trades));
  std::string error;
  EXPECT_TRUE(session->Validate(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorkloadSweepTest,
    ::testing::Values(std::make_tuple(6, 1, 600),
                      std::make_tuple(10, 0, 900),
                      std::make_tuple(25, 5, 1200),
                      std::make_tuple(60, 25, 3600),
                      std::make_tuple(108, 16, 7200),
                      std::make_tuple(267, 59, 7200),
                      std::make_tuple(400, 150, 7200),
                      std::make_tuple(1000, 300, 14400)));

TEST(EventsTest, ToStringAndKinds) {
  MarketEvent e;
  e.time = 7;
  e.kind = EventKind::kModifyPosition;
  e.account = "acc";
  e.amount = -0.5;
  EXPECT_EQ(e.ToString(), "modPos(acc, -0.5)@7");
  EXPECT_STREQ(EventKindToString(EventKind::kWithdraw), "withdraw");
}

}  // namespace
}  // namespace dmtl
