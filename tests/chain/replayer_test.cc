#include "src/chain/replayer.h"

#include <gtest/gtest.h>

#include "src/chain/workload.h"

namespace dmtl {
namespace {

Session SmallSession() {
  WorkloadConfig cfg;
  cfg.num_events = 20;
  cfg.num_trades = 4;
  cfg.initial_skew = 123.5;
  auto session = GenerateSession(cfg);
  EXPECT_TRUE(session.ok()) << session.status();
  return *session;
}

TEST(ReplayerTest, WindowMarksAndInitialState) {
  Session s = SmallSession();
  Database db = SessionToDatabase(s);
  EXPECT_TRUE(db.Holds("start", {}, Rational(s.start_time)));
  EXPECT_TRUE(db.Holds("marketEnd", {}, Rational(s.end_time)));
  EXPECT_TRUE(db.Holds("skew", {Value::Double(123.5)},
                       Rational(s.start_time)));
  EXPECT_TRUE(db.Holds("frs", {Value::Double(0.0)}, Rational(s.start_time)));
}

TEST(ReplayerTest, EveryEventBecomesOneFact) {
  Session s = SmallSession();
  Database db = SessionToDatabase(s);
  size_t method_facts = 0;
  for (const char* pred : {"tranM", "withdraw", "modPos", "closePos"}) {
    const Relation* rel = db.Find(pred);
    if (rel != nullptr) method_facts += rel->NumIntervals();
  }
  EXPECT_EQ(method_facts, s.events.size());
  // Spot-check one event.
  const MarketEvent& e = s.events.front();
  ASSERT_EQ(e.kind, EventKind::kTransferMargin);
  EXPECT_TRUE(db.Holds("tranM",
                       {Value::Symbol(e.account), Value::Double(e.amount)},
                       Rational(e.time)));
}

TEST(ReplayerTest, PriceStepFunctionCoversWholeWindow) {
  Session s = SmallSession();
  Database db = SessionToDatabase(s);
  const Relation* price = db.Find("price");
  ASSERT_NE(price, nullptr);
  // At every second of the window exactly one price holds, and it matches
  // the session's step lookup.
  for (int64_t t = s.start_time; t <= s.end_time; t += 97) {
    int holders = 0;
    double value = 0;
    for (const auto& [tuple, set] : price->data()) {
      if (set.Contains(Rational(t))) {
        ++holders;
        value = tuple[0].AsDouble();
      }
    }
    EXPECT_EQ(holders, 1) << "t=" << t;
    EXPECT_DOUBLE_EQ(value, s.PriceAt(t)) << "t=" << t;
  }
}

TEST(ReplayerTest, EngineOptionsClampToWindow) {
  Session s = SmallSession();
  EngineOptions options = SessionEngineOptions(s);
  ASSERT_TRUE(options.min_time.has_value());
  ASSERT_TRUE(options.max_time.has_value());
  EXPECT_EQ(*options.min_time, Rational(s.start_time));
  EXPECT_EQ(*options.max_time, Rational(s.end_time));
}

}  // namespace
}  // namespace dmtl
