// Unified session API contract: EngineSession::Create resolves to the
// streaming or batch implementation behind one vocabulary, both shapes obey
// the same external semantics, option conflicts fail loudly, and the compat
// wrappers (StreamingOptions, AdvanceTo/SlideTo) still compile and agree.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/engine/session.h"
#include "src/parser/parser.h"
#include "src/storage/serialize.h"
#include "src/streaming/session.h"

namespace dmtl {
namespace {

Program TestProgram() {
  auto unit = Parser::Parse("q(X) :- diamondminus[0,2] p(X) .\n");
  EXPECT_TRUE(unit.ok()) << unit.status();
  return unit->program;
}

SessionOptions Opts(int64_t start) {
  SessionOptions options;
  options.start_time = Rational(start);
  return options;
}

// Drives the same schedule through a session created with the given
// options and returns the final database text.
std::string DriveSchedule(const Program& program,
                          const SessionOptions& options) {
  auto session = EngineSession::Create(program, options);
  EXPECT_TRUE(session.ok()) << session.status();
  EngineSession& s = **session;
  EXPECT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("a")},
                                Interval::Closed(Rational(1), Rational(3))))
                  .ok());
  EXPECT_TRUE(s.Advance(Rational(4)).ok());
  EXPECT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("b")},
                                Interval::Point(Rational(6))))
                  .ok());
  EXPECT_TRUE(s.Advance(Rational(8)).ok());
  EXPECT_TRUE(s.Slide(Rational(2)).ok());
  EXPECT_EQ(s.watermark(), Rational(8));
  EXPECT_EQ(s.window_min(), Rational(2));
  return SerializeDatabase(s.db());
}

TEST(EngineSessionTest, StreamingAndBatchShapesAgreeByteForByte) {
  Program program = TestProgram();
  SessionOptions streaming = Opts(0);
  streaming.engine.enable_streaming = true;
  SessionOptions batch = Opts(0);
  batch.engine.enable_streaming = false;
  std::string streamed = DriveSchedule(program, streaming);
  EXPECT_EQ(streamed, DriveSchedule(program, batch));
  EXPECT_NE(streamed.find("q(a)"), std::string::npos);
  EXPECT_NE(streamed.find("q(b)"), std::string::npos);
}

TEST(EngineSessionTest, StringPushStepConvenienceOverloadWorks) {
  Program program = TestProgram();
  auto session = EngineSession::Create(program, Opts(0));
  ASSERT_TRUE(session.ok()) << session.status();
  EngineSession& s = **session;
  ASSERT_TRUE(s.PushStep("p", {Value::Symbol("a")}, Rational(1)).ok());
  ASSERT_TRUE(s.Advance(Rational(3)).ok());
  EXPECT_NE(SerializeDatabase(s.db()).find("q(a)"), std::string::npos);
}

TEST(EngineSessionTest, ManagedEngineWindowOptionsAreRejected) {
  Program program = TestProgram();
  SessionOptions with_min = Opts(0);
  with_min.engine.min_time = Rational(1);
  EXPECT_FALSE(EngineSession::Create(program, with_min).ok());

  SessionOptions with_max = Opts(0);
  with_max.engine.max_time = Rational(10);
  EXPECT_FALSE(EngineSession::Create(program, with_max).ok());

  std::vector<DerivationRecord> records;
  SessionOptions with_prov = Opts(0);
  with_prov.engine.provenance = &records;
  EXPECT_FALSE(EngineSession::Create(program, with_prov).ok());

  SessionOptions bad_horizon = Opts(0);
  bad_horizon.horizon = Rational(0);
  EXPECT_FALSE(EngineSession::Create(program, bad_horizon).ok());
}

TEST(EngineSessionTest, SnapshotRestoreThroughTheFacade) {
  Program program = TestProgram();
  auto session = EngineSession::Create(program, Opts(0));
  ASSERT_TRUE(session.ok()) << session.status();
  EngineSession& s = **session;
  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("a")},
                                Interval::Closed(Rational(1), Rational(3))))
                  .ok());
  ASSERT_TRUE(s.Advance(Rational(4)).ok());
  auto snap = s.Snapshot();
  ASSERT_TRUE(snap.ok()) << snap.status();

  auto restored = EngineSession::Restore(program, Opts(0), *snap);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(SerializeDatabase((*restored)->db()), SerializeDatabase(s.db()));
  EXPECT_EQ((*restored)->watermark(), s.watermark());

  // A snapshot never restores against a different rule set.
  auto other = Parser::Parse("q(X) :- diamondminus[0,3] p(X) .\n");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(EngineSession::Restore(other->program, Opts(0), *snap).ok());
}

TEST(EngineSessionTest, CompatAliasesStillCompileAndAgree) {
  // One PR of grace for pre-facade callers: StreamingOptions is
  // SessionOptions, and AdvanceTo/SlideTo forward to Advance/Slide.
  Program program = TestProgram();
  StreamingOptions options = Opts(0);
  auto session = StreamingSession::Create(program, options);
  ASSERT_TRUE(session.ok()) << session.status();
  StreamingSession& s = **session;
  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("a")},
                                Interval::Closed(Rational(1), Rational(3))))
                  .ok());
  ASSERT_TRUE(s.AdvanceTo(Rational(4)).ok());
  ASSERT_TRUE(s.SlideTo(Rational(1)).ok());
  EXPECT_EQ(s.watermark(), Rational(4));
  EXPECT_EQ(s.window_min(), Rational(1));

  // The concrete type is usable through the facade pointer.
  EngineSession* facade = &s;
  ASSERT_TRUE(facade->Advance(Rational(5)).ok());
  EXPECT_EQ(facade->watermark(), Rational(5));
}

}  // namespace
}  // namespace dmtl
