#include "src/engine/reasoner.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

TEST(ReasonerTest, MaterializeAugmentsDatabase) {
  auto unit = Parser::Parse("q(X) :- p(X) .\n p(a)@[1,3] .");
  ASSERT_TRUE(unit.ok());
  Database db = unit->database;
  Reasoner reasoner;
  auto stats = reasoner.Materialize(unit->program, &db);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(db.Holds("q", {Value::Symbol("a")}, Rational(2)));
}

TEST(ReasonerTest, RunParsesAndMaterializes) {
  Database input;
  input.Insert("p", {Value::Symbol("a")},
               Interval::Closed(Rational(1), Rational(3)));
  Reasoner reasoner;
  auto db = reasoner.Run("q(X) :- p(X) .", input);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(db->Holds("q", {Value::Symbol("a")}, Rational(1)));
  // Errors propagate.
  EXPECT_FALSE(reasoner.Run("q(X) :- p(X)", input).ok());
}

TEST(ReasonerTest, TuplesAtFiltersByTime) {
  auto unit = Parser::Parse(
      "margin(acc, 97.0)@[0, 5) .\n"
      "margin(acc, 100.0)@[5, 9] .\n"
      "margin(bob, 12.0)@[0, 9] .");
  ASSERT_TRUE(unit.ok());
  const Database& db = unit->database;
  auto at4 = Reasoner::TuplesAt(db, "margin", Rational(4));
  ASSERT_EQ(at4.size(), 2u);
  // Deterministic order: sorted tuples.
  EXPECT_EQ(at4[0][0].AsSymbolName(), "acc");
  EXPECT_DOUBLE_EQ(at4[0][1].AsDouble(), 97.0);
  auto at6 = Reasoner::TuplesAt(db, "margin", Rational(6));
  ASSERT_EQ(at6.size(), 2u);
  EXPECT_DOUBLE_EQ(at6[0][1].AsDouble(), 100.0);
  EXPECT_TRUE(Reasoner::TuplesAt(db, "none", Rational(0)).empty());
}

TEST(ReasonerTest, EntailsCheckedAgainstMaterialization) {
  auto unit = Parser::Parse(
      "q(X) :- p(X) .\n"
      "r(X) :- boxminus[0,2] p(X) .\n"
      "p(a)@[1, 6] .");
  ASSERT_TRUE(unit.ok());
  Database db = unit->database;
  Reasoner reasoner;
  ASSERT_TRUE(reasoner.Materialize(unit->program, &db).ok());

  Tuple a = {Value::Symbol("a")};
  EXPECT_TRUE(Reasoner::Entails(db, "q", a,
                                Interval::Closed(Rational(2), Rational(5))));
  EXPECT_FALSE(Reasoner::Entails(db, "q", a,
                                 Interval::Closed(Rational(2), Rational(7))));
  EXPECT_TRUE(Reasoner::Entails(db, "r", a,
                                Interval::Closed(Rational(3), Rational(6))));
  EXPECT_FALSE(Reasoner::Entails(db, "r", a, Interval::Point(Rational(2))));
  EXPECT_FALSE(Reasoner::Entails(db, "missing", a,
                                 Interval::Point(Rational(1))));

  // Textual form.
  auto yes = Reasoner::Entails(db, "q(a)@[2, 5] .");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = Reasoner::Entails(db, "q(b)@[2, 5] .");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
  EXPECT_FALSE(Reasoner::Entails(db, "not a fact").ok());
  EXPECT_FALSE(Reasoner::Entails(db, "q(a)@1 . q(a)@2 .").ok());
}

TEST(ReasonerTest, SeriesSortsByStartTime) {
  auto unit = Parser::Parse(
      "frs(0.0)@[0, 3) .\n"
      "frs(1.5)@[3, 7) .\n"
      "frs(0.9)@[7, 9] .");
  ASSERT_TRUE(unit.ok());
  auto series = Reasoner::Series(unit->database, "frs");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].first, Rational(0));
  EXPECT_DOUBLE_EQ(series[0].second[0].AsDouble(), 0.0);
  EXPECT_EQ(series[1].first, Rational(3));
  EXPECT_DOUBLE_EQ(series[1].second[0].AsDouble(), 1.5);
  EXPECT_EQ(series[2].first, Rational(7));
  EXPECT_DOUBLE_EQ(series[2].second[0].AsDouble(), 0.9);
}

}  // namespace
}  // namespace dmtl
