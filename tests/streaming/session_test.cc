// Streaming correctness contract: after any sequence of pushes, advances
// and window slides, the live session's database, Series() output, and
// per-tuple provenance coverage must be byte-identical to one cold batch
// materialization over the same logged inputs and window - at every
// checkpoint, at every thread width. The fuzz lane drives randomized
// programs through randomized streams with mid-stream retractions; the
// fault test proves a failed advance heals transparently.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/chain/replayer.h"
#include "src/chain/workload.h"
#include "src/common/fault_injector.h"
#include "src/contracts/eth_perp_program.h"
#include "src/engine/reasoner.h"
#include "src/eval/incremental.h"
#include "src/parser/parser.h"
#include "src/storage/serialize.h"
#include "src/streaming/session.h"

namespace dmtl {
namespace {

// Canonical per-tuple provenance coverage: the records' pieces unioned and
// printed per (predicate, tuple). Streaming and cold runs derive through
// different rule/round schedules, so the record lists differ - but the
// coverage union is part of the equivalence contract.
std::string ProvenanceCoverage(const std::vector<DerivationRecord>& records) {
  std::map<std::string, IntervalSet> coverage;
  for (const DerivationRecord& r : records) {
    coverage[PredicateName(r.predicate) + TupleToString(r.tuple)].UnionWith(
        IntervalSet(r.piece));
  }
  std::ostringstream out;
  for (const auto& [key, set] : coverage) {
    out << key << " @ " << set.ToString() << "\n";
  }
  return out.str();
}

std::string SeriesText(const Database& db, std::string_view pred) {
  std::ostringstream out;
  for (const auto& [t, tuple] : Reasoner::Series(db, pred)) {
    out << t << " " << TupleToString(tuple) << "\n";
  }
  return out.str();
}

void ExpectMatchesColdReplay(const StreamingSession& session,
                             std::string_view series_pred,
                             const std::string& label) {
  auto cold = session.ColdReplay();
  ASSERT_TRUE(cold.ok()) << label << ": " << cold.status();
  EXPECT_EQ(SerializeDatabase(session.db()), SerializeDatabase(cold->db))
      << label << ": database diverged from cold replay";
  EXPECT_EQ(SeriesText(session.db(), series_pred),
            SeriesText(cold->db, series_pred))
      << label << ": Series() diverged from cold replay";
  EXPECT_EQ(ProvenanceCoverage(session.provenance()),
            ProvenanceCoverage(cold->provenance))
      << label << ": provenance coverage diverged from cold replay";
}

StreamingOptions Opts(int64_t start, int threads = 1) {
  StreamingOptions options;
  options.start_time = Rational(start);
  options.engine.num_threads = threads;
  return options;
}

TEST(StreamingSessionTest, IncrementalAdvanceMatchesColdReplay) {
  auto unit = Parser::Parse(
      "q(X) :- diamondminus[0,2] p(X) .\n"
      "r(X) :- boxminus[1,1] q(X), not p(X) .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto session = StreamingSession::Create(unit->program, Opts(0));
  ASSERT_TRUE(session.ok()) << session.status();
  StreamingSession& s = **session;

  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("a")},
                                Interval::Closed(Rational(1), Rational(3))))
                  .ok());
  ASSERT_TRUE(s.AdvanceTo(Rational(4)).ok());
  EXPECT_EQ(s.watermark(), Rational(4));
  EXPECT_EQ(s.window_min(), Rational(0));
  ExpectMatchesColdReplay(s, "q", "after first advance");

  // q extends 2 past p's end; the advance band must pick that up with no
  // new inputs at all.
  ASSERT_TRUE(s.AdvanceTo(Rational(6)).ok());
  ExpectMatchesColdReplay(s, "q", "advance without fresh input");

  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("b")},
                                Interval::Point(Rational(7))))
                  .ok());
  ASSERT_TRUE(s.AdvanceTo(Rational(9)).ok());
  ExpectMatchesColdReplay(s, "q", "after second fact");
}

TEST(StreamingSessionTest, RecursiveChainStreamsAcrossAdvances) {
  // A chain rule extends one step per round; streamed advances must keep
  // extending it across watermark boundaries exactly as a batch run would.
  auto unit = Parser::Parse(
      "d(X) :- p(X) .\n"
      "d(X) :- diamondminus[2,2] d(X), not stop(X) .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto session = StreamingSession::Create(unit->program, Opts(0));
  ASSERT_TRUE(session.ok()) << session.status();
  StreamingSession& s = **session;

  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("a")},
                                Interval::Point(Rational(1))))
                  .ok());
  for (int64_t t = 2; t <= 20; t += 3) {
    ASSERT_TRUE(s.AdvanceTo(Rational(t)).ok()) << "advance to " << t;
    ExpectMatchesColdReplay(s, "d", "chain at t=" + std::to_string(t));
  }
}

TEST(StreamingSessionTest, SlideRetractsAndRederives) {
  auto unit = Parser::Parse(
      "q(X) :- diamondminus[0,3] p(X) .\n"
      "r(X) :- boxminus[1,2] q(X) .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto session = StreamingSession::Create(unit->program, Opts(0));
  ASSERT_TRUE(session.ok()) << session.status();
  StreamingSession& s = **session;

  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("a")},
                                Interval::Closed(Rational(1), Rational(2))))
                  .ok());
  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("b")},
                                Interval::Point(Rational(6))))
                  .ok());
  ASSERT_TRUE(s.AdvanceTo(Rational(10)).ok());
  ExpectMatchesColdReplay(s, "q", "before slide");

  ASSERT_TRUE(s.SlideTo(Rational(4)).ok());
  EXPECT_EQ(s.window_min(), Rational(4));
  // p(a)'s coverage is gone from the log; q/r derived from it must be gone
  // from the store, including the parts above the new minimum.
  ExpectMatchesColdReplay(s, "q", "after slide");

  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("c")},
                                Interval::Point(Rational(11))))
                  .ok());
  ASSERT_TRUE(s.AdvanceTo(Rational(12)).ok());
  ExpectMatchesColdReplay(s, "q", "advance after slide");
}

TEST(StreamingSessionTest, HorizonAutoSlides) {
  auto unit = Parser::Parse("q(X) :- diamondminus[0,1] p(X) .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  StreamingOptions options = Opts(0);
  options.horizon = Rational(5);
  auto session = StreamingSession::Create(unit->program, options);
  ASSERT_TRUE(session.ok()) << session.status();
  StreamingSession& s = **session;

  for (int64_t t = 1; t <= 12; ++t) {
    ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("a")},
                                  Interval::Point(Rational(t))))
                    .ok());
    ASSERT_TRUE(s.AdvanceTo(Rational(t)).ok());
    if (t > 5) {
      EXPECT_EQ(s.window_min(), Rational(t - 5)) << "at t=" << t;
    }
  }
  ExpectMatchesColdReplay(s, "q", "horizon steady state");
}

TEST(StreamingSessionTest, StepChannelsMatchBatchStepFunctions) {
  auto unit = Parser::Parse("q(X) :- diamondminus[0,2] price(X) .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto session = StreamingSession::Create(unit->program, Opts(0));
  ASSERT_TRUE(session.ok()) << session.status();
  StreamingSession& s = **session;

  ASSERT_TRUE(s.PushStep("price", {Value::Double(10.0)}, Rational(0)).ok());
  ASSERT_TRUE(s.AdvanceTo(Rational(3)).ok());
  ExpectMatchesColdReplay(s, "q", "open channel at first watermark");

  // Same value steps again: the channel just continues.
  ASSERT_TRUE(s.PushStep("price", {Value::Double(10.0)}, Rational(4)).ok());
  ASSERT_TRUE(s.PushStep("price", {Value::Double(12.5)}, Rational(5)).ok());
  ASSERT_TRUE(s.AdvanceTo(Rational(7)).ok());
  ExpectMatchesColdReplay(s, "q", "after value change");

  // The closed step's coverage is exactly ClosedOpen(0, 5).
  const Relation* price = s.db().Find("price");
  ASSERT_NE(price, nullptr);
  const IntervalSet* old_step = price->Find({Value::Double(10.0)});
  ASSERT_NE(old_step, nullptr);
  EXPECT_EQ(*old_step,
            IntervalSet(Interval::ClosedOpen(Rational(0), Rational(5))));

  // Out-of-order steps are refused.
  EXPECT_FALSE(s.PushStep("price", {Value::Double(9.0)}, Rational(6)).ok());
}

TEST(StreamingSessionTest, FlushDisciplineAndWatermarkChecks) {
  auto unit = Parser::Parse("q(X) :- p(X) .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto session = StreamingSession::Create(unit->program, Opts(0));
  ASSERT_TRUE(session.ok()) << session.status();
  StreamingSession& s = **session;

  // Before the first advance, facts anywhere (even sub-window) are fine.
  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("a")},
                                Interval::Point(Rational(0))))
                  .ok());
  ASSERT_TRUE(s.AdvanceTo(Rational(5)).ok());
  // At or below the watermark: refused (it would change final coverage).
  EXPECT_FALSE(s.Push(Fact::Make("p", {Value::Symbol("b")},
                                 Interval::Point(Rational(5))))
                   .ok());
  EXPECT_FALSE(s.Push(Fact::Make("p", {Value::Symbol("b")},
                                 Interval::Closed(Rational(3), Rational(9))))
                   .ok());
  // Strictly above: accepted, including an open start at the watermark.
  ASSERT_TRUE(
      s.Push(Fact{InternPredicate("p"),
                  {Value::Symbol("b")},
                  *Interval::Make(Bound::Open(Rational(5)),
                                  Bound::Closed(Rational(6)))})
          .ok());
  // Advances cannot go backwards; slides cannot pass the watermark.
  EXPECT_FALSE(s.AdvanceTo(Rational(4)).ok());
  EXPECT_FALSE(s.SlideTo(Rational(9)).ok());
  EXPECT_FALSE(s.SlideTo(Rational(0)).ok());
}

TEST(StreamingSessionTest, IneligibleProgramsAreRefusedAtCreate) {
  for (const char* text : {
           // future operator
           "q(X) :- diamondplus[0,2] p(X) .\n",
           // since / until
           "q(X) :- p(X) since[0,3] r(X) .\n",
           // no positive relational atom
           "q(X) :- not p(X), X = 1 .\n",
       }) {
    auto unit = Parser::Parse(text);
    if (!unit.ok()) continue;  // parser-level rejection also acceptable
    auto session = StreamingSession::Create(unit->program, Opts(0));
    EXPECT_FALSE(session.ok()) << "accepted ineligible program:\n" << text;
  }
}

TEST(StreamingSessionTest, FailedAdvanceHealsTransparently) {
  auto unit = Parser::Parse(
      "q(X) :- diamondminus[0,2] p(X) .\n"
      "r(X) :- boxminus[1,1] q(X) .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto session = StreamingSession::Create(unit->program, Opts(0));
  ASSERT_TRUE(session.ok()) << session.status();
  StreamingSession& s = **session;

  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("a")},
                                Interval::Closed(Rational(1), Rational(3))))
                  .ok());
  ASSERT_TRUE(s.AdvanceTo(Rational(4)).ok());

  ASSERT_TRUE(s.Push(Fact::Make("p", {Value::Symbol("b")},
                                Interval::Point(Rational(6))))
                  .ok());
  FaultInjector::Arm("seminaive.round", 1,
                     Status::Internal("injected round failure"));
  Status failed = s.AdvanceTo(Rational(8));
  FaultInjector::Reset();
  if (s.streaming_enabled()) {
    EXPECT_FALSE(failed.ok());
    // The watermark did not move; the store rolled back to the barrier.
    EXPECT_EQ(s.watermark(), Rational(4));
  }
  // The next operation heals (cold rebuild) and completes normally.
  ASSERT_TRUE(s.AdvanceTo(Rational(8)).ok());
  ExpectMatchesColdReplay(s, "q", "after heal");
}

TEST(StreamingSessionTest, EthPerpSessionStreamMatchesBatchReplay) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  WorkloadConfig config;
  config.name = "stream-unit";
  config.duration_s = 600;
  config.num_events = 24;
  config.num_trades = 6;
  config.seed = 7;
  auto generated = GenerateSession(config);
  ASSERT_TRUE(generated.ok()) << generated.status();
  Session chain_session = *generated;

  StreamingOptions options;
  options.start_time = Rational(chain_session.start_time);
  auto session = StreamingSession::Create(*program, options);
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE(ReplaySessionStream(chain_session, session->get()).ok());

  Database batch = SessionToDatabase(chain_session);
  EngineStats stats;
  ASSERT_TRUE(Materialize(*program, &batch,
                          SessionEngineOptions(chain_session), &stats)
                  .ok());
  EXPECT_EQ(SerializeDatabase((*session)->db()), SerializeDatabase(batch))
      << "streamed ETH-PERP session diverged from the batch replay";
  ExpectMatchesColdReplay(**session, "frs", "eth-perp final checkpoint");
}

// ---------------------------------------------------------------------------
// Retraction-equivalence fuzz lane: random eligible programs, random fact
// streams, random horizons. Every K advances is a checkpoint compared
// byte-for-byte against a cold replay; mid-stream slides exercise
// retraction. The whole lane re-runs at each thread width, and under the
// DMTL_DISABLE_RULE_COMPILE / DMTL_DISABLE_DENSE_TIMELINE /
// DMTL_DISABLE_STREAMING environment lanes in CI.
// ---------------------------------------------------------------------------

// Same safe fragment the dense/parallel/differential suites fuzz -
// stratified boxminus/diamondminus recursion with negated guards - which is
// exactly the streaming-eligible fragment.
class StreamFuzzer {
 public:
  explicit StreamFuzzer(uint64_t seed) : rng_(seed) {}

  std::string GenerateProgram() {
    std::ostringstream out;
    int num_edb = 2 + Pick(2);
    int num_derived = 2 + Pick(3);
    for (int d = 0; d < num_derived; ++d) {
      out << "d" << d << "(X) :- " << LowerAtom(d, num_edb) << Guard(num_edb)
          << " .\n";
      int step = 1 + Pick(2);
      const char* op = Pick(2) == 0 ? "boxminus" : "diamondminus";
      out << "d" << d << "(X) :- " << op << "[" << step << "," << step
          << "] d" << d << "(X), not p0(X) .\n";
      if (Pick(2) == 0) {
        out << "d" << d << "(X) :- diamondminus[0," << (1 + Pick(3)) << "] "
            << LowerAtom(d, num_edb) << " .\n";
      }
    }
    return out.str();
  }

  std::vector<Fact> GenerateStream(int horizon) {
    std::vector<Fact> facts;
    int num_facts = 8 + Pick(10);
    for (int f = 0; f < num_facts; ++f) {
      int lo = 1 + Pick(horizon - 1);
      int hi = lo + Pick(4);
      facts.push_back(Fact::Make(
          "p" + std::to_string(Pick(3)),
          {Value::Symbol("c" + std::to_string(Pick(3)))},
          Interval::Closed(Rational(lo), Rational(hi))));
    }
    std::sort(facts.begin(), facts.end(), [](const Fact& a, const Fact& b) {
      return a.interval.lo().value < b.interval.lo().value;
    });
    return facts;
  }

  int Pick(int n) { return static_cast<int>(rng_() % n); }

 private:
  std::string LowerAtom(int d, int num_edb) {
    if (d > 0 && Pick(2) == 0) {
      return "d" + std::to_string(Pick(d)) + "(X)";
    }
    return "p" + std::to_string(Pick(num_edb)) + "(X)";
  }

  std::string Guard(int num_edb) {
    switch (Pick(3)) {
      case 0:
        return "";
      case 1:
        return ", not p" + std::to_string(Pick(num_edb)) + "(X)";
      default:
        return ", diamondminus[0,2] p" + std::to_string(Pick(num_edb)) +
               "(X)";
    }
  }

  std::mt19937_64 rng_;
};

class StreamingFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingFuzzTest, CheckpointsMatchColdReplay) {
  StreamFuzzer fuzzer(GetParam());
  const int kHorizon = 30;
  std::string text = fuzzer.GenerateProgram();
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\nprogram:\n" << text;
  // One shared stream per seed so all thread widths see identical events.
  std::vector<Fact> stream = fuzzer.GenerateStream(kHorizon);

  for (int threads : {1, 2, 8}) {
    StreamingOptions options = Opts(0, threads);
    auto session = StreamingSession::Create(unit->program, options);
    ASSERT_TRUE(session.ok()) << session.status() << "\nprogram:\n" << text;
    StreamingSession& s = **session;

    // Deterministic per-width RNG for advance strides and slide points.
    std::mt19937_64 rng(GetParam() * 977 + threads);
    size_t next = 0;
    int advances = 0;
    int64_t watermark = 0;
    bool slid = false;
    while (watermark < kHorizon + 8) {
      watermark += 1 + static_cast<int>(rng() % 4);
      while (next < stream.size() &&
             stream[next].interval.lo().value <= Rational(watermark)) {
        Status pushed = s.Push(stream[next]);
        ASSERT_TRUE(pushed.ok()) << pushed << "\nprogram:\n" << text;
        ++next;
      }
      Status advanced = s.AdvanceTo(Rational(watermark));
      ASSERT_TRUE(advanced.ok()) << advanced << "\nprogram:\n" << text;
      ++advances;
      std::string label = "seed=" + std::to_string(GetParam()) +
                          " threads=" + std::to_string(threads) +
                          " watermark=" + std::to_string(watermark);
      if (advances % 3 == 0) {
        ExpectMatchesColdReplay(s, "d0", label + " (checkpoint)");
      }
      // Two mid-stream slides per run, at randomized boundaries.
      if (watermark > 10 && (!slid || (advances % 5 == 0))) {
        Rational new_min(watermark - 8 - static_cast<int>(rng() % 3));
        if (s.window_min() < new_min && !(s.watermark() < new_min)) {
          Status slide = s.SlideTo(new_min);
          ASSERT_TRUE(slide.ok()) << slide << "\nprogram:\n" << text;
          slid = true;
          ExpectMatchesColdReplay(s, "d0", label + " (post-slide)");
        }
      }
    }
    ExpectMatchesColdReplay(
        s, "d0",
        "seed=" + std::to_string(GetParam()) +
            " threads=" + std::to_string(threads) + " (final)");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingFuzzTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace dmtl
