// Snapshot round-trip property: a session serialized mid-stream at a
// checkpoint, decoded fresh, and continued over the same schedule must end
// byte-identical - database text, Series() output, and provenance coverage
// - to an uninterrupted twin. Enforced at thread widths 1, 2, and 8, with a
// sliding window in play, and across the encode/decode text codec (not just
// the in-memory struct). A degraded restore (different engine knobs than
// the twin) must not change a single byte either.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/engine/reasoner.h"
#include "src/engine/session.h"
#include "src/fleet/workload.h"
#include "src/parser/parser.h"
#include "src/storage/serialize.h"
#include "src/storage/snapshot.h"

namespace dmtl {
namespace {

std::string ProvenanceCoverage(const std::vector<DerivationRecord>& records) {
  std::map<std::string, IntervalSet> coverage;
  for (const DerivationRecord& r : records) {
    coverage[PredicateName(r.predicate) + TupleToString(r.tuple)].UnionWith(
        IntervalSet(r.piece));
  }
  std::ostringstream out;
  for (const auto& [key, set] : coverage) {
    out << key << " @ " << set.ToString() << "\n";
  }
  return out.str();
}

std::string SeriesText(const Database& db, std::string_view pred) {
  std::ostringstream out;
  for (const auto& [t, tuple] : Reasoner::Series(db, pred)) {
    out << t << " " << TupleToString(tuple) << "\n";
  }
  return out.str();
}

Status Apply(EngineSession* s, const FleetOp& op) {
  switch (op.kind) {
    case FleetOp::Kind::kPush:
      return s->Push(op.fact);
    case FleetOp::Kind::kStep:
      return s->PushStep(op.predicate, op.args, op.t);
    case FleetOp::Kind::kAdvance:
      return s->Advance(op.t);
    case FleetOp::Kind::kSlide:
      return s->Slide(op.t);
  }
  return Status::Internal("unknown op");
}

// Runs the interrupted/uninterrupted comparison: drive `ops` through one
// session straight, and through another that is snapshotted at `cut`,
// round-tripped through the text codec, restored under `restore_options`,
// and continued. Both must land on identical bytes.
void ExpectRestartIsInvisible(const Program& program,
                              const std::vector<FleetOp>& ops, size_t cut,
                              const SessionOptions& options,
                              const SessionOptions& restore_options,
                              std::string_view series_pred,
                              const std::string& label) {
  auto twin = EngineSession::Create(program, options);
  ASSERT_TRUE(twin.ok()) << label << ": " << twin.status();
  for (const FleetOp& op : ops) {
    ASSERT_TRUE(Apply(twin->get(), op).ok()) << label;
  }

  auto first = EngineSession::Create(program, options);
  ASSERT_TRUE(first.ok()) << label << ": " << first.status();
  for (size_t i = 0; i < cut; ++i) {
    ASSERT_TRUE(Apply(first->get(), ops[i]).ok()) << label;
  }
  auto snap = (*first)->Snapshot();
  ASSERT_TRUE(snap.ok()) << label << ": " << snap.status();
  // Through the codec: what restarts see is the decoded text, never the
  // live struct.
  auto decoded = DecodeSnapshot(EncodeSnapshot(*snap));
  ASSERT_TRUE(decoded.ok()) << label << ": " << decoded.status();

  auto restored = EngineSession::Restore(program, restore_options, *decoded);
  ASSERT_TRUE(restored.ok()) << label << ": " << restored.status();
  for (size_t i = cut; i < ops.size(); ++i) {
    ASSERT_TRUE(Apply(restored->get(), ops[i]).ok()) << label;
  }

  EXPECT_EQ(SerializeDatabase((*restored)->db()),
            SerializeDatabase((*twin)->db()))
      << label << ": database diverged after warm restart";
  EXPECT_EQ(SeriesText((*restored)->db(), series_pred),
            SeriesText((*twin)->db(), series_pred))
      << label << ": Series() diverged after warm restart";
  EXPECT_EQ(ProvenanceCoverage((*restored)->provenance()),
            ProvenanceCoverage((*twin)->provenance()))
      << label << ": provenance coverage diverged after warm restart";
  EXPECT_EQ((*restored)->watermark(), (*twin)->watermark()) << label;
  EXPECT_EQ((*restored)->window_min(), (*twin)->window_min()) << label;
}

TEST(SnapshotRestoreTest, EthPerpMidStreamRestartAtEveryThreadWidth) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  WorkloadConfig config;
  config.name = "restore-unit";
  config.duration_s = 600;
  config.num_events = 24;
  config.num_trades = 6;
  config.seed = 7;
  auto session = GenerateSession(config);
  ASSERT_TRUE(session.ok()) << session.status();
  std::vector<FleetOp> ops = SessionToOps(*session);
  ASSERT_GT(ops.size(), 8u);

  for (int threads : {1, 2, 8}) {
    SessionOptions options;
    options.start_time = Rational(session->start_time);
    options.engine.num_threads = threads;
    for (size_t cut : {ops.size() / 3, ops.size() / 2, ops.size() - 1}) {
      ExpectRestartIsInvisible(
          program.value(), ops, cut, options, options, "frs",
          "eth-perp threads=" + std::to_string(threads) +
              " cut=" + std::to_string(cut));
    }
  }
}

TEST(SnapshotRestoreTest, DegradedRestoreIsStillByteIdentical) {
  // The eviction path restores with conservative engine knobs; bytes must
  // not care.
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  WorkloadConfig config;
  config.name = "restore-degraded";
  config.duration_s = 600;
  config.num_events = 16;
  config.num_trades = 4;
  config.seed = 11;
  auto session = GenerateSession(config);
  ASSERT_TRUE(session.ok()) << session.status();
  std::vector<FleetOp> ops = SessionToOps(*session);

  SessionOptions fast;
  fast.start_time = Rational(session->start_time);
  fast.engine.num_threads = 8;
  SessionOptions degraded = fast;
  degraded.engine.num_threads = 1;
  degraded.engine.enable_chain_acceleration = false;
  ExpectRestartIsInvisible(program.value(), ops, ops.size() / 2, fast,
                           degraded, "frs", "degraded restore");
}

TEST(SnapshotRestoreTest, SlidingWindowRestartRetainsRetraction) {
  // Snapshot after the window has slid: the restored session must keep the
  // clamped log and retracted coverage, and keep sliding identically.
  auto unit = Parser::Parse(
      "q(X) :- diamondminus[0,2] p(X) .\n"
      "r(X) :- boxminus[1,1] q(X), not p(X) .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();

  std::vector<FleetOp> ops;
  for (int t = 1; t <= 12; ++t) {
    ops.push_back(FleetOp::Push(Fact::Make(
        "p", {Value::Symbol(t % 2 == 0 ? "a" : "b")},
        Interval::Closed(Rational(t), Rational(t + 1)))));
    // Advance only to t: each push stays strictly above the watermark.
    ops.push_back(FleetOp::Advance(Rational(t)));
  }

  for (int threads : {1, 2, 8}) {
    SessionOptions options;
    options.start_time = Rational(0);
    options.horizon = Rational(4);  // auto-slide: retraction in play
    options.engine.num_threads = threads;
    for (size_t cut : {size_t{7}, size_t{15}, ops.size() - 2}) {
      ExpectRestartIsInvisible(
          unit->program, ops, cut, options, options, "q",
          "sliding threads=" + std::to_string(threads) +
              " cut=" + std::to_string(cut));
    }
  }
}

TEST(SnapshotRestoreTest, BatchModeSessionsRoundTripToo) {
  // The facade's batch shape honors the same snapshot contract.
  auto unit = Parser::Parse("q(X) :- diamondminus[0,2] p(X) .\n");
  ASSERT_TRUE(unit.ok()) << unit.status();
  std::vector<FleetOp> ops;
  for (int t = 1; t <= 6; ++t) {
    ops.push_back(FleetOp::Push(
        Fact::Make("p", {Value::Symbol("a")}, Interval::Point(Rational(t)))));
    ops.push_back(FleetOp::Advance(Rational(t)));
  }
  SessionOptions options;
  options.start_time = Rational(0);
  options.engine.enable_streaming = false;
  ExpectRestartIsInvisible(unit->program, ops, ops.size() / 2, options,
                           options, "q", "batch shape");
}

}  // namespace
}  // namespace dmtl
