// Fleet subsystem contract: the work-stealing scheduler runs every item's
// slices exactly once with single-owner execution; SessionToOps reproduces
// the interactive replay schedule; the FleetServer drains thousands of
// shared-nothing sessions to the same bytes a per-session batch
// materialization derives, isolates per-session failures, and warm-restarts
// evicted sessions from their snapshots.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "src/chain/replayer.h"
#include "src/chain/workload.h"
#include "src/common/fault_injector.h"
#include "src/common/thread_pool.h"
#include "src/contracts/eth_perp_program.h"
#include "src/fleet/scheduler.h"
#include "src/fleet/server.h"
#include "src/fleet/workload.h"
#include "src/storage/serialize.h"
#include "src/streaming/session.h"
#include "src/validation/parallel_sessions.h"

namespace dmtl {
namespace {

// Small deterministic trading windows: the fleet's scale axis is session
// count, so each hosted session is deliberately tiny.
WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.name = "fleet-test";
  config.duration_s = 600;
  config.num_events = 8;
  config.num_trades = 2;
  config.price.update_interval_s = 60;
  return config;
}

// The batch twin: one cold materialization over the session's database and
// window - the target every hosted session must hit byte-for-byte.
std::string BatchText(const Program& program, const Session& session) {
  Database db = SessionToDatabase(session);
  EngineOptions engine = SessionEngineOptions(session);
  Status run = Materialize(program, &db, engine);
  EXPECT_TRUE(run.ok()) << run;
  return SerializeDatabase(db);
}

TEST(WorkStealingSchedulerTest, RunsEverySliceWithSingleOwnerExecution) {
  const size_t kItems = 64;
  const size_t kWorkers = 8;
  // Skewed slice counts: item i needs i%7+1 slices, so deques drain at
  // different rates and stealing must kick in to finish.
  std::vector<std::atomic<int>> remaining(kItems);
  std::vector<std::atomic<bool>> in_flight(kItems);
  for (size_t i = 0; i < kItems; ++i) {
    remaining[i] = static_cast<int>(i % 7) + 1;
    in_flight[i] = false;
  }
  std::atomic<size_t> slices{0};

  WorkStealingScheduler scheduler(kItems, kWorkers);
  ThreadPool pool(kWorkers);
  scheduler.Run(&pool, [&](size_t item, size_t worker) {
    EXPECT_LT(worker, kWorkers);
    // The shared-nothing guarantee: no item is ever executed by two
    // workers at once.
    EXPECT_FALSE(in_flight[item].exchange(true));
    slices.fetch_add(1);
    bool more = remaining[item].fetch_sub(1) > 1;
    in_flight[item].store(false);
    return more;
  });

  size_t expected = 0;
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(remaining[i].load(), 0) << "item " << i;
    expected += i % 7 + 1;
  }
  EXPECT_EQ(slices.load(), expected);
}

TEST(WorkStealingSchedulerTest, InlineWhenSequential) {
  std::vector<int> hits(5, 0);
  WorkStealingScheduler scheduler(hits.size(), 1);
  scheduler.Run(nullptr, [&](size_t item, size_t worker) {
    EXPECT_EQ(worker, 0u);
    ++hits[item];
    return hits[item] < 2;
  });
  for (int h : hits) EXPECT_EQ(h, 2);
}

TEST(FleetWorkloadTest, SessionToOpsMatchesInteractiveReplay) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  auto session = GenerateSession(SmallConfig());
  ASSERT_TRUE(session.ok()) << session.status();

  // The reference: ReplaySessionStream driving a streaming session.
  SessionOptions sopts;
  sopts.start_time = Rational(session->start_time);
  sopts.track_provenance = false;
  auto replayed = StreamingSession::Create(program.value(), sopts);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ASSERT_TRUE(ReplaySessionStream(*session, replayed->get()).ok());

  // The same session compiled to FleetOps and fed op-by-op.
  auto driven = StreamingSession::Create(program.value(), sopts);
  ASSERT_TRUE(driven.ok()) << driven.status();
  EngineSession& s = **driven;
  for (const FleetOp& op : SessionToOps(*session)) {
    switch (op.kind) {
      case FleetOp::Kind::kPush:
        ASSERT_TRUE(s.Push(op.fact).ok());
        break;
      case FleetOp::Kind::kStep:
        ASSERT_TRUE(s.PushStep(op.predicate, op.args, op.t).ok());
        break;
      case FleetOp::Kind::kAdvance:
        ASSERT_TRUE(s.Advance(op.t).ok());
        break;
      case FleetOp::Kind::kSlide:
        ASSERT_TRUE(s.Slide(op.t).ok());
        break;
    }
  }
  EXPECT_EQ(SerializeDatabase(s.db()),
            SerializeDatabase((*replayed)->db()));
  EXPECT_EQ(s.watermark(), (*replayed)->watermark());
}

TEST(FleetServerTest, DrainMatchesPerSessionBatchMaterialization) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok()) << program.status();

  FleetOptions fopts;
  fopts.num_threads = 4;
  fopts.snapshot_every_advances = 4;
  auto server = FleetServer::Create(fopts);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->RegisterProgram("eth-perp", program.value()).ok());

  const int kSessions = 12;
  std::vector<Session> sessions;
  std::vector<SessionKey> keys;
  for (const WorkloadConfig& config : ShardConfigs(SmallConfig(), kSessions)) {
    auto session = GenerateSession(config);
    ASSERT_TRUE(session.ok()) << session.status();
    SessionKey key{"eth-perp", 0, config.name};
    ASSERT_TRUE(
        (*server)->Open(key, Rational(session->start_time)).ok());
    ASSERT_TRUE((*server)->Enqueue(key, SessionToOps(*session)).ok());
    sessions.push_back(*std::move(session));
    keys.push_back(key);
  }
  ASSERT_EQ((*server)->num_sessions(), static_cast<size_t>(kSessions));

  auto reports = (*server)->Drain();
  ASSERT_TRUE(reports.ok()) << reports.status();
  ASSERT_EQ(reports->size(), static_cast<size_t>(kSessions));
  for (int i = 0; i < kSessions; ++i) {
    const SessionReport& report = (*reports)[i];
    ASSERT_TRUE(report.ok()) << keys[i].ToString() << ": " << report.status;
    EXPECT_FALSE(report.retried);
    EXPECT_GT(report.advances, 0u);
    EXPECT_GE(report.snapshots_taken, 2u);  // initial + cadence
    EXPECT_EQ(report.advance_latencies_us.size(), report.advances);

    const EngineSession* hosted = (*server)->Find(keys[i]);
    ASSERT_NE(hosted, nullptr);
    EXPECT_EQ(SerializeDatabase(hosted->db()),
              BatchText(program.value(), sessions[i]))
        << keys[i].ToString() << " diverged from its batch twin";
  }
}

TEST(FleetServerTest, PassivationReleasesAndReactivatesWarm) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok());
  auto session = GenerateSession(SmallConfig());
  ASSERT_TRUE(session.ok());
  std::vector<FleetOp> ops = SessionToOps(*session);
  ASSERT_GT(ops.size(), 4u);

  FleetOptions fopts;
  fopts.num_threads = 1;
  fopts.passivate_drained = true;
  auto server = FleetServer::Create(fopts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->RegisterProgram("eth-perp", program.value()).ok());
  SessionKey key{"eth-perp", 0, "parked"};
  ASSERT_TRUE((*server)->Open(key, Rational(session->start_time)).ok());

  // Half the schedule, then drain: the queue empties and the live engine
  // is released behind a checkpoint.
  size_t half = ops.size() / 2;
  ASSERT_TRUE(
      (*server)
          ->Enqueue(key, std::vector<FleetOp>(ops.begin(), ops.begin() + half))
          .ok());
  auto first = (*server)->Drain();
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE((*first)[0].ok()) << (*first)[0].status;
  EXPECT_EQ((*server)->Find(key), nullptr)
      << "a drained session should be passivated";

  // The rest of the schedule reactivates it warm from the snapshot - no
  // eviction, no replay (the passivation checkpoint covers the whole log).
  ASSERT_TRUE(
      (*server)
          ->Enqueue(key, std::vector<FleetOp>(ops.begin() + half, ops.end()))
          .ok());
  auto second = (*server)->Drain();
  ASSERT_TRUE(second.ok()) << second.status();
  const SessionReport& report = (*second)[0];
  ASSERT_TRUE(report.ok()) << report.status;
  EXPECT_FALSE(report.retried);
  EXPECT_EQ(report.ops_replayed, 0u);
  EXPECT_EQ(report.ops_executed, ops.size());

  // The exported checkpoint restores to the batch twin's bytes: parking
  // and waking the session twice changed nothing.
  auto checkpoint = (*server)->Checkpoint(key);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  SessionOptions sopts;
  sopts.start_time = Rational(session->start_time);
  auto restored = EngineSession::Restore(program.value(), sopts, *checkpoint);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(SerializeDatabase((*restored)->db()),
            BatchText(program.value(), *session))
      << "passivated fleet session diverged from its batch twin";
}

TEST(FleetServerTest, RegistrationAndAdmissionErrors) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok());

  FleetOptions bad;
  bad.engine.min_time = Rational(0);
  EXPECT_FALSE(FleetServer::Create(bad).ok());
  std::vector<DerivationRecord> records;
  FleetOptions bad_prov;
  bad_prov.engine.provenance = &records;
  EXPECT_FALSE(FleetServer::Create(bad_prov).ok());

  auto server = FleetServer::Create(FleetOptions{});
  ASSERT_TRUE(server.ok());
  FleetServer& fleet = **server;
  ASSERT_TRUE(fleet.RegisterProgram("p", program.value()).ok());
  EXPECT_FALSE(fleet.RegisterProgram("p", program.value()).ok());

  SessionKey unknown{"nope", 0, "s0"};
  EXPECT_FALSE(fleet.Open(unknown, Rational(0)).ok());
  EXPECT_FALSE(fleet.Enqueue(unknown, {}).ok());
  EXPECT_EQ(fleet.Find(unknown), nullptr);

  SessionKey key{"p", 0, "s0"};
  ASSERT_TRUE(fleet.Open(key, Rational(0)).ok());
  EXPECT_FALSE(fleet.Open(key, Rational(0)).ok());
  // Open but never drained: no live session yet.
  EXPECT_EQ(fleet.Find(key), nullptr);
}

class FleetFaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Reset(); }
};

TEST_F(FleetFaultInjectionTest, EvictedSessionWarmRestartsByteIdentical) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok());
  auto session = GenerateSession(SmallConfig());
  ASSERT_TRUE(session.ok());

  FleetOptions fopts;
  fopts.num_threads = 1;
  fopts.snapshot_every_advances = 4;
  auto server = FleetServer::Create(fopts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->RegisterProgram("eth-perp", program.value()).ok());
  SessionKey key{"eth-perp", 0, "faulted"};
  ASSERT_TRUE(
      (*server)->Open(key, Rational(session->start_time)).ok());
  ASSERT_TRUE((*server)->Enqueue(key, SessionToOps(*session)).ok());

  // Fail one mid-stream fixpoint round: the session is evicted, restored
  // from its last snapshot, and replays its op tail.
  FaultInjector::Arm("seminaive.round", 40,
                     Status::Internal("injected round fault"));
  auto reports = (*server)->Drain();
  ASSERT_TRUE(reports.ok()) << reports.status();
  ASSERT_EQ(reports->size(), 1u);
  const SessionReport& report = (*reports)[0];
  ASSERT_TRUE(report.ok()) << report.status;
  EXPECT_TRUE(report.retried);
  EXPECT_EQ(report.first_attempt_status.code(), StatusCode::kInternal);
  EXPECT_GT(report.ops_replayed, 0u);

  const EngineSession* hosted = (*server)->Find(key);
  ASSERT_NE(hosted, nullptr);
  EXPECT_EQ(SerializeDatabase(hosted->db()),
            BatchText(program.value(), *session))
      << "warm-restarted session diverged from its batch twin";
}

TEST_F(FleetFaultInjectionTest, CancellationIsNeverRetried) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok());
  auto session = GenerateSession(SmallConfig());
  ASSERT_TRUE(session.ok());

  FleetOptions fopts;
  fopts.num_threads = 1;
  auto server = FleetServer::Create(fopts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->RegisterProgram("eth-perp", program.value()).ok());
  SessionKey key{"eth-perp", 0, "cancelled"};
  ASSERT_TRUE(
      (*server)->Open(key, Rational(session->start_time)).ok());
  ASSERT_TRUE((*server)->Enqueue(key, SessionToOps(*session)).ok());

  FaultInjector::Arm("seminaive.round", 10,
                     Status::Cancelled("caller stopped the run"));
  auto reports = (*server)->Drain();
  ASSERT_TRUE(reports.ok()) << reports.status();
  const SessionReport& report = (*reports)[0];
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kCancelled);
  EXPECT_FALSE(report.retried);
}

TEST_F(FleetFaultInjectionTest, SecondFaultIsFinalAndIsolated) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok());

  // The injected fault is one-shot, so a retried session would recover; to
  // observe a *final* failure plus isolation, disable retries and check
  // that exactly one of two sequentially drained sessions fails.
  FleetOptions fopts;
  fopts.num_threads = 1;
  fopts.retry_evicted = false;
  auto strict = FleetServer::Create(fopts);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE((*strict)->RegisterProgram("eth-perp", program.value()).ok());
  std::vector<SessionKey> keys;
  for (const WorkloadConfig& config : ShardConfigs(SmallConfig(), 2)) {
    auto session = GenerateSession(config);
    ASSERT_TRUE(session.ok());
    SessionKey key{"eth-perp", 0, config.name};
    ASSERT_TRUE(
        (*strict)->Open(key, Rational(session->start_time)).ok());
    ASSERT_TRUE((*strict)->Enqueue(key, SessionToOps(*session)).ok());
    keys.push_back(key);
  }
  FaultInjector::Arm("seminaive.round", 10,
                     Status::Internal("injected round fault"));
  auto reports = (*strict)->Drain();
  ASSERT_TRUE(reports.ok()) << reports.status();
  int failed = 0;
  for (const SessionReport& report : *reports) {
    if (!report.ok()) {
      ++failed;
      EXPECT_FALSE(report.retried);
      EXPECT_EQ(report.status.code(), StatusCode::kInternal);
    }
  }
  // Sequential drain: exactly the first session trips; its sibling is
  // untouched by the fault (isolation).
  EXPECT_EQ(failed, 1);
}

TEST(FleetServerTest, DeadlineEvictionRecoversDegraded) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok());
  auto session = GenerateSession(SmallConfig());
  ASSERT_TRUE(session.ok());

  FleetOptions fopts;
  fopts.num_threads = 1;
  // Admission control that every advance must trip: a zero per-operation
  // deadline. The degraded warm restart drops the deadline, so the session
  // still completes - with retried=true telling the operator it was over
  // budget.
  fopts.session_deadline = std::chrono::milliseconds(0);
  auto server = FleetServer::Create(fopts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->RegisterProgram("eth-perp", program.value()).ok());
  SessionKey key{"eth-perp", 0, "over-budget"};
  ASSERT_TRUE(
      (*server)->Open(key, Rational(session->start_time)).ok());
  ASSERT_TRUE((*server)->Enqueue(key, SessionToOps(*session)).ok());

  auto reports = (*server)->Drain();
  ASSERT_TRUE(reports.ok()) << reports.status();
  const SessionReport& report = (*reports)[0];
  ASSERT_TRUE(report.ok()) << report.status;
  EXPECT_TRUE(report.retried);
  EXPECT_EQ(report.first_attempt_status.code(),
            StatusCode::kDeadlineExceeded);
  const EngineSession* hosted = (*server)->Find(key);
  ASSERT_NE(hosted, nullptr);
  EXPECT_EQ(SerializeDatabase(hosted->db()),
            BatchText(program.value(), *session));
}

}  // namespace
}  // namespace dmtl
