// POSITION and RETURNS modules (paper rules 10-16).

#include <gtest/gtest.h>

#include "tests/contracts/contract_test_util.h"

namespace dmtl {
namespace {

TEST(EthPerpPositionTest, ZeroPositionOnAccountOpen) {
  Database db = RunContract("tranM(abc, 60.0)@1 .", 4);
  auto [s1, n1] = PositionAt(db, "abc", 1);
  EXPECT_DOUBLE_EQ(s1, 0.0);
  EXPECT_DOUBLE_EQ(n1, 0.0);
  auto [s4, n4] = PositionAt(db, "abc", 4);
  EXPECT_DOUBLE_EQ(s4, 0.0);
}

TEST(EthPerpPositionTest, Example32OpeningALong) {
  // The paper's Example 3.2: tranM(abc,60)@t, modPos(abc,0.4)@t+2 with a
  // price of 70 -> position(abc, 0.4, 28).
  Database db = RunContract(
      "price(70.0)@[0, 10] . tranM(abc, 60.0)@1 . modPos(abc, 0.4)@3 .", 6);
  auto [s2, n2] = PositionAt(db, "abc", 2);
  EXPECT_DOUBLE_EQ(s2, 0.0);
  auto [s3, n3] = PositionAt(db, "abc", 3);
  EXPECT_DOUBLE_EQ(s3, 0.4);
  EXPECT_DOUBLE_EQ(n3, 28.0);
  // Persists until the next order.
  auto [s6, n6] = PositionAt(db, "abc", 6);
  EXPECT_DOUBLE_EQ(s6, 0.4);
  EXPECT_DOUBLE_EQ(n6, 28.0);
}

TEST(EthPerpPositionTest, ModificationAccumulatesSizeAndNotional) {
  Database db = RunContract(
      "price(100.0)@[0, 5) . price(120.0)@[5, 10] .\n"
      "tranM(abc, 500.0)@1 . modPos(abc, 2.0)@3 . modPos(abc, -0.5)@6 .",
      9);
  auto [s3, n3] = PositionAt(db, "abc", 3);
  EXPECT_DOUBLE_EQ(s3, 2.0);
  EXPECT_DOUBLE_EQ(n3, 200.0);
  auto [s6, n6] = PositionAt(db, "abc", 6);
  EXPECT_DOUBLE_EQ(s6, 1.5);
  EXPECT_DOUBLE_EQ(n6, 200.0 - 0.5 * 120.0);
}

TEST(EthPerpPositionTest, ShortPositionsCarryNegativeNotional) {
  Database db = RunContract(
      "price(50.0)@[0, 8] . tranM(abc, 100.0)@1 . modPos(abc, -0.14)@2 .", 5);
  auto [s, n] = PositionAt(db, "abc", 2);
  EXPECT_DOUBLE_EQ(s, -0.14);
  EXPECT_DOUBLE_EQ(n, -7.0);
}

TEST(EthPerpPositionTest, OrderBookCollectsBothMethods) {
  Database db = RunContract(
      "price(50.0)@[0, 8] . tranM(abc, 100.0)@1 . modPos(abc, 1.0)@3 . "
      "closePos(abc)@5 .",
      8);
  EXPECT_TRUE(HoldsAt(db, "order", "abc", 3));
  EXPECT_TRUE(HoldsAt(db, "order", "abc", 5));
  EXPECT_FALSE(HoldsAt(db, "order", "abc", 4));
}

TEST(EthPerpPositionTest, CloseResetsPosition) {
  Database db = RunContract(
      "price(50.0)@[0, 9] . tranM(abc, 100.0)@1 . modPos(abc, 1.0)@3 . "
      "closePos(abc)@5 .",
      9);
  auto [s5, n5] = PositionAt(db, "abc", 5);
  EXPECT_DOUBLE_EQ(s5, 0.0);
  EXPECT_DOUBLE_EQ(n5, 0.0);
  auto [s9, n9] = PositionAt(db, "abc", 9);
  EXPECT_DOUBLE_EQ(s9, 0.0);
}

TEST(EthPerpPositionTest, Example33ReturnsOnClose) {
  // The paper's Example 3.3: position(abc, 0.7, 39) the day before, price
  // 47 at the close -> PNL = 0.7*47 - 39 = -6.1.
  Database db = RunContract(
      "price(55.714285714285715)@[0, 3) . price(47.0)@[3, 6] .\n"
      "tranM(abc, 100.0)@1 . modPos(abc, 0.7)@2 . closePos(abc)@3 .",
      6);
  auto [s2, n2] = PositionAt(db, "abc", 2);
  EXPECT_DOUBLE_EQ(s2, 0.7);
  EXPECT_NEAR(n2, 39.0, 1e-12);
  EXPECT_NEAR(ValueAt(db, "pnl", "abc", 3), 0.7 * 47.0 - 39.0, 1e-12);
}

TEST(EthPerpPositionTest, PositionChainStopsWithAccount) {
  Database db = RunContract(
      "price(50.0)@[0, 9] . tranM(abc, 100.0)@1 . withdraw(abc)@4 .", 9);
  EXPECT_TRUE(HoldsAt(db, "position", "abc", 3));
  EXPECT_FALSE(HoldsAt(db, "position", "abc", 4));
  EXPECT_FALSE(HoldsAt(db, "position", "abc", 7));
}

TEST(EthPerpPositionTest, ProfitOnLongWhenPriceRises) {
  Database db = RunContract(
      "price(100.0)@[0, 4) . price(130.0)@[4, 8] .\n"
      "tranM(abc, 1000.0)@1 . modPos(abc, 2.0)@2 . closePos(abc)@5 .",
      8);
  // Entry notional 200 at price 100; close at 130: pnl = 2*130 - 200 = 60.
  EXPECT_NEAR(ValueAt(db, "pnl", "abc", 5), 60.0, 1e-12);
}

TEST(EthPerpPositionTest, ProfitOnShortWhenPriceFalls) {
  Database db = RunContract(
      "price(100.0)@[0, 4) . price(80.0)@[4, 8] .\n"
      "tranM(abc, 1000.0)@1 . modPos(abc, -3.0)@2 . closePos(abc)@5 .",
      8);
  // Entry notional -300; close at 80: pnl = -3*80 + 300 = 60.
  EXPECT_NEAR(ValueAt(db, "pnl", "abc", 5), 60.0, 1e-12);
}

}  // namespace
}  // namespace dmtl
