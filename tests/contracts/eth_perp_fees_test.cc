// FEES module (paper rules 38-48), including Example 3.6 and both fee-side
// conventions (DESIGN.md item 3).

#include <gtest/gtest.h>

#include "tests/contracts/contract_test_util.h"

namespace dmtl {
namespace {

TEST(EthPerpFeesTest, FeeInitializedWithAccount) {
  Database db = RunContract("tranM(abc, 50.0)@1 .", 5);
  EXPECT_DOUBLE_EQ(ValueAt(db, "fee", "abc", 1), 0.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "fee", "abc", 5), 0.0);
}

TEST(EthPerpFeesTest, Example36PrintedRulesConvention) {
  // The paper's Example 3.6: skew 1342.2, price 1200, long order of 0.02,
  // fee computed with phi_m = 0.0035 -> 0.084 (the printed-rules side).
  MarketParams params;
  params.fee_convention = FeeConvention::kPrintedRules;
  Database db = RunContract(
      "start()@0 . skew(1342.2)@0 . frs(0.0)@0 . price(1200.0)@[0, 30] .\n"
      "tranM(abc, 1000.0)@18 . modPos(abc, 0.02)@19 .",
      25, params);
  EXPECT_NEAR(ValueAt(db, "fee", "abc", 19), 0.084, 1e-12);
}

TEST(EthPerpFeesTest, Example36Section37TableChargesTaker) {
  // Under the Section 3.7 fee table the same order increases the skew and
  // pays the taker rate instead: 0.02 * 1200 * 0.0075 = 0.18.
  Database db = RunContract(
      "start()@0 . skew(1342.2)@0 . frs(0.0)@0 . price(1200.0)@[0, 30] .\n"
      "tranM(abc, 1000.0)@18 . modPos(abc, 0.02)@19 .",
      25);
  EXPECT_NEAR(ValueAt(db, "fee", "abc", 19), 0.02 * 1200.0 * 0.0075, 1e-12);
}

TEST(EthPerpFeesTest, SkewReducingOrderPaysMaker) {
  // Positive skew, short order: reduces the skew -> maker rate (table).
  Database db = RunContract(
      "start()@0 . skew(1000.0)@0 . frs(0.0)@0 . price(1200.0)@[0, 30] .\n"
      "tranM(abc, 1000.0)@5 . modPos(abc, -0.5)@7 .",
      12);
  EXPECT_NEAR(ValueAt(db, "fee", "abc", 7), 0.5 * 1200.0 * 0.0035, 1e-12);
}

TEST(EthPerpFeesTest, FeesAccumulateAcrossOrders) {
  MarketParams params;
  Database db = RunContract(
      "start()@0 . skew(1000.0)@0 . frs(0.0)@0 . price(100.0)@[0, 30] .\n"
      "tranM(abc, 1000.0)@2 . modPos(abc, 1.0)@5 . modPos(abc, 2.0)@9 .",
      15);
  // Both orders increase positive skew: taker twice, cumulative.
  double fee5 = 1.0 * 100.0 * params.taker_fee;
  double fee9 = fee5 + 2.0 * 100.0 * params.taker_fee;
  EXPECT_NEAR(ValueAt(db, "fee", "abc", 5), fee5, 1e-12);
  EXPECT_NEAR(ValueAt(db, "fee", "abc", 9), fee9, 1e-12);
  EXPECT_NEAR(ValueAt(db, "fee", "abc", 15), fee9, 1e-12);
}

TEST(EthPerpFeesTest, CloseChargesOnPositionSizeAndResets) {
  MarketParams params;
  Database db = RunContract(
      "start()@0 . skew(1000.0)@0 . frs(0.0)@0 . price(100.0)@[0, 30] .\n"
      "tranM(abc, 1000.0)@2 . modPos(abc, 1.0)@5 . closePos(abc)@10 .",
      15);
  // Close of a long under positive skew reduces it: maker on the close leg.
  double expected =
      1.0 * 100.0 * params.taker_fee + 1.0 * 100.0 * params.maker_fee;
  EXPECT_NEAR(ValueAt(db, "finalFee", "abc", 10), expected, 1e-12);
  // Rule 48: the running fee resets for the next trade.
  EXPECT_DOUBLE_EQ(ValueAt(db, "fee", "abc", 10), 0.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "fee", "abc", 15), 0.0);
}

TEST(EthPerpFeesTest, ZeroSkewEdgePaysMaker) {
  // K = 0 exactly at the order tick: the paper's rules are silent; we
  // charge maker (DESIGN.md item 3). Opening a long from zero skew makes
  // the post-trade skew positive, so force K == 0 by balancing orders.
  Database db = RunContract(
      "start()@0 . skew(-2.0)@0 . frs(0.0)@0 . price(100.0)@[0, 30] .\n"
      "tranM(abc, 1000.0)@2 . modPos(abc, 2.0)@5 .",
      10);
  // Post-trade skew: -2 + 2 = 0 -> maker.
  EXPECT_DOUBLE_EQ(GlobalAt(db, "skew", 5), 0.0);
  EXPECT_NEAR(ValueAt(db, "fee", "abc", 5), 2.0 * 100.0 * 0.0035, 1e-12);
}

TEST(EthPerpFeesTest, NegativeSkewLongPaysMakerTable) {
  Database db = RunContract(
      "start()@0 . skew(-5000.0)@0 . frs(0.0)@0 . price(100.0)@[0, 30] .\n"
      "tranM(abc, 1000.0)@2 . modPos(abc, 3.0)@5 .",
      10);
  EXPECT_NEAR(ValueAt(db, "fee", "abc", 5), 3.0 * 100.0 * 0.0035, 1e-12);
}

TEST(EthPerpFeesTest, ConventionsAgreeOnTotalWhenLegsFlip) {
  // A round trip where the open increases and the close reduces the skew
  // swaps taker/maker between conventions; totals differ accordingly.
  auto run = [&](FeeConvention convention) {
    MarketParams params;
    params.fee_convention = convention;
    Database db = RunContract(
        "start()@0 . skew(1000.0)@0 . frs(0.0)@0 . price(100.0)@[0, 30] .\n"
        "tranM(abc, 1000.0)@2 . modPos(abc, 1.0)@5 . closePos(abc)@10 .",
        15, params);
    return ValueAt(db, "finalFee", "abc", 10);
  };
  MarketParams params;
  double table = run(FeeConvention::kSection37Table);
  double printed = run(FeeConvention::kPrintedRules);
  double leg = 100.0;
  EXPECT_NEAR(table, leg * params.taker_fee + leg * params.maker_fee, 1e-12);
  EXPECT_NEAR(printed, leg * params.maker_fee + leg * params.taker_fee, 1e-12);
  // With one taker and one maker leg each, the round-trip totals coincide.
  EXPECT_NEAR(table, printed, 1e-12);
}

}  // namespace
}  // namespace dmtl
