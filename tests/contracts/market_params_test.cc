#include "src/contracts/market_params.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

TEST(MarketParamsTest, Figure2Defaults) {
  MarketParams p;
  EXPECT_DOUBLE_EQ(p.maker_fee, 0.0035);  // fixed by Example 3.6
  EXPECT_DOUBLE_EQ(p.max_funding_rate, 0.1);
  EXPECT_DOUBLE_EQ(p.skew_scale_usd, 3.0e8);
  EXPECT_DOUBLE_EQ(p.seconds_per_day, 86400.0);
}

TEST(MarketParamsTest, InstantaneousRateFormula) {
  MarketParams p;
  double price = 1200.0;
  double skew = 1.0e4;  // well inside W_max = 250000: no clamping
  // i = clamp(-K / (3e8/p), -1, 1) * 0.1 / 86400
  double expected = (-skew / (3.0e8 / price)) * 0.1 / 86400.0;
  EXPECT_NEAR(p.InstantaneousRate(skew, price), expected, 1e-18);
  // Opposite skew flips the sign: the heavy side always pays.
  EXPECT_GT(p.InstantaneousRate(-skew, price), 0.0);
  EXPECT_LT(p.InstantaneousRate(skew, price), 0.0);
  EXPECT_DOUBLE_EQ(p.InstantaneousRate(0.0, price), 0.0);
}

TEST(MarketParamsTest, InstantaneousRateClamps) {
  MarketParams p;
  double price = 1200.0;
  // W_max = 3e8/1200 = 250000; skew far beyond it saturates at +-1.
  EXPECT_DOUBLE_EQ(p.InstantaneousRate(-1.0e9, price),
                   0.1 / 86400.0);
  EXPECT_DOUBLE_EQ(p.InstantaneousRate(1.0e9, price),
                   -0.1 / 86400.0);
  // Exactly at the boundary.
  EXPECT_DOUBLE_EQ(p.InstantaneousRate(-250000.0, price), 0.1 / 86400.0);
}

TEST(MarketParamsTest, FeeRateSection37Table) {
  MarketParams p;  // default: kSection37Table
  // Same sign of skew and delta (increasing the skew) -> taker.
  EXPECT_DOUBLE_EQ(p.FeeRate(+1000, +1), p.taker_fee);
  EXPECT_DOUBLE_EQ(p.FeeRate(-1000, -1), p.taker_fee);
  // Opposite signs (reducing the skew) -> maker.
  EXPECT_DOUBLE_EQ(p.FeeRate(+1000, -1), p.maker_fee);
  EXPECT_DOUBLE_EQ(p.FeeRate(-1000, +1), p.maker_fee);
  // The K=0 edge the paper leaves open: maker.
  EXPECT_DOUBLE_EQ(p.FeeRate(0, +1), p.maker_fee);
}

TEST(MarketParamsTest, FeeRatePrintedRulesConventionFlips) {
  MarketParams p;
  p.fee_convention = FeeConvention::kPrintedRules;
  EXPECT_DOUBLE_EQ(p.FeeRate(+1000, +1), p.maker_fee);
  EXPECT_DOUBLE_EQ(p.FeeRate(-1000, -1), p.maker_fee);
  EXPECT_DOUBLE_EQ(p.FeeRate(+1000, -1), p.taker_fee);
  EXPECT_DOUBLE_EQ(p.FeeRate(-1000, +1), p.taker_fee);
}

TEST(MarketParamsTest, ToStringMentionsConvention) {
  MarketParams p;
  EXPECT_NE(p.ToString().find("section-3.7"), std::string::npos);
  p.fee_convention = FeeConvention::kPrintedRules;
  EXPECT_NE(p.ToString().find("printed-rules"), std::string::npos);
}

}  // namespace
}  // namespace dmtl
