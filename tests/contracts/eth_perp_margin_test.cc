// MARGIN module (paper rules 1-9), driven through the full program.

#include <gtest/gtest.h>

#include "tests/contracts/contract_test_util.h"

namespace dmtl {
namespace {

TEST(EthPerpMarginTest, ProgramParsesAndStratifies) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_GE(program->size(), 40u);
  EXPECT_TRUE(program->CheckArities().ok());
}

TEST(EthPerpMarginTest, FirstDepositOpensAccount) {
  Database db = RunContract("tranM(abc, 97.0)@1 .", 5);
  EXPECT_TRUE(HoldsAt(db, "isOpen", "abc", 1));
  EXPECT_TRUE(HoldsAt(db, "isOpen", "abc", 5));  // persists to horizon
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 1), 97.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 4), 97.0);
}

TEST(EthPerpMarginTest, Example31LaterDepositAddsUp) {
  // The paper's Example 3.1: margin 97 yesterday, tranM(abc, 3) today ->
  // margin 100 today.
  Database db = RunContract("tranM(abc, 97.0)@1 . tranM(abc, 3.0)@2 .", 6);
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 1), 97.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 2), 100.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 6), 100.0);
}

TEST(EthPerpMarginTest, WithdrawClosesAccountAndStopsMargin) {
  Database db = RunContract("tranM(abc, 50.0)@1 . withdraw(abc)@4 .", 8);
  EXPECT_TRUE(HoldsAt(db, "isOpen", "abc", 3));
  EXPECT_FALSE(HoldsAt(db, "isOpen", "abc", 4));
  EXPECT_FALSE(HoldsAt(db, "isOpen", "abc", 8));
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 3), 50.0);
  EXPECT_FALSE(HoldsAt(db, "margin", "abc", 4));
  EXPECT_FALSE(HoldsAt(db, "margin", "abc", 5));
}

TEST(EthPerpMarginTest, ReopenAfterWithdrawReinitializes) {
  Database db = RunContract(
      "tranM(abc, 50.0)@1 . withdraw(abc)@3 . tranM(abc, 7.0)@5 .", 8);
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 2), 50.0);
  // The new deposit is a first-time deposit again (rule 3), not 57.
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 5), 7.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 8), 7.0);
}

TEST(EthPerpMarginTest, ChangeMFiresOnAllThreeMethods) {
  Database db = RunContract(
      "tranM(abc, 5.0)@1 . tranM(abc, 5.0)@3 . price(100.0)@[0, 12] .\n"
      "modPos(abc, 1.0)@5 . closePos(abc)@7 . withdraw(abc)@9 .",
      12);
  EXPECT_TRUE(HoldsAt(db, "changeM", "abc", 1));
  EXPECT_TRUE(HoldsAt(db, "changeM", "abc", 3));
  EXPECT_FALSE(HoldsAt(db, "changeM", "abc", 5));  // modPos is not a change
  EXPECT_TRUE(HoldsAt(db, "changeM", "abc", 7));
  EXPECT_TRUE(HoldsAt(db, "changeM", "abc", 9));
}

TEST(EthPerpMarginTest, IndependentAccountsDoNotInterfere) {
  Database db = RunContract(
      "tranM(abc, 10.0)@1 . tranM(xyz, 20.0)@2 . withdraw(abc)@5 .", 8);
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "xyz", 8), 20.0);
  EXPECT_FALSE(HoldsAt(db, "margin", "abc", 6));
  EXPECT_TRUE(HoldsAt(db, "isOpen", "xyz", 8));
}

TEST(EthPerpMarginTest, SettlementFoldsIntoMargin) {
  // Full close pipeline: margin@close = margin + pnl - fee + funding.
  // Constant price and zero initial skew keep funding small but nonzero.
  Database db = RunContract(
      "start()@0 . skew(0.0)@0 . frs(0.0)@0 . price(100.0)@[0, 20] .\n"
      "tranM(abc, 1000.0)@2 . modPos(abc, 2.0)@4 . closePos(abc)@8 .",
      12);
  double pnl = ValueAt(db, "pnl", "abc", 8);
  double fee = ValueAt(db, "finalFee", "abc", 8);
  double funding = ValueAt(db, "funding", "abc", 8);
  // Price never moved: zero returns.
  EXPECT_DOUBLE_EQ(pnl, 0.0);
  EXPECT_GT(fee, 0.0);
  double margin_after = ValueAt(db, "margin", "abc", 8);
  EXPECT_NEAR(margin_after, 1000.0 + pnl - fee + funding, 1e-9);
  // And it persists.
  EXPECT_NEAR(ValueAt(db, "margin", "abc", 12), margin_after, 1e-12);
}

}  // namespace
}  // namespace dmtl
