#include "src/contracts/statement.h"

#include <gtest/gtest.h>

#include <set>

#include "src/chain/replayer.h"
#include "src/chain/subgraph.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"

namespace dmtl {
namespace {

struct Prepared {
  Session session;
  Database db;
};

Prepared Materialized(uint64_t seed) {
  WorkloadConfig config;
  config.num_events = 28;
  config.num_trades = 5;
  config.duration_s = 900;
  config.initial_skew = -900.0;
  config.seed = seed;
  Prepared out;
  out.session = *GenerateSession(config);
  auto program = EthPerpProgram();
  out.db = SessionToDatabase(out.session);
  Status status =
      Materialize(*program, &out.db, SessionEngineOptions(out.session));
  EXPECT_TRUE(status.ok()) << status;
  return out;
}

TEST(StatementTest, OneStatementPerAccountOneLinePerEvent) {
  Prepared p = Materialized(21);
  auto statements = BuildStatements(p.db, p.session);
  ASSERT_TRUE(statements.ok()) << statements.status();
  size_t total_lines = 0;
  std::set<std::string> accounts;
  for (const AccountStatement& s : *statements) {
    accounts.insert(s.account);
    total_lines += s.lines.size();
    // Lines are in time order.
    for (size_t i = 1; i < s.lines.size(); ++i) {
      EXPECT_LE(s.lines[i - 1].time, s.lines[i].time);
    }
  }
  EXPECT_EQ(total_lines, p.session.events.size());
  std::set<std::string> expected;
  for (const MarketEvent& e : p.session.events) expected.insert(e.account);
  EXPECT_EQ(accounts, expected);
}

TEST(StatementTest, TotalsReconcileWithBalances) {
  Prepared p = Materialized(22);
  auto statements = BuildStatements(p.db, p.session);
  ASSERT_TRUE(statements.ok()) << statements.status();
  for (const AccountStatement& s : *statements) {
    // Accounting identity per account:
    // final = deposits + pnl - fees + funding (all trades settled flat).
    EXPECT_NEAR(s.final_balance,
                s.total_deposits + s.total_pnl - s.total_fees +
                    s.total_funding,
                1e-6)
        << s.account;
    EXPECT_TRUE(s.withdrawn) << s.account;  // generator closes everyone out
    EXPECT_GT(s.total_deposits, 0.0);
  }
}

TEST(StatementTest, FinalBalanceMatchesReferenceWithdrawals) {
  Prepared p = Materialized(23);
  auto statements = BuildStatements(p.db, p.session);
  ASSERT_TRUE(statements.ok());
  Subgraph subgraph = *Subgraph::Index(p.session);
  for (const AccountStatement& s : *statements) {
    ASSERT_EQ(subgraph.Withdrawals().count(s.account), 1u) << s.account;
    EXPECT_NEAR(s.final_balance, subgraph.Withdrawals().at(s.account), 1e-9)
        << s.account;
  }
}

TEST(StatementTest, RenderingIsReadable) {
  Prepared p = Materialized(24);
  auto statements = BuildStatements(p.db, p.session);
  ASSERT_TRUE(statements.ok());
  ASSERT_FALSE(statements->empty());
  std::string text = statements->front().ToString();
  EXPECT_NE(text.find("statement for"), std::string::npos);
  EXPECT_NE(text.find("deposit"), std::string::npos);
  EXPECT_NE(text.find("totals:"), std::string::npos);
}

TEST(StatementTest, FailsOnUnmaterializedDatabase) {
  WorkloadConfig config;
  config.num_events = 12;
  config.num_trades = 2;
  config.duration_s = 700;
  Session session = *GenerateSession(config);
  Database raw = SessionToDatabase(session);  // facts only, no chase
  EXPECT_FALSE(BuildStatements(raw, session).ok());
}

}  // namespace
}  // namespace dmtl
