#ifndef DMTL_TESTS_CONTRACTS_CONTRACT_TEST_UTIL_H_
#define DMTL_TESTS_CONTRACTS_CONTRACT_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "src/contracts/eth_perp_program.h"
#include "src/engine/reasoner.h"

namespace dmtl {

// Runs the ETH-PERP program over hand-written method-call facts on a small
// integer timeline (the paper's examples use day granularity; any uniform
// tick works since all operators are [1,1]).
inline Database RunContract(const std::string& facts_text,
                            int64_t horizon_max,
                            const MarketParams& params = {}) {
  auto program = EthPerpProgram(params);
  EXPECT_TRUE(program.ok()) << program.status();
  auto db = Parser::ParseDatabase(facts_text);
  EXPECT_TRUE(db.ok()) << db.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(horizon_max);
  Database out = *db;
  Status status = Materialize(*program, &out, options);
  EXPECT_TRUE(status.ok()) << status;
  return out;
}

// The single numeric value of pred(account, V) holding at t; fails the test
// when absent or ambiguous.
inline double ValueAt(const Database& db, const char* pred,
                      const char* account, int64_t t) {
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) {
    ADD_FAILURE() << pred << " has no facts";
    return 0;
  }
  Value acc = Value::Symbol(account);
  bool found = false;
  double value = 0;
  for (const auto& [tuple, set] : rel->data()) {
    if (tuple.size() != 2 || tuple[0] != acc) continue;
    if (!set.Contains(Rational(t))) continue;
    EXPECT_FALSE(found) << pred << " ambiguous at t=" << t;
    found = true;
    value = tuple[1].AsDouble();
  }
  EXPECT_TRUE(found) << pred << "(" << account << ", _) missing at t=" << t;
  return value;
}

// The single value of a unary numeric predicate (skew/frs) at t.
inline double GlobalAt(const Database& db, const char* pred, int64_t t) {
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) {
    ADD_FAILURE() << pred << " has no facts";
    return 0;
  }
  bool found = false;
  double value = 0;
  for (const auto& [tuple, set] : rel->data()) {
    if (tuple.size() != 1 || !set.Contains(Rational(t))) continue;
    EXPECT_FALSE(found) << pred << " ambiguous at t=" << t;
    found = true;
    value = tuple[0].AsDouble();
  }
  EXPECT_TRUE(found) << pred << " missing at t=" << t;
  return value;
}

// position(A, S, N) at t.
inline std::pair<double, double> PositionAt(const Database& db,
                                            const char* account, int64_t t) {
  const Relation* rel = db.Find("position");
  if (rel == nullptr) {
    ADD_FAILURE() << "position has no facts";
    return {0, 0};
  }
  Value acc = Value::Symbol(account);
  bool found = false;
  std::pair<double, double> out{0, 0};
  for (const auto& [tuple, set] : rel->data()) {
    if (tuple.size() != 3 || tuple[0] != acc) continue;
    if (!set.Contains(Rational(t))) continue;
    EXPECT_FALSE(found) << "position ambiguous at t=" << t;
    found = true;
    out = {tuple[1].AsDouble(), tuple[2].AsDouble()};
  }
  EXPECT_TRUE(found) << "position(" << account << ") missing at t=" << t;
  return out;
}

inline bool HoldsAt(const Database& db, const char* pred, const char* account,
                    int64_t t) {
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return false;
  Value acc = Value::Symbol(account);
  for (const auto& [tuple, set] : rel->data()) {
    if (!tuple.empty() && tuple[0] == acc && set.Contains(Rational(t))) {
      return true;
    }
  }
  return false;
}

}  // namespace dmtl

#endif  // DMTL_TESTS_CONTRACTS_CONTRACT_TEST_UTIL_H_
