// The RISK MONITOR extension module (paper Section 5): mark-to-market
// metrics and liquidation alerts layered over the contract state.

#include "src/contracts/risk_rules.h"

#include <gtest/gtest.h>

#include "src/analysis/stratifier.h"
#include "tests/contracts/contract_test_util.h"

namespace dmtl {
namespace {

Database RunWithMonitor(const std::string& facts, int64_t horizon,
                        RiskParams risk = {}, MarketParams market = {}) {
  auto program = EthPerpWithRiskMonitor(market, risk);
  EXPECT_TRUE(program.ok()) << program.status();
  auto db = Parser::ParseDatabase(facts);
  EXPECT_TRUE(db.ok()) << db.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(horizon);
  Database out = *db;
  Status status = Materialize(*program, &out, options);
  EXPECT_TRUE(status.ok()) << status;
  return out;
}

constexpr char kSetup[] =
    "start()@0 . skew(0.0)@0 . frs(0.0)@0 .\n";

TEST(RiskRulesTest, ModuleParsesAloneAndComposed) {
  auto monitor = RiskMonitorProgram();
  ASSERT_TRUE(monitor.ok()) << monitor.status();
  EXPECT_GE(monitor->size(), 7u);
  auto combined = EthPerpWithRiskMonitor();
  ASSERT_TRUE(combined.ok()) << combined.status();
  EXPECT_TRUE(Stratify(*combined).ok());
}

TEST(RiskRulesTest, UnrealizedPnlTracksPrice) {
  Database db = RunWithMonitor(
      std::string(kSetup) +
          "price(100.0)@[0, 5) . price(120.0)@[5, 10] .\n"
          "tranM(abc, 1000.0)@1 . modPos(abc, 2.0)@3 .",
      9);
  // Entry at 100 (notional 200); price jumps to 120 at t=5.
  EXPECT_DOUBLE_EQ(ValueAt(db, "uPnl", "abc", 4), 0.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "uPnl", "abc", 5), 40.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "uPnl", "abc", 9), 40.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "notionalExposure", "abc", 5), 240.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "equity", "abc", 5), 1040.0);
  EXPECT_NEAR(ValueAt(db, "marginRatio", "abc", 5), 1040.0 / 240.0, 1e-12);
}

TEST(RiskRulesTest, NoRatioWhileFlat) {
  Database db = RunWithMonitor(
      std::string(kSetup) + "price(100.0)@[0, 8] . tranM(abc, 500.0)@1 .",
      6);
  // Flat position: exposure 0, no marginRatio facts for the account.
  EXPECT_DOUBLE_EQ(ValueAt(db, "notionalExposure", "abc", 3), 0.0);
  EXPECT_FALSE(HoldsAt(db, "marginRatio", "abc", 3));
  EXPECT_FALSE(HoldsAt(db, "liquidatable", "abc", 3));
}

TEST(RiskRulesTest, LiquidatableWhenPriceMovesAgainstALong) {
  // Thin margin long: 60 margin on a 10 ETH long at 100 (exposure 1000,
  // ratio 0.06). A drop to 96 wipes 40 of equity -> ratio (60-40)/960 ~
  // 0.0208 < 0.05.
  RiskParams risk;
  risk.maintenance_ratio = 0.05;
  Database db = RunWithMonitor(
      std::string(kSetup) +
          "price(100.0)@[0, 6) . price(96.0)@[6, 12] .\n"
          "tranM(abc, 60.0)@1 . modPos(abc, 10.0)@3 .",
      10, risk);
  EXPECT_FALSE(HoldsAt(db, "liquidatable", "abc", 5));
  EXPECT_TRUE(HoldsAt(db, "liquidatable", "abc", 6));
  EXPECT_TRUE(HoldsAt(db, "liquidatable", "abc", 10));
  // The alert fires exactly once, on the rising edge.
  EXPECT_TRUE(HoldsAt(db, "liquidationAlert", "abc", 6));
  EXPECT_FALSE(HoldsAt(db, "liquidationAlert", "abc", 7));
}

TEST(RiskRulesTest, AlertReFiresAfterRecovery) {
  // Price dips, recovers, dips again: two rising edges, two alerts.
  RiskParams risk;
  risk.maintenance_ratio = 0.05;
  Database db = RunWithMonitor(
      std::string(kSetup) +
          "price(100.0)@[0, 4) . price(96.0)@[4, 6) . "
          "price(100.0)@[6, 8) . price(96.0)@[8, 12] .\n"
          "tranM(abc, 60.0)@1 . modPos(abc, 10.0)@2 .",
      11, risk);
  EXPECT_TRUE(HoldsAt(db, "liquidationAlert", "abc", 4));
  EXPECT_FALSE(HoldsAt(db, "liquidatable", "abc", 6));
  EXPECT_TRUE(HoldsAt(db, "liquidationAlert", "abc", 8));
  EXPECT_FALSE(HoldsAt(db, "liquidationAlert", "abc", 9));
}

TEST(RiskRulesTest, LargeExposureThreshold) {
  RiskParams risk;
  risk.large_exposure_usd = 500.0;
  Database db = RunWithMonitor(
      std::string(kSetup) +
          "price(100.0)@[0, 10] .\n"
          "tranM(abc, 10000.0)@1 . modPos(abc, 4.0)@3 . modPos(abc, 2.0)@6 .",
      9, risk);
  // 4 ETH * 100 = 400 < 500; 6 ETH * 100 = 600 > 500.
  EXPECT_FALSE(HoldsAt(db, "largeExposure", "abc", 4));
  EXPECT_TRUE(HoldsAt(db, "largeExposure", "abc", 6));
  EXPECT_TRUE(HoldsAt(db, "largeExposure", "abc", 9));
}

TEST(RiskRulesTest, ShortPositionsMonitoredSymmetrically) {
  RiskParams risk;
  risk.maintenance_ratio = 0.05;
  // Thin short: price RISE hurts. 60 margin, 10 ETH short at 100;
  // rise to 104 -> equity 20, exposure 1040 -> ratio ~0.019.
  Database db = RunWithMonitor(
      std::string(kSetup) +
          "price(100.0)@[0, 6) . price(104.0)@[6, 12] .\n"
          "tranM(abc, 60.0)@1 . modPos(abc, -10.0)@3 .",
      10, risk);
  EXPECT_DOUBLE_EQ(ValueAt(db, "uPnl", "abc", 6), -40.0);
  EXPECT_TRUE(HoldsAt(db, "liquidatable", "abc", 6));
}

TEST(RiskRulesTest, MonitorDoesNotPerturbTheContract) {
  // Settlements with and without the monitor attached are identical
  // (supervision reads state, never writes it).
  std::string facts = std::string(kSetup) +
                      "price(100.0)@[0, 12] .\n"
                      "tranM(abc, 1000.0)@1 . modPos(abc, 2.0)@3 . "
                      "closePos(abc)@8 .";
  Database with = RunWithMonitor(facts, 10);
  auto plain_program = EthPerpProgram();
  auto db = Parser::ParseDatabase(facts);
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(10);
  Database without = *db;
  ASSERT_TRUE(Materialize(*plain_program, &without, options).ok());
  for (const char* pred : {"pnl", "finalFee", "funding", "margin"}) {
    EXPECT_DOUBLE_EQ(ValueAt(with, pred, "abc", 8),
                     ValueAt(without, pred, "abc", 8))
        << pred;
  }
}

}  // namespace
}  // namespace dmtl
