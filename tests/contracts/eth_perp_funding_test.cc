// F-RATE module (paper rules 17-37): events, skew, time bookkeeping, the
// funding rate sequence, and individual funding - including the paper's
// Examples 3.4 and 3.5.

#include <gtest/gtest.h>

#include "tests/contracts/contract_test_util.h"

namespace dmtl {
namespace {

constexpr char kMarketSetup[] =
    "start()@0 . skew(0.0)@0 . frs(0.0)@0 . price(1200.0)@[0, 200] .\n";

TEST(EthPerpFundingTest, EventsAggregateAllInteractions) {
  Database db = RunContract(
      std::string(kMarketSetup) +
          "tranM(a, 10.0)@2 . tranM(b, 10.0)@2 .\n"
          "modPos(a, 2.0)@4 . modPos(b, -0.5)@4 .\n"
          "closePos(a)@6 . withdraw(b)@8 .",
      10);
  // Margin events contribute zero; same-tick orders sum.
  EXPECT_DOUBLE_EQ(GlobalAt(db, "event", 2), 0.0);
  EXPECT_DOUBLE_EQ(GlobalAt(db, "event", 4), 1.5);
  EXPECT_DOUBLE_EQ(GlobalAt(db, "event", 6), -2.0);  // close of a's +2
  EXPECT_DOUBLE_EQ(GlobalAt(db, "event", 8), 0.0);
}

TEST(EthPerpFundingTest, SkewFollowsEvents) {
  Database db = RunContract(
      std::string(kMarketSetup) +
          "tranM(a, 10.0)@2 . modPos(a, 2.0)@4 . closePos(a)@7 .",
      10);
  EXPECT_DOUBLE_EQ(GlobalAt(db, "skew", 0), 0.0);
  EXPECT_DOUBLE_EQ(GlobalAt(db, "skew", 3), 0.0);
  EXPECT_DOUBLE_EQ(GlobalAt(db, "skew", 4), 2.0);
  EXPECT_DOUBLE_EQ(GlobalAt(db, "skew", 6), 2.0);
  EXPECT_DOUBLE_EQ(GlobalAt(db, "skew", 7), 0.0);
  EXPECT_DOUBLE_EQ(GlobalAt(db, "skew", 10), 0.0);
}

TEST(EthPerpFundingTest, InitialSkewSeedsTheMarket) {
  Database db = RunContract(
      "start()@0 . skew(-2445.98)@0 . frs(0.0)@0 . price(1300.0)@[0, 20] .\n"
      "tranM(a, 10.0)@3 .",
      10);
  EXPECT_DOUBLE_EQ(GlobalAt(db, "skew", 2), -2445.98);
  EXPECT_DOUBLE_EQ(GlobalAt(db, "skew", 10), -2445.98);
}

TEST(EthPerpFundingTest, TdeltaMeasuresGapsBetweenEvents) {
  Database db = RunContract(
      std::string(kMarketSetup) + "tranM(a, 10.0)@5 . modPos(a, 1.0)@12 .",
      15);
  const Relation* rel = db.Find("tdelta");
  ASSERT_NE(rel, nullptr);
  // tdelta(5)@5 (since start) and tdelta(7)@12.
  EXPECT_TRUE(rel->Contains({Value::Int(5)}, Rational(5)));
  EXPECT_TRUE(rel->Contains({Value::Int(7)}, Rational(12)));
}

TEST(EthPerpFundingTest, FrsAccruesPerFigure2) {
  MarketParams params;
  double p = 1200.0;
  Database db = RunContract(
      std::string(kMarketSetup) +
          "tranM(a, 1000.0)@10 . modPos(a, 50.0)@20 .\n"
          "tranM(b2, 1.0)@35 .",
      40);
  // First event at 10: pre-event skew 0 -> no accrual.
  EXPECT_DOUBLE_EQ(GlobalAt(db, "frs", 10), 0.0);
  // Second event at 20: skew still 0 over (10,20] -> no accrual.
  EXPECT_DOUBLE_EQ(GlobalAt(db, "frs", 20), 0.0);
  // Third event at 35: skew was 50 for 15 ticks.
  double expected = params.InstantaneousRate(50.0, p) * p * 15.0;
  EXPECT_NEAR(GlobalAt(db, "frs", 35), expected, 1e-15);
  EXPECT_NEAR(GlobalAt(db, "frs", 40), expected, 1e-15);
}

TEST(EthPerpFundingTest, RateClampsAtExtremeSkew) {
  // Skew far beyond W_max: the proportional term saturates at +-1.
  MarketParams params;
  double p = 1200.0;
  Database db = RunContract(
      "start()@0 . skew(-100000000.0)@0 . frs(0.0)@0 . "
      "price(1200.0)@[0, 20] .\n"
      "tranM(a, 10.0)@4 .",
      10);
  double expected = params.InstantaneousRate(-1.0e8, p) * p * 4.0;
  EXPECT_NEAR(GlobalAt(db, "frs", 4), expected, 1e-12);
  EXPECT_DOUBLE_EQ(params.InstantaneousRate(-1.0e8, p),
                   0.1 / 86400.0);  // clamped to +1 proportional
}

TEST(EthPerpFundingTest, Example34IndividualFunding) {
  // Example 3.4: A opens q_a at t1, B interacts at t2, A closes at t4.
  // IF_A = q_a * (F(t4) - F(t1)).
  MarketParams params;
  double p = 1200.0;
  double k0 = 40000.0;  // nonzero initial skew so funding flows
  double qa = 2.0;
  Database db = RunContract(
      "start()@0 . skew(40000.0)@0 . frs(0.0)@0 . price(1200.0)@[0, 60] .\n"
      "tranM(a, 100000.0)@5 . tranM(b, 100.0)@8 .\n"
      "modPos(a, 2.0)@10 .\n"        // t1
      "tranM(b, 1.0)@20 .\n"         // t2 (B interacts)
      "closePos(a)@40 .",            // t4
      50);
  // Funding sequence: piecewise accrual with the pre-event skew.
  double f5 = params.InstantaneousRate(k0, p) * p * 5;
  double f8 = f5 + params.InstantaneousRate(k0, p) * p * 3;
  double f10 = f8 + params.InstantaneousRate(k0, p) * p * 2;
  double f20 = f10 + params.InstantaneousRate(k0 + qa, p) * p * 10;
  double f40 = f20 + params.InstantaneousRate(k0 + qa, p) * p * 20;
  EXPECT_NEAR(GlobalAt(db, "frs", 10), f10, 1e-12);
  EXPECT_NEAR(GlobalAt(db, "frs", 20), f20, 1e-12);
  EXPECT_NEAR(GlobalAt(db, "frs", 40), f40, 1e-12);
  EXPECT_NEAR(ValueAt(db, "funding", "a", 40), qa * (f40 - f10), 1e-12);
  // Long position against positive skew pays: funding is negative.
  EXPECT_LT(ValueAt(db, "funding", "a", 40), 0.0);
}

TEST(EthPerpFundingTest, Example35ModifiedPositionFunding) {
  // Example 3.5: the position is modified by s at t3; the total individual
  // funding is q_a(F(t3)-F(t1)) + (q_a+s)(F(t4)-F(t3)).
  MarketParams params;
  double p = 1200.0;
  double k0 = 40000.0;
  double qa = 2.0;
  double s = 1.5;
  Database db = RunContract(
      "start()@0 . skew(40000.0)@0 . frs(0.0)@0 . price(1200.0)@[0, 60] .\n"
      "tranM(a, 100000.0)@5 .\n"
      "modPos(a, 2.0)@10 .\n"    // t1
      "modPos(a, 1.5)@25 .\n"    // t3
      "closePos(a)@40 .",        // t4
      50);
  double f5 = params.InstantaneousRate(k0, p) * p * 5;
  double f10 = f5 + params.InstantaneousRate(k0, p) * p * 5;
  double f25 = f10 + params.InstantaneousRate(k0 + qa, p) * p * 15;
  double f40 = f25 + params.InstantaneousRate(k0 + qa + s, p) * p * 15;
  double expected = qa * (f25 - f10) + (qa + s) * (f40 - f25);
  EXPECT_NEAR(ValueAt(db, "funding", "a", 40), expected, 1e-12);
}

TEST(EthPerpFundingTest, ShortsReceiveWhenLongsPay) {
  // Two symmetric traders: the long pays, the short receives.
  Database db = RunContract(
      "start()@0 . skew(0.0)@0 . frs(0.0)@0 . price(1000.0)@[0, 100] .\n"
      "tranM(long1, 10000.0)@2 . tranM(short1, 10000.0)@3 .\n"
      "modPos(long1, 5.0)@5 . modPos(short1, -1.0)@6 .\n"
      "closePos(long1)@50 . closePos(short1)@55 .",
      60);
  EXPECT_LT(ValueAt(db, "funding", "long1", 50), 0.0);
  EXPECT_GT(ValueAt(db, "funding", "short1", 55), 0.0);
}

}  // namespace
}  // namespace dmtl
