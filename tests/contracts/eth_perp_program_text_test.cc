// The program text is the paper's artifact form: it must stay parseable,
// print-stable, parameter-faithful, and in sync with the shipped
// programs/eth_perp.dmtl file.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "src/contracts/eth_perp_program.h"
#include "src/contracts/risk_rules.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

TEST(EthPerpProgramTextTest, PrintParseFixpoint) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  std::string printed = program->ToString();
  auto reparsed = Parser::ParseProgram(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->ToString(), printed);
}

TEST(EthPerpProgramTextTest, ParametersAreSubstituted) {
  MarketParams params;
  params.maker_fee = 0.001;
  params.taker_fee = 0.03125;  // exactly representable: prints verbatim
  params.skew_scale_usd = 5.0e7;
  params.max_funding_rate = 0.25;
  std::string text = EthPerpProgramText(params);
  EXPECT_NE(text.find("0.001"), std::string::npos);
  EXPECT_NE(text.find("0.03125"), std::string::npos);
  EXPECT_NE(text.find("50000000"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
  ASSERT_TRUE(Parser::ParseProgram(text).ok());
}

TEST(EthPerpProgramTextTest, ConventionsDifferOnlyInFeeSides) {
  MarketParams table;
  MarketParams printed;
  printed.fee_convention = FeeConvention::kPrintedRules;
  auto p1 = EthPerpProgram(table);
  auto p2 = EthPerpProgram(printed);
  ASSERT_TRUE(p1.ok() && p2.ok());
  ASSERT_EQ(p1->size(), p2->size());
  // Only fee/finalFee rules may differ between conventions.
  int differing = 0;
  for (size_t i = 0; i < p1->size(); ++i) {
    const Rule& a = p1->rules()[i];
    const Rule& b = p2->rules()[i];
    if (a.ToString() != b.ToString()) {
      ++differing;
      std::string head = PredicateName(a.head.predicate);
      EXPECT_TRUE(head == "fee" || head == "finalFee") << a.ToString();
    }
  }
  EXPECT_EQ(differing, 8);  // 4 modPos legs + 4 close legs flip
}

TEST(EthPerpProgramTextTest, ShippedArtifactMatchesBuilder) {
  if (!std::filesystem::exists("programs/eth_perp.dmtl")) {
    GTEST_SKIP() << "artifact not found (run from repo root)";
  }
  std::ifstream file("programs/eth_perp.dmtl");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  // Regenerate with `dmtl::EthPerpProgramText()` if this drifts.
  EXPECT_EQ(buffer.str(), EthPerpProgramText())
      << "programs/eth_perp.dmtl is stale; regenerate it";
}

TEST(EthPerpProgramTextTest, RiskModuleTextParsesAndSubstitutes) {
  RiskParams risk;
  risk.maintenance_ratio = 0.0123;
  risk.large_exposure_usd = 7777.0;
  std::string text = RiskMonitorProgramText(risk);
  EXPECT_NE(text.find("0.0123"), std::string::npos);
  EXPECT_NE(text.find("7777"), std::string::npos);
  ASSERT_TRUE(Parser::ParseProgram(text).ok());
}

TEST(EthPerpProgramTextTest, EveryPaperModuleContributesRules) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok());
  // Count rules by head predicate; every module's key predicates appear.
  std::map<std::string, int> heads;
  for (const Rule& rule : program->rules()) {
    heads[PredicateName(rule.head.predicate)]++;
  }
  EXPECT_EQ(heads["isOpen"], 2);    // rules 1-2
  EXPECT_EQ(heads["changeM"], 3);   // rules 4-6
  EXPECT_EQ(heads["margin"], 4);    // rules 3, 7, 8, 9
  EXPECT_EQ(heads["position"], 4);  // rules 10, 13, 14, 15
  EXPECT_EQ(heads["order"], 2);     // rules 11-12
  EXPECT_EQ(heads["pnl"], 1);       // rule 16
  EXPECT_EQ(heads["eventContrib"], 4);
  EXPECT_EQ(heads["event"], 1);
  EXPECT_EQ(heads["skew"], 2);      // rules 21-22
  EXPECT_EQ(heads["tdiff"], 3);     // rules 23-25
  EXPECT_EQ(heads["tdelta"], 1);    // rule 26
  EXPECT_EQ(heads["rate"], 1);      // rule 27
  EXPECT_EQ(heads["clampR"], 3);    // rules 28-30
  EXPECT_EQ(heads["unrFund"], 1);   // rule 31
  EXPECT_EQ(heads["frs"], 2);       // rules 32-33
  EXPECT_EQ(heads["indF"], 3);      // rules 34-36
  EXPECT_EQ(heads["funding"], 1);   // rule 37
  EXPECT_EQ(heads["fee"], 8);       // 38, 39, 40-43, K=0, 48
  EXPECT_EQ(heads["finalFee"], 5);  // 44-47 + K=0
  EXPECT_EQ(heads["marketOpen"], 2);
}

}  // namespace
}  // namespace dmtl
