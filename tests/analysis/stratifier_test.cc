#include "src/analysis/stratifier.h"

#include <gtest/gtest.h>

#include "src/parser/parser.h"

namespace dmtl {
namespace {

Program Parse(const char* text) {
  auto program = Parser::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return *std::move(program);
}

TEST(StratifierTest, PositiveRecursionSingleStratum) {
  Program p = Parse(
      "reach(X, Y) :- edge(X, Y) .\n"
      "reach(X, Z) :- reach(X, Y), edge(Y, Z) .\n");
  auto strat = Stratify(p);
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_EQ(strat->predicate_stratum.at(InternPredicate("edge")), 0);
  EXPECT_EQ(strat->predicate_stratum.at(InternPredicate("reach")), 0);
}

TEST(StratifierTest, NegationForcesStrictlyHigherStratum) {
  Program p = Parse(
      "a(X) :- base(X) .\n"
      "b(X) :- base(X), not a(X) .\n"
      "c(X) :- b(X), not a(X) .\n");
  auto strat = Stratify(p);
  ASSERT_TRUE(strat.ok()) << strat.status();
  int sa = strat->predicate_stratum.at(InternPredicate("a"));
  int sb = strat->predicate_stratum.at(InternPredicate("b"));
  int sc = strat->predicate_stratum.at(InternPredicate("c"));
  EXPECT_LT(sa, sb);
  EXPECT_LE(sb, sc);
}

TEST(StratifierTest, NegativeCycleRejected) {
  Program p = Parse(
      "p(X) :- base(X), not q(X) .\n"
      "q(X) :- base(X), not p(X) .\n");
  auto strat = Stratify(p);
  ASSERT_FALSE(strat.ok());
  EXPECT_EQ(strat.status().code(), StatusCode::kNotStratifiable);
}

TEST(StratifierTest, NegativeSelfLoopRejected) {
  Program p = Parse("p(X) :- base(X), not p(X) .\n");
  EXPECT_FALSE(Stratify(p).ok());
}

TEST(StratifierTest, TemporalNegativeSelfGuardIsStillACycle) {
  // Even under a temporal operator, negation through one's own predicate is
  // a negative cycle for stratification purposes.
  Program p = Parse("p(X) :- base(X), not boxminus p(X) .\n");
  EXPECT_FALSE(Stratify(p).ok());
}

TEST(StratifierTest, AggregationForcesStrictlyHigherStratum) {
  Program p = Parse(
      "contrib(A, S) :- modPos(A, S) .\n"
      "total(msum(S)) :- contrib(A, S) .\n"
      "over(A) :- total(T), modPos(A, S), T > 10.0 .\n");
  auto strat = Stratify(p);
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_LT(strat->predicate_stratum.at(InternPredicate("contrib")),
            strat->predicate_stratum.at(InternPredicate("total")));
  EXPECT_LE(strat->predicate_stratum.at(InternPredicate("total")),
            strat->predicate_stratum.at(InternPredicate("over")));
}

TEST(StratifierTest, AggregationInsideRecursionRejected) {
  Program p = Parse(
      "contrib(A, S) :- total(S), modPos(A, S) .\n"
      "total(msum(S)) :- contrib(A, S) .\n");
  auto strat = Stratify(p);
  ASSERT_FALSE(strat.ok());
  EXPECT_EQ(strat.status().code(), StatusCode::kNotStratifiable);
}

TEST(StratifierTest, RulesGroupedByHeadStratum) {
  Program p = Parse(
      "a(X) :- base(X) .\n"
      "b(X) :- base(X), not a(X) .\n");
  auto strat = Stratify(p);
  ASSERT_TRUE(strat.ok());
  ASSERT_GE(strat->num_strata, 2);
  // Rule 0 (head a) in a's stratum, rule 1 (head b) above it.
  int sa = strat->predicate_stratum.at(InternPredicate("a"));
  int sb = strat->predicate_stratum.at(InternPredicate("b"));
  EXPECT_EQ(strat->rule_strata[sa], (std::vector<size_t>{0}));
  EXPECT_EQ(strat->rule_strata[sb], (std::vector<size_t>{1}));
}

TEST(StratifierTest, EthPerpShapedDependencies) {
  // The paper's Section 3.8 argument: the dependency graph of the contract
  // modules has no negative cycles.
  Program p = Parse(
      "isOpen(A) :- tranM(A, M) .\n"
      "isOpen(A) :- boxminus isOpen(A), not withdraw(A) .\n"
      "order(A, S) :- modPos(A, S) .\n"
      "position(A, S, N) :- diamondminus position(A, S, N), "
      "not order(A, _), isOpen(A) .\n"
      "eventContrib(A, S) :- modPos(A, S) .\n"
      "event(msum(S)) :- eventContrib(A, S) .\n"
      "skew(K) :- diamondminus skew(K), not event(_) .\n"
      "skew(K) :- diamondminus skew(X), event(S), K = X + S .\n");
  auto strat = Stratify(p);
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_LT(strat->predicate_stratum.at(InternPredicate("order")),
            strat->predicate_stratum.at(InternPredicate("position")));
  EXPECT_LT(strat->predicate_stratum.at(InternPredicate("eventContrib")),
            strat->predicate_stratum.at(InternPredicate("event")));
  EXPECT_LT(strat->predicate_stratum.at(InternPredicate("event")),
            strat->predicate_stratum.at(InternPredicate("skew")));
}

}  // namespace
}  // namespace dmtl
