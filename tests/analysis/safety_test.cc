#include "src/analysis/safety.h"

#include <gtest/gtest.h>

#include "src/parser/parser.h"

namespace dmtl {
namespace {

Status CheckText(const char* text) {
  auto program = Parser::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return CheckSafety(*program);
}

TEST(SafetyTest, BoundHeadIsSafe) {
  EXPECT_TRUE(CheckText("p(X, Y) :- q(X), r(Y) .").ok());
}

TEST(SafetyTest, UnboundHeadVariableRejected) {
  Status s = CheckText("p(X, Y) :- q(X) .");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsafeRule);
  EXPECT_NE(s.message().find("Y"), std::string::npos);
}

TEST(SafetyTest, AssignmentBindsHeadVariable) {
  EXPECT_TRUE(CheckText("p(X, M) :- q(X), M = 2 * 3 .").ok());
  EXPECT_TRUE(CheckText("p(X, M) :- q(X, Y), M = Y + 1 .").ok());
}

TEST(SafetyTest, AssignmentChainsResolveInAnyOrder) {
  EXPECT_TRUE(
      CheckText("p(X, B) :- q(X, Y), B = A + 1, A = Y * 2 .").ok());
}

TEST(SafetyTest, CircularAssignmentsRejected) {
  Status s = CheckText("p(X, A) :- q(X), A = B + 1, B = A + 1 .");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsafeRule);
}

TEST(SafetyTest, ComparisonNeedsBoundVariables) {
  EXPECT_FALSE(CheckText("p(X) :- q(X), Y > 3 .").ok());
  EXPECT_TRUE(CheckText("p(X) :- q(X, Y), Y > 3 .").ok());
}

TEST(SafetyTest, TimestampBindsItsVariable) {
  EXPECT_TRUE(CheckText("p(T) :- q(), timestamp(T) .").ok());
  EXPECT_TRUE(CheckText("p(D) :- q(T1), timestamp(T), D = T - T1 .").ok());
}

TEST(SafetyTest, ExistentialNegationAllowed) {
  // The contract's `not order(A, _)` pattern: unbound variables in negated
  // literals quantify existentially and are legal.
  EXPECT_TRUE(
      CheckText("p(A) :- q(A), not order(A, _) .").ok());
  EXPECT_TRUE(CheckText("p(A) :- q(A), not r(A, X) .").ok());
}

TEST(SafetyTest, VariablesInsideMetricOperatorsCount) {
  EXPECT_TRUE(CheckText("p(X) :- boxminus[1,1] q(X) .").ok());
  EXPECT_TRUE(
      CheckText("p(X, Y) :- (q(X) since[0,5] r(Y)) .").ok());
}

TEST(SafetyTest, AggregateTermMustBeBound) {
  auto program = Parser::ParseProgram("t(msum(S)) :- q(A), S = A + 1 .");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(CheckSafety(*program).ok());
  auto bad = Parser::ParseProgram("t(msum(S)) :- q(A) .");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(CheckSafety(*bad).ok());
}

TEST(SafetyTest, WholeProgramCheckNamesOffendingRule) {
  Status s = CheckText(
      "ok(X) :- q(X) .\n"
      "bad(Y) :- q(X) .\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bad"), std::string::npos);
}

}  // namespace
}  // namespace dmtl
