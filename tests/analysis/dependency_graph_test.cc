#include "src/analysis/dependency_graph.h"

#include <gtest/gtest.h>

#include "src/analysis/dot_export.h"
#include "src/contracts/eth_perp_program.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

TEST(DependencyGraphTest, EdgesAndPolarity) {
  auto program = Parser::ParseProgram(
      "b(X) :- a(X), not c(X) .\n"
      "t(msum(S)) :- d(A, S) .\n");
  ASSERT_TRUE(program.ok());
  DependencyGraph graph = DependencyGraph::Build(*program);
  EXPECT_EQ(graph.nodes().size(), 5u);
  ASSERT_EQ(graph.edges().size(), 3u);
  int positive = 0;
  int negative = 0;
  int aggregated = 0;
  for (const auto& e : graph.edges()) {
    switch (e.kind) {
      case EdgeKind::kPositive:
        ++positive;
        break;
      case EdgeKind::kNegative:
        ++negative;
        break;
      case EdgeKind::kAggregated:
        ++aggregated;
        break;
    }
  }
  EXPECT_EQ(positive, 1);
  EXPECT_EQ(negative, 1);
  EXPECT_EQ(aggregated, 1);
}

TEST(DependencyGraphTest, DeduplicatesParallelEdges) {
  auto program = Parser::ParseProgram(
      "b(X) :- a(X) .\n"
      "b(X) :- a(X), a(X) .\n");
  ASSERT_TRUE(program.ok());
  DependencyGraph graph = DependencyGraph::Build(*program);
  EXPECT_EQ(graph.edges().size(), 1u);
}

// The paper's Figure 1: the ETH-PERP dependency graph contains the arrows
// the figure draws between the module predicates.
TEST(DependencyGraphTest, EthPerpFigure1Arrows) {
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  DependencyGraph graph = DependencyGraph::Build(*program);
  auto has_edge = [&](const char* from, const char* to) {
    PredicateId f = InternPredicate(from);
    PredicateId t = InternPredicate(to);
    for (const auto& e : graph.edges()) {
      if (e.from == f && e.to == t) return true;
    }
    return false;
  };
  // Figure 1 arrows (modulo the paper's renamings documented in DESIGN.md).
  EXPECT_TRUE(has_edge("tranM", "isOpen"));
  EXPECT_TRUE(has_edge("tranM", "margin"));
  EXPECT_TRUE(has_edge("withdraw", "isOpen"));
  EXPECT_TRUE(has_edge("modPos", "order"));
  EXPECT_TRUE(has_edge("closePos", "order"));
  EXPECT_TRUE(has_edge("order", "position"));
  EXPECT_TRUE(has_edge("position", "pnl"));
  EXPECT_TRUE(has_edge("pnl", "margin"));
  EXPECT_TRUE(has_edge("event", "skew"));
  EXPECT_TRUE(has_edge("skew", "rate"));
  EXPECT_TRUE(has_edge("frs", "indF"));
  EXPECT_TRUE(has_edge("indF", "funding"));
  EXPECT_TRUE(has_edge("funding", "margin"));
  EXPECT_TRUE(has_edge("skew", "fee"));
  EXPECT_TRUE(has_edge("fee", "finalFee"));
  EXPECT_TRUE(has_edge("finalFee", "margin"));
}

TEST(DependencyGraphTest, DotExportShape) {
  auto program = Parser::ParseProgram("b(X) :- a(X), not c(X) .");
  ASSERT_TRUE(program.ok());
  std::string dot = ToDot(DependencyGraph::Build(*program), "g");
  EXPECT_NE(dot.find("digraph g {"), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace dmtl
