// A single narrative scenario exercising the whole contract the way the
// paper's running examples do, plus the Section 3.8 termination and
// stratification arguments as executable checks.

#include <gtest/gtest.h>

#include "src/analysis/stratifier.h"
#include "tests/contracts/contract_test_util.h"

namespace dmtl {
namespace {

TEST(PaperExamplesTest, FullLifecycleNarrative) {
  // Day-granularity story: deposit, open, modify, close, withdraw.
  MarketParams params;
  Database db = RunContract(
      "start()@0 . skew(100.0)@0 . frs(0.0)@0 .\n"
      "price(100.0)@[0, 10) . price(110.0)@[10, 20) . "
      "price(95.0)@[20, 30] .\n"
      "tranM(abc, 1000.0)@2 .\n"
      "modPos(abc, 3.0)@5 .\n"
      "modPos(abc, -1.0)@12 .\n"
      "closePos(abc)@21 .\n"
      "withdraw(abc)@25 .",
      30, params);

  // Margin holds from the deposit until the close settles into it.
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 2), 1000.0);
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 20), 1000.0);

  // Position: +3 at 100, then -1 at 110.
  auto [s5, n5] = PositionAt(db, "abc", 5);
  EXPECT_DOUBLE_EQ(s5, 3.0);
  EXPECT_DOUBLE_EQ(n5, 300.0);
  auto [s12, n12] = PositionAt(db, "abc", 12);
  EXPECT_DOUBLE_EQ(s12, 2.0);
  EXPECT_DOUBLE_EQ(n12, 300.0 - 110.0);

  // Close at 95: pnl = 2*95 - 190 = 0.
  EXPECT_NEAR(ValueAt(db, "pnl", "abc", 21), 0.0, 1e-12);

  // Fees: open leg (K=103>0, S>0 -> taker), reduce leg (S<0 -> maker),
  // close leg of a long under positive skew -> maker.
  double expected_fee = 3.0 * 100.0 * params.taker_fee +
                        1.0 * 110.0 * params.maker_fee +
                        2.0 * 95.0 * params.maker_fee;
  EXPECT_NEAR(ValueAt(db, "finalFee", "abc", 21), expected_fee, 1e-12);

  // Funding settles at close; margin folds everything in and survives to
  // the withdrawal, after which the account is gone.
  double funding = ValueAt(db, "funding", "abc", 21);
  EXPECT_NEAR(ValueAt(db, "margin", "abc", 24),
              1000.0 + 0.0 - expected_fee + funding, 1e-9);
  EXPECT_FALSE(HoldsAt(db, "margin", "abc", 25));
  EXPECT_FALSE(HoldsAt(db, "isOpen", "abc", 25));
}

TEST(PaperExamplesTest, Section38StratificationHolds) {
  // "The dependency graph of our program does not contain cycles involving
  // negative edges" - executable version of the Section 3.8 argument.
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  auto strat = Stratify(*program);
  ASSERT_TRUE(strat.ok()) << strat.status();
  EXPECT_GE(strat->num_strata, 4);
}

TEST(PaperExamplesTest, Section38GracefulTermination) {
  // "Eventually the market will be closed and all the margins withdrawn";
  // with every account withdrawn and the marketEnd mark set, the
  // materialization reaches a fixpoint strictly before the horizon.
  Database db = RunContract(
      "start()@0 . skew(0.0)@0 . frs(0.0)@0 . price(100.0)@[0, 1000] .\n"
      "tranM(abc, 10.0)@2 . withdraw(abc)@5 . marketEnd()@8 .",
      1000);
  // Nothing account-related survives past the withdrawal...
  EXPECT_FALSE(HoldsAt(db, "isOpen", "abc", 6));
  // ...and no market-level chain survives past marketEnd.
  const Relation* skew = db.Find("skew");
  ASSERT_NE(skew, nullptr);
  for (const auto& [tuple, set] : skew->data()) {
    EXPECT_FALSE(set.Contains(Rational(9)))
        << "skew leaked past marketEnd: " << set.ToString();
  }
  const Relation* market_open = db.Find("marketOpen");
  ASSERT_NE(market_open, nullptr);
  for (const auto& [tuple, set] : market_open->data()) {
    EXPECT_FALSE(set.Contains(Rational(8)));
  }
}

TEST(PaperExamplesTest, MonotoneStateEvolution) {
  // "Insertions are sufficient to model the state evolution": the margin
  // history of Example 3.1 is fully queryable afterwards - old states are
  // never destroyed, only bounded in time.
  Database db = RunContract("tranM(abc, 97.0)@1 . tranM(abc, 3.0)@4 .", 8);
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 3), 97.0);   // history
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 4), 100.0);  // after
  EXPECT_DOUBLE_EQ(ValueAt(db, "margin", "abc", 8), 100.0);
}

TEST(PaperExamplesTest, ProgramTextIsSelfContainedArtifact) {
  // The generated text round-trips through the parser - the artifact the
  // paper publishes is the program text itself.
  std::string text = EthPerpProgramText();
  auto program = Parser::ParseProgram(text);
  ASSERT_TRUE(program.ok()) << program.status();
  auto reparsed = Parser::ParseProgram(program->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(program->ToString(), reparsed->ToString());
  // All five modules are announced in the text.
  for (const char* module :
       {"MARGIN", "POSITION", "RETURNS", "F-RATE", "FEES"}) {
    EXPECT_NE(text.find(module), std::string::npos) << module;
  }
}

}  // namespace
}  // namespace dmtl
