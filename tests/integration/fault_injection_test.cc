#include <gtest/gtest.h>

#include <string>

#include "src/common/fault_injector.h"
#include "src/eval/seminaive.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

// Two mutually recursive divergent predicates: every fixpoint round has two
// rules with fresh deltas (so parallel rounds always run two tasks and two
// barrier merges), and the horizon makes the clean fixpoint finite.
constexpr char kTwin[] =
    "a(A) :- deposit(A) .\n"
    "b(A) :- deposit(A) .\n"
    "a(A) :- boxminus b(A) .\n"
    "b(A) :- boxminus a(A) .\n"
    "deposit(x)@2 .\n";

Parser::ParsedUnit ParseTwin() {
  auto unit = Parser::Parse(kTwin);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return *unit;
}

// Chain acceleration off so rounds advance one step at a time; small-delta
// heuristic off so multi-thread runs exercise the pool and barrier merge on
// every round; horizon so the clean fixpoint terminates.
EngineOptions TwinOptions(int threads) {
  EngineOptions options;
  options.num_threads = threads;
  options.enable_chain_acceleration = false;
  options.parallel_min_round_intervals = 0;
  options.min_time = Rational(0);
  options.max_time = Rational(10);
  return options;
}

std::string CleanResult(int threads) {
  Parser::ParsedUnit unit = ParseTwin();
  Database db = unit.database;
  Status status = Materialize(unit.program, &db, TwinOptions(threads));
  EXPECT_TRUE(status.ok()) << status;
  return db.ToString();
}

// The contract every injected failure must satisfy: the database sits at
// the exact round barrier reported in the stats (verified against a
// max_rounds-capped reference run where the stop round is deterministic),
// and a clean re-run from the partial database reaches the same fixpoint as
// an unfaulted run. `deterministic_round` is false for faults whose hit
// lands on a racy path (e.g. pool task dispatch order at width > 1), where
// only the recovery half is checkable.
void ExpectBarrierConsistentAndRecoverable(const EngineOptions& options,
                                           const EngineStats& stats,
                                           Database db,
                                           bool deterministic_round = true) {
  Parser::ParsedUnit unit = ParseTwin();
  if (deterministic_round) {
    if (stats.stopped_round == 0) {
      EXPECT_EQ(db.ToString(), unit.database.ToString());
    } else {
      EngineOptions reference = options;
      reference.max_rounds = stats.stopped_round - 1;
      Database ref_db = unit.database;
      EngineStats ref_stats;
      Status ref_status =
          Materialize(unit.program, &ref_db, reference, &ref_stats);
      ASSERT_EQ(ref_status.code(), StatusCode::kResourceExhausted);
      ASSERT_EQ(ref_stats.stopped_round, stats.stopped_round);
      EXPECT_EQ(db.ToString(), ref_db.ToString());
    }
  }
  // Recovery: with the fault disarmed, materialization completes from the
  // partial database and reaches the clean fixpoint.
  Status rerun = Materialize(unit.program, &db, options);
  ASSERT_TRUE(rerun.ok()) << rerun;
  EXPECT_EQ(db.ToString(), CleanResult(options.num_threads));
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Reset(); }
  void TearDown() override { FaultInjector::Reset(); }
};

TEST_F(FaultInjectionTest, RoundFaultRollsBackAndRecovers) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // Hit 3 = the start of fixpoint round 2 (round 0 and round 1 passed).
    FaultInjector::Arm("seminaive.round", 3,
                       Status::EvalError("injected round fault"));
    Parser::ParsedUnit unit = ParseTwin();
    Database db = unit.database;
    EngineOptions options = TwinOptions(threads);
    EngineStats stats;
    Status status = Materialize(unit.program, &db, options, &stats);
    FaultInjector::Reset();
    ASSERT_EQ(status.code(), StatusCode::kEvalError);
    EXPECT_EQ(status.message(), "injected round fault");
    EXPECT_EQ(stats.stop_reason, StopReason::kError);
    EXPECT_EQ(stats.stopped_round, 2u);
    ExpectBarrierConsistentAndRecoverable(options, stats, std::move(db));
  }
}

TEST_F(FaultInjectionTest, PartialBarrierMergeIsRolledBack) {
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // Round 0 merges four buffered sinks (hits 1-4), round 1 merges two.
    // Hit 6 fires after round 1's first sink has already been merged into
    // the store - exactly the half-merged barrier state that must never be
    // observable.
    FaultInjector::Arm("seminaive.merge", 6,
                       Status::EvalError("injected merge fault"));
    Parser::ParsedUnit unit = ParseTwin();
    Database db = unit.database;
    EngineOptions options = TwinOptions(threads);
    EngineStats stats;
    Status status = Materialize(unit.program, &db, options, &stats);
    FaultInjector::Reset();
    ASSERT_EQ(status.code(), StatusCode::kEvalError);
    EXPECT_EQ(stats.stop_reason, StopReason::kError);
    EXPECT_EQ(stats.stopped_round, 1u);
    EXPECT_GT(stats.rolled_back_intervals, 0u);
    ExpectBarrierConsistentAndRecoverable(options, stats, std::move(db));
  }
}

TEST_F(FaultInjectionTest, PoolTaskFaultFailsTheRoundCleanly) {
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // All of round 0's four tasks fire before any merge happens, so
    // whichever task draws the third hit (dispatch order is racy), the
    // failure lands in round 0 and the database must come back untouched.
    FaultInjector::Arm("thread_pool.task", 3,
                       Status::EvalError("injected task fault"));
    Parser::ParsedUnit unit = ParseTwin();
    Database db = unit.database;
    EngineOptions options = TwinOptions(threads);
    EngineStats stats;
    Status status = Materialize(unit.program, &db, options, &stats);
    FaultInjector::Reset();
    ASSERT_EQ(status.code(), StatusCode::kEvalError);
    EXPECT_EQ(stats.stop_reason, StopReason::kError);
    EXPECT_EQ(stats.stopped_round, 0u);
    EXPECT_EQ(db.ToString(), unit.database.ToString());
    ExpectBarrierConsistentAndRecoverable(options, stats, std::move(db));
  }
}

TEST_F(FaultInjectionTest, InsertSetThrowBeforeMutationLeavesStoreClean) {
  // Hit 1 is the store-side insert of the first emission of round 0: the
  // site throws before mutating, the round protection converts it to a
  // clean kInternal, and the database comes back exactly as it went in.
  FaultInjector::ArmThrow("database.insert_set", 1, "injected storage fault");
  Parser::ParsedUnit unit = ParseTwin();
  Database db = unit.database;
  EngineOptions options = TwinOptions(1);
  EngineStats stats;
  Status status = Materialize(unit.program, &db, options, &stats);
  FaultInjector::Reset();
  ASSERT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("injected storage fault"),
            std::string::npos);
  EXPECT_EQ(stats.stop_reason, StopReason::kError);
  EXPECT_EQ(stats.stopped_round, 0u);
  EXPECT_EQ(db.ToString(), unit.database.ToString());
  ExpectBarrierConsistentAndRecoverable(options, stats, std::move(db));
}

TEST_F(FaultInjectionTest, InsertSetThrowAfterPairedInsertIsRepaired) {
  // Hit 2 is the *delta-side* insert paired with a store insert that
  // already succeeded; the sink must undo the paired store insert before
  // rethrowing or the rollback would miss that coverage (a torn database).
  FaultInjector::ArmThrow("database.insert_set", 2, "injected delta fault");
  Parser::ParsedUnit unit = ParseTwin();
  Database db = unit.database;
  EngineOptions options = TwinOptions(1);
  EngineStats stats;
  Status status = Materialize(unit.program, &db, options, &stats);
  FaultInjector::Reset();
  ASSERT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(stats.stopped_round, 0u);
  EXPECT_EQ(db.ToString(), unit.database.ToString());
  ExpectBarrierConsistentAndRecoverable(options, stats, std::move(db));
}

TEST_F(FaultInjectionTest, InsertSetThrowIsCrashFreeAtEveryPoolWidth) {
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // At pool width > 1 the hit order across worker overlays is racy, so
    // the stopped round is nondeterministic; crash-freedom, a clean
    // kInternal, and full recovery are the invariants.
    FaultInjector::ArmThrow("database.insert_set", 3,
                            "injected storage fault");
    Parser::ParsedUnit unit = ParseTwin();
    Database db = unit.database;
    EngineOptions options = TwinOptions(threads);
    EngineStats stats;
    Status status = Materialize(unit.program, &db, options, &stats);
    FaultInjector::Reset();
    ASSERT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_EQ(stats.stop_reason, StopReason::kError);
    ExpectBarrierConsistentAndRecoverable(options, stats, std::move(db),
                                          /*deterministic_round=*/false);
  }
}

TEST_F(FaultInjectionTest, EveryStatusSiteFirstHitIsCleanAndRecoverable) {
  // Safety-net sweep: arm each Status-returning engine site on its very
  // first hit at every pool width. A site that a configuration never
  // reaches (merge/task sites at width 1) must leave the run untouched;
  // a reached site must fail cleanly and recover after Reset.
  for (const char* site :
       {"seminaive.round", "seminaive.merge", "thread_pool.task"}) {
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE(std::string(site) + " threads=" + std::to_string(threads));
      FaultInjector::Arm(site, 1, Status::EvalError("injected sweep fault"));
      Parser::ParsedUnit unit = ParseTwin();
      Database db = unit.database;
      EngineOptions options = TwinOptions(threads);
      EngineStats stats;
      Status status = Materialize(unit.program, &db, options, &stats);
      uint64_t hits = FaultInjector::HitCount(site);
      FaultInjector::Reset();
      if (status.ok()) {
        EXPECT_EQ(hits, 0u);
        EXPECT_EQ(db.ToString(), CleanResult(threads));
      } else {
        ASSERT_EQ(status.code(), StatusCode::kEvalError);
        EXPECT_EQ(stats.stop_reason, StopReason::kError);
        ExpectBarrierConsistentAndRecoverable(options, stats, std::move(db),
                                              /*deterministic_round=*/false);
      }
    }
  }
}

}  // namespace
}  // namespace dmtl
