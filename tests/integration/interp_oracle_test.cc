// The AST interpreter as a differential oracle for the rule compiler: every
// materialization the compiled VM produces must be byte-identical to the
// staged interpreter's - database contents, value-change series, and
// provenance - at every pool width. Runs over the shipped contract
// program(s), a directed recursion suite, and the randomized fuzz fragment,
// plus a fault-injection case proving the round barrier rolls back a
// partially flushed VM dispatch. These tests build a separate ctest lane
// (label InterpOracle, binary dmtl_oracle_tests).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/chain/replayer.h"
#include "src/chain/workload.h"
#include "src/common/fault_injector.h"
#include "src/engine/reasoner.h"
#include "src/eval/seminaive.h"
#include "src/parser/parser.h"
#include "src/storage/serialize.h"

namespace dmtl {
namespace {

struct OracleRun {
  std::string database;    // SerializeDatabase of the fixpoint
  std::string series;      // Reasoner::Series of every relation
  std::string provenance;  // every DerivationRecord, in emission order
};

// One materialization with everything observable captured as text.
OracleRun RunOnce(const Program& program, const Database& facts,
                  EngineOptions options, bool compile, int threads) {
  options.enable_rule_compile = compile;
  options.num_threads = threads;
  std::vector<DerivationRecord> provenance;
  options.provenance = &provenance;
  Database db = facts;
  Status status = Materialize(program, &db, options);
  EXPECT_TRUE(status.ok()) << status;

  OracleRun out;
  out.database = SerializeDatabase(db);
  std::ostringstream series;
  for (const auto& [pred, rel] : db.relations()) {
    (void)rel;
    series << PredicateName(pred) << ":\n";
    for (const auto& [t, tuple] : Reasoner::Series(db, PredicateName(pred))) {
      series << "  " << t.ToString() << " " << TupleToString(tuple) << "\n";
    }
  }
  out.series = series.str();
  std::ostringstream prov;
  for (const DerivationRecord& record : provenance) {
    prov << record.ToString(program) << "\n";
  }
  out.provenance = prov.str();
  return out;
}

// The oracle contract: at each pool width, compile-on and compile-off runs
// must match byte for byte on all three artifacts. (Provenance attribution
// may differ BETWEEN widths - see docs/parallelism.md - but never between
// executors at the same width: the VM emits in exactly the interpreter's
// order.)
void ExpectExecutorsAgree(const Program& program, const Database& facts,
                          const EngineOptions& options,
                          const std::string& what) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(what + " threads=" + std::to_string(threads));
    OracleRun vm = RunOnce(program, facts, options, /*compile=*/true, threads);
    OracleRun interp =
        RunOnce(program, facts, options, /*compile=*/false, threads);
    EXPECT_EQ(vm.database, interp.database);
    EXPECT_EQ(vm.series, interp.series);
    EXPECT_EQ(vm.provenance, interp.provenance);
  }
}

// --- shipped programs ------------------------------------------------------

// Every program shipped under programs/ runs against a small generated
// contract session (the shipped files carry rules, not facts).
TEST(InterpOracleProgramsTest, ShippedProgramsAgree) {
  ASSERT_TRUE(std::filesystem::exists("programs"))
      << "run from the repository root (ctest does)";
  WorkloadConfig config;
  config.name = "oracle";
  config.num_events = 40;
  config.num_trades = 8;
  config.duration_s = 900;
  config.seed = 7;
  auto session = GenerateSession(config);
  ASSERT_TRUE(session.ok()) << session.status();
  Database facts = SessionToDatabase(*session);
  EngineOptions options = SessionEngineOptions(*session);

  size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator("programs")) {
    if (entry.path().extension() != ".dmtl") continue;
    auto unit = ReadSourceFile(entry.path().string());
    ASSERT_TRUE(unit.ok()) << entry.path() << ": " << unit.status();
    Database combined = facts;
    combined.MergeFrom(unit->database);
    ExpectExecutorsAgree(unit->program, combined, options,
                         entry.path().filename().string());
    ++checked;
  }
  EXPECT_GE(checked, 1u) << "programs/ held no .dmtl files";
}

// --- directed recursion suite ----------------------------------------------

struct RecursionCase {
  const char* name;
  const char* text;
};

// Shapes chosen to hit every executor path: self-recursion (the emit-
// during-iteration hazard), mutual recursion, mixed chain steps, negation
// over derived state, metric windows on recursive results, and an
// aggregate head (a VM-declined rule mixed among compiled ones).
const RecursionCase kRecursionCases[] = {
    {"transitive_closure",
     "reach(X, Y) :- edge(X, Y) .\n"
     "reach(X, Z) :- reach(X, Y), edge(Y, Z) .\n"
     "edge(a, b)@[0,10] . edge(b, c)@[2,8] . edge(c, a)@[4,6] .\n"
     "edge(c, d)@5 .\n"},
    {"mutual_recursion",
     "a(X) :- seed(X) .\n"
     "b(X) :- boxminus[1,1] a(X) .\n"
     "a(X) :- boxminus[1,1] b(X), not stop(X) .\n"
     "seed(u)@0 . seed(v)@[0,2] . stop(v)@6 .\n"},
    {"mixed_step_chains",
     "d0(X) :- p0(X) .\n"
     "d0(X) :- boxminus[2,2] d0(X), not p1(X) .\n"
     "d1(X) :- d0(X) .\n"
     "d1(X) :- diamondminus[1,1] d1(X), not p0(X) .\n"
     "p0(a)@[0,1] . p1(a)@7 . p0(b)@4 .\n"},
    {"negation_over_derived",
     "open(X) :- deposit(X) .\n"
     "open(X) :- boxminus[1,1] open(X), not closed(X) .\n"
     "closed(X) :- withdraw(X) .\n"
     "idle(X) :- account(X), not diamondminus[0,3] open(X) .\n"
     "deposit(a)@1 . withdraw(a)@5 . account(a)@[0,12] . account(b)@[0,12] "
     ".\n"},
    {"metric_window_on_recursion",
     "tick(X) :- start(X) .\n"
     "tick(X) :- diamondminus[1,1] tick(X), lim(X) .\n"
     "recent(X) :- diamondminus[0,2] tick(X) .\n"
     "steady(X) :- boxminus[0,2] tick(X) .\n"
     "start(a)@0 . lim(a)@[0,15] .\n"},
    {"aggregate_among_compiled",
     "bal(A, M) :- tranM(A, M) .\n"
     "bal(A, M) :- boxminus[1,1] bal(A, M), not tranM(A, M) .\n"
     "total(msum(M)) :- bal(A, M) .\n"
     "tranM(a, 5.0)@0 . tranM(b, 7.0)@2 . tranM(a, 3.0)@4 .\n"},
};

class InterpOracleRecursionTest
    : public ::testing::TestWithParam<RecursionCase> {};

TEST_P(InterpOracleRecursionTest, ExecutorsAgree) {
  auto unit = Parser::Parse(GetParam().text);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(20);
  ExpectExecutorsAgree(unit->program, unit->database, options,
                       GetParam().name);
  // The same program with chain acceleration off drives every recursive
  // round through Evaluate (no ExtendChain batching).
  EngineOptions no_accel = options;
  no_accel.enable_chain_acceleration = false;
  ExpectExecutorsAgree(unit->program, unit->database, no_accel,
                       std::string(GetParam().name) + "/no-accel");
}

INSTANTIATE_TEST_SUITE_P(Cases, InterpOracleRecursionTest,
                         ::testing::ValuesIn(kRecursionCases),
                         [](const auto& info) { return info.param.name; });

// --- randomized fuzz suite --------------------------------------------------

// Same safe fragment as tests/integration/differential_test.cc (random
// layered programs with chain rules, negation guards, and metric windows),
// here pitted executor-against-executor instead of strategy-vs-strategy.
class OracleFuzzer {
 public:
  explicit OracleFuzzer(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    std::ostringstream out;
    int num_edb = 2 + Pick(2);
    int num_derived = 2 + Pick(3);
    for (int d = 0; d < num_derived; ++d) {
      out << "d" << d << "(X) :- " << LowerAtom(d, num_edb) << Guard(num_edb)
          << " .\n";
      int step = 1 + Pick(2);
      const char* op = Pick(2) == 0 ? "boxminus" : "diamondminus";
      out << "d" << d << "(X) :- " << op << "[" << step << "," << step
          << "] d" << d << "(X), not p0(X) .\n";
      if (Pick(2) == 0) {
        out << "d" << d << "(X) :- diamondminus[0," << (1 + Pick(3)) << "] "
            << LowerAtom(d, num_edb) << " .\n";
      }
    }
    for (int p = 0; p < num_edb; ++p) {
      int facts = 1 + Pick(4);
      for (int f = 0; f < facts; ++f) {
        int lo = Pick(12);
        int hi = lo + Pick(4);
        out << "p" << p << "(c" << Pick(3) << ")@[" << lo << "," << hi
            << "] .\n";
      }
    }
    return out.str();
  }

 private:
  int Pick(int n) { return static_cast<int>(rng_() % n); }

  std::string LowerAtom(int d, int num_edb) {
    if (d > 0 && Pick(2) == 0) {
      return "d" + std::to_string(Pick(d)) + "(X)";
    }
    return "p" + std::to_string(Pick(num_edb)) + "(X)";
  }

  std::string Guard(int num_edb) {
    switch (Pick(3)) {
      case 0:
        return "";
      case 1:
        return ", not p" + std::to_string(Pick(num_edb)) + "(X)";
      default:
        return ", diamondminus[0,2] p" + std::to_string(Pick(num_edb)) +
               "(X)";
    }
  }

  std::mt19937_64 rng_;
};

class InterpOracleFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InterpOracleFuzzTest, ExecutorsAgree) {
  OracleFuzzer fuzzer(GetParam());
  std::string text = fuzzer.Generate();
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\nprogram:\n" << text;
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(40);
  ExpectExecutorsAgree(unit->program, unit->database, options, text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpOracleFuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

// --- fault injection mid-dispatch -------------------------------------------

// An injected failure between two flushed emissions of one VM dispatch:
// part of the dispatch's output has already reached the sink when the
// round fails. The engine must leave the database at the previous round
// barrier (verified against a max_rounds-capped reference run) and a
// clean re-run from the partial database must reach the unfaulted
// fixpoint.
TEST(InterpOracleFaultTest, MidDispatchFailureRollsBackToBarrier) {
  if (std::getenv("DMTL_DISABLE_RULE_COMPILE") != nullptr) {
    GTEST_SKIP() << "rule compilation disabled by environment";
  }
  constexpr char kText[] =
      "a(A) :- deposit(A) .\n"
      "b(A) :- deposit(A) .\n"
      "a(A) :- boxminus b(A) .\n"
      "b(A) :- boxminus a(A) .\n"
      "deposit(x)@2 . deposit(y)@2 .\n";
  auto unit = Parser::Parse(kText);
  ASSERT_TRUE(unit.ok()) << unit.status();
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(10);
  options.enable_chain_acceleration = false;  // all rounds through Evaluate

  auto clean = [&]() {
    Database db = unit->database;
    EXPECT_TRUE(Materialize(unit->program, &db, options).ok());
    return db.ToString();
  };

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    FaultInjector::Reset();
    // Two tuples per rule means every dispatch flushes two emissions;
    // an even hit count >2 lands between the first and second flush of
    // a dispatch in a later round - genuinely mid-dispatch.
    FaultInjector::Arm("vm.dispatch", 10,
                       Status::EvalError("injected mid-dispatch fault"));
    EngineOptions faulted = options;
    faulted.num_threads = threads;
    faulted.parallel_min_round_intervals = 0;
    Database db = unit->database;
    EngineStats stats;
    Status status = Materialize(unit->program, &db, faulted, &stats);
    FaultInjector::Reset();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kEvalError);

    // Barrier consistency: the partial database is exactly the fixpoint
    // prefix up to the round before the one that failed.
    if (stats.stopped_round > 0) {
      EngineOptions reference = faulted;
      reference.max_rounds = stats.stopped_round - 1;
      Database ref_db = unit->database;
      EngineStats ref_stats;
      Status ref_status =
          Materialize(unit->program, &ref_db, reference, &ref_stats);
      ASSERT_EQ(ref_status.code(), StatusCode::kResourceExhausted);
      ASSERT_EQ(ref_stats.stopped_round, stats.stopped_round);
      EXPECT_EQ(db.ToString(), ref_db.ToString());
    } else {
      EXPECT_EQ(db.ToString(), unit->database.ToString());
    }

    // Recovery: re-running without the fault completes to the clean
    // fixpoint from the rolled-back state.
    EngineOptions rerun = options;
    rerun.num_threads = threads;
    Status recovered = Materialize(unit->program, &db, rerun);
    ASSERT_TRUE(recovered.ok()) << recovered;
    EXPECT_EQ(db.ToString(), clean());
  }
}

}  // namespace
}  // namespace dmtl
