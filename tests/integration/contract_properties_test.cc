// Property-style invariants of the ETH-PERP contract over randomized
// sessions: fees are non-negative, funding always debits the heavy side,
// settlements fold into margins exactly, and the materialization is
// insensitive to re-running. Complements the pointwise end-to-end tests.

#include <gtest/gtest.h>

#include <map>

#include "src/chain/replayer.h"
#include "src/chain/subgraph.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/contracts/trade_extractor.h"
#include "src/engine/reasoner.h"

namespace dmtl {
namespace {

struct RunResult {
  Session session;
  Database db;
  std::vector<TradeSettlement> trades;
};

RunResult RunSeed(uint64_t seed) {
  WorkloadConfig config;
  config.name = "prop-" + std::to_string(seed);
  config.num_events = 36;
  config.num_trades = 7;
  config.duration_s = 1200;
  // Strongly one-sided so the funding-rate sign is constant throughout
  // (the FundingNetsAcrossSides property relies on it).
  config.initial_skew = (seed % 2 == 0) ? 5000.0 : -5000.0;
  config.seed = seed;
  RunResult out;
  auto session = GenerateSession(config);
  EXPECT_TRUE(session.ok()) << session.status();
  out.session = *session;
  auto program = EthPerpProgram();
  EXPECT_TRUE(program.ok());
  out.db = SessionToDatabase(out.session);
  Status status =
      Materialize(*program, &out.db, SessionEngineOptions(out.session));
  EXPECT_TRUE(status.ok()) << status;
  auto trades = ExtractTrades(out.db);
  EXPECT_TRUE(trades.ok()) << trades.status();
  out.trades = *trades;
  return out;
}

class ContractPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContractPropertyTest, EveryCloseSettlesCompletely) {
  RunResult run = RunSeed(GetParam());
  // One settlement per closePos, each with pnl+fee+funding joined.
  EXPECT_EQ(run.trades.size(), run.session.NumTrades());
}

TEST_P(ContractPropertyTest, FeesAreStrictlyPositive) {
  RunResult run = RunSeed(GetParam());
  MarketParams params;
  for (const TradeSettlement& t : run.trades) {
    EXPECT_GT(t.fee, 0.0) << t.account << "@" << t.time;
    // And bounded by the taker rate on twice the traded notional... loose
    // sanity: a fee can never exceed taker_fee * total traded notional,
    // which itself is bounded by trips * max_size * max_price. Use a
    // generous absolute cap to catch unit blunders (e.g. percent vs rate).
    EXPECT_LT(t.fee, 1.0e5) << t.account;
  }
}

TEST_P(ContractPropertyTest, SettlementFoldsIntoMarginExactly) {
  RunResult run = RunSeed(GetParam());
  for (const TradeSettlement& t : run.trades) {
    auto before = MarginAt(run.db, t.account, t.time - 1);
    auto after = MarginAt(run.db, t.account, t.time);
    ASSERT_TRUE(before.ok()) << before.status();
    ASSERT_TRUE(after.ok()) << after.status();
    EXPECT_NEAR(*after, *before + t.pnl - t.fee + t.funding, 1e-9)
        << t.account << "@" << t.time;
  }
}

TEST_P(ContractPropertyTest, FundingNetsAcrossSides) {
  // The funding mechanism transfers from the heavy side to the light side:
  // with a strongly skewed market, longs and shorts have opposite funding
  // signs (unless the position flipped sides mid-trade, which the check
  // skips by looking at the opening order only).
  RunResult run = RunSeed(GetParam());
  std::map<std::pair<std::string, int64_t>, double> open_side;
  std::map<std::string, double> size;
  std::map<std::string, int64_t> flips;
  for (const MarketEvent& e : run.session.events) {
    if (e.kind == EventKind::kModifyPosition) {
      double before = size[e.account];
      size[e.account] += e.amount;
      if (before != 0 && (before > 0) != (size[e.account] > 0)) {
        flips[e.account] = e.time;
      }
    } else if (e.kind == EventKind::kClosePosition) {
      open_side[{e.account, e.time}] = size[e.account];
      size[e.account] = 0;
    }
  }
  // Strongly one-sided initial skew dominates individual orders in these
  // sessions, so the instantaneous rate keeps one sign throughout.
  double skew_sign = run.session.initial_skew > 0 ? 1.0 : -1.0;
  for (const TradeSettlement& t : run.trades) {
    if (flips.count(t.account)) continue;
    double side = open_side[{t.account, t.time}];
    if (side == 0 || t.funding == 0) continue;
    // Positive skew: longs pay (funding < 0 for side > 0), shorts receive.
    double expected_sign = (side > 0 ? -1.0 : 1.0) * skew_sign;
    EXPECT_GT(t.funding * expected_sign, 0.0)
        << t.account << "@" << t.time << " side=" << side;
  }
}

TEST_P(ContractPropertyTest, RematerializationIsIdempotent) {
  RunResult run = RunSeed(GetParam());
  std::string before = run.db.ToString();
  auto program = EthPerpProgram();
  ASSERT_TRUE(
      Materialize(*program, &run.db, SessionEngineOptions(run.session))
          .ok());
  EXPECT_EQ(run.db.ToString(), before);
}

TEST_P(ContractPropertyTest, HistoryIsNeverRewritten) {
  // Monotone state evolution: margins queried mid-session match margins
  // queried at the end for the same past tick (no destructive updates).
  RunResult run = RunSeed(GetParam());
  Subgraph subgraph = *Subgraph::Index(run.session);
  for (const auto& [account, amount] : subgraph.Withdrawals()) {
    // Find the withdraw tick.
    for (const MarketEvent& e : run.session.events) {
      if (e.kind == EventKind::kWithdraw && e.account == account) {
        auto margin = MarginAt(run.db, account, e.time - 1);
        ASSERT_TRUE(margin.ok()) << margin.status();
        EXPECT_NEAR(*margin, amount, 1e-9) << account;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContractPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace dmtl
