// Randomized differential testing of the engine: generate random (but
// stratifiable and safe by construction) temporal programs and fact
// databases, then check that all three evaluation strategies - semi-naive
// with chain acceleration, semi-naive without, and naive re-evaluation -
// produce the exact same materialization. This is the safety net under the
// engine's two main optimizations.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "src/eval/seminaive.h"
#include "src/parser/parser.h"

namespace dmtl {
namespace {

// Program generator over a safe fragment:
//  - predicates p0..p{k-1} are EDB, d0..d{m-1} are derived in layer order;
//  - rule bodies use EDB or strictly-lower derived predicates positively,
//    EDB predicates under negation, and unary operators with small ranges;
//  - every derived predicate also has one self-propagation (chain) rule.
class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    std::ostringstream out;
    int num_edb = 2 + Pick(2);      // p0..p{1,2,3}
    int num_derived = 2 + Pick(3);  // d0..d{1..4}
    for (int d = 0; d < num_derived; ++d) {
      // Base rule from a random lower predicate.
      out << "d" << d << "(X) :- " << LowerAtom(d, num_edb) << Guard(num_edb)
          << " .\n";
      // Chain rule with a random step and blocker.
      int step = 1 + Pick(2);
      const char* op = Pick(2) == 0 ? "boxminus" : "diamondminus";
      out << "d" << d << "(X) :- " << op << "[" << step << "," << step
          << "] d" << d << "(X), not p0(X) .\n";
      // A windowed rule exercising dilation/erosion.
      if (Pick(2) == 0) {
        out << "d" << d << "(X) :- diamondminus[0," << (1 + Pick(3)) << "] "
            << LowerAtom(d, num_edb) << " .\n";
      }
    }
    // Facts: random punctual and interval extents on a small timeline.
    for (int p = 0; p < num_edb; ++p) {
      int facts = 1 + Pick(4);
      for (int f = 0; f < facts; ++f) {
        int lo = Pick(12);
        int hi = lo + Pick(4);
        out << "p" << p << "(c" << Pick(3) << ")@[" << lo << "," << hi
            << "] .\n";
      }
    }
    return out.str();
  }

 private:
  int Pick(int n) { return static_cast<int>(rng_() % n); }

  std::string LowerAtom(int d, int num_edb) {
    // Either an EDB atom or a strictly lower derived one.
    if (d > 0 && Pick(2) == 0) {
      return "d" + std::to_string(Pick(d)) + "(X)";
    }
    return "p" + std::to_string(Pick(num_edb)) + "(X)";
  }

  std::string Guard(int num_edb) {
    switch (Pick(3)) {
      case 0:
        return "";
      case 1:
        return ", not p" + std::to_string(Pick(num_edb)) + "(X)";
      default:
        return ", diamondminus[0,2] p" + std::to_string(Pick(num_edb)) +
               "(X)";
    }
  }

  std::mt19937_64 rng_;
};

std::string MaterializeWith(const Parser::ParsedUnit& unit,
                            bool accel, bool naive) {
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(40);
  options.enable_chain_acceleration = accel;
  options.naive_evaluation = naive;
  Database db = unit.database;
  Status status = Materialize(unit.program, &db, options);
  EXPECT_TRUE(status.ok()) << status;
  return db.ToString();
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllStrategiesAgree) {
  ProgramFuzzer fuzzer(GetParam());
  std::string text = fuzzer.Generate();
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\nprogram:\n" << text;

  std::string accel = MaterializeWith(*unit, /*accel=*/true, /*naive=*/false);
  std::string plain = MaterializeWith(*unit, /*accel=*/false,
                                      /*naive=*/false);
  std::string naive = MaterializeWith(*unit, /*accel=*/false, /*naive=*/true);
  EXPECT_EQ(accel, plain) << "chain acceleration diverged on:\n" << text;
  EXPECT_EQ(plain, naive) << "semi-naive diverged from naive on:\n" << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 41));

// A directed differential case: interacting chains with different steps
// (step-2 chains hop over step-1 blockers).
TEST(DifferentialDirectedTest, MixedStepChains) {
  const char* text =
      "d0(X) :- p0(X) .\n"
      "d0(X) :- boxminus[2,2] d0(X), not p1(X) .\n"
      "d1(X) :- d0(X) .\n"
      "d1(X) :- diamondminus[1,1] d1(X), not p0(X) .\n"
      "p0(a)@[0,1] . p1(a)@7 . p0(b)@4 .\n";
  auto unit = Parser::Parse(text);
  ASSERT_TRUE(unit.ok());
  std::string accel = MaterializeWith(*unit, true, false);
  std::string plain = MaterializeWith(*unit, false, false);
  EXPECT_EQ(accel, plain);
  // Spot-check the step-2 hop: d0(a) holds at 0..1, then 2,3 via the
  // chain, 4,5, skips nothing until the blocker at 7 kills the odd chain
  // branch landing there.
  auto parsed = Parser::Parse(text);
  Database db = parsed->database;
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(10);
  ASSERT_TRUE(Materialize(parsed->program, &db, options).ok());
  EXPECT_TRUE(db.Holds("d0", {Value::Symbol("a")}, Rational(6)));
  EXPECT_FALSE(db.Holds("d0", {Value::Symbol("a")}, Rational(7)));
  EXPECT_TRUE(db.Holds("d0", {Value::Symbol("a")}, Rational(8)));
}

}  // namespace
}  // namespace dmtl
