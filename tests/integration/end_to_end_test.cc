// The paper's Section 4 validation methodology, end to end on reduced
// sessions: generate a workload, run it through the DatalogMTL program in
// the reasoner AND through the imperative reference contract, then compare
// the funding-rate sequence and every trade settlement. (The full-scale
// Figure 3/4/5 reproduction lives in bench/.)

#include <gtest/gtest.h>

#include "src/chain/replayer.h"
#include "src/chain/subgraph.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/contracts/trade_extractor.h"
#include "src/engine/reasoner.h"
#include "src/validation/compare.h"

namespace dmtl {
namespace {

struct SessionOutcome {
  SeriesComparison frs;
  TradeErrorReport trades;
  size_t trade_count = 0;
};

SessionOutcome RunAndCompare(const WorkloadConfig& config,
                             MarketParams params = {}) {
  SessionOutcome outcome;
  auto session = GenerateSession(config);
  EXPECT_TRUE(session.ok()) << session.status();

  // DatalogMTL side.
  auto program = EthPerpProgram(params);
  EXPECT_TRUE(program.ok()) << program.status();
  Database db = SessionToDatabase(*session);
  Status status =
      Materialize(*program, &db, SessionEngineOptions(*session));
  EXPECT_TRUE(status.ok()) << status;

  // Reference side (the Subgraph stand-in).
  auto subgraph = Subgraph::Index(*session, params);
  EXPECT_TRUE(subgraph.ok()) << subgraph.status();

  auto frs = ExtractFrsAt(db, session->EventTimes());
  EXPECT_TRUE(frs.ok()) << frs.status();
  auto frs_cmp = CompareFrsSeries(subgraph->FundingRateUpdates(), *frs);
  EXPECT_TRUE(frs_cmp.ok()) << frs_cmp.status();
  outcome.frs = *frs_cmp;

  auto trades = ExtractTrades(db);
  EXPECT_TRUE(trades.ok()) << trades.status();
  outcome.trade_count = trades->size();
  auto report = CompareTrades(subgraph->FuturesTrades(), *trades);
  EXPECT_TRUE(report.ok()) << report.status();
  outcome.trades = *report;
  return outcome;
}

TEST(EndToEndTest, SmallSessionAgreesWithReference) {
  WorkloadConfig cfg;
  cfg.name = "e2e-small";
  cfg.num_events = 30;
  cfg.num_trades = 6;
  cfg.duration_s = 900;
  cfg.initial_skew = -800.0;
  cfg.seed = 11;
  SessionOutcome outcome = RunAndCompare(cfg);
  EXPECT_EQ(outcome.trade_count, 6u);
  // The paper reports FRS agreement at the 1e-12 level; two independent
  // double implementations should match at least that well here.
  EXPECT_LT(outcome.frs.max_abs_diff, 1e-9);
  EXPECT_LT(outcome.trades.returns.max_abs, 1e-9);
  EXPECT_LT(outcome.trades.fee.max_abs, 1e-9);
  EXPECT_LT(outcome.trades.funding.max_abs, 1e-9);
}

TEST(EndToEndTest, PositiveInitialSkewSession) {
  WorkloadConfig cfg;
  cfg.name = "e2e-positive-skew";
  cfg.num_events = 48;
  cfg.num_trades = 10;
  cfg.duration_s = 1500;
  cfg.initial_skew = 2502.85;
  cfg.seed = 12;
  SessionOutcome outcome = RunAndCompare(cfg);
  EXPECT_EQ(outcome.trade_count, 10u);
  EXPECT_LT(outcome.frs.max_abs_diff, 1e-9);
  EXPECT_LT(outcome.trades.funding.max_abs, 1e-9);
}

TEST(EndToEndTest, PrintedRulesConventionAlsoAgrees) {
  // The fee-side convention is applied consistently on both sides, so the
  // validation holds under either reading of the paper.
  MarketParams params;
  params.fee_convention = FeeConvention::kPrintedRules;
  WorkloadConfig cfg;
  cfg.num_events = 30;
  cfg.num_trades = 6;
  cfg.duration_s = 900;
  cfg.seed = 13;
  SessionOutcome outcome = RunAndCompare(cfg, params);
  EXPECT_LT(outcome.trades.fee.max_abs, 1e-9);
}

TEST(EndToEndTest, AccelerationDoesNotChangeContractResults) {
  WorkloadConfig cfg;
  cfg.num_events = 16;
  cfg.num_trades = 3;
  cfg.duration_s = 600;
  cfg.seed = 14;
  auto session = GenerateSession(cfg);
  ASSERT_TRUE(session.ok());
  auto program = EthPerpProgram();
  ASSERT_TRUE(program.ok());
  EngineOptions on = SessionEngineOptions(*session);
  EngineOptions off = on;
  off.enable_chain_acceleration = false;
  Database db_on = SessionToDatabase(*session);
  Database db_off = SessionToDatabase(*session);
  ASSERT_TRUE(Materialize(*program, &db_on, on).ok());
  ASSERT_TRUE(Materialize(*program, &db_off, off).ok());
  EXPECT_EQ(db_on.ToString(), db_off.ToString());
}

TEST(EndToEndTest, MarginAtWithdrawalMatchesReference) {
  // Extension beyond the paper's metrics: final margin balances agree too.
  WorkloadConfig cfg;
  cfg.num_events = 30;
  cfg.num_trades = 6;
  cfg.duration_s = 900;
  cfg.seed = 15;
  auto session = GenerateSession(cfg);
  ASSERT_TRUE(session.ok());
  auto program = EthPerpProgram();
  Database db = SessionToDatabase(*session);
  ASSERT_TRUE(Materialize(*program, &db,
                          SessionEngineOptions(*session))
                  .ok());
  auto subgraph = Subgraph::Index(*session);
  ASSERT_TRUE(subgraph.ok());
  for (const MarketEvent& e : session->events) {
    if (e.kind != EventKind::kWithdraw) continue;
    // margin last holds the tick before the withdrawal.
    auto margin = MarginAt(db, e.account, e.time - 1);
    ASSERT_TRUE(margin.ok()) << margin.status();
    EXPECT_NEAR(*margin, subgraph->Withdrawals().at(e.account), 1e-9)
        << e.account;
  }
}

}  // namespace
}  // namespace dmtl
