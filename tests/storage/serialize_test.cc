#include "src/storage/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dmtl {
namespace {

TEST(SerializeTest, RendersParseableFacts) {
  Database db;
  db.Insert("price", {Value::Double(1301.5)},
            Interval::ClosedOpen(Rational(100), Rational(160)));
  db.Insert("tranM", {Value::Symbol("acc1"), Value::Double(20.0)},
            Interval::Point(Rational(105)));
  std::string text = SerializeDatabase(db);
  EXPECT_EQ(text,
            "price(1301.5)@[100, 160) .\n"
            "tranM(acc1, 20.0)@[105, 105] .\n");
}

TEST(SerializeTest, RoundTripsAllValueKinds) {
  Database db;
  db.Insert("v", {Value::Int(7)}, Interval::Point(Rational(1)));
  db.Insert("v", {Value::Double(0.1)}, Interval::Point(Rational(2)));
  db.Insert("v", {Value::Symbol("plain_sym")}, Interval::Point(Rational(3)));
  db.Insert("v", {Value::Symbol("Needs Quoting!")},
            Interval::Point(Rational(4)));
  db.Insert("v", {Value::Bool(true)}, Interval::Point(Rational(5)));
  db.Insert("v", {Value::Bool(false)}, Interval::Point(Rational(6)));
  db.Insert("w", {}, Interval::All());
  db.Insert("x", {Value::Int(-3)},
            Interval::OpenClosed(Rational(-5, 2), Rational(7)));

  auto parsed = Parser::ParseDatabase(SerializeDatabase(db));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeDatabase(*parsed), SerializeDatabase(db));
  // Exact double round trip.
  EXPECT_TRUE(parsed->Holds("v", {Value::Double(0.1)}, Rational(2)));
  EXPECT_TRUE(parsed->Holds("v", {Value::Bool(true)}, Rational(5)));
  EXPECT_TRUE(
      parsed->Holds("v", {Value::Symbol("Needs Quoting!")}, Rational(4)));
  EXPECT_TRUE(parsed->Holds("w", {}, Rational(1'000'000)));
}

TEST(SerializeTest, DeterministicOrdering) {
  Database a;
  a.Insert("p", {Value::Int(2)}, Interval::Point(Rational(1)));
  a.Insert("p", {Value::Int(1)}, Interval::Point(Rational(1)));
  Database b;
  b.Insert("p", {Value::Int(1)}, Interval::Point(Rational(1)));
  b.Insert("p", {Value::Int(2)}, Interval::Point(Rational(1)));
  EXPECT_EQ(SerializeDatabase(a), SerializeDatabase(b));
}

TEST(SerializeTest, FileRoundTrip) {
  Database db;
  db.Insert("margin", {Value::Symbol("acc"), Value::Double(97.5)},
            Interval::Closed(Rational(1), Rational(9)));
  std::string path =
      (std::filesystem::temp_directory_path() / "dmtl_serialize_test.dmtl")
          .string();
  ASSERT_TRUE(WriteDatabaseFile(db, path).ok());
  auto loaded = ReadDatabaseFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SerializeDatabase(*loaded), SerializeDatabase(db));
  std::remove(path.c_str());
}

TEST(SerializeTest, ReadSourceFileReportsErrors) {
  EXPECT_FALSE(ReadDatabaseFile("/nonexistent/nope.dmtl").ok());
  std::string path =
      (std::filesystem::temp_directory_path() / "dmtl_bad_test.dmtl")
          .string();
  {
    std::ofstream f(path);
    f << "p(a)@5";  // missing dot
  }
  auto result = ReadSourceFile(path);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, ProgramArtifactFileParses) {
  // The shipped programs/eth_perp.dmtl must stay parseable; the content
  // equality with the builder is covered in risk_rules/eth_perp tests.
  auto source = ReadSourceFile("programs/eth_perp.dmtl");
  if (!source.ok()) {
    GTEST_SKIP() << "artifact not found (test run outside repo root)";
  }
  EXPECT_GE(source->program.size(), 40u);
}

}  // namespace
}  // namespace dmtl
