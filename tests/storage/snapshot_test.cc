// Snapshot codec contract: EncodeSnapshot/DecodeSnapshot round-trip every
// field bit-exactly, refuse foreign or future inputs loudly, and the file
// wrappers behave like the in-memory codec.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/parser/parser.h"
#include "src/storage/snapshot.h"

namespace dmtl {
namespace {

Program TestProgram() {
  auto unit = Parser::Parse("q(X) :- diamondminus[0,2] p(X) .\n");
  EXPECT_TRUE(unit.ok()) << unit.status();
  return unit->program;
}

SessionSnapshot TestSnapshot(const Program& program) {
  SessionSnapshot snap;
  snap.program_fingerprint = ProgramFingerprint(program);
  snap.watermark = Rational(7, 2);
  snap.window_min = Rational(-3);
  snap.horizon = Rational(10);
  snap.advanced = true;
  snap.track_provenance = true;
  snap.channels.push_back(SessionSnapshot::Channel{
      InternPredicate("price"), {Value::Double(1310.5)}, Rational(3)});
  snap.input_log.push_back(Fact::Make(
      "p", {Value::Symbol("a")}, Interval::Closed(Rational(1), Rational(3))));
  snap.input_log.push_back(
      Fact::Make("p", {Value::Symbol("b")},
                 Interval::ClosedOpen(Rational(2), Rational(7, 2))));
  snap.database_text =
      "p(a)@[1, 3] .\np(b)@[2, 7/2) .\nq(a)@[1, 7/2] .\n";
  snap.provenance.push_back(DerivationRecord{
      InternPredicate("q"),
      {Value::Symbol("a")},
      Interval::Closed(Rational(1), Rational(3)),
      /*rule_index=*/0,
      /*round=*/1});
  return snap;
}

void ExpectSnapshotsEqual(const SessionSnapshot& a, const SessionSnapshot& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.program_fingerprint, b.program_fingerprint);
  EXPECT_EQ(a.watermark, b.watermark);
  EXPECT_EQ(a.window_min, b.window_min);
  ASSERT_EQ(a.horizon.has_value(), b.horizon.has_value());
  if (a.horizon.has_value()) EXPECT_EQ(*a.horizon, *b.horizon);
  EXPECT_EQ(a.advanced, b.advanced);
  EXPECT_EQ(a.track_provenance, b.track_provenance);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (size_t i = 0; i < a.channels.size(); ++i) {
    EXPECT_EQ(a.channels[i].predicate, b.channels[i].predicate);
    EXPECT_EQ(a.channels[i].args, b.channels[i].args);
    EXPECT_EQ(a.channels[i].logged_hi, b.channels[i].logged_hi);
  }
  ASSERT_EQ(a.input_log.size(), b.input_log.size());
  for (size_t i = 0; i < a.input_log.size(); ++i) {
    EXPECT_EQ(a.input_log[i].predicate, b.input_log[i].predicate);
    EXPECT_EQ(a.input_log[i].args, b.input_log[i].args);
    EXPECT_EQ(a.input_log[i].interval.ToString(),
              b.input_log[i].interval.ToString());
  }
  EXPECT_EQ(a.database_text, b.database_text);
  ASSERT_EQ(a.provenance.size(), b.provenance.size());
  for (size_t i = 0; i < a.provenance.size(); ++i) {
    EXPECT_EQ(a.provenance[i].predicate, b.provenance[i].predicate);
    EXPECT_EQ(a.provenance[i].tuple, b.provenance[i].tuple);
    EXPECT_EQ(a.provenance[i].piece.ToString(),
              b.provenance[i].piece.ToString());
    EXPECT_EQ(a.provenance[i].rule_index, b.provenance[i].rule_index);
    EXPECT_EQ(a.provenance[i].round, b.provenance[i].round);
  }
}

TEST(SnapshotCodecTest, EncodeDecodeRoundTripsEveryField) {
  Program program = TestProgram();
  SessionSnapshot snap = TestSnapshot(program);
  std::string text = EncodeSnapshot(snap);
  auto decoded = DecodeSnapshot(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectSnapshotsEqual(snap, *decoded);
  // The codec is deterministic: re-encoding the decode is byte-identical.
  EXPECT_EQ(text, EncodeSnapshot(*decoded));
}

TEST(SnapshotCodecTest, MinimalSnapshotRoundTrips) {
  SessionSnapshot snap;
  snap.program_fingerprint = 1;
  snap.track_provenance = false;
  auto decoded = DecodeSnapshot(EncodeSnapshot(snap));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectSnapshotsEqual(snap, *decoded);
}

TEST(SnapshotCodecTest, FingerprintIsStableAndProgramSensitive) {
  Program program = TestProgram();
  EXPECT_EQ(ProgramFingerprint(program), ProgramFingerprint(program));
  auto other = Parser::Parse("q(X) :- diamondminus[0,3] p(X) .\n");
  ASSERT_TRUE(other.ok());
  EXPECT_NE(ProgramFingerprint(program), ProgramFingerprint(other->program));
}

TEST(SnapshotCodecTest, BadMagicIsParseError) {
  auto decoded = DecodeSnapshot("NOT-A-SNAPSHOT v1\n");
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(SnapshotCodecTest, FutureVersionIsRefusedNotMisread) {
  SessionSnapshot snap;
  std::string text = EncodeSnapshot(snap);
  size_t pos = text.find("v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "v2");
  auto decoded = DecodeSnapshot(text);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotCodecTest, CorruptDatabaseSectionIsRejected) {
  SessionSnapshot snap = TestSnapshot(TestProgram());
  snap.database_text = "this is not a fact line\n";
  auto decoded = DecodeSnapshot(EncodeSnapshot(snap));
  EXPECT_FALSE(decoded.ok());
}

TEST(SnapshotCodecTest, TruncatedInputIsRejected) {
  SessionSnapshot snap = TestSnapshot(TestProgram());
  std::string text = EncodeSnapshot(snap);
  auto decoded = DecodeSnapshot(text.substr(0, text.size() / 2));
  EXPECT_FALSE(decoded.ok());
}

TEST(SnapshotCodecTest, FileRoundTrip) {
  Program program = TestProgram();
  SessionSnapshot snap = TestSnapshot(program);
  std::string path = ::testing::TempDir() + "/dmtl_snapshot_test.snap";
  ASSERT_TRUE(WriteSnapshotFile(snap, path).ok());
  auto decoded = ReadSnapshotFile(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectSnapshotsEqual(snap, *decoded);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadSnapshotFile(path).ok());
}

}  // namespace
}  // namespace dmtl
