#include "src/storage/database.h"

#include <gtest/gtest.h>

namespace dmtl {
namespace {

TEST(RelationTest, InsertReturnsDelta) {
  Relation rel;
  Tuple t = {Value::Symbol("a")};
  IntervalSet d1 = rel.Insert(t, Interval::Closed(Rational(0), Rational(5)));
  EXPECT_FALSE(d1.IsEmpty());
  IntervalSet d2 = rel.Insert(t, Interval::Closed(Rational(2), Rational(3)));
  EXPECT_TRUE(d2.IsEmpty());
  EXPECT_EQ(rel.NumTuples(), 1u);
  EXPECT_EQ(rel.NumIntervals(), 1u);
  EXPECT_TRUE(rel.Contains(t, Rational(4)));
  EXPECT_FALSE(rel.Contains(t, Rational(6)));
}

TEST(RelationTest, ApproxIntervalsGrowsMonotonically) {
  Relation rel;
  Tuple t = {Value::Int(1)};
  rel.Insert(t, Interval::Point(Rational(1)));
  rel.Insert(t, Interval::Point(Rational(3)));
  size_t approx = rel.approx_intervals();
  EXPECT_GE(approx, 2u);
  // Bridging insert coalesces storage but the approx counter never shrinks.
  rel.Insert(t, Interval::Closed(Rational(1), Rational(3)));
  EXPECT_EQ(rel.NumIntervals(), 1u);
  EXPECT_GE(rel.approx_intervals(), approx);
}

TEST(RelationTest, FirstArgIndexFindsKeyedTuples) {
  Relation rel;
  Value acc = Value::Symbol("acc");
  Value bob = Value::Symbol("bob");
  rel.Insert({acc, Value::Double(10.0)}, Interval::Point(Rational(1)));
  rel.Insert({acc, Value::Double(20.0)}, Interval::Point(Rational(2)));
  rel.Insert({bob, Value::Double(30.0)}, Interval::Point(Rational(3)));
  const auto* acc_tuples = rel.FindByFirstArg(acc);
  ASSERT_NE(acc_tuples, nullptr);
  EXPECT_EQ(acc_tuples->size(), 2u);
  const auto* bob_tuples = rel.FindByFirstArg(bob);
  ASSERT_NE(bob_tuples, nullptr);
  EXPECT_EQ(bob_tuples->size(), 1u);
  EXPECT_EQ(rel.FindByFirstArg(Value::Symbol("nobody")), nullptr);
  // New intervals on an existing tuple do not duplicate index entries.
  rel.Insert({acc, Value::Double(10.0)}, Interval::Point(Rational(9)));
  EXPECT_EQ(rel.FindByFirstArg(acc)->size(), 2u);
  // InsertSet also keeps the index in sync.
  rel.InsertSet({acc, Value::Double(40.0)},
                IntervalSet(Interval::Point(Rational(5))));
  EXPECT_EQ(rel.FindByFirstArg(acc)->size(), 3u);
}

TEST(RelationTest, FirstArgIndexSurvivesCopyAndMove) {
  Relation rel;
  Value acc = Value::Symbol("acc");
  rel.Insert({acc, Value::Int(1)}, Interval::Point(Rational(1)));
  Relation copy = rel;
  rel.Clear();  // the copy's index must not point into the original
  const auto* tuples = copy.FindByFirstArg(acc);
  ASSERT_NE(tuples, nullptr);
  ASSERT_EQ(tuples->size(), 1u);
  EXPECT_EQ((*tuples->front())[1], Value::Int(1));
  Relation moved = std::move(copy);
  const auto* moved_tuples = moved.FindByFirstArg(acc);
  ASSERT_NE(moved_tuples, nullptr);
  EXPECT_EQ(moved_tuples->size(), 1u);
  // Copy-assignment over an existing relation rebuilds too.
  Relation target;
  target.Insert({Value::Symbol("x")}, Interval::Point(Rational(0)));
  target = moved;
  ASSERT_NE(target.FindByFirstArg(acc), nullptr);
  EXPECT_EQ(target.FindByFirstArg(Value::Symbol("x")), nullptr);
}

TEST(DatabaseTest, InsertAndFind) {
  Database db;
  db.Insert("price", {Value::Double(47.0)},
            Interval::ClosedOpen(Rational(10), Rational(20)));
  EXPECT_TRUE(db.Holds("price", {Value::Double(47.0)}, Rational(15)));
  EXPECT_FALSE(db.Holds("price", {Value::Double(47.0)}, Rational(20)));
  EXPECT_FALSE(db.Holds("nope", {}, Rational(0)));
  EXPECT_NE(db.Find("price"), nullptr);
  EXPECT_EQ(db.Find("nope"), nullptr);
}

TEST(DatabaseTest, FactsOfEnumeratesPerInterval) {
  Database db;
  db.Insert("p", {Value::Int(1)}, Interval::Point(Rational(1)));
  db.Insert("p", {Value::Int(1)}, Interval::Point(Rational(5)));
  db.Insert("p", {Value::Int(2)}, Interval::Point(Rational(1)));
  auto facts = db.FactsOf("p");
  EXPECT_EQ(facts.size(), 3u);
}

TEST(DatabaseTest, MergeFrom) {
  Database a;
  a.Insert("p", {Value::Int(1)}, Interval::Closed(Rational(0), Rational(2)));
  Database b;
  b.Insert("p", {Value::Int(1)}, Interval::Closed(Rational(2), Rational(5)));
  b.Insert("q", {}, Interval::Point(Rational(9)));
  a.MergeFrom(b);
  EXPECT_TRUE(a.Holds("p", {Value::Int(1)}, Rational(4)));
  EXPECT_TRUE(a.Holds("q", {}, Rational(9)));
  // Coalesced into one stored interval.
  EXPECT_EQ(a.Find("p")->NumIntervals(), 1u);
}

TEST(DatabaseTest, CountsAndToString) {
  Database db;
  db.Insert("p", {Value::Int(1)}, Interval::Point(Rational(1)));
  db.Insert("q", {Value::Symbol("a"), Value::Int(2)},
            Interval::Closed(Rational(0), Rational(1)));
  EXPECT_EQ(db.NumPredicates(), 2u);
  EXPECT_EQ(db.NumTuples(), 2u);
  EXPECT_EQ(db.NumIntervals(), 2u);
  // Deterministic, sorted rendering.
  EXPECT_EQ(db.ToString(), "p(1)@{[1,1]}\nq(a, 2)@{[0,1]}\n");
}

TEST(RelationIndexTest, GetIndexBuildsLooksUpAndTracksEnvelope) {
  Relation rel;
  rel.Insert({Value::Symbol("a"), Value::Int(1)},
             Interval::Closed(Rational(0), Rational(5)));
  rel.Insert({Value::Symbol("a"), Value::Int(2)},
             Interval::Closed(Rational(10), Rational(20)));
  rel.Insert({Value::Symbol("b"), Value::Int(3)},
             Interval::Point(Rational(7)));

  bool built_now = false;
  const Relation::BoundIndex* index = rel.GetIndex(0b01, &built_now);
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(built_now);
  EXPECT_EQ(rel.num_indexes(), 1u);
  ASSERT_EQ(index->positions, std::vector<size_t>{0});

  const Relation::PostingList* list =
      index->Lookup(Tuple{Value::Symbol("a")});
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->entries.size(), 2u);
  // Envelope = hull over both a-tuples' extents.
  ASSERT_TRUE(list->envelope.has_value());
  EXPECT_TRUE(list->envelope->Contains(Rational(0)));
  EXPECT_TRUE(list->envelope->Contains(Rational(20)));
  EXPECT_FALSE(list->envelope->Contains(Rational(21)));
  EXPECT_EQ(index->Lookup(Tuple{Value::Symbol("z")}), nullptr);

  // Second request reuses the built index.
  rel.GetIndex(0b01, &built_now);
  EXPECT_FALSE(built_now);
  EXPECT_EQ(rel.num_indexes(), 1u);

  // Signature 0 means "nothing bound": no index, callers scan.
  EXPECT_EQ(rel.GetIndex(0), nullptr);
}

TEST(RelationIndexTest, InsertMaintainsExistingIndexes) {
  Relation rel;
  rel.Insert({Value::Symbol("a"), Value::Int(1)},
             Interval::Closed(Rational(0), Rational(2)));
  const Relation::BoundIndex* index = rel.GetIndex(0b10);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->Lookup(Tuple{Value::Int(9)}), nullptr);

  // New tuple: appended to its posting list. New interval on an existing
  // tuple: envelope widens without duplicating the entry.
  rel.Insert({Value::Symbol("b"), Value::Int(9)},
             Interval::Closed(Rational(5), Rational(6)));
  const Relation::PostingList* list = index->Lookup(Tuple{Value::Int(9)});
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->entries.size(), 1u);
  rel.Insert({Value::Symbol("b"), Value::Int(9)},
             Interval::Closed(Rational(50), Rational(60)));
  EXPECT_EQ(list->entries.size(), 1u);
  ASSERT_TRUE(list->envelope.has_value());
  EXPECT_TRUE(list->envelope->Contains(Rational(60)));
  // The entry's extent pointer is the live stored set.
  EXPECT_TRUE(list->entries[0].extent->Contains(Rational(55)));
}

TEST(RelationIndexTest, ShortTuplesAreOmittedFromHighPositionIndexes) {
  Relation rel;
  rel.Insert({Value::Symbol("a")}, Interval::Point(Rational(1)));
  rel.Insert({Value::Symbol("a"), Value::Int(7)}, Interval::Point(Rational(2)));
  // Index on position 1: the unary tuple can never unify with a two-term
  // atom, so only the binary tuple is indexed.
  const Relation::BoundIndex* index = rel.GetIndex(0b10);
  ASSERT_NE(index, nullptr);
  const Relation::PostingList* list = index->Lookup(Tuple{Value::Int(7)});
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->entries.size(), 1u);
}

TEST(RelationIndexTest, CopyDropsIndexesMoveKeepsThem) {
  Relation rel;
  rel.Insert({Value::Symbol("a"), Value::Int(1)},
             Interval::Point(Rational(1)));
  rel.GetIndex(0b01);
  ASSERT_EQ(rel.num_indexes(), 1u);

  // Copies must not inherit indexes: entries point into the source's data_.
  Relation copy = rel;
  EXPECT_EQ(copy.num_indexes(), 0u);
  bool built_now = false;
  copy.GetIndex(0b01, &built_now);
  EXPECT_TRUE(built_now);

  Relation assigned;
  assigned = rel;
  EXPECT_EQ(assigned.num_indexes(), 0u);

  // Moves keep them: unordered_map nodes are address-stable across moves.
  Relation moved = std::move(rel);
  EXPECT_EQ(moved.num_indexes(), 1u);
  built_now = true;
  const Relation::BoundIndex* index = moved.GetIndex(0b01, &built_now);
  EXPECT_FALSE(built_now);
  ASSERT_NE(index, nullptr);
  EXPECT_NE(index->Lookup(Tuple{Value::Symbol("a")}), nullptr);
}

TEST(RelationIndexTest, ClearDropsIndexes) {
  Relation rel;
  rel.Insert({Value::Int(1)}, Interval::Point(Rational(1)));
  rel.GetIndex(0b01);
  ASSERT_EQ(rel.num_indexes(), 1u);
  rel.Clear();
  EXPECT_EQ(rel.num_indexes(), 0u);
  EXPECT_TRUE(rel.IsEmpty());
}

TEST(DatabaseTest, FactMake) {
  Fact f = Fact::Make("tranM", {Value::Symbol("acc"), Value::Double(3.0)},
                      Interval::Point(Rational(7)));
  EXPECT_EQ(f.ToString(), "tranM(acc, 3)@[7,7]");
  Database db;
  db.Insert(f);
  EXPECT_TRUE(db.Holds("tranM", f.args, Rational(7)));
}

}  // namespace
}  // namespace dmtl
