#include "src/synth/temporal_bench.h"

#include <gtest/gtest.h>

#include "src/analysis/stratifier.h"
#include "src/engine/reasoner.h"

namespace dmtl {
namespace {

std::vector<SynthPattern> AllPatterns() {
  return {SynthPattern::kLinearChain, SynthPattern::kStarJoin,
          SynthPattern::kTransitiveClosure, SynthPattern::kWindowCascade,
          SynthPattern::kSelfChain};
}

class SynthPatternTest : public ::testing::TestWithParam<SynthPattern> {};

TEST_P(SynthPatternTest, GeneratesValidMaterializablePrograms) {
  SynthConfig config;
  config.pattern = GetParam();
  config.depth = 4;
  config.num_facts = 40;
  config.timeline = 60;
  config.seed = 3;
  auto synth = GenerateTemporalBenchmark(config);
  ASSERT_TRUE(synth.ok()) << synth.status();
  auto unit = Parser::Parse(synth->text);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\n" << synth->text;
  ASSERT_TRUE(Stratify(unit->program).ok());

  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(synth->horizon);
  Database db = unit->database;
  ASSERT_TRUE(Materialize(unit->program, &db, options).ok());
  // The output predicate produced something (generous fact volume).
  const Relation* out = db.Find(synth->output_predicate);
  ASSERT_NE(out, nullptr) << synth->output_predicate;
  EXPECT_GT(out->NumIntervals(), 0u);
}

TEST_P(SynthPatternTest, EvaluationStrategiesAgree) {
  SynthConfig config;
  config.pattern = GetParam();
  config.depth = 3;
  config.num_facts = 25;
  config.timeline = 40;
  config.seed = 9;
  auto synth = GenerateTemporalBenchmark(config);
  ASSERT_TRUE(synth.ok());
  auto unit = Parser::Parse(synth->text);
  ASSERT_TRUE(unit.ok());
  EngineOptions base;
  base.min_time = Rational(0);
  base.max_time = Rational(synth->horizon);
  EngineOptions no_accel = base;
  no_accel.enable_chain_acceleration = false;
  EngineOptions naive = no_accel;
  naive.naive_evaluation = true;
  Database a = unit->database;
  Database b = unit->database;
  Database c = unit->database;
  ASSERT_TRUE(Materialize(unit->program, &a, base).ok());
  ASSERT_TRUE(Materialize(unit->program, &b, no_accel).ok());
  ASSERT_TRUE(Materialize(unit->program, &c, naive).ok());
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(b.ToString(), c.ToString());
}

INSTANTIATE_TEST_SUITE_P(Patterns, SynthPatternTest,
                         ::testing::ValuesIn(AllPatterns()));

TEST(SynthBenchTest, DeterministicUnderSeed) {
  SynthConfig config;
  config.pattern = SynthPattern::kTransitiveClosure;
  auto a = GenerateTemporalBenchmark(config);
  auto b = GenerateTemporalBenchmark(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->text, b->text);
  config.seed = 2;
  auto c = GenerateTemporalBenchmark(config);
  EXPECT_NE(a->text, c->text);
}

TEST(SynthBenchTest, RejectsInvalidConfigs) {
  SynthConfig config;
  config.depth = 0;
  EXPECT_FALSE(GenerateTemporalBenchmark(config).ok());
  config = SynthConfig();
  config.num_facts = 0;
  EXPECT_FALSE(GenerateTemporalBenchmark(config).ok());
  config = SynthConfig();
  config.timeline = 0;
  EXPECT_FALSE(GenerateTemporalBenchmark(config).ok());
}

TEST(SynthBenchTest, LinearChainSemanticsSpotCheck) {
  // A single base fact at a known point: depth-d chain with window w puts
  // the output exactly on the [t, t + (d-1)*w] dilation.
  SynthConfig config;
  config.pattern = SynthPattern::kLinearChain;
  config.depth = 3;
  config.window = 2;
  config.num_facts = 1;
  config.num_constants = 1;
  config.timeline = 1;  // forces the fact near t=0
  auto synth = GenerateTemporalBenchmark(config);
  ASSERT_TRUE(synth.ok());
  auto unit = Parser::Parse(synth->text);
  ASSERT_TRUE(unit.ok());
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(synth->horizon);
  Database db = unit->database;
  ASSERT_TRUE(Materialize(unit->program, &db, options).ok());
  // base(n0)@[lo, hi] -> r3 over [lo, hi + 4].
  const Relation* base = db.Find("base");
  ASSERT_NE(base, nullptr);
  const auto& [tuple, set] = *base->data().begin();
  Interval fact = *set.begin();
  const Relation* out = db.Find("r3");
  ASSERT_NE(out, nullptr);
  const IntervalSet* r3 = out->Find(tuple);
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(*r3, IntervalSet(Interval::Closed(
                     fact.lo().value, fact.hi().value + Rational(4))));
}

}  // namespace
}  // namespace dmtl
