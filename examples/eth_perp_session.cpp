// The paper's headline scenario end to end: generate a synthetic trading
// window (like Figure 3's sessions), replay it into the ETH-PERP DatalogMTL
// program, let the contract "live and evolve" in the reasoner, and compare
// every outcome against the imperative reference contract (the Subgraph
// stand-in).
//
// Usage: eth_perp_session [num_events num_trades duration_s [seed]]

#include <cstdio>
#include <cstdlib>

#include "src/chain/replayer.h"
#include "src/chain/subgraph.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/contracts/statement.h"
#include "src/contracts/trade_extractor.h"
#include "src/engine/reasoner.h"
#include "src/validation/compare.h"

int main(int argc, char** argv) {
  using namespace dmtl;

  WorkloadConfig config;
  config.name = "example-session";
  config.num_events = argc > 1 ? std::atoi(argv[1]) : 60;
  config.num_trades = argc > 2 ? std::atoi(argv[2]) : 12;
  config.duration_s = argc > 3 ? std::atoi(argv[3]) : 1800;
  config.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2022;
  config.initial_skew = -2445.98;  // Figure 3, first row

  auto session = GenerateSession(config);
  if (!session.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::printf("session '%s': %zu events, %zu trades, %llds window, "
              "initial skew %.2f\n",
              session->name.c_str(), session->events.size(),
              session->NumTrades(),
              static_cast<long long>(session->duration()),
              session->initial_skew);

  // The DatalogMTL side: program text is a first-class artifact.
  MarketParams params;
  auto program = EthPerpProgram(params);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("ETH-PERP program: %zu rules (%s)\n", program->size(),
              params.ToString().c_str());

  Database db = SessionToDatabase(*session);
  EngineStats stats;
  Status status =
      Materialize(*program, &db, SessionEngineOptions(*session), &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "materialize: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("materialized in %.3fs: %s\n\n", stats.wall_seconds,
              stats.ToString().c_str());

  // The reference side.
  auto subgraph = Subgraph::Index(*session, params);
  if (!subgraph.ok()) {
    std::fprintf(stderr, "reference: %s\n",
                 subgraph.status().ToString().c_str());
    return 1;
  }

  // Per-trade settlements from the reasoner's database.
  auto trades = ExtractTrades(db);
  if (!trades.ok()) {
    std::fprintf(stderr, "extract: %s\n", trades.status().ToString().c_str());
    return 1;
  }
  std::printf("first trades settled by the DatalogMTL contract:\n");
  std::printf("%-8s %12s %14s %12s %14s\n", "account", "t(rel)", "returns",
              "fee", "funding");
  size_t shown = 0;
  for (const TradeSettlement& t : *trades) {
    if (++shown > 8) break;
    std::printf("%-8s %12lld %14.6f %12.6f %14.9f\n", t.account.c_str(),
                static_cast<long long>(t.time - session->start_time), t.pnl,
                t.fee, t.funding);
  }

  auto frs = ExtractFrsAt(db, session->EventTimes());
  auto frs_cmp = CompareFrsSeries(subgraph->FundingRateUpdates(), *frs);
  auto trade_cmp = CompareTrades(subgraph->FuturesTrades(), *trades);
  if (!frs_cmp.ok() || !trade_cmp.ok()) {
    std::fprintf(stderr, "comparison failed\n");
    return 1;
  }
  std::printf("\nvalidation against the reference contract:\n");
  std::printf("  FRS:     %s\n", frs_cmp->ToString().c_str());
  std::printf("  returns: %s\n", trade_cmp->returns.ToString().c_str());
  std::printf("  fee:     %s\n", trade_cmp->fee.ToString().c_str());
  std::printf("  funding: %s\n", trade_cmp->funding.ToString().c_str());

  // Regulatory-style reporting straight from the contract state (the
  // paper's Section 5 use case).
  auto statements = BuildStatements(db, *session);
  if (statements.ok() && !statements->empty()) {
    std::printf("\n%s", statements->front().ToString().c_str());
  }
  return 0;
}
