// Quickstart: write a small DatalogMTL program as text, materialize it, and
// query the result. The program is the paper's Example 3.1 in miniature:
// margin accounts that open, accumulate deposits, and persist over time.

#include <cstdio>

#include "src/engine/reasoner.h"

int main() {
  using namespace dmtl;

  // A DatalogMTL program (rules) plus a temporal database (facts).
  // Metric operators default to the [1,1] window, as in the paper.
  const std::string text = R"(
    % An account opens with its first transfer and stays open until a
    % withdrawal.
    isOpen(A) :- tranM(A, M) .
    isOpen(A) :- boxminus isOpen(A), not withdraw(A) .

    % First-time deposits initialize the margin; later ones add to it;
    % otherwise the margin persists from one tick to the next.
    margin(A, M) :- tranM(A, M), not boxminus isOpen(A) .
    changed(A)   :- tranM(A, M) .
    changed(A)   :- withdraw(A) .
    margin(A, M) :- diamondminus margin(A, M), not changed(A) .
    margin(A, M) :- boxminus isOpen(A), diamondminus margin(A, X),
                    tranM(A, Y), M = X + Y .

    % Facts: Example 3.1's deposits on a day-granular timeline.
    tranM(acc123, 97.0)@1 .
    tranM(acc123, 3.0)@2 .
    withdraw(acc123)@6 .
  )";

  auto unit = Parser::Parse(text);
  if (!unit.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 unit.status().ToString().c_str());
    return 1;
  }

  // Recursive temporal rules propagate forever unless the timeline is
  // bounded; clamp the derivation to days 0..10.
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(10);
  Reasoner reasoner(options);

  Database db = unit->database;
  auto stats = reasoner.Materialize(unit->program, &db);
  if (!stats.ok()) {
    std::fprintf(stderr, "materialization error: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  std::printf("materialized: %s\n\n", stats->ToString().c_str());
  std::printf("margin(acc123) day by day:\n");
  for (int day = 0; day <= 10; ++day) {
    auto tuples = Reasoner::TuplesAt(db, "margin", Rational(day));
    if (tuples.empty()) {
      std::printf("  day %2d: (no account)\n", day);
    } else {
      std::printf("  day %2d: %s\n", day, tuples[0][1].ToString().c_str());
    }
  }
  std::printf("\nfull margin extent:\n");
  for (const auto& [t, tuple] : Reasoner::Series(db, "margin")) {
    std::printf("  from %s: margin(%s, %s)\n", t.ToString().c_str(),
                tuple[0].ToString().c_str(), tuple[1].ToString().c_str());
  }
  return 0;
}
