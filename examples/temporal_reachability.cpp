// A non-financial tour of the engine: temporal reachability over a network
// whose links flap over time, plus Since/Until and windowed operators.
// Shows that the substrate under the smart-contract encoding is a
// general-purpose DatalogMTL reasoner.

#include <cstdio>

#include "src/engine/reasoner.h"

int main() {
  using namespace dmtl;

  const std::string text = R"(
    % Links are temporal facts; reachability is temporal too: a path exists
    % at t only if every hop is up at t.
    reach(X, Y) :- link(X, Y) .
    reach(X, Z) :- reach(X, Y), link(Y, Z) .

    % A node is flaky if its uplink dropped within the last 5 seconds.
    flaky(X) :- diamondminus[0,5] down(X) .

    % Stable uplink: up continuously for the past 10 seconds.
    stable(X) :- boxminus[0,10] up(X) .

    % Alarm cleared since the last reset (the binary operator):
    % quiet at t if "no-alarm" has held since a reset within 20 seconds.
    quiet(X) :- (noAlarm(X) since[0,20] reset(X)) .

    % Network trace.
    link(a, b)@[0, 30] .
    link(b, c)@[10, 25] .
    link(c, d)@[0, 12] .
    up(a)@[0, 30] .
    down(b)@7 .
    up(b)@[8, 30] .
    noAlarm(c)@[5, 30] .
    reset(c)@6 .
  )";

  auto unit = Parser::Parse(text);
  if (!unit.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 unit.status().ToString().c_str());
    return 1;
  }
  Reasoner reasoner;
  Database db = unit->database;
  auto stats = reasoner.Materialize(unit->program, &db);
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("materialized: %s\n\n", stats->ToString().c_str());

  auto show = [&](const char* pred) {
    std::printf("%s:\n", pred);
    const Relation* rel = db.Find(pred);
    if (rel == nullptr) {
      std::printf("  (none)\n");
      return;
    }
    std::string rendered;
    for (const auto& [tuple, set] : rel->data()) {
      rendered += "  " + TupleToString(tuple) + " @ " + set.ToString() + "\n";
    }
    std::printf("%s", rendered.c_str());
  };
  show("reach");
  show("flaky");
  show("stable");
  show("quiet");

  // Point queries: who can a reach at t=11 and t=20?
  for (int t : {11, 20, 26}) {
    std::printf("\nreachable from a at t=%d:", t);
    for (const Tuple& tuple : Reasoner::TuplesAt(db, "reach", Rational(t))) {
      if (tuple[0] == Value::Symbol("a")) {
        std::printf(" %s", tuple[1].ToString().c_str());
      }
    }
  }
  std::printf("\n");
  return 0;
}
