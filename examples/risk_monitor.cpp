// The paper's conclusion sketches extensions "for internal risk management
// activities, for instance, to be able to swiftly react to the evolution of
// each margin account over time". This example builds exactly that on top
// of the ETH-PERP program: extra DatalogMTL rules that watch the
// materialized state and raise declarative alerts - no changes to the
// contract itself.

#include <cstdio>
#include <string>

#include "src/chain/replayer.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/engine/reasoner.h"

int main() {
  using namespace dmtl;

  WorkloadConfig config;
  config.name = "risk-monitor";
  config.num_events = 60;
  config.num_trades = 12;
  config.duration_s = 1800;
  config.seed = 77;
  config.initial_skew = 2502.85;

  auto session = GenerateSession(config);
  if (!session.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  // The supervision layer: pure DatalogMTL over the contract's state
  // predicates. The contract state lives on the one-second tick grid, so
  // windows combine a boxminus look-back on the grid point 60s ago with a
  // diamondminus sweep of the window in between - this is where the metric
  // operators earn their keep.
  std::string monitor_rules = R"(
    exposure(A, E) :- position(A, S, N), price(P), E = abs(S * P) .
    largeExposure(A) :- exposure(A, E), E > 20000.0 .
    thinMargin(A) :- exposure(A, E), margin(A, M), E > 0.0,
                     M < E * 0.5 .
    healthy(A) :- exposure(A, E), margin(A, M), E > 0.0, M >= E * 0.5 .
    healthy(A) :- exposure(A, E), E == 0.0 .
    % Thin now, thin 60s ago, and never healthy in between.
    persistentRisk(A) :- thinMargin(A), boxminus[60,60] thinMargin(A),
                         not diamondminus[0,60] healthy(A) .
    % Rising edge only: the first second a persistent risk appears.
    alert(A) :- persistentRisk(A), not boxminus persistentRisk(A) .
  )";

  auto program = EthPerpProgram();
  auto monitor = Parser::ParseProgram(monitor_rules);
  if (!program.ok() || !monitor.ok()) {
    std::fprintf(stderr, "parse failed: %s %s\n",
                 program.status().ToString().c_str(),
                 monitor.status().ToString().c_str());
    return 1;
  }
  // Compose: one program, contract rules + supervision rules.
  Program combined = *program;
  for (const Rule& rule : monitor->rules()) combined.AddRule(rule);

  Database db = SessionToDatabase(*session);
  EngineStats stats;
  Status status = Materialize(combined, &db,
                              SessionEngineOptions(*session), &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "materialize: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("contract + risk monitor materialized in %.3fs "
              "(%zu rules)\n\n",
              stats.wall_seconds, combined.size());

  for (const char* pred : {"alert", "largeExposure"}) {
    std::printf("%s:\n", pred);
    const Relation* rel = db.Find(pred);
    if (rel == nullptr || rel->IsEmpty()) {
      std::printf("  (none)\n");
      continue;
    }
    if (std::string(pred) == "largeExposure") {
      // Summarize: accounts and total seconds at risk.
      for (const auto& [tuple, set] : rel->data()) {
        std::printf("  %s for %zu seconds in total\n",
                    TupleToString(tuple).c_str(), set.size());
      }
      continue;
    }
    size_t shown = 0;
    for (const auto& [t, tuple] : Reasoner::Series(db, pred)) {
      if (++shown > 12) {
        std::printf("  ...\n");
        break;
      }
      std::printf("  t=+%-6s %s\n",
                  (t - Rational(session->start_time)).ToString().c_str(),
                  TupleToString(tuple).c_str());
    }
  }

  // Margin evolution of one account (the conclusion's reporting use case:
  // the value at each time point is queryable after the fact).
  std::printf("\nmargin evolution (first account):\n");
  std::string first_account;
  std::string last_value;
  size_t shown = 0;
  for (const auto& [t, tuple] : Reasoner::Series(db, "margin")) {
    if (first_account.empty()) first_account = tuple[0].ToString();
    if (tuple[0].ToString() != first_account) continue;
    if (tuple[1].ToString() == last_value) continue;  // per-tick chain
    last_value = tuple[1].ToString();
    if (++shown > 10) break;
    std::printf("  t=+%-6s margin(%s) = %s\n",
                (t - Rational(session->start_time)).ToString().c_str(),
                first_account.c_str(), tuple[1].ToString().c_str());
  }
  return 0;
}
