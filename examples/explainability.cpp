// The paper's core argument is that a declarative contract is explainable:
// every state change follows from a named rule. This example makes that
// operational - run a small trading story with provenance enabled and ask
// the engine WHY each margin value holds, getting back the exact rule
// applications (with the paper's rule numbering in the program comments).

#include <cstdio>

#include "src/contracts/eth_perp_program.h"
#include "src/engine/reasoner.h"

int main() {
  using namespace dmtl;

  auto program = EthPerpProgram();
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  // A compact story: deposit, top-up, open, close, withdraw.
  auto facts = Parser::ParseDatabase(
      "start()@0 . skew(250.0)@0 . frs(0.0)@0 .\n"
      "price(100.0)@[0, 10) . price(104.0)@[10, 20] .\n"
      "tranM(alice, 500.0)@2 .\n"
      "tranM(alice, 250.0)@4 .\n"
      "modPos(alice, 3.0)@6 .\n"
      "closePos(alice)@12 .\n"
      "withdraw(alice)@15 .\n");
  if (!facts.ok()) {
    std::fprintf(stderr, "facts: %s\n", facts.status().ToString().c_str());
    return 1;
  }

  std::vector<DerivationRecord> provenance;
  EngineOptions options;
  options.min_time = Rational(0);
  options.max_time = Rational(16);
  options.provenance = &provenance;

  Database db = *facts;
  Status status = Materialize(*program, &db, options);
  if (!status.ok()) {
    std::fprintf(stderr, "materialize: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("materialized with %zu derivation records\n\n",
              provenance.size());

  // Walk alice's margin day by day and explain each value change.
  Value alice = Value::Symbol("alice");
  std::string last;
  for (int t = 0; t <= 16; ++t) {
    for (const Tuple& tuple : Reasoner::TuplesAt(db, "margin", Rational(t))) {
      if (tuple[0] != alice) continue;
      std::string value = tuple[1].ToString();
      if (value == last) continue;  // only explain changes
      last = value;
      std::printf("t=%-3d margin(alice) = %s\n", t, value.c_str());
      for (const DerivationRecord& record :
           Reasoner::Explain(provenance, "margin", tuple, Rational(t))) {
        std::printf("      because %s\n",
                    record.ToString(*program).c_str());
      }
    }
  }

  // And the settlement trio at the close.
  std::printf("\nwhy did the close at t=12 settle the way it did?\n");
  for (const char* pred : {"pnl", "finalFee", "funding"}) {
    for (const Tuple& tuple : Reasoner::TuplesAt(db, pred, Rational(12))) {
      if (tuple[0] != alice) continue;
      std::printf("%s(alice) = %s\n", pred, tuple[1].ToString().c_str());
      for (const DerivationRecord& record :
           Reasoner::Explain(provenance, pred, tuple, Rational(12))) {
        std::printf("      because %s\n",
                    record.ToString(*program).c_str());
      }
    }
  }
  return 0;
}
