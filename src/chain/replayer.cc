#include "src/chain/replayer.h"

#include <algorithm>
#include <chrono>

namespace dmtl {

Database SessionToDatabase(const Session& session) {
  Database db;
  Rational start(session.start_time);
  Rational end(session.end_time);

  db.Insert("start", {}, Interval::Point(start));
  db.Insert("marketEnd", {}, Interval::Point(end));
  db.Insert("skew", {Value::Double(session.initial_skew)},
            Interval::Point(start));
  db.Insert("frs", {Value::Double(0.0)}, Interval::Point(start));

  // Price step function: each point holds until the next oracle update.
  for (size_t i = 0; i < session.prices.size(); ++i) {
    Rational lo(session.prices[i].time);
    bool last = i + 1 == session.prices.size();
    Rational hi = last ? end : Rational(session.prices[i + 1].time);
    Interval iv = last ? Interval::Closed(lo, hi)
                       : Interval::ClosedOpen(lo, hi);
    db.Insert("price", {Value::Double(session.prices[i].price)}, iv);
  }

  for (const MarketEvent& e : session.events) {
    Interval at = Interval::Point(Rational(e.time));
    Value account = Value::Symbol(e.account);
    switch (e.kind) {
      case EventKind::kTransferMargin:
        db.Insert("tranM", {account, Value::Double(e.amount)}, at);
        break;
      case EventKind::kWithdraw:
        db.Insert("withdraw", {account}, at);
        break;
      case EventKind::kModifyPosition:
        db.Insert("modPos", {account, Value::Double(e.amount)}, at);
        break;
      case EventKind::kClosePosition:
        db.Insert("closePos", {account}, at);
        break;
    }
  }
  return db;
}

EngineOptions SessionEngineOptions(const Session& session) {
  EngineOptions options;
  options.min_time = Rational(session.start_time);
  options.max_time = Rational(session.end_time);
  return options;
}

Status ReplaySessionStream(const Session& session, EngineSession* stream,
                           std::vector<double>* event_latencies_us) {
  Rational start(session.start_time);
  Rational end(session.end_time);
  DMTL_RETURN_IF_ERROR(
      stream->Push(Fact::Make("start", {}, Interval::Point(start))));
  DMTL_RETURN_IF_ERROR(
      stream->Push(Fact::Make("marketEnd", {}, Interval::Point(end))));
  DMTL_RETURN_IF_ERROR(stream->Push(
      Fact::Make("skew", {Value::Double(session.initial_skew)},
                 Interval::Point(start))));
  DMTL_RETURN_IF_ERROR(stream->Push(
      Fact::Make("frs", {Value::Double(0.0)}, Interval::Point(start))));

  // Distinct chain event times, ascending. Both lists are sorted; the
  // merge groups everything landing at one block time into one advance.
  std::vector<int64_t> times;
  times.reserve(session.prices.size() + session.events.size());
  for (const PricePoint& p : session.prices) times.push_back(p.time);
  for (const MarketEvent& e : session.events) times.push_back(e.time);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  size_t pi = 0;
  size_t ei = 0;
  for (int64_t t : times) {
    auto t0 = std::chrono::steady_clock::now();
    Rational rt(t);
    for (; pi < session.prices.size() && session.prices[pi].time == t; ++pi) {
      DMTL_RETURN_IF_ERROR(stream->PushStep(
          "price", {Value::Double(session.prices[pi].price)}, rt));
    }
    for (; ei < session.events.size() && session.events[ei].time == t; ++ei) {
      const MarketEvent& e = session.events[ei];
      Interval at = Interval::Point(rt);
      Value account = Value::Symbol(e.account);
      Fact fact;
      switch (e.kind) {
        case EventKind::kTransferMargin:
          fact = Fact::Make("tranM", {account, Value::Double(e.amount)}, at);
          break;
        case EventKind::kWithdraw:
          fact = Fact::Make("withdraw", {account}, at);
          break;
        case EventKind::kModifyPosition:
          fact = Fact::Make("modPos", {account, Value::Double(e.amount)}, at);
          break;
        case EventKind::kClosePosition:
          fact = Fact::Make("closePos", {account}, at);
          break;
      }
      DMTL_RETURN_IF_ERROR(stream->Push(fact));
    }
    DMTL_RETURN_IF_ERROR(stream->Advance(rt));
    if (event_latencies_us != nullptr) {
      event_latencies_us->push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
  }
  if (stream->watermark() < end) {
    auto t0 = std::chrono::steady_clock::now();
    DMTL_RETURN_IF_ERROR(stream->Advance(end));
    if (event_latencies_us != nullptr) {
      event_latencies_us->push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
  }
  return Status::Ok();
}

}  // namespace dmtl
