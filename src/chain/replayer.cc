#include "src/chain/replayer.h"

namespace dmtl {

Database SessionToDatabase(const Session& session) {
  Database db;
  Rational start(session.start_time);
  Rational end(session.end_time);

  db.Insert("start", {}, Interval::Point(start));
  db.Insert("marketEnd", {}, Interval::Point(end));
  db.Insert("skew", {Value::Double(session.initial_skew)},
            Interval::Point(start));
  db.Insert("frs", {Value::Double(0.0)}, Interval::Point(start));

  // Price step function: each point holds until the next oracle update.
  for (size_t i = 0; i < session.prices.size(); ++i) {
    Rational lo(session.prices[i].time);
    bool last = i + 1 == session.prices.size();
    Rational hi = last ? end : Rational(session.prices[i + 1].time);
    Interval iv = last ? Interval::Closed(lo, hi)
                       : Interval::ClosedOpen(lo, hi);
    db.Insert("price", {Value::Double(session.prices[i].price)}, iv);
  }

  for (const MarketEvent& e : session.events) {
    Interval at = Interval::Point(Rational(e.time));
    Value account = Value::Symbol(e.account);
    switch (e.kind) {
      case EventKind::kTransferMargin:
        db.Insert("tranM", {account, Value::Double(e.amount)}, at);
        break;
      case EventKind::kWithdraw:
        db.Insert("withdraw", {account}, at);
        break;
      case EventKind::kModifyPosition:
        db.Insert("modPos", {account, Value::Double(e.amount)}, at);
        break;
      case EventKind::kClosePosition:
        db.Insert("closePos", {account}, at);
        break;
    }
  }
  return db;
}

EngineOptions SessionEngineOptions(const Session& session) {
  EngineOptions options;
  options.min_time = Rational(session.start_time);
  options.max_time = Rational(session.end_time);
  return options;
}

}  // namespace dmtl
