#ifndef DMTL_CHAIN_WORKLOAD_H_
#define DMTL_CHAIN_WORKLOAD_H_

#include "src/chain/events.h"
#include "src/chain/price_feed.h"
#include "src/common/status.h"

namespace dmtl {

// Parameters of one synthetic trading window. The defaults of the three
// PaperSessions() reproduce the paper's Figure 3 rows exactly in the
// observable columns (# events, # trades, initial skew, 2h duration); the
// individual orders are synthetic (the real Optimism transaction stream is
// not available offline - see DESIGN.md substitutions).
struct WorkloadConfig {
  std::string name = "session";
  int64_t start_time = 1'664'274'600;  // 2022-09-27 10:30 GMT
  int64_t duration_s = 7200;
  int num_events = 100;   // total method calls (tranM+withdraw+modPos+closePos)
  int num_trades = 20;    // completed trades (closePos calls)
  double initial_skew = 0;
  uint64_t seed = 42;
  PriceFeedConfig price;
};

// Generates a deterministic session matching the config's counts, or an
// error when the counts are infeasible (every trade needs an opening order
// and a close; every account a deposit and a withdrawal).
Result<Session> GenerateSession(const WorkloadConfig& config);

// The paper's Figure 3: three 2-hour windows.
//   2022-09-27 10:30-12:30  267 events  59 trades  skew -2445.98
//   2022-10-07 18:00-20:00  108 events  16 trades  skew  1302.88
//   2022-10-12 14:00-16:00  128 events  29 trades  skew  2502.85
std::vector<WorkloadConfig> PaperSessions();

}  // namespace dmtl

#endif  // DMTL_CHAIN_WORKLOAD_H_
