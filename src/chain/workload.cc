#include "src/chain/workload.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <set>

namespace dmtl {

namespace {

// One account's scripted lifecycle before time assignment.
struct AccountScript {
  std::string name;
  // Number of modifications per trade (beyond the opening order).
  std::vector<int> mods_per_trade;
  // Mid-session top-up deposits (rule 8).
  int extra_deposits = 0;
};

}  // namespace

Result<Session> GenerateSession(const WorkloadConfig& config) {
  if (config.duration_s < 600) {
    return Status::InvalidArgument("window too short");
  }
  if (config.num_trades < 0 || config.num_events < 0) {
    return Status::InvalidArgument("negative counts");
  }
  // Feasibility: each account costs a deposit + a withdrawal, each trade an
  // opening order + a close.
  if (config.num_events < 2 * config.num_trades + 2) {
    return Status::InvalidArgument("num_events too small for num_trades");
  }
  int budget_after_trades = config.num_events - 2 * config.num_trades;
  int num_accounts =
      std::max(1, std::min({config.num_trades > 0 ? config.num_trades : 1,
                            budget_after_trades / 3, 64}));
  while (2 * num_accounts > budget_after_trades) --num_accounts;
  int extra =
      config.num_events - 2 * num_accounts - 2 * config.num_trades;
  // Leftover budget splits between extra position modifications and
  // mid-session top-up deposits (which exercise the paper's rule 8); with
  // no trades to attach modifications to, everything becomes deposits.
  int extra_deposits = config.num_trades == 0 ? extra : extra / 5;
  int extra_mods = extra - extra_deposits;

  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Script the accounts.
  std::vector<AccountScript> scripts(num_accounts);
  for (int i = 0; i < num_accounts; ++i) {
    scripts[i].name = "acc" + std::to_string(i + 1);
  }
  for (int t = 0; t < config.num_trades; ++t) {
    scripts[t % num_accounts].mods_per_trade.push_back(0);
  }
  // Spread the extra deposits over accounts.
  for (int d = 0; d < extra_deposits; ++d) {
    scripts[d % num_accounts].extra_deposits++;
  }
  // Spread the extra modifications over trades.
  int total_trades = config.num_trades;
  for (int m = 0; m < extra_mods && total_trades > 0; ++m) {
    int pick = static_cast<int>(unit(rng) * total_trades);
    int seen = 0;
    for (AccountScript& script : scripts) {
      for (int& mods : script.mods_per_trade) {
        if (seen++ == pick) {
          ++mods;
          break;
        }
      }
    }
  }

  // Time phases inside the open window (events strictly inside).
  int64_t w = config.duration_s;
  int64_t deposit_lo = config.start_time + 1;
  int64_t deposit_hi = config.start_time + std::max<int64_t>(w / 20, 2);
  int64_t trade_lo = deposit_hi + 1;
  int64_t trade_hi = config.start_time + w - std::max<int64_t>(w / 25, 3);
  int64_t withdraw_lo = trade_hi + 1;
  int64_t withdraw_hi = config.start_time + w - 1;

  auto draw_time = [&](int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(unit(rng) * static_cast<double>(
                                                      hi - lo + 1));
  };

  Session session;
  session.name = config.name;
  session.start_time = config.start_time;
  session.end_time = config.start_time + config.duration_s;
  session.initial_skew = config.initial_skew;
  PriceFeedConfig price_config = config.price;
  price_config.seed = config.seed * 7919 + 13;
  session.prices =
      GeneratePricePath(price_config, session.start_time, session.end_time);

  auto size_magnitude = [&] {
    // Log-uniform in [0.2, 30] ETH - the retail-to-whale range on Kwenta.
    return std::exp(std::log(0.2) +
                    unit(rng) * (std::log(30.0) - std::log(0.2)));
  };

  for (AccountScript& script : scripts) {
    // Draw this account's distinct trading-phase timestamps: trade actions
    // consume them in order; top-up deposits take a random subset first.
    int actions = 0;
    for (int mods : script.mods_per_trade) actions += 2 + mods;
    std::set<int64_t> times;
    while (static_cast<int>(times.size()) < actions + script.extra_deposits) {
      times.insert(draw_time(trade_lo, trade_hi));
    }
    std::vector<int64_t> ordered(times.begin(), times.end());
    for (int d = 0; d < script.extra_deposits; ++d) {
      size_t pick = static_cast<size_t>(unit(rng) * ordered.size());
      if (pick >= ordered.size()) pick = ordered.size() - 1;
      MarketEvent topup;
      topup.time = ordered[pick];
      topup.kind = EventKind::kTransferMargin;
      topup.account = script.name;
      topup.amount = 100.0 + unit(rng) * 4900.0;
      session.events.push_back(topup);
      ordered.erase(ordered.begin() + static_cast<ptrdiff_t>(pick));
    }

    MarketEvent deposit;
    deposit.time = draw_time(deposit_lo, deposit_hi);
    deposit.kind = EventKind::kTransferMargin;
    deposit.account = script.name;
    deposit.amount = 1000.0 + unit(rng) * 49000.0;
    session.events.push_back(deposit);

    size_t cursor = 0;
    double size = 0;
    for (int mods : script.mods_per_trade) {
      double open_size = size_magnitude() * (unit(rng) < 0.5 ? -1.0 : 1.0);
      MarketEvent open;
      open.time = ordered[cursor++];
      open.kind = EventKind::kModifyPosition;
      open.account = script.name;
      open.amount = open_size;
      session.events.push_back(open);
      size = open_size;
      for (int m = 0; m < mods; ++m) {
        double delta = size * (unit(rng) - 0.5);  // +-50% adjustments
        if (delta == 0 || size + delta == 0) delta += 0.01;
        MarketEvent mod;
        mod.time = ordered[cursor++];
        mod.kind = EventKind::kModifyPosition;
        mod.account = script.name;
        mod.amount = delta;
        session.events.push_back(mod);
        size += delta;
      }
      MarketEvent close;
      close.time = ordered[cursor++];
      close.kind = EventKind::kClosePosition;
      close.account = script.name;
      session.events.push_back(close);
      size = 0;
    }

    MarketEvent withdraw;
    withdraw.time = draw_time(withdraw_lo, withdraw_hi);
    withdraw.kind = EventKind::kWithdraw;
    withdraw.account = script.name;
    session.events.push_back(withdraw);
  }

  std::stable_sort(session.events.begin(), session.events.end(),
                   [](const MarketEvent& a, const MarketEvent& b) {
                     return a.time < b.time;
                   });
  std::string error;
  if (!session.Validate(&error)) {
    return Status::Internal("generated session invalid: " + error);
  }
  if (static_cast<int>(session.events.size()) != config.num_events) {
    return Status::Internal("generated event count mismatch");
  }
  return session;
}

std::vector<WorkloadConfig> PaperSessions() {
  std::vector<WorkloadConfig> out(3);
  out[0].name = "2022-09-27_10.30-12.30";
  out[0].start_time = 1'664'274'600;
  out[0].num_events = 267;
  out[0].num_trades = 59;
  out[0].initial_skew = -2445.98;
  out[0].seed = 20220927;
  out[0].price.initial_price = 1330.0;

  out[1].name = "2022-10-07_18.00-20.00";
  out[1].start_time = 1'665'165'600;
  out[1].num_events = 108;
  out[1].num_trades = 16;
  out[1].initial_skew = 1302.88;
  out[1].seed = 20221007;
  out[1].price.initial_price = 1350.0;

  out[2].name = "2022-10-12_14.00-16.00";
  out[2].start_time = 1'665'583'200;
  out[2].num_events = 128;
  out[2].num_trades = 29;
  out[2].initial_skew = 2502.85;
  out[2].seed = 20221012;
  out[2].price.initial_price = 1290.0;
  return out;
}

}  // namespace dmtl
