#include "src/chain/events.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace dmtl {

const char* EventKindToString(EventKind kind) {
  switch (kind) {
    case EventKind::kTransferMargin:
      return "tranM";
    case EventKind::kWithdraw:
      return "withdraw";
    case EventKind::kModifyPosition:
      return "modPos";
    case EventKind::kClosePosition:
      return "closePos";
  }
  return "?";
}

std::string MarketEvent::ToString() const {
  std::ostringstream os;
  os.precision(17);
  os << EventKindToString(kind) << "(" << account;
  if (kind == EventKind::kTransferMargin ||
      kind == EventKind::kModifyPosition) {
    os << ", " << amount;
  }
  os << ")@" << time;
  return os.str();
}

size_t Session::NumTrades() const {
  size_t n = 0;
  for (const MarketEvent& e : events) {
    if (e.kind == EventKind::kClosePosition) ++n;
  }
  return n;
}

std::vector<int64_t> Session::EventTimes() const {
  std::set<int64_t> times;
  for (const MarketEvent& e : events) times.insert(e.time);
  return {times.begin(), times.end()};
}

double Session::PriceAt(int64_t t) const {
  double p = prices.empty() ? 0 : prices.front().price;
  for (const PricePoint& point : prices) {
    if (point.time > t) break;
    p = point.price;
  }
  return p;
}

bool Session::Validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (end_time <= start_time) return fail("empty window");
  if (prices.empty() || prices.front().time > start_time) {
    return fail("price feed must cover the window start");
  }
  for (size_t i = 1; i < prices.size(); ++i) {
    if (prices[i].time <= prices[i - 1].time) {
      return fail("price feed not strictly increasing in time");
    }
  }
  // Per-account simulation of legality.
  struct AccountSim {
    bool open = false;
    bool has_position = false;  // non-zero size
    double size = 0;
    int64_t last_time = -1;
  };
  std::map<std::string, AccountSim> sims;
  int64_t prev_time = start_time;
  for (const MarketEvent& e : events) {
    if (e.time <= start_time || e.time >= end_time) {
      return fail("event outside the open window: " + e.ToString());
    }
    if (e.time < prev_time) return fail("events not sorted by time");
    prev_time = e.time;
    AccountSim& sim = sims[e.account];
    if (sim.last_time == e.time) {
      return fail("two events for one account at one tick: " + e.ToString());
    }
    sim.last_time = e.time;
    switch (e.kind) {
      case EventKind::kTransferMargin:
        if (e.amount <= 0 && !sim.open) {
          return fail("opening deposit must be positive: " + e.ToString());
        }
        sim.open = true;
        break;
      case EventKind::kWithdraw:
        if (!sim.open) return fail("withdraw on closed account");
        if (sim.size != 0) return fail("withdraw with open position");
        sim.open = false;
        break;
      case EventKind::kModifyPosition:
        if (!sim.open) return fail("modPos on closed account");
        if (e.amount == 0) return fail("zero-size order: " + e.ToString());
        if (sim.size + e.amount == 0) {
          return fail("modPos flattening to zero (use closePos): " +
                      e.ToString());
        }
        sim.size += e.amount;
        break;
      case EventKind::kClosePosition:
        if (!sim.open) return fail("closePos on closed account");
        if (sim.size == 0) return fail("closePos with no position");
        sim.size = 0;
        break;
    }
  }
  return true;
}

}  // namespace dmtl
