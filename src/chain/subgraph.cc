#include "src/chain/subgraph.h"

namespace dmtl {

Result<Subgraph> Subgraph::Index(const Session& session,
                                 MarketParams params) {
  ReferencePerpEngine engine(params);
  DMTL_RETURN_IF_ERROR(engine.Run(session));
  Subgraph graph;
  graph.frs_updates_ = engine.frs_series();
  graph.trades_ = engine.trades();
  graph.withdrawals_ = engine.withdrawals();
  return graph;
}

std::vector<TradeSettlement> Subgraph::FuturesTrades(
    const std::string& account) const {
  if (account.empty()) return trades_;
  std::vector<TradeSettlement> out;
  for (const TradeSettlement& trade : trades_) {
    if (trade.account == account) out.push_back(trade);
  }
  return out;
}

}  // namespace dmtl
