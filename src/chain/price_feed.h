#ifndef DMTL_CHAIN_PRICE_FEED_H_
#define DMTL_CHAIN_PRICE_FEED_H_

#include <cstdint>
#include <vector>

#include "src/chain/events.h"

namespace dmtl {

// Synthetic ETH oracle substitute: a geometric-Brownian price path sampled
// at a fixed oracle cadence (Chainlink-style heartbeats). Deterministic
// under a seed.
struct PriceFeedConfig {
  double initial_price = 1310.0;    // ETH, autumn-2022 regime
  double annual_volatility = 0.85;  // crypto-grade vol
  double drift = 0.0;
  int64_t update_interval_s = 15;   // oracle heartbeat
  uint64_t seed = 1;
};

// Generates price points covering [start_time, end_time).
std::vector<PricePoint> GeneratePricePath(const PriceFeedConfig& config,
                                          int64_t start_time,
                                          int64_t end_time);

}  // namespace dmtl

#endif  // DMTL_CHAIN_PRICE_FEED_H_
