#ifndef DMTL_CHAIN_EVENTS_H_
#define DMTL_CHAIN_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dmtl {

// The four user-facing methods of the ETH-PERP smart contract (Section 3.2).
enum class EventKind : uint8_t {
  kTransferMargin,   // tranM(A, M)
  kWithdraw,         // withdraw(A)
  kModifyPosition,   // modPos(A, S)
  kClosePosition,    // closePos(A)
};

const char* EventKindToString(EventKind kind);

// One method call hitting the contract.
struct MarketEvent {
  int64_t time = 0;  // unix seconds
  EventKind kind = EventKind::kTransferMargin;
  std::string account;
  // Dollars for kTransferMargin, signed ETH units for kModifyPosition,
  // unused otherwise.
  double amount = 0;

  std::string ToString() const;
};

// One oracle price update: `price` holds from `time` until the next point.
struct PricePoint {
  int64_t time = 0;
  double price = 0;
};

// A replayable trading window (the unit of the paper's evaluation: a
// 2-hour interval with given initial conditions).
struct Session {
  std::string name;
  int64_t start_time = 0;
  int64_t end_time = 0;
  double initial_skew = 0;
  std::vector<PricePoint> prices;   // sorted by time; first at start_time
  std::vector<MarketEvent> events;  // sorted by time

  int64_t duration() const { return end_time - start_time; }
  // Number of completed trades (closePos calls), the paper's "# trades".
  size_t NumTrades() const;
  // Sorted distinct event timestamps.
  std::vector<int64_t> EventTimes() const;
  // The oracle price in force at `t`.
  double PriceAt(int64_t t) const;

  // Internal consistency: ordering, price coverage, per-account
  // single-action-per-tick, deposits before orders, flat before withdraw.
  // Used by tests and asserted by the generators.
  bool Validate(std::string* error = nullptr) const;
};

}  // namespace dmtl

#endif  // DMTL_CHAIN_EVENTS_H_
