#ifndef DMTL_CHAIN_REPLAYER_H_
#define DMTL_CHAIN_REPLAYER_H_

#include <vector>

#include "src/chain/events.h"
#include "src/engine/session.h"
#include "src/eval/seminaive.h"
#include "src/storage/database.h"

namespace dmtl {

// Maps a trading session onto the ETH-PERP program's input database: one
// temporal fact per method call (tranM / withdraw / modPos / closePos),
// step-function price intervals, the start/marketEnd window marks and the
// initial skew/frs state (Section 4.1's "Input Dataset" step).
Database SessionToDatabase(const Session& session);

// The matching engine horizon: derivations clamped to the session window.
EngineOptions SessionEngineOptions(const Session& session);

// Replays a trading session through a live EngineSession, one chain
// event at a time: window marks and initial state first, then - per
// distinct event time t, in order - the price step and method calls at t
// followed by Advance(t), and a final advance to the session end. The
// resulting stream->db() carries the same coverage a batch run over
// SessionToDatabase derives. When `event_latencies_us` is non-null, one
// wall-clock latency (the pushes plus the advance, in microseconds) is
// appended per advance performed.
Status ReplaySessionStream(const Session& session, EngineSession* stream,
                           std::vector<double>* event_latencies_us = nullptr);

}  // namespace dmtl

#endif  // DMTL_CHAIN_REPLAYER_H_
