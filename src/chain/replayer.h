#ifndef DMTL_CHAIN_REPLAYER_H_
#define DMTL_CHAIN_REPLAYER_H_

#include "src/chain/events.h"
#include "src/eval/seminaive.h"
#include "src/storage/database.h"

namespace dmtl {

// Maps a trading session onto the ETH-PERP program's input database: one
// temporal fact per method call (tranM / withdraw / modPos / closePos),
// step-function price intervals, the start/marketEnd window marks and the
// initial skew/frs state (Section 4.1's "Input Dataset" step).
Database SessionToDatabase(const Session& session);

// The matching engine horizon: derivations clamped to the session window.
EngineOptions SessionEngineOptions(const Session& session);

}  // namespace dmtl

#endif  // DMTL_CHAIN_REPLAYER_H_
