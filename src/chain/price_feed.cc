#include "src/chain/price_feed.h"

#include <cmath>
#include <random>

namespace dmtl {

std::vector<PricePoint> GeneratePricePath(const PriceFeedConfig& config,
                                          int64_t start_time,
                                          int64_t end_time) {
  std::vector<PricePoint> out;
  std::mt19937_64 rng(config.seed);
  std::normal_distribution<double> normal(0.0, 1.0);
  constexpr double kSecondsPerYear = 365.0 * 86400.0;
  double dt = static_cast<double>(config.update_interval_s) / kSecondsPerYear;
  double sigma = config.annual_volatility;
  double mu = config.drift;
  double price = config.initial_price;
  for (int64_t t = start_time; t < end_time;
       t += config.update_interval_s) {
    out.push_back({t, price});
    double z = normal(rng);
    price *= std::exp((mu - 0.5 * sigma * sigma) * dt +
                      sigma * std::sqrt(dt) * z);
  }
  return out;
}

}  // namespace dmtl
