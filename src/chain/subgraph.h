#ifndef DMTL_CHAIN_SUBGRAPH_H_
#define DMTL_CHAIN_SUBGRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "src/chain/events.h"
#include "src/common/status.h"
#include "src/reference/perp_engine.h"

namespace dmtl {

// Offline stand-in for the Mainnet Subgraph the paper queries for its
// validation dataset (Section 4.1): indexes a session by replaying it
// through the reference contract and exposes the two query entities the
// paper uses - funding rate updates and completed trades.
class Subgraph {
 public:
  static Result<Subgraph> Index(const Session& session,
                                MarketParams params = {});

  // The funding rate sequence F(t_k), one entry per interaction tick.
  const std::vector<FrsPoint>& FundingRateUpdates() const {
    return frs_updates_;
  }

  // Completed trades, optionally filtered by account.
  std::vector<TradeSettlement> FuturesTrades(
      const std::string& account = "") const;

  // Margin balances paid out at withdrawal.
  const std::map<std::string, double>& Withdrawals() const {
    return withdrawals_;
  }

 private:
  Subgraph() = default;

  std::vector<FrsPoint> frs_updates_;
  std::vector<TradeSettlement> trades_;
  std::map<std::string, double> withdrawals_;
};

}  // namespace dmtl

#endif  // DMTL_CHAIN_SUBGRAPH_H_
