#include "src/fleet/server.h"

#include <chrono>
#include <exception>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/storage/snapshot.h"

namespace dmtl {

namespace {

std::string HexU64(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string SessionKey::ToString() const {
  std::string out = program;
  if (params_fp != 0) {
    out += '#';
    out += HexU64(params_fp);
  }
  out += '/';
  out += shard;
  return out;
}

size_t SessionKeyHash::operator()(const SessionKey& key) const {
  size_t h = std::hash<std::string>()(key.program);
  h ^= std::hash<uint64_t>()(key.params_fp) + 0x9E3779B97F4A7C15ull +
       (h << 6) + (h >> 2);
  h ^= std::hash<std::string>()(key.shard) + 0x9E3779B97F4A7C15ull + (h << 6) +
       (h >> 2);
  return h;
}

// Per-session server state: identity, the (lazily created) live session,
// the queued operation log, and the last encoded checkpoint plus the log
// position it covers - the warm-restart replay tail is ops[snapshot_op,
// next_op).
struct FleetServer::Hosted {
  SessionKey key;
  const Program* program = nullptr;
  Rational start_time;
  std::optional<Rational> horizon;

  std::unique_ptr<EngineSession> session;
  bool failed = false;

  std::vector<FleetOp> ops;
  size_t next_op = 0;

  std::string snapshot;
  size_t snapshot_op = 0;
  size_t advances_since_snapshot = 0;

  SessionReport report;
};

FleetServer::FleetServer(const FleetOptions& options) : options_(options) {
  if (options_.ops_per_slice == 0) options_.ops_per_slice = 1;
}

FleetServer::~FleetServer() = default;

Result<std::unique_ptr<FleetServer>> FleetServer::Create(
    const FleetOptions& options) {
  if (options.engine.min_time.has_value() ||
      options.engine.max_time.has_value()) {
    return Status::InvalidArgument(
        "FleetOptions.engine min_time/max_time are managed by the hosted "
        "sessions; use Open's start_time and horizon");
  }
  if (options.engine.provenance != nullptr) {
    return Status::InvalidArgument(
        "FleetOptions.engine.provenance must be unset; use "
        "FleetOptions.track_provenance");
  }
  return std::unique_ptr<FleetServer>(new FleetServer(options));
}

Status FleetServer::RegisterProgram(const std::string& name, Program program) {
  if (name.empty()) {
    return Status::InvalidArgument("program name must be non-empty");
  }
  auto inserted = programs_.emplace(name, std::move(program));
  if (!inserted.second) {
    return Status::InvalidArgument("program '" + name +
                                   "' is already registered");
  }
  return Status::Ok();
}

Status FleetServer::Open(const SessionKey& key, const Rational& start_time,
                         std::optional<Rational> horizon) {
  auto prog = programs_.find(key.program);
  if (prog == programs_.end()) {
    return Status::InvalidArgument("no program registered under '" +
                                   key.program + "'");
  }
  if (registry_.count(key) > 0) {
    return Status::InvalidArgument("session " + key.ToString() +
                                   " is already open");
  }
  auto hosted = std::make_unique<Hosted>();
  hosted->key = key;
  hosted->program = &prog->second;
  hosted->start_time = start_time;
  hosted->horizon = std::move(horizon);
  hosted->report.key = key;
  registry_.emplace(key, hosted_.size());
  hosted_.push_back(std::move(hosted));
  return Status::Ok();
}

Status FleetServer::Enqueue(const SessionKey& key, std::vector<FleetOp> ops) {
  auto it = registry_.find(key);
  if (it == registry_.end()) {
    return Status::InvalidArgument("session " + key.ToString() +
                                   " is not open");
  }
  Hosted* h = hosted_[it->second].get();
  h->ops.insert(h->ops.end(), std::make_move_iterator(ops.begin()),
                std::make_move_iterator(ops.end()));
  return Status::Ok();
}

const EngineSession* FleetServer::Find(const SessionKey& key) const {
  auto it = registry_.find(key);
  if (it == registry_.end()) return nullptr;
  return hosted_[it->second]->session.get();
}

Result<SessionSnapshot> FleetServer::Checkpoint(const SessionKey& key) {
  auto it = registry_.find(key);
  if (it == registry_.end()) {
    return Status::InvalidArgument("session " + key.ToString() +
                                   " is not open");
  }
  Hosted* h = hosted_[it->second].get();
  if (h->failed) return h->report.status;
  if (h->session == nullptr) {
    if (h->snapshot.empty()) {
      return Status::InvalidArgument("session " + key.ToString() +
                                     " has no checkpoint yet: drain it "
                                     "first");
    }
    // Passivated with a current checkpoint: serve the stored bytes. When
    // the checkpoint trails the op log (its refresh was refused at
    // passivation), reactivate and snapshot live instead.
    if (h->snapshot_op == h->next_op) return DecodeSnapshot(h->snapshot);
    DMTL_RETURN_IF_ERROR(RestoreWarm(h, /*degraded=*/false));
  }
  return h->session->Snapshot();
}

SessionOptions FleetServer::BuildSessionOptions(const Hosted& h,
                                                bool degraded) const {
  SessionOptions so;
  so.engine = options_.engine;
  // The fleet's parallelism axis is across sessions; inside one session the
  // engine runs sequentially so a slice never re-enters the shared pool.
  so.engine.num_threads = 1;
  if (options_.session_deadline.has_value()) {
    so.engine.deadline = options_.session_deadline;
  }
  if (options_.session_max_intervals > 0) {
    so.engine.max_intervals = options_.session_max_intervals;
  }
  if (degraded) {
    // The ParallelSessions degraded-retry shape, adapted to eviction: drop
    // the acceleration that may have misbehaved and the deadline that may
    // have tripped; the interval budget stays (it bounds memory, and a
    // session that exhausts it degraded is genuinely over quota).
    so.engine.enable_chain_acceleration = false;
    so.engine.deadline.reset();
  }
  so.start_time = h.start_time;
  so.horizon = h.horizon;
  so.track_provenance = options_.track_provenance;
  return so;
}

Status FleetServer::CreateSession(Hosted* h) {
  DMTL_ASSIGN_OR_RETURN(
      h->session,
      EngineSession::Create(*h->program, BuildSessionOptions(*h, false)));
  return Status::Ok();
}

void FleetServer::TakeSnapshot(Hosted* h) {
  // A refusal (mid-heal under-approximation) is not an error: the previous
  // checkpoint stays valid, the replay tail just stays longer.
  Result<SessionSnapshot> snap = h->session->Snapshot();
  if (!snap.ok()) return;
  h->snapshot = EncodeSnapshot(snap.value());
  h->snapshot_op = h->next_op;
  h->advances_since_snapshot = 0;
  ++h->report.snapshots_taken;
}

Status FleetServer::ExecuteOp(Hosted* h, const FleetOp& op, bool record) {
  try {
    switch (op.kind) {
      case FleetOp::Kind::kPush:
        return h->session->Push(op.fact);
      case FleetOp::Kind::kStep:
        return h->session->PushStep(op.predicate, op.args, op.t);
      case FleetOp::Kind::kAdvance: {
        EngineStats stats;
        auto t0 = std::chrono::steady_clock::now();
        Status s = h->session->Advance(op.t, &stats);
        if (s.ok() && record) {
          auto t1 = std::chrono::steady_clock::now();
          double us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          ++h->report.advances;
          h->report.derived_intervals += stats.derived_intervals;
          h->report.advance_latencies_us.push_back(us);
        }
        return s;
      }
      case FleetOp::Kind::kSlide:
        return h->session->Slide(op.t);
    }
    return Status::Internal("unknown fleet op kind");
  } catch (const std::exception& e) {
    return Status::Internal(std::string("session aborted by exception: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("session aborted by non-standard exception");
  }
}

Status FleetServer::RestoreWarm(Hosted* h, bool degraded) {
  DMTL_ASSIGN_OR_RETURN(SessionSnapshot snap, DecodeSnapshot(h->snapshot));
  DMTL_ASSIGN_OR_RETURN(
      h->session,
      EngineSession::Restore(*h->program, BuildSessionOptions(*h, degraded),
                             snap));
  // Replay the op tail the checkpoint does not cover. Replayed work is not
  // re-counted in the throughput fields; ops_replayed carries its cost.
  for (size_t i = h->snapshot_op; i < h->next_op; ++i) {
    DMTL_RETURN_IF_ERROR(ExecuteOp(h, h->ops[i], /*record=*/false));
    ++h->report.ops_replayed;
  }
  return Status::Ok();
}

bool FleetServer::RunSlice(Hosted* h) {
  if (h->failed) return false;
  if (h->session == nullptr) {
    if (!h->snapshot.empty()) {
      // Passivated (or a prior Drain ended while checkpointed): reactivate
      // warm from the snapshot with the normal (non-degraded) knobs.
      Status woken = RestoreWarm(h, /*degraded=*/false);
      if (!woken.ok()) {
        h->failed = true;
        h->report.status = woken;
        return false;
      }
    } else {
      Status created = CreateSession(h);
      if (!created.ok()) {
        // Nothing to restore from: creation failures are always final.
        h->failed = true;
        h->report.status = created;
        return false;
      }
      // Checkpoint immediately (the database is empty, so this is cheap)
      // so every later eviction has a restore point.
      TakeSnapshot(h);
    }
  }
  size_t budget = options_.ops_per_slice;
  while (budget > 0 && h->next_op < h->ops.size()) {
    --budget;
    const FleetOp& op = h->ops[h->next_op];
    Status s = ExecuteOp(h, op, /*record=*/true);
    if (!s.ok()) {
      // Admission-control trip or fault: evict. Warm-restart once unless
      // the policy forbids it, the session already used its retry, or the
      // caller cancelled the run.
      if (!options_.retry_evicted || h->report.retried ||
          s.code() == StatusCode::kCancelled || h->snapshot.empty()) {
        h->failed = true;
        h->report.status = s;
        return false;
      }
      h->report.retried = true;
      h->report.first_attempt_status = s;
      Status restored = RestoreWarm(h, /*degraded=*/true);
      if (!restored.ok()) {
        h->failed = true;
        h->report.status = restored;
        return false;
      }
      // Retry the tripped op on the degraded session (next_op unchanged).
      continue;
    }
    bool advanced = op.kind == FleetOp::Kind::kAdvance;
    ++h->next_op;
    ++h->report.ops_executed;
    if (advanced && options_.snapshot_every_advances > 0 &&
        ++h->advances_since_snapshot >= options_.snapshot_every_advances) {
      TakeSnapshot(h);
    }
  }
  if (h->next_op >= h->ops.size() && options_.passivate_drained &&
      h->session != nullptr) {
    // Queue drained: checkpoint and release the live engine, so resident
    // state tracks the active sessions rather than every open one. If the
    // fresh checkpoint is refused the previous one still covers the tail;
    // only a session with no snapshot at all (post-create checkpoint
    // refused) must stay live.
    if (h->snapshot_op < h->next_op) TakeSnapshot(h);
    if (!h->snapshot.empty()) h->session.reset();
  }
  return h->next_op < h->ops.size();
}

Result<std::vector<SessionReport>> FleetServer::Drain() {
  std::vector<SessionReport> reports;
  reports.reserve(hosted_.size());
  if (!hosted_.empty()) {
    size_t workers = ThreadPool::ResolveThreads(options_.num_threads);
    if (workers > hosted_.size()) workers = hosted_.size();
    WorkStealingScheduler scheduler(hosted_.size(), workers);
    auto runner = [this](size_t item, size_t /*worker*/) -> bool {
      return RunSlice(hosted_[item].get());
    };
    if (workers <= 1) {
      scheduler.Run(nullptr, runner);
    } else {
      ThreadPool pool(workers);
      scheduler.Run(&pool, runner);
    }
  }
  for (const auto& h : hosted_) reports.push_back(h->report);
  return reports;
}

}  // namespace dmtl
