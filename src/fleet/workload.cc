#include "src/fleet/workload.h"

#include <algorithm>
#include <cstdint>

namespace dmtl {

std::vector<FleetOp> SessionToOps(const Session& session) {
  std::vector<FleetOp> ops;
  Rational start(session.start_time);
  Rational end(session.end_time);

  ops.push_back(FleetOp::Push(
      Fact::Make("start", {}, Interval::Point(start))));
  ops.push_back(FleetOp::Push(
      Fact::Make("marketEnd", {}, Interval::Point(end))));
  ops.push_back(FleetOp::Push(
      Fact::Make("skew", {Value::Double(session.initial_skew)},
                 Interval::Point(start))));
  ops.push_back(FleetOp::Push(
      Fact::Make("frs", {Value::Double(0.0)}, Interval::Point(start))));

  // Distinct chain event times, ascending - exactly the advance schedule
  // ReplaySessionStream runs.
  std::vector<int64_t> times;
  times.reserve(session.prices.size() + session.events.size());
  for (const PricePoint& p : session.prices) times.push_back(p.time);
  for (const MarketEvent& e : session.events) times.push_back(e.time);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  const PredicateId price = InternPredicate("price");
  size_t pi = 0;
  size_t ei = 0;
  for (int64_t t : times) {
    Rational rt(t);
    for (; pi < session.prices.size() && session.prices[pi].time == t; ++pi) {
      ops.push_back(FleetOp::Step(
          price, {Value::Double(session.prices[pi].price)}, rt));
    }
    for (; ei < session.events.size() && session.events[ei].time == t; ++ei) {
      const MarketEvent& e = session.events[ei];
      Interval at = Interval::Point(rt);
      Value account = Value::Symbol(e.account);
      switch (e.kind) {
        case EventKind::kTransferMargin:
          ops.push_back(FleetOp::Push(Fact::Make(
              "tranM", {account, Value::Double(e.amount)}, at)));
          break;
        case EventKind::kWithdraw:
          ops.push_back(
              FleetOp::Push(Fact::Make("withdraw", {account}, at)));
          break;
        case EventKind::kModifyPosition:
          ops.push_back(FleetOp::Push(Fact::Make(
              "modPos", {account, Value::Double(e.amount)}, at)));
          break;
        case EventKind::kClosePosition:
          ops.push_back(
              FleetOp::Push(Fact::Make("closePos", {account}, at)));
          break;
      }
    }
    ops.push_back(FleetOp::Advance(rt));
  }
  const Rational last = times.empty() ? start : Rational(times.back());
  if (last < end) ops.push_back(FleetOp::Advance(end));
  return ops;
}

}  // namespace dmtl
