#ifndef DMTL_FLEET_SERVER_H_
#define DMTL_FLEET_SERVER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/program.h"
#include "src/common/status.h"
#include "src/engine/session.h"
#include "src/fleet/scheduler.h"
#include "src/fleet/workload.h"

namespace dmtl {

// Identity of a hosted session: which rule set it runs (a registered
// program), which market parameterization produced that program, and which
// account shard it serves. Sessions are shared-nothing across keys - the
// contract predicates are keyed by account and accounts never interact
// across shards - which is what lets the fleet multiplex thousands of them
// with no cross-session synchronization.
struct SessionKey {
  std::string program;     // name under which the program was registered
  uint64_t params_fp = 0;  // market-params fingerprint (0 = defaults)
  std::string shard;       // account shard / session name

  bool operator==(const SessionKey& other) const {
    return program == other.program && params_fp == other.params_fp &&
           shard == other.shard;
  }
  std::string ToString() const;
};

struct SessionKeyHash {
  size_t operator()(const SessionKey& key) const;
};

// Fleet-wide policy. Per-session engine parallelism is intentionally absent:
// every hosted session runs its engine sequentially (num_threads forced to
// 1) and the fleet's parallelism axis is *across* sessions, which is both
// the scaling shape the workload has (many small independent contracts) and
// what keeps the scheduler's shared-nothing contract trivial.
struct FleetOptions {
  // Scheduler workers: 0 = hardware concurrency, 1 = sequential.
  int num_threads = 0;

  // Per-session engine knobs (acceleration, memos, budgets...). num_threads
  // is overridden to 1 and min_time/max_time/provenance must be unset (the
  // sessions manage them), exactly like SessionOptions::engine.
  EngineOptions engine;

  // Admission control, reusing the engine's guard machinery: each operation
  // of each session runs under this deadline and interval budget. A trip
  // stops the operation at a round barrier (rollback included); the server
  // then evicts the session and warm-restarts it from its last snapshot.
  std::optional<std::chrono::milliseconds> session_deadline;
  size_t session_max_intervals = 0;  // 0 = the engine default

  // Operations executed per scheduler slice before the session yields the
  // worker - the fairness quantum. Advances dominate slice cost.
  size_t ops_per_slice = 8;

  // Snapshot cadence: checkpoint after every N advances (round barriers).
  // 0 keeps only the post-creation snapshot, so an evicted session replays
  // its whole op history. Snapshots are what make eviction cheap: the warm
  // restart replays at most N advances.
  size_t snapshot_every_advances = 16;

  // Evict-and-retry policy (the ParallelSessions degraded-retry shape): a
  // failed session is restored from its last snapshot with chain
  // acceleration off and no deadline, and the op tail is replayed once. A
  // second failure (or retry_evicted = false, or a cancellation) is final.
  bool retry_evicted = true;

  // Passivation: when a session's queue drains, checkpoint it and release
  // the live engine; new ops (or the next Drain) reactivate it warm from
  // the snapshot. This bounds resident engine state to the *active*
  // sessions instead of every open one - the difference between hosting
  // 10k sessions and holding 10k materializations in memory. Find()
  // returns nullptr for a passivated session. Off by default so small
  // fleets keep their sessions inspectable after a drain.
  bool passivate_drained = false;

  // Record provenance in every hosted session (expensive at fleet scale;
  // the snapshot round-trip tests turn it on).
  bool track_provenance = false;
};

// Outcome and measurements of one hosted session after a Drain.
struct SessionReport {
  SessionKey key;
  Status status = Status::Ok();

  // Whether the degraded warm restart ran, and what the first attempt hit.
  bool retried = false;
  Status first_attempt_status = Status::Ok();

  size_t ops_executed = 0;        // ops consumed from the queue
  size_t advances = 0;            // kAdvance ops among them
  size_t derived_intervals = 0;   // summed over this session's operations
  size_t snapshots_taken = 0;
  size_t ops_replayed = 0;        // warm-restart replay length (0 = none)
  // Wall-clock per advance (pushes between advances are attributed to the
  // advance that consumes them), for the fleet latency distribution.
  std::vector<double> advance_latencies_us;

  bool ok() const { return status.ok(); }
};

// A shared-nothing session server: hosts 1k-10k concurrent contract
// sessions, multiplexed over the existing ThreadPool by a work-stealing
// scheduler, with per-tenant admission control (guard deadline + interval
// budget per operation) and snapshot persistence so evicted sessions
// restart warm instead of cold-replaying.
//
// Lifecycle: RegisterProgram once per rule set, Open once per session key,
// Enqueue operation batches (SessionToOps compiles a trading session into
// one), then Drain to run the fleet idle. Sessions stay open across Drains
// - enqueue more ops and drain again to advance the fleet's windows.
//
// Thread contract: Open/Enqueue/Find/Checkpoint and Drain are
// caller-serialized (one thread drives the server); all parallelism is
// inside Drain, where the scheduler guarantees each session is touched by
// one worker at a time.
class FleetServer {
 public:
  explicit FleetServer(const FleetOptions& options = {});
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  // Validates fleet-wide options once (same rules as SessionOptions).
  static Result<std::unique_ptr<FleetServer>> Create(
      const FleetOptions& options = {});

  // Registers a rule set under `name`. Programs are compiled per session at
  // first touch (inside Drain, so creation cost parallelizes); registering
  // twice under one name is an error.
  Status RegisterProgram(const std::string& name, Program program);

  // Admits a session under `key` (whose key.program must be registered)
  // with the given window start and optional sliding horizon. The session
  // itself is created lazily on its first Drain slice.
  Status Open(const SessionKey& key, const Rational& start_time,
              std::optional<Rational> horizon = std::nullopt);

  // Appends operations to the session's queue (they run on the next Drain).
  Status Enqueue(const SessionKey& key, std::vector<FleetOp> ops);

  // Runs every queued operation to completion across the scheduler and
  // returns one report per session in Open order. Failures are isolated: a
  // session that exhausts its budgets or faults is evicted (and retried
  // once, warm, when the policy allows); its siblings always run on. The
  // Result itself is an error only for setup problems.
  Result<std::vector<SessionReport>> Drain();

  // The live session hosted under `key` (nullptr before its first Drain
  // slice, after passivation, or for unknown keys). Const access for
  // checks and extraction.
  const EngineSession* Find(const SessionKey& key) const;

  // Exports the session's current state as a snapshot - fresh from the
  // live session when one is resident, decoded from the passivation
  // checkpoint otherwise (reactivating first if the checkpoint trails the
  // op log). The unit of persistence for moving sessions off-box.
  Result<SessionSnapshot> Checkpoint(const SessionKey& key);

  size_t num_sessions() const { return hosted_.size(); }

 private:
  struct Hosted;

  // One scheduler slice: up to ops_per_slice queued ops. Returns true while
  // the session has more queued work.
  bool RunSlice(Hosted* h);
  Status ExecuteOp(Hosted* h, const FleetOp& op, bool record);
  Status CreateSession(Hosted* h);
  // Warm restart from the last snapshot: decode, restore (degraded engine
  // knobs when this is an eviction rather than a reactivation), and replay
  // the op tail up to (not including) h->next_op.
  Status RestoreWarm(Hosted* h, bool degraded);
  void TakeSnapshot(Hosted* h);
  SessionOptions BuildSessionOptions(const Hosted& h, bool degraded) const;

  FleetOptions options_;
  std::map<std::string, Program> programs_;  // node-stable addresses
  std::vector<std::unique_ptr<Hosted>> hosted_;
  std::unordered_map<SessionKey, size_t, SessionKeyHash> registry_;
};

}  // namespace dmtl

#endif  // DMTL_FLEET_SERVER_H_
