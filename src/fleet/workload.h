#ifndef DMTL_FLEET_WORKLOAD_H_
#define DMTL_FLEET_WORKLOAD_H_

#include <utility>
#include <vector>

#include "src/chain/events.h"
#include "src/storage/database.h"

namespace dmtl {

// One queued operation against a hosted session - the fleet server's unit
// of replay and the schedulable tail a warm restart re-runs. The vocabulary
// mirrors EngineSession: push a fact, step a channel, advance the
// watermark, slide the window.
struct FleetOp {
  enum class Kind { kPush, kStep, kAdvance, kSlide };

  Kind kind = Kind::kAdvance;
  Fact fact;                  // kPush: the fact to insert and log
  PredicateId predicate = 0;  // kStep: the channel predicate
  Tuple args;                 // kStep: the channel value
  Rational t;                 // kStep: step time; kAdvance: target
                              // watermark; kSlide: new window minimum

  static FleetOp Push(Fact fact) {
    FleetOp op;
    op.kind = Kind::kPush;
    op.fact = std::move(fact);
    return op;
  }
  static FleetOp Step(PredicateId pred, Tuple args, const Rational& t) {
    FleetOp op;
    op.kind = Kind::kStep;
    op.predicate = pred;
    op.args = std::move(args);
    op.t = t;
    return op;
  }
  static FleetOp Advance(const Rational& t) {
    FleetOp op;
    op.kind = Kind::kAdvance;
    op.t = t;
    return op;
  }
  static FleetOp Slide(const Rational& new_min) {
    FleetOp op;
    op.kind = Kind::kSlide;
    op.t = new_min;
    return op;
  }
};

// Compiles a trading session into the exact operation sequence
// ReplaySessionStream drives interactively: window marks and initial state
// first, then - per distinct chain time t, in order - the price step and
// method calls at t followed by an advance to t, and a final advance to the
// session end. Feeding these ops to any EngineSession yields the same
// coverage a batch run over SessionToDatabase(session) derives; the fleet
// workload generator builds its per-session queues from this.
std::vector<FleetOp> SessionToOps(const Session& session);

}  // namespace dmtl

#endif  // DMTL_FLEET_WORKLOAD_H_
