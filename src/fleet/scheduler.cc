#include "src/fleet/scheduler.h"

#include <thread>

namespace dmtl {

WorkStealingScheduler::WorkStealingScheduler(size_t num_items,
                                             size_t num_workers)
    : num_workers_(num_workers < 1 ? 1 : num_workers),
      outstanding_(num_items) {
  deques_.reserve(num_workers_);
  for (size_t w = 0; w < num_workers_; ++w) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  for (size_t i = 0; i < num_items; ++i) {
    deques_[i % num_workers_]->items.push_back(i);
  }
}

bool WorkStealingScheduler::PopOwn(size_t worker, size_t* item) {
  WorkerDeque& dq = *deques_[worker];
  std::lock_guard<std::mutex> lock(dq.mu);
  if (dq.items.empty()) return false;
  *item = dq.items.front();
  dq.items.pop_front();
  return true;
}

bool WorkStealingScheduler::StealFrom(size_t thief, size_t* item) {
  for (size_t off = 1; off < num_workers_; ++off) {
    WorkerDeque& dq = *deques_[(thief + off) % num_workers_];
    std::lock_guard<std::mutex> lock(dq.mu);
    if (dq.items.empty()) continue;
    *item = dq.items.back();
    dq.items.pop_back();
    return true;
  }
  return false;
}

void WorkStealingScheduler::Requeue(size_t worker, size_t item) {
  WorkerDeque& dq = *deques_[worker];
  std::lock_guard<std::mutex> lock(dq.mu);
  dq.items.push_back(item);
}

void WorkStealingScheduler::WorkerLoop(size_t worker, const Runner& runner) {
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    size_t item = 0;
    if (!PopOwn(worker, &item) && !StealFrom(worker, &item)) {
      // Nothing queued, but siblings may still be mid-slice and requeue;
      // yield instead of spinning hot (slices are materialization work,
      // milliseconds - the yield loop is a rounding error).
      std::this_thread::yield();
      continue;
    }
    if (runner(item, worker)) {
      Requeue(worker, item);
    } else {
      outstanding_.fetch_sub(1, std::memory_order_release);
    }
  }
}

void WorkStealingScheduler::Run(ThreadPool* pool, const Runner& runner) {
  if (outstanding_.load(std::memory_order_acquire) == 0) return;
  if (pool == nullptr || num_workers_ == 1) {
    WorkerLoop(0, runner);
    return;
  }
  // One long-lived task per worker; runner failures are the runner's to
  // record per item (the fleet isolates faults), so the batch Status is
  // always Ok.
  (void)pool->ParallelFor(num_workers_, [&](size_t worker) -> Status {
    WorkerLoop(worker, runner);
    return Status::Ok();
  });
}

}  // namespace dmtl
