#ifndef DMTL_FLEET_SCHEDULER_H_
#define DMTL_FLEET_SCHEDULER_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/thread_pool.h"

namespace dmtl {

// Work-stealing multiplexer for the fleet server: N ready items (hosted
// sessions with queued operations) are spread round-robin over per-worker
// deques and driven in slices until every item reports it is done.
//
// Each worker pops from the *front* of its own deque and, when empty,
// steals from the *back* of a sibling's - the classic split that keeps an
// item hot on its owning worker (session state stays in that core's cache)
// while idle workers drain the longest-waiting work from elsewhere.
//
// Shared-nothing contract: an item lives in at most one deque and is never
// executed by two workers at once, so the runner may mutate the item's
// session state without any locking of its own. The deques themselves are
// mutex-guarded (they are tiny: a steal is one pop under an uncontended
// lock, orders of magnitude cheaper than the materialization slice it
// hands over).
class WorkStealingScheduler {
 public:
  // Executes one slice of `item` on `worker`; returns true while the item
  // has more work (it is requeued on the executing worker's deque - work
  // follows the thief, which is what balances skewed sessions).
  using Runner = std::function<bool(size_t item, size_t worker)>;

  // Seeds items 0..num_items-1 round-robin across num_workers deques.
  WorkStealingScheduler(size_t num_items, size_t num_workers);

  // Drives every item to completion and returns when the fleet is idle.
  // Workers are hosted on `pool` via ParallelFor (the calling thread
  // participates, matching the engine's pool contract); a null pool or a
  // single worker degrades to an inline loop. Not reentrant.
  void Run(ThreadPool* pool, const Runner& runner);

  size_t num_workers() const { return num_workers_; }

 private:
  struct WorkerDeque {
    std::mutex mu;
    std::deque<size_t> items;
  };

  bool PopOwn(size_t worker, size_t* item);
  bool StealFrom(size_t thief, size_t* item);
  void Requeue(size_t worker, size_t item);
  void WorkerLoop(size_t worker, const Runner& runner);

  size_t num_workers_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  // Items not yet finished (queued or mid-slice); workers exit when zero.
  std::atomic<size_t> outstanding_;
};

}  // namespace dmtl

#endif  // DMTL_FLEET_SCHEDULER_H_
