#ifndef DMTL_ANALYSIS_SAFETY_H_
#define DMTL_ANALYSIS_SAFETY_H_

#include <set>

#include "src/ast/program.h"
#include "src/common/status.h"

namespace dmtl {

// Variables bound by the positive relational literals of the rule body -
// the bindings stage-1 join enumeration produces, regardless of the order
// the literals are evaluated in. CheckSafety seeds its boundness analysis
// with this set, and the join planner (RuleEvaluator::Plan) relies on the
// same set when reordering positive literals: any order is safe because
// builtins, negation, and the head only ever depend on variables that are
// positively bound *after all* positive literals have been enumerated.
std::set<int> PositiveLiteralVars(const Rule& rule);

// Checks rule safety in the Vadalog-extended sense:
//  - every variable in the head, in a negated literal, or in a comparison
//    must be bound by a positive relational atom, a timestamp() builtin, or
//    an assignment whose right-hand side is itself bound;
//  - assignment chains must be resolvable in some order (no circular
//    definitions such as X = Y + 1, Y = X + 1 with neither bound).
// Returns kUnsafeRule naming the offending rule and variable.
Status CheckSafety(const Rule& rule);
Status CheckSafety(const Program& program);

}  // namespace dmtl

#endif  // DMTL_ANALYSIS_SAFETY_H_
