#ifndef DMTL_ANALYSIS_SAFETY_H_
#define DMTL_ANALYSIS_SAFETY_H_

#include "src/ast/program.h"
#include "src/common/status.h"

namespace dmtl {

// Checks rule safety in the Vadalog-extended sense:
//  - every variable in the head, in a negated literal, or in a comparison
//    must be bound by a positive relational atom, a timestamp() builtin, or
//    an assignment whose right-hand side is itself bound;
//  - assignment chains must be resolvable in some order (no circular
//    definitions such as X = Y + 1, Y = X + 1 with neither bound).
// Returns kUnsafeRule naming the offending rule and variable.
Status CheckSafety(const Rule& rule);
Status CheckSafety(const Program& program);

}  // namespace dmtl

#endif  // DMTL_ANALYSIS_SAFETY_H_
