#ifndef DMTL_ANALYSIS_DOT_EXPORT_H_
#define DMTL_ANALYSIS_DOT_EXPORT_H_

#include <string>

#include "src/analysis/dependency_graph.h"

namespace dmtl {

// Renders the dependency graph as Graphviz DOT (the paper's Figure 1).
// Positive edges are solid, negated edges dashed, aggregated edges bold.
std::string ToDot(const DependencyGraph& graph,
                  const std::string& title = "dependency_graph");

}  // namespace dmtl

#endif  // DMTL_ANALYSIS_DOT_EXPORT_H_
