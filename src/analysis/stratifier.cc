#include "src/analysis/stratifier.h"

#include <algorithm>
#include <functional>

namespace dmtl {

namespace {

// Iterative Tarjan SCC over the predicate graph.
class SccFinder {
 public:
  explicit SccFinder(const DependencyGraph& graph) : graph_(graph) {
    for (PredicateId node : graph.nodes()) {
      if (!index_.count(node)) Visit(node);
    }
  }

  // Component ids in reverse topological order of discovery: an edge from
  // component A to component B (A != B) implies comp_id[A] > comp_id[B] is
  // NOT guaranteed by Tarjan order alone, so callers should use the longest-
  // path pass in Stratify() instead of relying on ids.
  const std::map<PredicateId, int>& component_of() const {
    return component_of_;
  }
  int num_components() const { return num_components_; }

 private:
  void Visit(PredicateId root) {
    struct Frame {
      PredicateId node;
      std::vector<std::pair<PredicateId, EdgeKind>> succ;
      size_t next = 0;
    };
    std::vector<Frame> stack;
    auto open = [&](PredicateId node) {
      index_[node] = lowlink_[node] = counter_++;
      tarjan_stack_.push_back(node);
      on_stack_.insert(node);
      Frame f;
      f.node = node;
      auto range = graph_.adjacency().equal_range(node);
      for (auto it = range.first; it != range.second; ++it) {
        f.succ.push_back(it->second);
      }
      stack.push_back(std::move(f));
    };
    open(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next < frame.succ.size()) {
        PredicateId next = frame.succ[frame.next++].first;
        if (!index_.count(next)) {
          open(next);
        } else if (on_stack_.count(next)) {
          lowlink_[frame.node] =
              std::min(lowlink_[frame.node], index_[next]);
        }
        continue;
      }
      // Close the frame.
      if (lowlink_[frame.node] == index_[frame.node]) {
        while (true) {
          PredicateId member = tarjan_stack_.back();
          tarjan_stack_.pop_back();
          on_stack_.erase(member);
          component_of_[member] = num_components_;
          if (member == frame.node) break;
        }
        ++num_components_;
      }
      PredicateId done = frame.node;
      stack.pop_back();
      if (!stack.empty()) {
        lowlink_[stack.back().node] =
            std::min(lowlink_[stack.back().node], lowlink_[done]);
      }
    }
  }

  const DependencyGraph& graph_;
  int counter_ = 0;
  int num_components_ = 0;
  std::map<PredicateId, int> index_;
  std::map<PredicateId, int> lowlink_;
  std::vector<PredicateId> tarjan_stack_;
  std::set<PredicateId> on_stack_;
  std::map<PredicateId, int> component_of_;
};

}  // namespace

Result<Stratification> Stratify(const Program& program) {
  DependencyGraph graph = DependencyGraph::Build(program);
  SccFinder sccs(graph);
  const auto& comp = sccs.component_of();

  // Reject negative/aggregated edges inside a component.
  for (const DependencyGraph::Edge& edge : graph.edges()) {
    if (edge.kind == EdgeKind::kPositive) continue;
    if (comp.at(edge.from) == comp.at(edge.to)) {
      const char* what =
          edge.kind == EdgeKind::kNegative ? "negation" : "aggregation";
      return Status::NotStratifiable(
          std::string(what) + " inside a recursive cycle through '" +
          PredicateName(edge.from) + "' and '" + PredicateName(edge.to) +
          "'");
    }
  }

  // Longest-path layering over the condensation: positive cross-component
  // edges require stratum(to) >= stratum(from); negative/aggregated edges
  // require strictly greater. Iterate to fixpoint (the condensation is a
  // DAG, so this terminates within num_components passes).
  int n = sccs.num_components();
  std::vector<int> stratum(n, 0);
  bool changed = true;
  int guard = 0;
  while (changed) {
    changed = false;
    if (++guard > n + 2) {
      return Status::Internal("stratification layering did not converge");
    }
    for (const DependencyGraph::Edge& edge : graph.edges()) {
      int from = comp.at(edge.from);
      int to = comp.at(edge.to);
      if (from == to) continue;
      int required = stratum[from] + (edge.kind == EdgeKind::kPositive ? 0 : 1);
      if (stratum[to] < required) {
        stratum[to] = required;
        changed = true;
      }
    }
  }

  Stratification out;
  int max_stratum = 0;
  for (PredicateId node : graph.nodes()) {
    int s = stratum[comp.at(node)];
    out.predicate_stratum[node] = s;
    max_stratum = std::max(max_stratum, s);
  }
  out.num_strata = max_stratum + 1;
  out.rule_strata.assign(out.num_strata, {});
  for (size_t i = 0; i < program.rules().size(); ++i) {
    PredicateId head = program.rules()[i].head.predicate;
    out.rule_strata[out.predicate_stratum.at(head)].push_back(i);
  }
  return out;
}

}  // namespace dmtl
