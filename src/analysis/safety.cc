#include "src/analysis/safety.h"

#include <set>

namespace dmtl {

namespace {

std::string VarName(const Rule& rule, int var) {
  if (var >= 0 && static_cast<size_t>(var) < rule.var_names.size()) {
    return rule.var_names[var];
  }
  return "V" + std::to_string(var);
}

}  // namespace

std::set<int> PositiveLiteralVars(const Rule& rule) {
  std::set<int> bound;
  for (const BodyLiteral& lit : rule.body) {
    if (lit.kind == BodyLiteral::Kind::kMetric && !lit.negated) {
      std::vector<int> vars;
      lit.metric.CollectVars(&vars);
      bound.insert(vars.begin(), vars.end());
    }
  }
  return bound;
}

Status CheckSafety(const Rule& rule) {
  // Positive relational atoms bind their variables; timestamp() binds its
  // target.
  std::set<int> bound = PositiveLiteralVars(rule);
  for (const BodyLiteral& lit : rule.body) {
    if (lit.kind == BodyLiteral::Kind::kBuiltin &&
        lit.builtin.kind == BuiltinAtom::Kind::kTimestamp) {
      bound.insert(lit.builtin.var);
    }
  }
  // Assignments bind their target once the RHS is bound; iterate to
  // fixpoint so declaration order does not matter.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kBuiltin) continue;
      const BuiltinAtom& b = lit.builtin;
      if (b.kind != BuiltinAtom::Kind::kAssign) continue;
      if (bound.count(b.var)) continue;
      std::vector<int> rhs_vars;
      b.expr.CollectVars(&rhs_vars);
      bool all_bound = true;
      for (int v : rhs_vars) {
        if (!bound.count(v)) {
          all_bound = false;
          break;
        }
      }
      if (all_bound) {
        bound.insert(b.var);
        changed = true;
      }
    }
  }

  auto fail = [&](int var, const char* where) {
    return Status::UnsafeRule("variable " + VarName(rule, var) + " in " +
                              where + " is not bound by a positive atom: " +
                              rule.ToString());
  };

  // Head variables.
  for (const Term& term : rule.head.args) {
    if (term.is_variable() && !bound.count(term.var())) {
      return fail(term.var(), "head");
    }
  }
  if (rule.head.aggregate.has_value() &&
      rule.head.aggregate->term.is_variable() &&
      !bound.count(rule.head.aggregate->term.var())) {
    return fail(rule.head.aggregate->term.var(), "aggregate");
  }
  // Comparisons and unresolved assignments. Unbound variables in negated
  // literals are deliberately allowed: they are evaluated existentially
  // (e.g. the paper's `not order(A, _)` means "no order by A of any size").
  for (const BodyLiteral& lit : rule.body) {
    if (lit.kind == BodyLiteral::Kind::kBuiltin) {
      const BuiltinAtom& b = lit.builtin;
      if (b.kind == BuiltinAtom::Kind::kCompare) {
        std::vector<int> vars;
        b.lhs.CollectVars(&vars);
        b.rhs.CollectVars(&vars);
        for (int v : vars) {
          if (!bound.count(v)) return fail(v, "comparison");
        }
      } else if (b.kind == BuiltinAtom::Kind::kAssign) {
        std::vector<int> vars;
        b.expr.CollectVars(&vars);
        for (int v : vars) {
          if (!bound.count(v)) return fail(v, "assignment");
        }
        if (!bound.count(b.var)) return fail(b.var, "assignment");
      }
    }
  }
  return Status::Ok();
}

Status CheckSafety(const Program& program) {
  for (const Rule& rule : program.rules()) {
    DMTL_RETURN_IF_ERROR(CheckSafety(rule));
  }
  return Status::Ok();
}

}  // namespace dmtl
