#ifndef DMTL_ANALYSIS_DEPENDENCY_GRAPH_H_
#define DMTL_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ast/program.h"

namespace dmtl {

// How a body predicate feeds a head predicate. Negative and aggregated
// dependencies must point to strictly lower strata (stratified negation /
// stratified aggregation).
enum class EdgeKind : uint8_t { kPositive, kNegative, kAggregated };

// The predicate dependency graph of a program (the paper's Figure 1):
// an edge P -> H for every rule with head predicate H and P in the body.
class DependencyGraph {
 public:
  struct Edge {
    PredicateId from;
    PredicateId to;
    EdgeKind kind;
  };

  static DependencyGraph Build(const Program& program);

  const std::vector<Edge>& edges() const { return edges_; }
  const std::set<PredicateId>& nodes() const { return nodes_; }

  // Outgoing adjacency: node -> (successor, kind) pairs.
  const std::multimap<PredicateId, std::pair<PredicateId, EdgeKind>>&
  adjacency() const {
    return adjacency_;
  }

  std::string ToString() const;

 private:
  std::vector<Edge> edges_;
  std::set<PredicateId> nodes_;
  std::multimap<PredicateId, std::pair<PredicateId, EdgeKind>> adjacency_;
};

}  // namespace dmtl

#endif  // DMTL_ANALYSIS_DEPENDENCY_GRAPH_H_
