#ifndef DMTL_ANALYSIS_STRATIFIER_H_
#define DMTL_ANALYSIS_STRATIFIER_H_

#include <map>
#include <vector>

#include "src/analysis/dependency_graph.h"
#include "src/ast/program.h"
#include "src/common/status.h"

namespace dmtl {

// A stratification of a program: predicates are assigned to strata such
// that positive dependencies never go down and negative/aggregated
// dependencies go strictly up (sigma(P+) <= sigma(P), sigma(P-) < sigma(P)).
// Rules are grouped by the stratum of their head predicate and evaluated
// stratum by stratum.
struct Stratification {
  // Predicate -> stratum index (0-based; EDB-only predicates get 0).
  std::map<PredicateId, int> predicate_stratum;
  // rule_strata[s] = indices into program.rules() whose head is in stratum s.
  std::vector<std::vector<size_t>> rule_strata;
  int num_strata = 0;
};

// Computes a stratification via SCC condensation of the dependency graph.
// Fails with kNotStratifiable when a negative or aggregated edge lies inside
// a cycle (the condition the paper's Section 3.8 verifies by hand for the
// ETH-PERP program).
Result<Stratification> Stratify(const Program& program);

}  // namespace dmtl

#endif  // DMTL_ANALYSIS_STRATIFIER_H_
