#include "src/analysis/dot_export.h"

#include <algorithm>

namespace dmtl {

std::string ToDot(const DependencyGraph& graph, const std::string& title) {
  std::string out = "digraph " + title + " {\n";
  out += "  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n";
  std::vector<std::string> lines;
  for (PredicateId node : graph.nodes()) {
    lines.push_back("  \"" + PredicateName(node) + "\";\n");
  }
  for (const DependencyGraph::Edge& e : graph.edges()) {
    std::string style;
    switch (e.kind) {
      case EdgeKind::kPositive:
        style = "";
        break;
      case EdgeKind::kNegative:
        style = " [style=dashed, label=\"not\"]";
        break;
      case EdgeKind::kAggregated:
        style = " [style=bold, label=\"agg\"]";
        break;
    }
    lines.push_back("  \"" + PredicateName(e.from) + "\" -> \"" +
                    PredicateName(e.to) + "\"" + style + ";\n");
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) out += line;
  out += "}\n";
  return out;
}

}  // namespace dmtl
