#include "src/analysis/dependency_graph.h"

#include <algorithm>

namespace dmtl {

DependencyGraph DependencyGraph::Build(const Program& program) {
  DependencyGraph graph;
  std::set<std::tuple<PredicateId, PredicateId, EdgeKind>> seen;
  for (const Rule& rule : program.rules()) {
    PredicateId head = rule.head.predicate;
    graph.nodes_.insert(head);
    bool aggregated = rule.head.aggregate.has_value();
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kMetric) continue;
      std::vector<const RelationalAtom*> atoms;
      lit.metric.CollectRelationalAtoms(&atoms);
      for (const RelationalAtom* atom : atoms) {
        graph.nodes_.insert(atom->predicate);
        EdgeKind kind = EdgeKind::kPositive;
        if (lit.negated) kind = EdgeKind::kNegative;
        if (aggregated) kind = EdgeKind::kAggregated;
        if (seen.insert({atom->predicate, head, kind}).second) {
          graph.edges_.push_back({atom->predicate, head, kind});
          graph.adjacency_.emplace(atom->predicate,
                                   std::make_pair(head, kind));
        }
      }
    }
  }
  return graph;
}

std::string DependencyGraph::ToString() const {
  std::vector<std::string> lines;
  for (const Edge& e : edges_) {
    const char* arrow = "->";
    if (e.kind == EdgeKind::kNegative) arrow = "-!>";
    if (e.kind == EdgeKind::kAggregated) arrow = "-agg>";
    lines.push_back(PredicateName(e.from) + " " + arrow + " " +
                    PredicateName(e.to));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace dmtl
