#ifndef DMTL_SYNTH_TEMPORAL_BENCH_H_
#define DMTL_SYNTH_TEMPORAL_BENCH_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace dmtl {

// Generator of the canonical recursion/operator patterns used to stress
// DatalogMTL reasoners (in the style of the iTemporal benchmark generator
// the Vadalog line of work evaluates with). Each pattern produces a
// self-contained rules+facts source text.
enum class SynthPattern {
  // r1(X) :- base(X).  r_{i+1}(X) :- diamondminus[0,w] r_i(X).
  kLinearChain,
  // head(X) :- q_1(X), ..., q_k(X) with staggered windows per atom.
  kStarJoin,
  // Temporal transitive closure over a random interval-labelled graph.
  kTransitiveClosure,
  // s_{i+1}(X) :- boxminus[0,w] diamondminus[0,w] s_i(X): alternating
  // erosion/dilation cascade.
  kWindowCascade,
  // The accelerable self-propagation shape with random blockers.
  kSelfChain,
};

const char* SynthPatternToString(SynthPattern pattern);

struct SynthConfig {
  SynthPattern pattern = SynthPattern::kLinearChain;
  int depth = 5;           // rule-chain depth / join width
  int num_constants = 10;  // data domain size
  int num_facts = 50;      // EDB facts
  int window = 3;          // operator window width
  int64_t timeline = 100;  // fact timestamps drawn from [0, timeline]
  uint64_t seed = 1;
};

// Generated program + facts text and the predicate holding the results.
struct SynthBenchmark {
  std::string text;
  std::string output_predicate;
  int64_t horizon = 0;  // recommended EngineOptions::max_time
};

Result<SynthBenchmark> GenerateTemporalBenchmark(const SynthConfig& config);

}  // namespace dmtl

#endif  // DMTL_SYNTH_TEMPORAL_BENCH_H_
