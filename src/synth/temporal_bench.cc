#include "src/synth/temporal_bench.h"

#include <random>
#include <sstream>

namespace dmtl {

namespace {

// Emits `count` random facts for `pred` over the config's domain/timeline.
void EmitFacts(const SynthConfig& config, const std::string& pred, int arity,
               int count, std::mt19937_64* rng, std::ostringstream* out) {
  std::uniform_int_distribution<int> constant(0, config.num_constants - 1);
  std::uniform_int_distribution<int64_t> time(0, config.timeline);
  std::uniform_int_distribution<int64_t> width(0, config.window);
  for (int i = 0; i < count; ++i) {
    *out << pred << "(";
    for (int a = 0; a < arity; ++a) {
      if (a > 0) *out << ", ";
      *out << "n" << constant(*rng);
    }
    int64_t lo = time(*rng);
    *out << ")@[" << lo << "," << lo + width(*rng) << "] .\n";
  }
}

}  // namespace

const char* SynthPatternToString(SynthPattern pattern) {
  switch (pattern) {
    case SynthPattern::kLinearChain:
      return "linear-chain";
    case SynthPattern::kStarJoin:
      return "star-join";
    case SynthPattern::kTransitiveClosure:
      return "transitive-closure";
    case SynthPattern::kWindowCascade:
      return "window-cascade";
    case SynthPattern::kSelfChain:
      return "self-chain";
  }
  return "?";
}

Result<SynthBenchmark> GenerateTemporalBenchmark(const SynthConfig& config) {
  if (config.depth < 1 || config.num_constants < 1 || config.num_facts < 1 ||
      config.window < 0 || config.timeline < 1) {
    return Status::InvalidArgument("invalid synth configuration");
  }
  std::mt19937_64 rng(config.seed);
  std::ostringstream out;
  SynthBenchmark bench;
  // Dilations can push results past the timeline; leave slack.
  bench.horizon =
      config.timeline + static_cast<int64_t>(config.window) *
                            (static_cast<int64_t>(config.depth) + 2);

  switch (config.pattern) {
    case SynthPattern::kLinearChain: {
      out << "r1(X) :- base(X) .\n";
      for (int i = 1; i < config.depth; ++i) {
        out << "r" << (i + 1) << "(X) :- diamondminus[0," << config.window
            << "] r" << i << "(X) .\n";
      }
      EmitFacts(config, "base", 1, config.num_facts, &rng, &out);
      bench.output_predicate = "r" + std::to_string(config.depth);
      break;
    }
    case SynthPattern::kStarJoin: {
      out << "hit(X) :- ";
      for (int i = 0; i < config.depth; ++i) {
        if (i > 0) out << ", ";
        out << "diamondminus[0," << config.window * (i + 1) << "] q" << i
            << "(X)";
      }
      out << " .\n";
      // Correlated facts: each constant gets bursts where all join legs
      // fire within the operators' reach, so the join is non-trivially
      // selective instead of empty.
      std::uniform_int_distribution<int> constant(0,
                                                  config.num_constants - 1);
      std::uniform_int_distribution<int64_t> time(0, config.timeline);
      std::uniform_int_distribution<int64_t> jitter(0, config.window);
      int bursts = config.num_facts / config.depth + 1;
      for (int b = 0; b < bursts; ++b) {
        int n = constant(rng);
        int64_t base_t = time(rng);
        for (int i = 0; i < config.depth; ++i) {
          // Every other burst drops one leg, keeping selectivity < 1.
          if (b % 2 == 1 && i == b % config.depth) continue;
          int64_t lo = base_t + jitter(rng);
          out << "q" << i << "(n" << n << ")@[" << lo << ","
              << lo + jitter(rng) << "] .\n";
        }
      }
      bench.output_predicate = "hit";
      break;
    }
    case SynthPattern::kTransitiveClosure: {
      out << "reach(X, Y) :- edge(X, Y) .\n"
          << "reach(X, Z) :- reach(X, Y), diamondminus[0," << config.window
          << "] edge(Y, Z) .\n";
      EmitFacts(config, "edge", 2, config.num_facts, &rng, &out);
      bench.output_predicate = "reach";
      break;
    }
    case SynthPattern::kWindowCascade: {
      out << "s1(X) :- base(X) .\n";
      for (int i = 1; i < config.depth; ++i) {
        out << "s" << (i + 1) << "(X) :- boxminus[0," << config.window
            << "] diamondminus[0," << config.window << "] s" << i
            << "(X) .\n";
      }
      EmitFacts(config, "base", 1, config.num_facts, &rng, &out);
      bench.output_predicate = "s" + std::to_string(config.depth);
      break;
    }
    case SynthPattern::kSelfChain: {
      out << "alive(X) :- seed(X) .\n"
          << "alive(X) :- boxminus alive(X), not kill(X) .\n";
      EmitFacts(config, "seed", 1, config.num_facts, &rng, &out);
      EmitFacts(config, "kill", 1, config.num_facts / 4 + 1, &rng, &out);
      bench.output_predicate = "alive";
      break;
    }
  }
  bench.text = out.str();
  return bench;
}

}  // namespace dmtl
