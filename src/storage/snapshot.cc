#include "src/storage/snapshot.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/parser/parser.h"
#include "src/storage/serialize.h"

namespace dmtl {

namespace {

constexpr char kMagic[] = "DMTL-SNAPSHOT";
constexpr int kVersion = 1;

// One fact statement in SerializeDatabase form -> Fact. A snapshot line
// carries exactly one statement; more (or none) is a corrupt snapshot.
Result<Fact> ParseFactLine(const std::string& line) {
  DMTL_ASSIGN_OR_RETURN(Database db, Parser::ParseDatabase(line));
  if (db.NumIntervals() != 1) {
    return Status::ParseError("snapshot fact line must hold one statement: " +
                              line);
  }
  for (const auto& [pred, rel] : db.relations()) {
    for (const auto& [tuple, set] : rel.data()) {
      for (const Interval& iv : set) {
        return Fact{pred, tuple, iv};
      }
    }
  }
  return Status::ParseError("empty fact line in snapshot: " + line);
}

// Sequential line reader with the fixed-format helpers the decoder needs;
// every helper reports the offending line on mismatch.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  Result<std::string> Next(const char* what) {
    std::string line;
    if (!std::getline(in_, line)) {
      return Status::ParseError(std::string("snapshot truncated: expected ") +
                                what);
    }
    return line;
  }

  // "key rest-of-line" -> rest-of-line.
  Result<std::string> Keyed(const std::string& key) {
    DMTL_ASSIGN_OR_RETURN(std::string line, Next(key.c_str()));
    if (line.compare(0, key.size() + 1, key + " ") != 0) {
      return Status::ParseError("snapshot: expected '" + key +
                                " ...', got: " + line);
    }
    return line.substr(key.size() + 1);
  }

  Result<Rational> KeyedRational(const std::string& key) {
    DMTL_ASSIGN_OR_RETURN(std::string value, Keyed(key));
    return Rational::FromString(value);
  }

  Result<bool> KeyedBool(const std::string& key) {
    DMTL_ASSIGN_OR_RETURN(std::string value, Keyed(key));
    if (value == "0") return false;
    if (value == "1") return true;
    return Status::ParseError("snapshot: " + key + " must be 0 or 1, got: " +
                              value);
  }

  Result<size_t> KeyedCount(const std::string& key) {
    DMTL_ASSIGN_OR_RETURN(std::string value, Keyed(key));
    char* end = nullptr;
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      return Status::ParseError("snapshot: bad " + key + " count: " + value);
    }
    return static_cast<size_t>(n);
  }

 private:
  std::istringstream in_;
};

}  // namespace

uint64_t ProgramFingerprint(const Program& program) {
  const std::string text = program.ToString();
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

std::string EncodeSnapshot(const SessionSnapshot& snapshot) {
  std::ostringstream out;
  out << kMagic << " v" << snapshot.version << "\n";
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(snapshot.program_fingerprint));
  out << "program " << fp << "\n";
  out << "watermark " << snapshot.watermark.ToString() << "\n";
  out << "window_min " << snapshot.window_min.ToString() << "\n";
  out << "horizon "
      << (snapshot.horizon.has_value() ? snapshot.horizon->ToString()
                                       : std::string("none"))
      << "\n";
  out << "advanced " << (snapshot.advanced ? 1 : 0) << "\n";
  out << "provenance " << (snapshot.track_provenance ? 1 : 0) << "\n";
  // Each open channel renders as a point fact at its logged-through time:
  // the statement carries the predicate, the held value, and logged_hi.
  out << "channels " << snapshot.channels.size() << "\n";
  for (const SessionSnapshot::Channel& ch : snapshot.channels) {
    out << SerializeFactLine(ch.predicate, ch.args,
                             Interval::Point(ch.logged_hi))
        << "\n";
  }
  out << "log " << snapshot.input_log.size() << "\n";
  for (const Fact& f : snapshot.input_log) {
    out << SerializeFactLine(f.predicate, f.args, f.interval) << "\n";
  }
  size_t db_lines = 0;
  for (char c : snapshot.database_text) {
    if (c == '\n') ++db_lines;
  }
  out << "db " << db_lines << "\n" << snapshot.database_text;
  out << "prov " << snapshot.provenance.size() << "\n";
  for (const DerivationRecord& rec : snapshot.provenance) {
    out << rec.rule_index << " " << rec.round << " "
        << SerializeFactLine(rec.predicate, rec.tuple, rec.piece) << "\n";
  }
  return out.str();
}

Result<SessionSnapshot> DecodeSnapshot(const std::string& text) {
  LineReader reader(text);
  DMTL_ASSIGN_OR_RETURN(std::string header, reader.Next("header"));
  std::istringstream head(header);
  std::string magic, version_tag;
  head >> magic >> version_tag;
  if (magic != kMagic) {
    return Status::ParseError("not a DMTL snapshot (bad magic): " + header);
  }
  if (version_tag.size() < 2 || version_tag[0] != 'v') {
    return Status::ParseError("snapshot: bad version tag: " + header);
  }
  const int version = std::atoi(version_tag.c_str() + 1);
  if (version != kVersion) {
    return Status::InvalidArgument(
        "snapshot version " + version_tag.substr(1) +
        " is not supported by this build (expected v1)");
  }

  SessionSnapshot snap;
  snap.version = version;
  DMTL_ASSIGN_OR_RETURN(std::string fp_hex, reader.Keyed("program"));
  char* end = nullptr;
  snap.program_fingerprint = std::strtoull(fp_hex.c_str(), &end, 16);
  if (end == fp_hex.c_str() || *end != '\0') {
    return Status::ParseError("snapshot: bad program fingerprint: " + fp_hex);
  }
  DMTL_ASSIGN_OR_RETURN(snap.watermark, reader.KeyedRational("watermark"));
  DMTL_ASSIGN_OR_RETURN(snap.window_min, reader.KeyedRational("window_min"));
  DMTL_ASSIGN_OR_RETURN(std::string horizon, reader.Keyed("horizon"));
  if (horizon != "none") {
    DMTL_ASSIGN_OR_RETURN(Rational h, Rational::FromString(horizon));
    snap.horizon = h;
  }
  DMTL_ASSIGN_OR_RETURN(snap.advanced, reader.KeyedBool("advanced"));
  DMTL_ASSIGN_OR_RETURN(snap.track_provenance,
                        reader.KeyedBool("provenance"));

  DMTL_ASSIGN_OR_RETURN(size_t num_channels, reader.KeyedCount("channels"));
  snap.channels.reserve(num_channels);
  for (size_t i = 0; i < num_channels; ++i) {
    DMTL_ASSIGN_OR_RETURN(std::string line, reader.Next("channel line"));
    DMTL_ASSIGN_OR_RETURN(Fact fact, ParseFactLine(line));
    if (fact.interval.lo().infinite || fact.interval.hi().infinite ||
        fact.interval.lo().value != fact.interval.hi().value) {
      return Status::ParseError("snapshot: channel line must be a point: " +
                                line);
    }
    snap.channels.push_back(SessionSnapshot::Channel{
        fact.predicate, std::move(fact.args), fact.interval.lo().value});
  }

  DMTL_ASSIGN_OR_RETURN(size_t num_log, reader.KeyedCount("log"));
  snap.input_log.reserve(num_log);
  for (size_t i = 0; i < num_log; ++i) {
    DMTL_ASSIGN_OR_RETURN(std::string line, reader.Next("log line"));
    DMTL_ASSIGN_OR_RETURN(Fact fact, ParseFactLine(line));
    snap.input_log.push_back(std::move(fact));
  }

  DMTL_ASSIGN_OR_RETURN(size_t num_db, reader.KeyedCount("db"));
  std::string db_text;
  for (size_t i = 0; i < num_db; ++i) {
    DMTL_ASSIGN_OR_RETURN(std::string line, reader.Next("db line"));
    db_text += line;
    db_text += '\n';
  }
  // Validate the text parses now so a corrupt snapshot fails at decode, not
  // mid-restore.
  DMTL_RETURN_IF_ERROR(Parser::ParseDatabase(db_text).status());
  snap.database_text = std::move(db_text);

  DMTL_ASSIGN_OR_RETURN(size_t num_prov, reader.KeyedCount("prov"));
  snap.provenance.reserve(num_prov);
  for (size_t i = 0; i < num_prov; ++i) {
    DMTL_ASSIGN_OR_RETURN(std::string line, reader.Next("prov line"));
    std::istringstream rec_in(line);
    size_t rule_index = 0, round = 0;
    if (!(rec_in >> rule_index >> round)) {
      return Status::ParseError("snapshot: bad provenance record: " + line);
    }
    std::string fact_text;
    std::getline(rec_in, fact_text);
    if (!fact_text.empty() && fact_text.front() == ' ') {
      fact_text.erase(fact_text.begin());
    }
    DMTL_ASSIGN_OR_RETURN(Fact fact, ParseFactLine(fact_text));
    DerivationRecord rec;
    rec.predicate = fact.predicate;
    rec.tuple = std::move(fact.args);
    rec.piece = fact.interval;
    rec.rule_index = rule_index;
    rec.round = round;
    snap.provenance.push_back(std::move(rec));
  }
  return snap;
}

Status WriteSnapshotFile(const SessionSnapshot& snapshot,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  file << EncodeSnapshot(snapshot);
  if (!file.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<SessionSnapshot> ReadSnapshotFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::InvalidArgument("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return DecodeSnapshot(buffer.str());
}

}  // namespace dmtl
