#include "src/storage/serialize.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dmtl {

namespace {

bool IsPlainIdentifier(const std::string& s) {
  if (s.empty() || !std::islower(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

std::string RenderValue(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kSymbol: {
      const std::string& name = v.AsSymbolName();
      if (IsPlainIdentifier(name)) return name;
      return "\"" + name + "\"";
    }
    case Value::Kind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      std::string s(buf);
      // Keep the literal lexing as a double on re-parse.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    default:
      return v.ToString();
  }
}

std::string RenderBound(const Bound& b, bool lower) {
  if (b.infinite) return lower ? "-inf" : "inf";
  return b.value.ToString();
}

}  // namespace

std::string SerializeFactLine(PredicateId pred, const Tuple& args,
                              const Interval& iv) {
  std::string line = std::string(PredicateName(pred)) + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) line += ", ";
    line += RenderValue(args[i]);
  }
  line += ")@";
  line += iv.lo().open ? '(' : '[';
  line += RenderBound(iv.lo(), /*lower=*/true);
  line += ", ";
  line += RenderBound(iv.hi(), /*lower=*/false);
  line += iv.hi().open ? ')' : ']';
  line += " .";
  return line;
}

std::string SerializeDatabase(const Database& db) {
  std::vector<std::string> lines;
  for (const auto& [pred, rel] : db.relations()) {
    for (const auto& [tuple, set] : rel.data()) {
      for (const Interval& iv : set) {
        lines.push_back(SerializeFactLine(pred, tuple, iv));
      }
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

Status WriteDatabaseFile(const Database& db, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  file << SerializeDatabase(db);
  if (!file.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<Database> ReadDatabaseFile(const std::string& path) {
  DMTL_ASSIGN_OR_RETURN(Parser::ParsedUnit unit, ReadSourceFile(path));
  if (unit.program.size() > 0) {
    return Status::ParseError("expected facts only in " + path);
  }
  return std::move(unit.database);
}

Result<Parser::ParsedUnit> ReadSourceFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::InvalidArgument("cannot open: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  auto parsed = Parser::Parse(buffer.str());
  if (!parsed.ok()) {
    return Status::ParseError(path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace dmtl
