#ifndef DMTL_STORAGE_DATABASE_H_
#define DMTL_STORAGE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/atom.h"
#include "src/ast/value.h"
#include "src/common/status.h"
#include "src/temporal/interval_set.h"

namespace dmtl {

// A temporal fact P(a)@rho: a ground tuple holding over an interval.
struct Fact {
  PredicateId predicate = 0;
  Tuple args;
  Interval interval = Interval::Point(Rational(0));

  static Fact Make(std::string_view pred, Tuple args, Interval iv);

  std::string ToString() const;
};

// The extent of one predicate: ground tuple -> coalesced interval set.
//
// Thread-safety / invalidation contract: Relation is single-writer. Every
// const member (Find, FindByFirstArg, Contains, data(), the counters) is a
// pure read, so any number of concurrent readers are safe as long as no
// thread is inside a mutating member (Insert, InsertSet, Clear, assignment).
// The parallel engine relies on exactly this: rule-evaluation tasks read
// relations concurrently between round barriers, and all insertion happens
// on one thread at the barrier. The single exception to "const is a pure
// read" is GetIndex, which may build a bound-signature index lazily; it is
// serialized by a dedicated mutex and therefore safe to call from any number
// of concurrent reader threads.
//
// The first-argument secondary index is maintained *eagerly* inside Insert
// (a new tuple appends one entry; new intervals on existing tuples leave it
// untouched), never rebuilt on the read path. Its Tuple pointers stay valid
// across further inserts because unordered_map keys are node-stable; they
// are invalidated only by Clear and by assignment, like any other pointer
// into the relation.
class Relation {
 public:
  using Map = std::unordered_map<Tuple, IntervalSet, TupleHash>;

  // --- on-demand bound-signature indexes ---------------------------------
  // A signature is a bitmask over argument positions (bit i set = position i
  // is bound at probe time). The index maps the projection of a tuple onto
  // those positions to the posting list of matching tuples. Each posting
  // list carries the convex hull of every stored interval of its tuples
  // ("temporal envelope"): enumeration can skip the entire list, or single
  // entries via IntervalSet::Hull, when the probe's time window cannot
  // intersect it.
  struct IndexEntry {
    const Tuple* tuple = nullptr;
    const IntervalSet* extent = nullptr;  // the live set stored in data_
    // Hull of the entry's stored extent, maintained on insert (never
    // narrower than the live hull, so pruning on it is sound). Stored
    // inline so an enumeration can reject an entry from the contiguous
    // posting array alone, without dereferencing the extent.
    Interval hull = Interval::All();
  };
  struct PostingList {
    std::vector<IndexEntry> entries;
    // Hull of every interval of every entry; never shrinks. Engaged as soon
    // as the list has an entry (stored sets are non-empty).
    std::optional<Interval> envelope;

    void Widen(const Interval& iv) {
      envelope = envelope.has_value() ? envelope->Hull(iv) : iv;
    }
  };
  struct BoundIndex {
    std::vector<size_t> positions;  // ascending; decoded from the signature
    std::unordered_map<Tuple, PostingList, TupleHash> buckets;
    // Tuple -> its entry, so later inserts on an existing tuple can widen
    // that entry's hull in place. PostingList addresses are node-stable in
    // buckets; entry indexes are stable because entries only append.
    std::unordered_map<const Tuple*, std::pair<PostingList*, size_t>>
        entry_of;

    const PostingList* Lookup(const Tuple& key) const {
      auto it = buckets.find(key);
      return it == buckets.end() ? nullptr : &it->second;
    }
  };

  // One row of the contiguous scan slab (see Rows()).
  struct ScanEntry {
    const Tuple* tuple = nullptr;
    const IntervalSet* extent = nullptr;
  };

  Relation() = default;
  // The secondary indexes point into data_, so copies drop them (rebuilt
  // lazily on the next probe); moves keep them (unordered_map nodes are
  // address-stable across container moves).
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  // Adds (tuple, iv); returns the newly covered portion (empty when the
  // fact was already entailed by stored intervals).
  IntervalSet Insert(const Tuple& tuple, const Interval& iv);
  // Bulk form: merges the whole set in one coalescing sweep
  // (IntervalSet::UnionWithDelta) instead of one Insert per component, and
  // returns the newly covered portion.
  IntervalSet InsertSet(const Tuple& tuple, const IntervalSet& set);

  const IntervalSet* Find(const Tuple& tuple) const;
  bool Contains(const Tuple& tuple, const Rational& t) const;

  // Tuples whose first argument equals `v`, via the eagerly-maintained
  // secondary index (see the class comment for the invalidation contract).
  // Joins that arrive with the leading argument bound - the dominant
  // pattern in the contract, where almost every predicate is keyed by
  // account - probe this instead of scanning the whole relation. A pure
  // read: safe to call from concurrent reader threads. Returns nullptr
  // when no tuple matches.
  const std::vector<const Tuple*>* FindByFirstArg(const Value& v) const;

  // Returns the index for `signature` (a non-zero bitmask of argument
  // positions, all < 64), building it on first request. Thread-safe against
  // concurrent readers (serialized internally); maintained incrementally by
  // Insert under the single-writer contract. Tuples too short to cover the
  // signature's highest position are omitted - they can never unify with an
  // atom that has a term at that position. Sets `built_now` (if non-null) to
  // whether this call constructed the index. Returns nullptr for signature
  // 0 (probe with no bound positions - just scan).
  const BoundIndex* GetIndex(uint64_t signature,
                             bool* built_now = nullptr) const;

  // Number of bound-signature indexes currently materialized (for tests and
  // stats).
  size_t num_indexes() const;

  // Removes `fresh`'s coverage from this relation: the engine's rollback
  // primitive. `fresh` must hold coverage previously reported as *newly
  // inserted* by Insert/InsertSet (so it is a subset of what is stored);
  // subtracting it restores exactly the pre-insertion state. Tuples whose
  // extent becomes empty are erased. Bound-signature indexes are dropped
  // (their envelopes and pointers may be stale) and the first-argument
  // index is rebuilt when tuples vanished; pointers previously obtained
  // from either are invalidated. Single-writer, like all mutators.
  void SubtractCoverage(const Relation& fresh);
  // Single-tuple form with the same contract.
  void SubtractCoverage(const Tuple& tuple, const IntervalSet& set);

  // General removal (no fresh-subset requirement, unlike SubtractCoverage):
  // subtracts `set` from the stored extent of `tuple` - `set` may cover
  // times the tuple never held. Returns the portion actually removed
  // (stored extent ∩ set). Same invalidation contract as SubtractCoverage.
  IntervalSet RemoveSet(const Tuple& tuple, const IntervalSet& set);

  // Bulk sliding-window form: subtracts `region` from every stored extent.
  // When `shrunk` is non-null, the address of each live extent about to
  // lose coverage is appended *before* mutation - callers use the pointers
  // as identity keys for cache invalidation (operator memos key entries by
  // leaf IntervalSet address). Addresses of extents that end up erased are
  // included and must not be dereferenced afterwards. Returns the number
  // of interval pieces removed. Single-writer, like all mutators.
  size_t RemoveRegion(const IntervalSet& region,
                      std::vector<const IntervalSet*>* shrunk = nullptr);

  // Contiguous scan slab: one (tuple, extent) row per stored tuple, in
  // insertion order. Full scans walk this flat array instead of chasing
  // unordered_map nodes, so enumeration is cache-linear. Maintained
  // eagerly by the mutators under the single-writer contract (exactly
  // like the first-argument index); pointers into data_ are node-stable,
  // so rows survive later inserts and are rebuilt only when tuples vanish
  // (SubtractCoverage) or on copy/Clear.
  const std::vector<ScanEntry>& Rows() const { return rows_; }

  bool IsEmpty() const { return data_.empty(); }
  size_t NumTuples() const { return data_.size(); }
  // Exact stored piece count, maintained incrementally by every mutator -
  // O(1), so per-event streaming stats never pay a full-store scan.
  size_t NumIntervals() const { return stored_intervals_; }

  // Monotone count of inserted interval pieces (an upper bound on the
  // stored count, which coalescing can shrink). O(1); used for join-order
  // costing and budget checks.
  size_t approx_intervals() const { return approx_intervals_; }

  const Map& data() const { return data_; }

  void Clear() {
    data_.clear();
    first_arg_index_.clear();
    rows_.clear();
    indexes_.clear();
    approx_intervals_ = 0;
    stored_intervals_ = 0;
  }

 private:
  // Adds the tuple (already in data_) to one bound-signature index and
  // widens the affected envelope by `iv`.
  static void IndexTuple(BoundIndex* index, const Tuple& tuple,
                         const IntervalSet& extent, bool new_tuple,
                         const Interval& iv);

  // Rebuilds first_arg_index_ and rows_ from data_ (copies, erasures).
  void RebuildDerived();

  Map data_;
  size_t approx_intervals_ = 0;
  size_t stored_intervals_ = 0;  // exact; see NumIntervals()
  // Contiguous scan slab; see Rows().
  std::vector<ScanEntry> rows_;
  // Secondary index: first argument -> tuples. Updated eagerly by Insert
  // when a new *tuple* appears (new intervals on existing tuples do not
  // touch it); never mutated under const.
  std::unordered_map<Value, std::vector<const Tuple*>> first_arg_index_;
  // Lazily built bound-signature indexes, keyed by signature bitmask.
  // Guarded by index_mutex_: GetIndex may build under const from concurrent
  // reader threads. unique_ptr values keep BoundIndex addresses stable
  // across map growth, so a returned pointer stays valid for the relation's
  // lifetime (until Clear/assignment, like all other pointers into it).
  mutable std::mutex index_mutex_;
  mutable std::unordered_map<uint64_t, std::unique_ptr<BoundIndex>> indexes_;
};

// The temporal database D: all facts, grouped by predicate. Serves as both
// the input database and the materialization target (the chase only ever
// inserts - DatalogMTL state evolution is monotone, as the paper stresses).
//
// Inherits Relation's single-writer contract: concurrent readers are safe
// whenever no thread is mutating. The engine's parallel rounds evaluate
// rules against a frozen Database snapshot and funnel every insert through
// the single-threaded barrier merge.
class Database {
 public:
  Database() = default;

  // Returns the newly covered portion of the fact's interval.
  IntervalSet Insert(const Fact& fact);
  IntervalSet Insert(PredicateId pred, const Tuple& tuple,
                     const Interval& iv);
  // Bulk form; returns the newly covered portion (see Relation::InsertSet).
  IntervalSet InsertSet(PredicateId pred, const Tuple& tuple,
                        const IntervalSet& set);

  // Convenience for tests/examples: Insert("price", {Value::Double(47)},
  // Interval::Point(5)).
  IntervalSet Insert(std::string_view pred, Tuple tuple, const Interval& iv);

  const Relation* Find(PredicateId pred) const;
  const Relation* Find(std::string_view pred) const;

  // True iff P(tuple) holds at time t.
  bool Holds(std::string_view pred, const Tuple& tuple,
             const Rational& t) const;

  // All facts of a predicate as (tuple, interval) pairs, one per stored
  // interval, in unspecified tuple order.
  std::vector<Fact> FactsOf(std::string_view pred) const;

  size_t NumPredicates() const { return relations_.size(); }
  size_t NumTuples() const;
  size_t NumIntervals() const;
  // O(1) upper bound on NumIntervals(); see Relation::approx_intervals().
  size_t approx_intervals() const { return approx_intervals_; }

  void MergeFrom(const Database& other);

  // Rollback primitive: removes exactly `fresh`'s coverage, where `fresh`
  // accumulates portions previously reported as newly inserted (the
  // engine's per-round delta). Restores the database to its state from
  // before those insertions - see Relation::SubtractCoverage for the index
  // invalidation contract.
  void SubtractCoverage(const Database& fresh);
  // Single-fact form (used to undo one paired insertion on a fault path).
  void SubtractCoverage(PredicateId pred, const Tuple& tuple,
                        const IntervalSet& set);

  // General removal of one fact's coverage; see Relation::RemoveSet.
  IntervalSet RemoveSet(PredicateId pred, const Tuple& tuple,
                        const IntervalSet& set);

  // Removes `region` from every extent of `pred` (sliding-window expiry /
  // retraction frontier wipe); see Relation::RemoveRegion for the `shrunk`
  // pointer-collection contract. Returns interval pieces removed.
  size_t RemoveRegion(PredicateId pred, const IntervalSet& region,
                      std::vector<const IntervalSet*>* shrunk = nullptr);

  void Clear() {
    relations_.clear();
    approx_intervals_ = 0;
  }

  const std::unordered_map<PredicateId, Relation>& relations() const {
    return relations_;
  }

  std::string ToString() const;

 private:
  std::unordered_map<PredicateId, Relation> relations_;
  size_t approx_intervals_ = 0;
};

}  // namespace dmtl

#endif  // DMTL_STORAGE_DATABASE_H_
