#ifndef DMTL_STORAGE_SERIALIZE_H_
#define DMTL_STORAGE_SERIALIZE_H_

#include <string>

#include "src/common/status.h"
#include "src/parser/parser.h"
#include "src/storage/database.h"

namespace dmtl {

// Renders a database as parseable fact statements, one per stored interval,
// deterministically ordered:
//
//   price(1301.5)@[1664272800, 1664272860) .
//   tranM(acc1, 20.0)@[1664272805, 1664272805] .
//
// Doubles round-trip exactly (%.17g); symbols that are not plain
// identifiers are quoted. Parser::ParseDatabase(SerializeDatabase(db))
// reproduces `db`.
std::string SerializeDatabase(const Database& db);

// Renders one fact as the same parseable statement SerializeDatabase
// emits ("price(1301.5)@[1664272800, 1664272860) ."), without a trailing
// newline. The snapshot codec (src/storage/snapshot.h) reuses this so
// logged inputs and provenance pieces share the database text format.
std::string SerializeFactLine(PredicateId pred, const Tuple& args,
                              const Interval& iv);

// File convenience wrappers.
Status WriteDatabaseFile(const Database& db, const std::string& path);
Result<Database> ReadDatabaseFile(const std::string& path);

// Reads a combined rules+facts source file.
Result<Parser::ParsedUnit> ReadSourceFile(const std::string& path);

}  // namespace dmtl

#endif  // DMTL_STORAGE_SERIALIZE_H_
