#include "src/storage/database.h"

#include <algorithm>

namespace dmtl {

Fact Fact::Make(std::string_view pred, Tuple args, Interval iv) {
  Fact f;
  f.predicate = InternPredicate(pred);
  f.args = std::move(args);
  f.interval = iv;
  return f;
}

std::string Fact::ToString() const {
  return PredicateName(predicate) + TupleToString(args) + "@" +
         interval.ToString();
}

Relation::Relation(const Relation& other)
    : data_(other.data_), approx_intervals_(other.approx_intervals_) {
  for (const auto& [tuple, set] : data_) {
    if (!tuple.empty()) first_arg_index_[tuple[0]].push_back(&tuple);
  }
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  data_ = other.data_;
  approx_intervals_ = other.approx_intervals_;
  first_arg_index_.clear();
  for (const auto& [tuple, set] : data_) {
    if (!tuple.empty()) first_arg_index_[tuple[0]].push_back(&tuple);
  }
  return *this;
}

IntervalSet Relation::Insert(const Tuple& tuple, const Interval& iv) {
  auto [it, inserted] = data_.try_emplace(tuple);
  if (inserted && !it->first.empty()) {
    // Keep the secondary index incremental: unordered_map keys are
    // node-stable, so the pointer stays valid across later inserts.
    first_arg_index_[it->first[0]].push_back(&it->first);
  }
  IntervalSet fresh = it->second.Insert(iv);
  approx_intervals_ += fresh.size();
  return fresh;
}

void Relation::InsertSet(const Tuple& tuple, const IntervalSet& set) {
  for (const Interval& iv : set) {
    Insert(tuple, iv);  // keeps the secondary index in sync
  }
}

const IntervalSet* Relation::Find(const Tuple& tuple) const {
  auto it = data_.find(tuple);
  return it == data_.end() ? nullptr : &it->second;
}

const std::vector<const Tuple*>* Relation::FindByFirstArg(
    const Value& v) const {
  auto it = first_arg_index_.find(v);
  return it == first_arg_index_.end() ? nullptr : &it->second;
}

bool Relation::Contains(const Tuple& tuple, const Rational& t) const {
  const IntervalSet* set = Find(tuple);
  return set != nullptr && set->Contains(t);
}

size_t Relation::NumIntervals() const {
  size_t n = 0;
  for (const auto& [tuple, set] : data_) n += set.size();
  return n;
}

IntervalSet Database::Insert(const Fact& fact) {
  return Insert(fact.predicate, fact.args, fact.interval);
}

IntervalSet Database::Insert(PredicateId pred, const Tuple& tuple,
                             const Interval& iv) {
  IntervalSet fresh = relations_[pred].Insert(tuple, iv);
  approx_intervals_ += fresh.size();
  return fresh;
}

void Database::InsertSet(PredicateId pred, const Tuple& tuple,
                         const IntervalSet& set) {
  Relation& rel = relations_[pred];
  size_t before = rel.approx_intervals();
  rel.InsertSet(tuple, set);
  approx_intervals_ += rel.approx_intervals() - before;
}

IntervalSet Database::Insert(std::string_view pred, Tuple tuple,
                             const Interval& iv) {
  return Insert(InternPredicate(pred), tuple, iv);
}

const Relation* Database::Find(PredicateId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

const Relation* Database::Find(std::string_view pred) const {
  return Find(InternPredicate(pred));
}

bool Database::Holds(std::string_view pred, const Tuple& tuple,
                     const Rational& t) const {
  const Relation* rel = Find(pred);
  return rel != nullptr && rel->Contains(tuple, t);
}

std::vector<Fact> Database::FactsOf(std::string_view pred) const {
  std::vector<Fact> out;
  const Relation* rel = Find(pred);
  if (rel == nullptr) return out;
  PredicateId id = InternPredicate(pred);
  for (const auto& [tuple, set] : rel->data()) {
    for (const Interval& iv : set) {
      Fact f;
      f.predicate = id;
      f.args = tuple;
      f.interval = iv;
      out.push_back(std::move(f));
    }
  }
  return out;
}

size_t Database::NumTuples() const {
  size_t n = 0;
  for (const auto& [pred, rel] : relations_) n += rel.NumTuples();
  return n;
}

size_t Database::NumIntervals() const {
  size_t n = 0;
  for (const auto& [pred, rel] : relations_) n += rel.NumIntervals();
  return n;
}

void Database::MergeFrom(const Database& other) {
  for (const auto& [pred, rel] : other.relations_) {
    for (const auto& [tuple, set] : rel.data()) {
      InsertSet(pred, tuple, set);
    }
  }
}

std::string Database::ToString() const {
  // Deterministic output: sort by predicate name, then tuple text.
  std::vector<std::string> lines;
  for (const auto& [pred, rel] : relations_) {
    for (const auto& [tuple, set] : rel.data()) {
      lines.push_back(PredicateName(pred) + TupleToString(tuple) + "@" +
                      set.ToString());
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace dmtl
