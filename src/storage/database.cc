#include "src/storage/database.h"

#include <algorithm>
#include <bit>

#include "src/common/fault_injector.h"

namespace dmtl {

Fact Fact::Make(std::string_view pred, Tuple args, Interval iv) {
  Fact f;
  f.predicate = InternPredicate(pred);
  f.args = std::move(args);
  f.interval = iv;
  return f;
}

std::string Fact::ToString() const {
  return PredicateName(predicate) + TupleToString(args) + "@" +
         interval.ToString();
}

void Relation::RebuildDerived() {
  first_arg_index_.clear();
  rows_.clear();
  rows_.reserve(data_.size());
  for (const auto& [tuple, set] : data_) {
    if (!tuple.empty()) first_arg_index_[tuple[0]].push_back(&tuple);
    rows_.push_back(ScanEntry{&tuple, &set});
  }
}

Relation::Relation(const Relation& other)
    : data_(other.data_),
      approx_intervals_(other.approx_intervals_),
      stored_intervals_(other.stored_intervals_) {
  RebuildDerived();
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  data_ = other.data_;
  approx_intervals_ = other.approx_intervals_;
  stored_intervals_ = other.stored_intervals_;
  RebuildDerived();
  // Bound-signature indexes point into the *source's* data_; drop them and
  // let the next probe rebuild against our own storage.
  indexes_.clear();
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : data_(std::move(other.data_)),
      approx_intervals_(other.approx_intervals_),
      stored_intervals_(other.stored_intervals_),
      rows_(std::move(other.rows_)),
      first_arg_index_(std::move(other.first_arg_index_)),
      indexes_(std::move(other.indexes_)) {
  other.approx_intervals_ = 0;
  other.stored_intervals_ = 0;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  data_ = std::move(other.data_);
  approx_intervals_ = other.approx_intervals_;
  stored_intervals_ = other.stored_intervals_;
  rows_ = std::move(other.rows_);
  first_arg_index_ = std::move(other.first_arg_index_);
  indexes_ = std::move(other.indexes_);
  other.approx_intervals_ = 0;
  other.stored_intervals_ = 0;
  return *this;
}

void Relation::IndexTuple(BoundIndex* index, const Tuple& tuple,
                          const IntervalSet& extent, bool new_tuple,
                          const Interval& iv) {
  if (tuple.size() <= index->positions.back()) return;  // can never unify
  if (new_tuple) {
    Tuple key;
    key.reserve(index->positions.size());
    for (size_t p : index->positions) key.push_back(tuple[p]);
    PostingList& list = index->buckets[std::move(key)];
    list.entries.push_back(IndexEntry{&tuple, &extent, extent.Hull()});
    index->entry_of.emplace(&tuple,
                            std::make_pair(&list, list.entries.size() - 1));
    list.Widen(iv);
    return;
  }
  // Existing tuple gained coverage: widen its entry hull in place via the
  // sidecar (exactness is not required - never-narrower-than-live is what
  // keeps hull pruning sound - but the envelope and entry both widen by
  // the same interval the set grew by).
  auto it = index->entry_of.find(&tuple);
  if (it == index->entry_of.end()) return;  // tuple too short at insert time
  auto [list, pos] = it->second;
  IndexEntry& entry = list->entries[pos];
  entry.hull = entry.hull.Hull(iv);
  list->Widen(iv);
}

const Relation::BoundIndex* Relation::GetIndex(uint64_t signature,
                                               bool* built_now) const {
  if (built_now != nullptr) *built_now = false;
  if (signature == 0) return nullptr;
  std::lock_guard<std::mutex> lock(index_mutex_);
  auto it = indexes_.find(signature);
  if (it != indexes_.end()) return it->second.get();
  auto index = std::make_unique<BoundIndex>();
  for (uint64_t bits = signature; bits != 0; bits &= bits - 1) {
    index->positions.push_back(static_cast<size_t>(std::countr_zero(bits)));
  }
  for (const auto& [tuple, set] : data_) {
    // Stored sets are never empty, so the whole hull widens the envelope.
    if (!set.IsEmpty()) IndexTuple(index.get(), tuple, set, true, set.Hull());
  }
  const BoundIndex* ptr = index.get();
  indexes_.emplace(signature, std::move(index));
  if (built_now != nullptr) *built_now = true;
  return ptr;
}

size_t Relation::num_indexes() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  return indexes_.size();
}

IntervalSet Relation::Insert(const Tuple& tuple, const Interval& iv) {
  auto [it, inserted] = data_.try_emplace(tuple);
  // Stored extents outlive the fixpoint round; never arena-back them.
  // Unconditional: a set stored before materialization began is not pinned
  // yet, and growing it in place under an active arena scope must spill to
  // the heap, not the arena.
  it->second.MarkPersistent();
  if (inserted) {
    // Keep the derived structures incremental: unordered_map nodes are
    // address-stable, so these pointers stay valid across later inserts.
    if (!it->first.empty()) first_arg_index_[it->first[0]].push_back(&it->first);
    rows_.push_back(ScanEntry{&it->first, &it->second});
  }
  const size_t before = it->second.size();
  IntervalSet fresh = it->second.Insert(iv);
  approx_intervals_ += fresh.size();
  stored_intervals_ += it->second.size() - before;
  if (!fresh.IsEmpty() && !indexes_.empty()) {
    // Single-writer contract: no reader runs concurrently with Insert, so
    // the lock is uncontended; it keeps TSan and accidental misuse honest.
    // An already-covered insertion (fresh empty) cannot widen any envelope.
    std::lock_guard<std::mutex> lock(index_mutex_);
    for (auto& [sig, index] : indexes_) {
      IndexTuple(index.get(), it->first, it->second, inserted, iv);
    }
  }
  return fresh;
}

IntervalSet Relation::InsertSet(const Tuple& tuple, const IntervalSet& set) {
  if (set.IsEmpty()) return IntervalSet();
  auto [it, inserted] = data_.try_emplace(tuple);
  it->second.MarkPersistent();
  if (inserted) {
    if (!it->first.empty()) first_arg_index_[it->first[0]].push_back(&it->first);
    rows_.push_back(ScanEntry{&it->first, &it->second});
  }
  const size_t before = it->second.size();
  IntervalSet fresh = it->second.UnionWithDelta(set);
  approx_intervals_ += fresh.size();
  stored_intervals_ += it->second.size() - before;
  if ((inserted || !fresh.IsEmpty()) && !indexes_.empty()) {
    // Widen envelopes by the hull of what actually changed; a fully covered
    // set (fresh empty, pre-existing tuple) cannot widen anything.
    std::lock_guard<std::mutex> lock(index_mutex_);
    const Interval widen = fresh.IsEmpty() ? set.Hull() : fresh.Hull();
    for (auto& [sig, index] : indexes_) {
      IndexTuple(index.get(), it->first, it->second, inserted, widen);
    }
  }
  return fresh;
}

void Relation::SubtractCoverage(const Relation& fresh) {
  bool erased_any = false;
  for (const auto& [tuple, set] : fresh.data()) {
    auto it = data_.find(tuple);
    if (it == data_.end()) continue;
    IntervalSet remaining = it->second.Subtract(set);
    approx_intervals_ -= std::min(approx_intervals_, set.size());
    stored_intervals_ -= it->second.size();
    stored_intervals_ += remaining.size();
    if (remaining.IsEmpty()) {
      data_.erase(it);
      erased_any = true;
    } else {
      it->second = std::move(remaining);
    }
  }
  {
    // Envelopes never shrink and entries may now reference erased tuples or
    // replaced sets; drop the indexes and let the next probe rebuild.
    std::lock_guard<std::mutex> lock(index_mutex_);
    indexes_.clear();
  }
  // Surviving extents were assigned in place (addresses unchanged), so the
  // scan slab only goes stale when tuples vanished.
  if (erased_any) RebuildDerived();
}

void Relation::SubtractCoverage(const Tuple& tuple, const IntervalSet& set) {
  auto it = data_.find(tuple);
  if (it == data_.end()) return;
  IntervalSet remaining = it->second.Subtract(set);
  approx_intervals_ -= std::min(approx_intervals_, set.size());
  stored_intervals_ -= it->second.size();
  stored_intervals_ += remaining.size();
  bool erased = remaining.IsEmpty();
  if (erased) {
    data_.erase(it);
  } else {
    it->second = std::move(remaining);
  }
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    indexes_.clear();
  }
  if (erased) RebuildDerived();
}

IntervalSet Relation::RemoveSet(const Tuple& tuple, const IntervalSet& set) {
  auto it = data_.find(tuple);
  if (it == data_.end() || set.IsEmpty()) return IntervalSet();
  IntervalSet removed = it->second.Intersect(set);
  if (removed.IsEmpty()) return removed;
  removed.MarkPersistent();  // survives the round barrier in caller hands
  IntervalSet remaining = it->second.Subtract(set);
  approx_intervals_ -= std::min(approx_intervals_, removed.size());
  stored_intervals_ -= it->second.size();
  stored_intervals_ += remaining.size();
  bool erased = remaining.IsEmpty();
  if (erased) {
    data_.erase(it);
  } else {
    it->second = std::move(remaining);
  }
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    indexes_.clear();
  }
  if (erased) RebuildDerived();
  return removed;
}

size_t Relation::RemoveRegion(const IntervalSet& region,
                              std::vector<const IntervalSet*>* shrunk) {
  if (region.IsEmpty() || data_.empty()) return 0;
  size_t removed_pieces = 0;
  bool erased_any = false;
  for (auto it = data_.begin(); it != data_.end();) {
    IntervalSet removed = it->second.Intersect(region);
    if (removed.IsEmpty()) {
      ++it;
      continue;
    }
    // Record the live extent's address before mutating: memo invalidation
    // keys on the pointer, and an erased extent's address must still reach
    // the caller (as an identity, never to be dereferenced).
    if (shrunk != nullptr) shrunk->push_back(&it->second);
    removed_pieces += removed.size();
    approx_intervals_ -= std::min(approx_intervals_, removed.size());
    IntervalSet remaining = it->second.Subtract(region);
    stored_intervals_ -= it->second.size();
    stored_intervals_ += remaining.size();
    if (remaining.IsEmpty()) {
      it = data_.erase(it);
      erased_any = true;
    } else {
      it->second = std::move(remaining);
      ++it;
    }
  }
  if (removed_pieces != 0) {
    // Entries may reference erased tuples; envelopes stay sound (they only
    // over-cover after removal) but keeping them alive isn't worth special-
    // casing - drop and let the next probe rebuild, like SubtractCoverage.
    std::lock_guard<std::mutex> lock(index_mutex_);
    indexes_.clear();
  }
  if (erased_any) RebuildDerived();
  return removed_pieces;
}

const IntervalSet* Relation::Find(const Tuple& tuple) const {
  auto it = data_.find(tuple);
  return it == data_.end() ? nullptr : &it->second;
}

const std::vector<const Tuple*>* Relation::FindByFirstArg(
    const Value& v) const {
  auto it = first_arg_index_.find(v);
  return it == first_arg_index_.end() ? nullptr : &it->second;
}

bool Relation::Contains(const Tuple& tuple, const Rational& t) const {
  const IntervalSet* set = Find(tuple);
  return set != nullptr && set->Contains(t);
}

IntervalSet Database::Insert(const Fact& fact) {
  return Insert(fact.predicate, fact.args, fact.interval);
}

IntervalSet Database::Insert(PredicateId pred, const Tuple& tuple,
                             const Interval& iv) {
  IntervalSet fresh = relations_[pred].Insert(tuple, iv);
  approx_intervals_ += fresh.size();
  return fresh;
}

IntervalSet Database::InsertSet(PredicateId pred, const Tuple& tuple,
                                const IntervalSet& set) {
  // Throw-mode site: InsertSet has no Status channel, so an armed fault
  // propagates as an exception that the engine's round protection converts
  // to a clean kInternal after rolling the round back.
  FaultInjector::MaybeThrow("database.insert_set");
  IntervalSet fresh = relations_[pred].InsertSet(tuple, set);
  approx_intervals_ += fresh.size();
  return fresh;
}

IntervalSet Database::Insert(std::string_view pred, Tuple tuple,
                             const Interval& iv) {
  return Insert(InternPredicate(pred), tuple, iv);
}

const Relation* Database::Find(PredicateId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

const Relation* Database::Find(std::string_view pred) const {
  return Find(InternPredicate(pred));
}

bool Database::Holds(std::string_view pred, const Tuple& tuple,
                     const Rational& t) const {
  const Relation* rel = Find(pred);
  return rel != nullptr && rel->Contains(tuple, t);
}

std::vector<Fact> Database::FactsOf(std::string_view pred) const {
  std::vector<Fact> out;
  const Relation* rel = Find(pred);
  if (rel == nullptr) return out;
  PredicateId id = InternPredicate(pred);
  for (const auto& [tuple, set] : rel->data()) {
    for (const Interval& iv : set) {
      Fact f;
      f.predicate = id;
      f.args = tuple;
      f.interval = iv;
      out.push_back(std::move(f));
    }
  }
  return out;
}

size_t Database::NumTuples() const {
  size_t n = 0;
  for (const auto& [pred, rel] : relations_) n += rel.NumTuples();
  return n;
}

size_t Database::NumIntervals() const {
  size_t n = 0;
  for (const auto& [pred, rel] : relations_) n += rel.NumIntervals();
  return n;
}

void Database::SubtractCoverage(const Database& fresh) {
  for (const auto& [pred, rel] : fresh.relations_) {
    auto it = relations_.find(pred);
    if (it == relations_.end()) continue;
    it->second.SubtractCoverage(rel);
  }
  approx_intervals_ = 0;
  for (const auto& [pred, rel] : relations_) {
    approx_intervals_ += rel.approx_intervals();
  }
}

void Database::SubtractCoverage(PredicateId pred, const Tuple& tuple,
                                const IntervalSet& set) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return;
  it->second.SubtractCoverage(tuple, set);
  approx_intervals_ = 0;
  for (const auto& [p, rel] : relations_) {
    approx_intervals_ += rel.approx_intervals();
  }
}

IntervalSet Database::RemoveSet(PredicateId pred, const Tuple& tuple,
                                const IntervalSet& set) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return IntervalSet();
  IntervalSet removed = it->second.RemoveSet(tuple, set);
  if (!removed.IsEmpty()) {
    if (it->second.IsEmpty()) relations_.erase(it);
    approx_intervals_ = 0;
    for (const auto& [p, rel] : relations_) {
      approx_intervals_ += rel.approx_intervals();
    }
  }
  return removed;
}

size_t Database::RemoveRegion(PredicateId pred, const IntervalSet& region,
                              std::vector<const IntervalSet*>* shrunk) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return 0;
  size_t removed = it->second.RemoveRegion(region, shrunk);
  if (removed != 0) {
    if (it->second.IsEmpty()) relations_.erase(it);
    approx_intervals_ = 0;
    for (const auto& [p, rel] : relations_) {
      approx_intervals_ += rel.approx_intervals();
    }
  }
  return removed;
}

void Database::MergeFrom(const Database& other) {
  for (const auto& [pred, rel] : other.relations_) {
    for (const auto& [tuple, set] : rel.data()) {
      InsertSet(pred, tuple, set);
    }
  }
}

std::string Database::ToString() const {
  // Deterministic output: sort by predicate name, then tuple text.
  std::vector<std::string> lines;
  for (const auto& [pred, rel] : relations_) {
    for (const auto& [tuple, set] : rel.data()) {
      lines.push_back(PredicateName(pred) + TupleToString(tuple) + "@" +
                      set.ToString());
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace dmtl
