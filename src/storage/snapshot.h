#ifndef DMTL_STORAGE_SNAPSHOT_H_
#define DMTL_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/common/status.h"
#include "src/eval/seminaive.h"
#include "src/storage/database.h"

namespace dmtl {

// A versioned, text-encoded checkpoint of a live session, taken at a round
// barrier: everything needed to restart the session warm and byte-identical
// instead of cold-replaying the whole input log from the window start.
//
// Captured state:
//   - window position: watermark, window minimum, optional sliding horizon
//   - the materialized database, as SerializeDatabase text (already derived
//     consequences survive the restart)
//   - the input-log tail (clamped by past slides), so post-restore advances
//     can seed exactly the pending bands a never-interrupted session would
//   - open step channels (predicate, held value, coverage logged through)
//   - provenance records, when the session tracks them
//   - a program fingerprint, so a snapshot is never restored against a
//     different rule set (the database text would silently mismatch)
//
// The encoding reuses the fact-statement format of SerializeDatabase for
// every fact-shaped field, so snapshots stay human-readable and parseable
// with the ordinary parser.
struct SessionSnapshot {
  // An open step channel (see StreamingSession::PushStep): the held value
  // and the time through which its coverage has been logged.
  struct Channel {
    PredicateId predicate = 0;
    Tuple args;
    Rational logged_hi;
  };

  int version = 1;
  uint64_t program_fingerprint = 0;
  Rational watermark;
  Rational window_min;
  std::optional<Rational> horizon;
  // Whether the session has executed its first advance; gates the
  // "push strictly above the watermark" finality check after restore.
  bool advanced = false;
  bool track_provenance = true;
  std::vector<Channel> channels;
  std::vector<Fact> input_log;
  // SerializeDatabase text of the materialized database (sorted fact
  // statements) - the byte-identity anchor.
  std::string database_text;
  std::vector<DerivationRecord> provenance;
};

// Stable FNV-1a 64-bit fingerprint of the program's printed form. Two
// programs that print identically materialize identically, which is the
// property snapshot restore needs.
uint64_t ProgramFingerprint(const Program& program);

// Renders the snapshot in the versioned "DMTL-SNAPSHOT v1" text format.
std::string EncodeSnapshot(const SessionSnapshot& snapshot);

// Parses EncodeSnapshot output. Unknown magic or a version this build does
// not understand is an error, never a silent partial decode.
Result<SessionSnapshot> DecodeSnapshot(const std::string& text);

// File convenience wrappers.
Status WriteSnapshotFile(const SessionSnapshot& snapshot,
                         const std::string& path);
Result<SessionSnapshot> ReadSnapshotFile(const std::string& path);

}  // namespace dmtl

#endif  // DMTL_STORAGE_SNAPSHOT_H_
