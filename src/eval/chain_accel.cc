#include "src/eval/chain_accel.h"

#include <set>

#include "src/eval/operators.h"

namespace dmtl {

std::optional<ChainAccelerator::ChainInfo> ChainAccelerator::Detect(
    const Rule& rule, const std::map<PredicateId, int>& predicate_stratum) {
  if (!rule.head.ops.empty() || rule.head.aggregate.has_value()) {
    return std::nullopt;
  }
  auto head_it = predicate_stratum.find(rule.head.predicate);
  if (head_it == predicate_stratum.end()) return std::nullopt;
  int head_stratum = head_it->second;

  ChainInfo info;
  info.predicate = rule.head.predicate;
  bool found_self = false;

  // Variables of the head; guards must not introduce bound variables beyond
  // these (anonymous variables in *negated* guards stay existential).
  std::set<int> head_vars;
  for (const Term& t : rule.head.args) {
    if (t.is_variable()) head_vars.insert(t.var());
  }

  for (size_t i = 0; i < rule.body.size(); ++i) {
    const BodyLiteral& lit = rule.body[i];
    if (lit.kind == BodyLiteral::Kind::kBuiltin) return std::nullopt;
    const MetricAtom& m = lit.metric;
    if (!lit.negated && m.kind() == MetricAtom::Kind::kUnary &&
        m.left().kind() == MetricAtom::Kind::kRelational &&
        m.left().atom().predicate == rule.head.predicate &&
        m.left().atom().args == rule.head.args && m.range().IsPunctual() &&
        !m.range().lo().value.is_zero()) {
      if (found_self) return std::nullopt;  // two self atoms: not a chain
      switch (m.op()) {
        case MtlOp::kBoxMinus:
        case MtlOp::kDiamondMinus:
          info.step = m.range().lo().value;
          break;
        case MtlOp::kBoxPlus:
        case MtlOp::kDiamondPlus:
          info.step = -m.range().lo().value;
          break;
        default:
          return std::nullopt;
      }
      info.self_literal = i;
      found_self = true;
      continue;
    }
    // Guard literal: every predicate inside must be strictly below the head
    // stratum (so its extent is final when the chain runs).
    std::vector<const RelationalAtom*> atoms;
    m.CollectRelationalAtoms(&atoms);
    if (atoms.empty() && m.kind() != MetricAtom::Kind::kTruth) {
      return std::nullopt;
    }
    for (const RelationalAtom* atom : atoms) {
      auto it = predicate_stratum.find(atom->predicate);
      int s = it == predicate_stratum.end() ? 0 : it->second;
      if (s >= head_stratum) return std::nullopt;
      for (const Term& t : atom->args) {
        if (t.is_variable() && !head_vars.count(t.var())) {
          // Free variables are only tolerated existentially in negation.
          if (!lit.negated) return std::nullopt;
        }
      }
    }
    if (lit.negated) {
      info.negated_guards.push_back(i);
    } else {
      info.positive_guards.push_back(i);
    }
  }
  if (!found_self) return std::nullopt;
  return info;
}

Status ChainAccelerator::Extend(const Rule& rule, const ChainInfo& info,
                                const Database& db, const Database& delta,
                                const Interval& window, AllowedCache* cache,
                                const EmitPointFn& emit) {
  const Relation* delta_rel = delta.Find(info.predicate);
  if (delta_rel == nullptr) return Status::Ok();

  ExtentSource source;
  source.full = &db;

  for (const Relation::ScanEntry& row : delta_rel->Rows()) {
    const Tuple& tuple = *row.tuple;
    const IntervalSet& seed_set = *row.extent;
    // Bind head variables from the tuple.
    Bindings binding(rule.num_vars());
    bool ok = true;
    for (size_t i = 0; i < rule.head.args.size() && ok; ++i) {
      ok = binding.Unify(rule.head.args[i], tuple[i]);
    }
    if (!ok) continue;

    // Allowed set: guard extents minus blocker extents, clamped to the
    // walk window. Guards are fixed for the stratum, so cache per tuple.
    const IntervalSet* allowed_ptr = nullptr;
    if (cache != nullptr) {
      auto it = cache->find(tuple);
      if (it != cache->end()) allowed_ptr = &it->second;
    }
    IntervalSet computed;
    if (allowed_ptr == nullptr) {
      computed = IntervalSet{window};
      for (size_t i : info.positive_guards) {
        computed = computed.Intersect(EvalMetricExtent(
            rule.body[i].metric, binding, source, computed));
        if (computed.IsEmpty()) break;
      }
      for (size_t i : info.negated_guards) {
        if (computed.IsEmpty()) break;
        computed = computed.Subtract(EvalMetricExtent(
            rule.body[i].metric, binding, source, computed));
      }
      if (cache != nullptr) {
        IntervalSet& slot =
            cache->emplace(tuple, std::move(computed)).first->second;
        // Guard caches persist across rounds; migrate off the round arena.
        slot.MarkPersistent();
        allowed_ptr = &slot;
      } else {
        allowed_ptr = &computed;
      }
    }
    const IntervalSet& allowed = *allowed_ptr;
    if (allowed.IsEmpty()) continue;

    for (const Interval& seed : seed_set) {
      if (seed.IsPunctual()) {
        // Grid walk: march the step-c progression while it stays allowed.
        Rational t = seed.lo().value + info.step;
        while (allowed.Contains(t)) {
          DMTL_ASSIGN_OR_RETURN(bool fresh, emit(tuple, Interval::Point(t)));
          if (!fresh) break;  // rejoined an already-walked chain
          t = t + info.step;
        }
      } else {
        // Interval seed: iterate shift-and-clip; components coalesce, so
        // the working set stays small and each pass advances by |step|.
        IntervalSet covered{seed};
        IntervalSet frontier{seed};
        while (!frontier.IsEmpty()) {
          IntervalSet shifted = frontier.Shift(info.step)
                                    .Intersect(allowed)
                                    .Subtract(covered);
          if (shifted.IsEmpty()) break;
          for (const Interval& iv : shifted) {
            DMTL_RETURN_IF_ERROR(emit(tuple, iv).status());
          }
          covered.UnionWith(shifted);
          frontier = std::move(shifted);
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace dmtl
