#ifndef DMTL_EVAL_AGGREGATE_EVAL_H_
#define DMTL_EVAL_AGGREGATE_EVAL_H_

#include "src/eval/rule_eval.h"

namespace dmtl {

// Evaluates rules with an aggregated head argument, e.g.
//
//   event(msum(S)) :- eventContrib(A, S) .
//
// Stratified temporal aggregation: witnesses are the distinct body
// bindings; groups are the non-aggregated head arguments; the aggregate is
// computed *per time point* (witnesses only contribute where their body
// extent holds). The timeline is partitioned into atomic segments at every
// witness-extent endpoint; each segment gets the aggregate of the witnesses
// covering it, and adjacent segments with equal values re-coalesce on
// insertion.
//
// Aggregate rules live in their own stratum (all body dependencies are
// strictly lower), so a single evaluation per materialization suffices.
class AggregateEvaluator {
 public:
  static Result<AggregateEvaluator> Create(const Rule& rule,
                                           bool enable_join_planning = true);

  const Rule& rule() const { return body_eval_.rule(); }

  // Planner counters of the body evaluator (null when planning is off).
  const PlannerStats* planner_stats() const {
    return body_eval_.planner_stats();
  }

  // A non-null `memo` enables interval-delta propagation in the body
  // evaluation (aggregate rules run once per stratum, so the memo mainly
  // shares leaf path outputs across the body's rows).
  Status Evaluate(const Database& db, const RuleEvaluator::EmitFn& emit,
                  OperatorMemo* memo = nullptr) const;

 private:
  explicit AggregateEvaluator(RuleEvaluator body_eval)
      : body_eval_(std::move(body_eval)) {}

  RuleEvaluator body_eval_;
};

}  // namespace dmtl

#endif  // DMTL_EVAL_AGGREGATE_EVAL_H_
