#ifndef DMTL_EVAL_CHAIN_ACCEL_H_
#define DMTL_EVAL_CHAIN_ACCEL_H_

#include <functional>
#include <map>
#include <optional>

#include "src/ast/rule.h"
#include "src/common/status.h"
#include "src/storage/database.h"

namespace dmtl {

// Accelerates the temporal self-propagation pattern that dominates the
// ETH-PERP program (rules 2, 7, 13, 21, 24, 32, 35, 39):
//
//   P(x) :- boxminus[c,c] P(x), not B1(x'), ..., G1(x''), ... .
//
// where the head equals the shifted body atom, c > 0, and every guard /
// blocker predicate lives in a strictly lower stratum (hence is fully
// materialized). Instead of one fixpoint round per tick, the closure of
// each seed tuple is emitted in a single pass: the guard-allowed time set
// is computed once per tuple and the step-c progression is walked directly.
//
// This is an optimization only - it derives exactly the facts the naive
// fixpoint would (the ablation bench verifies equality of materializations).
class ChainAccelerator {
 public:
  struct ChainInfo {
    PredicateId predicate = 0;
    Rational step;            // signed: +c for past operators, -c for future
    size_t self_literal = 0;  // index into rule.body
    std::vector<size_t> positive_guards;
    std::vector<size_t> negated_guards;
  };

  // Returns the chain description when the rule matches the accelerable
  // pattern under the given predicate->stratum map, nullopt otherwise.
  static std::optional<ChainInfo> Detect(
      const Rule& rule, const std::map<PredicateId, int>& predicate_stratum);

  // Emits one point/interval at a time; returns whether any part was new
  // (walks stop early once they re-enter already-derived territory).
  using EmitPointFn =
      std::function<Result<bool>(const Tuple& tuple, const Interval& iv)>;

  // Guard-allowed sets per head tuple. Guards live in lower strata, so the
  // engine keeps one cache per chain rule for the lifetime of its stratum.
  using AllowedCache = std::unordered_map<Tuple, IntervalSet, TupleHash>;

  // Extends every tuple present in `delta` for the chain predicate to its
  // closure. `window` clamps the walk (required when guards leave the
  // allowed set unbounded). `cache` may be null.
  static Status Extend(const Rule& rule, const ChainInfo& info,
                       const Database& db, const Database& delta,
                       const Interval& window, AllowedCache* cache,
                       const EmitPointFn& emit);
};

}  // namespace dmtl

#endif  // DMTL_EVAL_CHAIN_ACCEL_H_
