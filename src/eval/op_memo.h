#ifndef DMTL_EVAL_OP_MEMO_H_
#define DMTL_EVAL_OP_MEMO_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/eval/operators.h"

namespace dmtl {

// Per-rule cache of unary operator-path outputs - the core of
// interval-delta propagation (EngineOptions::enable_interval_deltas).
//
// For a positive literal of unary-chain shape, evaluation needs
// row.extent ∩ Ops(leaf), where `leaf` is the stored extent of the
// literal's single relational atom and Ops its operator chain. By the
// ChildWindow identity the windowed fast path equals the intersection with
// the *full* un-windowed path output, which is a pure function of the leaf
// set's contents: worth computing once and reusing across every row of
// every subsequent round, keyed by the leaf's address (stable, because
// Relation stores extents in unordered_map nodes and the chase only ever
// inserts).
//
// Lifecycle, driven by the engine at round barriers:
//  - Lookup computes on miss and serves hits while the leaf is unchanged.
//  - When a round's merge adds intervals to a leaf, OnLeafChanged either
//    refreshes each affected entry in place - when every path step
//    distributes over union (see OpPathDeltaRefreshable) the new output is
//    old ∪ Ops(fresh) - or erases it so the next lookup recomputes.
//
// An entry therefore reflects the leaf as of the last round boundary:
// exactly the snapshot semantics of the parallel engine's round-start
// reads. Anything a leaf gained mid-round is re-derived by the semi-naive
// delta pass of the next round, so the fixpoint is unchanged; only
// provenance round/rule attribution can shift (documented on
// EngineOptions::enable_interval_deltas).
//
// Not thread-safe: each rule's evaluation task owns its memo exclusively
// within a round, and the barrier refresh runs single-threaded.
class OperatorMemo {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t refreshes = 0;      // entries updated in place with a delta
    uint64_t invalidations = 0;  // entries erased on non-refreshable growth
  };

  // Returns Ops(*leaf) for `path` (the literal's root-to-leaf chain),
  // computing and caching on miss. `literal` identifies the positive
  // literal within the rule; its path must be identical on every call. The
  // reference stays valid until the next Lookup or OnLeafChanged.
  const IntervalSet& Lookup(size_t literal,
                            const std::vector<OpPathStep>& path,
                            const IntervalSet* leaf);

  // Round-barrier notification that the live set at `leaf` grew by `fresh`
  // (the newly covered intervals of this round's insertions).
  void OnLeafChanged(const IntervalSet* leaf, const IntervalSet& fresh);

  // Retraction notification: the set at `leaf` *lost* coverage (or was
  // erased outright). Shrinking never distributes through the operator
  // paths the way growth can, so every entry keyed on the leaf is dropped;
  // the pointer is used purely as an identity key and never dereferenced -
  // safe to call with the address of an already-destroyed set, which is
  // exactly what Relation::RemoveRegion hands back for erased tuples.
  void OnLeafShrunk(const IntervalSet* leaf);

  // Drops every entry (streaming full invalidation after a retraction whose
  // affected-leaf set was not tracked precisely).
  void Clear();

  bool empty() const { return entries_.empty(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    size_t literal = 0;
    IntervalSet value;
  };
  struct LiteralInfo {
    std::vector<OpPathStep> path;
    bool refreshable = false;
  };

  // Leaf address -> the path outputs memoized against it (usually one; a
  // rule can read the same grounding through several literals).
  std::unordered_map<const IntervalSet*, std::vector<Entry>> entries_;
  std::unordered_map<size_t, LiteralInfo> literals_;
  Stats stats_;
};

}  // namespace dmtl

#endif  // DMTL_EVAL_OP_MEMO_H_
