#ifndef DMTL_EVAL_INCREMENTAL_H_
#define DMTL_EVAL_INCREMENTAL_H_

#include <memory>
#include <vector>

#include "src/ast/program.h"
#include "src/common/status.h"
#include "src/eval/seminaive.h"
#include "src/storage/database.h"

namespace dmtl {

// Incremental counterpart of Materialize(): a long-lived evaluator that
// keeps one database materialized while inputs arrive over time and the
// horizon window moves forward.
//
// The lifecycle is watermark-driven. The evaluator owns a watermark W (the
// time up to which the database is fully derived) and a window minimum m
// (the time below which coverage has been retracted). Between the two, the
// database is byte-identical to what one cold
//   Materialize(program, inputs, {min_time = m, max_time = W})
// over the logged inputs would produce - the invariant every operation
// preserves and the streaming tests check checkpoint-by-checkpoint.
//
//   Push(fact)      log + insert one input fact; its interval must lie
//                   strictly above W (facts at or below the watermark would
//                   change already-final coverage). Before the first
//                   Advance any interval is accepted - the window clamp
//                   makes sub-window portions inert.
//   Advance(t)      raise W to t and derive every consequence in (W, t].
//                   Incremental: only rules with support near the boundary
//                   or among the fresh inputs re-run (see the band seeding
//                   note below), not the whole program.
//   Retract(m')     raise the window minimum to m' (sliding-window expiry):
//                   drop all coverage below m', un-derive consequences, and
//                   re-derive the affected region from the surviving inputs
//                   (delete-and-rederive scoped by a dilation frontier).
//
// Why this is sound (sketch; docs/ENGINE.md "Streaming & retraction" has
// the full argument):
//
//  * The evaluator only accepts past-directed programs (boxminus /
//    diamondminus, no head operators, no since/until). For those, coverage
//    at time t depends only on input coverage at times <= t, so everything
//    derived at or below W is final: advancing the watermark never changes
//    it, which is what makes "derive only the new band" correct.
//  * A derivation landing in (W, t] needs every positive support atom
//    within R of its own time, where R is the program's maximal forward
//    reach (the summed upper range bounds of the deepest operator path).
//    Seeding the semi-naive delta with the stored coverage in (W - R, W]
//    plus the fresh inputs therefore reaches every new derivation.
//  * Retraction computes, per predicate, a frontier: an over-approximation
//    of where coverage may differ from a cold run over the clamped inputs,
//    by dilating the expired region through the rules' operator ranges to
//    fixpoint. Wiping the frontier leaves a sub-fixpoint state; re-running
//    the affected rules to fixpoint converges to exactly the cold result
//    (monotone chase from below).
//
// Failure handling inherits the engine's round-barrier guarantee: a guard
// trip or budget exhaustion mid-operation rolls the round back, leaves the
// database a sound under-approximation, and flags the evaluator; the next
// operation transparently heals by a full cold rebuild from the input log.
//
// Single-threaded externally (like Database): one operation at a time.
// Internally, Advance/Retract use options.num_threads workers exactly like
// the batch engine, with the same byte-identical-output contract.
class IncrementalMaterializer {
 public:
  // Validates the program (arity, safety, stratification) and checks
  // streaming eligibility: every body operator past-directed with finite
  // non-negative lower range bounds, no head operators, no since/until, no
  // naive_evaluation, and at least one positive relational atom per
  // non-aggregate rule. `options.min_time` must be set (the initial window
  // minimum and watermark); `options.max_time` must be unset (the evaluator
  // manages the horizon). `db` must outlive the evaluator and start empty -
  // all input arrives through Push. If `options.provenance` is set, records
  // accumulate there and are pruned on retraction, preserving the batch
  // invariant: provenance coverage per predicate unions to exactly the
  // derived-minus-input coverage.
  static Result<std::unique_ptr<IncrementalMaterializer>> Create(
      const Program& program, Database* db, const EngineOptions& options);

  // Rebuilds a live evaluator from checkpointed session state (see
  // src/storage/snapshot.h). Unlike Create, `db` must already hold the
  // snapshot's materialized database; `options.min_time` is the restored
  // window minimum, `watermark` the restored watermark, and `advanced`
  // whether the checkpointed session had executed its first Advance (it
  // gates the push-above-watermark finality check). `input_log` is the
  // snapshot's clamped log; the pending band is reseeded from it so the
  // next Advance derives exactly what the uninterrupted session would -
  // the warm restart is byte-identical, operation for operation.
  static Result<std::unique_ptr<IncrementalMaterializer>> Restore(
      const Program& program, Database* db, const EngineOptions& options,
      std::vector<Fact> input_log, const Rational& watermark, bool advanced);

  ~IncrementalMaterializer();

  IncrementalMaterializer(const IncrementalMaterializer&) = delete;
  IncrementalMaterializer& operator=(const IncrementalMaterializer&) = delete;

  // Logs and inserts one input fact. After the first Advance, the fact's
  // interval must lie strictly above the watermark (flush discipline: all
  // facts at time t are pushed before the Advance that derives t).
  Status Push(const Fact& fact);

  // Advances the watermark to `t` (must be >= the current watermark; equal
  // is a no-op unless fresh inputs are pending) and derives all
  // consequences in the new band. Per-operation stats land in `stats`
  // (optional): counters are this operation's own work, not session
  // cumulative.
  Status Advance(const Rational& t, EngineStats* stats = nullptr);

  // Slides the window minimum up to `new_min` (window_min < new_min <=
  // watermark), retracting expired coverage, pruning provenance, and
  // re-deriving the affected region. The input log is clamped to the new
  // window so later rebuilds and cold replays see the same inputs.
  Status Retract(const Rational& new_min, EngineStats* stats = nullptr);

  const Rational& watermark() const;
  const Rational& window_min() const;

  // The logged inputs (clamped by past retractions). A cold
  // Materialize(program, these inputs, {min_time = window_min, max_time =
  // watermark}) reproduces db() byte-for-byte - the streaming oracle.
  const std::vector<Fact>& input_log() const;

  // True when a failed operation left the database an under-approximation;
  // the next Push/Advance/Retract heals by a cold rebuild first.
  bool needs_rebuild() const;

  // True once the first Advance has run (checkpointed with the session and
  // reinstated by Restore).
  bool advanced() const;

  // The program's maximal forward reach R (band width); unbounded when some
  // operator range has an infinite upper bound - legal, but every advance
  // then re-seeds from all stored coverage.
  bool reach_unbounded() const;
  const Rational& forward_reach() const;

 private:
  IncrementalMaterializer();

  class Impl;  // lives in seminaive.cc, sharing the engine internals
  std::unique_ptr<Impl> impl_;
};

}  // namespace dmtl

#endif  // DMTL_EVAL_INCREMENTAL_H_
