#include "src/eval/rule_compile.h"

#include <cstdio>
#include <set>

#include "src/analysis/safety.h"

namespace dmtl {

namespace {

uint32_t InternConst(std::vector<Value>* pool, const Value& v) {
  for (size_t i = 0; i < pool->size(); ++i) {
    if ((*pool)[i] == v) return static_cast<uint32_t>(i);
  }
  pool->push_back(v);
  return static_cast<uint32_t>(pool->size() - 1);
}

// Appends the unification plan of one argument list under the running
// bound-variable set, updating it for kBind steps. `signature` marks the
// positions an index key covers.
void CompileUnify(const std::vector<Term>& args, uint64_t signature,
                  std::vector<char>* bound, std::vector<Value>* pool,
                  std::vector<UnifyStep>* out, std::vector<int>* binds) {
  for (size_t pos = 0; pos < args.size(); ++pos) {
    const Term& t = args[pos];
    UnifyStep u;
    u.pos = static_cast<uint16_t>(pos);
    u.in_key = pos < 64 && ((signature >> pos) & 1) != 0;
    if (t.is_constant()) {
      u.kind = UnifyStep::Kind::kCheckConst;
      u.const_index = InternConst(pool, t.value());
    } else if ((*bound)[t.var()]) {
      u.kind = UnifyStep::Kind::kCheckVar;
      u.var = t.var();
    } else {
      u.kind = UnifyStep::Kind::kBind;
      u.var = t.var();
      (*bound)[t.var()] = 1;
      if (binds != nullptr) binds->push_back(t.var());
    }
    out->push_back(u);
  }
}

std::string PathToString(const std::vector<OpPathStep>& path) {
  std::string out = "[";
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += " ";
    out += std::string(MtlOpToString(path[i].op)) + path[i].range.ToString();
  }
  return out + "]";
}

}  // namespace

const char* OpCodeToString(OpCode op) {
  switch (op) {
    case OpCode::kLoadIndex:
      return "LOAD_INDEX";
    case OpCode::kProbe:
      return "PROBE";
    case OpCode::kIntersectTemporal:
      return "INTERSECT_TEMPORAL";
    case OpCode::kApplyUnaryChain:
      return "APPLY_UNARY_CHAIN";
    case OpCode::kEvalBuiltin:
      return "EVAL_BUILTIN";
    case OpCode::kNegate:
      return "NEGATE";
    case OpCode::kSplitTimestamp:
      return "SPLIT_TIMESTAMP";
    case OpCode::kEmit:
      return "EMIT";
  }
  return "?";
}

std::optional<std::string> RuleCompiler::Declines(const RuleEvaluator& eval) {
  const Rule& rule = eval.rule();
  if (!eval.planning_enabled()) {
    return "join planning disabled (compiled programs bake in the plan)";
  }
  if (rule.head.aggregate.has_value()) {
    return "aggregate head (AggregateEvaluator owns these)";
  }
  if (rule.head.args.size() > 64) return "head arity exceeds 64";
  for (const BodyLiteral& lit : rule.body) {
    if (lit.kind != BodyLiteral::Kind::kMetric) continue;
    std::vector<const RelationalAtom*> atoms;
    lit.metric.CollectRelationalAtoms(&atoms);
    for (const RelationalAtom* atom : atoms) {
      if (atom->args.size() > 64) return "atom arity exceeds 64";
    }
  }
  // Every head variable must be statically bound by the row pipeline
  // (positive literals, assignment targets, timestamp variables) - the
  // compiled head projection reads registers unconditionally. The
  // interpreter reports such rules with a runtime UnsafeRule error, so
  // declining just preserves that path.
  std::set<int> bound = PositiveLiteralVars(rule);
  for (const BodyLiteral& lit : rule.body) {
    if (lit.kind != BodyLiteral::Kind::kBuiltin) continue;
    if (lit.builtin.kind == BuiltinAtom::Kind::kAssign ||
        lit.builtin.kind == BuiltinAtom::Kind::kTimestamp) {
      bound.insert(lit.builtin.var);
    }
  }
  for (const Term& t : rule.head.args) {
    if (t.is_variable() && !bound.count(t.var())) {
      return "head variable not statically bound";
    }
  }
  return std::nullopt;
}

RuleProgram RuleCompiler::Compile(const RuleEvaluator& eval,
                                  const Database& db, const Database* delta,
                                  int delta_occurrence) {
  const Rule& rule = eval.rule_;
  RuleProgram prog;
  prog.num_vars = rule.num_vars();

  RuleEvaluator::ExecutionPlan plan =
      eval.BuildPlan(db, delta, delta_occurrence, eval.planner_stats_.get());
  prog.plan_cost = plan.total_cost;

  std::vector<Instr> body;
  std::vector<char> bound(rule.num_vars(), 0);
  for (const RuleEvaluator::ExecutionPlan::Step& step : plan.steps) {
    const size_t lit_slot = prog.literals.size();
    const size_t body_index = eval.positive_literals_[step.p];
    const RuleEvaluator::LiteralPlan& lplan = eval.literal_plans_[step.p];

    LiteralCode lc;
    lc.ordinal = step.p;
    lc.body_index = body_index;
    lc.delta_offset = step.literal_delta_offset;
    switch (lplan.shape) {
      case RuleEvaluator::LiteralShape::kBareAtom:
        lc.shape = LitShape::kBareAtom;
        break;
      case RuleEvaluator::LiteralShape::kUnaryChain:
        lc.shape = LitShape::kUnaryChain;
        lc.path = lplan.atoms[0].path;
        break;
      case RuleEvaluator::LiteralShape::kGeneral:
        lc.shape = LitShape::kGeneral;
        break;
    }
    prog.literals.push_back(std::move(lc));

    std::vector<const RelationalAtom*> atoms;
    rule.body[body_index].metric.CollectRelationalAtoms(&atoms);
    for (size_t a = 0; a < atoms.size(); ++a) {
      const RelationalAtom& atom = *atoms[a];
      AtomCode ac;
      ac.pred = atom.predicate;
      ac.lit = lit_slot;
      ac.arity = atom.args.size();
      ac.is_delta = static_cast<int>(a) == step.literal_delta_offset;
      ac.prunable = lplan.atoms[a].prunable;
      ac.signature = step.probes[a].signature;
      ac.path = lplan.atoms[a].path;
      ac.num_tuples_at_compile =
          step.probes[a].rel != nullptr ? step.probes[a].rel->NumTuples() : 0;
      // Index-key recipe: the signature's positions in ascending order,
      // matching BoundIndex::positions for this signature.
      for (size_t pos = 0; pos < ac.arity && pos < 64; ++pos) {
        if (((ac.signature >> pos) & 1) == 0) continue;
        const Term& t = atom.args[pos];
        ValueRef r;
        if (t.is_constant()) {
          r.const_index = InternConst(&prog.consts, t.value());
        } else {
          r.var = t.var();
        }
        ac.key.push_back(r);
      }
      CompileUnify(atom.args, ac.signature, &bound, &prog.consts, &ac.unify,
                   &ac.binds);
      body.push_back(Instr{OpCode::kProbe,
                           static_cast<uint32_t>(prog.atoms.size())});
      prog.atoms.push_back(std::move(ac));
    }
    body.push_back(Instr{lplan.shape == RuleEvaluator::LiteralShape::kUnaryChain
                             ? OpCode::kApplyUnaryChain
                             : OpCode::kIntersectTemporal,
                         static_cast<uint32_t>(lit_slot)});
  }

  for (size_t i : eval.early_builtins_) {
    body.push_back(Instr{OpCode::kEvalBuiltin, static_cast<uint32_t>(i)});
  }
  for (size_t i : eval.negated_literals_) {
    body.push_back(Instr{OpCode::kNegate, static_cast<uint32_t>(i)});
  }
  for (size_t i : eval.timestamp_builtins_) {
    body.push_back(Instr{OpCode::kSplitTimestamp, static_cast<uint32_t>(i)});
  }
  for (size_t i : eval.late_builtins_) {
    body.push_back(Instr{OpCode::kEvalBuiltin, static_cast<uint32_t>(i)});
  }
  body.push_back(Instr{OpCode::kEmit, 0});

  prog.head.pred = rule.head.predicate;
  for (const Term& t : rule.head.args) {
    ValueRef r;
    if (t.is_constant()) {
      r.const_index = InternConst(&prog.consts, t.value());
    } else {
      r.var = t.var();
    }
    prog.head.args.push_back(r);
  }
  prog.head.ops = rule.head.ops;

  prog.code.reserve(prog.atoms.size() + body.size());
  for (size_t s = 0; s < prog.atoms.size(); ++s) {
    prog.code.push_back(Instr{OpCode::kLoadIndex, static_cast<uint32_t>(s)});
  }
  prog.prologue = prog.atoms.size();
  prog.code.insert(prog.code.end(), body.begin(), body.end());
  return prog;
}

ChainProgram RuleCompiler::CompileChain(
    const Rule& rule, const ChainAccelerator::ChainInfo& info) {
  ChainProgram cp;
  cp.pred = info.predicate;
  cp.step = info.step;
  cp.positive_guards = info.positive_guards;
  cp.negated_guards = info.negated_guards;
  cp.num_vars = rule.num_vars();

  std::vector<char> bound(rule.num_vars(), 0);
  CompileUnify(rule.head.args, /*signature=*/0, &bound, &cp.consts, &cp.unify,
               nullptr);

  // Guard projection: the head positions whose variables any guard can
  // observe. Tuples agreeing on these positions get identical allowed sets
  // (non-head guard variables are existential by Detect's contract), so the
  // VM's cache is keyed by the projection instead of the full tuple.
  std::vector<int> gv;
  for (size_t i : info.positive_guards) rule.body[i].metric.CollectVars(&gv);
  for (size_t i : info.negated_guards) rule.body[i].metric.CollectVars(&gv);
  std::set<int> guard_vars(gv.begin(), gv.end());
  std::set<int> taken;
  for (size_t pos = 0; pos < rule.head.args.size(); ++pos) {
    const Term& t = rule.head.args[pos];
    if (t.is_variable() && guard_vars.count(t.var()) &&
        taken.insert(t.var()).second) {
      cp.guard_projection.push_back(pos);
    }
  }
  return cp;
}

Interval RuleCompiler::ExpandPruneWindow(Interval window,
                                         const std::vector<OpPathStep>& path) {
  return RuleEvaluator::ExpandPruneWindow(window, path);
}

std::string RuleProgram::Dump(const Rule& rule) const {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g", plan_cost);
  out += "program for: " + rule.ToString() + "\n";
  out += "  vars=" + std::to_string(num_vars) +
         " consts=" + std::to_string(consts.size()) +
         " est_cost=" + buf + "\n";
  auto value_ref = [&](const ValueRef& r) -> std::string {
    if (r.var >= 0) {
      return r.var < static_cast<int>(rule.var_names.size())
                 ? rule.var_names[r.var]
                 : "v" + std::to_string(r.var);
    }
    return consts[r.const_index].ToString();
  };
  for (size_t ip = 0; ip < code.size(); ++ip) {
    const Instr& instr = code[ip];
    std::snprintf(buf, sizeof(buf), "  %02zu %-19s", ip,
                  OpCodeToString(instr.op));
    out += buf;
    switch (instr.op) {
      case OpCode::kLoadIndex:
      case OpCode::kProbe: {
        const AtomCode& a = atoms[instr.arg];
        out += "a" + std::to_string(instr.arg) + " " +
               (a.is_delta ? "delta:" : "") + PredicateName(a.pred) + "/" +
               std::to_string(a.arity);
        if (instr.op == OpCode::kLoadIndex) {
          std::snprintf(buf, sizeof(buf), " sig=0x%llx",
                        static_cast<unsigned long long>(a.signature));
          out += buf;
        } else {
          if (!a.key.empty()) {
            out += " key=[";
            for (size_t k = 0; k < a.key.size(); ++k) {
              if (k > 0) out += ",";
              out += value_ref(a.key[k]);
            }
            out += "]";
          }
          if (!a.binds.empty()) {
            out += " binds=[";
            for (size_t k = 0; k < a.binds.size(); ++k) {
              if (k > 0) out += ",";
              out += rule.var_names[a.binds[k]];
            }
            out += "]";
          }
          out += a.prunable ? " prune" : " no-prune";
        }
        break;
      }
      case OpCode::kIntersectTemporal:
      case OpCode::kApplyUnaryChain: {
        const LiteralCode& lc = literals[instr.arg];
        out += "lit" + std::to_string(instr.arg) + " " +
               rule.body[lc.body_index].ToString(rule.var_names);
        if (instr.op == OpCode::kApplyUnaryChain) {
          out += " path=" + PathToString(lc.path) + " memo-slot=" +
                 std::to_string(lc.ordinal);
          if (lc.delta_offset >= 0) out += " (delta: memo bypassed)";
        }
        break;
      }
      case OpCode::kEvalBuiltin:
      case OpCode::kNegate:
      case OpCode::kSplitTimestamp:
        out += "body[" + std::to_string(instr.arg) + "] " +
               rule.body[instr.arg].ToString(rule.var_names);
        break;
      case OpCode::kEmit: {
        out += PredicateName(head.pred) + "(";
        for (size_t k = 0; k < head.args.size(); ++k) {
          if (k > 0) out += ", ";
          out += value_ref(head.args[k]);
        }
        out += ")";
        for (const HeadAtom::HeadOp& op : head.ops) {
          out += std::string(" dilate:") + MtlOpToString(op.op) +
                 op.range.ToString();
        }
        break;
      }
    }
    out += "\n";
  }
  return out;
}

std::string ChainProgram::Dump(const Rule& rule) const {
  std::string out = "chain kernel for: " + rule.ToString() + "\n";
  out += "  predicate=" + PredicateName(pred) + " step=" + step.ToString();
  out += " guards=" + std::to_string(positive_guards.size()) + "+" +
         std::to_string(negated_guards.size()) + "-";
  out += " cache-key=head[";
  for (size_t i = 0; i < guard_projection.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(guard_projection[i]);
  }
  out += "]\n";
  return out;
}

}  // namespace dmtl
