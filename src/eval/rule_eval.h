#ifndef DMTL_EVAL_RULE_EVAL_H_
#define DMTL_EVAL_RULE_EVAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/ast/rule.h"
#include "src/common/status.h"
#include "src/eval/operators.h"

namespace dmtl {

class OperatorMemo;

// Runtime counters of the join planner, shared by every copy of one
// evaluator. Relaxed atomics: per-rule tasks never run concurrently with
// each other within a round (one task per rule), and round barriers order
// everything else; the atomics only make cross-round thread handoffs
// race-free under TSan.
struct PlannerStats {
  std::atomic<uint64_t> indexes_built{0};
  std::atomic<uint64_t> index_probes{0};
  std::atomic<uint64_t> index_probe_hits{0};
  // Candidate tuples skipped by a temporal-envelope or hull precheck before
  // paying for unification + IntervalSet::Intersect.
  std::atomic<uint64_t> envelope_pruned{0};
  // Memo-literal set intersections (row extent ∩ memoized operator-path
  // output) and the interval components both operands carried into them -
  // the dominant remaining per-candidate cost once rules are compiled
  // (docs/ENGINE.md "Rule compilation"). Covered-hull fast paths that skip
  // the sweep entirely count as an intersection with zero components.
  std::atomic<uint64_t> memo_intersections{0};
  std::atomic<uint64_t> memo_intersect_components{0};
  // Estimated cost of the most recent plan (see ExplainPlan for the model).
  std::atomic<double> last_plan_cost{0.0};
};

// Evaluates one rule bottom-up against a database (optionally with a
// semi-naive delta restriction on a single positive relational-atom
// occurrence). Staged pipeline:
//
//   1. positive literals: enumerate tuple groundings, intersect extents;
//   2. early builtins (assignments/comparisons not depending on
//      timestamp-bound variables);
//   3. negated literals: subtract their extents (unbound variables are
//      existential, e.g. `not order(A, _)`);
//   4. timestamp() builtins: split each row into one row per punctual time
//      point of its extent, binding the variable;
//   5. late builtins (those depending on timestamp variables).
//
// The head's boxminus/boxplus operator chain is applied as a dilation to
// the final extent.
//
// Stage 1 runs through a cost-based join planner by default: positive
// literals are reordered by estimated selectivity (the semi-naive delta
// literal pinned first), each atom probes an on-demand bound-signature
// index over its bound argument positions (Relation::GetIndex), and
// candidate tuples whose temporal envelope cannot intersect the row's
// accumulated extent are skipped before unification. The planner is a pure
// optimization: the produced rows - and therefore the materialization - are
// identical with it on or off (EngineOptions::enable_join_planning).
class RuleEvaluator {
 public:
  // Validates the rule shape and precomputes the stage plan.
  static Result<RuleEvaluator> Create(const Rule& rule,
                                      bool enable_join_planning = true);

  RuleEvaluator(RuleEvaluator&&) = default;
  RuleEvaluator& operator=(RuleEvaluator&&) = default;
  RuleEvaluator(const RuleEvaluator&) = default;
  RuleEvaluator& operator=(const RuleEvaluator&) = default;

  // Total number of positive relational-atom occurrences (the delta
  // positions the semi-naive engine iterates over).
  int num_positive_occurrences() const { return num_occurrences_; }

  const Rule& rule() const { return rule_; }

  // Null when join planning is disabled. Shared across copies.
  const PlannerStats* planner_stats() const { return planner_stats_.get(); }
  bool planning_enabled() const { return planning_; }

  using EmitFn =
      std::function<Status(const Tuple& tuple, const IntervalSet& extent)>;

  // Runs stages 1-5 and emits one (head tuple, extent) per surviving row.
  // `delta_occurrence` in [0, num_positive_occurrences) restricts that
  // occurrence to `delta`; -1 evaluates fully. Not usable on aggregate
  // heads (see AggregateEvaluator). A non-null `memo` enables
  // interval-delta propagation: unary-chain literal extents are served from
  // the rule's OperatorMemo (round-boundary snapshot semantics; the engine
  // refreshes the memo at barriers). A non-null `guard` is checked every
  // few thousand candidate tuples and between stages, so one huge join
  // cannot outlive a deadline or ignore cancellation; on a trip the
  // evaluation returns the guard's error mid-rule and the engine rolls the
  // round back.
  Status Evaluate(const Database& db, const Database* delta,
                  int delta_occurrence, const EmitFn& emit,
                  OperatorMemo* memo = nullptr,
                  const ExecutionGuard* guard = nullptr) const;

  // Like Evaluate but stops after stage 5, returning the surviving rows.
  Status EvaluateRows(const Database& db, const Database* delta,
                      int delta_occurrence, std::vector<BindingRow>* rows,
                      OperatorMemo* memo = nullptr,
                      const ExecutionGuard* guard = nullptr) const;

  // Human-readable description of the join order, index signatures, and
  // prunability the planner would choose for a full (non-delta) pass over
  // `db`. Builds any indexes it would probe.
  std::string ExplainPlan(const Database& db) const;

 private:
  // The rule compiler lowers this evaluator's plan into flat bytecode
  // (src/eval/rule_compile.h); it reuses BuildPlan and the literal plans so
  // the compiled join order is exactly the planned one.
  friend class RuleCompiler;

  // How a positive literal's extent is computed once its atoms are ground.
  // Single-atom shapes take a fast path that reuses the interval set found
  // during enumeration (replicating EvalMetricExtent's arithmetic exactly);
  // everything else falls back to EvalMetricExtent.
  enum class LiteralShape : uint8_t {
    kBareAtom,    // the literal is a single relational atom
    kUnaryChain,  // nested unary MTL ops around a single relational atom
    kGeneral,     // anything else (binary ops, truth/falsity, multi-atom)
  };

  // One operator step on the root-to-atom path of a relational atom inside
  // its literal's metric tree (shared with the operator memo).
  using PathStep = OpPathStep;
  // Static per-atom facts, computed once at Plan() time.
  struct AtomPlan {
    std::vector<PathStep> path;  // root-to-atom operator chain
    // True when an empty atom extent forces an empty literal extent, i.e.
    // the atom is never the left operand of since/until (whose rho may
    // contain 0, making an empty LHS hold vacuously). Only prunable atoms
    // may be skipped on temporal-envelope misses.
    bool prunable = true;
  };
  struct LiteralPlan {
    std::vector<AtomPlan> atoms;  // pre-order, parallel to the atom list
    LiteralShape shape = LiteralShape::kGeneral;
  };

  // The dynamic plan for one EvaluateRows call: literal order plus the
  // index each atom probes, resolved against the current relation sizes.
  struct ExecutionPlan {
    struct AtomProbe {
      uint64_t signature = 0;  // bound positions at probe time
      const Relation* rel = nullptr;
      const Relation::BoundIndex* index = nullptr;  // null = scan
    };
    struct Step {
      size_t p = 0;                  // index into positive_literals_
      int literal_delta_offset = -1;
      double cost = 0.0;             // estimated enumeration cost
      std::vector<AtomProbe> probes;
    };
    std::vector<Step> steps;
    double total_cost = 0.0;
  };

  explicit RuleEvaluator(Rule rule) : rule_(std::move(rule)) {}

  Status Plan();

  // Hull-level mirror of ChildWindow: expands the row-extent hull through
  // the atom's root-to-atom operator path, yielding a superset of the time
  // points the atom can contribute from. Tuples whose stored extent cannot
  // intersect it are skipped by enumeration (prunable atoms only).
  static Interval ExpandPruneWindow(Interval window,
                                    const std::vector<PathStep>& path);

  ExecutionPlan BuildPlan(const Database& db, const Database* delta,
                          int delta_occurrence, PlannerStats* stats) const;

  // Stage 1 under the planner: reordered, index-probed, envelope-pruned,
  // and (with a memo) delta-propagated.
  Status EvaluatePositivePlanned(const Database& db, const Database* delta,
                                 int delta_occurrence,
                                 std::vector<BindingRow>* rows,
                                 OperatorMemo* memo,
                                 const ExecutionGuard* guard) const;

  Rule rule_;
  // Indices into rule_.body per stage.
  std::vector<size_t> positive_literals_;
  std::vector<size_t> negated_literals_;
  std::vector<size_t> early_builtins_;   // in dependency order
  std::vector<size_t> timestamp_builtins_;
  std::vector<size_t> late_builtins_;
  // Global occurrence index of the first relational atom of each positive
  // literal (parallel to positive_literals_).
  std::vector<int> occurrence_start_;
  int num_occurrences_ = 0;

  // Join planner state (parallel to positive_literals_; empty when off).
  bool planning_ = true;
  std::vector<LiteralPlan> literal_plans_;
  std::shared_ptr<PlannerStats> planner_stats_;
};

}  // namespace dmtl

#endif  // DMTL_EVAL_RULE_EVAL_H_
