#ifndef DMTL_EVAL_RULE_EVAL_H_
#define DMTL_EVAL_RULE_EVAL_H_

#include <functional>
#include <vector>

#include "src/ast/rule.h"
#include "src/common/status.h"
#include "src/eval/operators.h"

namespace dmtl {

// Evaluates one rule bottom-up against a database (optionally with a
// semi-naive delta restriction on a single positive relational-atom
// occurrence). Staged pipeline:
//
//   1. positive literals: enumerate tuple groundings, intersect extents;
//   2. early builtins (assignments/comparisons not depending on
//      timestamp-bound variables);
//   3. negated literals: subtract their extents (unbound variables are
//      existential, e.g. `not order(A, _)`);
//   4. timestamp() builtins: split each row into one row per punctual time
//      point of its extent, binding the variable;
//   5. late builtins (those depending on timestamp variables).
//
// The head's boxminus/boxplus operator chain is applied as a dilation to
// the final extent.
class RuleEvaluator {
 public:
  // Validates the rule shape and precomputes the stage plan.
  static Result<RuleEvaluator> Create(const Rule& rule);

  RuleEvaluator(RuleEvaluator&&) = default;
  RuleEvaluator& operator=(RuleEvaluator&&) = default;
  RuleEvaluator(const RuleEvaluator&) = default;
  RuleEvaluator& operator=(const RuleEvaluator&) = default;

  // Total number of positive relational-atom occurrences (the delta
  // positions the semi-naive engine iterates over).
  int num_positive_occurrences() const { return num_occurrences_; }

  const Rule& rule() const { return rule_; }

  using EmitFn =
      std::function<Status(const Tuple& tuple, const IntervalSet& extent)>;

  // Runs stages 1-5 and emits one (head tuple, extent) per surviving row.
  // `delta_occurrence` in [0, num_positive_occurrences) restricts that
  // occurrence to `delta`; -1 evaluates fully. Not usable on aggregate
  // heads (see AggregateEvaluator).
  Status Evaluate(const Database& db, const Database* delta,
                  int delta_occurrence, const EmitFn& emit) const;

  // Like Evaluate but stops after stage 5, returning the surviving rows.
  Status EvaluateRows(const Database& db, const Database* delta,
                      int delta_occurrence,
                      std::vector<BindingRow>* rows) const;

 private:
  explicit RuleEvaluator(Rule rule) : rule_(std::move(rule)) {}

  Status Plan();

  Rule rule_;
  // Indices into rule_.body per stage.
  std::vector<size_t> positive_literals_;
  std::vector<size_t> negated_literals_;
  std::vector<size_t> early_builtins_;   // in dependency order
  std::vector<size_t> timestamp_builtins_;
  std::vector<size_t> late_builtins_;
  // Global occurrence index of the first relational atom of each positive
  // literal (parallel to positive_literals_).
  std::vector<int> occurrence_start_;
  int num_occurrences_ = 0;
};

}  // namespace dmtl

#endif  // DMTL_EVAL_RULE_EVAL_H_
