#ifndef DMTL_EVAL_SEMINAIVE_H_
#define DMTL_EVAL_SEMINAIVE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/common/status.h"
#include "src/storage/database.h"

namespace dmtl {

// One provenance record: a fact piece and the rule occurrence that first
// derived it (input facts are never recorded, only derivations).
// rule_index indexes program.rules().
struct DerivationRecord {
  PredicateId predicate = 0;
  Tuple tuple;
  Interval piece = Interval::Point(Rational(0));
  size_t rule_index = 0;
  size_t round = 0;  // 0 = the stratum's initial full round

  std::string ToString(const Program& program) const;
};

// Materialization options.
struct EngineOptions {
  // Derived facts are clamped to [min_time, max_time]; unbounded when unset.
  // Programs whose recursive temporal rules would otherwise propagate
  // forever (the paper's "market never closes" case) need a horizon.
  std::optional<Rational> min_time;
  std::optional<Rational> max_time;

  // Hard budget on stored intervals; exceeded -> kResourceExhausted.
  size_t max_intervals = 100'000'000;

  // Hard cap on fixpoint rounds per stratum.
  size_t max_rounds = 10'000'000;

  // Bulk-extends self-propagation chains (see ChainAccelerator). Exact;
  // disable only for the ablation benchmark.
  bool enable_chain_acceleration = true;

  // Evaluate naively (re-derive everything each round) instead of
  // semi-naively; for the ablation benchmark.
  bool naive_evaluation = false;

  // When set, every newly derived fact piece is appended here with the
  // rule that produced it - the "why" behind each contract state change
  // (the explainability the paper argues for, as data). Opt-in: a full
  // trading session derives millions of pieces.
  std::vector<DerivationRecord>* provenance = nullptr;
};

// Counters of one materialization run.
struct EngineStats {
  int num_strata = 0;
  size_t rounds = 0;
  size_t rule_evaluations = 0;
  size_t derived_intervals = 0;   // newly covered interval pieces inserted
  size_t chain_extensions = 0;    // facts emitted by the accelerator
  double wall_seconds = 0;

  std::string ToString() const;
};

// Runs the DatalogMTL chase: checks arities/safety, stratifies, then
// evaluates stratum by stratum to fixpoint, augmenting `db` in place with
// every entailed fact (insert-only, per the paper's monotone execution
// model).
Status Materialize(const Program& program, Database* db,
                   const EngineOptions& options = {},
                   EngineStats* stats = nullptr);

}  // namespace dmtl

#endif  // DMTL_EVAL_SEMINAIVE_H_
