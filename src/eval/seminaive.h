#ifndef DMTL_EVAL_SEMINAIVE_H_
#define DMTL_EVAL_SEMINAIVE_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/common/execution_guard.h"
#include "src/common/status.h"
#include "src/storage/database.h"

namespace dmtl {

// One provenance record: a fact piece and the rule occurrence that first
// derived it (input facts are never recorded, only derivations).
// rule_index indexes program.rules().
struct DerivationRecord {
  PredicateId predicate = 0;
  Tuple tuple;
  Interval piece = Interval::Point(Rational(0));
  size_t rule_index = 0;
  size_t round = 0;  // 0 = the stratum's initial full round

  std::string ToString(const Program& program) const;
};

// Materialization options.
struct EngineOptions {
  // Derived facts are clamped to [min_time, max_time]; unbounded when unset.
  // Programs whose recursive temporal rules would otherwise propagate
  // forever (the paper's "market never closes" case) need a horizon.
  std::optional<Rational> min_time;
  std::optional<Rational> max_time;

  // Hard budget on stored intervals; exceeded -> kResourceExhausted.
  size_t max_intervals = 100'000'000;

  // Hard cap on fixpoint rounds per stratum.
  size_t max_rounds = 10'000'000;

  // Wall-clock budget for the whole materialization, measured from the
  // Materialize call; exceeded -> kDeadlineExceeded. Checked at round
  // barriers, every few hundred emissions, and every few thousand candidate
  // tuples inside joins, so even one divergent rule observes it within
  // milliseconds. On a trip the database is left at the last completed
  // round barrier (see docs/robustness.md). Unset = no deadline.
  std::optional<std::chrono::milliseconds> deadline;

  // Cooperative cancellation: create a token, pass it here, and call
  // Cancel() from any thread while Materialize runs; the engine stops at
  // its next guard check with kCancelled and the same round-barrier
  // database guarantee as a deadline trip. Unset = not cancellable.
  std::shared_ptr<CancellationToken> cancel_token;

  // Bulk-extends self-propagation chains (see ChainAccelerator). Exact;
  // disable only for the ablation benchmark.
  bool enable_chain_acceleration = true;

  // Evaluate naively (re-derive everything each round) instead of
  // semi-naively; for the ablation benchmark.
  bool naive_evaluation = false;

  // Cost-based join planning for positive body literals: literals are
  // reordered by estimated selectivity (the semi-naive delta literal pinned
  // first), atoms probe on-demand bound-signature indexes
  // (Relation::GetIndex), and candidates whose temporal envelope cannot
  // intersect the row extent are pruned before unification. A pure
  // optimization - the materialized database is identical with it on or
  // off; disable only for the ablation benchmark.
  bool enable_join_planning = true;

  // Interval-level delta propagation: memoize each rule's unary
  // operator-path outputs per grounding across fixpoint rounds
  // (OperatorMemo) and refresh them at round barriers with just the newly
  // derived intervals, instead of recomputing whole interval sets every
  // round. The materialized database is byte-for-byte identical on or off;
  // memoized reads have round-boundary snapshot semantics (like the
  // parallel engine), so provenance round/rule attribution - and the
  // rounds/derived counters - may shift on programs with intra-round
  // feeding. Only active with join planning (the memo hangs off the
  // planner's unary-chain fast path).
  bool enable_interval_deltas = true;

  // Compile each rule's plan to a flat register program executed by a
  // dispatch loop (src/eval/bytecode.h, RuleVm) instead of walking the AST
  // every round. The compiled program bakes in the cost-based literal
  // order, per-atom index keys, and static unification plans; variants are
  // recompiled when relations outgrow their compile-time sizes. Exact: the
  // materialized database (and Series/provenance coverage) is identical
  // with it on or off. Rules the compiler declines - aggregate heads,
  // planning disabled - fall back to the AST walker and are counted in
  // EngineStats::vm_fallbacks.
  bool enable_rule_compile = true;

  // Dense integer-timeline fast path: when every fact endpoint, rule bound,
  // and horizon clamp in this run is an in-range integer (the chain-data
  // common case - Unix-second timestamps), the IntervalSet bulk kernels
  // re-encode bounds as packed int64 keys and run branch-light integer
  // sweeps instead of Rational bound arithmetic. Selected once per
  // materialization by scanning the program and database; every kernel
  // re-verifies integrality per element and falls back, so output is
  // byte-for-byte identical on or off. EngineStats::timeline_dense records
  // the selection. Env override: DMTL_DISABLE_DENSE_TIMELINE=1 forces the
  // Rational path (the CI dense-off lane).
  bool enable_dense_timeline = true;

  // Round-arena allocation: transient round-local IntervalSets (row
  // extents, operator outputs, window clamps) draw their spill buffers from
  // a per-task bump-pointer arena that is reset wholesale at the round
  // barrier, instead of the global heap. Stored state (relations, memos,
  // guard caches) is pinned to the heap and unaffected; output is
  // byte-for-byte identical on or off. EngineStats::arena_* report usage.
  // Env override: DMTL_DISABLE_ARENA_ALLOC=1.
  bool enable_arena_alloc = true;

  // Parallel evaluation only: fixpoint rounds whose delta holds fewer
  // intervals than this many PER WORKER THREAD run on the calling thread
  // instead of the pool - at small round sizes task dispatch plus the
  // barrier merge costs more than the parallelism buys (the contract
  // benches' long tail of tick-by-tick rounds carries a handful of
  // intervals each). Scaling by the pool width keeps the gate proportional
  // to the overhead it protects against: the barrier merge walks one
  // buffer per task, so a wide pool needs a bigger round to amortize it,
  // while a 2-thread pool profits from rounds a fixed 2048-interval gate
  // would force inline (see docs/parallelism.md, "Round-size gate"). The
  // initial full round always uses the pool. 0 disables the heuristic.
  size_t parallel_min_round_intervals = 256;

  // Number of evaluation threads. 1 (the default) is the sequential engine,
  // byte-for-byte identical to historical runs. 0 resolves to
  // std::thread::hardware_concurrency(); N > 1 uses a fixed pool of N.
  //
  // With more than one thread, the non-aggregate rules of each fixpoint
  // round are evaluated concurrently against the round-start snapshot of
  // the database, each task buffering its derivations privately; at the
  // round barrier the buffers are merged into the shared store in
  // rule-index order (see docs/parallelism.md). The materialized database
  // is identical to the sequential result - the round barrier of semi-naive
  // evaluation is the synchronization point, and insertion stays
  // single-writer. A fact that a later-indexed rule would have derived from
  // an earlier rule's output *within the same round* is instead derived one
  // round later, so provenance round numbers (and the rounds counter) may
  // differ from the sequential run on programs with such intra-round
  // feeding; the derived fact set never does.
  int num_threads = 1;

  // When set, every newly derived fact piece is appended here with the
  // rule that produced it - the "why" behind each contract state change
  // (the explainability the paper argues for, as data). Opt-in: a full
  // trading session derives millions of pieces.
  std::vector<DerivationRecord>* provenance = nullptr;

  // Incremental advances for long-lived sessions (StreamingSession /
  // EngineSession). Off, a session keeps its external contract but re-runs
  // a cold batch materialization per operation - the batch one-shot shape
  // and the CI equivalence lane. Consulted by sessions only; Materialize
  // ignores it. Env override: DMTL_DISABLE_STREAMING=1.
  bool enable_streaming = true;

  // The one override point folding the DMTL_DISABLE_* environment lanes
  // into an option set (docs/ENGINE.md, "Environment flags"):
  //   DMTL_DISABLE_RULE_COMPILE=1  -> enable_rule_compile = false
  //   DMTL_DISABLE_DENSE_TIMELINE=1-> enable_dense_timeline = false
  //   DMTL_DISABLE_ARENA_ALLOC=1   -> enable_arena_alloc = false
  //   DMTL_DISABLE_STREAMING=1     -> enable_streaming = false
  // The engine resolves options through this exactly once per run (at
  // Materialize entry / session creation); nothing else in the codebase
  // reads those variables. Env can only turn features off, never force one
  // on that the caller disabled.
  EngineOptions WithEnvOverrides() const;

  // Defaults resolved against the environment - what a run with default
  // options will actually execute. Benchmarks record this set in their
  // context block so bench_diff.py can refuse like-for-unlike comparisons.
  static EngineOptions FromEnv();
};

// Why a materialization stopped. Anything but kCompleted comes with the
// round-barrier guarantee: the database equals the state after the last
// fully completed fixpoint round (partial work of the aborted round is
// rolled back).
enum class StopReason {
  kCompleted = 0,   // ran to fixpoint
  kDeadline,        // EngineOptions::deadline exceeded
  kCancelled,       // CancellationToken fired
  kMaxIntervals,    // stored-interval budget exhausted
  kMaxRounds,       // per-stratum round cap hit
  kError,           // evaluation error / internal fault
};

// Stable name, e.g. "deadline"; for logs and CLI diagnostics.
const char* StopReasonToString(StopReason reason);

// Counters of one materialization run.
struct EngineStats {
  int num_strata = 0;
  size_t rounds = 0;
  size_t rule_evaluations = 0;
  size_t derived_intervals = 0;   // newly covered interval pieces inserted
  size_t chain_extensions = 0;    // facts emitted by the accelerator
  double wall_seconds = 0;

  // --- stop diagnostics (populated on every exit path) --------------------
  StopReason stop_reason = StopReason::kCompleted;
  // Stratum being evaluated when the run stopped; -1 when it completed (or
  // never reached evaluation, e.g. a validation error).
  int stopped_stratum = -1;
  // Round in progress when the run stopped: 0 is the stratum's initial full
  // round, k >= 1 the k-th fixpoint round (matching DerivationRecord
  // numbering). The database holds exactly rounds [0, stopped_round) of the
  // stopped stratum plus every earlier stratum in full.
  size_t stopped_round = 0;
  size_t intervals_at_stop = 0;     // db->NumIntervals() at exit
  // Interval pieces discarded when the aborted round was rolled back.
  size_t rolled_back_intervals = 0;
  uint64_t guard_checks = 0;        // deadline/cancellation checks performed

  // One-line failure report ("stop_reason=deadline stratum=0 round=41 ...");
  // the CLI prints this on guard trips and budget exhaustion.
  std::string StopDiagnostics() const;

  // --- join planner (enable_join_planning) --------------------------------
  size_t planner_indexes_built = 0;  // bound-signature indexes materialized
  size_t planner_index_probes = 0;   // index lookups issued
  size_t planner_probe_hits = 0;     // lookups that found a posting list
  size_t planner_pruned_tuples = 0;  // candidates skipped by envelope/hull
  // Memo-literal set intersections (row extent ∩ memoized operator-path
  // output) and the interval components they carried - the dominant
  // remaining per-candidate cost once rules are compiled (docs/ENGINE.md,
  // "Rule compilation"); the number the streaming mode exists to shrink.
  size_t memo_intersections = 0;
  size_t memo_intersect_components = 0;
  // Estimated cost of each rule's most recent plan, indexed like
  // program.rules(); empty when planning is off.
  std::vector<double> rule_plan_cost;

  // --- interval-delta propagation (enable_interval_deltas) ----------------
  size_t memo_hits = 0;            // operator-path outputs served from memo
  size_t memo_misses = 0;          // outputs computed and cached
  size_t memo_refreshes = 0;       // entries updated in place with a delta
  size_t memo_invalidations = 0;   // entries dropped (non-refreshable path)
  size_t delta_intervals = 0;      // total intervals across fixpoint deltas
  size_t bulk_merges = 0;          // IntervalSet bulk coalescing sweeps

  // --- rule compilation (enable_rule_compile) -----------------------------
  size_t compiled_rules = 0;   // rules lowered to bytecode programs
  size_t vm_dispatches = 0;    // compiled executions (evaluate + chain)
  size_t vm_fallbacks = 0;     // rules declined: evaluated by the AST walker
  size_t vm_recompiles = 0;    // program (re)compilations, incl. replans

  // --- memory architecture (enable_dense_timeline / enable_arena_alloc) ---
  // True when this run selected the dense integer-timeline kernels.
  bool timeline_dense = false;
  size_t arena_bytes_reserved = 0;   // chunk bytes held across all arenas
  size_t arena_bytes_allocated = 0;  // bytes handed out (cumulative)
  size_t arena_allocs = 0;           // spill buffers served from arenas
  // Spills that bypassed the arena: pinned vectors growing under an active
  // scope, plus oversized requests.
  size_t arena_heap_fallbacks = 0;

  // --- parallel execution (num_threads != 1) ------------------------------
  size_t threads = 1;             // resolved pool width
  size_t parallel_rounds = 0;     // rounds evaluated through the pool
  size_t parallel_tasks = 0;      // rule tasks dispatched to the pool
  size_t parallel_merges = 0;     // per-task buffers merged at barriers
  // Fixpoint rounds run sequentially because the delta was smaller than
  // parallel_min_round_intervals.
  size_t sequential_rounds_forced = 0;
  // Wall time per stratum (index = stratum number), sequential or parallel.
  std::vector<double> stratum_wall_seconds;

  std::string ToString() const;
};

// Runs the DatalogMTL chase: checks arities/safety, stratifies, then
// evaluates stratum by stratum to fixpoint, augmenting `db` in place with
// every entailed fact (insert-only, per the paper's monotone execution
// model).
//
// Failure is graceful: on a deadline trip, cancellation, budget exhaustion,
// or any evaluation fault, the partial work of the round in progress is
// rolled back so `db` sits exactly at the last completed round barrier
// (still a sound under-approximation of the fixpoint - re-running with a
// horizon continues from it), and `stats` carries the stop diagnostics.
// Materialize never throws.
Status Materialize(const Program& program, Database* db,
                   const EngineOptions& options = {},
                   EngineStats* stats = nullptr);

}  // namespace dmtl

#endif  // DMTL_EVAL_SEMINAIVE_H_
