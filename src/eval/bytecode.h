#ifndef DMTL_EVAL_BYTECODE_H_
#define DMTL_EVAL_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ast/rule.h"
#include "src/eval/operators.h"

namespace dmtl {

// Flat register-style programs the rule compiler lowers rules into - one
// program per (rule, semi-naive delta occurrence) variant. The program bakes
// in everything the AST walker re-derives on every round: the planner's
// literal order, each atom's bound-signature and index-key recipe, the
// unification plan per tuple position (boundness is static once the literal
// order is fixed), each literal's root-to-atom operator path, and the head
// projection. The dispatch loop (RuleVm) then runs a DFS over the program
// with no per-candidate allocation: variables bind into one shared register
// file and are unset on backtrack.
//
// The row pipeline mirrors the interpreter's stages exactly - positive
// literals (in plan order), early builtins, negated literals, timestamp
// splits, late builtins, head emission - so the emitted (tuple, extent)
// sequence is the same sequence the staged AST walker produces for the same
// plan.

enum class OpCode : uint8_t {
  // Prologue (straight-line, once per dispatch): resolve the relation and
  // bound-signature index handles of one atom. arg = atom slot.
  kLoadIndex,
  // Enumerate one relational atom's candidate tuples (index probe when the
  // atom has a bound signature and an index, scan otherwise), unify each
  // candidate into the registers, and recurse. arg = atom slot.
  kProbe,
  // Close a positive literal of bare-atom or general shape: intersect its
  // extent into the row. arg = literal slot.
  kIntersectTemporal,
  // Close a positive literal of unary-chain shape: apply the operator path
  // to the leaf extent (served from the rule's OperatorMemo when one is
  // threaded through and the literal is not delta-restricted) and intersect.
  // arg = literal slot.
  kApplyUnaryChain,
  // Evaluate a comparison/assignment builtin on the registers (early and
  // late stages share the opcode; their placement in the code stream is the
  // stage order). arg = rule body index.
  kEvalBuiltin,
  // Subtract a negated literal's extent from the row. arg = body index.
  kNegate,
  // Fan the row out into one execution per punctual time point, binding the
  // timestamp variable. arg = body index.
  kSplitTimestamp,
  // Project the head tuple from the registers, apply the head operator
  // dilation, and emit. arg unused.
  kEmit,
};

const char* OpCodeToString(OpCode op);

struct Instr {
  OpCode op = OpCode::kEmit;
  uint32_t arg = 0;
};

// How one runtime value is produced: from a register (var >= 0) or from the
// program's constant pool.
struct ValueRef {
  int var = -1;
  uint32_t const_index = 0;
};

// One tuple position of an atom's unification plan. Boundness is static at
// compile time (the plan fixes the literal order), so the per-candidate
// branch ladder of Bindings::Unify collapses to a preresolved step list.
struct UnifyStep {
  enum class Kind : uint8_t {
    kBind,        // first occurrence of a free variable: write the register
    kCheckVar,    // variable bound upstream: compare against its register
    kCheckConst,  // constant: compare against the pool
  };
  Kind kind = Kind::kBind;
  // Position covered by the probe's bound signature: already matched by the
  // index key, skipped when enumerating via the index.
  bool in_key = false;
  uint16_t pos = 0;
  int var = -1;
  uint32_t const_index = 0;
};

// Everything one kProbe needs, resolved at compile time except the relation
// and index handles themselves (kLoadIndex refreshes those per dispatch -
// relation pointers are stable for the life of a database, index pointers
// for the life of the relation's contents).
struct AtomCode {
  PredicateId pred = 0;
  size_t lit = 0;    // owning literal slot
  size_t arity = 0;
  bool is_delta = false;  // reads the round delta instead of the store
  bool prunable = true;   // may be skipped on temporal-envelope misses
  uint64_t signature = 0;  // bound argument positions at this plan point
  // Index-key recipe, parallel vectors in ascending position order
  // (matching BoundIndex::positions for this signature).
  std::vector<ValueRef> key;
  std::vector<UnifyStep> unify;  // all positions, in tuple order
  // Registers this atom binds (distinct; identical for probe and scan paths
  // since key positions are never kBind). Unset on backtrack.
  std::vector<int> binds;
  std::vector<OpPathStep> path;  // root-to-atom operator chain
  // Relation size when the variant was compiled; the VM replans when a
  // store-backed atom's relation has grown well past this snapshot.
  size_t num_tuples_at_compile = 0;
};

// Mirror of RuleEvaluator::LiteralShape for the compiled path.
enum class LitShape : uint8_t { kBareAtom, kUnaryChain, kGeneral };

struct LiteralCode {
  // Index into the evaluator's positive-literal list - the memo slot, which
  // must match the interpreter's ordinals so a memo warmed by either
  // executor serves the other.
  size_t ordinal = 0;
  size_t body_index = 0;
  LitShape shape = LitShape::kGeneral;
  int delta_offset = -1;  // delta atom position within the literal, -1: none
  std::vector<OpPathStep> path;  // unary-chain shape only
};

struct HeadCode {
  PredicateId pred = 0;
  std::vector<ValueRef> args;
  std::vector<HeadAtom::HeadOp> ops;  // outermost first
};

// One compiled (rule, delta occurrence) variant.
struct RuleProgram {
  std::vector<Instr> code;
  size_t prologue = 0;  // leading kLoadIndex count; dispatch starts after
  std::vector<AtomCode> atoms;      // in plan order
  std::vector<LiteralCode> literals;  // in plan order
  std::vector<Value> consts;
  HeadCode head;
  int num_vars = 0;
  double plan_cost = 0.0;

  // Human-readable listing ("00 PROBE a0 price(A, P) index(0) ...").
  std::string Dump(const Rule& rule) const;
};

// The compiled form of a chain-accelerated rule (see ChainAccelerator):
// the head-tuple unification plan plus the guard projection that keys the
// allowed-set cache. Guards only mention the head positions listed in
// guard_projection, so tuples agreeing on those positions share one
// guard-allowed set - the VM caches per projection instead of per tuple.
struct ChainProgram {
  PredicateId pred = 0;
  Rational step;  // signed: +c walks into the future of the timeline
  std::vector<size_t> positive_guards;  // rule body indices
  std::vector<size_t> negated_guards;
  std::vector<UnifyStep> unify;  // over head argument positions
  std::vector<Value> consts;
  // Head positions whose values guards can observe, ascending.
  std::vector<size_t> guard_projection;
  int num_vars = 0;

  std::string Dump(const Rule& rule) const;
};

}  // namespace dmtl

#endif  // DMTL_EVAL_BYTECODE_H_
