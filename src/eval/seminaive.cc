#include "src/eval/seminaive.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <variant>

#include "src/analysis/safety.h"
#include "src/analysis/stratifier.h"
#include "src/common/arena.h"
#include "src/common/fault_injector.h"
#include "src/common/thread_pool.h"
#include "src/temporal/dense.h"
#include "src/eval/aggregate_eval.h"
#include "src/eval/chain_accel.h"
#include "src/eval/incremental.h"
#include "src/eval/op_memo.h"
#include "src/eval/operators.h"
#include "src/eval/rule_eval.h"
#include "src/eval/vm.h"

namespace dmtl {

namespace {

// Sink emissions between guard checks. Covers every unbounded emission
// loop - notably chain-accelerator walks, which emit point-by-point through
// EmitOne - so a divergent rule observes a deadline within ~256 emissions.
constexpr uint64_t kSinkGuardStrideMask = 255;

// One compiled rule: either a plain evaluator (with an optional chain
// acceleration description) or an aggregate evaluator.
struct CompiledRule {
  std::variant<RuleEvaluator, AggregateEvaluator> eval;
  std::optional<ChainAccelerator::ChainInfo> chain;

  bool is_aggregate() const {
    return std::holds_alternative<AggregateEvaluator>(eval);
  }
  const Rule& rule() const {
    return is_aggregate() ? std::get<AggregateEvaluator>(eval).rule()
                          : std::get<RuleEvaluator>(eval).rule();
  }
};

// Inserts derived extents (clamped to the horizon window) and accumulates
// newly covered portions into the delta. Single-writer: this is the only
// path that mutates the shared database, both in sequential evaluation and
// as the barrier-merge step of parallel rounds.
class Sink {
 public:
  Sink(Database* db, Database* next_delta, const Interval& window,
       const EngineOptions& options, EngineStats* stats,
       const ExecutionGuard* guard)
      : db_(db),
        next_delta_(next_delta),
        window_(window),
        options_(options),
        stats_(stats),
        guard_(guard) {}

  // Bulk emission: one window clamp (the horizon is a single interval, so
  // the clip is the fast Intersect(Interval) overload), one coalescing
  // merge into the store, one delta recording - no per-interval
  // IntervalSet temporaries.
  Status Emit(PredicateId pred, const Tuple& tuple,
              const IntervalSet& extent) {
    IntervalSet clamped = extent.Intersect(window_);
    if (clamped.IsEmpty()) return Status::Ok();
    return Record(pred, tuple, db_->InsertSet(pred, tuple, clamped));
  }

  Result<bool> EmitOne(PredicateId pred, const Tuple& tuple,
                       const Interval& iv) {
    // Two intervals intersect to at most one interval: clip without any
    // IntervalSet temporary.
    auto part = iv.Intersect(window_);
    if (!part.has_value()) return false;
    IntervalSet fresh = db_->Insert(pred, tuple, *part);
    bool any_new = !fresh.IsEmpty();
    DMTL_RETURN_IF_ERROR(Record(pred, tuple, fresh));
    return any_new;
  }

  // Provenance context: which rule is emitting, in which round.
  void SetContext(size_t rule_index, size_t round) {
    current_rule_ = rule_index;
    current_round_ = round;
  }

 private:
  // Accounts the newly covered portion of an insertion: stats, next-round
  // delta, provenance, then guard/budget checks. The delta is recorded
  // *before* any check can fail so the rollback (SubtractCoverage of the
  // round delta) always covers exactly what reached the store.
  Status Record(PredicateId pred, const Tuple& tuple,
                const IntervalSet& fresh) {
    if (fresh.IsEmpty()) return Status::Ok();
    stats_->derived_intervals += fresh.size();
    try {
      next_delta_->InsertSet(pred, tuple, fresh);
    } catch (...) {
      // The paired store insert already happened; undo it so the round
      // delta stays an exact record of the store's round growth.
      db_->SubtractCoverage(pred, tuple, fresh);
      throw;
    }
    if (options_.provenance != nullptr) {
      for (const Interval& piece : fresh) {
        options_.provenance->push_back(
            {pred, tuple, piece, current_rule_, current_round_});
      }
    }
    if (guard_ != nullptr && (++emissions_ & kSinkGuardStrideMask) == 0) {
      DMTL_RETURN_IF_ERROR(guard_->Check());
    }
    if (db_->approx_intervals() > options_.max_intervals) {
      return Status::ResourceExhausted(
          "materialization exceeded max_intervals=" +
          std::to_string(options_.max_intervals));
    }
    return Status::Ok();
  }

  Database* db_;
  Database* next_delta_;
  Interval window_;
  const EngineOptions& options_;
  EngineStats* stats_;
  const ExecutionGuard* guard_;
  size_t current_rule_ = 0;
  size_t current_round_ = 0;
  uint64_t emissions_ = 0;
};

// The thread-local counterpart of Sink for parallel rounds: derivations are
// buffered privately (in emission order) instead of touching the shared
// store. Freshness - which also drives the chain accelerator's early-stop -
// is computed against the round-start snapshot plus this task's own overlay,
// so a task sees its own emissions exactly like the sequential sink would.
// The shared database is only written when the barrier merge replays these
// buffers through the Sink above, in rule-index order.
class BufferedSink {
 public:
  struct Emission {
    PredicateId pred = 0;
    Tuple tuple;
    IntervalSet fresh;
  };

  BufferedSink(const Database* base, const Interval& window,
               const EngineOptions* options, const ExecutionGuard* guard)
      : base_(base), window_(window), options_(options), guard_(guard) {}

  Status Emit(PredicateId pred, const Tuple& tuple,
              const IntervalSet& extent) {
    IntervalSet clamped = extent.Intersect(window_);
    if (clamped.IsEmpty()) return Status::Ok();
    DMTL_ASSIGN_OR_RETURN(
        bool fresh, Buffer(pred, tuple, overlay_.InsertSet(pred, tuple, clamped)));
    (void)fresh;
    return Status::Ok();
  }

  Result<bool> EmitOne(PredicateId pred, const Tuple& tuple,
                       const Interval& iv) {
    auto part = iv.Intersect(window_);
    if (!part.has_value()) return false;
    return Buffer(pred, tuple, overlay_.Insert(pred, tuple, *part));
  }

  void AddChainExtension() { ++chain_extensions_; }
  void AddChainExtensions(size_t n) { chain_extensions_ += n; }
  size_t chain_extensions() const { return chain_extensions_; }

  // The task's private coverage overlay (own emissions of this round); the
  // VM chain kernel reads base + overlay as the walk's derived coverage.
  const Database& overlay() const { return overlay_; }

  const std::vector<Emission>& emissions() const { return emissions_; }

 private:
  // Buffers the genuinely new portion of one insertion (overlay freshness
  // minus what the round-start snapshot already covers) as a single
  // Emission. Returns whether anything new was buffered.
  Result<bool> Buffer(PredicateId pred, const Tuple& tuple,
                      IntervalSet fresh) {
    if (guard_ != nullptr && (++buffered_ & kSinkGuardStrideMask) == 0) {
      DMTL_RETURN_IF_ERROR(guard_->Check());
    }
    if (fresh.IsEmpty()) return false;
    if (const Relation* rel = base_->Find(pred)) {
      if (const IntervalSet* known = rel->Find(tuple)) {
        fresh = fresh.Subtract(*known);
      }
    }
    if (fresh.IsEmpty()) return false;
    // Coarse per-task budget guard (an upper bound: snapshot + private
    // overlay); the merge step re-checks against the real store.
    if (base_->approx_intervals() + overlay_.approx_intervals() >
        options_->max_intervals) {
      return Status::ResourceExhausted(
          "materialization exceeded max_intervals=" +
          std::to_string(options_->max_intervals));
    }
    emissions_.push_back(Emission{pred, tuple, std::move(fresh)});
    return true;
  }

  const Database* base_;
  Database overlay_;  // private coverage: own emissions of this round
  Interval window_;
  const EngineOptions* options_;
  const ExecutionGuard* guard_;
  std::vector<Emission> emissions_;
  size_t chain_extensions_ = 0;
  uint64_t buffered_ = 0;
};

// One unit of parallel work: every evaluation of one rule within a round.
// Task lists are built deterministically from round-start state, so the
// dispatch (and the rule-index merge order) is identical across runs.
struct RoundTask {
  size_t rule_id = 0;
  bool initial = false;                // full (non-delta) evaluation
  bool chain = false;                  // use the chain accelerator
  std::vector<int> delta_occurrences;  // semi-naive positions to re-evaluate
  size_t evaluations = 0;              // rule_evaluations this task accounts
};

Interval HorizonWindow(const EngineOptions& options) {
  Bound lo = options.min_time.has_value() ? Bound::Closed(*options.min_time)
                                          : Bound::Infinite();
  Bound hi = options.max_time.has_value() ? Bound::Closed(*options.max_time)
                                          : Bound::Infinite();
  auto window = Interval::Make(lo, hi);
  // Empty windows are a caller error caught at option validation below.
  return window.value_or(Interval::All());
}

// The semi-naive dispatch decision for one fixpoint round, shared verbatim
// by the sequential loop and the parallel task builder: which positive
// occurrences of `rule` must be re-evaluated against `delta`.
std::vector<int> DeltaOccurrences(const CompiledRule& c,
                                  const RuleEvaluator& eval,
                                  const std::set<PredicateId>& stratum_preds,
                                  const Database& delta) {
  std::vector<int> occurrences;
  std::vector<const RelationalAtom*> all_atoms;
  for (const BodyLiteral& lit : c.rule().body) {
    if (lit.kind != BodyLiteral::Kind::kMetric || lit.negated) continue;
    lit.metric.CollectRelationalAtoms(&all_atoms);
  }
  for (int occ = 0; occ < eval.num_positive_occurrences(); ++occ) {
    PredicateId pred = all_atoms[occ]->predicate;
    if (!stratum_preds.count(pred)) continue;
    const Relation* changed = delta.Find(pred);
    if (changed == nullptr || changed->IsEmpty()) continue;
    occurrences.push_back(occ);
  }
  return occurrences;
}

// --- dense-timeline selection (EngineOptions::enable_dense_timeline) ------
// The load-time predicate: every interval endpoint in the program (operator
// ranges, head erosion ranges), the horizon clamp, and the input database
// must be an integer the key encoding can represent. The scan is one pass
// over rules plus one over stored intervals; the kernels re-verify per
// element anyway, so this only decides whether the fast path is worth
// enabling, never correctness.

bool DenseBoundOk(const Bound& b) {
  if (b.infinite) return true;
  if (!b.value.is_integer()) return false;
  const int64_t v = b.value.numerator();
  return v <= dense::kMaxMagnitude && v >= -dense::kMaxMagnitude;
}

bool DenseIntervalOk(const Interval& iv) {
  return DenseBoundOk(iv.lo()) && DenseBoundOk(iv.hi());
}

bool DenseMetricOk(const MetricAtom& m) {
  switch (m.kind()) {
    case MetricAtom::Kind::kUnary:
      return DenseIntervalOk(m.range()) && DenseMetricOk(m.left());
    case MetricAtom::Kind::kBinary:
      return DenseIntervalOk(m.range()) && DenseMetricOk(m.left()) &&
             DenseMetricOk(m.right());
    default:
      return true;
  }
}

bool DenseTimeOk(const std::optional<Rational>& t) {
  if (!t.has_value()) return true;
  if (!t->is_integer()) return false;
  const int64_t v = t->numerator();
  return v <= dense::kMaxMagnitude && v >= -dense::kMaxMagnitude;
}

bool DenseTimelineEligible(const Program& program, const Database& db,
                           const EngineOptions& options) {
  if (!DenseTimeOk(options.min_time) || !DenseTimeOk(options.max_time)) {
    return false;
  }
  for (const Rule& rule : program.rules()) {
    for (const HeadAtom::HeadOp& op : rule.head.ops) {
      if (!DenseIntervalOk(op.range)) return false;
    }
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind == BodyLiteral::Kind::kMetric && !DenseMetricOk(lit.metric)) {
        return false;
      }
    }
  }
  for (const auto& [pred, rel] : db.relations()) {
    for (const auto& [tuple, set] : rel.data()) {
      for (const Interval& iv : set) {
        if (!DenseIntervalOk(iv)) return false;
      }
    }
  }
  return true;
}

// Runs one round's tasks across the pool and merges the buffered results
// into the shared store through `sink` in rule-index order.
Status RunRoundParallel(const std::vector<RoundTask>& tasks,
                        const std::vector<CompiledRule>& compiled,
                        const std::vector<std::unique_ptr<RuleVm>>& vms,
                        const std::vector<std::unique_ptr<OperatorMemo>>& memos,
                        const Database& db, const Database& delta,
                        const Interval& window, const EngineOptions& options,
                        ThreadPool* pool,
                        std::unordered_map<size_t, ChainAccelerator::AllowedCache>*
                            chain_caches,
                        size_t round, Sink* sink, EngineStats* stats,
                        const ExecutionGuard* guard, bool dense_timeline,
                        RoundArena* task_arenas) {
  if (tasks.empty()) return Status::Ok();

  std::vector<BufferedSink> sinks;
  sinks.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    sinks.emplace_back(&db, window, &options, guard);
  }

  DMTL_RETURN_IF_ERROR(pool->ParallelFor(
      tasks.size(), [&](size_t ti) -> Status {
        const RoundTask& t = tasks[ti];
        // Thread-locals do not follow work onto pool threads: re-arm the
        // dense-timeline flag and the ambient arena per task. Arenas are
        // per rule (each rule is at most one task per round), reused
        // across rounds and reset by the caller after the barrier merge.
        dense::DenseScope dense_scope(dense_timeline);
        ArenaScope arena_scope(
            task_arenas == nullptr ? nullptr : &task_arenas[t.rule_id]);
        BufferedSink& out = sinks[ti];
        const CompiledRule& c = compiled[t.rule_id];
        // Like the memo, the VM is owned exclusively by this rule's task
        // for the round; barriers order cross-round handoffs.
        RuleVm* vm = vms.empty() ? nullptr : vms[t.rule_id].get();
        PredicateId head = c.rule().head.predicate;
        auto emit = [&out, head](const Tuple& tuple,
                                 const IntervalSet& extent) -> Status {
          return out.Emit(head, tuple, extent);
        };
        if (t.chain) {
          if (vm != nullptr && vm->has_chain()) {
            size_t extensions = 0;
            Status status = vm->ExtendChain(
                db, delta, window, emit,
                [&](const Tuple& tuple) {
                  const IntervalSet* base = nullptr;
                  if (const Relation* rel = db.Find(head)) {
                    base = rel->Find(tuple);
                  }
                  const IntervalSet* over = nullptr;
                  if (const Relation* rel = out.overlay().Find(head)) {
                    over = rel->Find(tuple);
                  }
                  return std::make_pair(base, over);
                },
                guard, &extensions);
            out.AddChainExtensions(extensions);
            return status;
          }
          return ChainAccelerator::Extend(
              c.rule(), *c.chain, db, delta, window,
              &chain_caches->at(t.rule_id),
              [&](const Tuple& tuple, const Interval& iv) -> Result<bool> {
                out.AddChainExtension();
                return out.EmitOne(head, tuple, iv);
              });
        }
        const auto& eval = std::get<RuleEvaluator>(c.eval);
        // Memos are per-rule and each rule is one task, so the task owns
        // its memo exclusively for the round; the ParallelFor join makes
        // the barrier-time refresh single-threaded.
        OperatorMemo* memo = memos.empty() ? nullptr : memos[t.rule_id].get();
        if (t.initial) {
          return vm != nullptr
                     ? vm->Evaluate(db, nullptr, -1, emit, memo, guard)
                     : eval.Evaluate(db, nullptr, -1, emit, memo, guard);
        }
        for (int occ : t.delta_occurrences) {
          DMTL_RETURN_IF_ERROR(
              vm != nullptr
                  ? vm->Evaluate(db, &delta, occ, emit, memo, guard)
                  : eval.Evaluate(db, &delta, occ, emit, memo, guard));
        }
        return Status::Ok();
      }));

  ++stats->parallel_rounds;
  stats->parallel_tasks += tasks.size();
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    const RoundTask& t = tasks[ti];
    stats->rule_evaluations += t.evaluations;
    stats->chain_extensions += sinks[ti].chain_extensions();
    // A fault here (or a budget trip inside sink->Emit) aborts the barrier
    // with some sinks merged and others not; the caller's round rollback
    // subtracts the round delta, so the partial merge is never observable.
    DMTL_RETURN_IF_ERROR(FaultInjector::Fire("seminaive.merge"));
    sink->SetContext(t.rule_id, round);
    for (const BufferedSink::Emission& e : sinks[ti].emissions()) {
      DMTL_RETURN_IF_ERROR(sink->Emit(e.pred, e.tuple, e.fresh));
    }
    ++stats->parallel_merges;
  }
  return Status::Ok();
}

}  // namespace

std::string DerivationRecord::ToString(const Program& program) const {
  std::string out = PredicateName(predicate) + TupleToString(tuple) + "@" +
                    piece.ToString() + " by rule #" +
                    std::to_string(rule_index);
  if (rule_index < program.rules().size()) {
    out += " [" + program.rules()[rule_index].ToString() + "]";
  }
  out += " (round " + std::to_string(round) + ")";
  return out;
}

EngineOptions EngineOptions::WithEnvOverrides() const {
  EngineOptions out = *this;
  if (std::getenv("DMTL_DISABLE_RULE_COMPILE") != nullptr) {
    out.enable_rule_compile = false;
  }
  if (std::getenv("DMTL_DISABLE_DENSE_TIMELINE") != nullptr) {
    out.enable_dense_timeline = false;
  }
  if (std::getenv("DMTL_DISABLE_ARENA_ALLOC") != nullptr) {
    out.enable_arena_alloc = false;
  }
  if (std::getenv("DMTL_DISABLE_STREAMING") != nullptr) {
    out.enable_streaming = false;
  }
  return out;
}

EngineOptions EngineOptions::FromEnv() {
  return EngineOptions().WithEnvOverrides();
}

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kCompleted:
      return "completed";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kMaxIntervals:
      return "max_intervals";
    case StopReason::kMaxRounds:
      return "max_rounds";
    case StopReason::kError:
      return "error";
  }
  return "unknown";
}

std::string EngineStats::StopDiagnostics() const {
  std::string out = std::string("stop_reason=") +
                    StopReasonToString(stop_reason) +
                    " stratum=" + std::to_string(stopped_stratum) +
                    " round=" + std::to_string(stopped_round) +
                    " intervals=" + std::to_string(intervals_at_stop);
  if (rolled_back_intervals > 0) {
    out += " rolled_back=" + std::to_string(rolled_back_intervals);
  }
  out += " wall_seconds=" + std::to_string(wall_seconds);
  return out;
}

std::string EngineStats::ToString() const {
  std::string out = "strata=" + std::to_string(num_strata) +
                    " rounds=" + std::to_string(rounds) +
                    " rule_evals=" + std::to_string(rule_evaluations) +
                    " derived_intervals=" + std::to_string(derived_intervals) +
                    " chain_extensions=" + std::to_string(chain_extensions) +
                    " wall_seconds=" + std::to_string(wall_seconds);
  if (threads > 1) {
    out += " threads=" + std::to_string(threads) +
           " parallel_rounds=" + std::to_string(parallel_rounds) +
           " parallel_tasks=" + std::to_string(parallel_tasks) +
           " parallel_merges=" + std::to_string(parallel_merges) +
           " seq_rounds_forced=" + std::to_string(sequential_rounds_forced);
  }
  if (compiled_rules + vm_dispatches + vm_fallbacks > 0) {
    out += " compiled_rules=" + std::to_string(compiled_rules) +
           " vm_dispatches=" + std::to_string(vm_dispatches) +
           " vm_recompiles=" + std::to_string(vm_recompiles) +
           " vm_fallbacks=" + std::to_string(vm_fallbacks);
  }
  if (memo_hits + memo_misses + memo_refreshes + memo_invalidations > 0) {
    out += " memo_hits=" + std::to_string(memo_hits) +
           " memo_misses=" + std::to_string(memo_misses) +
           " memo_refreshes=" + std::to_string(memo_refreshes) +
           " memo_invalidations=" + std::to_string(memo_invalidations);
  }
  if (memo_intersections > 0) {
    out += " memo_intersections=" + std::to_string(memo_intersections) +
           " memo_intersect_components=" +
           std::to_string(memo_intersect_components);
  }
  out += " delta_intervals=" + std::to_string(delta_intervals) +
         " bulk_merges=" + std::to_string(bulk_merges);
  if (planner_indexes_built + planner_index_probes + planner_pruned_tuples >
      0) {
    out += " planner_indexes=" + std::to_string(planner_indexes_built) +
           " planner_probes=" + std::to_string(planner_index_probes) +
           " planner_probe_hits=" + std::to_string(planner_probe_hits) +
           " planner_pruned=" + std::to_string(planner_pruned_tuples);
  }
  if (guard_checks > 0) {
    out += " guard_checks=" + std::to_string(guard_checks);
  }
  out += std::string(" timeline=") + (timeline_dense ? "dense" : "rational");
  if (arena_bytes_reserved + arena_heap_fallbacks > 0) {
    out += " arena_reserved=" + std::to_string(arena_bytes_reserved) +
           " arena_used=" + std::to_string(arena_bytes_allocated) +
           " arena_allocs=" + std::to_string(arena_allocs) +
           " arena_heap_fallbacks=" + std::to_string(arena_heap_fallbacks);
  }
  if (stop_reason != StopReason::kCompleted) {
    out += " " + StopDiagnostics();
  }
  return out;
}

namespace {

// The chase proper. The Materialize wrapper owns the guard and finalizes
// the stop diagnostics on every exit path.
Status MaterializeImpl(const Program& program, Database* db,
                       const EngineOptions& options, EngineStats* stats,
                       const ExecutionGuard* guard) {
  if (options.min_time.has_value() && options.max_time.has_value() &&
      *options.max_time < *options.min_time) {
    return Status::InvalidArgument("max_time precedes min_time");
  }

  DMTL_RETURN_IF_ERROR(program.CheckArities());
  DMTL_RETURN_IF_ERROR(CheckSafety(program));
  DMTL_ASSIGN_OR_RETURN(Stratification strat, Stratify(program));
  stats->num_strata = strat.num_strata;

  // Parallel execution: num_threads == 1 (the default) is the historical
  // sequential engine; anything else routes rule evaluation through a pool
  // with round-barrier merges (see docs/parallelism.md).
  size_t num_threads = ThreadPool::ResolveThreads(options.num_threads);
  stats->threads = num_threads;
  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(num_threads);

  // Compile rules.
  std::vector<CompiledRule> compiled;
  compiled.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    if (rule.head.aggregate.has_value()) {
      DMTL_ASSIGN_OR_RETURN(
          AggregateEvaluator agg,
          AggregateEvaluator::Create(rule, options.enable_join_planning));
      compiled.push_back(CompiledRule{
          std::variant<RuleEvaluator, AggregateEvaluator>(std::move(agg)),
          std::nullopt});
    } else {
      DMTL_ASSIGN_OR_RETURN(
          RuleEvaluator eval,
          RuleEvaluator::Create(rule, options.enable_join_planning));
      std::optional<ChainAccelerator::ChainInfo> chain;
      if (options.enable_chain_acceleration) {
        chain = ChainAccelerator::Detect(rule, strat.predicate_stratum);
      }
      compiled.push_back(CompiledRule{
          std::variant<RuleEvaluator, AggregateEvaluator>(std::move(eval)),
          std::move(chain)});
    }
  }

  // Lower each rule's plan to a flat bytecode program run by the dispatch
  // loop. Declined rules (aggregate heads handled by AggregateEvaluator are
  // not counted; see RuleCompiler::Declines for the rest) keep the AST
  // walker - both executors emit identical derivations, so they can be
  // mixed freely within one run. DMTL_DISABLE_RULE_COMPILE in the
  // environment forces the interpreter everywhere (folded into the options
  // by Materialize's WithEnvOverrides resolution) - the hook CI's
  // compile-off lane uses to re-run the whole suite against the walker
  // without touching call sites.
  std::vector<std::unique_ptr<RuleVm>> vms;
  const bool compile_rules = options.enable_rule_compile;
  if (compile_rules) {
    vms.resize(compiled.size());
    for (size_t i = 0; i < compiled.size(); ++i) {
      if (compiled[i].is_aggregate()) continue;
      std::string why;
      vms[i] = RuleVm::Create(std::get<RuleEvaluator>(compiled[i].eval),
                              compiled[i].chain, &why);
      if (vms[i] != nullptr) {
        ++stats->compiled_rules;
      } else {
        ++stats->vm_fallbacks;
      }
    }
  }

  Interval window = HorizonWindow(options);

  // Interval-delta propagation: one operator memo per rule (exclusive to
  // that rule's task in parallel rounds). The memo hook sits in the join
  // planner's unary-chain fast path, so it is only effective with planning.
  std::vector<std::unique_ptr<OperatorMemo>> memos;
  if (options.enable_interval_deltas && options.enable_join_planning) {
    memos.resize(compiled.size());
    for (size_t i = 0; i < compiled.size(); ++i) {
      memos[i] = std::make_unique<OperatorMemo>();
    }
  }
  uint64_t bulk_merges_at_start = IntervalSet::BulkMergeCount();

  // Memory architecture (docs/ENGINE.md): select the dense integer-timeline
  // kernels when the whole run is provably integral, and arm round arenas
  // for transient IntervalSet spills. Both are opt-out engine features with
  // byte-identical output; the DMTL_DISABLE_* env hooks are folded into the
  // options once at Materialize entry so CI can re-run the full suite down
  // the Rational/heap paths.
  const bool dense_timeline = options.enable_dense_timeline &&
                              DenseTimelineEligible(program, *db, options);
  stats->timeline_dense = dense_timeline;
  const bool arena_alloc = options.enable_arena_alloc;
  RoundArena main_arena;
  // One arena per rule for parallel rounds: a rule is at most one task per
  // round, so tasks never share an arena, and reuse across rounds keeps the
  // chunks warm.
  std::vector<RoundArena> task_arenas(
      arena_alloc && pool.has_value() ? compiled.size() : 0);
  dense::DenseScope dense_scope(dense_timeline);
  ArenaScope arena_scope(arena_alloc ? &main_arena : nullptr);
  auto reset_arenas = [&] {
    if (!arena_alloc) return;
    main_arena.Reset();
    for (RoundArena& a : task_arenas) a.Reset();
  };

  stats->stratum_wall_seconds.assign(strat.num_strata, 0.0);
  for (int s = 0; s < strat.num_strata; ++s) {
    auto stratum_start = std::chrono::steady_clock::now();
    const std::vector<size_t>& rule_ids = strat.rule_strata[s];
    if (rule_ids.empty()) continue;

    // Head predicates of this stratum: the only relations that change while
    // the stratum runs, hence the only delta positions worth re-evaluating.
    std::set<PredicateId> stratum_preds;
    for (size_t id : rule_ids) {
      stratum_preds.insert(compiled[id].rule().head.predicate);
    }

    Database delta;
    Database next_delta;
    Sink sink(db, &next_delta, window, options, stats, guard);
    // Guard-allowed caches for chain rules live for the whole stratum.
    // Pre-created so concurrent tasks only ever look entries up (the map is
    // never resized while the pool runs; each task mutates its own entry).
    std::unordered_map<size_t, ChainAccelerator::AllowedCache> chain_caches;
    for (size_t id : rule_ids) {
      if (!compiled[id].is_aggregate() && compiled[id].chain.has_value()) {
        chain_caches[id];
      }
    }
    auto emit_for = [&](PredicateId pred) {
      return [&sink, pred](const Tuple& tuple,
                           const IntervalSet& extent) -> Status {
        return sink.Emit(pred, tuple, extent);
      };
    };

    // Round-barrier memo maintenance: for every grounding that grew this
    // round, refresh (or invalidate) each rule's memoized operator-path
    // outputs with just the newly covered intervals. Runs after the round's
    // merges and before the delta swap, so memo values always equal the
    // operator applied to the round-start snapshot of each leaf.
    auto refresh_memos = [&](const Database& fresh_round) {
      if (memos.empty()) return;
      for (const auto& [pred, rel] : fresh_round.relations()) {
        const Relation* live = db->Find(pred);
        if (live == nullptr) continue;
        for (const auto& [tuple, fresh] : rel.data()) {
          const IntervalSet* leaf = live->Find(tuple);
          if (leaf == nullptr) continue;
          for (size_t id : rule_ids) {
            if (memos[id] != nullptr) memos[id]->OnLeafChanged(leaf, fresh);
          }
        }
      }
    };

    // Failure handling: every round runs inside run_protected (exceptions
    // become a clean kInternal - Materialize never throws), and any round
    // failure goes through fail_round, which subtracts the round's delta
    // from the store. next_delta holds exactly the coverage inserted since
    // the last barrier, and freshly covered portions are disjoint from
    // everything stored before, so the subtraction restores the barrier
    // state precisely - whether the round died mid-rule, mid-chain-walk, or
    // halfway through a parallel barrier merge.
    size_t prov_mark =
        options.provenance != nullptr ? options.provenance->size() : 0;
    auto run_protected = [](auto&& fn) -> Status {
      try {
        return fn();
      } catch (const std::exception& e) {
        return Status::Internal(
            std::string("evaluation aborted by exception: ") + e.what());
      } catch (...) {
        return Status::Internal(
            "evaluation aborted by non-standard exception");
      }
    };
    auto fail_round = [&](Status status, size_t round) -> Status {
      stats->rolled_back_intervals += next_delta.NumIntervals();
      db->SubtractCoverage(next_delta);
      if (options.provenance != nullptr &&
          options.provenance->size() > prov_mark) {
        options.provenance->resize(prov_mark);
      }
      stats->stopped_stratum = s;
      stats->stopped_round = round;
      return status;
    };

    // Round 0: aggregate rules, then the initial full round for plain
    // rules. Aggregates run first and always sequentially - their inputs
    // are strictly below this stratum, so one evaluation is complete, and
    // the stratum's plain rules may read their output in the initial round.
    Status round_status = run_protected([&]() -> Status {
      if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
      DMTL_RETURN_IF_ERROR(FaultInjector::Fire("seminaive.round"));
      for (size_t id : rule_ids) {
        if (!compiled[id].is_aggregate()) continue;
        ++stats->rule_evaluations;
        sink.SetContext(id, 0);
        const auto& agg = std::get<AggregateEvaluator>(compiled[id].eval);
        DMTL_RETURN_IF_ERROR(
            agg.Evaluate(*db, emit_for(compiled[id].rule().head.predicate),
                         memos.empty() ? nullptr : memos[id].get()));
      }
      if (pool.has_value()) {
        std::vector<RoundTask> tasks;
        for (size_t id : rule_ids) {
          if (compiled[id].is_aggregate()) continue;
          RoundTask t;
          t.rule_id = id;
          t.initial = true;
          t.evaluations = 1;
          tasks.push_back(std::move(t));
        }
        DMTL_RETURN_IF_ERROR(
            RunRoundParallel(tasks, compiled, vms, memos, *db, delta, window,
                             options, &*pool, &chain_caches, 0, &sink, stats,
                             guard, dense_timeline,
                             task_arenas.empty() ? nullptr
                                                 : task_arenas.data()));
      } else {
        for (size_t id : rule_ids) {
          if (compiled[id].is_aggregate()) continue;
          if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
          ++stats->rule_evaluations;
          sink.SetContext(id, 0);
          OperatorMemo* memo = memos.empty() ? nullptr : memos[id].get();
          RuleVm* vm = vms.empty() ? nullptr : vms[id].get();
          const auto& eval = std::get<RuleEvaluator>(compiled[id].eval);
          auto emit = emit_for(compiled[id].rule().head.predicate);
          DMTL_RETURN_IF_ERROR(
              vm != nullptr
                  ? vm->Evaluate(*db, nullptr, -1, emit, memo, guard)
                  : eval.Evaluate(*db, nullptr, -1, emit, memo, guard));
        }
      }
      // Round-end check: a guard trip observed mid-round by a truncating
      // path (operator scans return partial unions) latches; catching it
      // here guarantees the round is discarded even if every Status path
      // happened to pass in between.
      return guard != nullptr ? guard->Check() : Status::Ok();
    });
    if (!round_status.ok()) return fail_round(std::move(round_status), 0);
    refresh_memos(next_delta);
    delta = std::move(next_delta);
    next_delta = Database();
    // Round barrier: everything transient from the finished round is dead
    // (buffered sinks destroyed, VM slots released, stored state pinned to
    // the heap), so the arenas rewind wholesale.
    reset_arenas();
    prov_mark = options.provenance != nullptr ? options.provenance->size() : 0;

    // Fixpoint rounds.
    size_t rounds = 0;
    size_t delta_size = delta.NumIntervals();
    while (delta_size > 0) {
      if (++rounds > options.max_rounds) {
        stats->stop_reason = StopReason::kMaxRounds;
        return fail_round(
            Status::ResourceExhausted("stratum " + std::to_string(s) +
                                      " exceeded max_rounds=" +
                                      std::to_string(options.max_rounds)),
            rounds);
      }
      ++stats->rounds;
      stats->delta_intervals += delta_size;

      // Work-size heuristic: at small deltas, dispatching tasks and merging
      // buffers costs more than the parallelism buys; run the round inline.
      // The option is per worker thread - the barrier merge cost grows with
      // the pool width, so the gate scales with it.
      bool use_pool =
          pool.has_value() &&
          (options.parallel_min_round_intervals == 0 ||
           delta_size >= options.parallel_min_round_intervals * num_threads);
      if (pool.has_value() && !use_pool) ++stats->sequential_rounds_forced;

      round_status = run_protected([&]() -> Status {
        if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
        DMTL_RETURN_IF_ERROR(FaultInjector::Fire("seminaive.round"));
        if (use_pool) {
          std::vector<RoundTask> tasks;
          for (size_t id : rule_ids) {
            if (compiled[id].is_aggregate()) continue;
            const CompiledRule& c = compiled[id];
            RoundTask t;
            t.rule_id = id;
            if (c.chain.has_value()) {
              t.chain = true;
              t.evaluations = 1;
            } else if (options.naive_evaluation) {
              t.initial = true;
              t.evaluations = 1;
            } else {
              const auto& eval = std::get<RuleEvaluator>(c.eval);
              t.delta_occurrences =
                  DeltaOccurrences(c, eval, stratum_preds, delta);
              if (t.delta_occurrences.empty()) continue;
              t.evaluations = t.delta_occurrences.size();
            }
            tasks.push_back(std::move(t));
          }
          DMTL_RETURN_IF_ERROR(
              RunRoundParallel(tasks, compiled, vms, memos, *db, delta,
                               window, options, &*pool, &chain_caches, rounds,
                               &sink, stats, guard, dense_timeline,
                               task_arenas.empty() ? nullptr
                                                   : task_arenas.data()));
        } else {
          for (size_t id : rule_ids) {
            if (compiled[id].is_aggregate()) continue;
            const CompiledRule& c = compiled[id];
            const auto& eval = std::get<RuleEvaluator>(c.eval);
            PredicateId head = c.rule().head.predicate;
            OperatorMemo* memo = memos.empty() ? nullptr : memos[id].get();
            RuleVm* vm = vms.empty() ? nullptr : vms[id].get();

            if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
            sink.SetContext(id, rounds);
            if (c.chain.has_value()) {
              ++stats->rule_evaluations;
              if (vm != nullptr && vm->has_chain()) {
                // Batched chain kernel: derived coverage is read straight
                // off the live store (the walk's own emissions land there
                // immediately in sequential mode, exactly like the
                // point-by-point walker's freshness signal).
                size_t extensions = 0;
                DMTL_RETURN_IF_ERROR(vm->ExtendChain(
                    *db, delta, window, emit_for(head),
                    [&](const Tuple& tuple) {
                      const IntervalSet* live = nullptr;
                      if (const Relation* rel = db->Find(head)) {
                        live = rel->Find(tuple);
                      }
                      return std::make_pair(
                          live, static_cast<const IntervalSet*>(nullptr));
                    },
                    guard, &extensions));
                stats->chain_extensions += extensions;
                continue;
              }
              DMTL_RETURN_IF_ERROR(ChainAccelerator::Extend(
                  c.rule(), *c.chain, *db, delta, window, &chain_caches[id],
                  [&](const Tuple& tuple,
                      const Interval& iv) -> Result<bool> {
                    ++stats->chain_extensions;
                    return sink.EmitOne(head, tuple, iv);
                  }));
              continue;
            }
            if (options.naive_evaluation) {
              ++stats->rule_evaluations;
              auto emit = emit_for(head);
              DMTL_RETURN_IF_ERROR(
                  vm != nullptr
                      ? vm->Evaluate(*db, nullptr, -1, emit, memo, guard)
                      : eval.Evaluate(*db, nullptr, -1, emit, memo, guard));
              continue;
            }
            // Semi-naive: one pass per positive occurrence of a predicate
            // that changed this round.
            for (int occ : DeltaOccurrences(c, eval, stratum_preds, delta)) {
              ++stats->rule_evaluations;
              auto emit = emit_for(head);
              DMTL_RETURN_IF_ERROR(
                  vm != nullptr
                      ? vm->Evaluate(*db, &delta, occ, emit, memo, guard)
                      : eval.Evaluate(*db, &delta, occ, emit, memo, guard));
            }
          }
        }
        return guard != nullptr ? guard->Check() : Status::Ok();
      });
      if (!round_status.ok()) {
        return fail_round(std::move(round_status), rounds);
      }
      refresh_memos(next_delta);
      delta = std::move(next_delta);
      next_delta = Database();
      reset_arenas();
      delta_size = delta.NumIntervals();
      prov_mark =
          options.provenance != nullptr ? options.provenance->size() : 0;
    }
    stats->stratum_wall_seconds[s] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      stratum_start)
            .count();
  }

  // Fold each rule's planner counters into the run stats (the pool has
  // joined; relaxed loads are fully ordered behind the round barriers).
  for (const CompiledRule& c : compiled) {
    const PlannerStats* ps =
        c.is_aggregate() ? std::get<AggregateEvaluator>(c.eval).planner_stats()
                         : std::get<RuleEvaluator>(c.eval).planner_stats();
    if (ps == nullptr) continue;
    stats->planner_indexes_built +=
        ps->indexes_built.load(std::memory_order_relaxed);
    stats->planner_index_probes +=
        ps->index_probes.load(std::memory_order_relaxed);
    stats->planner_probe_hits +=
        ps->index_probe_hits.load(std::memory_order_relaxed);
    stats->planner_pruned_tuples +=
        ps->envelope_pruned.load(std::memory_order_relaxed);
    stats->memo_intersections +=
        ps->memo_intersections.load(std::memory_order_relaxed);
    stats->memo_intersect_components +=
        ps->memo_intersect_components.load(std::memory_order_relaxed);
    stats->rule_plan_cost.push_back(
        ps->last_plan_cost.load(std::memory_order_relaxed));
  }

  for (const std::unique_ptr<RuleVm>& vm : vms) {
    if (vm == nullptr) continue;
    stats->vm_dispatches += vm->dispatches();
    stats->vm_recompiles += vm->compiles();
  }

  for (const std::unique_ptr<OperatorMemo>& memo : memos) {
    if (memo == nullptr) continue;
    stats->memo_hits += memo->stats().hits;
    stats->memo_misses += memo->stats().misses;
    stats->memo_refreshes += memo->stats().refreshes;
    stats->memo_invalidations += memo->stats().invalidations;
  }
  stats->bulk_merges = IntervalSet::BulkMergeCount() - bulk_merges_at_start;

  if (arena_alloc) {
    auto fold_arena = [&](const RoundArena& a) {
      stats->arena_bytes_reserved += a.bytes_reserved();
      stats->arena_bytes_allocated += a.bytes_allocated();
      stats->arena_allocs += a.allocs();
      stats->arena_heap_fallbacks += a.heap_fallbacks();
    };
    fold_arena(main_arena);
    for (const RoundArena& a : task_arenas) fold_arena(a);
  }

  return Status::Ok();
}

}  // namespace

Status Materialize(const Program& program, Database* db,
                   const EngineOptions& options_in, EngineStats* stats) {
  auto start_time = std::chrono::steady_clock::now();
  EngineStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = EngineStats();

  // The DMTL_DISABLE_* lanes are resolved exactly here (and at session
  // creation for the incremental engine); everything downstream reads the
  // option fields only.
  const EngineOptions options = options_in.WithEnvOverrides();

  // The guard lives here (not in the impl) so every exit path - including
  // validation errors before evaluation starts - finalizes diagnostics the
  // same way.
  ExecutionGuard guard(options.deadline, options.cancel_token);
  const ExecutionGuard* gptr = guard.enabled() ? &guard : nullptr;

  Status status = MaterializeImpl(program, db, options, stats, gptr);

  stats->guard_checks = guard.checks();
  stats->intervals_at_stop = db->NumIntervals();
  stats->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  if (!status.ok() && stats->stop_reason == StopReason::kCompleted) {
    switch (status.code()) {
      case StatusCode::kDeadlineExceeded:
        stats->stop_reason = StopReason::kDeadline;
        break;
      case StatusCode::kCancelled:
        stats->stop_reason = StopReason::kCancelled;
        break;
      case StatusCode::kResourceExhausted:
        stats->stop_reason = StopReason::kMaxIntervals;
        break;
      default:
        stats->stop_reason = StopReason::kError;
        break;
    }
  }
  return status;
}

// ===========================================================================
// IncrementalMaterializer: the streaming engine. Shares the file-local
// machinery above (Sink, BufferedSink, RoundTask, RunRoundParallel, the
// dense-timeline predicates) and keeps everything a batch run rebuilds per
// call - compiled rules, VMs, operator memos, the thread pool, the arenas -
// alive across watermark advances.
// ===========================================================================

namespace {

// Frontier propagation rounds before saturating to "everything below the
// watermark may differ". Programs whose expiry effects genuinely chain
// forward without bound (self-recursive [c,c] ticks) always hit the cap;
// saturation is sound (wipe more, re-derive more), and retraction cost is
// amortized across many advances, so precision here only buys speed.
constexpr int kFrontierIterCap = 64;

// Contents-driven variant of DeltaOccurrences: re-evaluate every positive
// occurrence whose predicate has coverage in `delta`, regardless of
// stratum. The batch engine filters by stratum head predicates because only
// those can change mid-stratum; a streaming seed delta also carries input
// facts and lower-strata fresh coverage, which must trigger re-evaluation
// too.
std::vector<int> DeltaOccurrencesAny(const CompiledRule& c,
                                     const RuleEvaluator& eval,
                                     const Database& delta) {
  std::vector<int> occurrences;
  std::vector<const RelationalAtom*> all_atoms;
  for (const BodyLiteral& lit : c.rule().body) {
    if (lit.kind != BodyLiteral::Kind::kMetric || lit.negated) continue;
    lit.metric.CollectRelationalAtoms(&all_atoms);
  }
  for (int occ = 0; occ < eval.num_positive_occurrences(); ++occ) {
    const Relation* changed = delta.Find(all_atoms[occ]->predicate);
    if (changed == nullptr || changed->IsEmpty()) continue;
    occurrences.push_back(occ);
  }
  return occurrences;
}

}  // namespace

class IncrementalMaterializer::Impl {
 public:
  Impl(const Program& program, Database* db, const EngineOptions& options)
      : program_(program),
        db_(db),
        options_(options),
        cur_min_(options.min_time.value_or(Rational(0))),
        watermark_(cur_min_) {}

  // One literal's temporal dependence on one relational atom: the head time
  // differs only when the atom differs somewhere in [t - hi, t - lo]. Used
  // both ways: forward (atom changed at x -> heads in x + [lo, hi] may
  // change, the retraction frontier) and backward (a head at t needs the
  // atom above t - hi, the advance band width R).
  struct LitDilation {
    PredicateId pred = 0;
    Rational lo;
    Rational hi;
    bool hi_inf = false;
  };

  Status Init() {
    // Env lanes resolve once per session, mirroring Materialize: the
    // DMTL_DISABLE_* variables are process-stable in every CI lane, so
    // latching at creation is equivalent to per-operation resolution.
    options_ = options_.WithEnvOverrides();
    if (!options_.min_time.has_value()) {
      return Status::InvalidArgument(
          "streaming requires min_time (the initial window start)");
    }
    if (options_.max_time.has_value()) {
      return Status::InvalidArgument(
          "max_time is managed by the watermark; leave it unset");
    }
    if (options_.naive_evaluation) {
      return Status::InvalidArgument(
          "naive evaluation re-derives everything and cannot run "
          "incrementally");
    }
    DMTL_RETURN_IF_ERROR(program_.CheckArities());
    DMTL_RETURN_IF_ERROR(CheckSafety(program_));
    DMTL_ASSIGN_OR_RETURN(strat_, Stratify(program_));

    const auto& rules = program_.rules();
    rule_dilations_.resize(rules.size());
    positive_preds_.resize(rules.size());
    for (size_t i = 0; i < rules.size(); ++i) {
      const Rule& rule = rules[i];
      if (!rule.head.ops.empty()) {
        return Status::InvalidArgument(
            "rule " + std::to_string(i) +
            ": head operators are not streaming-eligible (they derive "
            "outside the body match, breaking watermark finality)");
      }
      for (const BodyLiteral& lit : rule.body) {
        if (lit.kind != BodyLiteral::Kind::kMetric) continue;
        DMTL_RETURN_IF_ERROR(WalkMetric(lit.metric, Rational(0), Rational(0),
                                        false, !lit.negated, i));
      }
      if (positive_preds_[i].empty()) {
        return Status::InvalidArgument(
            "rule " + std::to_string(i) +
            ": no positive relational atom; its derivations could never be "
            "reached by a streaming delta");
      }
    }

    // Memo refresh fans fresh leaves out to rule memos. Only a rule whose
    // body references the leaf's predicate can hold an entry for it, so
    // the refresh walks this index instead of probing every rule's memo
    // for every fresh tuple (the all-memos sweep was ~20% of a steady
    // advance at paper scale).
    for (size_t i = 0; i < rules.size(); ++i) {
      for (const LitDilation& d : rule_dilations_[i]) {
        auto& ids = refresh_rules_by_pred_[d.pred];
        if (ids.empty() || ids.back() != i) ids.push_back(i);
      }
    }

    stratum_body_preds_.assign(strat_.num_strata, {});
    for (int s = 0; s < strat_.num_strata; ++s) {
      for (size_t id : strat_.rule_strata[s]) {
        stratum_body_preds_[s].insert(positive_preds_[id].begin(),
                                      positive_preds_[id].end());
      }
    }

    num_threads_ = ThreadPool::ResolveThreads(options_.num_threads);
    if (num_threads_ > 1) pool_.emplace(num_threads_);

    compiled_.reserve(rules.size());
    for (const Rule& rule : rules) {
      if (rule.head.aggregate.has_value()) {
        DMTL_ASSIGN_OR_RETURN(
            AggregateEvaluator agg,
            AggregateEvaluator::Create(rule, options_.enable_join_planning));
        compiled_.push_back(CompiledRule{
            std::variant<RuleEvaluator, AggregateEvaluator>(std::move(agg)),
            std::nullopt});
      } else {
        DMTL_ASSIGN_OR_RETURN(
            RuleEvaluator eval,
            RuleEvaluator::Create(rule, options_.enable_join_planning));
        std::optional<ChainAccelerator::ChainInfo> chain;
        if (options_.enable_chain_acceleration) {
          chain = ChainAccelerator::Detect(rule, strat_.predicate_stratum);
        }
        compiled_.push_back(CompiledRule{
            std::variant<RuleEvaluator, AggregateEvaluator>(std::move(eval)),
            std::move(chain)});
      }
    }

    const bool compile_rules = options_.enable_rule_compile;
    if (compile_rules) {
      vms_.resize(compiled_.size());
      for (size_t i = 0; i < compiled_.size(); ++i) {
        if (compiled_[i].is_aggregate()) continue;
        std::string why;
        vms_[i] = RuleVm::Create(std::get<RuleEvaluator>(compiled_[i].eval),
                                 compiled_[i].chain, &why);
        if (vms_[i] != nullptr) ++compiled_rule_count_;
        else ++vm_fallback_count_;
      }
    }
    if (options_.enable_interval_deltas && options_.enable_join_planning) {
      memos_.resize(compiled_.size());
      for (size_t i = 0; i < compiled_.size(); ++i) {
        memos_[i] = std::make_unique<OperatorMemo>();
      }
    }

    // Static half of the dense-timeline predicate; the per-input half is
    // latched in Push, the per-operation half (watermark integrality) is
    // checked when each operation starts.
    program_dense_ok_ = DenseTimeOk(options_.min_time);
    for (const Rule& rule : rules) {
      for (const HeadAtom::HeadOp& op : rule.head.ops) {
        if (!DenseIntervalOk(op.range)) program_dense_ok_ = false;
      }
      for (const BodyLiteral& lit : rule.body) {
        if (lit.kind == BodyLiteral::Kind::kMetric &&
            !DenseMetricOk(lit.metric)) {
          program_dense_ok_ = false;
        }
      }
    }
    arena_alloc_ = options_.enable_arena_alloc;
    if (arena_alloc_ && pool_.has_value()) {
      num_task_arenas_ = compiled_.size();
      task_arenas_ = std::make_unique<RoundArena[]>(num_task_arenas_);
    }
    provenance_ = options_.provenance;
    return Status::Ok();
  }

  Status Push(const Fact& fact) {
    if (needs_rebuild_) DMTL_RETURN_IF_ERROR(Heal());
    if (advanced_any_) {
      const Bound& lo = fact.interval.lo();
      const bool above =
          !lo.infinite &&
          (watermark_ < lo.value || (lo.value == watermark_ && lo.open));
      if (!above) {
        return Status::InvalidArgument(
            "streamed fact " + fact.ToString() +
            " reaches at or below the watermark " + watermark_.ToString() +
            "; push every fact at time t before advancing to t");
      }
    }
    if (!DenseIntervalOk(fact.interval)) inputs_dense_ok_ = false;
    inputs_.push_back(fact);
    IntervalSet fresh =
        db_->InsertSet(fact.predicate, fact.args, IntervalSet(fact.interval));
    if (!fresh.IsEmpty()) {
      pending_fresh_.InsertSet(fact.predicate, fact.args, fresh);
    }
    return Status::Ok();
  }

  Status Advance(const Rational& t, EngineStats* stats_out) {
    EngineStats local;
    EngineStats* stats = stats_out != nullptr ? stats_out : &local;
    *stats = EngineStats();
    auto start_time = std::chrono::steady_clock::now();
    if (needs_rebuild_) DMTL_RETURN_IF_ERROR(Heal());
    if (t < watermark_) {
      return Status::InvalidArgument("advance to " + t.ToString() +
                                     " precedes the watermark " +
                                     watermark_.ToString());
    }
    ExecutionGuard guard(options_.deadline, options_.cancel_token);
    const ExecutionGuard* gptr = guard.enabled() ? &guard : nullptr;
    const CounterBaseline base = SnapshotCounters();
    stats->num_strata = strat_.num_strata;
    stats->threads = num_threads_;

    // Memo entries may cache operator outputs over leaves the pushed inputs
    // just grew; refresh them with exactly the fresh portions (re-refreshing
    // a portion kept pending from an earlier advance is a union no-op).
    RefreshMemosWith(pending_fresh_);
    // Chain guard-allowed sets are only stable within one run: guard
    // predicates grow across advances.
    for (auto& vm : vms_) {
      if (vm != nullptr) vm->ClearChainCache();
    }

    // Seed delta: the boundary band of stored coverage plus the pending
    // input fresh portions. Any derivation landing in (W, t] has every
    // positive support atom above t - R > W - R, so each one is either old
    // (in the band) or new (pending / derived this advance) - which makes
    // occurrence-restricted evaluation against this seed complete.
    Database carry;
    if (watermark_ < t) {
      std::optional<Interval> band;
      if (reach_inf_) {
        band = Interval::AtMost(watermark_);
      } else if (Rational(0) < reach_) {
        band = Interval::Make(Bound::Open(watermark_ - reach_),
                              Bound::Closed(watermark_));
      }
      if (band.has_value()) {
        if (band_cache_valid_) {
          // Steady state: every stored piece intersecting the band was in
          // the previous advance's carry (seed or fresh), so the cached
          // band snapshot - a few live tuples - replaces a full-store scan.
          for (const auto& [pred, rel] : band_cache_.relations()) {
            for (const Relation::ScanEntry& row : rel.Rows()) {
              IntervalSet part = row.extent->Intersect(*band);
              if (!part.IsEmpty()) carry.InsertSet(pred, *row.tuple, part);
            }
          }
        } else {
          for (const auto& [pred, rel] : db_->relations()) {
            for (const Relation::ScanEntry& row : rel.Rows()) {
              if (row.extent->IsEmpty()) continue;
              // Tuples whose coverage ended before the band - the common
              // case once the stream has history - fail on one bound
              // compare instead of a full intersection.
              const Bound& hi =
                  (row.extent->begin() + (row.extent->size() - 1))->hi();
              if (!band->lo().infinite && !hi.infinite &&
                  !(band->lo().value < hi.value)) {
                continue;
              }
              IntervalSet part = row.extent->Intersect(*band);
              if (!part.IsEmpty()) carry.InsertSet(pred, *row.tuple, part);
            }
          }
        }
      }
    }
    carry.MergeFrom(pending_fresh_);

    // Evaluate only over [W, t]: the fixpoint below the watermark is final
    // (no future operators, stratified negation, pointwise aggregates), so
    // every piece of coverage this advance can add lies at or above W.
    // Heads that straddle W merge with their stored prefix on insert, and
    // negation complements / chain guard-allowed sets shrink from
    // O(history) to O(band) per event.
    Interval window = Interval::Closed(watermark_, t);
    Status status = RunStrata(window, &carry, nullptr, stats, gptr);
    FinalizeOpStats(start_time, guard, status, base, stats);
    if (!status.ok()) return status;

    // Snapshot the next advance's band from this advance's carry. Every
    // stored piece that can intersect (t - R, t] was either seeded into
    // `carry` (it intersected the old band, whose lower bound is no higher),
    // pushed (pending), or derived this run (the barrier merges fresh
    // coverage back into the carry) - so the snapshot replaces the
    // full-store scan above on the next advance. Unbounded reach keeps the
    // scan: its band has no finite lower edge to snapshot against.
    if (!reach_inf_ && Rational(0) < reach_) {
      std::optional<Interval> next_band =
          Interval::Make(Bound::Open(t - reach_), Bound::Closed(t));
      if (next_band.has_value()) {
        if (watermark_ < t) band_cache_.Clear();
        bool snapshot_complete = watermark_ < t || band_cache_valid_;
        for (const auto& [pred, rel] : carry.relations()) {
          for (const Relation::ScanEntry& row : rel.Rows()) {
            IntervalSet part = row.extent->Intersect(*next_band);
            if (!part.IsEmpty()) band_cache_.InsertSet(pred, *row.tuple, part);
          }
        }
        band_cache_valid_ = snapshot_complete;
      }
    }

    watermark_ = t;
    advanced_any_ = true;
    TrimPendingAbove(t);
    return Status::Ok();
  }

  Status Retract(const Rational& new_min, EngineStats* stats_out) {
    EngineStats local;
    EngineStats* stats = stats_out != nullptr ? stats_out : &local;
    *stats = EngineStats();
    auto start_time = std::chrono::steady_clock::now();
    if (needs_rebuild_) DMTL_RETURN_IF_ERROR(Heal());
    if (!(cur_min_ < new_min)) {
      return Status::InvalidArgument("window minimum must increase (" +
                                     cur_min_.ToString() + " -> " +
                                     new_min.ToString() + ")");
    }
    if (watermark_ < new_min) {
      return Status::InvalidArgument(
          "cannot slide the window past the watermark " +
          watermark_.ToString());
    }
    ExecutionGuard guard(options_.deadline, options_.cancel_token);
    const ExecutionGuard* gptr = guard.enabled() ? &guard : nullptr;
    const CounterBaseline base = SnapshotCounters();
    stats->num_strata = strat_.num_strata;
    stats->threads = num_threads_;

    // Per-predicate frontier: where stored coverage may differ from a cold
    // run over the clamped inputs. Seeded with the expired region for every
    // predicate and dilated through every rule's literal windows to
    // fixpoint (or saturation).
    std::unordered_map<PredicateId, IntervalSet> frontier =
        ComputeFrontier(new_min);

    // Clamp the input log so rebuilds, cold replays, and the re-insertion
    // below all see the post-slide inputs. cur_min_ moves first: a failure
    // past this point heals into the new window.
    ClampLogTo(new_min);
    cur_min_ = new_min;

    for (const auto& [pred, region] : frontier) {
      if (region.IsEmpty()) continue;
      stats->rolled_back_intervals += db_->RemoveRegion(pred, region);
    }
    if (provenance_ != nullptr) PruneProvenance(frontier);
    // Wiped regions may include surviving input coverage (the frontier is
    // region-based, not derivation-based); re-insert it raw from the log,
    // exactly like a cold run's input load - never through the sink, so no
    // provenance records appear for input coverage.
    for (const Fact& f : inputs_) {
      db_->InsertSet(f.predicate, f.args, IntervalSet(f.interval));
    }

    // Removal dropped bound indexes and may have erased tuples or whole
    // relations: every cached address is suspect. The band snapshot is
    // stale too - retraction removes coverage and re-inserts raw inputs
    // outside any carry - so the next advance falls back to a full scan.
    for (auto& memo : memos_) {
      if (memo != nullptr) memo->Clear();
    }
    for (auto& vm : vms_) {
      if (vm != nullptr) {
        vm->InvalidateCompiledState();
        vm->ClearChainCache();
      }
    }
    band_cache_ = Database();
    band_cache_valid_ = false;

    // Re-derive: full evaluation for every rule whose head frontier meets
    // the surviving window, then the usual delta fixpoint. Starting from a
    // wiped (sub-fixpoint) state, the monotone chase lands exactly on the
    // cold fixpoint.
    Interval window = Interval::Closed(cur_min_, watermark_);
    std::vector<char> full(compiled_.size(), 0);
    bool any = false;
    for (size_t i = 0; i < compiled_.size(); ++i) {
      auto it = frontier.find(compiled_[i].rule().head.predicate);
      if (it == frontier.end()) continue;
      if (!it->second.Intersect(window).IsEmpty()) {
        full[i] = 1;
        any = true;
      }
    }
    Database carry;
    Status status = any ? RunStrata(window, &carry, &full, stats, gptr)
                        : Status::Ok();
    FinalizeOpStats(start_time, guard, status, base, stats);
    return status;
  }

  // Reinstates checkpointed session state right after Init: the caller has
  // already loaded the snapshot's materialized database into db_; this
  // installs the log and watermark and reseeds the pending band so the next
  // operation behaves exactly as in the uninterrupted session. Over-seeding
  // pending coverage is sound (the delta union is idempotent and the sink
  // only records newly covered pieces); the band cache stays invalid, so
  // the first post-restore advance falls back to the full-store scan.
  Status AdoptState(std::vector<Fact> log, const Rational& watermark,
                    bool advanced) {
    if (watermark < cur_min_) {
      return Status::InvalidArgument(
          "snapshot watermark " + watermark.ToString() +
          " precedes the window minimum " + cur_min_.ToString());
    }
    inputs_ = std::move(log);
    watermark_ = watermark;
    advanced_any_ = advanced;
    inputs_dense_ok_ = true;
    for (const Fact& f : inputs_) {
      if (!DenseIntervalOk(f.interval)) inputs_dense_ok_ = false;
    }
    pending_fresh_ = Database();
    auto above = Interval::Make(Bound::Open(watermark_), Bound::Infinite());
    for (const Fact& f : inputs_) {
      if (advanced_any_) {
        // Post-advance sessions only have pending input above the
        // watermark; everything at or below it is already derived-final.
        std::optional<Interval> part;
        if (above.has_value()) part = f.interval.Intersect(*above);
        if (part.has_value()) {
          pending_fresh_.InsertSet(f.predicate, f.args, IntervalSet(*part));
        }
      } else {
        // Before the first advance, pushed facts may lie anywhere; they all
        // must seed the first band.
        pending_fresh_.InsertSet(f.predicate, f.args,
                                 IntervalSet(f.interval));
      }
    }
    return Status::Ok();
  }

  const Rational& watermark() const { return watermark_; }
  const Rational& window_min() const { return cur_min_; }
  const std::vector<Fact>& input_log() const { return inputs_; }
  bool advanced() const { return advanced_any_; }
  bool needs_rebuild() const { return needs_rebuild_; }
  bool reach_unbounded() const { return reach_inf_; }
  const Rational& forward_reach() const { return reach_; }

 private:
  // Session-cumulative counter totals across the persistent evaluators;
  // per-operation stats are deltas against a baseline taken at entry.
  struct CounterBaseline {
    uint64_t idx_built = 0, probes = 0, probe_hits = 0, pruned = 0;
    uint64_t memo_isect = 0, memo_isect_comps = 0;
    uint64_t vm_disp = 0, vm_comp = 0;
    size_t m_hits = 0, m_miss = 0, m_ref = 0, m_inv = 0;
    uint64_t bulk = 0;
  };

  Status WalkMetric(const MetricAtom& m, Rational lo, Rational hi,
                    bool hi_inf, bool positive, size_t rule_index) {
    switch (m.kind()) {
      case MetricAtom::Kind::kRelational:
        rule_dilations_[rule_index].push_back(
            {m.atom().predicate, lo, hi, hi_inf});
        if (positive) {
          positive_preds_[rule_index].insert(m.atom().predicate);
          if (hi_inf) reach_inf_ = true;
          else if (reach_ < hi) reach_ = hi;
        }
        return Status::Ok();
      case MetricAtom::Kind::kTruth:
      case MetricAtom::Kind::kFalsity:
        return Status::Ok();
      case MetricAtom::Kind::kUnary: {
        if (m.op() == MtlOp::kDiamondPlus || m.op() == MtlOp::kBoxPlus) {
          return Status::InvalidArgument(
              "rule " + std::to_string(rule_index) +
              ": future operators are not streaming-eligible (coverage "
              "below the watermark would not be final)");
        }
        const Interval& r = m.range();
        if (r.lo().infinite || r.lo().value < Rational(0)) {
          return Status::InvalidArgument(
              "rule " + std::to_string(rule_index) +
              ": operator range reaches into the future");
        }
        const Rational nlo = lo + r.lo().value;
        const bool ninf = hi_inf || r.hi().infinite;
        const Rational nhi = ninf ? hi : hi + r.hi().value;
        return WalkMetric(m.left(), nlo, nhi, ninf, positive, rule_index);
      }
      case MetricAtom::Kind::kBinary:
        return Status::InvalidArgument(
            "rule " + std::to_string(rule_index) +
            ": since/until are not streaming-eligible");
    }
    return Status::Internal("unknown metric atom kind");
  }

  // Full cold rebuild from the input log; run before the next operation
  // after a mid-operation failure left the store at a round barrier.
  Status Heal() {
    db_->Clear();
    if (provenance_ != nullptr) provenance_->clear();
    for (auto& memo : memos_) {
      if (memo != nullptr) memo->Clear();
    }
    for (auto& vm : vms_) {
      if (vm != nullptr) {
        vm->InvalidateCompiledState();
        vm->ClearChainCache();
      }
    }
    for (const Fact& f : inputs_) {
      db_->InsertSet(f.predicate, f.args, IntervalSet(f.interval));
    }
    EngineOptions o = options_;
    o.min_time = cur_min_;
    o.max_time = watermark_;
    o.provenance = provenance_;
    EngineStats heal_stats;
    DMTL_RETURN_IF_ERROR(dmtl::Materialize(program_, db_, o, &heal_stats));
    band_cache_ = Database();
    band_cache_valid_ = false;
    needs_rebuild_ = false;
    return Status::Ok();
  }

  void RefreshMemosWith(const Database& fresh) {
    if (memos_.empty()) return;
    for (const auto& [pred, rel] : fresh.relations()) {
      auto rules_it = refresh_rules_by_pred_.find(pred);
      if (rules_it == refresh_rules_by_pred_.end()) continue;
      const Relation* live = db_->Find(pred);
      if (live == nullptr) continue;
      for (const auto& [tuple, grown] : rel.data()) {
        const IntervalSet* leaf = live->Find(tuple);
        if (leaf == nullptr) continue;
        for (size_t id : rules_it->second) {
          if (memos_[id] != nullptr) memos_[id]->OnLeafChanged(leaf, grown);
        }
      }
    }
  }

  // Keeps only the (t, +inf) portions pending: everything at or below the
  // new watermark was consumed by the advance that just completed.
  void TrimPendingAbove(const Rational& t) {
    auto above = Interval::Make(Bound::Open(t), Bound::Infinite());
    Database kept;
    for (const auto& [pred, rel] : pending_fresh_.relations()) {
      for (const auto& [tuple, set] : rel.data()) {
        IntervalSet part = set.Intersect(*above);
        if (!part.IsEmpty()) kept.InsertSet(pred, tuple, part);
      }
    }
    pending_fresh_ = std::move(kept);
  }

  void ClampLogTo(const Rational& new_min) {
    std::vector<Fact> kept;
    kept.reserve(inputs_.size());
    for (const Fact& f : inputs_) {
      auto part = f.interval.Intersect(Interval::AtLeast(new_min));
      if (!part.has_value()) continue;
      Fact clamped = f;
      clamped.interval = *part;
      kept.push_back(std::move(clamped));
    }
    inputs_ = std::move(kept);
  }

  std::unordered_map<PredicateId, IntervalSet> ComputeFrontier(
      const Rational& new_min) const {
    std::unordered_map<PredicateId, IntervalSet> frontier;
    // Expired region: everything strictly below the new window minimum.
    // Every predicate starts there - inputs and derivations below new_min
    // all vanish in the cold run over clamped inputs.
    IntervalSet expired(
        *Interval::Make(Bound::Infinite(), Bound::Open(new_min)));
    for (const auto& [pred, rel] : db_->relations()) {
      (void)rel;
      frontier.emplace(pred, expired);
    }
    for (size_t i = 0; i < compiled_.size(); ++i) {
      frontier.emplace(compiled_[i].rule().head.predicate, expired);
      for (const LitDilation& d : rule_dilations_[i]) {
        frontier.emplace(d.pred, expired);
      }
    }

    // Dilate to fixpoint: a body atom differing at x can flip the head
    // anywhere in x + [lo, hi] (positive and negated literals alike - the
    // frontier tracks *may differ*, not a direction). Clipped above the
    // watermark: nothing is stored there.
    const Interval clip = Interval::AtMost(watermark_);
    bool changed = true;
    int iter = 0;
    while (changed && ++iter <= kFrontierIterCap) {
      changed = false;
      for (size_t i = 0; i < compiled_.size(); ++i) {
        IntervalSet& head =
            frontier.at(compiled_[i].rule().head.predicate);
        for (const LitDilation& d : rule_dilations_[i]) {
          const IntervalSet& body = frontier.at(d.pred);
          if (body.IsEmpty()) continue;
          auto rho = Interval::Make(
              Bound::Closed(d.lo),
              d.hi_inf ? Bound::Infinite() : Bound::Closed(d.hi));
          IntervalSet grown =
              ApplyUnaryOp(MtlOp::kDiamondMinus, *rho, body).Intersect(clip);
          if (grown.IsEmpty()) continue;
          if (!head.UnionWithDelta(grown).IsEmpty()) changed = true;
        }
      }
    }
    if (changed) {
      // Cap hit: saturate every derived predicate to the whole stored
      // range. Inputs never saturate - their coverage differs only in the
      // expired region.
      for (size_t i = 0; i < compiled_.size(); ++i) {
        frontier[compiled_[i].rule().head.predicate] = IntervalSet(clip);
      }
    }
    return frontier;
  }

  void PruneProvenance(
      const std::unordered_map<PredicateId, IntervalSet>& frontier) {
    std::vector<DerivationRecord> kept;
    kept.reserve(provenance_->size());
    for (const DerivationRecord& rec : *provenance_) {
      auto it = frontier.find(rec.predicate);
      if (it == frontier.end() || it->second.IsEmpty()) {
        kept.push_back(rec);
        continue;
      }
      IntervalSet remaining =
          IntervalSet(rec.piece).Subtract(it->second);
      for (const Interval& piece : remaining) {
        DerivationRecord r = rec;
        r.piece = piece;
        kept.push_back(std::move(r));
      }
    }
    *provenance_ = std::move(kept);
  }

  CounterBaseline SnapshotCounters() const {
    CounterBaseline b;
    for (const CompiledRule& c : compiled_) {
      const PlannerStats* ps =
          c.is_aggregate()
              ? std::get<AggregateEvaluator>(c.eval).planner_stats()
              : std::get<RuleEvaluator>(c.eval).planner_stats();
      if (ps == nullptr) continue;
      b.idx_built += ps->indexes_built.load(std::memory_order_relaxed);
      b.probes += ps->index_probes.load(std::memory_order_relaxed);
      b.probe_hits += ps->index_probe_hits.load(std::memory_order_relaxed);
      b.pruned += ps->envelope_pruned.load(std::memory_order_relaxed);
      b.memo_isect += ps->memo_intersections.load(std::memory_order_relaxed);
      b.memo_isect_comps +=
          ps->memo_intersect_components.load(std::memory_order_relaxed);
    }
    for (const auto& vm : vms_) {
      if (vm == nullptr) continue;
      b.vm_disp += vm->dispatches();
      b.vm_comp += vm->compiles();
    }
    for (const auto& memo : memos_) {
      if (memo == nullptr) continue;
      b.m_hits += memo->stats().hits;
      b.m_miss += memo->stats().misses;
      b.m_ref += memo->stats().refreshes;
      b.m_inv += memo->stats().invalidations;
    }
    b.bulk = IntervalSet::BulkMergeCount();
    return b;
  }

  void FinalizeOpStats(std::chrono::steady_clock::time_point start_time,
                       const ExecutionGuard& guard, const Status& status,
                       const CounterBaseline& base, EngineStats* stats) {
    const CounterBaseline now = SnapshotCounters();
    stats->planner_indexes_built += now.idx_built - base.idx_built;
    stats->planner_index_probes += now.probes - base.probes;
    stats->planner_probe_hits += now.probe_hits - base.probe_hits;
    stats->planner_pruned_tuples += now.pruned - base.pruned;
    stats->memo_intersections += now.memo_isect - base.memo_isect;
    stats->memo_intersect_components +=
        now.memo_isect_comps - base.memo_isect_comps;
    stats->vm_dispatches += now.vm_disp - base.vm_disp;
    stats->vm_recompiles += now.vm_comp - base.vm_comp;
    stats->memo_hits += now.m_hits - base.m_hits;
    stats->memo_misses += now.m_miss - base.m_miss;
    stats->memo_refreshes += now.m_ref - base.m_ref;
    stats->memo_invalidations += now.m_inv - base.m_inv;
    stats->bulk_merges += now.bulk - base.bulk;
    stats->compiled_rules = compiled_rule_count_;
    stats->vm_fallbacks = vm_fallback_count_;
    stats->guard_checks = guard.checks();
    stats->intervals_at_stop = db_->NumIntervals();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time)
            .count();
    if (!status.ok() && stats->stop_reason == StopReason::kCompleted) {
      switch (status.code()) {
        case StatusCode::kDeadlineExceeded:
          stats->stop_reason = StopReason::kDeadline;
          break;
        case StatusCode::kCancelled:
          stats->stop_reason = StopReason::kCancelled;
          break;
        case StatusCode::kResourceExhausted:
          stats->stop_reason = StopReason::kMaxIntervals;
          break;
        default:
          stats->stop_reason = StopReason::kError;
          break;
      }
    }
  }

  // The streaming chase over all strata. `carry` is the seed delta (band +
  // fresh inputs for an advance; empty for a retraction) and accumulates
  // every stratum's fresh coverage so later strata see it. `full_rules`
  // (retraction only) flags rules needing a full initial evaluation.
  Status RunStrata(const Interval& window, Database* carry,
                   const std::vector<char>* full_rules, EngineStats* stats,
                   const ExecutionGuard* guard) {
    const bool dense_timeline =
        options_.enable_dense_timeline &&
        program_dense_ok_ && inputs_dense_ok_ &&
        DenseTimeOk(window.lo().infinite
                        ? std::optional<Rational>()
                        : std::optional<Rational>(window.lo().value)) &&
        DenseTimeOk(window.hi().infinite
                        ? std::optional<Rational>()
                        : std::optional<Rational>(window.hi().value));
    stats->timeline_dense = dense_timeline;
    dense::DenseScope dense_scope(dense_timeline);
    ArenaScope arena_scope(arena_alloc_ ? &main_arena_ : nullptr);
    auto reset_arenas = [&] {
      if (!arena_alloc_) return;
      main_arena_.Reset();
      for (size_t i = 0; i < num_task_arenas_; ++i) task_arenas_[i].Reset();
    };
    // Sink holds a reference to its options; op_options_ outlives it.
    op_options_ = options_;
    op_options_.min_time = window.lo().infinite
                               ? std::optional<Rational>()
                               : std::optional<Rational>(window.lo().value);
    op_options_.max_time = window.hi().infinite
                               ? std::optional<Rational>()
                               : std::optional<Rational>(window.hi().value);
    uint64_t bulk_at_start = IntervalSet::BulkMergeCount();
    (void)bulk_at_start;

    stats->stratum_wall_seconds.assign(strat_.num_strata, 0.0);
    for (int s = 0; s < strat_.num_strata; ++s) {
      auto stratum_start = std::chrono::steady_clock::now();
      const std::vector<size_t>& rule_ids = strat_.rule_strata[s];
      if (rule_ids.empty()) continue;

      // Fast skip: a stratum can only derive something when one of its
      // rules is flagged for full evaluation or some positive body
      // predicate carries seed coverage. This is what keeps steady-state
      // event latency flat: most strata never wake up for a quiet tick.
      bool any_work = false;
      if (full_rules != nullptr) {
        for (size_t id : rule_ids) {
          if ((*full_rules)[id]) {
            any_work = true;
            break;
          }
        }
      }
      if (!any_work) {
        for (PredicateId p : stratum_body_preds_[s]) {
          const Relation* rel = carry->Find(p);
          if (rel != nullptr && !rel->IsEmpty()) {
            any_work = true;
            break;
          }
        }
      }
      if (!any_work) continue;

      Database delta;
      Database next_delta;
      Sink sink(db_, &next_delta, window, op_options_, stats, guard);
      std::unordered_map<size_t, ChainAccelerator::AllowedCache> chain_caches;
      for (size_t id : rule_ids) {
        if (!compiled_[id].is_aggregate() && compiled_[id].chain.has_value()) {
          chain_caches[id];
        }
      }
      auto emit_for = [&](PredicateId pred) {
        return [&sink, pred](const Tuple& tuple,
                             const IntervalSet& extent) -> Status {
          return sink.Emit(pred, tuple, extent);
        };
      };
      auto refresh_all_memos = [&](const Database& fresh_round) {
        // Unlike the batch engine (which refreshes only the running
        // stratum's rules), every rule's memo gets the fresh coverage: a
        // higher-stratum rule may hold an entry for a leaf this stratum
        // just grew, and it will read that entry in a *later advance*.
        RefreshMemosWith(fresh_round);
      };

      size_t prov_mark =
          provenance_ != nullptr ? provenance_->size() : 0;
      auto run_protected = [](auto&& fn) -> Status {
        try {
          return fn();
        } catch (const std::exception& e) {
          return Status::Internal(
              std::string("evaluation aborted by exception: ") + e.what());
        } catch (...) {
          return Status::Internal(
              "evaluation aborted by non-standard exception");
        }
      };
      auto fail_round = [&](Status status, size_t round) -> Status {
        stats->rolled_back_intervals += next_delta.NumIntervals();
        db_->SubtractCoverage(next_delta);
        if (provenance_ != nullptr && provenance_->size() > prov_mark) {
          provenance_->resize(prov_mark);
        }
        stats->stopped_stratum = s;
        stats->stopped_round = round;
        // The store sits at a sound round barrier, but no longer matches a
        // cold run at the watermark, and the rollback may have dangled
        // cached addresses; the next operation rebuilds from the log.
        needs_rebuild_ = true;
        return status;
      };

      // Executes one round's task list, inline or across the pool.
      auto run_tasks = [&](const std::vector<RoundTask>& tasks,
                           const Database& delta_db, size_t round,
                           bool use_pool) -> Status {
        if (use_pool) {
          return RunRoundParallel(
              tasks, compiled_, vms_, memos_, *db_, delta_db, window,
              op_options_, &*pool_, &chain_caches, round, &sink, stats,
              guard, dense_timeline,
              task_arenas_.get());
        }
        for (const RoundTask& t : tasks) {
          const CompiledRule& c = compiled_[t.rule_id];
          PredicateId head = c.rule().head.predicate;
          OperatorMemo* memo =
              memos_.empty() ? nullptr : memos_[t.rule_id].get();
          RuleVm* vm = vms_.empty() ? nullptr : vms_[t.rule_id].get();
          if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
          sink.SetContext(t.rule_id, round);
          stats->rule_evaluations += t.evaluations;
          if (t.chain) {
            if (vm != nullptr && vm->has_chain()) {
              size_t extensions = 0;
              DMTL_RETURN_IF_ERROR(vm->ExtendChain(
                  *db_, delta_db, window, emit_for(head),
                  [&](const Tuple& tuple) {
                    const IntervalSet* live = nullptr;
                    if (const Relation* rel = db_->Find(head)) {
                      live = rel->Find(tuple);
                    }
                    return std::make_pair(
                        live, static_cast<const IntervalSet*>(nullptr));
                  },
                  guard, &extensions));
              stats->chain_extensions += extensions;
              continue;
            }
            DMTL_RETURN_IF_ERROR(ChainAccelerator::Extend(
                c.rule(), *c.chain, *db_, delta_db, window,
                &chain_caches[t.rule_id],
                [&](const Tuple& tuple, const Interval& iv) -> Result<bool> {
                  ++stats->chain_extensions;
                  return sink.EmitOne(head, tuple, iv);
                }));
            continue;
          }
          const auto& eval = std::get<RuleEvaluator>(c.eval);
          auto emit = emit_for(head);
          if (t.initial) {
            DMTL_RETURN_IF_ERROR(
                vm != nullptr
                    ? vm->Evaluate(*db_, nullptr, -1, emit, memo, guard)
                    : eval.Evaluate(*db_, nullptr, -1, emit, memo, guard));
            continue;
          }
          for (int occ : t.delta_occurrences) {
            DMTL_RETURN_IF_ERROR(
                vm != nullptr
                    ? vm->Evaluate(*db_, &delta_db, occ, emit, memo, guard)
                    : eval.Evaluate(*db_, &delta_db, occ, emit, memo,
                                    guard));
          }
        }
        return Status::Ok();
      };

      // Round 0': aggregates first (sequential, exactly like batch round
      // 0), then the seed round for plain rules - full evaluations for
      // flagged rules, carry-driven occurrence/chain evaluation otherwise.
      std::vector<RoundTask> seed_tasks;
      bool any_initial = false;
      for (size_t id : rule_ids) {
        if (compiled_[id].is_aggregate()) continue;
        const CompiledRule& c = compiled_[id];
        RoundTask t;
        t.rule_id = id;
        if (full_rules != nullptr && (*full_rules)[id]) {
          t.initial = true;
          t.evaluations = 1;
          any_initial = true;
        } else if (c.chain.has_value()) {
          bool seeded = false;
          for (PredicateId p : positive_preds_[id]) {
            const Relation* rel = carry->Find(p);
            if (rel != nullptr && !rel->IsEmpty()) {
              seeded = true;
              break;
            }
          }
          if (!seeded) continue;
          t.chain = true;
          t.evaluations = 1;
        } else {
          const auto& eval = std::get<RuleEvaluator>(c.eval);
          t.delta_occurrences = DeltaOccurrencesAny(c, eval, *carry);
          if (t.delta_occurrences.empty()) continue;
          t.evaluations = t.delta_occurrences.size();
        }
        seed_tasks.push_back(std::move(t));
      }
      const size_t carry_size = carry->NumIntervals();
      bool seed_pool =
          pool_.has_value() &&
          (any_initial ||
           op_options_.parallel_min_round_intervals == 0 ||
           carry_size >=
               op_options_.parallel_min_round_intervals * num_threads_);

      Status round_status = run_protected([&]() -> Status {
        if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
        DMTL_RETURN_IF_ERROR(FaultInjector::Fire("seminaive.round"));
        for (size_t id : rule_ids) {
          if (!compiled_[id].is_aggregate()) continue;
          bool dirty = full_rules != nullptr && (*full_rules)[id];
          if (!dirty) {
            for (PredicateId p : positive_preds_[id]) {
              const Relation* rel = carry->Find(p);
              if (rel != nullptr && !rel->IsEmpty()) {
                dirty = true;
                break;
              }
            }
          }
          if (!dirty) continue;
          ++stats->rule_evaluations;
          sink.SetContext(id, 0);
          const auto& agg = std::get<AggregateEvaluator>(compiled_[id].eval);
          DMTL_RETURN_IF_ERROR(
              agg.Evaluate(*db_, emit_for(compiled_[id].rule().head.predicate),
                           memos_.empty() ? nullptr : memos_[id].get()));
        }
        DMTL_RETURN_IF_ERROR(run_tasks(seed_tasks, *carry, 0, seed_pool));
        return guard != nullptr ? guard->Check() : Status::Ok();
      });
      if (!round_status.ok()) return fail_round(std::move(round_status), 0);
      refresh_all_memos(next_delta);
      carry->MergeFrom(next_delta);
      delta = std::move(next_delta);
      next_delta = Database();
      reset_arenas();
      prov_mark = provenance_ != nullptr ? provenance_->size() : 0;

      // Fixpoint rounds: standard semi-naive over this stratum's fresh
      // coverage (the round deltas only ever hold stratum heads, so the
      // contents filter coincides with the batch engine's stratum filter).
      size_t rounds = 0;
      size_t delta_size = delta.NumIntervals();
      while (delta_size > 0) {
        if (++rounds > op_options_.max_rounds) {
          stats->stop_reason = StopReason::kMaxRounds;
          return fail_round(
              Status::ResourceExhausted(
                  "stratum " + std::to_string(s) + " exceeded max_rounds=" +
                  std::to_string(op_options_.max_rounds)),
              rounds);
        }
        ++stats->rounds;
        stats->delta_intervals += delta_size;
        bool use_pool =
            pool_.has_value() &&
            (op_options_.parallel_min_round_intervals == 0 ||
             delta_size >=
                 op_options_.parallel_min_round_intervals * num_threads_);
        if (pool_.has_value() && !use_pool) ++stats->sequential_rounds_forced;

        std::vector<RoundTask> tasks;
        for (size_t id : rule_ids) {
          if (compiled_[id].is_aggregate()) continue;
          const CompiledRule& c = compiled_[id];
          RoundTask t;
          t.rule_id = id;
          if (c.chain.has_value()) {
            t.chain = true;
            t.evaluations = 1;
          } else {
            const auto& eval = std::get<RuleEvaluator>(c.eval);
            t.delta_occurrences = DeltaOccurrencesAny(c, eval, delta);
            if (t.delta_occurrences.empty()) continue;
            t.evaluations = t.delta_occurrences.size();
          }
          tasks.push_back(std::move(t));
        }
        round_status = run_protected([&]() -> Status {
          if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
          DMTL_RETURN_IF_ERROR(FaultInjector::Fire("seminaive.round"));
          DMTL_RETURN_IF_ERROR(run_tasks(tasks, delta, rounds, use_pool));
          return guard != nullptr ? guard->Check() : Status::Ok();
        });
        if (!round_status.ok()) {
          return fail_round(std::move(round_status), rounds);
        }
        refresh_all_memos(next_delta);
        carry->MergeFrom(next_delta);
        delta = std::move(next_delta);
        next_delta = Database();
        reset_arenas();
        delta_size = delta.NumIntervals();
        prov_mark = provenance_ != nullptr ? provenance_->size() : 0;
      }
      stats->stratum_wall_seconds[s] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        stratum_start)
              .count();
    }
    return Status::Ok();
  }

  Program program_;
  Database* db_ = nullptr;
  EngineOptions options_;       // as given at Create (min/max untouched)
  EngineOptions op_options_;    // per-operation window; referenced by sinks
  Rational cur_min_;
  Rational watermark_;
  Stratification strat_;

  std::vector<CompiledRule> compiled_;
  std::vector<std::unique_ptr<RuleVm>> vms_;
  std::vector<std::unique_ptr<OperatorMemo>> memos_;
  std::optional<ThreadPool> pool_;
  size_t num_threads_ = 1;
  RoundArena main_arena_;
  std::unique_ptr<RoundArena[]> task_arenas_;
  size_t num_task_arenas_ = 0;
  bool arena_alloc_ = false;
  size_t compiled_rule_count_ = 0;
  size_t vm_fallback_count_ = 0;

  std::vector<std::vector<LitDilation>> rule_dilations_;
  // pred -> rules whose body references it; drives the memo refresh fan-out.
  std::unordered_map<PredicateId, std::vector<size_t>> refresh_rules_by_pred_;
  std::vector<std::set<PredicateId>> positive_preds_;
  std::vector<std::set<PredicateId>> stratum_body_preds_;
  Rational reach_;            // max forward reach R over positive atoms
  bool reach_inf_ = false;

  std::vector<Fact> inputs_;  // the log; clamped by retractions
  Database pending_fresh_;    // input fresh portions above the watermark
  // Stored coverage clipped to (watermark - reach, watermark]: the seed
  // band for the next advance, snapshotted from the previous advance's
  // carry so steady-state advances never scan the whole store. Invalid
  // after retraction or heal (those mutate coverage outside any carry).
  Database band_cache_;
  bool band_cache_valid_ = false;
  bool advanced_any_ = false;
  bool needs_rebuild_ = false;
  bool program_dense_ok_ = false;
  bool inputs_dense_ok_ = true;
  std::vector<DerivationRecord>* provenance_ = nullptr;
};

IncrementalMaterializer::IncrementalMaterializer() = default;
IncrementalMaterializer::~IncrementalMaterializer() = default;

Result<std::unique_ptr<IncrementalMaterializer>>
IncrementalMaterializer::Create(const Program& program, Database* db,
                                const EngineOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("streaming requires a database");
  }
  std::unique_ptr<IncrementalMaterializer> out(new IncrementalMaterializer());
  out->impl_ = std::make_unique<Impl>(program, db, options);
  DMTL_RETURN_IF_ERROR(out->impl_->Init());
  return out;
}

Result<std::unique_ptr<IncrementalMaterializer>>
IncrementalMaterializer::Restore(const Program& program, Database* db,
                                 const EngineOptions& options,
                                 std::vector<Fact> input_log,
                                 const Rational& watermark, bool advanced) {
  DMTL_ASSIGN_OR_RETURN(std::unique_ptr<IncrementalMaterializer> out,
                        Create(program, db, options));
  DMTL_RETURN_IF_ERROR(
      out->impl_->AdoptState(std::move(input_log), watermark, advanced));
  return out;
}

Status IncrementalMaterializer::Push(const Fact& fact) {
  return impl_->Push(fact);
}
Status IncrementalMaterializer::Advance(const Rational& t,
                                        EngineStats* stats) {
  return impl_->Advance(t, stats);
}
Status IncrementalMaterializer::Retract(const Rational& new_min,
                                        EngineStats* stats) {
  return impl_->Retract(new_min, stats);
}
const Rational& IncrementalMaterializer::watermark() const {
  return impl_->watermark();
}
const Rational& IncrementalMaterializer::window_min() const {
  return impl_->window_min();
}
const std::vector<Fact>& IncrementalMaterializer::input_log() const {
  return impl_->input_log();
}
bool IncrementalMaterializer::advanced() const { return impl_->advanced(); }
bool IncrementalMaterializer::needs_rebuild() const {
  return impl_->needs_rebuild();
}
bool IncrementalMaterializer::reach_unbounded() const {
  return impl_->reach_unbounded();
}
const Rational& IncrementalMaterializer::forward_reach() const {
  return impl_->forward_reach();
}

}  // namespace dmtl
