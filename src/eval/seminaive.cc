#include "src/eval/seminaive.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <variant>

#include "src/analysis/safety.h"
#include "src/analysis/stratifier.h"
#include "src/common/arena.h"
#include "src/common/fault_injector.h"
#include "src/common/thread_pool.h"
#include "src/temporal/dense.h"
#include "src/eval/aggregate_eval.h"
#include "src/eval/chain_accel.h"
#include "src/eval/op_memo.h"
#include "src/eval/rule_eval.h"
#include "src/eval/vm.h"

namespace dmtl {

namespace {

// Sink emissions between guard checks. Covers every unbounded emission
// loop - notably chain-accelerator walks, which emit point-by-point through
// EmitOne - so a divergent rule observes a deadline within ~256 emissions.
constexpr uint64_t kSinkGuardStrideMask = 255;

// One compiled rule: either a plain evaluator (with an optional chain
// acceleration description) or an aggregate evaluator.
struct CompiledRule {
  std::variant<RuleEvaluator, AggregateEvaluator> eval;
  std::optional<ChainAccelerator::ChainInfo> chain;

  bool is_aggregate() const {
    return std::holds_alternative<AggregateEvaluator>(eval);
  }
  const Rule& rule() const {
    return is_aggregate() ? std::get<AggregateEvaluator>(eval).rule()
                          : std::get<RuleEvaluator>(eval).rule();
  }
};

// Inserts derived extents (clamped to the horizon window) and accumulates
// newly covered portions into the delta. Single-writer: this is the only
// path that mutates the shared database, both in sequential evaluation and
// as the barrier-merge step of parallel rounds.
class Sink {
 public:
  Sink(Database* db, Database* next_delta, const Interval& window,
       const EngineOptions& options, EngineStats* stats,
       const ExecutionGuard* guard)
      : db_(db),
        next_delta_(next_delta),
        window_(window),
        options_(options),
        stats_(stats),
        guard_(guard) {}

  // Bulk emission: one window clamp (the horizon is a single interval, so
  // the clip is the fast Intersect(Interval) overload), one coalescing
  // merge into the store, one delta recording - no per-interval
  // IntervalSet temporaries.
  Status Emit(PredicateId pred, const Tuple& tuple,
              const IntervalSet& extent) {
    IntervalSet clamped = extent.Intersect(window_);
    if (clamped.IsEmpty()) return Status::Ok();
    return Record(pred, tuple, db_->InsertSet(pred, tuple, clamped));
  }

  Result<bool> EmitOne(PredicateId pred, const Tuple& tuple,
                       const Interval& iv) {
    // Two intervals intersect to at most one interval: clip without any
    // IntervalSet temporary.
    auto part = iv.Intersect(window_);
    if (!part.has_value()) return false;
    IntervalSet fresh = db_->Insert(pred, tuple, *part);
    bool any_new = !fresh.IsEmpty();
    DMTL_RETURN_IF_ERROR(Record(pred, tuple, fresh));
    return any_new;
  }

  // Provenance context: which rule is emitting, in which round.
  void SetContext(size_t rule_index, size_t round) {
    current_rule_ = rule_index;
    current_round_ = round;
  }

 private:
  // Accounts the newly covered portion of an insertion: stats, next-round
  // delta, provenance, then guard/budget checks. The delta is recorded
  // *before* any check can fail so the rollback (SubtractCoverage of the
  // round delta) always covers exactly what reached the store.
  Status Record(PredicateId pred, const Tuple& tuple,
                const IntervalSet& fresh) {
    if (fresh.IsEmpty()) return Status::Ok();
    stats_->derived_intervals += fresh.size();
    try {
      next_delta_->InsertSet(pred, tuple, fresh);
    } catch (...) {
      // The paired store insert already happened; undo it so the round
      // delta stays an exact record of the store's round growth.
      db_->SubtractCoverage(pred, tuple, fresh);
      throw;
    }
    if (options_.provenance != nullptr) {
      for (const Interval& piece : fresh) {
        options_.provenance->push_back(
            {pred, tuple, piece, current_rule_, current_round_});
      }
    }
    if (guard_ != nullptr && (++emissions_ & kSinkGuardStrideMask) == 0) {
      DMTL_RETURN_IF_ERROR(guard_->Check());
    }
    if (db_->approx_intervals() > options_.max_intervals) {
      return Status::ResourceExhausted(
          "materialization exceeded max_intervals=" +
          std::to_string(options_.max_intervals));
    }
    return Status::Ok();
  }

  Database* db_;
  Database* next_delta_;
  Interval window_;
  const EngineOptions& options_;
  EngineStats* stats_;
  const ExecutionGuard* guard_;
  size_t current_rule_ = 0;
  size_t current_round_ = 0;
  uint64_t emissions_ = 0;
};

// The thread-local counterpart of Sink for parallel rounds: derivations are
// buffered privately (in emission order) instead of touching the shared
// store. Freshness - which also drives the chain accelerator's early-stop -
// is computed against the round-start snapshot plus this task's own overlay,
// so a task sees its own emissions exactly like the sequential sink would.
// The shared database is only written when the barrier merge replays these
// buffers through the Sink above, in rule-index order.
class BufferedSink {
 public:
  struct Emission {
    PredicateId pred = 0;
    Tuple tuple;
    IntervalSet fresh;
  };

  BufferedSink(const Database* base, const Interval& window,
               const EngineOptions* options, const ExecutionGuard* guard)
      : base_(base), window_(window), options_(options), guard_(guard) {}

  Status Emit(PredicateId pred, const Tuple& tuple,
              const IntervalSet& extent) {
    IntervalSet clamped = extent.Intersect(window_);
    if (clamped.IsEmpty()) return Status::Ok();
    DMTL_ASSIGN_OR_RETURN(
        bool fresh, Buffer(pred, tuple, overlay_.InsertSet(pred, tuple, clamped)));
    (void)fresh;
    return Status::Ok();
  }

  Result<bool> EmitOne(PredicateId pred, const Tuple& tuple,
                       const Interval& iv) {
    auto part = iv.Intersect(window_);
    if (!part.has_value()) return false;
    return Buffer(pred, tuple, overlay_.Insert(pred, tuple, *part));
  }

  void AddChainExtension() { ++chain_extensions_; }
  void AddChainExtensions(size_t n) { chain_extensions_ += n; }
  size_t chain_extensions() const { return chain_extensions_; }

  // The task's private coverage overlay (own emissions of this round); the
  // VM chain kernel reads base + overlay as the walk's derived coverage.
  const Database& overlay() const { return overlay_; }

  const std::vector<Emission>& emissions() const { return emissions_; }

 private:
  // Buffers the genuinely new portion of one insertion (overlay freshness
  // minus what the round-start snapshot already covers) as a single
  // Emission. Returns whether anything new was buffered.
  Result<bool> Buffer(PredicateId pred, const Tuple& tuple,
                      IntervalSet fresh) {
    if (guard_ != nullptr && (++buffered_ & kSinkGuardStrideMask) == 0) {
      DMTL_RETURN_IF_ERROR(guard_->Check());
    }
    if (fresh.IsEmpty()) return false;
    if (const Relation* rel = base_->Find(pred)) {
      if (const IntervalSet* known = rel->Find(tuple)) {
        fresh = fresh.Subtract(*known);
      }
    }
    if (fresh.IsEmpty()) return false;
    // Coarse per-task budget guard (an upper bound: snapshot + private
    // overlay); the merge step re-checks against the real store.
    if (base_->approx_intervals() + overlay_.approx_intervals() >
        options_->max_intervals) {
      return Status::ResourceExhausted(
          "materialization exceeded max_intervals=" +
          std::to_string(options_->max_intervals));
    }
    emissions_.push_back(Emission{pred, tuple, std::move(fresh)});
    return true;
  }

  const Database* base_;
  Database overlay_;  // private coverage: own emissions of this round
  Interval window_;
  const EngineOptions* options_;
  const ExecutionGuard* guard_;
  std::vector<Emission> emissions_;
  size_t chain_extensions_ = 0;
  uint64_t buffered_ = 0;
};

// One unit of parallel work: every evaluation of one rule within a round.
// Task lists are built deterministically from round-start state, so the
// dispatch (and the rule-index merge order) is identical across runs.
struct RoundTask {
  size_t rule_id = 0;
  bool initial = false;                // full (non-delta) evaluation
  bool chain = false;                  // use the chain accelerator
  std::vector<int> delta_occurrences;  // semi-naive positions to re-evaluate
  size_t evaluations = 0;              // rule_evaluations this task accounts
};

Interval HorizonWindow(const EngineOptions& options) {
  Bound lo = options.min_time.has_value() ? Bound::Closed(*options.min_time)
                                          : Bound::Infinite();
  Bound hi = options.max_time.has_value() ? Bound::Closed(*options.max_time)
                                          : Bound::Infinite();
  auto window = Interval::Make(lo, hi);
  // Empty windows are a caller error caught at option validation below.
  return window.value_or(Interval::All());
}

// The semi-naive dispatch decision for one fixpoint round, shared verbatim
// by the sequential loop and the parallel task builder: which positive
// occurrences of `rule` must be re-evaluated against `delta`.
std::vector<int> DeltaOccurrences(const CompiledRule& c,
                                  const RuleEvaluator& eval,
                                  const std::set<PredicateId>& stratum_preds,
                                  const Database& delta) {
  std::vector<int> occurrences;
  std::vector<const RelationalAtom*> all_atoms;
  for (const BodyLiteral& lit : c.rule().body) {
    if (lit.kind != BodyLiteral::Kind::kMetric || lit.negated) continue;
    lit.metric.CollectRelationalAtoms(&all_atoms);
  }
  for (int occ = 0; occ < eval.num_positive_occurrences(); ++occ) {
    PredicateId pred = all_atoms[occ]->predicate;
    if (!stratum_preds.count(pred)) continue;
    const Relation* changed = delta.Find(pred);
    if (changed == nullptr || changed->IsEmpty()) continue;
    occurrences.push_back(occ);
  }
  return occurrences;
}

// --- dense-timeline selection (EngineOptions::enable_dense_timeline) ------
// The load-time predicate: every interval endpoint in the program (operator
// ranges, head erosion ranges), the horizon clamp, and the input database
// must be an integer the key encoding can represent. The scan is one pass
// over rules plus one over stored intervals; the kernels re-verify per
// element anyway, so this only decides whether the fast path is worth
// enabling, never correctness.

bool DenseBoundOk(const Bound& b) {
  if (b.infinite) return true;
  if (!b.value.is_integer()) return false;
  const int64_t v = b.value.numerator();
  return v <= dense::kMaxMagnitude && v >= -dense::kMaxMagnitude;
}

bool DenseIntervalOk(const Interval& iv) {
  return DenseBoundOk(iv.lo()) && DenseBoundOk(iv.hi());
}

bool DenseMetricOk(const MetricAtom& m) {
  switch (m.kind()) {
    case MetricAtom::Kind::kUnary:
      return DenseIntervalOk(m.range()) && DenseMetricOk(m.left());
    case MetricAtom::Kind::kBinary:
      return DenseIntervalOk(m.range()) && DenseMetricOk(m.left()) &&
             DenseMetricOk(m.right());
    default:
      return true;
  }
}

bool DenseTimeOk(const std::optional<Rational>& t) {
  if (!t.has_value()) return true;
  if (!t->is_integer()) return false;
  const int64_t v = t->numerator();
  return v <= dense::kMaxMagnitude && v >= -dense::kMaxMagnitude;
}

bool DenseTimelineEligible(const Program& program, const Database& db,
                           const EngineOptions& options) {
  if (!DenseTimeOk(options.min_time) || !DenseTimeOk(options.max_time)) {
    return false;
  }
  for (const Rule& rule : program.rules()) {
    for (const HeadAtom::HeadOp& op : rule.head.ops) {
      if (!DenseIntervalOk(op.range)) return false;
    }
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind == BodyLiteral::Kind::kMetric && !DenseMetricOk(lit.metric)) {
        return false;
      }
    }
  }
  for (const auto& [pred, rel] : db.relations()) {
    for (const auto& [tuple, set] : rel.data()) {
      for (const Interval& iv : set) {
        if (!DenseIntervalOk(iv)) return false;
      }
    }
  }
  return true;
}

// Runs one round's tasks across the pool and merges the buffered results
// into the shared store through `sink` in rule-index order.
Status RunRoundParallel(const std::vector<RoundTask>& tasks,
                        const std::vector<CompiledRule>& compiled,
                        const std::vector<std::unique_ptr<RuleVm>>& vms,
                        const std::vector<std::unique_ptr<OperatorMemo>>& memos,
                        const Database& db, const Database& delta,
                        const Interval& window, const EngineOptions& options,
                        ThreadPool* pool,
                        std::unordered_map<size_t, ChainAccelerator::AllowedCache>*
                            chain_caches,
                        size_t round, Sink* sink, EngineStats* stats,
                        const ExecutionGuard* guard, bool dense_timeline,
                        RoundArena* task_arenas) {
  if (tasks.empty()) return Status::Ok();

  std::vector<BufferedSink> sinks;
  sinks.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    sinks.emplace_back(&db, window, &options, guard);
  }

  DMTL_RETURN_IF_ERROR(pool->ParallelFor(
      tasks.size(), [&](size_t ti) -> Status {
        const RoundTask& t = tasks[ti];
        // Thread-locals do not follow work onto pool threads: re-arm the
        // dense-timeline flag and the ambient arena per task. Arenas are
        // per rule (each rule is at most one task per round), reused
        // across rounds and reset by the caller after the barrier merge.
        dense::DenseScope dense_scope(dense_timeline);
        ArenaScope arena_scope(
            task_arenas == nullptr ? nullptr : &task_arenas[t.rule_id]);
        BufferedSink& out = sinks[ti];
        const CompiledRule& c = compiled[t.rule_id];
        // Like the memo, the VM is owned exclusively by this rule's task
        // for the round; barriers order cross-round handoffs.
        RuleVm* vm = vms.empty() ? nullptr : vms[t.rule_id].get();
        PredicateId head = c.rule().head.predicate;
        auto emit = [&out, head](const Tuple& tuple,
                                 const IntervalSet& extent) -> Status {
          return out.Emit(head, tuple, extent);
        };
        if (t.chain) {
          if (vm != nullptr && vm->has_chain()) {
            size_t extensions = 0;
            Status status = vm->ExtendChain(
                db, delta, window, emit,
                [&](const Tuple& tuple) {
                  const IntervalSet* base = nullptr;
                  if (const Relation* rel = db.Find(head)) {
                    base = rel->Find(tuple);
                  }
                  const IntervalSet* over = nullptr;
                  if (const Relation* rel = out.overlay().Find(head)) {
                    over = rel->Find(tuple);
                  }
                  return std::make_pair(base, over);
                },
                guard, &extensions);
            out.AddChainExtensions(extensions);
            return status;
          }
          return ChainAccelerator::Extend(
              c.rule(), *c.chain, db, delta, window,
              &chain_caches->at(t.rule_id),
              [&](const Tuple& tuple, const Interval& iv) -> Result<bool> {
                out.AddChainExtension();
                return out.EmitOne(head, tuple, iv);
              });
        }
        const auto& eval = std::get<RuleEvaluator>(c.eval);
        // Memos are per-rule and each rule is one task, so the task owns
        // its memo exclusively for the round; the ParallelFor join makes
        // the barrier-time refresh single-threaded.
        OperatorMemo* memo = memos.empty() ? nullptr : memos[t.rule_id].get();
        if (t.initial) {
          return vm != nullptr
                     ? vm->Evaluate(db, nullptr, -1, emit, memo, guard)
                     : eval.Evaluate(db, nullptr, -1, emit, memo, guard);
        }
        for (int occ : t.delta_occurrences) {
          DMTL_RETURN_IF_ERROR(
              vm != nullptr
                  ? vm->Evaluate(db, &delta, occ, emit, memo, guard)
                  : eval.Evaluate(db, &delta, occ, emit, memo, guard));
        }
        return Status::Ok();
      }));

  ++stats->parallel_rounds;
  stats->parallel_tasks += tasks.size();
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    const RoundTask& t = tasks[ti];
    stats->rule_evaluations += t.evaluations;
    stats->chain_extensions += sinks[ti].chain_extensions();
    // A fault here (or a budget trip inside sink->Emit) aborts the barrier
    // with some sinks merged and others not; the caller's round rollback
    // subtracts the round delta, so the partial merge is never observable.
    DMTL_RETURN_IF_ERROR(FaultInjector::Fire("seminaive.merge"));
    sink->SetContext(t.rule_id, round);
    for (const BufferedSink::Emission& e : sinks[ti].emissions()) {
      DMTL_RETURN_IF_ERROR(sink->Emit(e.pred, e.tuple, e.fresh));
    }
    ++stats->parallel_merges;
  }
  return Status::Ok();
}

}  // namespace

std::string DerivationRecord::ToString(const Program& program) const {
  std::string out = PredicateName(predicate) + TupleToString(tuple) + "@" +
                    piece.ToString() + " by rule #" +
                    std::to_string(rule_index);
  if (rule_index < program.rules().size()) {
    out += " [" + program.rules()[rule_index].ToString() + "]";
  }
  out += " (round " + std::to_string(round) + ")";
  return out;
}

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kCompleted:
      return "completed";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kMaxIntervals:
      return "max_intervals";
    case StopReason::kMaxRounds:
      return "max_rounds";
    case StopReason::kError:
      return "error";
  }
  return "unknown";
}

std::string EngineStats::StopDiagnostics() const {
  std::string out = std::string("stop_reason=") +
                    StopReasonToString(stop_reason) +
                    " stratum=" + std::to_string(stopped_stratum) +
                    " round=" + std::to_string(stopped_round) +
                    " intervals=" + std::to_string(intervals_at_stop);
  if (rolled_back_intervals > 0) {
    out += " rolled_back=" + std::to_string(rolled_back_intervals);
  }
  out += " wall_seconds=" + std::to_string(wall_seconds);
  return out;
}

std::string EngineStats::ToString() const {
  std::string out = "strata=" + std::to_string(num_strata) +
                    " rounds=" + std::to_string(rounds) +
                    " rule_evals=" + std::to_string(rule_evaluations) +
                    " derived_intervals=" + std::to_string(derived_intervals) +
                    " chain_extensions=" + std::to_string(chain_extensions) +
                    " wall_seconds=" + std::to_string(wall_seconds);
  if (threads > 1) {
    out += " threads=" + std::to_string(threads) +
           " parallel_rounds=" + std::to_string(parallel_rounds) +
           " parallel_tasks=" + std::to_string(parallel_tasks) +
           " parallel_merges=" + std::to_string(parallel_merges) +
           " seq_rounds_forced=" + std::to_string(sequential_rounds_forced);
  }
  if (compiled_rules + vm_dispatches + vm_fallbacks > 0) {
    out += " compiled_rules=" + std::to_string(compiled_rules) +
           " vm_dispatches=" + std::to_string(vm_dispatches) +
           " vm_recompiles=" + std::to_string(vm_recompiles) +
           " vm_fallbacks=" + std::to_string(vm_fallbacks);
  }
  if (memo_hits + memo_misses + memo_refreshes + memo_invalidations > 0) {
    out += " memo_hits=" + std::to_string(memo_hits) +
           " memo_misses=" + std::to_string(memo_misses) +
           " memo_refreshes=" + std::to_string(memo_refreshes) +
           " memo_invalidations=" + std::to_string(memo_invalidations);
  }
  out += " delta_intervals=" + std::to_string(delta_intervals) +
         " bulk_merges=" + std::to_string(bulk_merges);
  if (planner_indexes_built + planner_index_probes + planner_pruned_tuples >
      0) {
    out += " planner_indexes=" + std::to_string(planner_indexes_built) +
           " planner_probes=" + std::to_string(planner_index_probes) +
           " planner_probe_hits=" + std::to_string(planner_probe_hits) +
           " planner_pruned=" + std::to_string(planner_pruned_tuples);
  }
  if (guard_checks > 0) {
    out += " guard_checks=" + std::to_string(guard_checks);
  }
  out += std::string(" timeline=") + (timeline_dense ? "dense" : "rational");
  if (arena_bytes_reserved + arena_heap_fallbacks > 0) {
    out += " arena_reserved=" + std::to_string(arena_bytes_reserved) +
           " arena_used=" + std::to_string(arena_bytes_allocated) +
           " arena_allocs=" + std::to_string(arena_allocs) +
           " arena_heap_fallbacks=" + std::to_string(arena_heap_fallbacks);
  }
  if (stop_reason != StopReason::kCompleted) {
    out += " " + StopDiagnostics();
  }
  return out;
}

namespace {

// The chase proper. The Materialize wrapper owns the guard and finalizes
// the stop diagnostics on every exit path.
Status MaterializeImpl(const Program& program, Database* db,
                       const EngineOptions& options, EngineStats* stats,
                       const ExecutionGuard* guard) {
  if (options.min_time.has_value() && options.max_time.has_value() &&
      *options.max_time < *options.min_time) {
    return Status::InvalidArgument("max_time precedes min_time");
  }

  DMTL_RETURN_IF_ERROR(program.CheckArities());
  DMTL_RETURN_IF_ERROR(CheckSafety(program));
  DMTL_ASSIGN_OR_RETURN(Stratification strat, Stratify(program));
  stats->num_strata = strat.num_strata;

  // Parallel execution: num_threads == 1 (the default) is the historical
  // sequential engine; anything else routes rule evaluation through a pool
  // with round-barrier merges (see docs/parallelism.md).
  size_t num_threads = ThreadPool::ResolveThreads(options.num_threads);
  stats->threads = num_threads;
  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(num_threads);

  // Compile rules.
  std::vector<CompiledRule> compiled;
  compiled.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    if (rule.head.aggregate.has_value()) {
      DMTL_ASSIGN_OR_RETURN(
          AggregateEvaluator agg,
          AggregateEvaluator::Create(rule, options.enable_join_planning));
      compiled.push_back(CompiledRule{
          std::variant<RuleEvaluator, AggregateEvaluator>(std::move(agg)),
          std::nullopt});
    } else {
      DMTL_ASSIGN_OR_RETURN(
          RuleEvaluator eval,
          RuleEvaluator::Create(rule, options.enable_join_planning));
      std::optional<ChainAccelerator::ChainInfo> chain;
      if (options.enable_chain_acceleration) {
        chain = ChainAccelerator::Detect(rule, strat.predicate_stratum);
      }
      compiled.push_back(CompiledRule{
          std::variant<RuleEvaluator, AggregateEvaluator>(std::move(eval)),
          std::move(chain)});
    }
  }

  // Lower each rule's plan to a flat bytecode program run by the dispatch
  // loop. Declined rules (aggregate heads handled by AggregateEvaluator are
  // not counted; see RuleCompiler::Declines for the rest) keep the AST
  // walker - both executors emit identical derivations, so they can be
  // mixed freely within one run. DMTL_DISABLE_RULE_COMPILE in the
  // environment forces the interpreter everywhere - the hook CI's
  // compile-off lane uses to re-run the whole suite against the walker
  // without touching call sites.
  std::vector<std::unique_ptr<RuleVm>> vms;
  const bool compile_rules = options.enable_rule_compile &&
                             std::getenv("DMTL_DISABLE_RULE_COMPILE") == nullptr;
  if (compile_rules) {
    vms.resize(compiled.size());
    for (size_t i = 0; i < compiled.size(); ++i) {
      if (compiled[i].is_aggregate()) continue;
      std::string why;
      vms[i] = RuleVm::Create(std::get<RuleEvaluator>(compiled[i].eval),
                              compiled[i].chain, &why);
      if (vms[i] != nullptr) {
        ++stats->compiled_rules;
      } else {
        ++stats->vm_fallbacks;
      }
    }
  }

  Interval window = HorizonWindow(options);

  // Interval-delta propagation: one operator memo per rule (exclusive to
  // that rule's task in parallel rounds). The memo hook sits in the join
  // planner's unary-chain fast path, so it is only effective with planning.
  std::vector<std::unique_ptr<OperatorMemo>> memos;
  if (options.enable_interval_deltas && options.enable_join_planning) {
    memos.resize(compiled.size());
    for (size_t i = 0; i < compiled.size(); ++i) {
      memos[i] = std::make_unique<OperatorMemo>();
    }
  }
  uint64_t bulk_merges_at_start = IntervalSet::BulkMergeCount();

  // Memory architecture (docs/ENGINE.md): select the dense integer-timeline
  // kernels when the whole run is provably integral, and arm round arenas
  // for transient IntervalSet spills. Both are opt-out engine features with
  // byte-identical output; the env hooks mirror DMTL_DISABLE_RULE_COMPILE
  // so CI can re-run the full suite down the Rational/heap paths.
  const bool dense_timeline =
      options.enable_dense_timeline &&
      std::getenv("DMTL_DISABLE_DENSE_TIMELINE") == nullptr &&
      DenseTimelineEligible(program, *db, options);
  stats->timeline_dense = dense_timeline;
  const bool arena_alloc = options.enable_arena_alloc &&
                           std::getenv("DMTL_DISABLE_ARENA_ALLOC") == nullptr;
  RoundArena main_arena;
  // One arena per rule for parallel rounds: a rule is at most one task per
  // round, so tasks never share an arena, and reuse across rounds keeps the
  // chunks warm.
  std::vector<RoundArena> task_arenas(
      arena_alloc && pool.has_value() ? compiled.size() : 0);
  dense::DenseScope dense_scope(dense_timeline);
  ArenaScope arena_scope(arena_alloc ? &main_arena : nullptr);
  auto reset_arenas = [&] {
    if (!arena_alloc) return;
    main_arena.Reset();
    for (RoundArena& a : task_arenas) a.Reset();
  };

  stats->stratum_wall_seconds.assign(strat.num_strata, 0.0);
  for (int s = 0; s < strat.num_strata; ++s) {
    auto stratum_start = std::chrono::steady_clock::now();
    const std::vector<size_t>& rule_ids = strat.rule_strata[s];
    if (rule_ids.empty()) continue;

    // Head predicates of this stratum: the only relations that change while
    // the stratum runs, hence the only delta positions worth re-evaluating.
    std::set<PredicateId> stratum_preds;
    for (size_t id : rule_ids) {
      stratum_preds.insert(compiled[id].rule().head.predicate);
    }

    Database delta;
    Database next_delta;
    Sink sink(db, &next_delta, window, options, stats, guard);
    // Guard-allowed caches for chain rules live for the whole stratum.
    // Pre-created so concurrent tasks only ever look entries up (the map is
    // never resized while the pool runs; each task mutates its own entry).
    std::unordered_map<size_t, ChainAccelerator::AllowedCache> chain_caches;
    for (size_t id : rule_ids) {
      if (!compiled[id].is_aggregate() && compiled[id].chain.has_value()) {
        chain_caches[id];
      }
    }
    auto emit_for = [&](PredicateId pred) {
      return [&sink, pred](const Tuple& tuple,
                           const IntervalSet& extent) -> Status {
        return sink.Emit(pred, tuple, extent);
      };
    };

    // Round-barrier memo maintenance: for every grounding that grew this
    // round, refresh (or invalidate) each rule's memoized operator-path
    // outputs with just the newly covered intervals. Runs after the round's
    // merges and before the delta swap, so memo values always equal the
    // operator applied to the round-start snapshot of each leaf.
    auto refresh_memos = [&](const Database& fresh_round) {
      if (memos.empty()) return;
      for (const auto& [pred, rel] : fresh_round.relations()) {
        const Relation* live = db->Find(pred);
        if (live == nullptr) continue;
        for (const auto& [tuple, fresh] : rel.data()) {
          const IntervalSet* leaf = live->Find(tuple);
          if (leaf == nullptr) continue;
          for (size_t id : rule_ids) {
            if (memos[id] != nullptr) memos[id]->OnLeafChanged(leaf, fresh);
          }
        }
      }
    };

    // Failure handling: every round runs inside run_protected (exceptions
    // become a clean kInternal - Materialize never throws), and any round
    // failure goes through fail_round, which subtracts the round's delta
    // from the store. next_delta holds exactly the coverage inserted since
    // the last barrier, and freshly covered portions are disjoint from
    // everything stored before, so the subtraction restores the barrier
    // state precisely - whether the round died mid-rule, mid-chain-walk, or
    // halfway through a parallel barrier merge.
    size_t prov_mark =
        options.provenance != nullptr ? options.provenance->size() : 0;
    auto run_protected = [](auto&& fn) -> Status {
      try {
        return fn();
      } catch (const std::exception& e) {
        return Status::Internal(
            std::string("evaluation aborted by exception: ") + e.what());
      } catch (...) {
        return Status::Internal(
            "evaluation aborted by non-standard exception");
      }
    };
    auto fail_round = [&](Status status, size_t round) -> Status {
      stats->rolled_back_intervals += next_delta.NumIntervals();
      db->SubtractCoverage(next_delta);
      if (options.provenance != nullptr &&
          options.provenance->size() > prov_mark) {
        options.provenance->resize(prov_mark);
      }
      stats->stopped_stratum = s;
      stats->stopped_round = round;
      return status;
    };

    // Round 0: aggregate rules, then the initial full round for plain
    // rules. Aggregates run first and always sequentially - their inputs
    // are strictly below this stratum, so one evaluation is complete, and
    // the stratum's plain rules may read their output in the initial round.
    Status round_status = run_protected([&]() -> Status {
      if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
      DMTL_RETURN_IF_ERROR(FaultInjector::Fire("seminaive.round"));
      for (size_t id : rule_ids) {
        if (!compiled[id].is_aggregate()) continue;
        ++stats->rule_evaluations;
        sink.SetContext(id, 0);
        const auto& agg = std::get<AggregateEvaluator>(compiled[id].eval);
        DMTL_RETURN_IF_ERROR(
            agg.Evaluate(*db, emit_for(compiled[id].rule().head.predicate),
                         memos.empty() ? nullptr : memos[id].get()));
      }
      if (pool.has_value()) {
        std::vector<RoundTask> tasks;
        for (size_t id : rule_ids) {
          if (compiled[id].is_aggregate()) continue;
          RoundTask t;
          t.rule_id = id;
          t.initial = true;
          t.evaluations = 1;
          tasks.push_back(std::move(t));
        }
        DMTL_RETURN_IF_ERROR(
            RunRoundParallel(tasks, compiled, vms, memos, *db, delta, window,
                             options, &*pool, &chain_caches, 0, &sink, stats,
                             guard, dense_timeline,
                             task_arenas.empty() ? nullptr
                                                 : task_arenas.data()));
      } else {
        for (size_t id : rule_ids) {
          if (compiled[id].is_aggregate()) continue;
          if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
          ++stats->rule_evaluations;
          sink.SetContext(id, 0);
          OperatorMemo* memo = memos.empty() ? nullptr : memos[id].get();
          RuleVm* vm = vms.empty() ? nullptr : vms[id].get();
          const auto& eval = std::get<RuleEvaluator>(compiled[id].eval);
          auto emit = emit_for(compiled[id].rule().head.predicate);
          DMTL_RETURN_IF_ERROR(
              vm != nullptr
                  ? vm->Evaluate(*db, nullptr, -1, emit, memo, guard)
                  : eval.Evaluate(*db, nullptr, -1, emit, memo, guard));
        }
      }
      // Round-end check: a guard trip observed mid-round by a truncating
      // path (operator scans return partial unions) latches; catching it
      // here guarantees the round is discarded even if every Status path
      // happened to pass in between.
      return guard != nullptr ? guard->Check() : Status::Ok();
    });
    if (!round_status.ok()) return fail_round(std::move(round_status), 0);
    refresh_memos(next_delta);
    delta = std::move(next_delta);
    next_delta = Database();
    // Round barrier: everything transient from the finished round is dead
    // (buffered sinks destroyed, VM slots released, stored state pinned to
    // the heap), so the arenas rewind wholesale.
    reset_arenas();
    prov_mark = options.provenance != nullptr ? options.provenance->size() : 0;

    // Fixpoint rounds.
    size_t rounds = 0;
    size_t delta_size = delta.NumIntervals();
    while (delta_size > 0) {
      if (++rounds > options.max_rounds) {
        stats->stop_reason = StopReason::kMaxRounds;
        return fail_round(
            Status::ResourceExhausted("stratum " + std::to_string(s) +
                                      " exceeded max_rounds=" +
                                      std::to_string(options.max_rounds)),
            rounds);
      }
      ++stats->rounds;
      stats->delta_intervals += delta_size;

      // Work-size heuristic: at small deltas, dispatching tasks and merging
      // buffers costs more than the parallelism buys; run the round inline.
      // The option is per worker thread - the barrier merge cost grows with
      // the pool width, so the gate scales with it.
      bool use_pool =
          pool.has_value() &&
          (options.parallel_min_round_intervals == 0 ||
           delta_size >= options.parallel_min_round_intervals * num_threads);
      if (pool.has_value() && !use_pool) ++stats->sequential_rounds_forced;

      round_status = run_protected([&]() -> Status {
        if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
        DMTL_RETURN_IF_ERROR(FaultInjector::Fire("seminaive.round"));
        if (use_pool) {
          std::vector<RoundTask> tasks;
          for (size_t id : rule_ids) {
            if (compiled[id].is_aggregate()) continue;
            const CompiledRule& c = compiled[id];
            RoundTask t;
            t.rule_id = id;
            if (c.chain.has_value()) {
              t.chain = true;
              t.evaluations = 1;
            } else if (options.naive_evaluation) {
              t.initial = true;
              t.evaluations = 1;
            } else {
              const auto& eval = std::get<RuleEvaluator>(c.eval);
              t.delta_occurrences =
                  DeltaOccurrences(c, eval, stratum_preds, delta);
              if (t.delta_occurrences.empty()) continue;
              t.evaluations = t.delta_occurrences.size();
            }
            tasks.push_back(std::move(t));
          }
          DMTL_RETURN_IF_ERROR(
              RunRoundParallel(tasks, compiled, vms, memos, *db, delta,
                               window, options, &*pool, &chain_caches, rounds,
                               &sink, stats, guard, dense_timeline,
                               task_arenas.empty() ? nullptr
                                                   : task_arenas.data()));
        } else {
          for (size_t id : rule_ids) {
            if (compiled[id].is_aggregate()) continue;
            const CompiledRule& c = compiled[id];
            const auto& eval = std::get<RuleEvaluator>(c.eval);
            PredicateId head = c.rule().head.predicate;
            OperatorMemo* memo = memos.empty() ? nullptr : memos[id].get();
            RuleVm* vm = vms.empty() ? nullptr : vms[id].get();

            if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
            sink.SetContext(id, rounds);
            if (c.chain.has_value()) {
              ++stats->rule_evaluations;
              if (vm != nullptr && vm->has_chain()) {
                // Batched chain kernel: derived coverage is read straight
                // off the live store (the walk's own emissions land there
                // immediately in sequential mode, exactly like the
                // point-by-point walker's freshness signal).
                size_t extensions = 0;
                DMTL_RETURN_IF_ERROR(vm->ExtendChain(
                    *db, delta, window, emit_for(head),
                    [&](const Tuple& tuple) {
                      const IntervalSet* live = nullptr;
                      if (const Relation* rel = db->Find(head)) {
                        live = rel->Find(tuple);
                      }
                      return std::make_pair(
                          live, static_cast<const IntervalSet*>(nullptr));
                    },
                    guard, &extensions));
                stats->chain_extensions += extensions;
                continue;
              }
              DMTL_RETURN_IF_ERROR(ChainAccelerator::Extend(
                  c.rule(), *c.chain, *db, delta, window, &chain_caches[id],
                  [&](const Tuple& tuple,
                      const Interval& iv) -> Result<bool> {
                    ++stats->chain_extensions;
                    return sink.EmitOne(head, tuple, iv);
                  }));
              continue;
            }
            if (options.naive_evaluation) {
              ++stats->rule_evaluations;
              auto emit = emit_for(head);
              DMTL_RETURN_IF_ERROR(
                  vm != nullptr
                      ? vm->Evaluate(*db, nullptr, -1, emit, memo, guard)
                      : eval.Evaluate(*db, nullptr, -1, emit, memo, guard));
              continue;
            }
            // Semi-naive: one pass per positive occurrence of a predicate
            // that changed this round.
            for (int occ : DeltaOccurrences(c, eval, stratum_preds, delta)) {
              ++stats->rule_evaluations;
              auto emit = emit_for(head);
              DMTL_RETURN_IF_ERROR(
                  vm != nullptr
                      ? vm->Evaluate(*db, &delta, occ, emit, memo, guard)
                      : eval.Evaluate(*db, &delta, occ, emit, memo, guard));
            }
          }
        }
        return guard != nullptr ? guard->Check() : Status::Ok();
      });
      if (!round_status.ok()) {
        return fail_round(std::move(round_status), rounds);
      }
      refresh_memos(next_delta);
      delta = std::move(next_delta);
      next_delta = Database();
      reset_arenas();
      delta_size = delta.NumIntervals();
      prov_mark =
          options.provenance != nullptr ? options.provenance->size() : 0;
    }
    stats->stratum_wall_seconds[s] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      stratum_start)
            .count();
  }

  // Fold each rule's planner counters into the run stats (the pool has
  // joined; relaxed loads are fully ordered behind the round barriers).
  for (const CompiledRule& c : compiled) {
    const PlannerStats* ps =
        c.is_aggregate() ? std::get<AggregateEvaluator>(c.eval).planner_stats()
                         : std::get<RuleEvaluator>(c.eval).planner_stats();
    if (ps == nullptr) continue;
    stats->planner_indexes_built +=
        ps->indexes_built.load(std::memory_order_relaxed);
    stats->planner_index_probes +=
        ps->index_probes.load(std::memory_order_relaxed);
    stats->planner_probe_hits +=
        ps->index_probe_hits.load(std::memory_order_relaxed);
    stats->planner_pruned_tuples +=
        ps->envelope_pruned.load(std::memory_order_relaxed);
    stats->rule_plan_cost.push_back(
        ps->last_plan_cost.load(std::memory_order_relaxed));
  }

  for (const std::unique_ptr<RuleVm>& vm : vms) {
    if (vm == nullptr) continue;
    stats->vm_dispatches += vm->dispatches();
    stats->vm_recompiles += vm->compiles();
  }

  for (const std::unique_ptr<OperatorMemo>& memo : memos) {
    if (memo == nullptr) continue;
    stats->memo_hits += memo->stats().hits;
    stats->memo_misses += memo->stats().misses;
    stats->memo_refreshes += memo->stats().refreshes;
    stats->memo_invalidations += memo->stats().invalidations;
  }
  stats->bulk_merges = IntervalSet::BulkMergeCount() - bulk_merges_at_start;

  if (arena_alloc) {
    auto fold_arena = [&](const RoundArena& a) {
      stats->arena_bytes_reserved += a.bytes_reserved();
      stats->arena_bytes_allocated += a.bytes_allocated();
      stats->arena_allocs += a.allocs();
      stats->arena_heap_fallbacks += a.heap_fallbacks();
    };
    fold_arena(main_arena);
    for (const RoundArena& a : task_arenas) fold_arena(a);
  }

  return Status::Ok();
}

}  // namespace

Status Materialize(const Program& program, Database* db,
                   const EngineOptions& options, EngineStats* stats) {
  auto start_time = std::chrono::steady_clock::now();
  EngineStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = EngineStats();

  // The guard lives here (not in the impl) so every exit path - including
  // validation errors before evaluation starts - finalizes diagnostics the
  // same way.
  ExecutionGuard guard(options.deadline, options.cancel_token);
  const ExecutionGuard* gptr = guard.enabled() ? &guard : nullptr;

  Status status = MaterializeImpl(program, db, options, stats, gptr);

  stats->guard_checks = guard.checks();
  stats->intervals_at_stop = db->NumIntervals();
  stats->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  if (!status.ok() && stats->stop_reason == StopReason::kCompleted) {
    switch (status.code()) {
      case StatusCode::kDeadlineExceeded:
        stats->stop_reason = StopReason::kDeadline;
        break;
      case StatusCode::kCancelled:
        stats->stop_reason = StopReason::kCancelled;
        break;
      case StatusCode::kResourceExhausted:
        stats->stop_reason = StopReason::kMaxIntervals;
        break;
      default:
        stats->stop_reason = StopReason::kError;
        break;
    }
  }
  return status;
}

}  // namespace dmtl
