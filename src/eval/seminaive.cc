#include "src/eval/seminaive.h"

#include <chrono>
#include <set>
#include <variant>

#include "src/analysis/safety.h"
#include "src/analysis/stratifier.h"
#include "src/eval/aggregate_eval.h"
#include "src/eval/chain_accel.h"
#include "src/eval/rule_eval.h"

namespace dmtl {

namespace {

// One compiled rule: either a plain evaluator (with an optional chain
// acceleration description) or an aggregate evaluator.
struct CompiledRule {
  std::variant<RuleEvaluator, AggregateEvaluator> eval;
  std::optional<ChainAccelerator::ChainInfo> chain;

  bool is_aggregate() const {
    return std::holds_alternative<AggregateEvaluator>(eval);
  }
  const Rule& rule() const {
    return is_aggregate() ? std::get<AggregateEvaluator>(eval).rule()
                          : std::get<RuleEvaluator>(eval).rule();
  }
};

// Inserts derived extents (clamped to the horizon window) and accumulates
// newly covered portions into the delta.
class Sink {
 public:
  Sink(Database* db, Database* next_delta, const Interval& window,
       const EngineOptions& options, EngineStats* stats)
      : db_(db),
        next_delta_(next_delta),
        window_(window),
        options_(options),
        stats_(stats) {}

  Status Emit(PredicateId pred, const Tuple& tuple,
              const IntervalSet& extent) {
    IntervalSet clamped = extent.Intersect(window_);
    for (const Interval& iv : clamped) {
      DMTL_ASSIGN_OR_RETURN(bool fresh, EmitOne(pred, tuple, iv));
      (void)fresh;
    }
    return Status::Ok();
  }

  Result<bool> EmitOne(PredicateId pred, const Tuple& tuple,
                       const Interval& iv) {
    auto clipped = IntervalSet(iv).Intersect(window_);
    bool any_new = false;
    for (const Interval& part : clipped) {
      IntervalSet fresh = db_->Insert(pred, tuple, part);
      if (fresh.IsEmpty()) continue;
      any_new = true;
      stats_->derived_intervals += fresh.size();
      if (db_->approx_intervals() > options_.max_intervals) {
        return Status::ResourceExhausted(
            "materialization exceeded max_intervals=" +
            std::to_string(options_.max_intervals));
      }
      next_delta_->InsertSet(pred, tuple, fresh);
      if (options_.provenance != nullptr) {
        for (const Interval& piece : fresh) {
          options_.provenance->push_back(
              {pred, tuple, piece, current_rule_, current_round_});
        }
      }
    }
    return any_new;
  }

  // Provenance context: which rule is emitting, in which round.
  void SetContext(size_t rule_index, size_t round) {
    current_rule_ = rule_index;
    current_round_ = round;
  }

 private:
  Database* db_;
  Database* next_delta_;
  Interval window_;
  const EngineOptions& options_;
  EngineStats* stats_;
  size_t current_rule_ = 0;
  size_t current_round_ = 0;
};

Interval HorizonWindow(const EngineOptions& options) {
  Bound lo = options.min_time.has_value() ? Bound::Closed(*options.min_time)
                                          : Bound::Infinite();
  Bound hi = options.max_time.has_value() ? Bound::Closed(*options.max_time)
                                          : Bound::Infinite();
  auto window = Interval::Make(lo, hi);
  // Empty windows are a caller error caught at option validation below.
  return window.value_or(Interval::All());
}

}  // namespace

std::string DerivationRecord::ToString(const Program& program) const {
  std::string out = PredicateName(predicate) + TupleToString(tuple) + "@" +
                    piece.ToString() + " by rule #" +
                    std::to_string(rule_index);
  if (rule_index < program.rules().size()) {
    out += " [" + program.rules()[rule_index].ToString() + "]";
  }
  out += " (round " + std::to_string(round) + ")";
  return out;
}

std::string EngineStats::ToString() const {
  return "strata=" + std::to_string(num_strata) +
         " rounds=" + std::to_string(rounds) +
         " rule_evals=" + std::to_string(rule_evaluations) +
         " derived_intervals=" + std::to_string(derived_intervals) +
         " chain_extensions=" + std::to_string(chain_extensions) +
         " wall_seconds=" + std::to_string(wall_seconds);
}

Status Materialize(const Program& program, Database* db,
                   const EngineOptions& options, EngineStats* stats) {
  auto start_time = std::chrono::steady_clock::now();
  EngineStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = EngineStats();

  if (options.min_time.has_value() && options.max_time.has_value() &&
      *options.max_time < *options.min_time) {
    return Status::InvalidArgument("max_time precedes min_time");
  }

  DMTL_RETURN_IF_ERROR(program.CheckArities());
  DMTL_RETURN_IF_ERROR(CheckSafety(program));
  DMTL_ASSIGN_OR_RETURN(Stratification strat, Stratify(program));
  stats->num_strata = strat.num_strata;

  // Compile rules.
  std::vector<CompiledRule> compiled;
  compiled.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    if (rule.head.aggregate.has_value()) {
      DMTL_ASSIGN_OR_RETURN(AggregateEvaluator agg,
                            AggregateEvaluator::Create(rule));
      compiled.push_back(CompiledRule{
          std::variant<RuleEvaluator, AggregateEvaluator>(std::move(agg)),
          std::nullopt});
    } else {
      DMTL_ASSIGN_OR_RETURN(RuleEvaluator eval, RuleEvaluator::Create(rule));
      std::optional<ChainAccelerator::ChainInfo> chain;
      if (options.enable_chain_acceleration) {
        chain = ChainAccelerator::Detect(rule, strat.predicate_stratum);
      }
      compiled.push_back(CompiledRule{
          std::variant<RuleEvaluator, AggregateEvaluator>(std::move(eval)),
          std::move(chain)});
    }
  }

  Interval window = HorizonWindow(options);

  for (int s = 0; s < strat.num_strata; ++s) {
    const std::vector<size_t>& rule_ids = strat.rule_strata[s];
    if (rule_ids.empty()) continue;

    // Head predicates of this stratum: the only relations that change while
    // the stratum runs, hence the only delta positions worth re-evaluating.
    std::set<PredicateId> stratum_preds;
    for (size_t id : rule_ids) {
      stratum_preds.insert(compiled[id].rule().head.predicate);
    }

    Database delta;
    Database next_delta;
    Sink sink(db, &next_delta, window, options, stats);
    // Guard-allowed caches for chain rules live for the whole stratum.
    std::unordered_map<size_t, ChainAccelerator::AllowedCache> chain_caches;
    auto emit_for = [&](PredicateId pred) {
      return [&sink, pred](const Tuple& tuple,
                           const IntervalSet& extent) -> Status {
        return sink.Emit(pred, tuple, extent);
      };
    };

    // Aggregate rules first: their inputs are strictly below this stratum,
    // so one evaluation is complete.
    for (size_t id : rule_ids) {
      if (!compiled[id].is_aggregate()) continue;
      ++stats->rule_evaluations;
      sink.SetContext(id, 0);
      const auto& agg = std::get<AggregateEvaluator>(compiled[id].eval);
      DMTL_RETURN_IF_ERROR(
          agg.Evaluate(*db, emit_for(compiled[id].rule().head.predicate)));
    }

    // Initial full round for plain rules.
    for (size_t id : rule_ids) {
      if (compiled[id].is_aggregate()) continue;
      ++stats->rule_evaluations;
      sink.SetContext(id, 0);
      const auto& eval = std::get<RuleEvaluator>(compiled[id].eval);
      DMTL_RETURN_IF_ERROR(eval.Evaluate(
          *db, nullptr, -1, emit_for(compiled[id].rule().head.predicate)));
    }
    delta = std::move(next_delta);
    next_delta = Database();

    // Fixpoint rounds.
    size_t rounds = 0;
    while (delta.NumIntervals() > 0) {
      if (++rounds > options.max_rounds) {
        return Status::ResourceExhausted("stratum " + std::to_string(s) +
                                         " exceeded max_rounds");
      }
      ++stats->rounds;
      for (size_t id : rule_ids) {
        if (compiled[id].is_aggregate()) continue;
        const CompiledRule& c = compiled[id];
        const auto& eval = std::get<RuleEvaluator>(c.eval);
        PredicateId head = c.rule().head.predicate;

        sink.SetContext(id, rounds);
        if (c.chain.has_value()) {
          ++stats->rule_evaluations;
          DMTL_RETURN_IF_ERROR(ChainAccelerator::Extend(
              c.rule(), *c.chain, *db, delta, window, &chain_caches[id],
              [&](const Tuple& tuple, const Interval& iv) -> Result<bool> {
                ++stats->chain_extensions;
                return sink.EmitOne(head, tuple, iv);
              }));
          continue;
        }
        if (options.naive_evaluation) {
          ++stats->rule_evaluations;
          DMTL_RETURN_IF_ERROR(
              eval.Evaluate(*db, nullptr, -1, emit_for(head)));
          continue;
        }
        // Semi-naive: one pass per positive occurrence of a predicate that
        // changed this round.
        std::vector<const RelationalAtom*> all_atoms;
        for (const BodyLiteral& lit : c.rule().body) {
          if (lit.kind != BodyLiteral::Kind::kMetric || lit.negated) continue;
          lit.metric.CollectRelationalAtoms(&all_atoms);
        }
        for (int occ = 0; occ < eval.num_positive_occurrences(); ++occ) {
          PredicateId pred = all_atoms[occ]->predicate;
          if (!stratum_preds.count(pred)) continue;
          const Relation* changed = delta.Find(pred);
          if (changed == nullptr || changed->IsEmpty()) continue;
          ++stats->rule_evaluations;
          DMTL_RETURN_IF_ERROR(
              eval.Evaluate(*db, &delta, occ, emit_for(head)));
        }
      }
      delta = std::move(next_delta);
      next_delta = Database();
    }
  }

  stats->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return Status::Ok();
}

}  // namespace dmtl
