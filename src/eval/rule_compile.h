#ifndef DMTL_EVAL_RULE_COMPILE_H_
#define DMTL_EVAL_RULE_COMPILE_H_

#include <optional>
#include <string>

#include "src/eval/bytecode.h"
#include "src/eval/chain_accel.h"
#include "src/eval/rule_eval.h"

namespace dmtl {

// Lowers a planned rule into a RuleProgram (and a chain-accelerated rule
// into a ChainProgram). Compilation is a pure reshaping of what the
// evaluator already computed: the literal order comes from
// RuleEvaluator::BuildPlan against the current relation statistics, shapes
// and operator paths from its literal plans, and the stage order (builtins,
// negation, timestamp splits) from its stage lists. The compiled program
// therefore enumerates the same candidates in the same order as the staged
// interpreter running the same plan.
class RuleCompiler {
 public:
  // Why the compiler refuses a rule (the engine falls back to the AST
  // walker and counts it in EngineStats::vm_fallbacks). nullopt: compilable.
  static std::optional<std::string> Declines(const RuleEvaluator& eval);

  // Compiles the variant of `eval` that restricts `delta_occurrence` (-1:
  // the full pass) to `delta`, planning against the sizes in `db`.
  // `eval` must not be declined. Planner stats (index builds, plan cost)
  // are charged to the evaluator's shared PlannerStats like an interpreted
  // pass would.
  static RuleProgram Compile(const RuleEvaluator& eval, const Database& db,
                             const Database* delta, int delta_occurrence);

  // Compiles the chain walk of a rule ChainAccelerator::Detect accepted.
  static ChainProgram CompileChain(const Rule& rule,
                                   const ChainAccelerator::ChainInfo& info);

  // Runtime mirror of the evaluator's private hull-dilation helper, used by
  // the VM to compute per-row prune windows.
  static Interval ExpandPruneWindow(Interval window,
                                    const std::vector<OpPathStep>& path);

  // The VM charges its probe/prune counters to the evaluator's shared
  // planner stats exactly like an interpreted pass. Null when planning is
  // off (declined rules never reach the VM).
  static PlannerStats* MutableStats(const RuleEvaluator& eval) {
    return eval.planner_stats_.get();
  }
};

}  // namespace dmtl

#endif  // DMTL_EVAL_RULE_COMPILE_H_
