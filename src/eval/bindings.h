#ifndef DMTL_EVAL_BINDINGS_H_
#define DMTL_EVAL_BINDINGS_H_

#include <string>
#include <vector>

#include "src/ast/term.h"
#include "src/temporal/interval_set.h"

namespace dmtl {

// A partial assignment of rule variables to values. Slot count equals the
// rule's variable table size; unbound slots are tracked explicitly (Null is
// not used as a sentinel, so facts may legally carry nulls).
class Bindings {
 public:
  explicit Bindings(int num_vars)
      : values_(num_vars), bound_(num_vars, false) {}

  bool IsBound(int var) const { return bound_[var]; }
  const Value& Get(int var) const { return values_[var]; }

  void Set(int var, Value v) {
    values_[var] = std::move(v);
    bound_[var] = true;
  }

  // Marks a slot unbound again (the value is left in place). The compiled
  // executor backtracks by unsetting the registers an atom bound instead of
  // copying whole Bindings per candidate like the staged interpreter.
  void Unset(int var) { bound_[var] = false; }

  // Unifies a term against a value: binds free variables, checks bound
  // variables and constants for equality. Returns false on mismatch (and
  // may have bound variables; callers work on copies).
  bool Unify(const Term& term, const Value& v);

  // Resolves a term under this binding; the term must be a constant or a
  // bound variable.
  const Value& Resolve(const Term& term) const;

  // True when every variable of the term is bound (constants trivially so).
  bool IsResolved(const Term& term) const {
    return term.is_constant() || IsBound(term.var());
  }

  std::string ToString(const std::vector<std::string>& var_names) const;

 private:
  std::vector<Value> values_;
  std::vector<bool> bound_;
};

// A partial rule-evaluation result: a variable binding plus the temporal
// extent over which the body conjuncts seen so far jointly hold.
struct BindingRow {
  Bindings binding;
  IntervalSet extent;
};

}  // namespace dmtl

#endif  // DMTL_EVAL_BINDINGS_H_
