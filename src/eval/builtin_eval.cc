#include "src/eval/builtin_eval.h"

#include <cmath>

namespace dmtl {

Result<Value> EvalExpr(const Expr& expr, const Bindings& binding) {
  switch (expr.op()) {
    case Expr::Op::kConst:
      return expr.constant();
    case Expr::Op::kVar:
      if (!binding.IsBound(expr.var())) {
        return Status::EvalError("unbound variable in expression");
      }
      return binding.Get(expr.var());
    default:
      break;
  }
  // Operators: evaluate children first.
  std::vector<Value> kids;
  kids.reserve(expr.children().size());
  for (const Expr& child : expr.children()) {
    DMTL_ASSIGN_OR_RETURN(Value v, EvalExpr(child, binding));
    if (!v.is_numeric()) {
      return Status::EvalError("arithmetic on non-numeric value " +
                               v.ToString());
    }
    kids.push_back(std::move(v));
  }
  bool all_int = true;
  for (const Value& v : kids) all_int = all_int && v.is_int();
  switch (expr.op()) {
    case Expr::Op::kAdd:
      if (all_int) return Value::Int(kids[0].AsInt() + kids[1].AsInt());
      return Value::Double(kids[0].AsDouble() + kids[1].AsDouble());
    case Expr::Op::kSub:
      if (all_int) return Value::Int(kids[0].AsInt() - kids[1].AsInt());
      return Value::Double(kids[0].AsDouble() - kids[1].AsDouble());
    case Expr::Op::kMul:
      if (all_int) return Value::Int(kids[0].AsInt() * kids[1].AsInt());
      return Value::Double(kids[0].AsDouble() * kids[1].AsDouble());
    case Expr::Op::kDiv: {
      double denom = kids[1].AsDouble();
      if (denom == 0.0) return Status::EvalError("division by zero");
      return Value::Double(kids[0].AsDouble() / denom);
    }
    case Expr::Op::kNeg:
      if (all_int) return Value::Int(-kids[0].AsInt());
      return Value::Double(-kids[0].AsDouble());
    case Expr::Op::kAbs:
      if (all_int) return Value::Int(std::llabs(kids[0].AsInt()));
      return Value::Double(std::fabs(kids[0].AsDouble()));
    case Expr::Op::kMin:
      return Value::NumericCompare(kids[0], kids[1]) <= 0 ? kids[0] : kids[1];
    case Expr::Op::kMax:
      return Value::NumericCompare(kids[0], kids[1]) >= 0 ? kids[0] : kids[1];
    case Expr::Op::kConst:
    case Expr::Op::kVar:
      break;
  }
  return Status::Internal("unhandled expression operator");
}

Result<bool> EvalComparison(CmpOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_numeric() && rhs.is_numeric()) {
    int c = Value::NumericCompare(lhs, rhs);
    switch (op) {
      case CmpOp::kEq:
        return c == 0;
      case CmpOp::kNe:
        return c != 0;
      case CmpOp::kLt:
        return c < 0;
      case CmpOp::kLe:
        return c <= 0;
      case CmpOp::kGt:
        return c > 0;
      case CmpOp::kGe:
        return c >= 0;
    }
  }
  if (op == CmpOp::kEq) return lhs == rhs;
  if (op == CmpOp::kNe) return lhs != rhs;
  if (lhs.is_symbol() && rhs.is_symbol()) {
    const std::string& a = lhs.AsSymbolName();
    const std::string& b = rhs.AsSymbolName();
    switch (op) {
      case CmpOp::kLt:
        return a < b;
      case CmpOp::kLe:
        return a <= b;
      case CmpOp::kGt:
        return a > b;
      case CmpOp::kGe:
        return a >= b;
      default:
        break;
    }
  }
  return Status::EvalError("cannot order values " + lhs.ToString() + " and " +
                           rhs.ToString());
}

Result<bool> ApplyBuiltin(const BuiltinAtom& builtin, Bindings* binding) {
  switch (builtin.kind) {
    case BuiltinAtom::Kind::kCompare: {
      DMTL_ASSIGN_OR_RETURN(Value lhs, EvalExpr(builtin.lhs, *binding));
      DMTL_ASSIGN_OR_RETURN(Value rhs, EvalExpr(builtin.rhs, *binding));
      return EvalComparison(builtin.cmp, lhs, rhs);
    }
    case BuiltinAtom::Kind::kAssign: {
      DMTL_ASSIGN_OR_RETURN(Value v, EvalExpr(builtin.expr, *binding));
      if (binding->IsBound(builtin.var)) {
        return EvalComparison(CmpOp::kEq, binding->Get(builtin.var), v);
      }
      binding->Set(builtin.var, std::move(v));
      return true;
    }
    case BuiltinAtom::Kind::kTimestamp:
      return Status::Internal(
          "timestamp() must be handled by the rule evaluator");
  }
  return Status::Internal("unhandled builtin kind");
}

}  // namespace dmtl
