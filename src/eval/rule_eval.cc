#include "src/eval/rule_eval.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <set>

#include "src/analysis/safety.h"
#include "src/common/execution_guard.h"
#include "src/eval/builtin_eval.h"
#include "src/eval/op_memo.h"

namespace dmtl {

namespace {

constexpr size_t kMinTuplesForIndex = 8;

// Candidate tuples between guard checks inside join enumeration. Cheap
// enough that one huge join observes a deadline within milliseconds, rare
// enough to be invisible in profiles (the check is an atomic load + clock
// read once per 4096 candidates).
constexpr uint64_t kGuardStrideMask = 4095;

// Enumerates the groundings of the relational atoms of one positive
// literal, extending `row.binding`. Extents are intersected afterwards via
// EvalMetricExtent (which sees the same delta restriction). This is the
// planner-off path, preserved verbatim for the ablation baseline.
Status EnumerateAtoms(const std::vector<const RelationalAtom*>& atoms,
                      size_t atom_index, const Database& db,
                      const Database* delta, int literal_delta_offset,
                      const BindingRow& row,
                      const std::function<Status(const BindingRow&)>& next,
                      const ExecutionGuard* guard, uint64_t* guard_counter) {
  if (atom_index == atoms.size()) return next(row);
  const RelationalAtom& atom = *atoms[atom_index];
  const Database* source =
      static_cast<int>(atom_index) == literal_delta_offset && delta != nullptr
          ? delta
          : &db;
  const Relation* rel = source->Find(atom.predicate);
  if (rel == nullptr) return Status::Ok();  // no facts, no groundings

  auto try_tuple = [&](const Tuple& tuple) -> Status {
    if (guard != nullptr && (++*guard_counter & kGuardStrideMask) == 0) {
      DMTL_RETURN_IF_ERROR(guard->Check());
    }
    if (tuple.size() != atom.args.size()) return Status::Ok();
    BindingRow extended = row;
    bool ok = true;
    for (size_t i = 0; i < atom.args.size() && ok; ++i) {
      ok = extended.binding.Unify(atom.args[i], tuple[i]);
    }
    if (!ok) return Status::Ok();
    return EnumerateAtoms(atoms, atom_index + 1, db, delta,
                          literal_delta_offset, extended, next, guard,
                          guard_counter);
  };

  // Probe the first-argument index when the leading argument is already
  // ground (the account-keyed joins of the contract).
  if (!atom.args.empty() && row.binding.IsResolved(atom.args[0])) {
    const std::vector<const Tuple*>* candidates =
        rel->FindByFirstArg(row.binding.Resolve(atom.args[0]));
    if (candidates == nullptr) return Status::Ok();
    for (const Tuple* tuple : *candidates) {
      DMTL_RETURN_IF_ERROR(try_tuple(*tuple));
    }
    return Status::Ok();
  }
  for (const Relation::ScanEntry& row_entry : rel->Rows()) {
    DMTL_RETURN_IF_ERROR(try_tuple(*row_entry.tuple));
  }
  return Status::Ok();
}

}  // namespace

Result<RuleEvaluator> RuleEvaluator::Create(const Rule& rule,
                                            bool enable_join_planning) {
  RuleEvaluator eval(rule);
  eval.planning_ = enable_join_planning;
  if (enable_join_planning) {
    eval.planner_stats_ = std::make_shared<PlannerStats>();
  }
  DMTL_RETURN_IF_ERROR(eval.Plan());
  return eval;
}

Status RuleEvaluator::Plan() {
  // Partition literals.
  for (size_t i = 0; i < rule_.body.size(); ++i) {
    const BodyLiteral& lit = rule_.body[i];
    if (lit.kind == BodyLiteral::Kind::kMetric) {
      if (lit.negated) {
        negated_literals_.push_back(i);
      } else {
        positive_literals_.push_back(i);
        occurrence_start_.push_back(num_occurrences_);
        std::vector<const RelationalAtom*> atoms;
        lit.metric.CollectRelationalAtoms(&atoms);
        num_occurrences_ += static_cast<int>(atoms.size());
      }
    } else if (lit.builtin.kind == BuiltinAtom::Kind::kTimestamp) {
      timestamp_builtins_.push_back(i);
    }
  }

  // Variables bound by stage 1 and by timestamp builtins. The planner may
  // evaluate positive literals in any order precisely because this is the
  // same set CheckSafety requires everything downstream to draw from.
  std::set<int> positive_vars = PositiveLiteralVars(rule_);
  std::set<int> ts_dependent;
  for (size_t i : timestamp_builtins_) {
    ts_dependent.insert(rule_.body[i].builtin.var);
  }

  // Classify remaining builtins into early (dependency-ordered) and late.
  std::vector<size_t> pending;
  for (size_t i = 0; i < rule_.body.size(); ++i) {
    const BodyLiteral& lit = rule_.body[i];
    if (lit.kind == BodyLiteral::Kind::kBuiltin &&
        lit.builtin.kind != BuiltinAtom::Kind::kTimestamp) {
      pending.push_back(i);
    }
  }
  std::set<int> early_bound = positive_vars;
  bool changed = true;
  while (changed && !pending.empty()) {
    changed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      const BuiltinAtom& b = rule_.body[*it].builtin;
      std::vector<int> needed;
      if (b.kind == BuiltinAtom::Kind::kAssign) {
        b.expr.CollectVars(&needed);
      } else {
        b.lhs.CollectVars(&needed);
        b.rhs.CollectVars(&needed);
      }
      bool uses_ts = false;
      bool ready = true;
      for (int v : needed) {
        if (ts_dependent.count(v)) uses_ts = true;
        if (!early_bound.count(v)) ready = false;
      }
      if (b.kind == BuiltinAtom::Kind::kCompare &&
          b.lhs.op() != Expr::Op::kVar) {
        // nothing extra; comparisons bind nothing
      }
      if (uses_ts ||
          (b.kind == BuiltinAtom::Kind::kAssign && ts_dependent.count(b.var))) {
        // Depends on a timestamp variable: runs late. Track transitive
        // ts-dependence through its target.
        if (b.kind == BuiltinAtom::Kind::kAssign) ts_dependent.insert(b.var);
        late_builtins_.push_back(*it);
        it = pending.erase(it);
        changed = true;
        continue;
      }
      if (ready) {
        if (b.kind == BuiltinAtom::Kind::kAssign) early_bound.insert(b.var);
        early_builtins_.push_back(*it);
        it = pending.erase(it);
        changed = true;
        continue;
      }
      ++it;
    }
  }
  if (!pending.empty()) {
    // Remaining builtins reference variables bound neither positively nor
    // via resolvable assignment chains; CheckSafety reports these with a
    // better message, but guard here too.
    return Status::UnsafeRule("unresolvable builtin ordering in rule: " +
                              rule_.ToString());
  }
  // Negated literals may not depend on timestamp variables (they run
  // before the timestamp split).
  for (size_t i : negated_literals_) {
    std::vector<int> vars;
    rule_.body[i].metric.CollectVars(&vars);
    for (int v : vars) {
      if (ts_dependent.count(v)) {
        return Status::UnsafeRule(
            "negated literal depends on a timestamp variable: " +
            rule_.ToString());
      }
    }
  }
  // Head operator chain sanity.
  for (const HeadAtom::HeadOp& op : rule_.head.ops) {
    if (op.op != MtlOp::kBoxMinus && op.op != MtlOp::kBoxPlus) {
      return Status::InvalidArgument(
          "head operators must be boxminus/boxplus: " + rule_.ToString());
    }
  }

  // Static join-planner facts per positive literal: each relational atom's
  // root-to-atom operator path, its prunability, and the literal's shape.
  if (planning_) {
    struct Walker {
      std::vector<PathStep> stack;
      std::vector<AtomPlan>* out;

      void Walk(const MetricAtom& m, bool prunable) {
        switch (m.kind()) {
          case MetricAtom::Kind::kRelational:
            out->push_back(AtomPlan{stack, prunable});
            break;
          case MetricAtom::Kind::kUnary:
            stack.push_back(PathStep{m.op(), m.range()});
            Walk(m.left(), prunable);
            stack.pop_back();
            break;
          case MetricAtom::Kind::kBinary:
            stack.push_back(PathStep{m.op(), m.range()});
            // An empty LHS does not force an empty since/until result (it
            // can hold vacuously when rho contains 0), so atoms under the
            // left operand must never be pruned. An empty RHS always makes
            // the result empty.
            Walk(m.left(), false);
            Walk(m.right(), prunable);
            stack.pop_back();
            break;
          case MetricAtom::Kind::kTruth:
          case MetricAtom::Kind::kFalsity:
            break;
        }
      }
    };
    literal_plans_.reserve(positive_literals_.size());
    for (size_t i : positive_literals_) {
      const MetricAtom& metric = rule_.body[i].metric;
      LiteralPlan plan;
      Walker walker;
      walker.out = &plan.atoms;
      walker.Walk(metric, true);
      if (metric.kind() == MetricAtom::Kind::kRelational) {
        plan.shape = LiteralShape::kBareAtom;
      } else {
        const MetricAtom* cur = &metric;
        while (cur->kind() == MetricAtom::Kind::kUnary) cur = &cur->left();
        plan.shape = cur->kind() == MetricAtom::Kind::kRelational
                         ? LiteralShape::kUnaryChain
                         : LiteralShape::kGeneral;
      }
      literal_plans_.push_back(std::move(plan));
    }
  }
  return Status::Ok();
}

// Every ChildWindow step is a dilation, and dilation commutes with taking
// hulls, so expanding the row hull through the operator path yields a
// superset of (the hull of) the exact per-set child window.
Interval RuleEvaluator::ExpandPruneWindow(Interval window,
                                          const std::vector<PathStep>& path) {
  for (const PathStep& s : path) {
    switch (s.op) {
      case MtlOp::kDiamondMinus:
      case MtlOp::kBoxMinus:
        window = window.DiamondPlus(s.range);
        break;
      case MtlOp::kDiamondPlus:
      case MtlOp::kBoxPlus:
        window = window.DiamondMinus(s.range);
        break;
      case MtlOp::kSince: {
        auto span = Interval::Make(Bound::Closed(Rational(0)), s.range.hi());
        if (span.has_value()) window = window.DiamondPlus(*span);
        break;
      }
      case MtlOp::kUntil: {
        auto span = Interval::Make(Bound::Closed(Rational(0)), s.range.hi());
        if (span.has_value()) window = window.DiamondMinus(*span);
        break;
      }
    }
  }
  return window;
}

RuleEvaluator::ExecutionPlan RuleEvaluator::BuildPlan(
    const Database& db, const Database* delta, int delta_occurrence,
    PlannerStats* stats) const {
  ExecutionPlan plan;
  const size_t n = positive_literals_.size();

  struct LitInfo {
    std::vector<const RelationalAtom*> atoms;
    int delta_offset = -1;
  };
  std::vector<LitInfo> info(n);
  for (size_t p = 0; p < n; ++p) {
    rule_.body[positive_literals_[p]].metric.CollectRelationalAtoms(
        &info[p].atoms);
    if (delta_occurrence >= 0) {
      int rel = delta_occurrence - occurrence_start_[p];
      if (rel >= 0 && rel < static_cast<int>(info[p].atoms.size())) {
        info[p].delta_offset = rel;
      }
    }
  }

  std::vector<char> bound(rule_.num_vars(), 0);

  auto atom_signature = [](const RelationalAtom& atom,
                           const std::vector<char>& b) -> uint64_t {
    uint64_t sig = 0;
    for (size_t i = 0; i < atom.args.size() && i < 64; ++i) {
      const Term& t = atom.args[i];
      if (t.is_constant() || b[t.var()]) sig |= uint64_t{1} << i;
    }
    return sig;
  };

  auto source_rel = [&](const LitInfo& li, size_t a) -> const Relation* {
    const Database* source =
        static_cast<int>(a) == li.delta_offset && delta != nullptr ? delta
                                                                   : &db;
    return source->Find(li.atoms[a]->predicate);
  };

  // Estimated enumeration cost of one literal given the currently bound
  // variables: per atom, the relation's tuple count shrunk 4x per bound
  // argument position (a crude selectivity model - it only needs to *rank*
  // literals, with cardinality snapshots supplying the scale). Atoms over
  // absent relations cost nothing: they produce zero groundings and kill
  // the row set immediately.
  auto literal_cost = [&](size_t p) -> double {
    std::vector<char> b = bound;
    double cost = 0.0;
    for (size_t a = 0; a < info[p].atoms.size(); ++a) {
      const RelationalAtom& atom = *info[p].atoms[a];
      const Relation* rel = source_rel(info[p], a);
      if (rel != nullptr && !rel->IsEmpty()) {
        double fanout = static_cast<double>(rel->NumTuples());
        int bound_args = std::popcount(atom_signature(atom, b));
        fanout /= std::pow(4.0, std::min(bound_args, 16));
        cost += fanout < 1.0 ? 1.0 : fanout;
      }
      for (const Term& t : atom.args) {
        if (t.is_variable()) b[t.var()] = 1;
      }
    }
    return cost;
  };

  // Greedy selection: the semi-naive delta literal is pinned first (the
  // delta is small by construction and every pass must visit it anyway);
  // afterwards always the cheapest remaining literal under the current
  // bound-variable set, ties broken by body order for determinism.
  std::vector<char> used(n, 0);
  int pinned = -1;
  for (size_t p = 0; p < n; ++p) {
    if (info[p].delta_offset >= 0) {
      pinned = static_cast<int>(p);
      break;
    }
  }
  for (size_t step_index = 0; step_index < n; ++step_index) {
    size_t best = n;
    double best_cost = 0.0;
    if (step_index == 0 && pinned >= 0) {
      best = static_cast<size_t>(pinned);
      best_cost = literal_cost(best);
    } else {
      for (size_t p = 0; p < n; ++p) {
        if (used[p]) continue;
        double cost = literal_cost(p);
        if (best == n || cost < best_cost) {
          best = p;
          best_cost = cost;
        }
      }
    }
    used[best] = 1;

    ExecutionPlan::Step step;
    step.p = best;
    step.literal_delta_offset = info[best].delta_offset;
    step.cost = best_cost;
    for (size_t a = 0; a < info[best].atoms.size(); ++a) {
      const RelationalAtom& atom = *info[best].atoms[a];
      ExecutionPlan::AtomProbe probe;
      probe.rel = source_rel(info[best], a);
      probe.signature = atom_signature(atom, bound);
      if (probe.rel != nullptr && probe.signature != 0 &&
          probe.rel->NumTuples() >= kMinTuplesForIndex) {
        bool built_now = false;
        probe.index = probe.rel->GetIndex(probe.signature, &built_now);
        if (built_now && stats != nullptr) {
          stats->indexes_built.fetch_add(1, std::memory_order_relaxed);
        }
      }
      for (const Term& t : atom.args) {
        if (t.is_variable()) bound[t.var()] = 1;
      }
      step.probes.push_back(probe);
    }
    plan.total_cost += best_cost;
    plan.steps.push_back(std::move(step));
  }
  if (stats != nullptr) {
    stats->last_plan_cost.store(plan.total_cost, std::memory_order_relaxed);
  }
  return plan;
}

Status RuleEvaluator::EvaluatePositivePlanned(
    const Database& db, const Database* delta, int delta_occurrence,
    std::vector<BindingRow>* rows, OperatorMemo* memo,
    const ExecutionGuard* guard) const {
  PlannerStats* stats = planner_stats_.get();
  ExecutionPlan plan = BuildPlan(db, delta, delta_occurrence, stats);
  uint64_t probes = 0;
  uint64_t hits = 0;
  uint64_t pruned = 0;
  uint64_t memo_isect = 0;
  uint64_t memo_isect_comps = 0;

  for (const ExecutionPlan::Step& step : plan.steps) {
    const BodyLiteral& lit = rule_.body[positive_literals_[step.p]];
    const LiteralPlan& lplan = literal_plans_[step.p];
    std::vector<const RelationalAtom*> atoms;
    lit.metric.CollectRelationalAtoms(&atoms);

    ExtentSource source;
    source.full = &db;
    source.delta = delta;
    source.delta_occurrence = step.literal_delta_offset;
    source.guard = guard;

    // Local enumeration state: direct recursion, no std::function on the
    // per-candidate path.
    struct Enumerator {
      const std::vector<const RelationalAtom*>& atoms;
      const ExecutionPlan::Step& step;
      const LiteralPlan& lplan;
      const BodyLiteral& lit;
      const ExtentSource& source;
      const BindingRow* row = nullptr;
      OperatorMemo* memo = nullptr;
      std::vector<std::optional<Interval>> windows;  // per-atom prune window
      std::vector<BindingRow>* out = nullptr;
      uint64_t* probes;
      uint64_t* hits;
      uint64_t* pruned;
      uint64_t* memo_isect;
      uint64_t* memo_isect_comps;
      const ExecutionGuard* guard = nullptr;
      uint64_t guard_counter = 0;

      Status Emit(const Bindings& binding, const IntervalSet* leaf_set) {
        IntervalSet joined;
        switch (lplan.shape) {
          case LiteralShape::kBareAtom:
            // EvalMetricExtent on a ground bare atom is Find + Intersect;
            // the enumeration already holds the found set.
            joined = leaf_set->Intersect(row->extent);
            break;
          case LiteralShape::kUnaryChain: {
            const std::vector<PathStep>& path = lplan.atoms[0].path;
            if (memo != nullptr && step.literal_delta_offset < 0) {
              // Interval-delta propagation: the memo holds the full
              // un-windowed path output of this leaf (exactly what the
              // windowed chain below computes, by the ChildWindow
              // identity), refreshed across rounds with just the newly
              // derived intervals. Delta-restricted literals read from the
              // transient delta database and are never memoized.
              const IntervalSet& m = memo->Lookup(step.p, path, leaf_set);
              ++*memo_isect;
              *memo_isect_comps += row->extent.size() + m.size();
              joined = row->extent.Intersect(m);
              break;
            }
            // Replicates EvalRec exactly: child windows root-to-leaf, the
            // leaf lookup (already in hand), operators leaf-to-root.
            IntervalSet window = row->extent;
            for (const PathStep& s : path) {
              window = ChildWindow(s.op, s.range, window);
            }
            IntervalSet extent = leaf_set->Intersect(window);
            for (auto it = path.rbegin(); it != path.rend(); ++it) {
              extent = ApplyUnaryOp(it->op, it->range, extent);
            }
            joined = row->extent.Intersect(extent);
            break;
          }
          case LiteralShape::kGeneral:
            joined = row->extent.Intersect(
                EvalMetricExtent(lit.metric, binding, source, row->extent));
            break;
        }
        if (joined.IsEmpty()) return Status::Ok();
        out->push_back(BindingRow{binding, std::move(joined)});
        return Status::Ok();
      }

      Status Enumerate(size_t a, const Bindings& binding,
                       const IntervalSet* leaf_set) {
        if (a == atoms.size()) return Emit(binding, leaf_set);
        const ExecutionPlan::AtomProbe& probe = step.probes[a];
        if (probe.rel == nullptr) return Status::Ok();
        const RelationalAtom& atom = *atoms[a];
        const std::optional<Interval>& w = windows[a];

        auto try_tuple = [&](const Tuple& tuple, const IntervalSet& set,
                             uint64_t skip_sig) -> Status {
          if (guard != nullptr &&
              (++guard_counter & kGuardStrideMask) == 0) {
            DMTL_RETURN_IF_ERROR(guard->Check());
          }
          if (tuple.size() != atom.args.size()) return Status::Ok();
          if (w.has_value() && !set.Hull().Overlaps(*w)) {
            ++*pruned;
            return Status::Ok();
          }
          Bindings extended = binding;
          for (size_t i = 0; i < atom.args.size(); ++i) {
            // Positions covered by the index key already matched.
            if (i < 64 && ((skip_sig >> i) & 1)) continue;
            if (!extended.Unify(atom.args[i], tuple[i])) return Status::Ok();
          }
          return Enumerate(a + 1, extended, &set);
        };

        if (probe.index != nullptr) {
          Tuple key;
          key.reserve(probe.index->positions.size());
          for (size_t pos : probe.index->positions) {
            key.push_back(binding.Resolve(atom.args[pos]));
          }
          ++*probes;
          const Relation::PostingList* list = probe.index->Lookup(key);
          if (list == nullptr) return Status::Ok();
          ++*hits;
          if (w.has_value() && list->envelope.has_value() &&
              !list->envelope->Overlaps(*w)) {
            *pruned += list->entries.size();
            return Status::Ok();
          }
          for (const Relation::IndexEntry& entry : list->entries) {
            // Per-entry hull prune from the contiguous posting array, before
            // the extent (a separate cache line) is touched.
            if (w.has_value() && !entry.hull.Overlaps(*w)) {
              ++*pruned;
              continue;
            }
            DMTL_RETURN_IF_ERROR(
                try_tuple(*entry.tuple, *entry.extent, probe.signature));
          }
          return Status::Ok();
        }
        for (const Relation::ScanEntry& row : probe.rel->Rows()) {
          DMTL_RETURN_IF_ERROR(try_tuple(*row.tuple, *row.extent, 0));
        }
        return Status::Ok();
      }
    };

    std::vector<BindingRow> next_rows;
    Enumerator enumerator{atoms,       step,    lplan,
                          lit,         source,  nullptr,
                          memo,        {},      &next_rows,
                          &probes,     &hits,   &pruned,
                          &memo_isect, &memo_isect_comps};
    enumerator.guard = guard;
    enumerator.windows.resize(atoms.size());
    for (const BindingRow& row : *rows) {
      // Per-row temporal prune windows (row extents are never empty). A
      // fully infinite hull overlaps everything; skip the bookkeeping.
      Interval row_hull = row.extent.Hull();
      if (row_hull.lo_infinite() && row_hull.hi_infinite()) {
        std::fill(enumerator.windows.begin(), enumerator.windows.end(),
                  std::nullopt);
      } else {
        for (size_t a = 0; a < atoms.size(); ++a) {
          enumerator.windows[a] =
              lplan.atoms[a].prunable
                  ? std::optional<Interval>(
                        ExpandPruneWindow(row_hull, lplan.atoms[a].path))
                  : std::nullopt;
        }
      }
      enumerator.row = &row;
      DMTL_RETURN_IF_ERROR(
          enumerator.Enumerate(0, row.binding, nullptr));
    }
    rows->swap(next_rows);
    if (rows->empty()) break;
  }

  if (stats != nullptr) {
    stats->index_probes.fetch_add(probes, std::memory_order_relaxed);
    stats->index_probe_hits.fetch_add(hits, std::memory_order_relaxed);
    stats->envelope_pruned.fetch_add(pruned, std::memory_order_relaxed);
    stats->memo_intersections.fetch_add(memo_isect,
                                        std::memory_order_relaxed);
    stats->memo_intersect_components.fetch_add(memo_isect_comps,
                                               std::memory_order_relaxed);
  }
  return Status::Ok();
}

std::string RuleEvaluator::ExplainPlan(const Database& db) const {
  std::string out = rule_.ToString() + "\n";
  if (!planning_) {
    out += "  (join planning disabled)\n";
    return out;
  }
  ExecutionPlan plan = BuildPlan(db, nullptr, -1, nullptr);
  char buf[64];
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const ExecutionPlan::Step& step = plan.steps[i];
    const size_t body_index = positive_literals_[step.p];
    const LiteralPlan& lplan = literal_plans_[step.p];
    std::snprintf(buf, sizeof(buf), "%.3g", step.cost);
    out += "  " + std::to_string(i + 1) + ". " +
           rule_.body[body_index].ToString(rule_.var_names) + "  [est_cost=" +
           buf + "]\n";
    std::vector<const RelationalAtom*> atoms;
    rule_.body[body_index].metric.CollectRelationalAtoms(&atoms);
    for (size_t a = 0; a < atoms.size(); ++a) {
      const ExecutionPlan::AtomProbe& probe = step.probes[a];
      out += "       " + PredicateName(atoms[a]->predicate) + ": ";
      if (probe.index != nullptr) {
        out += "index(";
        for (size_t k = 0; k < probe.index->positions.size(); ++k) {
          if (k > 0) out += ",";
          out += std::to_string(probe.index->positions[k]);
        }
        out += ")";
      } else {
        out += "scan";
      }
      out += lplan.atoms[a].prunable ? ", envelope-pruned" : ", no-prune";
      switch (lplan.shape) {
        case LiteralShape::kBareAtom:
          out += ", bare";
          break;
        case LiteralShape::kUnaryChain:
          out += ", unary-chain";
          break;
        case LiteralShape::kGeneral:
          out += ", general";
          break;
      }
      out += "\n";
    }
  }
  std::snprintf(buf, sizeof(buf), "%.3g", plan.total_cost);
  out += "  total est_cost=" + std::string(buf) + "\n";
  return out;
}

Status RuleEvaluator::EvaluateRows(const Database& db, const Database* delta,
                                   int delta_occurrence,
                                   std::vector<BindingRow>* out,
                                   OperatorMemo* memo,
                                   const ExecutionGuard* guard) const {
  BindingRow seed{Bindings(rule_.num_vars()), IntervalSet(Interval::All())};
  std::vector<BindingRow> rows;
  rows.push_back(std::move(seed));

  // Stage 1: positive literals.
  if (planning_) {
    DMTL_RETURN_IF_ERROR(EvaluatePositivePlanned(db, delta, delta_occurrence,
                                                 &rows, memo, guard));
    if (rows.empty()) {
      out->clear();
      return Status::Ok();
    }
  } else {
    // Planner-off baseline: body order refined only by total extent volume
    // (cheapest literal first), full-enumeration joins.
    std::vector<size_t> order(positive_literals_.size());
    for (size_t p = 0; p < order.size(); ++p) order[p] = p;
    {
      std::vector<size_t> cost(positive_literals_.size(), 0);
      for (size_t p = 0; p < positive_literals_.size(); ++p) {
        std::vector<const RelationalAtom*> atoms;
        rule_.body[positive_literals_[p]].metric.CollectRelationalAtoms(
            &atoms);
        for (size_t a = 0; a < atoms.size(); ++a) {
          int global = occurrence_start_[p] + static_cast<int>(a);
          const Database* source =
              global == delta_occurrence && delta != nullptr ? delta : &db;
          const Relation* rel = source->Find(atoms[a]->predicate);
          cost[p] += rel == nullptr ? 0 : rel->approx_intervals();
        }
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) { return cost[a] < cost[b]; });
    }

    for (size_t p : order) {
      const BodyLiteral& lit = rule_.body[positive_literals_[p]];
      std::vector<const RelationalAtom*> atoms;
      lit.metric.CollectRelationalAtoms(&atoms);
      int literal_delta_offset = -1;
      if (delta_occurrence >= 0) {
        int rel = delta_occurrence - occurrence_start_[p];
        if (rel >= 0 && rel < static_cast<int>(atoms.size())) {
          literal_delta_offset = rel;
        }
      }
      ExtentSource source;
      source.full = &db;
      source.delta = delta;
      source.delta_occurrence = literal_delta_offset;
      source.guard = guard;
      std::vector<BindingRow> next_rows;
      uint64_t guard_counter = 0;
      for (const BindingRow& row : rows) {
        DMTL_RETURN_IF_ERROR(EnumerateAtoms(
            atoms, 0, db, delta, literal_delta_offset, row,
            [&](const BindingRow& grounded) -> Status {
              IntervalSet extent = EvalMetricExtent(
                  lit.metric, grounded.binding, source, grounded.extent);
              IntervalSet joined = grounded.extent.Intersect(extent);
              if (joined.IsEmpty()) return Status::Ok();
              next_rows.push_back({grounded.binding, std::move(joined)});
              return Status::Ok();
            },
            guard, &guard_counter));
      }
      rows.swap(next_rows);
      if (rows.empty()) {
        out->clear();
        return Status::Ok();
      }
    }
  }

  if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());

  // Stage 2: early builtins.
  for (size_t i : early_builtins_) {
    const BuiltinAtom& b = rule_.body[i].builtin;
    std::vector<BindingRow> next_rows;
    for (BindingRow& row : rows) {
      DMTL_ASSIGN_OR_RETURN(bool keep, ApplyBuiltin(b, &row.binding));
      if (keep) next_rows.push_back(std::move(row));
    }
    rows.swap(next_rows);
  }

  // Stage 3: negated literals.
  ExtentSource full_source;
  full_source.full = &db;
  full_source.guard = guard;
  for (size_t i : negated_literals_) {
    if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
    const BodyLiteral& lit = rule_.body[i];
    std::vector<BindingRow> next_rows;
    for (BindingRow& row : rows) {
      IntervalSet neg =
          EvalMetricExtent(lit.metric, row.binding, full_source, row.extent);
      IntervalSet remaining = row.extent.Subtract(neg);
      if (remaining.IsEmpty()) continue;
      next_rows.push_back({std::move(row.binding), std::move(remaining)});
    }
    rows.swap(next_rows);
  }

  // Stage 4: timestamp splits.
  uint64_t split_counter = 0;
  for (size_t i : timestamp_builtins_) {
    if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
    const BuiltinAtom& b = rule_.body[i].builtin;
    std::vector<BindingRow> next_rows;
    for (const BindingRow& row : rows) {
      std::vector<Rational> points;
      if (!row.extent.IsPunctualOnly(&points)) {
        return Status::EvalError(
            "timestamp() requires a punctual join extent; got " +
            row.extent.ToString() + " in rule: " + rule_.ToString());
      }
      for (const Rational& p : points) {
        if (guard != nullptr &&
            (++split_counter & kGuardStrideMask) == 0) {
          DMTL_RETURN_IF_ERROR(guard->Check());
        }
        BindingRow split = row;
        split.extent = IntervalSet(Interval::Point(p));
        Value v = p.is_integer() ? Value::Int(p.numerator())
                                 : Value::Double(p.ToDouble());
        if (!split.binding.Unify(Term::Variable(b.var), v)) continue;
        next_rows.push_back(std::move(split));
      }
    }
    rows.swap(next_rows);
  }

  // Stage 5: late builtins.
  for (size_t i : late_builtins_) {
    const BuiltinAtom& b = rule_.body[i].builtin;
    std::vector<BindingRow> next_rows;
    for (BindingRow& row : rows) {
      DMTL_ASSIGN_OR_RETURN(bool keep, ApplyBuiltin(b, &row.binding));
      if (keep) next_rows.push_back(std::move(row));
    }
    rows.swap(next_rows);
  }

  *out = std::move(rows);
  return Status::Ok();
}

Status RuleEvaluator::Evaluate(const Database& db, const Database* delta,
                               int delta_occurrence, const EmitFn& emit,
                               OperatorMemo* memo,
                               const ExecutionGuard* guard) const {
  if (rule_.head.aggregate.has_value()) {
    return Status::Internal(
        "aggregate rules must go through AggregateEvaluator");
  }
  std::vector<BindingRow> rows;
  DMTL_RETURN_IF_ERROR(
      EvaluateRows(db, delta, delta_occurrence, &rows, memo, guard));
  for (const BindingRow& row : rows) {
    Tuple tuple;
    tuple.reserve(rule_.head.args.size());
    bool ok = true;
    for (const Term& term : rule_.head.args) {
      if (!row.binding.IsResolved(term)) {
        ok = false;
        break;
      }
      tuple.push_back(row.binding.Resolve(term));
    }
    if (!ok) {
      return Status::UnsafeRule("unbound head variable in rule: " +
                                rule_.ToString());
    }
    // Apply the head operator chain (outermost first): a head boxminus
    // holding throughout E forces the inner atom over the past-dilation of
    // E, and boxplus over the future-dilation.
    IntervalSet extent = row.extent;
    for (const HeadAtom::HeadOp& op : rule_.head.ops) {
      extent = op.op == MtlOp::kBoxMinus ? extent.DiamondPlus(op.range)
                                         : extent.DiamondMinus(op.range);
    }
    if (extent.IsEmpty()) continue;
    DMTL_RETURN_IF_ERROR(emit(tuple, extent));
  }
  return Status::Ok();
}

}  // namespace dmtl
