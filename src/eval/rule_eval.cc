#include "src/eval/rule_eval.h"

#include <algorithm>
#include <set>

#include "src/eval/builtin_eval.h"

namespace dmtl {

namespace {

// Enumerates the groundings of the relational atoms of one positive
// literal, extending `row.binding`. Extents are intersected afterwards via
// EvalMetricExtent (which sees the same delta restriction).
Status EnumerateAtoms(const std::vector<const RelationalAtom*>& atoms,
                      size_t atom_index, const Database& db,
                      const Database* delta, int literal_delta_offset,
                      const BindingRow& row,
                      const std::function<Status(const BindingRow&)>& next) {
  if (atom_index == atoms.size()) return next(row);
  const RelationalAtom& atom = *atoms[atom_index];
  const Database* source =
      static_cast<int>(atom_index) == literal_delta_offset && delta != nullptr
          ? delta
          : &db;
  const Relation* rel = source->Find(atom.predicate);
  if (rel == nullptr) return Status::Ok();  // no facts, no groundings

  auto try_tuple = [&](const Tuple& tuple) -> Status {
    if (tuple.size() != atom.args.size()) return Status::Ok();
    BindingRow extended = row;
    bool ok = true;
    for (size_t i = 0; i < atom.args.size() && ok; ++i) {
      ok = extended.binding.Unify(atom.args[i], tuple[i]);
    }
    if (!ok) return Status::Ok();
    return EnumerateAtoms(atoms, atom_index + 1, db, delta,
                          literal_delta_offset, extended, next);
  };

  // Probe the first-argument index when the leading argument is already
  // ground (the account-keyed joins of the contract).
  if (!atom.args.empty() && row.binding.IsResolved(atom.args[0])) {
    const std::vector<const Tuple*>* candidates =
        rel->FindByFirstArg(row.binding.Resolve(atom.args[0]));
    if (candidates == nullptr) return Status::Ok();
    for (const Tuple* tuple : *candidates) {
      DMTL_RETURN_IF_ERROR(try_tuple(*tuple));
    }
    return Status::Ok();
  }
  for (const auto& [tuple, set] : rel->data()) {
    DMTL_RETURN_IF_ERROR(try_tuple(tuple));
  }
  return Status::Ok();
}

}  // namespace

Result<RuleEvaluator> RuleEvaluator::Create(const Rule& rule) {
  RuleEvaluator eval(rule);
  DMTL_RETURN_IF_ERROR(eval.Plan());
  return eval;
}

Status RuleEvaluator::Plan() {
  // Partition literals.
  for (size_t i = 0; i < rule_.body.size(); ++i) {
    const BodyLiteral& lit = rule_.body[i];
    if (lit.kind == BodyLiteral::Kind::kMetric) {
      if (lit.negated) {
        negated_literals_.push_back(i);
      } else {
        positive_literals_.push_back(i);
        occurrence_start_.push_back(num_occurrences_);
        std::vector<const RelationalAtom*> atoms;
        lit.metric.CollectRelationalAtoms(&atoms);
        num_occurrences_ += static_cast<int>(atoms.size());
      }
    } else if (lit.builtin.kind == BuiltinAtom::Kind::kTimestamp) {
      timestamp_builtins_.push_back(i);
    }
  }

  // Variables bound by stage 1 and by timestamp builtins.
  std::set<int> positive_vars;
  for (size_t i : positive_literals_) {
    std::vector<int> vars;
    rule_.body[i].metric.CollectVars(&vars);
    positive_vars.insert(vars.begin(), vars.end());
  }
  std::set<int> ts_dependent;
  for (size_t i : timestamp_builtins_) {
    ts_dependent.insert(rule_.body[i].builtin.var);
  }

  // Classify remaining builtins into early (dependency-ordered) and late.
  std::vector<size_t> pending;
  for (size_t i = 0; i < rule_.body.size(); ++i) {
    const BodyLiteral& lit = rule_.body[i];
    if (lit.kind == BodyLiteral::Kind::kBuiltin &&
        lit.builtin.kind != BuiltinAtom::Kind::kTimestamp) {
      pending.push_back(i);
    }
  }
  std::set<int> early_bound = positive_vars;
  bool changed = true;
  while (changed && !pending.empty()) {
    changed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      const BuiltinAtom& b = rule_.body[*it].builtin;
      std::vector<int> needed;
      if (b.kind == BuiltinAtom::Kind::kAssign) {
        b.expr.CollectVars(&needed);
      } else {
        b.lhs.CollectVars(&needed);
        b.rhs.CollectVars(&needed);
      }
      bool uses_ts = false;
      bool ready = true;
      for (int v : needed) {
        if (ts_dependent.count(v)) uses_ts = true;
        if (!early_bound.count(v)) ready = false;
      }
      if (b.kind == BuiltinAtom::Kind::kCompare &&
          b.lhs.op() != Expr::Op::kVar) {
        // nothing extra; comparisons bind nothing
      }
      if (uses_ts ||
          (b.kind == BuiltinAtom::Kind::kAssign && ts_dependent.count(b.var))) {
        // Depends on a timestamp variable: runs late. Track transitive
        // ts-dependence through its target.
        if (b.kind == BuiltinAtom::Kind::kAssign) ts_dependent.insert(b.var);
        late_builtins_.push_back(*it);
        it = pending.erase(it);
        changed = true;
        continue;
      }
      if (ready) {
        if (b.kind == BuiltinAtom::Kind::kAssign) early_bound.insert(b.var);
        early_builtins_.push_back(*it);
        it = pending.erase(it);
        changed = true;
        continue;
      }
      ++it;
    }
  }
  if (!pending.empty()) {
    // Remaining builtins reference variables bound neither positively nor
    // via resolvable assignment chains; CheckSafety reports these with a
    // better message, but guard here too.
    return Status::UnsafeRule("unresolvable builtin ordering in rule: " +
                              rule_.ToString());
  }
  // Negated literals may not depend on timestamp variables (they run
  // before the timestamp split).
  for (size_t i : negated_literals_) {
    std::vector<int> vars;
    rule_.body[i].metric.CollectVars(&vars);
    for (int v : vars) {
      if (ts_dependent.count(v)) {
        return Status::UnsafeRule(
            "negated literal depends on a timestamp variable: " +
            rule_.ToString());
      }
    }
  }
  // Head operator chain sanity.
  for (const HeadAtom::HeadOp& op : rule_.head.ops) {
    if (op.op != MtlOp::kBoxMinus && op.op != MtlOp::kBoxPlus) {
      return Status::InvalidArgument(
          "head operators must be boxminus/boxplus: " + rule_.ToString());
    }
  }
  return Status::Ok();
}

Status RuleEvaluator::EvaluateRows(const Database& db, const Database* delta,
                                   int delta_occurrence,
                                   std::vector<BindingRow>* out) const {
  BindingRow seed{Bindings(rule_.num_vars()), IntervalSet(Interval::All())};
  std::vector<BindingRow> rows;
  rows.push_back(std::move(seed));

  // Order positive literals by estimated extent volume (cheapest first):
  // starting from the sparse event-like literals keeps the intermediate row
  // extents small, which every later intersection benefits from.
  std::vector<size_t> order(positive_literals_.size());
  for (size_t p = 0; p < order.size(); ++p) order[p] = p;
  {
    std::vector<size_t> cost(positive_literals_.size(), 0);
    for (size_t p = 0; p < positive_literals_.size(); ++p) {
      std::vector<const RelationalAtom*> atoms;
      rule_.body[positive_literals_[p]].metric.CollectRelationalAtoms(&atoms);
      for (size_t a = 0; a < atoms.size(); ++a) {
        int global = occurrence_start_[p] + static_cast<int>(a);
        const Database* source =
            global == delta_occurrence && delta != nullptr ? delta : &db;
        const Relation* rel = source->Find(atoms[a]->predicate);
        cost[p] += rel == nullptr ? 0 : rel->approx_intervals();
      }
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return cost[a] < cost[b]; });
  }

  // Stage 1: positive literals.
  for (size_t p : order) {
    const BodyLiteral& lit = rule_.body[positive_literals_[p]];
    std::vector<const RelationalAtom*> atoms;
    lit.metric.CollectRelationalAtoms(&atoms);
    int literal_delta_offset = -1;
    if (delta_occurrence >= 0) {
      int rel = delta_occurrence - occurrence_start_[p];
      if (rel >= 0 && rel < static_cast<int>(atoms.size())) {
        literal_delta_offset = rel;
      }
    }
    ExtentSource source;
    source.full = &db;
    source.delta = delta;
    source.delta_occurrence = literal_delta_offset;
    std::vector<BindingRow> next_rows;
    for (const BindingRow& row : rows) {
      DMTL_RETURN_IF_ERROR(EnumerateAtoms(
          atoms, 0, db, delta, literal_delta_offset, row,
          [&](const BindingRow& grounded) -> Status {
            IntervalSet extent = EvalMetricExtent(
                lit.metric, grounded.binding, source, grounded.extent);
            IntervalSet joined = grounded.extent.Intersect(extent);
            if (joined.IsEmpty()) return Status::Ok();
            next_rows.push_back({grounded.binding, std::move(joined)});
            return Status::Ok();
          }));
    }
    rows.swap(next_rows);
    if (rows.empty()) {
      out->clear();
      return Status::Ok();
    }
  }

  // Stage 2: early builtins.
  for (size_t i : early_builtins_) {
    const BuiltinAtom& b = rule_.body[i].builtin;
    std::vector<BindingRow> next_rows;
    for (BindingRow& row : rows) {
      DMTL_ASSIGN_OR_RETURN(bool keep, ApplyBuiltin(b, &row.binding));
      if (keep) next_rows.push_back(std::move(row));
    }
    rows.swap(next_rows);
  }

  // Stage 3: negated literals.
  ExtentSource full_source;
  full_source.full = &db;
  for (size_t i : negated_literals_) {
    const BodyLiteral& lit = rule_.body[i];
    std::vector<BindingRow> next_rows;
    for (BindingRow& row : rows) {
      IntervalSet neg =
          EvalMetricExtent(lit.metric, row.binding, full_source, row.extent);
      IntervalSet remaining = row.extent.Subtract(neg);
      if (remaining.IsEmpty()) continue;
      next_rows.push_back({std::move(row.binding), std::move(remaining)});
    }
    rows.swap(next_rows);
  }

  // Stage 4: timestamp splits.
  for (size_t i : timestamp_builtins_) {
    const BuiltinAtom& b = rule_.body[i].builtin;
    std::vector<BindingRow> next_rows;
    for (const BindingRow& row : rows) {
      std::vector<Rational> points;
      if (!row.extent.IsPunctualOnly(&points)) {
        return Status::EvalError(
            "timestamp() requires a punctual join extent; got " +
            row.extent.ToString() + " in rule: " + rule_.ToString());
      }
      for (const Rational& p : points) {
        BindingRow split = row;
        split.extent = IntervalSet(Interval::Point(p));
        Value v = p.is_integer() ? Value::Int(p.numerator())
                                 : Value::Double(p.ToDouble());
        if (!split.binding.Unify(Term::Variable(b.var), v)) continue;
        next_rows.push_back(std::move(split));
      }
    }
    rows.swap(next_rows);
  }

  // Stage 5: late builtins.
  for (size_t i : late_builtins_) {
    const BuiltinAtom& b = rule_.body[i].builtin;
    std::vector<BindingRow> next_rows;
    for (BindingRow& row : rows) {
      DMTL_ASSIGN_OR_RETURN(bool keep, ApplyBuiltin(b, &row.binding));
      if (keep) next_rows.push_back(std::move(row));
    }
    rows.swap(next_rows);
  }

  *out = std::move(rows);
  return Status::Ok();
}

Status RuleEvaluator::Evaluate(const Database& db, const Database* delta,
                               int delta_occurrence,
                               const EmitFn& emit) const {
  if (rule_.head.aggregate.has_value()) {
    return Status::Internal(
        "aggregate rules must go through AggregateEvaluator");
  }
  std::vector<BindingRow> rows;
  DMTL_RETURN_IF_ERROR(EvaluateRows(db, delta, delta_occurrence, &rows));
  for (const BindingRow& row : rows) {
    Tuple tuple;
    tuple.reserve(rule_.head.args.size());
    bool ok = true;
    for (const Term& term : rule_.head.args) {
      if (!row.binding.IsResolved(term)) {
        ok = false;
        break;
      }
      tuple.push_back(row.binding.Resolve(term));
    }
    if (!ok) {
      return Status::UnsafeRule("unbound head variable in rule: " +
                                rule_.ToString());
    }
    // Apply the head operator chain (outermost first): a head boxminus
    // holding throughout E forces the inner atom over the past-dilation of
    // E, and boxplus over the future-dilation.
    IntervalSet extent = row.extent;
    for (const HeadAtom::HeadOp& op : rule_.head.ops) {
      extent = op.op == MtlOp::kBoxMinus ? extent.DiamondPlus(op.range)
                                         : extent.DiamondMinus(op.range);
    }
    if (extent.IsEmpty()) continue;
    DMTL_RETURN_IF_ERROR(emit(tuple, extent));
  }
  return Status::Ok();
}

}  // namespace dmtl
