#ifndef DMTL_EVAL_OPERATORS_H_
#define DMTL_EVAL_OPERATORS_H_

#include <vector>

#include "src/ast/atom.h"
#include "src/eval/bindings.h"
#include "src/storage/database.h"

namespace dmtl {

class ExecutionGuard;

// One operator step on the root-to-atom path of a relational atom inside a
// literal's metric tree. Shared by the join planner (prune-window dilation)
// and the operator memo (interval-delta propagation).
struct OpPathStep {
  MtlOp op = MtlOp::kDiamondMinus;
  Interval range = Interval::Point(Rational(0));
};

// Applies a unary-only operator path to a full leaf extent, innermost
// (leaf-side) step first, with no child-window restriction. The result is
// the exact extent of the whole chain; windowed evaluation equals its
// intersection with the window (the ChildWindow identity).
IntervalSet ApplyOpPath(const std::vector<OpPathStep>& path,
                        const IntervalSet& leaf);

// True when the path's output can be refreshed on leaf growth by unioning
// in the path applied to just the new intervals: every step must distribute
// over union. Diamond operators are dilations (always distribute); box
// operators distribute only when punctual (erosion by [c,c] is a shift).
// Since/until steps never qualify.
bool OpPathDeltaRefreshable(const std::vector<OpPathStep>& path);

// Where relational extents come from during metric-atom evaluation. The
// semi-naive engine substitutes the delta relation for exactly one
// relational-atom occurrence per rule re-evaluation; `delta_occurrence`
// identifies it by pre-order position within the literal's atom tree
// (-1: none).
struct ExtentSource {
  const Database* full = nullptr;
  const Database* delta = nullptr;
  int delta_occurrence = -1;
  // Optional execution guard polled inside unbounded existential scans
  // (every few hundred tuples). On a trip the scan truncates its union and
  // returns early; this is sound only because the guard latches and the
  // engine's round-end check rolls the whole round back, so a truncated
  // extent is never observable in results.
  const ExecutionGuard* guard = nullptr;
};

// Applies a unary MTL operator transform to an extent set.
IntervalSet ApplyUnaryOp(MtlOp op, const Interval& rho,
                         const IntervalSet& extent);

// A superset of the time points a child atom can contribute from, given
// that only results within `result_window` matter for the parent operator.
// Used to keep evaluation proportional to the row extent instead of the
// stored extent (per-tick chain extents span whole sessions).
IntervalSet ChildWindow(MtlOp op, const Interval& rho,
                        const IntervalSet& result_window);

// Computes the set of time points at which the (fully ground under
// `binding`) metric atom holds, restricted to `window` (the result is exact
// within the window; callers intersect with their row extent anyway).
// Relational atoms with *unbound* variables are treated existentially: the
// union over all matching tuples in the source relation (used for negated
// literals like `not order(A, _)`).
IntervalSet EvalMetricExtent(const MetricAtom& atom, const Bindings& binding,
                             const ExtentSource& source,
                             const IntervalSet& window);

}  // namespace dmtl

#endif  // DMTL_EVAL_OPERATORS_H_
