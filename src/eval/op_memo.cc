#include "src/eval/op_memo.h"

namespace dmtl {

const IntervalSet& OperatorMemo::Lookup(size_t literal,
                                        const std::vector<OpPathStep>& path,
                                        const IntervalSet* leaf) {
  std::vector<Entry>& slot = entries_[leaf];
  for (Entry& e : slot) {
    if (e.literal == literal) {
      ++stats_.hits;
      return e.value;
    }
  }
  ++stats_.misses;
  if (!literals_.count(literal)) {
    literals_.emplace(
        literal, LiteralInfo{path, OpPathDeltaRefreshable(path)});
  }
  slot.push_back(Entry{literal, ApplyOpPath(path, *leaf)});
  // Memo entries survive across rounds (OnLeafChanged refreshes them in
  // place), so their storage must not live in the round arena.
  slot.back().value.MarkPersistent();
  return slot.back().value;
}

void OperatorMemo::OnLeafChanged(const IntervalSet* leaf,
                                 const IntervalSet& fresh) {
  auto it = entries_.find(leaf);
  if (it == entries_.end()) return;
  std::vector<Entry>& slot = it->second;
  for (size_t i = 0; i < slot.size();) {
    const LiteralInfo& info = literals_.at(slot[i].literal);
    if (info.refreshable) {
      // The path distributes over union, so Ops(old ∪ fresh) =
      // Ops(old) ∪ Ops(fresh); over-application is idempotent, which makes
      // this safe even when the entry was computed mid-round and already
      // saw part of `fresh`.
      slot[i].value.UnionWith(ApplyOpPath(info.path, fresh));
      ++stats_.refreshes;
      ++i;
    } else {
      slot[i] = std::move(slot.back());
      slot.pop_back();
      ++stats_.invalidations;
    }
  }
  if (slot.empty()) entries_.erase(it);
}

void OperatorMemo::OnLeafShrunk(const IntervalSet* leaf) {
  auto it = entries_.find(leaf);
  if (it == entries_.end()) return;
  stats_.invalidations += it->second.size();
  entries_.erase(it);
}

void OperatorMemo::Clear() {
  for (const auto& [leaf, slot] : entries_) {
    stats_.invalidations += slot.size();
  }
  entries_.clear();
}

}  // namespace dmtl
