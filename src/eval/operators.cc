#include "src/eval/operators.h"

#include "src/common/execution_guard.h"

namespace dmtl {

namespace {

// Extent of one relational atom under a (possibly partial) binding within
// `window`: exact lookup when fully ground, existential union over matching
// tuples otherwise.
IntervalSet RelationalExtent(const RelationalAtom& atom,
                             const Bindings& binding, const Database* db,
                             const IntervalSet& window,
                             const ExecutionGuard* guard) {
  if (db == nullptr) return IntervalSet();
  const Relation* rel = db->Find(atom.predicate);
  if (rel == nullptr) return IntervalSet();
  // Everything below intersects with `window`; an empty window cannot
  // contribute anything.
  if (window.IsEmpty()) return IntervalSet();

  bool ground = true;
  for (const Term& t : atom.args) {
    if (!binding.IsResolved(t)) {
      ground = false;
      break;
    }
  }
  if (ground) {
    Tuple tuple;
    tuple.reserve(atom.args.size());
    for (const Term& t : atom.args) tuple.push_back(binding.Resolve(t));
    const IntervalSet* set = rel->Find(tuple);
    return set == nullptr ? IntervalSet() : set->Intersect(window);
  }
  // Existential: union over all tuples agreeing on the resolved positions.
  // The hull precheck skips tuples whose whole stored extent lies outside
  // the window's hull - their contribution to the union is empty anyway.
  IntervalSet out;
  Interval window_hull = window.Hull();
  auto consider = [&](const Tuple& tuple, const IntervalSet& set) {
    if (tuple.size() != atom.args.size()) return;
    if (!set.Hull().Overlaps(window_hull)) return;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (binding.IsResolved(atom.args[i]) &&
          binding.Resolve(atom.args[i]) != tuple[i]) {
        return;
      }
    }
    out.UnionWith(set.Intersect(window));
  };
  // `not order(A, _)` with A bound probes the first-argument index.
  uint64_t polled = 0;
  if (!atom.args.empty() && binding.IsResolved(atom.args[0])) {
    const std::vector<const Tuple*>* candidates =
        rel->FindByFirstArg(binding.Resolve(atom.args[0]));
    if (candidates == nullptr) return out;
    for (const Tuple* tuple : *candidates) {
      if (guard != nullptr && (++polled & 1023) == 0 && guard->Tripped()) {
        return out;  // truncated; the round-end check discards this round
      }
      const IntervalSet* set = rel->Find(*tuple);
      if (set != nullptr) consider(*tuple, *set);
    }
    return out;
  }
  for (const Relation::ScanEntry& row : rel->Rows()) {
    if (guard != nullptr && (++polled & 1023) == 0 && guard->Tripped()) {
      return out;  // truncated; the round-end check discards this round
    }
    consider(*row.tuple, *row.extent);
  }
  return out;
}

IntervalSet EvalRec(const MetricAtom& atom, const Bindings& binding,
                    const ExtentSource& source, const IntervalSet& window,
                    int* occurrence) {
  switch (atom.kind()) {
    case MetricAtom::Kind::kTruth:
      return window;
    case MetricAtom::Kind::kFalsity:
      return IntervalSet();
    case MetricAtom::Kind::kRelational: {
      int index = (*occurrence)++;
      const Database* db = index == source.delta_occurrence ? source.delta
                                                            : source.full;
      return RelationalExtent(atom.atom(), binding, db, window, source.guard);
    }
    case MetricAtom::Kind::kUnary: {
      IntervalSet child_window = ChildWindow(atom.op(), atom.range(), window);
      IntervalSet child =
          EvalRec(atom.left(), binding, source, child_window, occurrence);
      return ApplyUnaryOp(atom.op(), atom.range(), child);
    }
    case MetricAtom::Kind::kBinary: {
      IntervalSet child_window = ChildWindow(atom.op(), atom.range(), window);
      IntervalSet lhs =
          EvalRec(atom.left(), binding, source, child_window, occurrence);
      IntervalSet rhs =
          EvalRec(atom.right(), binding, source, child_window, occurrence);
      IntervalSet result = atom.op() == MtlOp::kSince
                               ? lhs.Since(rhs, atom.range())
                               : lhs.Until(rhs, atom.range());
      return result.Intersect(window);
    }
  }
  return IntervalSet();
}

}  // namespace

IntervalSet ApplyOpPath(const std::vector<OpPathStep>& path,
                        const IntervalSet& leaf) {
  IntervalSet extent = leaf;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    extent = ApplyUnaryOp(it->op, it->range, extent);
  }
  return extent;
}

bool OpPathDeltaRefreshable(const std::vector<OpPathStep>& path) {
  for (const OpPathStep& s : path) {
    switch (s.op) {
      case MtlOp::kDiamondMinus:
      case MtlOp::kDiamondPlus:
        break;
      case MtlOp::kBoxMinus:
      case MtlOp::kBoxPlus:
        if (!s.range.IsPunctual()) return false;
        break;
      case MtlOp::kSince:
      case MtlOp::kUntil:
        return false;
    }
  }
  return true;
}

IntervalSet ApplyUnaryOp(MtlOp op, const Interval& rho,
                         const IntervalSet& extent) {
  switch (op) {
    case MtlOp::kDiamondMinus:
      return extent.DiamondMinus(rho);
    case MtlOp::kBoxMinus:
      return extent.BoxMinus(rho);
    case MtlOp::kDiamondPlus:
      return extent.DiamondPlus(rho);
    case MtlOp::kBoxPlus:
      return extent.BoxPlus(rho);
    case MtlOp::kSince:
    case MtlOp::kUntil:
      break;
  }
  return IntervalSet();
}

IntervalSet ChildWindow(MtlOp op, const Interval& rho,
                        const IntervalSet& result_window) {
  switch (op) {
    case MtlOp::kDiamondMinus:
    case MtlOp::kBoxMinus:
      // Results at t draw on child time points in t - rho: dilate the
      // window into the past.
      return result_window.DiamondPlus(rho);
    case MtlOp::kDiamondPlus:
    case MtlOp::kBoxPlus:
      return result_window.DiamondMinus(rho);
    case MtlOp::kSince: {
      // Witnesses lie within rho of the result and the continuity argument
      // spans the gap: anything in [0, rho.hi] back.
      auto span = Interval::Make(Bound::Closed(Rational(0)), rho.hi());
      if (!span.has_value()) return result_window;
      return result_window.DiamondPlus(*span);
    }
    case MtlOp::kUntil: {
      auto span = Interval::Make(Bound::Closed(Rational(0)), rho.hi());
      if (!span.has_value()) return result_window;
      return result_window.DiamondMinus(*span);
    }
  }
  return result_window;
}

IntervalSet EvalMetricExtent(const MetricAtom& atom, const Bindings& binding,
                             const ExtentSource& source,
                             const IntervalSet& window) {
  int occurrence = 0;
  return EvalRec(atom, binding, source, window, &occurrence);
}

}  // namespace dmtl
