#include "src/eval/bindings.h"

#include <cassert>

namespace dmtl {

bool Bindings::Unify(const Term& term, const Value& v) {
  if (term.is_constant()) return term.value() == v;
  if (IsBound(term.var())) return Get(term.var()) == v;
  Set(term.var(), v);
  return true;
}

const Value& Bindings::Resolve(const Term& term) const {
  if (term.is_constant()) return term.value();
  assert(IsBound(term.var()));
  return Get(term.var());
}

std::string Bindings::ToString(
    const std::vector<std::string>& var_names) const {
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!bound_[i]) continue;
    if (!first) out += ", ";
    first = false;
    out += (i < var_names.size() ? var_names[i] : "V" + std::to_string(i));
    out += "=";
    out += values_[i].ToString();
  }
  out += '}';
  return out;
}

}  // namespace dmtl
