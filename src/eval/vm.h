#ifndef DMTL_EVAL_VM_H_
#define DMTL_EVAL_VM_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/execution_guard.h"
#include "src/eval/bytecode.h"
#include "src/eval/chain_accel.h"
#include "src/eval/op_memo.h"
#include "src/eval/rule_eval.h"

namespace dmtl {

// Dispatch-loop executor for compiled rule programs - the semi-naive
// engine's replacement for the AST walker (EngineOptions::enable_rule_compile).
//
// One RuleVm per rule. Programs are compiled lazily per semi-naive delta
// occurrence on first dispatch and recompiled when a store-backed relation
// outgrows its compile-time size snapshot 4x (the plan's literal order is a
// function of relation sizes; correctness never depends on it). Execution is
// a depth-first walk over the flat program: variables bind into one register
// file and unbind on backtrack, so the per-candidate Bindings copies and
// per-stage row vectors of the interpreter disappear. The DFS visits
// candidates in exactly the order the staged interpreter does for the same
// plan, and threads the same machinery - delta restriction, operator memo
// (same literal ordinals), envelope pruning, and guard polls at the same
// candidate stride.
//
// Chain-accelerated rules additionally get a batched closure kernel
// (ExtendChain): instead of one emit per grid point, it computes how many
// consecutive grid points stay inside the guard-allowed component and ahead
// of already-derived coverage (exact rational arithmetic), and emits them as
// one set per batch. The derived coverage - and the interpreter-visible
// chain_extensions count - are identical to the point-by-point walk.
//
// Not thread-safe: like OperatorMemo, each rule's round task owns its VM
// exclusively, and round barriers order cross-thread handoffs.
class RuleVm {
 public:
  using EmitFn = RuleEvaluator::EmitFn;
  using EmitSetFn =
      std::function<Status(const Tuple& tuple, const IntervalSet& extent)>;
  // Current derived coverage of (chain predicate, tuple) as up to two
  // interval sets whose union is the truth: {live store set, nullptr} for
  // the sequential sink, {round-start snapshot, task overlay} for buffered
  // parallel sinks. Re-invoked at every batch boundary - the pointed-to
  // sets may grow between batches as the walk's own emissions land.
  using CoverageFn = std::function<std::pair<const IntervalSet*,
                                             const IntervalSet*>(const Tuple&)>;

  // Builds a VM for `eval` (copying it; planner stats stay shared). Returns
  // nullptr - with the reason in `decline_reason` - for rule shapes the
  // compiler declines; the engine then keeps the AST walker for this rule.
  static std::unique_ptr<RuleVm> Create(
      const RuleEvaluator& eval,
      const std::optional<ChainAccelerator::ChainInfo>& chain,
      std::string* decline_reason);

  // Drop-in for RuleEvaluator::Evaluate with identical semantics: emits the
  // same (tuple, extent) sequence the interpreter would for the same plan.
  Status Evaluate(const Database& db, const Database* delta,
                  int delta_occurrence, const EmitFn& emit,
                  OperatorMemo* memo = nullptr,
                  const ExecutionGuard* guard = nullptr);

  bool has_chain() const { return chain_.has_value(); }

  // Batched replacement for ChainAccelerator::Extend. `extensions` is
  // advanced by exactly the number of per-point emissions the point-by-point
  // walker performs (including the already-covered point that stops a walk).
  Status ExtendChain(const Database& db, const Database& delta,
                     const Interval& window, const EmitSetFn& emit,
                     const CoverageFn& coverage, const ExecutionGuard* guard,
                     size_t* extensions);

  // VM entries: Evaluate calls plus ExtendChain calls.
  uint64_t dispatches() const { return dispatches_; }
  // Variants (re)compiled, including adaptive replans.
  uint64_t compiles() const { return compiles_; }

  const Rule& rule() const { return eval_.rule(); }

  // Compiles (if needed) and pretty-prints the full-evaluation variant
  // against `db`, plus the chain kernel when one exists.
  std::string DumpBytecode(const Database& db);

  // Streaming hooks. A batch Materialize never needs these: relations only
  // gain coverage and live at stable addresses, so a compiled variant's
  // Relation/BoundIndex pointers stay valid for the whole run. A streaming
  // retraction breaks both assumptions (SubtractCoverage/RemoveRegion drop
  // the bound-signature indexes and may erase relations), so the session
  // calls these between events.
  //
  // Drops every compiled variant; the next dispatch recompiles against the
  // current store (counted in compiles(), like an adaptive replan). The
  // slots stay - EnsureCompiled indexes by occurrence into the size fixed
  // at Create.
  void InvalidateCompiledState() {
    for (Variant& v : variants_) v = Variant{};
  }
  // Drops the chain kernel's guard-allowed cache. Needed when a guard
  // predicate's coverage *changes* after the rule already ran - impossible
  // within one stratified run, routine across streaming advances.
  void ClearChainCache() { allowed_cache_.clear(); }

 private:
  struct RtAtom {
    const Relation* rel = nullptr;
    const Relation::BoundIndex* index = nullptr;
  };
  struct Variant {
    RuleProgram prog;
    std::vector<RtAtom> atoms;
    bool compiled = false;
  };

  explicit RuleVm(const RuleEvaluator& eval) : eval_(eval) {}

  Variant& EnsureCompiled(int delta_occurrence, const Database& db,
                          const Database* delta);

  // The dispatch loop: executes prog_->code[ip...] with `cur` as the row
  // extent accumulated so far.
  Status Exec(size_t ip, const IntervalSet& cur);

  Status WalkGrid(const Tuple& tuple, const Rational& seed,
                  const IntervalSet& allowed, const EmitSetFn& emit,
                  const CoverageFn& coverage, const ExecutionGuard* guard,
                  size_t* extensions);

  RuleEvaluator eval_;  // private copy; planner stats shared with the engine
  std::optional<ChainProgram> chain_;
  // Guard-allowed sets keyed by the head tuple's guard projection. Guards
  // live strictly below the rule's stratum, so entries stay valid for the
  // whole run (the rule only executes within its own stratum).
  std::unordered_map<Tuple, IntervalSet, TupleHash> allowed_cache_;
  std::vector<Variant> variants_;  // indexed by delta_occurrence + 1
  uint64_t dispatches_ = 0;
  uint64_t compiles_ = 0;

  // --- per-dispatch state (set up by Evaluate, read by Exec) --------------
  const Database* db_ = nullptr;
  const Database* delta_ = nullptr;
  const EmitFn* emit_ = nullptr;
  OperatorMemo* memo_ = nullptr;
  const ExecutionGuard* guard_ = nullptr;
  const RuleProgram* prog_ = nullptr;
  Variant* variant_ = nullptr;
  std::optional<Bindings> regs_;
  std::vector<IntervalSet> extents_;             // per instruction slot
  std::vector<std::optional<Interval>> windows_;  // per atom slot
  std::vector<const IntervalSet*> leaf_;          // per literal slot
  std::vector<std::vector<Rational>> ts_points_;  // per body index
  Tuple key_, head_, proj_key_;
  // Emissions buffered during the DFS and flushed after it returns. The
  // staged interpreter only emits once every row has been enumerated, so
  // the relations it iterates never mutate under it; the DFS interleaves
  // enumeration with head derivation, and for a self-recursive rule the
  // sequential sink would otherwise grow the posting list (or rehash the
  // relation) being walked. Buffering restores the interpreter's
  // enumerate-then-emit discipline - and its exact emission order.
  std::vector<std::pair<Tuple, IntervalSet>> out_;
  std::vector<Interval> batch_;
  uint64_t guard_counter_ = 0;
  uint64_t probes_ = 0, hits_ = 0, pruned_ = 0, built_ = 0;
  uint64_t memo_isect_ = 0, memo_isect_comps_ = 0;
};

}  // namespace dmtl

#endif  // DMTL_EVAL_VM_H_
