#ifndef DMTL_EVAL_BUILTIN_EVAL_H_
#define DMTL_EVAL_BUILTIN_EVAL_H_

#include "src/ast/expr.h"
#include "src/ast/rule.h"
#include "src/common/status.h"
#include "src/eval/bindings.h"

namespace dmtl {

// Evaluates an arithmetic expression under a binding. Mixed int/double
// arithmetic promotes to double; `/` always yields double (timeline
// arithmetic like the contract's 1/86400 must not truncate). Division by
// zero is an EvalError.
Result<Value> EvalExpr(const Expr& expr, const Bindings& binding);

// Evaluates a comparison between two values. Numerics compare with
// promotion; symbols compare by identity for ==/!= and lexicographically
// otherwise; cross-kind comparisons are == false / != true and an error for
// orderings.
Result<bool> EvalComparison(CmpOp op, const Value& lhs, const Value& rhs);

// Applies a kCompare or kAssign builtin to a binding: filters (returns
// false) or extends the binding. An assignment whose target is already
// bound degrades to an equality filter.
Result<bool> ApplyBuiltin(const BuiltinAtom& builtin, Bindings* binding);

}  // namespace dmtl

#endif  // DMTL_EVAL_BUILTIN_EVAL_H_
