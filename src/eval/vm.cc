#include "src/eval/vm.h"

#include <algorithm>

#include "src/common/fault_injector.h"
#include "src/eval/builtin_eval.h"
#include "src/eval/rule_compile.h"

namespace dmtl {

namespace {

// Mirrors of the interpreter's enumeration constants (rule_eval.cc): same
// index threshold so the scan/index decision matches at equal relation
// sizes, same guard stride so deadline observation latency is comparable.
constexpr size_t kVmMinTuplesForIndex = 8;
constexpr uint64_t kVmGuardStrideMask = 4095;

// Upper bound on punctual chain points emitted per batch: caps the interval
// scratch buffer and bounds how far a walk can run between guard polls and
// budget checks.
constexpr int64_t kChainBatchPoints = 2048;

// True when an upper bound ends strictly before time t.
inline bool UpperEndsBefore(const Bound& hi, const Rational& t) {
  if (hi.infinite) return false;
  return hi.open ? hi.value <= t : hi.value < t;
}

// True when a lower bound starts strictly after time t.
inline bool LowerStartsAfter(const Bound& lo, const Rational& t) {
  if (lo.infinite) return false;
  return lo.open ? lo.value >= t : lo.value > t;
}

// The component of `set` containing t, or nullptr. Binary search over the
// normalized (sorted, disjoint) component list.
const Interval* FindComponent(const IntervalSet& set, const Rational& t) {
  const Interval* it = std::partition_point(
      set.begin(), set.end(),
      [&](const Interval& iv) { return UpperEndsBefore(iv.hi(), t); });
  if (it == set.end() || !it->Contains(t)) return nullptr;
  return it;
}

// Largest k >= 0 such that t + k*step stays inside `comp` (t must be in
// comp); nullopt when comp is unbounded in the walk direction.
std::optional<int64_t> StepsWithin(const Interval& comp, const Rational& t,
                                   const Rational& step) {
  const bool fwd = !step.is_negative();
  const Bound& b = fwd ? comp.hi() : comp.lo();
  if (b.infinite) return std::nullopt;
  Rational span = fwd ? b.value - t : t - b.value;
  Rational q = span / Abs(step);
  int64_t k = q.Floor();
  // An exact landing on an open bound is outside the component.
  if (b.open && q.is_integer()) --k;
  return k;
}

// Smallest k in [0, k_cap] with t + k*step covered by `s`, walking the
// normalized components in grid direction; nullopt when no grid point within
// the cap is covered.
std::optional<int64_t> FirstCoveredStep(const IntervalSet* s,
                                        const Rational& t,
                                        const Rational& step, int64_t k_cap) {
  if (s == nullptr || s->IsEmpty()) return std::nullopt;
  const Rational mag = Abs(step);
  if (!step.is_negative()) {
    const Interval* it = std::partition_point(
        s->begin(), s->end(),
        [&](const Interval& iv) { return UpperEndsBefore(iv.hi(), t); });
    for (; it != s->end(); ++it) {
      int64_t k = 0;
      if (!it->lo().infinite) {
        if (t < it->lo().value) {
          Rational q = (it->lo().value - t) / mag;
          k = q.Ceil();
          if (it->lo().open && q.is_integer()) ++k;
        } else if (it->lo().open && t == it->lo().value) {
          k = 1;
        }
      }
      // Components ascend, so the candidate step only grows from here.
      if (k > k_cap) return std::nullopt;
      if (it->Contains(t + Rational(k) * mag)) return k;
    }
    return std::nullopt;
  }
  const Interval* it = std::partition_point(
      s->begin(), s->end(),
      [&](const Interval& iv) { return !LowerStartsAfter(iv.lo(), t); });
  while (it != s->begin()) {
    --it;
    int64_t k = 0;
    if (!it->hi().infinite) {
      if (t > it->hi().value) {
        Rational q = (t - it->hi().value) / mag;
        k = q.Ceil();
        if (it->hi().open && q.is_integer()) ++k;
      } else if (it->hi().open && t == it->hi().value) {
        k = 1;
      }
    }
    if (k > k_cap) return std::nullopt;
    if (it->Contains(t - Rational(k) * mag)) return k;
  }
  return std::nullopt;
}

}  // namespace

std::unique_ptr<RuleVm> RuleVm::Create(
    const RuleEvaluator& eval,
    const std::optional<ChainAccelerator::ChainInfo>& chain,
    std::string* decline_reason) {
  std::optional<std::string> why = RuleCompiler::Declines(eval);
  if (why.has_value()) {
    if (decline_reason != nullptr) *decline_reason = *why;
    return nullptr;
  }
  std::unique_ptr<RuleVm> vm(new RuleVm(eval));
  if (chain.has_value()) {
    vm->chain_ = RuleCompiler::CompileChain(eval.rule(), *chain);
  }
  vm->variants_.resize(eval.num_positive_occurrences() + 1);
  return vm;
}

RuleVm::Variant& RuleVm::EnsureCompiled(int delta_occurrence,
                                        const Database& db,
                                        const Database* delta) {
  Variant& v = variants_[delta_occurrence + 1];
  bool need = !v.compiled;
  if (!need) {
    // Adaptive replan: the baked-in literal order was chosen against the
    // compile-time relation sizes; once a store-backed relation has grown
    // well past its snapshot (or appeared at all), re-derive the plan.
    // Purely a cost decision - results never depend on it.
    for (const AtomCode& a : v.prog.atoms) {
      if (a.is_delta) continue;
      const Relation* rel = db.Find(a.pred);
      size_t n = rel == nullptr ? 0 : rel->NumTuples();
      if (n >= std::max(kVmMinTuplesForIndex, 4 * a.num_tuples_at_compile)) {
        need = true;
        break;
      }
    }
  }
  if (need) {
    v.prog = RuleCompiler::Compile(eval_, db, delta, delta_occurrence);
    v.atoms.assign(v.prog.atoms.size(), RtAtom{});
    v.compiled = true;
    ++compiles_;
  }
  return v;
}

Status RuleVm::Evaluate(const Database& db, const Database* delta,
                        int delta_occurrence, const EmitFn& emit,
                        OperatorMemo* memo, const ExecutionGuard* guard) {
  ++dispatches_;
  Variant& v = EnsureCompiled(delta_occurrence, db, delta);
  const RuleProgram& prog = v.prog;

  uint64_t built = 0;
  // Prologue (kLoadIndex): refresh store-backed relation/index handles.
  // Relation pointers are node-stable for the database's lifetime and the
  // engine only grows relations between dispatches, so resolved handles are
  // kept; a null is retried (the relation/index may exist by now).
  for (size_t slot = 0; slot < prog.atoms.size(); ++slot) {
    const AtomCode& a = prog.atoms[slot];
    if (a.is_delta) continue;
    RtAtom& ra = v.atoms[slot];
    if (ra.rel == nullptr) ra.rel = db.Find(a.pred);
    if (ra.rel != nullptr && ra.index == nullptr && a.signature != 0 &&
        ra.rel->NumTuples() >= kVmMinTuplesForIndex) {
      bool built_now = false;
      ra.index = ra.rel->GetIndex(a.signature, &built_now);
      if (built_now) ++built;
    }
  }

  db_ = &db;
  delta_ = delta;
  emit_ = &emit;
  memo_ = memo;
  guard_ = guard;
  prog_ = &prog;
  variant_ = &v;
  regs_.emplace(prog.num_vars);
  extents_.resize(prog.code.size());
  windows_.resize(prog.atoms.size());
  leaf_.assign(prog.literals.size(), nullptr);
  ts_points_.resize(eval_.rule().body.size());
  guard_counter_ = 0;
  probes_ = hits_ = pruned_ = 0;
  memo_isect_ = memo_isect_comps_ = 0;

  static const IntervalSet kAll{Interval::All()};
  out_.clear();
  Status status = Exec(prog.prologue, kAll);
  // Flush buffered derivations only now that enumeration is done (see out_
  // in vm.h); mirrors the interpreter's emit-after-staging order exactly.
  // The fault site fires between flushed emissions, so an injected failure
  // lands with part of this dispatch's output already in the sink - the
  // round-barrier rollback must undo exactly that partial flush.
  if (status.ok()) {
    for (const auto& [tuple, extent] : out_) {
      status = FaultInjector::Fire("vm.dispatch");
      if (!status.ok()) break;
      status = emit(tuple, extent);
      if (!status.ok()) break;
    }
  }
  out_.clear();
  // The instruction slots are members reused across dispatches, but any
  // arena-backed buffer in them dies at the next round barrier - drop those
  // buffers now so a later dispatch never grows into reclaimed memory.
  for (IntervalSet& slot : extents_) slot.ReleaseArenaStorage();

  if (PlannerStats* stats = RuleCompiler::MutableStats(eval_)) {
    stats->indexes_built.fetch_add(built, std::memory_order_relaxed);
    stats->index_probes.fetch_add(probes_, std::memory_order_relaxed);
    stats->index_probe_hits.fetch_add(hits_, std::memory_order_relaxed);
    stats->envelope_pruned.fetch_add(pruned_, std::memory_order_relaxed);
    stats->memo_intersections.fetch_add(memo_isect_,
                                        std::memory_order_relaxed);
    stats->memo_intersect_components.fetch_add(memo_isect_comps_,
                                               std::memory_order_relaxed);
  }
  return status;
}

Status RuleVm::Exec(size_t ip, const IntervalSet& cur) {
  const RuleProgram& prog = *prog_;
  const Instr instr = prog.code[ip];
  switch (instr.op) {
    case OpCode::kProbe: {
      const AtomCode& a = prog.atoms[instr.arg];
      const Relation* rel;
      const Relation::BoundIndex* index = nullptr;
      if (a.is_delta) {
        rel = delta_ == nullptr ? nullptr : delta_->Find(a.pred);
        if (rel != nullptr && a.signature != 0 &&
            rel->NumTuples() >= kVmMinTuplesForIndex) {
          bool built_now = false;
          index = rel->GetIndex(a.signature, &built_now);
          if (built_now && RuleCompiler::MutableStats(eval_) != nullptr) {
            RuleCompiler::MutableStats(eval_)->indexes_built.fetch_add(
                1, std::memory_order_relaxed);
          }
        }
      } else {
        rel = variant_->atoms[instr.arg].rel;
        index = variant_->atoms[instr.arg].index;
      }
      if (rel == nullptr) return Status::Ok();

      // Per-row temporal prune window: the row-extent hull dilated through
      // the atom's operator path. Identical for every candidate of the
      // parent atom (the row extent only changes at literal boundaries).
      std::optional<Interval>& w = windows_[instr.arg];
      w.reset();
      if (a.prunable) {
        Interval hull = cur.Hull();
        if (!(hull.lo_infinite() && hull.hi_infinite())) {
          w = RuleCompiler::ExpandPruneWindow(hull, a.path);
        }
      }

      auto try_tuple = [&](const Tuple& tuple, const IntervalSet& set,
                           bool probing) -> Status {
        if (guard_ != nullptr &&
            (++guard_counter_ & kVmGuardStrideMask) == 0) {
          DMTL_RETURN_IF_ERROR(guard_->Check());
        }
        if (tuple.size() != a.arity) return Status::Ok();
        if (w.has_value() && !set.Hull().Overlaps(*w)) {
          ++pruned_;
          return Status::Ok();
        }
        bool ok = true;
        for (const UnifyStep& u : a.unify) {
          if (probing && u.in_key) continue;  // matched by the index key
          const Value& tv = tuple[u.pos];
          switch (u.kind) {
            case UnifyStep::Kind::kBind:
              regs_->Set(u.var, tv);
              break;
            case UnifyStep::Kind::kCheckVar:
              ok = regs_->Get(u.var) == tv;
              break;
            case UnifyStep::Kind::kCheckConst:
              ok = prog.consts[u.const_index] == tv;
              break;
          }
          if (!ok) break;
        }
        Status status = Status::Ok();
        if (ok) {
          leaf_[a.lit] = &set;
          status = Exec(ip + 1, cur);
        }
        for (int var : a.binds) regs_->Unset(var);
        return status;
      };

      if (index != nullptr) {
        key_.clear();
        for (const ValueRef& r : a.key) {
          key_.push_back(r.var >= 0 ? regs_->Get(r.var)
                                    : prog.consts[r.const_index]);
        }
        ++probes_;
        const Relation::PostingList* list = index->Lookup(key_);
        if (list == nullptr) return Status::Ok();
        ++hits_;
        if (w.has_value() && list->envelope.has_value() &&
            !list->envelope->Overlaps(*w)) {
          pruned_ += list->entries.size();
          return Status::Ok();
        }
        for (const Relation::IndexEntry& entry : list->entries) {
          // Per-entry hull prune straight off the contiguous posting array,
          // before the extent (a separate cache line) is ever touched.
          if (w.has_value() && !entry.hull.Overlaps(*w)) {
            ++pruned_;
            continue;
          }
          DMTL_RETURN_IF_ERROR(try_tuple(*entry.tuple, *entry.extent, true));
        }
        return Status::Ok();
      }
      for (const Relation::ScanEntry& row : rel->Rows()) {
        DMTL_RETURN_IF_ERROR(try_tuple(*row.tuple, *row.extent, false));
      }
      return Status::Ok();
    }

    case OpCode::kIntersectTemporal: {
      const LiteralCode& lc = prog.literals[instr.arg];
      IntervalSet& slot = extents_[ip];
      if (lc.shape == LitShape::kBareAtom) {
        const IntervalSet* leaf = leaf_[instr.arg];
        if (leaf->IsEmpty()) return Status::Ok();
        // The row extent covers the whole leaf - every first-literal probe
        // arrives with the All extent - so the intersection IS the leaf.
        // Walk it in place instead of copying the stored set per candidate
        // (safe: emissions are buffered, the store cannot move under us).
        if (cur.size() == 1 && cur.begin()->Contains(leaf->Hull())) {
          return Exec(ip + 1, *leaf);
        }
        slot = leaf->Intersect(cur);
      } else {
        ExtentSource source;
        source.full = db_;
        source.delta = delta_;
        source.delta_occurrence = lc.delta_offset;
        source.guard = guard_;
        const MetricAtom& metric = eval_.rule().body[lc.body_index].metric;
        IntervalSet extent = EvalMetricExtent(metric, *regs_, source, cur);
        if (extent.IsEmpty()) return Status::Ok();
        if (cur.size() == 1 && cur.begin()->Contains(extent.Hull())) {
          slot = std::move(extent);
        } else {
          slot = cur.Intersect(extent);
        }
      }
      if (slot.IsEmpty()) return Status::Ok();
      return Exec(ip + 1, slot);
    }

    case OpCode::kApplyUnaryChain: {
      const LiteralCode& lc = prog.literals[instr.arg];
      const IntervalSet* leaf = leaf_[instr.arg];
      IntervalSet& slot = extents_[ip];
      if (memo_ != nullptr && lc.delta_offset < 0) {
        // Lookup's reference dies at the next Lookup (a deeper literal may
        // hit the memo too), so the covered case takes a plain copy - still
        // far cheaper than the piecewise intersection sweep.
        const IntervalSet& m = memo_->Lookup(lc.ordinal, lc.path, leaf);
        if (m.IsEmpty()) return Status::Ok();
        ++memo_isect_;
        if (cur.size() == 1 && cur.begin()->Contains(m.Hull())) {
          slot = m;
        } else {
          memo_isect_comps_ += cur.size() + m.size();
          slot = cur.Intersect(m);
        }
      } else {
        // Windowed chain evaluation, replicating the interpreter (and
        // EvalRec): child windows root-to-leaf, operators leaf-to-root.
        IntervalSet window = cur;
        for (const OpPathStep& s : lc.path) {
          window = ChildWindow(s.op, s.range, window);
        }
        IntervalSet extent = leaf->Intersect(window);
        for (auto it = lc.path.rbegin(); it != lc.path.rend(); ++it) {
          extent = ApplyUnaryOp(it->op, it->range, extent);
        }
        if (extent.IsEmpty()) return Status::Ok();
        if (cur.size() == 1 && cur.begin()->Contains(extent.Hull())) {
          slot = std::move(extent);
        } else {
          slot = cur.Intersect(extent);
        }
      }
      if (slot.IsEmpty()) return Status::Ok();
      return Exec(ip + 1, slot);
    }

    case OpCode::kEvalBuiltin: {
      const BuiltinAtom& b = eval_.rule().body[instr.arg].builtin;
      // An assignment may bind its target; undo on the way out so a later
      // candidate of an upstream atom re-executes it against clean state.
      const bool is_assign = b.kind == BuiltinAtom::Kind::kAssign;
      const bool was_bound = is_assign && regs_->IsBound(b.var);
      Value saved;
      if (was_bound) saved = regs_->Get(b.var);
      DMTL_ASSIGN_OR_RETURN(bool keep, ApplyBuiltin(b, &*regs_));
      Status status = keep ? Exec(ip + 1, cur) : Status::Ok();
      if (is_assign) {
        if (was_bound) {
          regs_->Set(b.var, std::move(saved));
        } else {
          regs_->Unset(b.var);
        }
      }
      return status;
    }

    case OpCode::kNegate: {
      const BodyLiteral& lit = eval_.rule().body[instr.arg];
      ExtentSource source;
      source.full = db_;
      source.guard = guard_;
      IntervalSet& slot = extents_[ip];
      slot = cur.Subtract(EvalMetricExtent(lit.metric, *regs_, source, cur));
      if (slot.IsEmpty()) return Status::Ok();
      return Exec(ip + 1, slot);
    }

    case OpCode::kSplitTimestamp: {
      const BuiltinAtom& b = eval_.rule().body[instr.arg].builtin;
      std::vector<Rational>& points = ts_points_[instr.arg];
      points.clear();
      if (!cur.IsPunctualOnly(&points)) {
        return Status::EvalError(
            "timestamp() requires a punctual join extent; got " +
            cur.ToString() + " in rule: " + eval_.rule().ToString());
      }
      const bool was_bound = regs_->IsBound(b.var);
      IntervalSet& slot = extents_[ip];
      Status status = Status::Ok();
      for (const Rational& p : points) {
        if (guard_ != nullptr &&
            (++guard_counter_ & kVmGuardStrideMask) == 0) {
          status = guard_->Check();
          if (!status.ok()) break;
        }
        Value pv = p.is_integer() ? Value::Int(p.numerator())
                                  : Value::Double(p.ToDouble());
        if (was_bound) {
          if (!(regs_->Get(b.var) == pv)) continue;
        } else {
          regs_->Set(b.var, std::move(pv));
        }
        slot = IntervalSet(Interval::Point(p));
        status = Exec(ip + 1, slot);
        if (!status.ok()) break;
      }
      if (!was_bound) regs_->Unset(b.var);
      return status;
    }

    case OpCode::kEmit: {
      head_.clear();
      for (const ValueRef& r : prog.head.args) {
        head_.push_back(r.var >= 0 ? regs_->Get(r.var)
                                   : prog.consts[r.const_index]);
      }
      if (prog.head.ops.empty()) {
        out_.emplace_back(head_, cur);
        return Status::Ok();
      }
      IntervalSet extent = cur;
      for (const HeadAtom::HeadOp& op : prog.head.ops) {
        extent = op.op == MtlOp::kBoxMinus ? extent.DiamondPlus(op.range)
                                           : extent.DiamondMinus(op.range);
      }
      if (extent.IsEmpty()) return Status::Ok();
      out_.emplace_back(head_, std::move(extent));
      return Status::Ok();
    }

    case OpCode::kLoadIndex:
      break;  // prologue-only; unreachable from the dispatch loop
  }
  return Status::Internal("rule VM executed an unexpected opcode at ip=" +
                          std::to_string(ip));
}

Status RuleVm::ExtendChain(const Database& db, const Database& delta,
                           const Interval& window, const EmitSetFn& emit,
                           const CoverageFn& coverage,
                           const ExecutionGuard* guard, size_t* extensions) {
  ++dispatches_;
  const ChainProgram& cp = *chain_;
  const Relation* delta_rel = delta.Find(cp.pred);
  if (delta_rel == nullptr) return Status::Ok();

  Bindings binding(cp.num_vars);
  for (const Relation::ScanEntry& row : delta_rel->Rows()) {
    const Tuple& tuple = *row.tuple;
    const IntervalSet& seed_set = *row.extent;
    bool ok = true;
    for (const UnifyStep& u : cp.unify) {
      const Value& tv = tuple[u.pos];
      switch (u.kind) {
        case UnifyStep::Kind::kBind:
          binding.Set(u.var, tv);
          break;
        case UnifyStep::Kind::kCheckVar:
          ok = binding.Get(u.var) == tv;
          break;
        case UnifyStep::Kind::kCheckConst:
          ok = cp.consts[u.const_index] == tv;
          break;
      }
      if (!ok) break;
    }
    if (!ok) continue;

    // Allowed set: guard extents minus blocker extents, clamped to the walk
    // window. Guards only observe the projected head positions, so every
    // tuple agreeing on the projection shares one cached set (the
    // interpreter caches per full tuple).
    proj_key_.clear();
    for (size_t pos : cp.guard_projection) proj_key_.push_back(tuple[pos]);
    auto [it, inserted] = allowed_cache_.try_emplace(proj_key_);
    if (inserted) {
      // The cache outlives the round barrier; keep it off the round arena
      // (the pinned destination deep-copies the move below if needed).
      it->second.MarkPersistent();
      ExtentSource source;
      source.full = &db;
      IntervalSet computed{window};
      for (size_t i : cp.positive_guards) {
        computed = computed.Intersect(EvalMetricExtent(
            eval_.rule().body[i].metric, binding, source, computed));
        if (computed.IsEmpty()) break;
      }
      for (size_t i : cp.negated_guards) {
        if (computed.IsEmpty()) break;
        computed = computed.Subtract(EvalMetricExtent(
            eval_.rule().body[i].metric, binding, source, computed));
      }
      it->second = std::move(computed);
    }
    const IntervalSet& allowed = it->second;
    if (allowed.IsEmpty()) continue;

    const Interval* comps = seed_set.begin();
    const size_t num_seeds = seed_set.size();
    const bool fwd = !cp.step.is_negative();
    for (size_t si = 0; si < num_seeds; ++si) {
      const Interval& seed = comps[si];
      if (seed.IsPunctual()) {
        // Interior-of-a-run shortcut. A batch emitted last round arrives
        // here as a run of grid-consecutive seed points; for every seed but
        // the run's end in walk direction, the next grid point is itself a
        // seed - already in the store - so the point-by-point walker emits
        // it, sees fresh == false, and stops: exactly one extension. Skip
        // the component search and coverage probes for those.
        const Rational next = seed.lo().value + cp.step;
        const Interval* adj = nullptr;
        if (fwd) {
          if (si + 1 < num_seeds && comps[si + 1].IsPunctual()) {
            adj = &comps[si + 1];
          }
        } else if (si > 0 && comps[si - 1].IsPunctual()) {
          adj = &comps[si - 1];
        }
        if (adj != nullptr && adj->lo().value == next &&
            allowed.Contains(next)) {
          *extensions += 1;
          continue;
        }
        DMTL_RETURN_IF_ERROR(WalkGrid(tuple, seed.lo().value, allowed, emit,
                                      coverage, guard, extensions));
      } else {
        // Interval seeds keep the interpreter's shift-and-clip frontier
        // loop (components coalesce, so it converges in a few passes), but
        // emit each pass as one set instead of one call per component.
        IntervalSet covered{seed};
        IntervalSet frontier{seed};
        while (!frontier.IsEmpty()) {
          IntervalSet shifted =
              frontier.Shift(cp.step).Intersect(allowed).Subtract(covered);
          if (shifted.IsEmpty()) break;
          *extensions += shifted.size();
          DMTL_RETURN_IF_ERROR(emit(tuple, shifted));
          if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
          covered.UnionWith(shifted);
          frontier = std::move(shifted);
        }
      }
    }
  }
  return Status::Ok();
}

Status RuleVm::WalkGrid(const Tuple& tuple, const Rational& seed,
                        const IntervalSet& allowed, const EmitSetFn& emit,
                        const CoverageFn& coverage,
                        const ExecutionGuard* guard, size_t* extensions) {
  const Rational& step = chain_->step;
  Rational t = seed + step;
  while (true) {
    const Interval* comp = FindComponent(allowed, t);
    if (comp == nullptr) return Status::Ok();  // walked out of allowed time

    // Batch size: how many consecutive grid points stay inside this allowed
    // component (grids cross gaps, so the component is re-searched per
    // batch) and ahead of already-derived coverage. Coverage pointers are
    // re-fetched per batch: the walk's own emissions extend them.
    std::optional<int64_t> within = StepsWithin(*comp, t, step);
    int64_t k_cap = kChainBatchPoints - 1;
    if (within.has_value() && *within < k_cap) k_cap = *within;
    auto [s1, s2] = coverage(tuple);
    std::optional<int64_t> n = FirstCoveredStep(s1, t, step, k_cap);
    std::optional<int64_t> n2 = FirstCoveredStep(s2, t, step, k_cap);
    if (n2.has_value() && (!n.has_value() || *n2 < *n)) n = n2;

    if (n.has_value() && *n == 0) {
      // The next grid point is already derived: the point-by-point walker
      // emits it (a no-op insert), observes fresh == false, and stops - it
      // still counts as one extension.
      *extensions += 1;
      return Status::Ok();
    }

    const int64_t m = n.has_value() ? *n : k_cap + 1;
    batch_.clear();
    Rational p = t;
    for (int64_t i = 0; i < m; ++i) {
      batch_.push_back(Interval::Point(p));
      p = p + step;
    }
    DMTL_RETURN_IF_ERROR(emit(tuple, IntervalSet::FromIntervals(batch_)));
    *extensions += static_cast<size_t>(m);
    if (n.has_value()) {
      *extensions += 1;  // the covered point that stopped the walk
      return Status::Ok();
    }
    if (guard != nullptr) DMTL_RETURN_IF_ERROR(guard->Check());
    t = p;
  }
}

std::string RuleVm::DumpBytecode(const Database& db) {
  Variant& v = EnsureCompiled(-1, db, nullptr);
  std::string out = v.prog.Dump(eval_.rule());
  if (chain_.has_value()) out += chain_->Dump(eval_.rule());
  return out;
}

}  // namespace dmtl
