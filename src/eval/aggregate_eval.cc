#include "src/eval/aggregate_eval.h"

#include <algorithm>
#include <map>
#include <set>

namespace dmtl {

namespace {

struct Contribution {
  Value value;
  IntervalSet extent;
};

// Cuts the timeline at every extent endpoint; membership of any extent is
// constant within each returned segment.
std::vector<Interval> AtomicSegments(
    const std::vector<Contribution>& contribs) {
  std::set<Rational> points;
  bool neg_inf = false;
  bool pos_inf = false;
  for (const Contribution& c : contribs) {
    for (const Interval& iv : c.extent) {
      if (iv.lo().infinite) {
        neg_inf = true;
      } else {
        points.insert(iv.lo().value);
      }
      if (iv.hi().infinite) {
        pos_inf = true;
      } else {
        points.insert(iv.hi().value);
      }
    }
  }
  std::vector<Interval> segments;
  if (points.empty()) {
    if (neg_inf || pos_inf) segments.push_back(Interval::All());
    return segments;
  }
  std::vector<Rational> sorted(points.begin(), points.end());
  if (neg_inf) {
    auto gap = Interval::Make(Bound::Infinite(), Bound::Open(sorted.front()));
    if (gap.has_value()) segments.push_back(*gap);
  }
  for (size_t i = 0; i < sorted.size(); ++i) {
    segments.push_back(Interval::Point(sorted[i]));
    if (i + 1 < sorted.size()) {
      segments.push_back(Interval::Open(sorted[i], sorted[i + 1]));
    }
  }
  if (pos_inf) {
    auto gap = Interval::Make(Bound::Open(sorted.back()), Bound::Infinite());
    if (gap.has_value()) segments.push_back(*gap);
  }
  return segments;
}

Rational Representative(const Interval& segment) {
  if (segment.lo().infinite && segment.hi().infinite) return Rational(0);
  if (segment.lo().infinite) return segment.hi().value - Rational(1);
  if (segment.hi().infinite) return segment.lo().value + Rational(1);
  if (segment.IsPunctual()) return segment.lo().value;
  return (segment.lo().value + segment.hi().value) / Rational(2);
}

Result<Value> Aggregate(AggKind kind, const std::vector<Value>& values) {
  if (kind == AggKind::kCount) {
    return Value::Int(static_cast<int64_t>(values.size()));
  }
  for (const Value& v : values) {
    if (!v.is_numeric()) {
      return Status::EvalError("aggregating non-numeric value " +
                               v.ToString());
    }
  }
  switch (kind) {
    case AggKind::kSum: {
      bool all_int = std::all_of(values.begin(), values.end(),
                                 [](const Value& v) { return v.is_int(); });
      if (all_int) {
        int64_t s = 0;
        for (const Value& v : values) s += v.AsInt();
        return Value::Int(s);
      }
      double s = 0;
      for (const Value& v : values) s += v.AsDouble();
      return Value::Double(s);
    }
    case AggKind::kMin: {
      Value best = values[0];
      for (const Value& v : values) {
        if (Value::NumericCompare(v, best) < 0) best = v;
      }
      return best;
    }
    case AggKind::kMax: {
      Value best = values[0];
      for (const Value& v : values) {
        if (Value::NumericCompare(v, best) > 0) best = v;
      }
      return best;
    }
    case AggKind::kAvg: {
      double s = 0;
      for (const Value& v : values) s += v.AsDouble();
      return Value::Double(s / static_cast<double>(values.size()));
    }
    case AggKind::kCount:
      break;
  }
  return Status::Internal("unhandled aggregate kind");
}

}  // namespace

Result<AggregateEvaluator> AggregateEvaluator::Create(
    const Rule& rule, bool enable_join_planning) {
  if (!rule.head.aggregate.has_value()) {
    return Status::InvalidArgument("rule has no aggregate head: " +
                                   rule.ToString());
  }
  DMTL_ASSIGN_OR_RETURN(RuleEvaluator body,
                        RuleEvaluator::Create(rule, enable_join_planning));
  return AggregateEvaluator(std::move(body));
}

Status AggregateEvaluator::Evaluate(const Database& db,
                                    const RuleEvaluator::EmitFn& emit,
                                    OperatorMemo* memo) const {
  const Rule& r = body_eval_.rule();
  const AggregateSpec& spec = *r.head.aggregate;

  std::vector<BindingRow> rows;
  DMTL_RETURN_IF_ERROR(body_eval_.EvaluateRows(db, nullptr, -1, &rows, memo));

  // Group rows by the non-aggregated head arguments.
  std::map<Tuple, std::vector<Contribution>> groups;
  for (const BindingRow& row : rows) {
    Tuple key;
    key.reserve(r.head.args.size());
    for (size_t i = 0; i < r.head.args.size(); ++i) {
      if (static_cast<int>(i) == spec.arg_index) continue;
      if (!row.binding.IsResolved(r.head.args[i])) {
        return Status::UnsafeRule("unbound head variable in aggregate rule: " +
                                  r.ToString());
      }
      key.push_back(row.binding.Resolve(r.head.args[i]));
    }
    if (!row.binding.IsResolved(spec.term)) {
      return Status::UnsafeRule("unbound aggregate term in rule: " +
                                r.ToString());
    }
    groups[key].push_back({row.binding.Resolve(spec.term), row.extent});
  }

  for (auto& [key, contribs] : groups) {
    // Deterministic double-summation order regardless of hash iteration.
    std::stable_sort(contribs.begin(), contribs.end(),
                     [](const Contribution& a, const Contribution& b) {
                       return a.value < b.value;
                     });
    for (const Interval& segment : AtomicSegments(contribs)) {
      Rational rep = Representative(segment);
      std::vector<Value> values;
      for (const Contribution& c : contribs) {
        if (c.extent.Contains(rep)) values.push_back(c.value);
      }
      if (values.empty()) continue;
      DMTL_ASSIGN_OR_RETURN(Value agg, Aggregate(spec.kind, values));
      // Reassemble the full head tuple with the aggregate slotted in.
      Tuple tuple;
      tuple.reserve(r.head.args.size());
      size_t key_pos = 0;
      for (size_t i = 0; i < r.head.args.size(); ++i) {
        if (static_cast<int>(i) == spec.arg_index) {
          tuple.push_back(agg);
        } else {
          tuple.push_back(key[key_pos++]);
        }
      }
      IntervalSet extent{segment};
      for (const HeadAtom::HeadOp& op : r.head.ops) {
        extent = op.op == MtlOp::kBoxMinus ? extent.DiamondPlus(op.range)
                                           : extent.DiamondMinus(op.range);
      }
      DMTL_RETURN_IF_ERROR(emit(tuple, extent));
    }
  }
  return Status::Ok();
}

}  // namespace dmtl
