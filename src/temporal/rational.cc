#include "src/temporal/rational.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

namespace dmtl {

namespace {

// Normalizes a 128-bit fraction into int64 parts. Saturates on overflow
// (asserts in debug builds; overflow is unreachable for timeline arithmetic
// in this project's workloads).
void Normalize128(__int128 num, __int128 den, int64_t* out_num,
                  int64_t* out_den) {
  assert(den != 0);
  if (den < 0) {
    num = -num;
    den = -den;
  }
  __int128 a = num < 0 ? -num : num;
  __int128 b = den;
  while (b != 0) {
    __int128 t = a % b;
    a = b;
    b = t;
  }
  if (a > 1) {
    num /= a;
    den /= a;
  }
  constexpr __int128 kMax = std::numeric_limits<int64_t>::max();
  constexpr __int128 kMin = std::numeric_limits<int64_t>::min();
  assert(num <= kMax && num >= kMin && den <= kMax && "Rational overflow");
  if (num > kMax) num = kMax;
  if (num < kMin) num = kMin;
  if (den > kMax) den = kMax;
  *out_num = static_cast<int64_t>(num);
  *out_den = static_cast<int64_t>(den);
}

}  // namespace

Rational::Rational(int64_t num, int64_t den) {
  Normalize128(num, den, &num_, &den_);
}

int64_t Rational::Floor() const {
  if (num_ >= 0) return num_ / den_;
  // Round toward negative infinity.
  return -((-num_ + den_ - 1) / den_);
}

int64_t Rational::Ceil() const {
  if (num_ >= 0) return (num_ + den_ - 1) / den_;
  return -((-num_) / den_);
}

double Rational::ToDouble() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Result<Rational> Rational::FromString(const std::string& text) {
  if (text.empty()) return Status::ParseError("empty rational literal");
  size_t slash = text.find('/');
  size_t dot = text.find('.');
  errno = 0;
  char* end = nullptr;
  if (slash != std::string::npos) {
    int64_t num = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + slash || errno != 0) {
      return Status::ParseError("bad numerator in '" + text + "'");
    }
    int64_t den = std::strtoll(text.c_str() + slash + 1, &end, 10);
    if (*end != '\0' || errno != 0 || den == 0) {
      return Status::ParseError("bad denominator in '" + text + "'");
    }
    return Rational(num, den);
  }
  if (dot != std::string::npos) {
    // Exact decimal: digits after the dot scale the denominator by 10^k.
    std::string digits = text.substr(0, dot) + text.substr(dot + 1);
    size_t frac_len = text.size() - dot - 1;
    if (frac_len > 18) {
      return Status::ParseError("too many decimal places in '" + text + "'");
    }
    int64_t num = std::strtoll(digits.c_str(), &end, 10);
    if (*end != '\0' || errno != 0) {
      return Status::ParseError("bad decimal literal '" + text + "'");
    }
    int64_t den = 1;
    for (size_t i = 0; i < frac_len; ++i) den *= 10;
    return Rational(num, den);
  }
  int64_t num = std::strtoll(text.c_str(), &end, 10);
  if (*end != '\0' || errno != 0) {
    return Status::ParseError("bad integer literal '" + text + "'");
  }
  return Rational(num);
}

Rational Rational::FromDouble(double value, int64_t den) {
  return Rational(static_cast<int64_t>(std::llround(value * den)), den);
}

Rational Rational::AddSlow(const Rational& a, const Rational& b) {
  __int128 num = static_cast<__int128>(a.num_) * b.den_ +
                 static_cast<__int128>(b.num_) * a.den_;
  __int128 den = static_cast<__int128>(a.den_) * b.den_;
  Rational r;
  Normalize128(num, den, &r.num_, &r.den_);
  return r;
}

Rational operator*(const Rational& a, const Rational& b) {
  __int128 num = static_cast<__int128>(a.num_) * b.num_;
  __int128 den = static_cast<__int128>(a.den_) * b.den_;
  Rational r;
  Normalize128(num, den, &r.num_, &r.den_);
  return r;
}

Rational operator/(const Rational& a, const Rational& b) {
  assert(!b.is_zero());
  __int128 num = static_cast<__int128>(a.num_) * b.den_;
  __int128 den = static_cast<__int128>(a.den_) * b.num_;
  Rational r;
  Normalize128(num, den, &r.num_, &r.den_);
  return r;
}

size_t Rational::Hash() const {
  size_t h = std::hash<int64_t>()(num_);
  h ^= std::hash<int64_t>()(den_) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace dmtl
