#ifndef DMTL_TEMPORAL_INTERVAL_H_
#define DMTL_TEMPORAL_INTERVAL_H_

#include <optional>
#include <ostream>
#include <string>

#include "src/temporal/rational.h"

namespace dmtl {

// One endpoint of an interval: either a finite rational (open or closed) or
// an infinity. `open` is meaningless for infinite bounds (always open).
struct Bound {
  Rational value;
  bool open = false;
  bool infinite = false;

  static Bound Closed(Rational v) { return {v, false, false}; }
  static Bound Open(Rational v) { return {v, true, false}; }
  static Bound Infinite() { return {Rational(), true, true}; }
};

// A non-empty interval over the rational timeline with independently
// open/closed finite endpoints, or infinite endpoints. This is the temporal
// annotation of a DatalogMTL fact (P(a)@<t1,t2>) and the index set rho of a
// metric operator.
//
// Instances are always non-empty: construction goes through Make() (which
// rejects empty bound combinations) or the convenience factories.
class Interval {
 public:
  // Builds <lo, hi> if non-empty. Returns nullopt for empty combinations
  // (lo > hi, or lo == hi unless both endpoints are closed).
  static std::optional<Interval> Make(Bound lo, Bound hi);

  // [t, t].
  static Interval Point(const Rational& t);
  // [lo, hi]; requires lo <= hi.
  static Interval Closed(const Rational& lo, const Rational& hi);
  // (lo, hi); requires lo < hi.
  static Interval Open(const Rational& lo, const Rational& hi);
  // [lo, hi).
  static Interval ClosedOpen(const Rational& lo, const Rational& hi);
  // (lo, hi].
  static Interval OpenClosed(const Rational& lo, const Rational& hi);
  // (-inf, +inf).
  static Interval All();
  // [t, +inf).
  static Interval AtLeast(const Rational& t);
  // (-inf, t].
  static Interval AtMost(const Rational& t);

  const Bound& lo() const { return lo_; }
  const Bound& hi() const { return hi_; }

  bool lo_infinite() const { return lo_.infinite; }
  bool hi_infinite() const { return hi_.infinite; }

  // True iff the interval is the single point [t, t].
  bool IsPunctual() const;

  // hi - lo as a rational; nullopt if either side is infinite.
  std::optional<Rational> Length() const;

  bool Contains(const Rational& t) const;
  bool Contains(const Interval& other) const;

  // Set intersection; nullopt when disjoint.
  std::optional<Interval> Intersect(const Interval& other) const;

  // True iff the intersection is non-empty. Cheaper than Intersect() when
  // only the yes/no answer matters (the join planner's envelope prechecks).
  bool Overlaps(const Interval& other) const;

  // The smallest interval containing both (their convex hull); always
  // non-empty since intervals are.
  Interval Hull(const Interval& other) const;

  // True when the union of the two intervals is itself an interval
  // (they overlap or touch without a gap, e.g. [1,3) and [3,5]).
  bool Unionable(const Interval& other) const;

  // Union of two Unionable() intervals.
  Interval UnionWith(const Interval& other) const;

  // The interval translated by delta.
  Interval Shift(const Rational& delta) const;

  // --- MTL operator transforms -------------------------------------------
  // Given that an atom M holds exactly throughout this interval, these
  // return where the compound metric atom holds (nullopt when nowhere).
  // rho must be a non-empty interval with non-negative bounds.

  // diamondminus_rho M at t  iff  M at some s with t - s in rho.
  // Minkowski dilation into the future: <lo+rho.lo, hi+rho.hi>.
  Interval DiamondMinus(const Interval& rho) const;

  // boxminus_rho M at t  iff  M at all s with t - s in rho.
  // Erosion: <lo+rho.hi, hi+rho.lo>; empty when the fact interval is
  // shorter than rho.
  std::optional<Interval> BoxMinus(const Interval& rho) const;

  // diamondplus_rho M at t  iff  M at some s with s - t in rho.
  Interval DiamondPlus(const Interval& rho) const;

  // boxplus_rho M at t  iff  M at all s with s - t in rho.
  std::optional<Interval> BoxPlus(const Interval& rho) const;

  // Ordering for normalized storage: by lower bound (closed endpoints start
  // before open ones at the same value), ties by upper bound.
  bool StartsBefore(const Interval& other) const;

  // True iff every point of *this precedes every point of `other` with a
  // non-empty gap in between (i.e. not Unionable and strictly before).
  bool StrictlyBefore(const Interval& other) const;

  // "[1,3)", "(-inf,5]", "[2,2]".
  std::string ToString() const;

  friend bool operator==(const Interval& a, const Interval& b);
  friend bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }

 private:
  Interval(Bound lo, Bound hi) : lo_(lo), hi_(hi) {}

  Bound lo_;
  Bound hi_;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

}  // namespace dmtl

#endif  // DMTL_TEMPORAL_INTERVAL_H_
