#ifndef DMTL_TEMPORAL_INTERVAL_H_
#define DMTL_TEMPORAL_INTERVAL_H_

#include <optional>
#include <ostream>
#include <string>

#include "src/temporal/rational.h"

namespace dmtl {

// One endpoint of an interval: either a finite rational (open or closed) or
// an infinity. `open` is meaningless for infinite bounds (always open).
struct Bound {
  Rational value;
  bool open = false;
  bool infinite = false;

  static Bound Closed(Rational v) { return {v, false, false}; }
  static Bound Open(Rational v) { return {v, true, false}; }
  static Bound Infinite() { return {Rational(), true, true}; }
};

// A non-empty interval over the rational timeline with independently
// open/closed finite endpoints, or infinite endpoints. This is the temporal
// annotation of a DatalogMTL fact (P(a)@<t1,t2>) and the index set rho of a
// metric operator.
//
// Instances are always non-empty: construction goes through Make() (which
// rejects empty bound combinations) or the convenience factories.
class Interval {
 public:
  // Builds <lo, hi> if non-empty. Returns nullopt for empty combinations
  // (lo > hi, or lo == hi unless both endpoints are closed).
  static std::optional<Interval> Make(Bound lo, Bound hi);

  // Requires BoundsNonEmpty(lo, hi) with openness already normalized
  // (infinite bounds carry open == true). The dense key decoder satisfies
  // both by construction, so it skips Make()'s Rational comparisons.
  static Interval MakeUnchecked(Bound lo, Bound hi) {
    return Interval(lo, hi);
  }

  // [t, t].
  static Interval Point(const Rational& t);
  // [lo, hi]; requires lo <= hi.
  static Interval Closed(const Rational& lo, const Rational& hi);
  // (lo, hi); requires lo < hi.
  static Interval Open(const Rational& lo, const Rational& hi);
  // [lo, hi).
  static Interval ClosedOpen(const Rational& lo, const Rational& hi);
  // (lo, hi].
  static Interval OpenClosed(const Rational& lo, const Rational& hi);
  // (-inf, +inf).
  static Interval All();
  // [t, +inf).
  static Interval AtLeast(const Rational& t);
  // (-inf, t].
  static Interval AtMost(const Rational& t);

  const Bound& lo() const { return lo_; }
  const Bound& hi() const { return hi_; }

  bool lo_infinite() const { return lo_.infinite; }
  bool hi_infinite() const { return hi_.infinite; }

  // True iff the interval is the single point [t, t].
  bool IsPunctual() const;

  // hi - lo as a rational; nullopt if either side is infinite.
  std::optional<Rational> Length() const;

  bool Contains(const Rational& t) const;
  bool Contains(const Interval& other) const;

  // Set intersection; nullopt when disjoint.
  std::optional<Interval> Intersect(const Interval& other) const;

  // True iff the intersection is non-empty. Cheaper than Intersect() when
  // only the yes/no answer matters (the join planner's envelope prechecks).
  bool Overlaps(const Interval& other) const;

  // The smallest interval containing both (their convex hull); always
  // non-empty since intervals are.
  Interval Hull(const Interval& other) const;

  // True when the union of the two intervals is itself an interval
  // (they overlap or touch without a gap, e.g. [1,3) and [3,5]).
  bool Unionable(const Interval& other) const;

  // Union of two Unionable() intervals.
  Interval UnionWith(const Interval& other) const;

  // The interval translated by delta.
  Interval Shift(const Rational& delta) const;

  // --- MTL operator transforms -------------------------------------------
  // Given that an atom M holds exactly throughout this interval, these
  // return where the compound metric atom holds (nullopt when nowhere).
  // rho must be a non-empty interval with non-negative bounds.

  // diamondminus_rho M at t  iff  M at some s with t - s in rho.
  // Minkowski dilation into the future: <lo+rho.lo, hi+rho.hi>.
  Interval DiamondMinus(const Interval& rho) const;

  // boxminus_rho M at t  iff  M at all s with t - s in rho.
  // Erosion: <lo+rho.hi, hi+rho.lo>; empty when the fact interval is
  // shorter than rho.
  std::optional<Interval> BoxMinus(const Interval& rho) const;

  // diamondplus_rho M at t  iff  M at some s with s - t in rho.
  Interval DiamondPlus(const Interval& rho) const;

  // boxplus_rho M at t  iff  M at all s with s - t in rho.
  std::optional<Interval> BoxPlus(const Interval& rho) const;

  // Ordering for normalized storage: by lower bound (closed endpoints start
  // before open ones at the same value), ties by upper bound.
  bool StartsBefore(const Interval& other) const;

  // True iff every point of *this precedes every point of `other` with a
  // non-empty gap in between (i.e. not Unionable and strictly before).
  bool StrictlyBefore(const Interval& other) const;

  // "[1,3)", "(-inf,5]", "[2,2]".
  std::string ToString() const;

  friend bool operator==(const Interval& a, const Interval& b);
  friend bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }

 private:
  Interval(Bound lo, Bound hi) : lo_(lo), hi_(hi) {}

  Bound lo_;
  Bound hi_;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

// --- inline hot path ------------------------------------------------------
// Bound comparison, emptiness, and the interval predicates/transforms built
// from them run billions of times per materialization (every IntervalSet
// kernel bottoms out here), so they live in the header where the Rational
// fast paths inline through.

namespace internal {

// Three-way compare of two *lower* bounds by the position where the interval
// effectively starts: -inf first; at equal finite values a closed bound
// starts before an open one.
inline int CompareLower(const Bound& a, const Bound& b) {
  if (a.infinite || b.infinite) {
    if (a.infinite && b.infinite) return 0;
    return a.infinite ? -1 : 1;
  }
  if (a.value < b.value) return -1;
  if (b.value < a.value) return 1;
  if (a.open == b.open) return 0;
  return a.open ? 1 : -1;
}

// Three-way compare of two *upper* bounds by where the interval effectively
// ends: +inf last; at equal finite values an open bound ends before a
// closed one.
inline int CompareUpper(const Bound& a, const Bound& b) {
  if (a.infinite || b.infinite) {
    if (a.infinite && b.infinite) return 0;
    return a.infinite ? 1 : -1;
  }
  if (a.value < b.value) return -1;
  if (b.value < a.value) return 1;
  if (a.open == b.open) return 0;
  return a.open ? -1 : 1;
}

inline bool BoundsNonEmpty(const Bound& lo, const Bound& hi) {
  if (lo.infinite || hi.infinite) return true;
  if (lo.value < hi.value) return true;
  if (hi.value < lo.value) return false;
  return !lo.open && !hi.open;  // single point needs both sides closed
}

}  // namespace internal

inline std::optional<Interval> Interval::Make(Bound lo, Bound hi) {
  if (!internal::BoundsNonEmpty(lo, hi)) return std::nullopt;
  if (lo.infinite) lo.open = true;
  if (hi.infinite) hi.open = true;
  return Interval(lo, hi);
}

inline std::optional<Interval> Interval::Intersect(
    const Interval& other) const {
  Bound lo = internal::CompareLower(lo_, other.lo_) >= 0 ? lo_ : other.lo_;
  Bound hi = internal::CompareUpper(hi_, other.hi_) <= 0 ? hi_ : other.hi_;
  return Make(lo, hi);
}

inline bool Interval::Overlaps(const Interval& other) const {
  const Bound& lo =
      internal::CompareLower(lo_, other.lo_) >= 0 ? lo_ : other.lo_;
  const Bound& hi =
      internal::CompareUpper(hi_, other.hi_) <= 0 ? hi_ : other.hi_;
  return internal::BoundsNonEmpty(lo, hi);
}

inline bool Interval::Contains(const Interval& other) const {
  return internal::CompareLower(lo_, other.lo_) <= 0 &&
         internal::CompareUpper(other.hi_, hi_) <= 0;
}

inline bool Interval::StartsBefore(const Interval& other) const {
  int c = internal::CompareLower(lo_, other.lo_);
  if (c != 0) return c < 0;
  return internal::CompareUpper(hi_, other.hi_) < 0;
}

inline bool Interval::StrictlyBefore(const Interval& other) const {
  if (hi_.infinite || other.lo_.infinite) return false;
  if (hi_.value < other.lo_.value) return true;
  return hi_.value == other.lo_.value && hi_.open && other.lo_.open;
}

inline bool Interval::Unionable(const Interval& other) const {
  // The union is a single interval exactly when there is no uncovered gap
  // in either direction; StrictlyBefore is precisely "gap after me".
  return !StrictlyBefore(other) && !other.StrictlyBefore(*this);
}

inline Interval Interval::Hull(const Interval& other) const {
  Bound lo = internal::CompareLower(lo_, other.lo_) <= 0 ? lo_ : other.lo_;
  Bound hi = internal::CompareUpper(hi_, other.hi_) >= 0 ? hi_ : other.hi_;
  return Interval(lo, hi);
}

inline Interval Interval::UnionWith(const Interval& other) const {
  return Hull(other);  // no gap by precondition, so the hull is the union
}

inline bool Interval::IsPunctual() const {
  return !lo_.infinite && !hi_.infinite && lo_.value == hi_.value;
}

inline bool Interval::Contains(const Rational& t) const {
  if (!lo_.infinite) {
    if (t < lo_.value) return false;
    if (t == lo_.value && lo_.open) return false;
  }
  if (!hi_.infinite) {
    if (hi_.value < t) return false;
    if (t == hi_.value && hi_.open) return false;
  }
  return true;
}

}  // namespace dmtl

#endif  // DMTL_TEMPORAL_INTERVAL_H_
