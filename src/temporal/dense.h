#ifndef DMTL_TEMPORAL_DENSE_H_
#define DMTL_TEMPORAL_DENSE_H_

#include <cstdint>

#include "src/temporal/interval.h"
#include "src/temporal/rational.h"

namespace dmtl {

// Dense integer-timeline specialization.
//
// Chain data is integral Unix seconds and the shipped programs use integral
// rule bounds, so on the common path every Interval endpoint is an integer
// and every Rational comparison/addition in the set kernels is needless
// generality. When the engine proves at load time that a program+database
// is all-integral (see DenseTimelineEligible in seminaive.cc), it enables
// this thread-local fast path and the IntervalSet kernels re-encode bounds
// as packed int64 keys:
//
//   lower bound  v, open o  ->  key 2v + o
//   upper bound  v, open o  ->  key 2v - o
//
// The packing makes every structural predicate a single integer compare:
//   - interval non-empty        lo_key <= hi_key
//   - a strictly before b       a.hi_key + 1 < b.lo_key
//   - a unionable with b        a.hi_key + 1 >= b.lo_key (sorted order)
// because on the integer timeline [v (open upper) and (v (open lower) are
// adjacent odd/even keys: "(3" (lo 2*3+1=7) minus "3)" (hi 2*3-1=5) is 2,
// while touching closed/open pairs differ by exactly 1.
//
// Infinite bounds map to sentinel keys far outside the encodable range;
// magnitudes are capped well below the sentinels so dilation arithmetic
// (adding rule-range keys during diamond/box transforms) cannot overflow
// or collide with them.
//
// The selection is purely an optimization: every kernel re-verifies
// integrality per element while encoding and bails to the Rational path on
// any miss, so enabling the flag on non-integral data costs a failed encode,
// never correctness.
namespace dense {

using DKey = int64_t;

inline constexpr DKey kNegInf = -(INT64_MAX / 4);
inline constexpr DKey kPosInf = INT64_MAX / 4;
// Cap on |endpoint| (as a raw integer) so 2v +- o plus one dilation by
// another in-range key stays far from the sentinels.
inline constexpr int64_t kMaxMagnitude = INT64_MAX / 32;

// Thread-local enable flag, set by DenseScope while a materialization that
// proved integrality is running on this thread.
namespace internal {
inline thread_local bool g_enabled = false;
}  // namespace internal

inline bool Enabled() { return internal::g_enabled; }

// RAII enable/disable; saves and restores so nested materializations
// (ParallelSessions shards with different programs) stay independent.
class DenseScope {
 public:
  explicit DenseScope(bool enable) : saved_(internal::g_enabled) {
    internal::g_enabled = enable;
  }
  ~DenseScope() { internal::g_enabled = saved_; }
  DenseScope(const DenseScope&) = delete;
  DenseScope& operator=(const DenseScope&) = delete;

 private:
  bool saved_;
};

// --- key encoding --------------------------------------------------------

// Encodes a lower bound; returns false when the bound is not an in-range
// integer (caller bails to the Rational kernel).
inline bool EncodeLo(const Bound& b, DKey* out) {
  if (b.infinite) {
    *out = kNegInf;
    return true;
  }
  if (!b.value.is_integer()) return false;
  const int64_t v = b.value.numerator();
  if (v > kMaxMagnitude || v < -kMaxMagnitude) return false;
  *out = 2 * v + (b.open ? 1 : 0);
  return true;
}

// Encodes an upper bound.
inline bool EncodeHi(const Bound& b, DKey* out) {
  if (b.infinite) {
    *out = kPosInf;
    return true;
  }
  if (!b.value.is_integer()) return false;
  const int64_t v = b.value.numerator();
  if (v > kMaxMagnitude || v < -kMaxMagnitude) return false;
  *out = 2 * v - (b.open ? 1 : 0);
  return true;
}

inline bool EncodeInterval(const Interval& iv, DKey* lo, DKey* hi) {
  return EncodeLo(iv.lo(), lo) && EncodeHi(iv.hi(), hi);
}

// --- key decoding --------------------------------------------------------
// The sentinel keys decode to Bound::Infinite(), which matches the
// Rational-path representation byte for byte (infinite bounds always carry
// value 0 / open true in this codebase).

inline Bound DecodeLo(DKey k) {
  if (k <= kNegInf) return Bound::Infinite();
  const int64_t open = k & 1;
  return Bound{Rational((k - open) >> 1), open != 0, false};
}

inline Bound DecodeHi(DKey k) {
  if (k >= kPosInf) return Bound::Infinite();
  const int64_t open = k & 1;
  return Bound{Rational((k + open) >> 1), open != 0, false};
}

// Requires NonEmpty(lo, hi). Decoded bounds are already normalized (the
// sentinels decode to Bound::Infinite(), open == true), so the unchecked
// constructor applies.
inline Interval DecodeInterval(DKey lo, DKey hi) {
  return Interval::MakeUnchecked(DecodeLo(lo), DecodeHi(hi));
}

// --- structural predicates on keys ---------------------------------------

// [loK, hiK] denotes a non-empty set of points.
inline bool NonEmpty(DKey lo, DKey hi) { return lo <= hi; }

// Every point of a precedes every point of b with a gap in between (the
// two intervals neither overlap nor touch): used for both StrictlyBefore
// and (by symmetry) Unionable.
inline bool GapBefore(DKey a_hi, DKey b_lo) { return a_hi + 1 < b_lo; }

// --- dilation arithmetic (diamond/box transforms) ------------------------
// Adding two lower-bound keys: values add, openness ORs - except both open
// would double-count the +1, hence the (a & b & 1) parity correction.
// Mirrored for upper bounds (open carries -1). Sentinels saturate (a shift
// of an infinite bound stays infinite, matching Bound arithmetic on the
// Rational path); one dilation of in-range finite keys can neither
// overflow nor reach a sentinel (|result| <= 2 * (2 * kMaxMagnitude + 1)
// << kPosInf).

inline DKey AddLoKeys(DKey a, DKey b) {
  if (a == kNegInf || b == kNegInf) return kNegInf;
  return a + b - (a & b & 1);
}
inline DKey AddHiKeys(DKey a, DKey b) {
  if (a == kPosInf || b == kPosInf) return kPosInf;
  return a + b + (a & b & 1);
}
// Lower-bound key `a` minus upper-bound key `r` yields a lower bound
// (DiamondPlus shifts lo back by rho.hi); openness still ORs.
inline DKey SubLoHi(DKey a, DKey r) {
  if (a == kNegInf || r == kPosInf) return kNegInf;
  return a - r - (a & r & 1);
}
// Upper-bound key `a` minus lower-bound key `r` yields an upper bound.
inline DKey SubHiLo(DKey a, DKey r) {
  if (a == kPosInf || r == kNegInf) return kPosInf;
  return a - r + (a & r & 1);
}

// --- erosion arithmetic (box transforms) ---------------------------------
// Box erosion uses a different openness rule: the result endpoint is
// *closed* whenever the window endpoint is open (the window then excludes
// its own boundary, so the fact's endpoint suffices), otherwise it
// inherits the fact's openness. Derived case-by-case from the parity bits;
// callers handle sentinels explicitly (the Rational path's infinite-bound
// cases do not reduce to key arithmetic). All operands must be finite.

// BoxMinus lower bound: fact lo key `a` advanced by window hi key `r`.
inline DKey BoxLoPlusHi(DKey a, DKey r) { return a + r + (r & 1) - (a & r & 1); }
// BoxMinus upper bound: fact hi key `a` advanced by window lo key `r`.
inline DKey BoxHiPlusLo(DKey a, DKey r) { return a + r - (r & 1) + (a & r & 1); }
// BoxPlus lower bound: fact lo key `a` set back by window lo key `r`.
inline DKey BoxLoMinusLo(DKey a, DKey r) { return a - r + (r & 1) - (a & r & 1); }
// BoxPlus upper bound: fact hi key `a` set back by window hi key `r`.
inline DKey BoxHiMinusHi(DKey a, DKey r) { return a - r - (r & 1) + (a & r & 1); }

}  // namespace dense
}  // namespace dmtl

#endif  // DMTL_TEMPORAL_DENSE_H_
