#ifndef DMTL_TEMPORAL_SMALL_IVEC_H_
#define DMTL_TEMPORAL_SMALL_IVEC_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "src/common/arena.h"
#include "src/temporal/interval.h"

namespace dmtl {

// A vector of Intervals with inline storage for the first two elements.
//
// The contract workload is dominated by interval sets of size 1-2 (punctual
// row extents, single clamped emissions, Insert deltas); storing those
// inline makes the IntervalSet temporaries on the emit/intersect hot path
// allocation-free. Larger sets spill to a buffer - from the thread's
// ambient RoundArena when an ArenaScope is active (the engine's transient
// round-local sets), otherwise from the global heap exactly like
// std::vector.
//
// Arena contract (docs/ENGINE.md, "Memory architecture"): an arena-backed
// buffer dies wholesale at the arena's next Reset(), so any vector that
// outlives the round barrier must be pinned first. MarkPersistent()
// migrates an arena buffer to the heap and keeps every future spill there;
// moves propagate the pin (a persistent set stays persistent wherever its
// buffer lands), and moving an arena-backed source into a pinned
// destination deep-copies instead of stealing. The engine pins at exactly
// the persistence points: relation storage, operator memos, and chain guard
// caches.
//
// Interval has no default constructor but is trivially copyable, so the
// inline slots are raw storage and every element transfer is a memcpy;
// nothing is ever destroyed element-wise.
class SmallIntervalVec {
 public:
  static constexpr size_t kInlineCapacity = 2;

  using value_type = Interval;
  using iterator = Interval*;
  using const_iterator = const Interval*;

  SmallIntervalVec() = default;
  ~SmallIntervalVec() { ReleaseHeap(); }

  SmallIntervalVec(const SmallIntervalVec& other) { CopyFrom(other); }
  SmallIntervalVec& operator=(const SmallIntervalVec& other) {
    if (this == &other) return *this;
    size_ = 0;
    CopyFrom(other);
    return *this;
  }
  SmallIntervalVec(SmallIntervalVec&& other) noexcept { StealFrom(&other); }
  SmallIntervalVec& operator=(SmallIntervalVec&& other) noexcept {
    if (this == &other) return *this;
    ReleaseHeap();
    heap_ = nullptr;
    capacity_ = kInlineCapacity;
    from_arena_ = false;
    StealFrom(&other);
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  Interval* data() { return heap_ != nullptr ? heap_ : InlinePtr(); }
  const Interval* data() const {
    return heap_ != nullptr ? heap_ : InlinePtr();
  }

  Interval& operator[](size_t i) { return data()[i]; }
  const Interval& operator[](size_t i) const { return data()[i]; }
  Interval& front() { return data()[0]; }
  const Interval& front() const { return data()[0]; }
  Interval& back() { return data()[size_ - 1]; }
  const Interval& back() const { return data()[size_ - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void push_back(const Interval& iv) {
    if (size_ == capacity_) Grow(size_ + 1);
    std::memcpy(static_cast<void*>(data() + size_), &iv, sizeof(Interval));
    ++size_;
  }

  // Inserts `iv` before position `pos` (an index, not an iterator, so the
  // call survives the reallocation it may trigger).
  void insert_at(size_t pos, const Interval& iv) {
    if (size_ == capacity_) Grow(size_ + 1);
    Interval* d = data();
    std::memmove(static_cast<void*>(d + pos + 1), d + pos,
                 (size_ - pos) * sizeof(Interval));
    std::memcpy(static_cast<void*>(d + pos), &iv, sizeof(Interval));
    ++size_;
  }

  // Erases the index range [first, last).
  void erase_range(size_t first, size_t last) {
    Interval* d = data();
    std::memmove(static_cast<void*>(d + first), d + last,
                 (size_ - last) * sizeof(Interval));
    size_ -= last - first;
  }

  void swap(SmallIntervalVec& other) noexcept {
    SmallIntervalVec tmp(std::move(other));
    other = std::move(*this);
    *this = std::move(tmp);
  }

  // --- arena lifetime ----------------------------------------------------

  // Pins this vector to the general heap: the current buffer migrates off
  // the arena (if it is on one) and every future spill uses operator new.
  // Call before storing a vector anywhere that outlives the round barrier.
  // Irreversible for the lifetime of the object; propagated by moves.
  void MarkPersistent() {
    pinned_ = true;
    if (from_arena_) MigrateToHeap();
  }
  bool pinned() const { return pinned_; }
  bool from_arena() const { return from_arena_; }

  // Drops an arena-backed buffer without copying (contents are discarded).
  // For reusable scratch vectors (the VM's per-instruction slots) that
  // would otherwise carry a dangling arena buffer across a Reset().
  void ReleaseArenaStorage() {
    if (!from_arena_) {
      size_ = 0;
      return;
    }
    if (RoundArena* arena = CurrentArena()) {
      arena->TryReclaim(heap_, capacity_ * sizeof(Interval));
    }
    heap_ = nullptr;
    capacity_ = kInlineCapacity;
    size_ = 0;
    from_arena_ = false;
  }

  friend bool operator==(const SmallIntervalVec& a,
                         const SmallIntervalVec& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const SmallIntervalVec& a,
                         const SmallIntervalVec& b) {
    return !(a == b);
  }

 private:
  static_assert(std::is_trivially_copyable_v<Interval>,
                "SmallIntervalVec moves elements with memcpy");

  Interval* InlinePtr() {
    return std::launder(reinterpret_cast<Interval*>(inline_buf_));
  }
  const Interval* InlinePtr() const {
    return std::launder(reinterpret_cast<const Interval*>(inline_buf_));
  }

  // Frees the heap buffer if we own one. An arena buffer that is still the
  // arena's newest allocation is handed back (TryReclaim) so short-lived
  // temporaries don't leave the round streaming through cold memory; any
  // other arena buffer is abandoned for the wholesale reclaim at Reset.
  void ReleaseHeap() {
    if (heap_ == nullptr) return;
    if (!from_arena_) {
      ::operator delete(heap_);
    } else if (RoundArena* arena = CurrentArena()) {
      arena->TryReclaim(heap_, capacity_ * sizeof(Interval));
    }
  }

  void Grow(size_t need) {
    size_t cap = capacity_ * 2;
    if (cap < need) cap = need;
    Interval* fresh = nullptr;
    bool fresh_from_arena = false;
    if (RoundArena* arena = CurrentArena()) {
      // A spilled buffer that is still the arena's latest allocation grows
      // in place (common case: one hot vector appending in a loop). The
      // tail check inside TryExtend rejects buffers from other arenas.
      if (from_arena_ && !pinned_ &&
          arena->TryExtend(heap_, capacity_ * sizeof(Interval),
                           cap * sizeof(Interval))) {
        capacity_ = cap;
        return;
      }
      if (!pinned_) {
        fresh = static_cast<Interval*>(arena->Allocate(cap * sizeof(Interval)));
        fresh_from_arena = fresh != nullptr;
      } else {
        arena->CountHeapFallback();
      }
    }
    if (fresh == nullptr) {
      fresh = static_cast<Interval*>(::operator new(cap * sizeof(Interval)));
    }
    std::memcpy(static_cast<void*>(fresh), data(), size_ * sizeof(Interval));
    ReleaseHeap();
    heap_ = fresh;
    from_arena_ = fresh_from_arena;
    capacity_ = cap;
  }

  // Moves the current (arena) buffer to owned storage; part of
  // MarkPersistent. The vacated arena buffer is handed back when it is
  // still the arena tail (freshly built set pinned on insert - the common
  // persistence path).
  void MigrateToHeap() {
    Interval* old = heap_;
    const size_t old_cap = capacity_;
    if (size_ <= kInlineCapacity) {
      std::memcpy(static_cast<void*>(InlinePtr()), heap_,
                  size_ * sizeof(Interval));
      heap_ = nullptr;
      capacity_ = kInlineCapacity;
    } else {
      auto* fresh =
          static_cast<Interval*>(::operator new(size_ * sizeof(Interval)));
      std::memcpy(static_cast<void*>(fresh), heap_, size_ * sizeof(Interval));
      heap_ = fresh;
      capacity_ = size_;
    }
    from_arena_ = false;
    if (RoundArena* arena = CurrentArena()) {
      arena->TryReclaim(old, old_cap * sizeof(Interval));
    }
  }

  // Copies elements; the destination keeps its own pin state (stored sets
  // stay heap-backed no matter what they are assigned from).
  void CopyFrom(const SmallIntervalVec& other) {
    reserve(other.size_);
    std::memcpy(static_cast<void*>(data()), other.data(),
                other.size_ * sizeof(Interval));
    size_ = other.size_;
  }

  // Takes `other`'s buffer (or memcpys its inline elements), leaving it
  // empty. Requires *this to own no heap buffer. The pin propagates from
  // the source (a persistent set stays persistent through moves, e.g. when
  // a memo entry vector reallocates); a pinned destination deep-copies an
  // arena-backed source instead of adopting a buffer that dies at the next
  // barrier.
  void StealFrom(SmallIntervalVec* other) {
    pinned_ = pinned_ || other->pinned_;
    if (other->heap_ != nullptr) {
      if (pinned_ && other->from_arena_) {
        size_ = 0;
        from_arena_ = false;
        CopyFrom(*other);
        other->ReleaseArenaStorage();
        return;
      }
      heap_ = other->heap_;
      capacity_ = other->capacity_;
      from_arena_ = other->from_arena_;
      other->heap_ = nullptr;
      other->capacity_ = kInlineCapacity;
      other->from_arena_ = false;
    } else {
      std::memcpy(static_cast<void*>(InlinePtr()), other->InlinePtr(),
                  other->size_ * sizeof(Interval));
      from_arena_ = false;
    }
    size_ = other->size_;
    other->size_ = 0;
  }

  alignas(Interval) unsigned char inline_buf_[kInlineCapacity *
                                              sizeof(Interval)];
  Interval* heap_ = nullptr;  // engaged once the inline capacity spills
  size_t size_ = 0;
  size_t capacity_ = kInlineCapacity;
  bool from_arena_ = false;  // heap_ came from the ambient RoundArena
  bool pinned_ = false;      // MarkPersistent called: never use the arena
};

}  // namespace dmtl

#endif  // DMTL_TEMPORAL_SMALL_IVEC_H_
