#ifndef DMTL_TEMPORAL_SMALL_IVEC_H_
#define DMTL_TEMPORAL_SMALL_IVEC_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "src/temporal/interval.h"

namespace dmtl {

// A vector of Intervals with inline storage for the first two elements.
//
// The contract workload is dominated by interval sets of size 1-2 (punctual
// row extents, single clamped emissions, Insert deltas); storing those
// inline makes the IntervalSet temporaries on the emit/intersect hot path
// allocation-free. Larger sets spill to the heap exactly like std::vector.
//
// Interval has no default constructor but is trivially copyable, so the
// inline slots are raw storage and every element transfer is a memcpy;
// nothing is ever destroyed element-wise.
class SmallIntervalVec {
 public:
  static constexpr size_t kInlineCapacity = 2;

  using value_type = Interval;
  using iterator = Interval*;
  using const_iterator = const Interval*;

  SmallIntervalVec() = default;
  ~SmallIntervalVec() {
    if (heap_ != nullptr) ::operator delete(heap_);
  }

  SmallIntervalVec(const SmallIntervalVec& other) { CopyFrom(other); }
  SmallIntervalVec& operator=(const SmallIntervalVec& other) {
    if (this == &other) return *this;
    size_ = 0;
    CopyFrom(other);
    return *this;
  }
  SmallIntervalVec(SmallIntervalVec&& other) noexcept { StealFrom(&other); }
  SmallIntervalVec& operator=(SmallIntervalVec&& other) noexcept {
    if (this == &other) return *this;
    if (heap_ != nullptr) ::operator delete(heap_);
    heap_ = nullptr;
    capacity_ = kInlineCapacity;
    StealFrom(&other);
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  Interval* data() { return heap_ != nullptr ? heap_ : InlinePtr(); }
  const Interval* data() const {
    return heap_ != nullptr ? heap_ : InlinePtr();
  }

  Interval& operator[](size_t i) { return data()[i]; }
  const Interval& operator[](size_t i) const { return data()[i]; }
  Interval& front() { return data()[0]; }
  const Interval& front() const { return data()[0]; }
  Interval& back() { return data()[size_ - 1]; }
  const Interval& back() const { return data()[size_ - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void push_back(const Interval& iv) {
    if (size_ == capacity_) Grow(size_ + 1);
    std::memcpy(static_cast<void*>(data() + size_), &iv, sizeof(Interval));
    ++size_;
  }

  // Inserts `iv` before position `pos` (an index, not an iterator, so the
  // call survives the reallocation it may trigger).
  void insert_at(size_t pos, const Interval& iv) {
    if (size_ == capacity_) Grow(size_ + 1);
    Interval* d = data();
    std::memmove(static_cast<void*>(d + pos + 1), d + pos,
                 (size_ - pos) * sizeof(Interval));
    std::memcpy(static_cast<void*>(d + pos), &iv, sizeof(Interval));
    ++size_;
  }

  // Erases the index range [first, last).
  void erase_range(size_t first, size_t last) {
    Interval* d = data();
    std::memmove(static_cast<void*>(d + first), d + last,
                 (size_ - last) * sizeof(Interval));
    size_ -= last - first;
  }

  void swap(SmallIntervalVec& other) noexcept {
    SmallIntervalVec tmp(std::move(other));
    other = std::move(*this);
    *this = std::move(tmp);
  }

  friend bool operator==(const SmallIntervalVec& a,
                         const SmallIntervalVec& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const SmallIntervalVec& a,
                         const SmallIntervalVec& b) {
    return !(a == b);
  }

 private:
  static_assert(std::is_trivially_copyable_v<Interval>,
                "SmallIntervalVec moves elements with memcpy");

  Interval* InlinePtr() {
    return std::launder(reinterpret_cast<Interval*>(inline_buf_));
  }
  const Interval* InlinePtr() const {
    return std::launder(reinterpret_cast<const Interval*>(inline_buf_));
  }

  void Grow(size_t need) {
    size_t cap = capacity_ * 2;
    if (cap < need) cap = need;
    auto* fresh =
        static_cast<Interval*>(::operator new(cap * sizeof(Interval)));
    std::memcpy(static_cast<void*>(fresh), data(), size_ * sizeof(Interval));
    if (heap_ != nullptr) ::operator delete(heap_);
    heap_ = fresh;
    capacity_ = cap;
  }

  void CopyFrom(const SmallIntervalVec& other) {
    reserve(other.size_);
    std::memcpy(static_cast<void*>(data()), other.data(),
                other.size_ * sizeof(Interval));
    size_ = other.size_;
  }

  // Takes `other`'s heap buffer (or memcpys its inline elements), leaving
  // it empty. Requires *this to own no heap buffer.
  void StealFrom(SmallIntervalVec* other) {
    if (other->heap_ != nullptr) {
      heap_ = other->heap_;
      capacity_ = other->capacity_;
      other->heap_ = nullptr;
      other->capacity_ = kInlineCapacity;
    } else {
      std::memcpy(static_cast<void*>(InlinePtr()), other->InlinePtr(),
                  other->size_ * sizeof(Interval));
    }
    size_ = other->size_;
    other->size_ = 0;
  }

  alignas(Interval) unsigned char inline_buf_[kInlineCapacity *
                                              sizeof(Interval)];
  Interval* heap_ = nullptr;  // engaged once the inline capacity spills
  size_t size_ = 0;
  size_t capacity_ = kInlineCapacity;
};

}  // namespace dmtl

#endif  // DMTL_TEMPORAL_SMALL_IVEC_H_
